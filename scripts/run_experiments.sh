#!/usr/bin/env bash
# Rebuild, run the full test suite and every paper-reproduction bench, and
# leave the raw transcripts in test_output.txt / bench_output.txt plus the
# machine-readable tables in bench_results/.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build 2>&1 | tee test_output.txt

: > bench_output.txt
for b in build/bench/*; do
  if [ -f "$b" ] && [ -x "$b" ]; then
    "$b" 2>&1 | tee -a bench_output.txt
  fi
done
echo "done: test_output.txt, bench_output.txt, bench_results/"
