#!/usr/bin/env bash
# Cheap CI gate for the bench suite: regenerate every bench_results/*.csv at a
# tiny matrix scale and verify each file still has the expected schema (header
# line) and a plausible shape (at least one data row).  Catches benches that
# crash, stop emitting their CSV, or silently change columns — without paying
# for a full-scale run.
#
# Usage: scripts/check_bench_results.sh [build-dir]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
SCALE="${PROTONDOSE_SCALE:-0.2}"

if [ ! -d "$BUILD_DIR/bench" ]; then
  echo "error: $BUILD_DIR/bench not found — build the project first" >&2
  exit 1
fi

# Snapshot the current schemas (header + row count) before regenerating.
declare -A OLD_HEADER OLD_ROWS
if [ -d bench_results ]; then
  for f in bench_results/*.csv; do
    [ -f "$f" ] || continue
    OLD_HEADER["$f"]=$(head -n 1 "$f")
    OLD_ROWS["$f"]=$(wc -l < "$f")
  done
fi

workdir=$(mktemp -d protondose_bench_check.XXXXXX)
trap 'rm -rf "$workdir"' EXIT

echo "== regenerating bench CSVs at scale $SCALE (workdir: $workdir) =="
fail=0
for b in "$BUILD_DIR"/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  name=$(basename "$b")
  case "$name" in
    wallclock_host_kernels) continue ;;  # google-benchmark binary, no CSV
  esac
  if ! (cd "$workdir" && PROTONDOSE_SCALE="$SCALE" "../$b" > "$name.log" 2>&1); then
    echo "FAIL $name: exited non-zero (see $workdir/$name.log)"
    fail=1
  fi
done

echo "== checking schemas =="
for f in "$workdir"/bench_results/*.csv; do
  [ -f "$f" ] || { echo "FAIL: no CSVs were produced"; fail=1; break; }
  rel="bench_results/$(basename "$f")"
  header=$(head -n 1 "$f")
  rows=$(wc -l < "$f")
  if [ "$rows" -lt 2 ]; then
    echo "FAIL $rel: no data rows"
    fail=1
    continue
  fi
  if [ -n "${OLD_HEADER[$rel]:-}" ] && [ "${OLD_HEADER[$rel]}" != "$header" ]; then
    echo "FAIL $rel: header changed"
    echo "  was: ${OLD_HEADER[$rel]}"
    echo "  now: $header"
    fail=1
    continue
  fi
  echo "ok   $rel ($((rows - 1)) rows)"
done

# Trajectory records from checked (simcheck) runs are not comparable across
# PRs: the analyzer forces serial phase-1 execution and adds per-access work.
# Every record must carry an explicit "simcheck": false brand.
check_simcheck_brand() {
  local f="$1" name="$2"
  if ! grep -q '"simcheck"' "$f"; then
    echo "FAIL $name: missing \"simcheck\" key (bench predates the brand?)"
    fail=1
  elif grep -Eq '"simcheck"[[:space:]]*:[[:space:]]*true' "$f"; then
    echo "FAIL $name: produced by a checked run (PROTONDOSE_SIMCHECK was set);"
    echo "  checked wallclock numbers must not enter the trajectory record"
    fail=1
  fi
}

# Machine-readable trajectory records must exist and keep their schema.
echo "== checking BENCH_native.json =="
nat="$workdir/BENCH_native.json"
if [ ! -f "$nat" ]; then
  echo "FAIL BENCH_native.json: not produced by wallclock_native_backend"
  fail=1
else
  for key in '"bench"' '"beam"' '"scale"' '"kernel"' '"modes"' \
             '"us_per_product"' '"speedup_vs_functional"' '"batch"' \
             '"us_batched"' '"us_looped"' '"batched_speedup"'; do
    if ! grep -q "$key" "$nat"; then
      echo "FAIL BENCH_native.json: missing key $key"
      fail=1
    fi
  done
  check_simcheck_brand "$nat" BENCH_native.json
  if command -v python3 >/dev/null 2>&1; then
    if ! python3 -c 'import json,sys; json.load(open(sys.argv[1]))' "$nat"; then
      echo "FAIL BENCH_native.json: not valid JSON"
      fail=1
    fi
  fi
fi

echo "== checking BENCH_gpusim.json =="
sim="$workdir/BENCH_gpusim.json"
if [ ! -f "$sim" ]; then
  echo "FAIL BENCH_gpusim.json: not produced by wallclock_sim_throughput"
  fail=1
else
  for key in '"bench"' '"beam"' '"scale"' '"kernel"' '"modes"' \
             '"us_per_launch"' '"warp_instr_per_sec"'; do
    if ! grep -q "$key" "$sim"; then
      echo "FAIL BENCH_gpusim.json: missing key $key"
      fail=1
    fi
  done
  check_simcheck_brand "$sim" BENCH_gpusim.json
  if command -v python3 >/dev/null 2>&1; then
    if ! python3 -c 'import json,sys; json.load(open(sys.argv[1]))' "$sim"; then
      echo "FAIL BENCH_gpusim.json: not valid JSON"
      fail=1
    fi
  fi
fi

echo "== checking BENCH_service.json =="
svc="$workdir/BENCH_service.json"
if [ ! -f "$svc" ]; then
  echo "FAIL BENCH_service.json: not produced by wallclock_service"
  fail=1
else
  for key in '"bench"' '"beam"' '"scale"' '"kernel"' '"requests"' \
             '"configs"' '"workers"' '"batch_cap"' '"req_per_s"' \
             '"mean_batch_size"' '"p50_ms"' '"p99_ms"' '"headline"' \
             '"baseline_cap"' '"batched_speedup"'; do
    if ! grep -q "$key" "$svc"; then
      echo "FAIL BENCH_service.json: missing key $key"
      fail=1
    fi
  done
  check_simcheck_brand "$svc" BENCH_service.json
  if command -v python3 >/dev/null 2>&1; then
    if ! python3 -c 'import json,sys; json.load(open(sys.argv[1]))' "$svc"; then
      echo "FAIL BENCH_service.json: not valid JSON"
      fail=1
    fi
  fi
fi

echo "== checking BENCH_formats.json =="
fmt="$workdir/BENCH_formats.json"
if [ ! -f "$fmt" ]; then
  echo "FAIL BENCH_formats.json: not produced by wallclock_fast_tier"
  fail=1
else
  # v2 schema (fast-tier v2): quantized SELL column, batched K=9 timings,
  # per-beam tuner outcome, and the three headline ratios.
  for key in '"bench"' '"schema_version"' '"scale"' '"fused_variant"' \
             '"sellcs_variant"' '"sellcsq_variant"' '"tuner_trials"' \
             '"batch_k"' '"cases"' '"csr_double_bytes"' '"rsformat_bytes"' \
             '"sellcs_bytes"' '"sellcsq_bytes"' '"streamed_bytes_ratio"' \
             '"sellcsq_vs_sellcs_ratio"' '"us_native_csr"' \
             '"us_fused_rsformat"' '"us_sellcs"' '"us_sellcsq"' \
             '"us_batched_k9"' '"us_looped_k9"' '"batched_speedup_k9"' \
             '"tuned"' '"headline"' '"fused_wins"' \
             '"max_streamed_bytes_ratio"' '"max_sellcsq_vs_sellcs_ratio"' \
             '"max_batched_speedup_k9"'; do
    if ! grep -q "$key" "$fmt"; then
      echo "FAIL BENCH_formats.json: missing key $key"
      fail=1
    fi
  done
  check_simcheck_brand "$fmt" BENCH_formats.json
  if command -v python3 >/dev/null 2>&1; then
    if ! python3 -c 'import json,sys; json.load(open(sys.argv[1]))' "$fmt"; then
      echo "FAIL BENCH_formats.json: not valid JSON"
      fail=1
    fi
    # Perf regression gates on the fast-tier headlines.  Wall-clock-free
    # gates (byte ratios) are deterministic; the batched-speedup gate uses
    # the max over beams, which is stable on any machine where at least one
    # beam leaves cache (small-scale CI boxes still clear 1.5x on Liver).
    # Override for a knowingly-regressing change with
    # PROTONDOSE_BENCH_ALLOW_PERF_REGRESSION=1 — document why in the PR.
    if [ "${PROTONDOSE_BENCH_ALLOW_PERF_REGRESSION:-0}" != "1" ]; then
      if ! python3 - "$fmt" <<'EOF'
import json, sys
h = json.load(open(sys.argv[1]))["headline"]
fail = False
def gate(name, value, limit, op):
    global fail
    ok = value <= limit if op == "<=" else value >= limit
    print(f"{'ok  ' if ok else 'FAIL'} headline {name} = {value} (want {op} {limit})")
    fail = fail or not ok
gate("max_streamed_bytes_ratio", float(h["max_streamed_bytes_ratio"]), 0.34, "<=")
gate("max_sellcsq_vs_sellcs_ratio", float(h["max_sellcsq_vs_sellcs_ratio"]), 0.50, "<=")
gate("max_batched_speedup_k9", float(h["max_batched_speedup_k9"]), 1.5, ">=")
sys.exit(1 if fail else 0)
EOF
      then
        echo "FAIL BENCH_formats.json: fast-tier perf gate" \
             "(set PROTONDOSE_BENCH_ALLOW_PERF_REGRESSION=1 to override)"
        fail=1
      fi
    fi
  fi
fi

echo "== checking BENCH_shard.json =="
shd="$workdir/BENCH_shard.json"
if [ ! -f "$shd" ]; then
  echo "FAIL BENCH_shard.json: not produced by wallclock_shard"
  fail=1
else
  for key in '"bench"' '"beam"' '"scale"' '"kernel"' '"requests"' \
             '"plans"' '"engine_cache_capacity"' '"bitwise_identical"' \
             '"configs"' '"shards"' '"req_per_s"' '"speedup"' \
             '"cache_misses"' '"mean_batch_size"' '"p50_ms"' '"p99_ms"' \
             '"headline"' '"baseline_shards"' '"speedup_2_shards"' \
             '"speedup_4_shards"'; do
    if ! grep -q "$key" "$shd"; then
      echo "FAIL BENCH_shard.json: missing key $key"
      fail=1
    fi
  done
  check_simcheck_brand "$shd" BENCH_shard.json
  if command -v python3 >/dev/null 2>&1; then
    if ! python3 -c 'import json,sys; json.load(open(sys.argv[1]))' "$shd"; then
      echo "FAIL BENCH_shard.json: not valid JSON"
      fail=1
    fi
    # Perf gates on the sharding headlines: plan-locality scaling must hold
    # (served req/s through 2 and 4 shards vs 1, same per-shard config) and
    # every configuration must have returned bitwise-identical doses.  The
    # mechanism (engine-cache fit vs thrash) is machine-independent, so the
    # small-scale CI boxes clear these with a wide margin.
    if [ "${PROTONDOSE_BENCH_ALLOW_PERF_REGRESSION:-0}" != "1" ]; then
      if ! python3 - "$shd" <<'EOF'
import json, sys
rec = json.load(open(sys.argv[1]))
h = rec["headline"]
fail = False
def gate(name, value, limit, op):
    global fail
    ok = value <= limit if op == "<=" else value >= limit
    print(f"{'ok  ' if ok else 'FAIL'} headline {name} = {value} (want {op} {limit})")
    fail = fail or not ok
gate("speedup_2_shards", float(h["speedup_2_shards"]), 1.6, ">=")
gate("speedup_4_shards", float(h["speedup_4_shards"]), 2.5, ">=")
if rec["bitwise_identical"] is not True:
    print("FAIL bitwise_identical is not true")
    fail = True
sys.exit(1 if fail else 0)
EOF
      then
        echo "FAIL BENCH_shard.json: sharding perf gate" \
             "(set PROTONDOSE_BENCH_ALLOW_PERF_REGRESSION=1 to override)"
        fail=1
      fi
    fi
  fi
fi

echo "== checking BENCH_delta.json =="
dlt="$workdir/BENCH_delta.json"
if [ ! -f "$dlt" ]; then
  echo "FAIL BENCH_delta.json: not produced by wallclock_delta"
  fail=1
else
  for key in '"bench"' '"scale"' '"variant"' '"cases"' '"changed_frac"' \
             '"changed_cols"' '"delta_nnz"' '"touched_rows"' '"us_full"' \
             '"us_delta_bitwise"' '"us_delta_fast"' '"us_apply_bitwise"' \
             '"us_apply_fast"' '"bitwise_speedup"' '"fast_speedup"' \
             '"headline"'; do
    if ! grep -q "$key" "$dlt"; then
      echo "FAIL BENCH_delta.json: missing key $key"
      fail=1
    fi
  done
  check_simcheck_brand "$dlt" BENCH_delta.json
  if command -v python3 >/dev/null 2>&1; then
    if ! python3 -c 'import json,sys; json.load(open(sys.argv[1]))' "$dlt"; then
      echo "FAIL BENCH_delta.json: not valid JSON"
      fail=1
    fi
  fi
fi

# Benches that used to emit a CSV must still emit one.
for rel in "${!OLD_HEADER[@]}"; do
  if [ ! -f "$workdir/$rel" ]; then
    echo "FAIL $rel: previously present, not regenerated"
    fail=1
  fi
done

if [ "$fail" -ne 0 ]; then
  echo "bench results check FAILED"
  exit 1
fi
echo "bench results check passed"
