// protondose — command-line front end for the library.
//
// Subcommands:
//   generate   generate a case beam's dose deposition matrix and export it
//   stats      print Table I / Figure 2 style structure statistics
//   spmv       run a kernel on the simulated GPU and report modeled performance
//   optimize   run the treatment-plan optimizer on a case
//   serve-replay  replay a request stream through the batching dose service
//
// Run `protondose <subcommand> --help` for per-command options.

#include <algorithm>
#include <bit>
#include <cmath>
#include <future>
#include <memory>
#include <iostream>
#include <string>
#include <thread>

#include "cases/cases.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "service/dose_service.hpp"
#include "service/sharded_service.hpp"
#include "common/cli.hpp"
#include "common/error.hpp"
#include "common/table.hpp"
#include "gpusim/device.hpp"
#include "gpusim/profile.hpp"
#include "kernels/analytic.hpp"
#include "kernels/dose_engine.hpp"
#include "kernels/rsformat_spmv.hpp"
#include "kernels/sellcs_spmv.hpp"
#include "kernels/tuner.hpp"
#include "kernels/vector_csr.hpp"
#include "roofline/roofline.hpp"
#include "sparse/convert.hpp"
#include "opt/dvh.hpp"
#include "opt/optimizer.hpp"
#include "sparse/io.hpp"
#include "sparse/reference.hpp"
#include "sparse/stats.hpp"

namespace {

using pd::cases::CaseDefinition;

CaseDefinition case_by_name(const std::string& name, double scale) {
  if (name == "liver") {
    return pd::cases::liver_case(scale);
  }
  if (name == "prostate") {
    return pd::cases::prostate_case(scale);
  }
  throw pd::Error("unknown case '" + name + "' (expected liver or prostate)");
}

pd::gpusim::DeviceSpec device_by_name(const std::string& name) {
  if (name == "a100") return pd::gpusim::make_a100();
  if (name == "v100") return pd::gpusim::make_v100();
  if (name == "p100") return pd::gpusim::make_p100();
  throw pd::Error("unknown device '" + name + "' (expected a100|v100|p100)");
}

pd::sparse::CsrF64 load_or_generate(const pd::CliParser& cli) {
  const std::string in = cli.get("in");
  if (!in.empty()) {
    if (in.size() > 4 && in.substr(in.size() - 4) == ".mtx") {
      return pd::sparse::read_matrix_market_file(in);
    }
    return pd::sparse::read_binary_file(in);
  }
  const auto def = case_by_name(cli.get("case"), cli.get_double("scale"));
  const auto patient = pd::cases::build_phantom(def);
  return pd::cases::generate_beam(def, patient,
                                  static_cast<std::size_t>(cli.get_int("beam")))
      .matrix;
}

void add_source_options(pd::CliParser& cli) {
  cli.add_option("in", "", "input matrix (.mtx or .pdsm); overrides --case");
  cli.add_option("case", "liver", "case to generate: liver or prostate");
  cli.add_option("beam", "0", "beam index within the case");
  cli.add_option("scale", "1.0", "case scale");
}

int cmd_generate(int argc, const char* const* argv) {
  pd::CliParser cli("protondose generate",
                    "generate a dose deposition matrix and export it");
  add_source_options(cli);
  cli.add_option("out", "beam.pdsm", "output path (.mtx or .pdsm)");
  if (!cli.parse(argc, argv)) return 0;

  const auto matrix = load_or_generate(cli);
  const std::string out = cli.get("out");
  if (out.size() > 4 && out.substr(out.size() - 4) == ".mtx") {
    pd::sparse::write_matrix_market_file(out, matrix);
  } else {
    pd::sparse::write_binary_file(out, matrix);
  }
  std::cout << "wrote " << out << ": " << matrix.num_rows << " x "
            << matrix.num_cols << ", nnz " << matrix.nnz() << "\n";
  return 0;
}

int cmd_stats(int argc, const char* const* argv) {
  pd::CliParser cli("protondose stats", "matrix structure statistics");
  add_source_options(cli);
  if (!cli.parse(argc, argv)) return 0;

  const auto matrix = load_or_generate(cli);
  const auto s = pd::sparse::compute_stats(matrix);
  pd::TextTable t({"quantity", "value"});
  t.add_row({"rows (voxels)", std::to_string(s.rows)});
  t.add_row({"cols (spots)", std::to_string(s.cols)});
  t.add_row({"non-zeros", std::to_string(s.nnz)});
  t.add_row({"density", pd::fmt_percent(s.density, 2)});
  t.add_row({"empty rows", pd::fmt_percent(s.empty_row_fraction, 1)});
  t.add_row({"mean nnz / non-empty row",
             pd::fmt_double(s.mean_nnz_per_nonempty_row, 1)});
  t.add_row({"max row nnz", std::to_string(s.max_row_nnz)});
  t.add_row({"non-empty rows < 32 nnz",
             pd::fmt_percent(s.frac_nonempty_below_warp, 1)});
  t.add_row({"CSR size (half + u32 cols)",
             pd::fmt_bytes(static_cast<double>(s.csr_bytes(2, 4)))});
  std::cout << t.str();
  std::cout << "\ncumulative row-length histogram:\n";
  for (const auto& p : pd::sparse::cumulative_row_length_histogram(s, 12)) {
    std::cout << "  <= " << p.row_length << ": "
              << pd::fmt_percent(p.cumulative_fraction, 1) << "\n";
  }
  return 0;
}

// `spmv --tier fast`: execute on compressed storage (docs/fast_tier.md),
// report wall-clock + streamed-bytes ratio + worst deviation from the
// bitwise tier.  No modeled GPU numbers: the fast tier is host-native only.
// With --batch K > 1, additionally runs the batched fused kernel and checks
// it bitwise against K looped single-RHS products (nonzero exit on mismatch).
int run_spmv_fast_tier(const pd::CliParser& cli,
                       pd::kernels::DoseEngine& engine,
                       const std::vector<double>& weights,
                       const std::string& mode_str) {
  using Tier = pd::kernels::DoseEngine::Tier;
  using FastFormat = pd::kernels::DoseEngine::FastFormat;

  engine.set_backend(pd::kernels::DoseEngine::Backend::kNative);
  engine.set_native_threads(static_cast<unsigned>(cli.get_int("threads")));
  const std::vector<double> bitwise_dose = engine.compute(weights);

  const std::string fmt_str = cli.get("format");
  FastFormat fmt;
  std::string fmt_name = fmt_str;
  if (fmt_str == "auto") {
    engine.set_tier(Tier::kFast, FastFormat::kRsFormat);
    engine.set_tier(Tier::kFast, FastFormat::kSellCs);
    std::uint64_t sellq_bytes = 0;
    try {
      engine.set_tier(Tier::kFast, FastFormat::kSellCsQ);
      sellq_bytes =
          pd::kernels::sellcs_q_streamed_bytes(engine.fast_sellq_matrix());
    } catch (const pd::Error&) {
      // Quantized container unavailable (negative values or > 2^16 spots);
      // the three-way choice degrades to the float pair.
    }
    const auto choice = pd::kernels::choose_fast_format(
        pd::kernels::rsformat_streamed_bytes(engine.fast_rs_matrix()),
        pd::kernels::sellcs_streamed_bytes(engine.fast_sell_matrix()),
        sellq_bytes);
    fmt = choice.format;
    fmt_name = choice.format == FastFormat::kRsFormat ? "rsformat"
               : choice.format == FastFormat::kSellCsQ ? "sellcsq"
                                                       : "sellcs";
  } else if (fmt_str == "rsformat") {
    fmt = FastFormat::kRsFormat;
  } else if (fmt_str == "sellcs") {
    fmt = FastFormat::kSellCs;
  } else if (fmt_str == "sellcsq") {
    fmt = FastFormat::kSellCsQ;
  } else {
    throw pd::Error("unknown format '" + fmt_str +
                    "' (expected rsformat, sellcs, sellcsq, or auto)");
  }
  engine.set_tier(Tier::kFast, fmt);

  const std::uint64_t csr_bytes = engine.stored_matrix_as_double().bytes();
  const std::uint64_t fast_bytes =
      fmt == FastFormat::kRsFormat
          ? pd::kernels::rsformat_streamed_bytes(engine.fast_rs_matrix())
      : fmt == FastFormat::kSellCsQ
          ? pd::kernels::sellcs_q_streamed_bytes(engine.fast_sellq_matrix())
          : pd::kernels::sellcs_streamed_bytes(engine.fast_sell_matrix());
  const char* variant =
      fmt == FastFormat::kRsFormat
          ? pd::kernels::rsformat_spmv_variant_name()
      : fmt == FastFormat::kSellCsQ
          ? pd::kernels::sellcs_q_spmv_variant_name(
                engine.fast_sellq_matrix().chunk_height)
          : pd::kernels::sellcs_spmv_variant_name(
                engine.fast_sell_matrix().chunk_height);

  std::vector<double> fast_dose = engine.compute(weights);  // warm-up
  double best_s = 1e300;
  for (int rep = 0; rep < 5; ++rep) {
    pd::WallTimer timer;
    fast_dose = engine.compute(weights);
    best_s = std::min(best_s, timer.seconds());
  }

  double max_abs = 0.0, max_ref = 0.0;
  for (std::size_t r = 0; r < fast_dose.size(); ++r) {
    max_abs = std::max(max_abs, std::abs(fast_dose[r] - bitwise_dose[r]));
    max_ref = std::max(max_ref, std::abs(bitwise_dose[r]));
  }

  pd::TextTable t({"quantity", "value"});
  t.add_row({"tier", "fast (" + fmt_name + ", " + variant + ")"});
  t.add_row({"mode", mode_str});
  t.add_row({"native threads",
             std::to_string(engine.native_threads())});
  t.add_row({"wall-clock / product", pd::fmt_sci(best_s, 3) + " s"});
  t.add_row({"streamed bytes",
             pd::fmt_bytes(static_cast<double>(fast_bytes)) + " vs " +
                 pd::fmt_bytes(static_cast<double>(csr_bytes)) +
                 " CSR-double"});
  t.add_row({"streamed-bytes ratio",
             pd::fmt_double(static_cast<double>(fast_bytes) /
                                static_cast<double>(csr_bytes),
                            3)});
  t.add_row({"max |fast - bitwise|",
             pd::fmt_sci(max_abs, 3) + " (dose max " +
                 pd::fmt_sci(max_ref, 3) + ")"});

  // --batch K: run the K-wide fused launch against K looped single-RHS
  // products on the same tier/format and verify bitwise equality (the
  // batched kernel's contract, docs/fast_tier.md).
  const int batch_k = cli.get_int("batch");
  std::size_t batch_mismatches = 0;
  if (batch_k > 1) {
    const std::size_t k = static_cast<std::size_t>(batch_k);
    const std::size_t spots = engine.num_spots();
    std::vector<double> batch_weights(k * spots);
    pd::Rng rng(7);
    for (double& v : batch_weights) v = rng.uniform(0.0, 2.0);

    std::vector<std::vector<double>> looped(k);
    const auto run_looped = [&] {
      for (std::size_t j = 0; j < k; ++j) {
        looped[j] = engine.compute(std::span<const double>(
            batch_weights.data() + j * spots, spots));
      }
    };
    const auto run_batched = [&] {
      return engine.compute_batch(batch_weights, k);
    };
    run_looped();
    std::vector<std::vector<double>> batched = run_batched();  // warm-up
    double loop_s = 1e300, batch_s = 1e300;
    for (int rep = 0; rep < 5; ++rep) {
      pd::WallTimer lt;
      run_looped();
      loop_s = std::min(loop_s, lt.seconds());
      pd::WallTimer bt;
      batched = run_batched();
      batch_s = std::min(batch_s, bt.seconds());
    }
    for (std::size_t j = 0; j < k; ++j) {
      for (std::size_t r = 0; r < looped[j].size(); ++r) {
        batch_mismatches += std::bit_cast<std::uint64_t>(batched[j][r]) !=
                            std::bit_cast<std::uint64_t>(looped[j][r]);
      }
    }
    t.add_row({"batched K=" + std::to_string(k),
               pd::fmt_sci(batch_s, 3) + " s vs " + pd::fmt_sci(loop_s, 3) +
                   " s looped (" + pd::fmt_double(loop_s / batch_s, 2) +
                   "x)"});
    t.add_row({"batched vs looped",
               batch_mismatches == 0
                   ? "bitwise identical (" + std::to_string(k) + " doses)"
                   : std::to_string(batch_mismatches) + " MISMATCHED values"});
  }
  std::cout << t.str();
  if (cli.get_flag("check")) {
    std::cout << "\nsimcheck: fast tier executes host-native; no simulated "
                 "launches to check\n";
  }
  return batch_mismatches == 0 ? 0 : 2;
}

int cmd_spmv(int argc, const char* const* argv) {
  pd::CliParser cli("protondose spmv",
                    "run a dose-calculation SpMV on the simulated GPU");
  add_source_options(cli);
  cli.add_option("device", "a100", "simulated device: a100, v100, p100");
  cli.add_option("mode", "half_double", "precision: half_double, single, double");
  cli.add_option("tpb", "512", "threads per block");
  cli.add_option("tier", "bitwise",
                 "accuracy tier: bitwise (simulated GPU, default) or fast "
                 "(host-native compute on compressed storage, "
                 "docs/fast_tier.md)");
  cli.add_option("format", "rsformat",
                 "fast-tier container: rsformat, sellcs, sellcsq, or auto "
                 "(fewest streamed bytes wins)");
  cli.add_option("threads", "1",
                 "native threads for the fast tier (0 = all hardware)");
  cli.add_option("batch", "1",
                 "fast tier only: also run a K-wide batched launch and "
                 "verify it bitwise against K looped products");
  cli.add_flag("profile", "print the full Nsight-style kernel profile");
  cli.add_flag("check", "run under the simcheck correctness analyzer "
                        "(memcheck/racecheck/synccheck/initcheck/"
                        "determinism-lint); nonzero exit on findings");
  if (!cli.parse(argc, argv)) return 0;

  const std::string mode_str = cli.get("mode");
  pd::kernels::DoseEngine::Mode mode;
  if (mode_str == "half_double") {
    mode = pd::kernels::DoseEngine::Mode::kHalfDouble;
  } else if (mode_str == "single") {
    mode = pd::kernels::DoseEngine::Mode::kSingle;
  } else if (mode_str == "double") {
    mode = pd::kernels::DoseEngine::Mode::kDouble;
  } else {
    throw pd::Error("unknown mode: " + mode_str);
  }

  pd::kernels::DoseEngine engine(
      load_or_generate(cli), device_by_name(cli.get("device")), mode,
      static_cast<unsigned>(cli.get_int("tpb")));
  if (cli.get_flag("check")) {
    engine.enable_check();
  }
  const std::vector<double> weights(engine.num_spots(), 1.0);

  const std::string tier_str = cli.get("tier");
  if (tier_str == "fast") {
    return run_spmv_fast_tier(cli, engine, weights, mode_str);
  }
  if (tier_str != "bitwise") {
    throw pd::Error("unknown tier '" + tier_str +
                    "' (expected bitwise or fast)");
  }
  engine.compute(weights);
  const auto est = engine.last_estimate();

  pd::TextTable t({"quantity", "value"});
  t.add_row({"kernel", mode_str});
  t.add_row({"device", cli.get("device")});
  t.add_row({"modeled time", pd::fmt_sci(est.seconds, 3) + " s"});
  t.add_row({"GFLOP/s", pd::fmt_double(est.gflops, 1)});
  t.add_row({"DRAM bandwidth", pd::fmt_double(est.dram_gbs, 1) + " GB/s (" +
                                   pd::fmt_percent(est.bandwidth_fraction, 1) +
                                   " of peak)"});
  t.add_row({"operational intensity",
             pd::fmt_double(est.operational_intensity, 3) + " FLOP/B"});
  t.add_row({"occupancy", pd::fmt_percent(est.occupancy, 0)});
  std::cout << t.str();
  if (cli.get_flag("profile")) {
    pd::gpusim::PerfInput in;
    in.stats = engine.last_run().stats;
    in.config = engine.last_run().config;
    in.precision = engine.last_run().precision;
    in.mean_work_per_warp = engine.stats().mean_nnz_per_nonempty_row;
    std::cout << "\n"
              << pd::gpusim::profile_report(
                     device_by_name(cli.get("device")), in, est, mode_str);
  }
  if (engine.check_enabled()) {
    std::cout << "\n" << engine.check_report().summary();
    if (!engine.check_report().clean()) {
      return 2;
    }
  }
  return 0;
}

int cmd_optimize(int argc, const char* const* argv) {
  pd::CliParser cli("protondose optimize",
                    "optimize spot weights for a generated case");
  cli.add_option("case", "prostate", "case: liver or prostate");
  cli.add_option("beam", "0", "beam index");
  cli.add_option("scale", "0.5", "case scale");
  cli.add_option("iterations", "25", "optimizer iterations");
  cli.add_option("device", "a100", "simulated device");
  if (!cli.parse(argc, argv)) return 0;

  const auto def = case_by_name(cli.get("case"), cli.get_double("scale"));
  const auto patient = pd::cases::build_phantom(def);
  const auto beam = pd::cases::generate_beam(
      def, patient, static_cast<std::size_t>(cli.get_int("beam")));

  std::vector<double> probe(beam.matrix.num_rows);
  pd::sparse::reference_spmv(beam.matrix,
                             std::vector<double>(beam.matrix.num_cols, 1.0),
                             probe);
  double max_dose = 0.0;
  for (const double d : probe) max_dose = std::max(max_dose, d);
  const double prescription = 0.5 * max_dose;

  pd::opt::OptimizerConfig cfg;
  cfg.max_iterations = static_cast<unsigned>(cli.get_int("iterations"));
  pd::opt::PlanOptimizer optimizer(
      beam.matrix,
      pd::opt::DoseObjective::standard_goals(patient, prescription,
                                             0.4 * prescription),
      device_by_name(cli.get("device")), cfg);
  const auto result = optimizer.optimize();

  const auto target_dvh =
      pd::opt::Dvh::for_roi(patient, pd::phantom::Roi::kTarget, result.dose);
  pd::TextTable t({"quantity", "value"});
  t.add_row({"iterations", std::to_string(result.iterations)});
  t.add_row({"SpMV products", std::to_string(result.spmv_count)});
  t.add_row({"objective", pd::fmt_sci(result.objective_history.front(), 2) +
                              " -> " +
                              pd::fmt_sci(result.objective_history.back(), 2)});
  t.add_row({"prescription", pd::fmt_double(prescription, 3)});
  t.add_row({"target D95", pd::fmt_double(target_dvh.dose_at_volume(0.95), 3)});
  t.add_row({"target mean", pd::fmt_double(target_dvh.mean_dose(), 3)});
  t.add_row({"homogeneity index",
             pd::fmt_double(pd::opt::homogeneity_index(target_dvh), 3)});
  std::cout << t.str();
  return 0;
}

int cmd_roofline(int argc, const char* const* argv) {
  pd::CliParser cli("protondose roofline",
                    "ASCII roofline of the kernel family on a matrix");
  add_source_options(cli);
  cli.add_option("device", "a100", "simulated device: a100, v100, p100");
  if (!cli.parse(argc, argv)) return 0;

  const auto matrix = load_or_generate(cli);
  const auto spec = device_by_name(cli.get("device"));
  pd::gpusim::Gpu gpu(spec);
  const auto stats = pd::sparse::compute_stats(matrix);

  std::vector<pd::roofline::RooflinePoint> points;
  for (const auto mode : {pd::kernels::DoseEngine::Mode::kHalfDouble,
                          pd::kernels::DoseEngine::Mode::kSingle,
                          pd::kernels::DoseEngine::Mode::kDouble}) {
    pd::kernels::DoseEngine engine(pd::sparse::CsrF64(matrix), spec, mode);
    engine.compute(std::vector<double>(matrix.num_cols, 1.0));
    const auto est = engine.last_estimate();
    const char* label = mode == pd::kernels::DoseEngine::Mode::kHalfDouble
                            ? "Half/Double"
                            : mode == pd::kernels::DoseEngine::Mode::kSingle
                                  ? "Single"
                                  : "Double";
    points.push_back({label, est.operational_intensity, est.gflops});
  }
  const auto model =
      pd::roofline::make_roofline(spec, pd::gpusim::FlopPrecision::kFp64);
  std::cout << pd::roofline::ascii_roofline(model, points) << "\n";
  (void)stats;
  return 0;
}

// `tune --fast`: run the measurement-driven fast-tier autotuner
// (kernels/tuner.hpp) and print the winning TunedConfig plus the candidate
// table.  --trials 0 pins the fully deterministic byte-model mode (the same
// pin CI uses via PROTONDOSE_TUNER_TRIALS).
int run_tune_fast_tier(const pd::CliParser& cli) {
  pd::kernels::DoseEngine engine(
      load_or_generate(cli), device_by_name(cli.get("device")),
      pd::kernels::DoseEngine::Mode::kHalfDouble,
      pd::kernels::kDefaultVectorTpb, pd::kernels::SpmvFamily::kVector,
      pd::kernels::DoseEngine::Backend::kNative);

  pd::kernels::TuneOptions opts = pd::kernels::tune_options_from_env();
  const int trials = cli.get_int("trials");
  if (trials >= 0) {
    opts.trials = static_cast<unsigned>(trials);
  }
  opts.probe_batch = static_cast<std::size_t>(
      std::max<std::int64_t>(1, cli.get_int("batch")));
  const pd::kernels::TunedConfig config =
      pd::kernels::autotune_fast_tier(engine, opts);

  const auto fmt_name = [](pd::kernels::DoseEngine::FastFormat f) {
    switch (f) {
      case pd::kernels::DoseEngine::FastFormat::kRsFormat: return "rsformat";
      case pd::kernels::DoseEngine::FastFormat::kSellCs: return "sellcs";
      case pd::kernels::DoseEngine::FastFormat::kSellCsQ: return "sellcsq";
      case pd::kernels::DoseEngine::FastFormat::kAuto: return "auto";
    }
    return "?";
  };

  pd::TextTable t({"quantity", "value"});
  t.add_row({"chosen format", fmt_name(config.format)});
  if (config.format != pd::kernels::DoseEngine::FastFormat::kRsFormat) {
    t.add_row({"chunk height C", std::to_string(config.sell_c)});
    t.add_row({"sort window sigma", std::to_string(config.sell_sigma)});
  }
  t.add_row({"fast threads", std::to_string(config.fast_threads)});
  t.add_row({"batch width", std::to_string(config.batch_width)});
  if (config.batched_speedup > 0.0) {
    t.add_row({"batched speedup",
               pd::fmt_double(config.batched_speedup, 2) + "x"});
  }
  t.add_row({"streamed bytes",
             pd::fmt_bytes(static_cast<double>(config.streamed_bytes))});
  if (config.us_per_product > 0.0) {
    t.add_row({"us / product", pd::fmt_double(config.us_per_product, 1)});
  }
  t.add_row({"trials", std::to_string(config.trials) +
                           (config.trials == 0 ? " (model-only)" : "")});
  std::cout << t.str();

  pd::TextTable c({"candidate", "streamed bytes", "us/product"});
  for (const pd::kernels::TuneCandidate& cand : config.candidates) {
    std::string name = fmt_name(cand.format);
    if (cand.format != pd::kernels::DoseEngine::FastFormat::kRsFormat) {
      name += " C=" + std::to_string(cand.sell_c) +
              " sigma=" + std::to_string(cand.sell_sigma);
    }
    c.add_row({name,
               pd::fmt_bytes(static_cast<double>(cand.streamed_bytes)),
               cand.measured ? pd::fmt_double(cand.us_per_product, 1)
                             : "(model)"});
  }
  std::cout << "\n" << c.str();
  return 0;
}

int cmd_tune(int argc, const char* const* argv) {
  pd::CliParser cli("protondose tune",
                    "threads-per-block sweep for the Half/Double kernel, or "
                    "(--fast) the fast-tier container/geometry autotuner");
  add_source_options(cli);
  cli.add_option("device", "a100", "simulated device: a100, v100, p100");
  cli.add_flag("fast", "autotune the fast tier (docs/fast_tier.md) instead "
                       "of sweeping threads-per-block");
  cli.add_option("trials", "-1",
                 "--fast: measurement repeats per candidate (0 = "
                 "deterministic byte-model only; -1 = PROTONDOSE_TUNER_TRIALS "
                 "or default)");
  cli.add_option("batch", "1",
                 "--fast: probe a K-wide batched launch for the tuned config");
  if (!cli.parse(argc, argv)) return 0;

  if (cli.get_flag("fast")) {
    return run_tune_fast_tier(cli);
  }

  const auto matrix = load_or_generate(cli);
  const auto stats = pd::sparse::compute_stats(matrix);
  const auto mh = pd::sparse::convert_values<pd::Half>(matrix);
  const std::vector<double> x(matrix.num_cols, 1.0);
  std::vector<double> y(matrix.num_rows);

  pd::gpusim::Gpu gpu(device_by_name(cli.get("device")));
  const auto result = pd::kernels::tune_block_size(
      gpu.spec(),
      [&](unsigned tpb) {
        return pd::kernels::run_vector_csr<pd::Half, double>(
            gpu, mh, x, std::span<double>(y), tpb);
      },
      stats.mean_nnz_per_nonempty_row);

  pd::TextTable t({"threads/block", "GFLOP/s", "GB/s", "occupancy"});
  for (const auto& p : result.points) {
    t.add_row({std::to_string(p.threads_per_block),
               pd::fmt_double(p.estimate.gflops, 1),
               pd::fmt_double(p.estimate.dram_gbs, 1),
               pd::fmt_percent(p.estimate.occupancy, 0)});
  }
  std::cout << t.str() << "\nbest: " << result.best_threads_per_block
            << " threads/block\n";
  return 0;
}

// `protondose delta`: change a fraction of spot weights, update the dose
// incrementally (docs/delta_engine.md), and compare against full recompute.
// Verifies the bitwise-mode result on the spot: nonzero exit on mismatch.
int cmd_delta(int argc, const char* const* argv) {
  pd::CliParser cli("protondose delta",
                    "incremental dose update vs full recompute");
  add_source_options(cli);
  cli.add_option("changed-frac", "0.01",
                 "fraction of spot weights to change (at least one spot)");
  cli.add_option("mode", "half_double",
                 "precision: half_double, single, double");
  cli.add_option("threads", "1", "native threads (0 = all hardware)");
  cli.add_option("seed", "1", "weight / changed-spot seed");
  if (!cli.parse(argc, argv)) return 0;

  using Engine = pd::kernels::DoseEngine;
  const std::string mode_str = cli.get("mode");
  Engine::Mode mode;
  if (mode_str == "half_double") {
    mode = Engine::Mode::kHalfDouble;
  } else if (mode_str == "single") {
    mode = Engine::Mode::kSingle;
  } else if (mode_str == "double") {
    mode = Engine::Mode::kDouble;
  } else {
    throw pd::Error("unknown mode: " + mode_str);
  }

  Engine engine(load_or_generate(cli), pd::gpusim::make_a100(), mode,
                pd::kernels::kDefaultVectorTpb, Engine::Family::kVector,
                Engine::Backend::kNative);
  engine.set_native_threads(static_cast<unsigned>(cli.get_int("threads")));
  const std::size_t spots = engine.num_spots();

  pd::Rng rng(static_cast<std::uint64_t>(cli.get_int("seed")));
  std::vector<double> w(spots);
  for (double& v : w) v = rng.uniform(0.5, 2.0);
  const double frac = cli.get_double("changed-frac");
  const std::size_t k = std::min<std::size_t>(
      spots, std::max<std::size_t>(
                 1, static_cast<std::size_t>(
                        std::llround(frac * static_cast<double>(spots)))));
  std::vector<double> w_new = w;
  std::vector<std::uint8_t> used(spots, 0);
  for (std::size_t changed = 0; changed < k;) {
    const std::size_t j = rng.uniform_index(spots);
    if (used[j] == 0) {
      used[j] = 1;
      w_new[j] = w[j] * 1.1 + 0.01;
      ++changed;
    }
  }

  const std::vector<double> base = engine.compute(w);
  const std::vector<double> full = engine.compute(w_new);

  const auto time_min = [&](const auto& fn) {
    fn();  // warm-up (also builds the CSC sidecar for the delta paths)
    double best_s = 1e300;
    for (int rep = 0; rep < 5; ++rep) {
      pd::WallTimer timer;
      fn();
      best_s = std::min(best_s, timer.seconds());
    }
    return best_s;
  };
  const double s_full = time_min([&] { engine.compute(w_new); });
  const double s_bitwise = time_min(
      [&] { engine.compute_delta(base, w, w_new, Engine::DeltaMode::kBitwise); });
  const double s_fast = time_min(
      [&] { engine.compute_delta(base, w, w_new, Engine::DeltaMode::kFast); });

  const std::vector<double> delta_dose =
      engine.compute_delta(base, w, w_new, Engine::DeltaMode::kBitwise);
  const Engine::DeltaRun run = engine.last_delta();
  std::size_t mismatches = 0;
  for (std::size_t r = 0; r < full.size(); ++r) {
    mismatches += std::bit_cast<std::uint64_t>(delta_dose[r]) !=
                  std::bit_cast<std::uint64_t>(full[r]);
  }

  const pd::sparse::MatrixStats& st = engine.stats();
  const std::size_t value_bytes =
      mode == Engine::Mode::kHalfDouble ? 2
      : mode == Engine::Mode::kSingle   ? 4
                                        : 8;
  const pd::kernels::DeltaThreshold threshold = pd::kernels::delta_threshold(
      st.csr_bytes(value_bytes, 4), st.nnz, st.cols);

  pd::TextTable t({"quantity", "value"});
  t.add_row({"mode", mode_str});
  t.add_row({"changed spots", std::to_string(run.changed_cols) + " of " +
                                  std::to_string(spots) + " (" +
                                  pd::fmt_percent(frac, 2) + " requested)"});
  t.add_row({"delta nnz", std::to_string(run.delta_nnz) + " of " +
                              std::to_string(st.nnz)});
  t.add_row({"touched rows", std::to_string(run.touched_rows) + " of " +
                                 std::to_string(st.rows)});
  t.add_row({"tuner breakeven frac",
             pd::fmt_double(threshold.breakeven_changed_frac, 4)});
  t.add_row({"full recompute", pd::fmt_sci(s_full, 3) + " s"});
  t.add_row({"bitwise delta", pd::fmt_sci(s_bitwise, 3) + " s (" +
                                  pd::fmt_double(s_full / s_bitwise, 1) +
                                  "x)"});
  t.add_row({"fast delta (" +
                 std::string(pd::kernels::delta_spmv_variant_name()) + ")",
             pd::fmt_sci(s_fast, 3) + " s (" +
                 pd::fmt_double(s_full / s_fast, 1) + "x)"});
  t.add_row({"bitwise vs full", mismatches == 0
                                    ? "identical (" +
                                          std::to_string(full.size()) +
                                          " rows)"
                                    : std::to_string(mismatches) +
                                          " MISMATCHED rows"});
  std::cout << t.str();
  return mismatches == 0 ? 0 : 2;
}

int cmd_serve_replay(int argc, const char* const* argv) {
  pd::CliParser cli(
      "protondose serve-replay",
      "replay a synthetic optimizer request stream through DoseService");
  add_source_options(cli);
  cli.add_option("backend", "native", "execution backend: native or gpusim");
  cli.add_option("workers", "2", "service worker threads");
  cli.add_option("batch-cap", "8", "max requests coalesced per launch");
  cli.add_option("queue-bound", "256", "queue depth before backpressure");
  cli.add_option("flush-ms", "2.0", "partial-batch flush deadline (ms)");
  cli.add_option("clients", "4", "concurrent client threads");
  cli.add_option("requests", "64", "requests per client");
  cli.add_option("deadline-ms", "0", "per-request queue deadline (0 = none)");
  cli.add_option("seed", "1", "weight-stream seed");
  cli.add_option("delta-every", "0",
                 "every Nth request per client is an incremental submit_delta "
                 "against a per-client base dose (0 = none)");
  cli.add_option("shards", "1", "DoseService shards behind the router");
  cli.add_option("replicate", "1", "replica-set size per plan");
  cli.add_option("slices", "0",
                 "register the plan column-sliced into N row blocks "
                 "(0 = whole plan; incompatible with --delta-every)");
  if (!cli.parse(argc, argv)) return 0;

  const std::string backend_str = cli.get("backend");
  pd::kernels::DoseEngine::Backend backend;
  if (backend_str == "native") {
    backend = pd::kernels::DoseEngine::Backend::kNative;
  } else if (backend_str == "gpusim") {
    backend = pd::kernels::DoseEngine::Backend::kGpusim;
  } else {
    throw pd::Error("unknown backend: " + backend_str);
  }

  const auto matrix = load_or_generate(cli);
  const std::size_t spots = matrix.num_cols;

  pd::service::ShardedServiceConfig config;
  config.shards = static_cast<std::size_t>(
      std::max<std::int64_t>(1, cli.get_int("shards")));
  config.replication = static_cast<std::size_t>(
      std::max<std::int64_t>(1, cli.get_int("replicate")));
  config.shard.workers = static_cast<unsigned>(cli.get_int("workers"));
  config.shard.batch_cap = static_cast<std::size_t>(cli.get_int("batch-cap"));
  config.shard.queue_bound =
      static_cast<std::size_t>(cli.get_int("queue-bound"));
  config.shard.flush_deadline_ms = cli.get_double("flush-ms");
  config.shard.default_deadline_ms = cli.get_double("deadline-ms");
  config.shard.engine.device = pd::gpusim::make_a100();
  config.shard.engine.backend = backend;

  const std::size_t slices = static_cast<std::size_t>(
      std::max<std::int64_t>(0, cli.get_int("slices")));
  const std::size_t delta_every =
      static_cast<std::size_t>(
          std::max<std::int64_t>(0, cli.get_int("delta-every")));
  if (slices > 0 && delta_every > 0) {
    throw pd::Error(
        "--slices and --delta-every are incompatible: a delta base holds a "
        "full dose, which no single slice shard can update");
  }

  pd::service::ShardedDoseService service(config);
  const auto source = [&matrix] { return pd::sparse::CsrF64(matrix); };
  if (slices > 0) {
    service.register_plan_sliced("replay", source, slices);
  } else {
    service.register_plan("replay", source);
  }

  const std::size_t clients = static_cast<std::size_t>(cli.get_int("clients"));
  const std::size_t requests =
      static_cast<std::size_t>(cli.get_int("requests"));
  const std::uint64_t seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  pd::WallTimer timer;
  std::vector<std::vector<pd::service::Ticket>> tickets(clients);
  {
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (std::size_t c = 0; c < clients; ++c) {
      threads.emplace_back([&service, &tickets, c, requests, spots, seed,
                            delta_every] {
        pd::Rng rng(seed + c);
        // Optional incremental traffic: compute one base dose up front, then
        // every delta_every-th request updates it via submit_delta (per-client
        // base key, so one client's deltas coalesce with each other).
        std::shared_ptr<const pd::service::DeltaBase> base;
        if (delta_every > 0) {
          std::vector<double> w(spots);
          for (double& v : w) v = rng.uniform(0.0, 2.0);
          pd::service::Ticket first =
              service.submit("replay", std::vector<double>(w));
          pd::service::DoseResult result = first.result.get();
          if (result.status == pd::service::RequestStatus::kOk) {
            auto b = std::make_shared<pd::service::DeltaBase>();
            b->key = static_cast<std::uint32_t>(c);
            b->weights = std::move(w);
            b->dose = std::move(result.dose);
            base = std::move(b);
          }
        }
        tickets[c].reserve(requests);
        for (std::size_t r = 0; r < requests; ++r) {
          if (base && (r + 1) % delta_every == 0) {
            std::vector<double> w_new = base->weights;
            const std::size_t changed =
                std::max<std::size_t>(1, spots / 100);
            for (std::size_t i = 0; i < changed; ++i) {
              w_new[rng.uniform_index(spots)] += rng.uniform(0.0, 0.5);
            }
            tickets[c].push_back(
                service.submit_delta("replay", base, std::move(w_new)));
            continue;
          }
          std::vector<double> weights(spots);
          for (double& w : weights) w = rng.uniform(0.0, 2.0);
          tickets[c].push_back(service.submit("replay", std::move(weights)));
        }
      });
    }
    for (std::thread& t : threads) t.join();
  }
  service.drain();
  std::size_t ok = 0, other = 0;
  for (auto& client_tickets : tickets) {
    for (pd::service::Ticket& ticket : client_tickets) {
      const pd::service::DoseResult result = ticket.result.get();
      (result.status == pd::service::RequestStatus::kOk ? ok : other) += 1;
    }
  }
  const double elapsed_s = timer.seconds();

  const pd::service::ShardedServiceStats stats = service.stats();
  std::uint64_t batches = 0, delta_batches = 0, rejected = 0, expired = 0;
  std::uint64_t hits = 0, misses = 0, evictions = 0;
  std::size_t max_depth = 0;
  double batch_requests = 0.0, p50 = 0.0, p99 = 0.0;
  std::string routed;
  for (const pd::service::ServiceStats& shard : stats.shards) {
    batches += shard.batches;
    delta_batches += shard.delta_batches;
    rejected += shard.rejected;
    expired += shard.expired;
    hits += shard.cache.hits;
    misses += shard.cache.misses;
    evictions += shard.cache.evictions;
    max_depth = std::max(max_depth, shard.max_queue_depth);
    batch_requests +=
        static_cast<double>(shard.batches) * shard.mean_batch_size();
    p50 = std::max(p50, shard.p50_latency_ms);
    p99 = std::max(p99, shard.p99_latency_ms);
  }
  for (const std::uint64_t n : stats.routed_per_shard) {
    routed += (routed.empty() ? "" : " / ") + std::to_string(n);
  }

  pd::TextTable t({"quantity", "value"});
  t.add_row({"backend", backend_str});
  t.add_row({"shards / replicate / slices",
             std::to_string(config.shards) + " / " +
                 std::to_string(config.replication) + " / " +
                 std::to_string(slices)});
  t.add_row({"workers / batch cap",
             std::to_string(config.shard.workers) + " / " +
                 std::to_string(config.shard.batch_cap)});
  t.add_row({"requests ok / other",
             std::to_string(ok) + " / " + std::to_string(other)});
  t.add_row({"throughput", pd::fmt_double(
                               static_cast<double>(ok) / elapsed_s, 1) +
                               " req/s"});
  t.add_row({"routed per shard", routed});
  t.add_row({"rerouted / replica spills",
             std::to_string(stats.rerouted) + " / " +
                 std::to_string(stats.replica_spills)});
  t.add_row({"compute_batch launches", std::to_string(batches)});
  t.add_row({"delta launches", std::to_string(delta_batches)});
  t.add_row({"mean batch size",
             pd::fmt_double(batches > 0 ? batch_requests /
                                              static_cast<double>(batches)
                                        : 0.0,
                            2)});
  t.add_row({"p50 / p99 latency (worst shard)",
             pd::fmt_double(p50, 2) + " / " + pd::fmt_double(p99, 2) + " ms"});
  t.add_row({"max queue depth (worst shard)", std::to_string(max_depth)});
  t.add_row({"rejected / expired",
             std::to_string(rejected) + " / " + std::to_string(expired)});
  t.add_row({"cache hit / miss / evict",
             std::to_string(hits) + " / " + std::to_string(misses) + " / " +
                 std::to_string(evictions)});
  std::cout << t.str();
  return 0;
}

void print_usage() {
  std::cout << "protondose <subcommand> [options]\n\n"
               "subcommands:\n"
               "  generate   generate and export a dose deposition matrix\n"
               "  stats      matrix structure statistics (Table I / Fig. 2)\n"
               "  spmv       simulated-GPU dose calculation + perf model\n"
               "  roofline   ASCII roofline of the kernel family\n"
               "  tune       threads-per-block sweep (Figure 4)\n"
               "  optimize   run the treatment-plan optimizer\n"
               "  delta      incremental dose update vs full recompute\n"
               "             (docs/delta_engine.md)\n"
               "  serve-replay  replay a request stream through the batching\n"
               "                dose service and report serving stats\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    print_usage();
    return 1;
  }
  const std::string cmd = argv[1];
  // Shift argv so subcommand parsers see their own options.
  const int sub_argc = argc - 1;
  const char* const* sub_argv = argv + 1;
  try {
    if (cmd == "generate") return cmd_generate(sub_argc, sub_argv);
    if (cmd == "stats") return cmd_stats(sub_argc, sub_argv);
    if (cmd == "spmv") return cmd_spmv(sub_argc, sub_argv);
    if (cmd == "roofline") return cmd_roofline(sub_argc, sub_argv);
    if (cmd == "tune") return cmd_tune(sub_argc, sub_argv);
    if (cmd == "optimize") return cmd_optimize(sub_argc, sub_argv);
    if (cmd == "delta") return cmd_delta(sub_argc, sub_argv);
    if (cmd == "serve-replay") return cmd_serve_replay(sub_argc, sub_argv);
    if (cmd == "--help" || cmd == "-h" || cmd == "help") {
      print_usage();
      return 0;
    }
    std::cerr << "unknown subcommand: " << cmd << "\n";
    print_usage();
    return 1;
  } catch (const pd::Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
