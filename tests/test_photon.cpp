// Tests for the photon modality: depth-dose physics and the §II-A claim that
// photon matrices have different structural characteristics than proton ones
// on the same geometry.

#include <gtest/gtest.h>

#include "mc/generator.hpp"
#include "mc/photon.hpp"
#include "sparse/stats.hpp"

namespace pd::mc {
namespace {

TEST(PhotonModel, BuildupPeaksNearDmax) {
  const PhotonModel model;
  double best_depth = 0.0, best = 0.0;
  for (double z = 0.0; z < 10.0; z += 0.01) {
    const double d = model.depth_dose(z);
    if (d > best) {
      best = d;
      best_depth = z;
    }
  }
  EXPECT_NEAR(best_depth, model.buildup_depth_cm, 1.2);
  EXPECT_NEAR(best, 1.0, 0.05);  // normalized near d_max
}

TEST(PhotonModel, SurfaceSparing) {
  const PhotonModel model;
  EXPECT_EQ(model.depth_dose(0.0), 0.0);
  EXPECT_LT(model.depth_dose(0.2), 0.5);  // skin-sparing build-up
}

TEST(PhotonModel, ExponentialTailNeverReachesZero) {
  const PhotonModel model;
  // Unlike the Bragg curve, photons keep depositing through the patient.
  EXPECT_GT(model.depth_dose(10.0), 0.3);
  EXPECT_GT(model.depth_dose(25.0), 0.1);
  EXPECT_LT(model.depth_dose(25.0), model.depth_dose(10.0));  // monotone decay
}

class PhotonVsProton : public ::testing::Test {
 protected:
  static const phantom::Phantom& patient() {
    static const phantom::Phantom kPhantom =
        phantom::make_liver_phantom(22, 22, 12, 6.0);
    return kPhantom;
  }

  static phantom::BeamConfig beam_config() {
    phantom::BeamConfig cfg;
    cfg.spot_spacing_mm = 8.0;
    cfg.layer_spacing_mm = 8.0;
    cfg.lateral_margin_mm = 6.0;
    return cfg;
  }
};

TEST_F(PhotonVsProton, BeamletsHaveNoEnergyLayers) {
  const auto frame = phantom::make_beam_frame(patient(), 0.0);
  const auto beamlets =
      generate_photon_beamlets(patient(), frame, beam_config());
  ASSERT_GT(beamlets.size(), 10u);
  for (const auto& b : beamlets) {
    EXPECT_EQ(b.layer, 0u);
  }
  // Proton spots on the same geometry need several layers per position.
  const auto spots = phantom::generate_spots(patient(), frame, beam_config());
  EXPECT_GT(spots.size(), 2 * beamlets.size());
}

TEST_F(PhotonVsProton, GeneratesValidDeterministicMatrix) {
  const GeneratedBeam a = generate_photon_dose_matrix(
      patient(), 45.0, beam_config(), TransportConfig{}, PhotonModel{}, 9);
  EXPECT_NO_THROW(a.matrix.validate());
  EXPECT_EQ(a.matrix.num_cols, a.spots.size());
  EXPECT_GT(a.matrix.nnz(), 100u);
  const GeneratedBeam b = generate_photon_dose_matrix(
      patient(), 45.0, beam_config(), TransportConfig{}, PhotonModel{}, 9);
  EXPECT_EQ(a.matrix.values, b.matrix.values);
}

TEST_F(PhotonVsProton, PhotonColumnsAreLongerAndDenser) {
  // §II-A: modality changes the matrix characteristics.  A photon beamlet
  // deposits along its whole path (no Bragg stop), so for a small deep
  // target its columns hold more voxels and the matrix is denser — protons
  // stop at the target, photons exit through the far side.
  phantom::Phantom deep(phantom::VoxelGrid(26, 26, 14, 6.0), "deep");
  const auto c = deep.grid().grid_center();
  deep.paint(phantom::Ellipsoid{c, {72.0, 72.0, 40.0}}, phantom::Roi::kTissue,
             1.0);
  deep.paint(phantom::Ellipsoid{{c.x + 30.0, c.y, c.z}, {14.0, 14.0, 12.0}},
             phantom::Roi::kTarget, 1.05);

  // Equal lateral footprints (no depth broadening) isolate the depth
  // profile — the actual §II-A physics difference.
  TransportConfig transport;
  transport.lateral_growth_mm_per_cm = 0.0;
  const GeneratedBeam photon = generate_photon_dose_matrix(
      deep, 0.0, beam_config(), transport, PhotonModel{}, 10);
  const GeneratedBeam proton = generate_dose_matrix(
      deep, 0.0, beam_config(), transport, BraggModel{}, 10);

  const double photon_col_len = static_cast<double>(photon.matrix.nnz()) /
                                static_cast<double>(photon.matrix.num_cols);
  const double proton_col_len = static_cast<double>(proton.matrix.nnz()) /
                                static_cast<double>(proton.matrix.num_cols);
  EXPECT_GT(photon_col_len, 1.15 * proton_col_len);

  const auto photon_stats = sparse::compute_stats(photon.matrix);
  const auto proton_stats = sparse::compute_stats(proton.matrix);
  EXPECT_GT(photon_stats.density, proton_stats.density);
}

TEST_F(PhotonVsProton, PhotonDoseExtendsPastTheTarget) {
  // Protons stop at the Bragg peak; photons exit through the far side.
  const GeneratedBeam photon = generate_photon_dose_matrix(
      patient(), 0.0, beam_config(), TransportConfig{}, PhotonModel{}, 11);
  const auto frame = phantom::make_beam_frame(patient(), 0.0);

  std::vector<double> dose(photon.matrix.num_rows, 0.0);
  for (std::uint64_t r = 0; r < photon.matrix.num_rows; ++r) {
    for (std::uint32_t k = photon.matrix.row_ptr[r];
         k < photon.matrix.row_ptr[r + 1]; ++k) {
      dose[r] += photon.matrix.values[k];
    }
  }
  // Find dose beyond the target along the beam direction.
  const auto& g = patient().grid();
  double max_downstream = 0.0;
  for (std::uint64_t v = 0; v < dose.size(); ++v) {
    const auto p = g.voxel_center(g.from_linear(v));
    const double t = (p - frame.isocenter).dot(frame.direction);
    if (t > 30.0) {  // well past the target
      max_downstream = std::max(max_downstream, dose[v]);
    }
  }
  EXPECT_GT(max_downstream, 0.0);
}

}  // namespace
}  // namespace pd::mc
