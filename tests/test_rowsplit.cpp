// Tests for the deterministic row-splitting kernel: plan invariants, bitwise
// equivalence to the paper's kernel when nothing splits, schedule
// reproducibility with splits, and bounded per-warp work.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "kernels/rowsplit_csr.hpp"
#include "kernels/vector_csr.hpp"
#include "sparse/convert.hpp"
#include "sparse/random.hpp"
#include "sparse/reference.hpp"

namespace pd::kernels {
namespace {

sparse::CsrF64 skewed_matrix(std::uint64_t seed) {
  Rng rng(seed);
  // Heavy tail: some rows far exceed the chunk size used in the tests.
  return sparse::random_csr(rng, 250, 120, 40.0,
                            sparse::RandomStructure::kSkewed);
}

TEST(RowSplitPlan, CoversEveryNonZeroExactlyOnce) {
  const auto A = skewed_matrix(1);
  const auto plan = build_row_split_plan(A, 64);
  std::vector<int> covered(A.nnz(), 0);
  for (const auto& item : plan.items) {
    EXPECT_LE(item.end - item.begin, 64u);
    for (std::uint32_t k = item.begin; k < item.end; ++k) {
      covered[k]++;
    }
    EXPECT_EQ(A.col_idx.size() >= item.end, true);
  }
  for (std::uint64_t r = 0; r < A.num_rows; ++r) {
    if (A.row_nnz(r) == 0) continue;
    for (std::uint32_t k = A.row_ptr[r]; k < A.row_ptr[r + 1]; ++k) {
      EXPECT_EQ(covered[k], 1);
    }
  }
}

TEST(RowSplitPlan, SplitRowsGetContiguousSlots) {
  const auto A = skewed_matrix(2);
  const auto plan = build_row_split_plan(A, 64);
  ASSERT_GT(plan.split_rows.size(), 0u);  // the skew guarantees splits
  std::uint32_t expected_slot = 0;
  for (const auto& split : plan.split_rows) {
    EXPECT_EQ(split.first_slot, expected_slot);
    EXPECT_GE(split.num_slots, 2u);
    expected_slot += split.num_slots;
    EXPECT_GT(A.row_nnz(split.row), 64u);
  }
  EXPECT_EQ(expected_slot, plan.num_partials);
}

TEST(RowSplitPlan, RejectsTinyChunks) {
  const auto A = skewed_matrix(3);
  EXPECT_THROW(build_row_split_plan(A, 16), pd::Error);
}

TEST(RowSplit, NoSplitIsBitwiseIdenticalToVectorKernel) {
  const auto A = skewed_matrix(4);
  const auto mh = sparse::convert_values<pd::Half>(A);
  Rng rng(4);
  const auto x = sparse::random_vector(rng, A.num_cols);
  gpusim::Gpu gpu(gpusim::make_a100());

  // Chunk larger than any row: every item is direct.
  const auto plan = build_row_split_plan(mh, 1u << 20);
  EXPECT_TRUE(plan.split_rows.empty());
  EXPECT_EQ(plan.num_partials, 0u);

  std::vector<double> y_split(A.num_rows), y_vec(A.num_rows);
  run_rowsplit_csr<pd::Half, double>(gpu, mh, plan, x,
                                     std::span<double>(y_split));
  run_vector_csr<pd::Half, double>(gpu, mh, x, std::span<double>(y_vec));
  EXPECT_EQ(y_split, y_vec);
}

TEST(RowSplit, SplitResultMatchesReference) {
  const auto A = skewed_matrix(5);
  Rng rng(5);
  const auto x = sparse::random_vector(rng, A.num_cols);
  gpusim::Gpu gpu(gpusim::make_a100());
  const auto plan = build_row_split_plan(A, 64);
  ASSERT_GT(plan.split_rows.size(), 0u);

  std::vector<double> y(A.num_rows);
  run_rowsplit_csr<double, double>(gpu, A, plan, x, std::span<double>(y));
  std::vector<double> ref(A.num_rows);
  sparse::reference_spmv(A, x, ref);
  for (std::uint64_t r = 0; r < A.num_rows; ++r) {
    EXPECT_NEAR(y[r], ref[r], 1e-11 * (1.0 + std::fabs(ref[r]))) << r;
  }
}

TEST(RowSplit, BitwiseReproducibleAcrossSchedulesDespiteSplitting) {
  // The point of the design: load balancing WITHOUT giving up §II-D.
  const auto A = skewed_matrix(6);
  const auto mh = sparse::convert_values<pd::Half>(A);
  Rng rng(6);
  const auto x = sparse::random_vector(rng, A.num_cols);
  gpusim::Gpu gpu(gpusim::make_a100());
  const auto plan = build_row_split_plan(mh, 64);
  ASSERT_GT(plan.split_rows.size(), 0u);

  std::vector<double> a(A.num_rows), b(A.num_rows);
  run_rowsplit_csr<pd::Half, double>(gpu, mh, plan, x, std::span<double>(a),
                                     512, 17);
  run_rowsplit_csr<pd::Half, double>(gpu, mh, plan, x, std::span<double>(b),
                                     512, 9001);
  EXPECT_EQ(a, b);
}

TEST(RowSplit, DeterministicAcrossBlockSizesToo) {
  const auto A = skewed_matrix(7);
  Rng rng(7);
  const auto x = sparse::random_vector(rng, A.num_cols);
  gpusim::Gpu gpu(gpusim::make_a100());
  const auto plan = build_row_split_plan(A, 96);
  std::vector<double> a(A.num_rows), b(A.num_rows);
  run_rowsplit_csr<double, double>(gpu, A, plan, x, std::span<double>(a), 64);
  run_rowsplit_csr<double, double>(gpu, A, plan, x, std::span<double>(b), 1024);
  EXPECT_EQ(a, b);
}

TEST(RowSplit, BoundsPerWarpWork) {
  // Every phase-1 warp processes at most chunk_nnz elements — the load
  // balance property that motivates the kernel.
  const auto A = skewed_matrix(8);
  const auto plan = build_row_split_plan(A, 64);
  std::uint64_t max_work = 0;
  for (const auto& item : plan.items) {
    max_work = std::max<std::uint64_t>(max_work, item.end - item.begin);
  }
  EXPECT_LE(max_work, 64u);
  std::uint64_t max_row = 0;
  for (std::uint64_t r = 0; r < A.num_rows; ++r) {
    max_row = std::max(max_row, A.row_nnz(r));
  }
  EXPECT_GT(max_row, 64u);  // the matrix genuinely needed splitting
}

TEST(RowSplit, CountsTrafficOfBothPhases) {
  const auto A = skewed_matrix(9);
  Rng rng(9);
  const auto x = sparse::random_vector(rng, A.num_cols);
  gpusim::Gpu gpu(gpusim::make_a100());

  const auto split_plan = build_row_split_plan(A, 64);
  std::vector<double> y(A.num_rows);
  const SpmvRun split_run = run_rowsplit_csr<double, double>(
      gpu, A, split_plan, x, std::span<double>(y));
  const SpmvRun vec_run =
      run_vector_csr<double, double>(gpu, A, x, std::span<double>(y));
  // Splitting costs extra traffic (partials + worklist) and extra FLOPs
  // (the phase-2 adds).
  EXPECT_GT(split_run.stats.dram_bytes(), vec_run.stats.dram_bytes());
  EXPECT_GT(split_run.stats.compute.flops, vec_run.stats.compute.flops);
  EXPECT_GT(split_run.stats.warps_launched, vec_run.stats.warps_launched);
}

TEST(RowSplit, ValidatesInputs) {
  const auto A = skewed_matrix(10);
  gpusim::Gpu gpu(gpusim::make_a100());
  const auto plan = build_row_split_plan(A, 64);
  std::vector<double> x(A.num_cols), y_bad(A.num_rows + 1);
  EXPECT_THROW((run_rowsplit_csr<double, double>(gpu, A, plan, x,
                                                 std::span<double>(y_bad))),
               pd::Error);
}

}  // namespace
}  // namespace pd::kernels
