// Tests for TreatmentPlan (multi-beam composition, deliverability
// post-processing) and row-block partitioning (multi-device SpMV).

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "opt/plan.hpp"
#include "sparse/partition.hpp"
#include "sparse/random.hpp"
#include "sparse/reference.hpp"

namespace pd {
namespace {

sparse::CsrF64 beam_matrix(std::uint64_t seed, std::uint64_t rows = 200,
                           std::uint64_t cols = 40) {
  Rng rng(seed);
  return sparse::random_csr(rng, rows, cols, 6.0,
                            sparse::RandomStructure::kManyEmpty);
}

// --- TreatmentPlan -----------------------------------------------------------

TEST(TreatmentPlan, ComposesBeamsColumnwise) {
  opt::TreatmentPlan plan;
  plan.add_beam("b0", 0.0, beam_matrix(1));
  plan.add_beam("b1", 180.0, beam_matrix(2, 200, 25));
  EXPECT_EQ(plan.num_beams(), 2u);
  EXPECT_EQ(plan.total_spots(), 65u);
  EXPECT_EQ(plan.beam(0).first_spot, 0u);
  EXPECT_EQ(plan.beam(1).first_spot, 40u);
  EXPECT_EQ(plan.beam(1).num_spots, 25u);

  const auto combined = plan.combined_matrix();
  EXPECT_EQ(combined.num_cols, 65u);
  EXPECT_EQ(combined.num_rows, 200u);
  EXPECT_EQ(combined.nnz(), beam_matrix(1).nnz() + beam_matrix(2, 200, 25).nnz());
}

TEST(TreatmentPlan, CombinedSpmvEqualsSumOfBeamDoses) {
  opt::TreatmentPlan plan;
  plan.add_beam("b0", 0.0, beam_matrix(3));
  plan.add_beam("b1", 90.0, beam_matrix(4, 200, 30));
  Rng rng(5);
  const auto x = sparse::random_vector(rng, plan.total_spots());

  const auto combined = plan.combined_matrix();
  std::vector<double> y_combined(combined.num_rows);
  sparse::reference_spmv(combined, x, y_combined);

  const auto per_beam = plan.per_beam_dose(x);
  ASSERT_EQ(per_beam.size(), 2u);
  for (std::uint64_t r = 0; r < combined.num_rows; ++r) {
    EXPECT_NEAR(per_beam[0][r] + per_beam[1][r], y_combined[r],
                1e-12 * (1.0 + std::fabs(y_combined[r])));
  }
}

TEST(TreatmentPlan, LocateAndSliceSpots) {
  opt::TreatmentPlan plan;
  plan.add_beam("b0", 0.0, beam_matrix(6));
  plan.add_beam("b1", 90.0, beam_matrix(7, 200, 30));
  EXPECT_EQ(plan.locate_spot(0), (std::pair<std::size_t, std::uint32_t>{0, 0}));
  EXPECT_EQ(plan.locate_spot(39), (std::pair<std::size_t, std::uint32_t>{0, 39}));
  EXPECT_EQ(plan.locate_spot(40), (std::pair<std::size_t, std::uint32_t>{1, 0}));
  EXPECT_EQ(plan.locate_spot(69), (std::pair<std::size_t, std::uint32_t>{1, 29}));
  EXPECT_THROW(plan.locate_spot(70), Error);

  std::vector<double> global(plan.total_spots());
  for (std::size_t i = 0; i < global.size(); ++i) global[i] = static_cast<double>(i);
  const auto b1 = plan.beam_weights(1, global);
  ASSERT_EQ(b1.size(), 30u);
  EXPECT_DOUBLE_EQ(b1.front(), 40.0);
  EXPECT_DOUBLE_EQ(b1.back(), 69.0);
}

TEST(TreatmentPlan, RejectsMismatchedGridsAndBadInput) {
  opt::TreatmentPlan plan;
  plan.add_beam("b0", 0.0, beam_matrix(8));
  EXPECT_THROW(plan.add_beam("b1", 0.0, beam_matrix(9, 150, 30)), Error);
  EXPECT_THROW(plan.beam(5), Error);
  EXPECT_THROW(plan.beam_weights(0, std::vector<double>(3)), Error);
  opt::TreatmentPlan empty;
  EXPECT_THROW(empty.combined_matrix(), Error);
}

TEST(TreatmentPlan, MinimumSpotWeightRounding) {
  std::vector<double> w{1.0, 0.009, 0.04, 0.0, 0.06, 0.5};
  // min fraction 0.05 -> threshold 0.05: 0.009 -> 0, 0.04 -> 0.05 (closer).
  const std::size_t modified =
      opt::TreatmentPlan::apply_minimum_spot_weight(w, 0.05);
  EXPECT_EQ(modified, 2u);
  EXPECT_DOUBLE_EQ(w[1], 0.0);
  EXPECT_DOUBLE_EQ(w[2], 0.05);
  EXPECT_DOUBLE_EQ(w[3], 0.0);   // already zero: untouched
  EXPECT_DOUBLE_EQ(w[4], 0.06);  // above threshold: untouched
  EXPECT_THROW(opt::TreatmentPlan::apply_minimum_spot_weight(w, 1.0), Error);
}

// --- row partitioning --------------------------------------------------------

TEST(RowPartition, BoundariesCoverAllRows) {
  const auto m = beam_matrix(10, 500, 60);
  for (const std::size_t parts : {1u, 2u, 4u, 7u}) {
    const auto p = sparse::balanced_row_partition(m, parts);
    ASSERT_EQ(p.parts(), parts);
    EXPECT_EQ(p.boundaries.front(), 0u);
    EXPECT_EQ(p.boundaries.back(), m.num_rows);
    for (std::size_t i = 1; i < p.boundaries.size(); ++i) {
      EXPECT_LT(p.boundaries[i - 1], p.boundaries[i]);  // non-empty parts
    }
  }
  EXPECT_THROW(sparse::balanced_row_partition(m, 0), Error);
  EXPECT_THROW(sparse::balanced_row_partition(m, 501), Error);
}

TEST(RowPartition, BalancedWithinLargestRow) {
  Rng rng(11);
  const auto m = sparse::random_csr(rng, 2000, 100, 20.0,
                                    sparse::RandomStructure::kSkewed);
  const auto p = sparse::balanced_row_partition(m, 4);
  // Imbalance bounded by ideal + the largest single row.
  std::uint64_t max_row = 0;
  for (std::uint64_t r = 0; r < m.num_rows; ++r) {
    max_row = std::max(max_row, m.row_nnz(r));
  }
  const double ideal = static_cast<double>(m.nnz()) / 4.0;
  EXPECT_LE(sparse::partition_imbalance(m, p),
            (ideal + static_cast<double>(max_row)) / ideal + 1e-9);
  EXPECT_LT(sparse::partition_imbalance(m, p), 1.5);  // and practically tight
}

TEST(RowPartition, BlockSpmvReassemblesBitwise) {
  Rng rng(12);
  const auto m = sparse::random_csr(rng, 800, 80, 10.0,
                                    sparse::RandomStructure::kSkewed);
  const auto x = sparse::random_vector(rng, m.num_cols);
  std::vector<double> y_full(m.num_rows);
  sparse::reference_spmv(m, x, y_full);

  const auto p = sparse::balanced_row_partition(m, 3);
  std::vector<double> y_blocks;
  for (std::size_t i = 0; i < p.parts(); ++i) {
    const auto block =
        sparse::extract_row_block(m, p.boundaries[i], p.boundaries[i + 1]);
    EXPECT_NO_THROW(block.validate());
    std::vector<double> y(block.num_rows);
    sparse::reference_spmv(block, x, y);
    y_blocks.insert(y_blocks.end(), y.begin(), y.end());
  }
  // Row-block decomposition is exact: no reduction, so bitwise equality.
  ASSERT_EQ(y_blocks.size(), y_full.size());
  EXPECT_EQ(y_blocks, y_full);
}

TEST(RowPartition, ExtractValidatesRange) {
  const auto m = beam_matrix(13);
  EXPECT_THROW(sparse::extract_row_block(m, 5, 3), Error);
  EXPECT_THROW(sparse::extract_row_block(m, 0, m.num_rows + 1), Error);
  const auto empty = sparse::extract_row_block(m, 7, 7);
  EXPECT_EQ(empty.num_rows, 0u);
  EXPECT_EQ(empty.nnz(), 0u);
}

}  // namespace
}  // namespace pd
