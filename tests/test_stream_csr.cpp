// Tests for the block-scope execution API (shared memory, barrier phases,
// bank-conflict accounting) and the CSR-Stream shared-memory kernel.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "gpusim/launch.hpp"
#include "kernels/stream_csr.hpp"
#include "kernels/vector_csr.hpp"
#include "sparse/convert.hpp"
#include "sparse/random.hpp"
#include "sparse/reference.hpp"

namespace pd::kernels {
namespace {

using gpusim::BlockCtx;
using gpusim::kWarpSize;
using gpusim::LaneMask;
using gpusim::Lanes;
using gpusim::WarpCtx;

// --- block-scope engine ------------------------------------------------------

TEST(BlockEngine, PhasesShareTheArena) {
  gpusim::Gpu gpu(gpusim::make_a100());
  gpusim::LaunchConfig cfg;
  cfg.threads_per_block = 64;  // 2 warps
  cfg.num_blocks = 3;
  std::vector<double> out(3, 0.0);

  const auto stats = gpu.run_blocks(cfg, [&](BlockCtx& block) {
    double* tile = block.shared_alloc<double>(64);
    // Phase 1: each warp writes its lane ids scaled by warp index.
    block.for_each_warp([&](WarpCtx& w) {
      const auto warp = w.global_warp_id() % 2;
      Lanes<std::uint64_t> idx{};
      Lanes<double> val{};
      for (unsigned lane = 0; lane < kWarpSize; ++lane) {
        idx[lane] = warp * kWarpSize + lane;
        val[lane] = static_cast<double>(lane + 1);
      }
      w.shared_scatter(tile, idx, val, gpusim::kFullMask);
    });
    // Phase 2 (after the implicit barrier): warp 0 sums everything.
    block.for_each_warp([&](WarpCtx& w) {
      if (w.global_warp_id() % 2 != 0) return;
      Lanes<double> acc{};
      for (unsigned base = 0; base < 64; base += kWarpSize) {
        Lanes<std::uint64_t> idx{};
        for (unsigned lane = 0; lane < kWarpSize; ++lane) {
          idx[lane] = base + lane;
        }
        const auto part = w.shared_gather(tile, idx, gpusim::kFullMask);
        for (unsigned lane = 0; lane < kWarpSize; ++lane) {
          acc[lane] = acc[lane] + part[lane];
        }
      }
      out[block.block_idx()] = w.reduce_add(acc);
    });
  });

  for (const double v : out) {
    EXPECT_DOUBLE_EQ(v, 2.0 * 32.0 * 33.0 / 2.0);  // both warps' 1..32
  }
  EXPECT_GT(stats.shared.accesses, 0u);
  // Contiguous double accesses hit 2 words per bank pair -> conflicts exist.
  EXPECT_EQ(stats.blocks_launched, 3u);
}

TEST(BlockEngine, SharedAllocRespectsDeviceLimit) {
  gpusim::Gpu gpu(gpusim::make_a100());
  gpusim::LaunchConfig cfg;
  cfg.threads_per_block = 32;
  cfg.num_blocks = 1;
  EXPECT_THROW(gpu.run_blocks(cfg,
                              [&](BlockCtx& block) {
                                block.shared_alloc<double>(48 * 1024);  // 384 KiB
                              }),
               pd::Error);
  // Within the limit: fine.  Shared storage is uninitialized by contract
  // (like real __shared__); only checked launches zero-fill it, which is
  // the one configuration where reading unwritten slots is defined.
  gpu.enable_check();
  gpu.run_blocks(cfg, [&](BlockCtx& block) {
    double* a = block.shared_alloc<double>(1024);
    EXPECT_EQ(a[0], 0.0);
    EXPECT_EQ(a[1023], 0.0);
  });
  gpu.disable_check();
}

TEST(BlockEngine, SharedAccessOutsideBlockKernelThrows) {
  gpusim::Gpu gpu(gpusim::make_a100());
  const gpusim::LaunchConfig cfg = gpusim::LaunchConfig::warp_per_item(1, 32, 32);
  double buf[4] = {};
  EXPECT_THROW(gpu.run(cfg,
                       [&](WarpCtx& w) {
                         Lanes<std::uint64_t> idx{};
                         w.shared_gather(buf, idx, 0x1u);
                       }),
               pd::Error);
}

TEST(BlockEngine, BankConflictAccounting) {
  gpusim::Gpu gpu(gpusim::make_a100());
  gpusim::LaunchConfig cfg;
  cfg.threads_per_block = 32;
  cfg.num_blocks = 1;

  // Conflict-free: 32 consecutive 4-byte words, one per bank.
  const auto clean = gpu.run_blocks(cfg, [&](BlockCtx& block) {
    float* tile = block.shared_alloc<float>(64);
    block.for_each_warp([&](WarpCtx& w) {
      Lanes<std::uint64_t> idx{};
      for (unsigned lane = 0; lane < kWarpSize; ++lane) idx[lane] = lane;
      w.shared_gather(tile, idx, gpusim::kFullMask);
    });
  });
  EXPECT_EQ(clean.shared.bank_conflicts, 0u);

  // Worst case: stride 32 words — every lane in bank 0.
  const auto bad = gpu.run_blocks(cfg, [&](BlockCtx& block) {
    float* tile = block.shared_alloc<float>(32 * 32);
    block.for_each_warp([&](WarpCtx& w) {
      Lanes<std::uint64_t> idx{};
      for (unsigned lane = 0; lane < kWarpSize; ++lane) idx[lane] = 32u * lane;
      w.shared_gather(tile, idx, gpusim::kFullMask);
    });
  });
  EXPECT_EQ(bad.shared.bank_conflicts, 31u);

  // Broadcast: all lanes read the same word — free.
  const auto bcast = gpu.run_blocks(cfg, [&](BlockCtx& block) {
    float* tile = block.shared_alloc<float>(4);
    block.for_each_warp([&](WarpCtx& w) {
      Lanes<std::uint64_t> idx{};  // all zero
      w.shared_gather(tile, idx, gpusim::kFullMask);
    });
  });
  EXPECT_EQ(bcast.shared.bank_conflicts, 0u);
}

// --- CSR-Stream kernel -------------------------------------------------------

sparse::CsrF64 test_matrix(std::uint64_t seed,
                           sparse::RandomStructure structure =
                               sparse::RandomStructure::kSkewed) {
  Rng rng(seed);
  return sparse::random_csr(rng, 300, 100, 15.0, structure);
}

TEST(StreamPlan, TilesRespectBudgetAndCoverAllRows) {
  const auto A = test_matrix(1);
  const auto plan = build_stream_plan(A, 128);
  std::uint32_t next = 0;
  for (const auto& item : plan.items) {
    EXPECT_EQ(item.row_begin, next);
    next = item.row_end;
    if (!item.long_row) {
      EXPECT_LE(A.row_ptr[item.row_end] - A.row_ptr[item.row_begin], 128u);
    } else {
      EXPECT_EQ(item.row_end, item.row_begin + 1);
      EXPECT_GT(A.row_nnz(item.row_begin), 128u);
    }
  }
  EXPECT_EQ(next, A.num_rows);
  EXPECT_THROW(build_stream_plan(A, 8), pd::Error);
}

TEST(StreamCsr, GroupRowsBitwiseMatchTheVectorKernel) {
  const auto A = test_matrix(2, sparse::RandomStructure::kManyEmpty);
  const auto mh = sparse::convert_values<pd::Half>(A);
  Rng rng(2);
  const auto x = sparse::random_vector(rng, A.num_cols);
  gpusim::Gpu gpu(gpusim::make_a100());

  // Tile big enough that nothing is a long row: all rows take the stream
  // path, whose reduction order equals the vector kernel's.
  const auto plan = build_stream_plan(mh, 4096);
  for (const auto& item : plan.items) {
    ASSERT_EQ(item.long_row, 0u);
  }
  std::vector<double> y_stream(A.num_rows), y_vec(A.num_rows);
  run_stream_csr<pd::Half, double>(gpu, mh, plan, x,
                                   std::span<double>(y_stream));
  run_vector_csr<pd::Half, double>(gpu, mh, x, std::span<double>(y_vec));
  EXPECT_EQ(y_stream, y_vec);
}

TEST(StreamCsr, LongRowPathMatchesReference) {
  // Wider matrix so the skewed tail genuinely exceeds the tile budget.
  Rng mat_rng(3);
  const auto A =
      sparse::random_csr(mat_rng, 300, 250, 20.0, sparse::RandomStructure::kSkewed);
  Rng rng(3);
  const auto x = sparse::random_vector(rng, A.num_cols);
  gpusim::Gpu gpu(gpusim::make_a100());
  const auto plan = build_stream_plan(A, 64);  // forces long-row blocks
  bool has_long = false;
  for (const auto& item : plan.items) has_long |= (item.long_row != 0);
  ASSERT_TRUE(has_long);

  std::vector<double> y(A.num_rows);
  run_stream_csr<double, double>(gpu, A, plan, x, std::span<double>(y), 128);
  std::vector<double> ref(A.num_rows);
  sparse::reference_spmv(A, x, ref);
  for (std::uint64_t r = 0; r < A.num_rows; ++r) {
    EXPECT_NEAR(y[r], ref[r], 1e-11 * (1.0 + std::fabs(ref[r]))) << r;
  }
}

TEST(StreamCsr, ReproducibleAcrossSchedules) {
  const auto A = test_matrix(4);
  const auto mh = sparse::convert_values<pd::Half>(A);
  Rng rng(4);
  const auto x = sparse::random_vector(rng, A.num_cols);
  gpusim::Gpu gpu(gpusim::make_a100());
  const auto plan = build_stream_plan(mh, 96);

  std::vector<double> a(A.num_rows), b(A.num_rows);
  run_stream_csr<pd::Half, double>(gpu, mh, plan, x, std::span<double>(a), 128,
                                   11);
  run_stream_csr<pd::Half, double>(gpu, mh, plan, x, std::span<double>(b), 128,
                                   2222);
  EXPECT_EQ(a, b);
}

TEST(StreamCsr, SharedTrafficStaysOnChip) {
  const auto A = test_matrix(5, sparse::RandomStructure::kUniform);
  const auto mh = sparse::convert_values<pd::Half>(A);
  Rng rng(5);
  const auto x = sparse::random_vector(rng, A.num_cols);
  gpusim::Gpu gpu(gpusim::make_a100());
  const auto plan = build_stream_plan(mh, 1024);

  std::vector<double> y(A.num_rows);
  const auto stream_run = run_stream_csr<pd::Half, double>(
      gpu, mh, plan, x, std::span<double>(y));
  const auto vec_run =
      run_vector_csr<pd::Half, double>(gpu, mh, x, std::span<double>(y));
  // The tile round-trips through shared memory, not DRAM: global traffic
  // stays comparable to the vector kernel (within row-bound reload noise).
  EXPECT_GT(stream_run.stats.shared.accesses, 0u);
  EXPECT_LT(stream_run.stats.dram_bytes(), 1.5 * vec_run.stats.dram_bytes());
}

TEST(StreamCsr, ValidatesInputs) {
  const auto A = test_matrix(6);
  gpusim::Gpu gpu(gpusim::make_a100());
  const auto plan = build_stream_plan(A, 256);
  std::vector<double> x(A.num_cols, 1.0), y_bad(A.num_rows + 1);
  EXPECT_THROW((run_stream_csr<double, double>(gpu, A, plan, x,
                                               std::span<double>(y_bad))),
               pd::Error);
}

}  // namespace
}  // namespace pd::kernels
