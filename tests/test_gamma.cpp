// Tests for the gamma-analysis dose comparison.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "opt/gamma.hpp"

namespace pd::opt {
namespace {

phantom::VoxelGrid grid() { return phantom::VoxelGrid(12, 12, 12, 2.0); }

std::vector<double> gaussian_dose(const phantom::VoxelGrid& g,
                                  double shift_mm = 0.0) {
  std::vector<double> dose(g.num_voxels());
  const auto c = g.grid_center();
  for (std::uint64_t v = 0; v < g.num_voxels(); ++v) {
    const auto p = g.voxel_center(g.from_linear(v));
    const double dx = p.x - c.x - shift_mm;
    const double dy = p.y - c.y;
    const double dz = p.z - c.z;
    dose[v] = 10.0 * std::exp(-(dx * dx + dy * dy + dz * dz) / 50.0);
  }
  return dose;
}

TEST(Gamma, IdenticalDosesPassEverywhere) {
  const auto g = grid();
  const auto dose = gaussian_dose(g);
  const GammaResult r = gamma_analysis(g, dose, dose);
  EXPECT_GT(r.evaluated, 0u);
  EXPECT_DOUBLE_EQ(r.pass_rate, 1.0);
  EXPECT_DOUBLE_EQ(r.max_gamma, 0.0);
}

TEST(Gamma, SmallDosePerturbationWithinTolerancePasses) {
  const auto g = grid();
  const auto ref = gaussian_dose(g);
  auto eval = ref;
  for (auto& d : eval) {
    d *= 1.005;  // 0.5% scaling, within the 1% criterion
  }
  const GammaResult r = gamma_analysis(g, ref, eval);
  EXPECT_DOUBLE_EQ(r.pass_rate, 1.0);
  EXPECT_GT(r.mean_gamma, 0.0);
}

TEST(Gamma, LargeDoseErrorFails) {
  const auto g = grid();
  const auto ref = gaussian_dose(g);
  auto eval = ref;
  for (auto& d : eval) {
    d *= 1.10;  // 10% error >> 1% tolerance, cannot be rescued by DTA
  }
  const GammaResult r = gamma_analysis(g, ref, eval);
  EXPECT_LT(r.pass_rate, 0.5);
  EXPECT_DOUBLE_EQ(r.max_gamma, 2.0);  // capped
}

TEST(Gamma, SpatialShiftWithinDtaPasses) {
  const auto g = grid();
  const auto ref = gaussian_dose(g);
  // Shift by exactly one voxel (2 mm); DTA 3 mm should absorb it.
  const auto eval = gaussian_dose(g, 2.0);
  GammaCriteria loose;
  loose.dose_tolerance_fraction = 0.02;
  loose.distance_tolerance_mm = 3.0;
  const GammaResult r = gamma_analysis(g, ref, eval, loose);
  EXPECT_GT(r.pass_rate, 0.97);

  // The same shift fails a tight 0.5% / 0.5 mm criterion.
  GammaCriteria tight;
  tight.dose_tolerance_fraction = 0.005;
  tight.distance_tolerance_mm = 0.5;
  const GammaResult tight_r = gamma_analysis(g, ref, eval, tight);
  EXPECT_LT(tight_r.pass_rate, r.pass_rate);
}

TEST(Gamma, LowDoseVoxelsAreSkipped) {
  const auto g = grid();
  std::vector<double> ref(g.num_voxels(), 0.01);  // 0.1% of norm everywhere
  ref[0] = 10.0;  // one hot voxel defines the norm
  std::vector<double> eval = ref;
  eval[5] = 0.02;  // large *relative* change in a low-dose voxel: ignored
  const GammaResult r = gamma_analysis(g, ref, eval);
  EXPECT_EQ(r.evaluated, 1u);  // only the hot voxel is above 10% threshold
  EXPECT_DOUBLE_EQ(r.pass_rate, 1.0);
}

TEST(Gamma, ValidatesInputs) {
  const auto g = grid();
  const auto dose = gaussian_dose(g);
  std::vector<double> wrong(3);
  EXPECT_THROW(gamma_analysis(g, wrong, dose), pd::Error);
  EXPECT_THROW(gamma_analysis(g, dose, wrong), pd::Error);
  GammaCriteria bad;
  bad.dose_tolerance_fraction = 0.0;
  EXPECT_THROW(gamma_analysis(g, dose, dose, bad), pd::Error);
  const std::vector<double> zeros(g.num_voxels(), 0.0);
  EXPECT_THROW(gamma_analysis(g, zeros, zeros), pd::Error);
}

TEST(Gamma, ExplicitNormOverridesReferenceMax) {
  const auto g = grid();
  const auto ref = gaussian_dose(g);
  auto eval = ref;
  for (auto& d : eval) d += 0.05;  // 0.5% of 10 everywhere
  // With norm = 10 the difference is 0.5% -> passes at 1%.
  EXPECT_DOUBLE_EQ(gamma_analysis(g, ref, eval, {}, 10.0).pass_rate, 1.0);
  // With norm = 1 the same difference is 5% -> fails at 1%.
  EXPECT_LT(gamma_analysis(g, ref, eval, {}, 1.0).pass_rate, 1.0);
}

}  // namespace
}  // namespace pd::opt
