// Fast-tier differential suite (docs/fast_tier.md).
//
// The fast kernels trade the bitwise contract for fewer streamed bytes, so
// they are verified against the bitwise tier with a *derived* per-row bound
// (kokkos-kernels fSPMV style): storage error per entry times |x|, plus
// accumulation-order slack.  The suite checks
//  (a) every fast kernel against the bitwise tier on all cases:: matrices,
//      thread counts {1, 2, 5}, with the derived eps — and run-to-run
//      determinism at each thread count;
//  (b) that the bound is *tight*: a deliberately miscompiled reference with
//      a one-column indexing bug must violate it (the tolerance framework
//      can catch real bugs, not just pass everything);
//  (c) the service path: per-request tiers, tier-uniform batches, and the
//      untouched bitwise default.
//
// Suite names start with FastTier so CI can run `ctest -R FastTier` under
// the sanitizers.

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "cases/cases.hpp"
#include "common/rng.hpp"
#include "gpusim/device.hpp"
#include "kernels/dose_engine.hpp"
#include "kernels/rsformat_spmv.hpp"
#include "kernels/sellcs_spmv.hpp"
#include "kernels/tuner.hpp"
#include "service/dose_service.hpp"
#include "sparse/random.hpp"
#include "sparse/reference.hpp"

namespace pd::kernels {
namespace {

using Tier = DoseEngine::Tier;
using FastFormat = DoseEngine::FastFormat;
using Mode = DoseEngine::Mode;
using Backend = DoseEngine::Backend;

const std::vector<cases::BeamDataset>& beams() {
  static const std::vector<cases::BeamDataset> b =
      cases::generate_all_beams(0.2);
  return b;
}

std::vector<double> weights_for(std::uint64_t cols, std::uint64_t seed) {
  Rng rng(seed);
  return sparse::random_vector(rng, cols, 0.0, 2.0);
}

constexpr double kUlp53 = 1.1102230246251565e-16;  // 2^-53
constexpr double kUlp24 = 5.9604644775390625e-8;   // 2^-24

/// Per-column absolute storage error of the rsformat container:
/// quantization scale/2, widened slightly (0.51) because the per-column
/// scale itself is stored as float (q <= 65535 entries multiply a scale
/// that rounded with 2^-24 relative error).
std::vector<double> rsformat_col_err(const rsformat::RsMatrix& rs) {
  std::vector<double> err(rs.num_cols());
  for (std::uint64_t c = 0; c < err.size(); ++c) {
    err[c] = 1.02 * rs.max_abs_error(static_cast<std::uint32_t>(c));
  }
  return err;
}

/// Same derivation for the quantized SELL-C-σ container — identical
/// quantization recipe (u16 against a per-column float scale), so the same
/// 1.02 × scale/2 per-entry bound applies.
std::vector<double> sellcsq_col_err(const sparse::SellCsQMatrix& m) {
  std::vector<double> err(m.num_cols);
  for (std::uint64_t c = 0; c < err.size(); ++c) {
    err[c] = 1.02 * m.max_abs_error(static_cast<std::uint32_t>(c));
  }
  return err;
}

/// Derived per-row tolerance for |fast - bitwise| (docs/fast_tier.md):
///
///   bound_r = sum_k err_k |x_ck|  +  4 n_r u sum_k |v_k x_ck|
///
/// where err_k is the per-entry absolute storage error (col_err[c], or
/// rel_err * |v_k| when col_err is null), n_r the row's nnz and u the unit
/// roundoff of the wider accumulation side.  The first term bounds the
/// different values being summed; the second covers both tiers'
/// accumulation orders (each is within gamma_n ~ n*u of the exact sum of
/// its products; 4x gives both sides margin over the first-order estimate).
std::vector<double> derive_bounds(const sparse::CsrF64& wide,
                                  const std::vector<double>& x,
                                  const std::vector<double>* col_err,
                                  double rel_err, double acc_ulp) {
  std::vector<double> bound(wide.num_rows, 0.0);
  for (std::uint64_t r = 0; r < wide.num_rows; ++r) {
    double storage = 0.0;
    double magnitude = 0.0;
    const std::uint64_t n = wide.row_nnz(r);
    for (std::uint32_t k = wide.row_ptr[r]; k < wide.row_ptr[r + 1]; ++k) {
      const double ax = std::fabs(x[wide.col_idx[k]]);
      const double err = col_err != nullptr
                             ? (*col_err)[wide.col_idx[k]]
                             : rel_err * std::fabs(wide.values[k]);
      storage += err * ax;
      magnitude += std::fabs(wide.values[k]) * ax;
    }
    bound[r] = storage +
               4.0 * static_cast<double>(n) * acc_ulp * magnitude;
  }
  return bound;
}

void expect_within(const std::vector<double>& fast,
                   const std::vector<double>& bitwise,
                   const std::vector<double>& bound, const char* what) {
  ASSERT_EQ(fast.size(), bitwise.size());
  for (std::size_t r = 0; r < fast.size(); ++r) {
    ASSERT_LE(std::fabs(fast[r] - bitwise[r]), bound[r])
        << what << ": row " << r;
  }
}

void check_beam(const cases::BeamDataset& ds, FastFormat format, Mode mode) {
  DoseEngine engine(ds.beam.matrix, gpusim::make_a100(), mode,
                    kDefaultVectorTpb, SpmvFamily::kVector, Backend::kNative);
  const auto x = weights_for(engine.num_spots(), 97 + ds.beam.matrix.nnz());
  const std::vector<double> bitwise = engine.compute(x);
  const sparse::CsrF64 wide = engine.stored_matrix_as_double();
  engine.set_tier(Tier::kFast, format);

  std::vector<double> bound;
  // kSingle's bitwise tier accumulates in float, so its side of the order
  // slack is 2^-24; the other modes accumulate in double on both sides.
  const double acc_ulp = mode == Mode::kSingle ? kUlp24 : kUlp53;
  if (format == FastFormat::kRsFormat) {
    const auto col_err = rsformat_col_err(engine.fast_rs_matrix());
    bound = derive_bounds(wide, x, &col_err, 0.0, acc_ulp);
  } else if (format == FastFormat::kSellCsQ) {
    const auto col_err = sellcsq_col_err(engine.fast_sellq_matrix());
    bound = derive_bounds(wide, x, &col_err, 0.0, acc_ulp);
  } else {
    bound = derive_bounds(wide, x, nullptr, kUlp24, acc_ulp);
  }

  for (const unsigned threads : {1u, 2u, 5u}) {
    engine.set_native_threads(threads);
    const std::vector<double> fast = engine.compute(x);
    expect_within(fast, bitwise, bound,
                  (ds.label + " t" + std::to_string(threads)).c_str());
    // Same thread count, same bits (run-to-run determinism).
    EXPECT_EQ(fast, engine.compute(x)) << ds.label << " t" << threads;
  }
}

TEST(FastTierCases, RsFormatWithinDerivedBoundOnAllBeams) {
  for (const auto& ds : beams()) {
    check_beam(ds, FastFormat::kRsFormat, Mode::kHalfDouble);
  }
}

TEST(FastTierCases, SellCsWithinDerivedBoundOnAllBeams) {
  for (const auto& ds : beams()) {
    check_beam(ds, FastFormat::kSellCs, Mode::kHalfDouble);
  }
}

TEST(FastTierCases, SellCsQWithinDerivedBoundOnAllBeams) {
  for (const auto& ds : beams()) {
    check_beam(ds, FastFormat::kSellCsQ, Mode::kHalfDouble);
  }
}

TEST(FastTierCases, OtherPrecisionModesStayInBound) {
  check_beam(beams().front(), FastFormat::kRsFormat, Mode::kSingle);
  check_beam(beams().front(), FastFormat::kSellCs, Mode::kSingle);
  check_beam(beams().front(), FastFormat::kSellCsQ, Mode::kSingle);
  check_beam(beams().front(), FastFormat::kRsFormat, Mode::kDouble);
  check_beam(beams().front(), FastFormat::kSellCs, Mode::kDouble);
  check_beam(beams().front(), FastFormat::kSellCsQ, Mode::kDouble);
}

TEST(FastTierCases, SwitchingTiersLeavesBitwiseBitsAlone) {
  const auto& ds = beams().front();
  DoseEngine engine(ds.beam.matrix, gpusim::make_a100(), Mode::kHalfDouble,
                    kDefaultVectorTpb, SpmvFamily::kVector, Backend::kNative);
  const auto x = weights_for(engine.num_spots(), 11);
  const std::vector<double> before = engine.compute(x);
  engine.set_tier(Tier::kFast, FastFormat::kRsFormat);
  (void)engine.compute(x);
  engine.set_tier(Tier::kFast, FastFormat::kSellCs);
  (void)engine.compute(x);
  engine.set_tier(Tier::kFast, FastFormat::kSellCsQ);
  (void)engine.compute(x);
  engine.set_tier(Tier::kBitwise);
  EXPECT_EQ(engine.compute(x), before);
}

TEST(FastTierCases, TunerPrefersTheSmallerContainer) {
  const auto& ds = beams().front();
  DoseEngine engine(ds.beam.matrix, gpusim::make_a100(), Mode::kHalfDouble,
                    kDefaultVectorTpb, SpmvFamily::kVector, Backend::kNative);
  engine.set_tier(Tier::kFast, FastFormat::kRsFormat);
  engine.set_tier(Tier::kFast, FastFormat::kSellCs);
  engine.set_tier(Tier::kFast, FastFormat::kSellCsQ);
  const std::uint64_t rs = rsformat_streamed_bytes(engine.fast_rs_matrix());
  const std::uint64_t sell = sellcs_streamed_bytes(engine.fast_sell_matrix());
  const std::uint64_t sellq =
      sellcs_q_streamed_bytes(engine.fast_sellq_matrix());
  const auto choice = choose_fast_format(rs, sell, sellq);
  EXPECT_EQ(choice.prefer_rsformat(), rs <= sell && rs <= sellq);
  EXPECT_EQ(choice.chosen_bytes(), std::min({rs, sell, sellq}));
  const std::uint64_t csr = engine.stored_matrix_as_double().bytes();
  // The whole point of the tier: the chosen container streams fewer bytes.
  EXPECT_LT(choice.ratio_vs(csr), 1.0);
  // And the fused container meets the paper-case headline (<= 60% of
  // CSR-double traffic).
  EXPECT_LE(static_cast<double>(rs), 0.60 * static_cast<double>(csr));
  // The fast-tier-v2 headline: the quantized SELL container streams at most
  // half the float SELL container's bytes.
  EXPECT_LE(static_cast<double>(sellq), 0.50 * static_cast<double>(sell));
}

// --- batched fused rsformat --------------------------------------------------

// The batched kernel's contract (kernels/rsformat_spmv.hpp): every output
// column of a K-wide launch is bitwise identical to a looped single-RHS
// product at the same thread count — same column partition, same fixed-order
// scratch merge, and zero-weight lanes add only +0.0.
TEST(FastTierBatched, BatchedFusedMatchesLoopedBitwise) {
  for (const auto& ds : {beams().front(), beams().back()}) {
    DoseEngine engine(ds.beam.matrix, gpusim::make_a100(), Mode::kHalfDouble,
                      kDefaultVectorTpb, SpmvFamily::kVector,
                      Backend::kNative);
    engine.set_tier(Tier::kFast, FastFormat::kRsFormat);
    const std::size_t spots = engine.num_spots();
    for (const std::size_t k : {std::size_t{1}, std::size_t{2},
                                std::size_t{9}}) {
      Rng rng(500 + k);
      std::vector<double> bw =
          sparse::random_vector(rng, k * spots, 0.0, 2.0);
      for (const unsigned threads : {1u, 2u, 5u}) {
        engine.set_native_threads(threads);
        const std::vector<std::vector<double>> batched =
            engine.compute_batch(bw, k);
        ASSERT_EQ(batched.size(), k);
        for (std::size_t j = 0; j < k; ++j) {
          const std::vector<double> looped = engine.compute(
              std::span<const double>(bw.data() + j * spots, spots));
          EXPECT_EQ(batched[j], looped)
              << ds.label << " K=" << k << " lane " << j << " t" << threads;
        }
      }
    }
  }
}

// A lane of all-zero weights exercises the +0.0 identity argument: the
// single-RHS kernel skips zero-weight columns outright, the batched kernel
// does not, and the bits must still agree (the zero lane's dose is exactly
// the zero vector).
TEST(FastTierBatched, ZeroWeightLaneStaysBitwise) {
  const auto& ds = beams().front();
  DoseEngine engine(ds.beam.matrix, gpusim::make_a100(), Mode::kHalfDouble,
                    kDefaultVectorTpb, SpmvFamily::kVector, Backend::kNative);
  engine.set_tier(Tier::kFast, FastFormat::kRsFormat);
  const std::size_t spots = engine.num_spots();
  std::vector<double> bw(3 * spots, 0.0);
  Rng rng(321);
  for (std::size_t c = 0; c < spots; ++c) {
    bw[c] = rng.uniform(0.5, 2.0);              // lane 0: dense weights
    bw[2 * spots + c] = c % 2 ? 0.0 : bw[c];    // lane 2: half zeros
  }                                             // lane 1: all zero
  const auto batched = engine.compute_batch(bw, 3);
  for (std::size_t j = 0; j < 3; ++j) {
    const std::vector<double> looped = engine.compute(
        std::span<const double>(bw.data() + j * spots, spots));
    EXPECT_EQ(batched[j], looped) << "lane " << j;
  }
  for (const double d : batched[1]) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(d),
              std::bit_cast<std::uint64_t>(0.0));  // +0.0, never -0.0
  }
}

// --- (b) the bound is tight enough to catch a real bug ----------------------

TEST(FastTierBound, CatchesAnOffByOneColumnBug) {
  // Miscompile the reference on purpose: every entry reads its right
  // neighbour's weight, the classic off-by-one indexing bug.  If the derived
  // bound were loose enough to absorb this, the whole differential suite
  // would be vacuous — require a clear violation.
  const auto& ds = beams().front();
  DoseEngine engine(ds.beam.matrix, gpusim::make_a100(), Mode::kHalfDouble,
                    kDefaultVectorTpb, SpmvFamily::kVector, Backend::kNative);
  Rng rng(1234);
  // Weights bounded away from zero so adjacent columns always differ.
  const auto x = sparse::random_vector(rng, engine.num_spots(), 0.5, 2.0);
  const sparse::CsrF64 wide = engine.stored_matrix_as_double();

  std::vector<double> buggy(wide.num_rows, 0.0);
  for (std::uint64_t r = 0; r < wide.num_rows; ++r) {
    double acc = 0.0;
    for (std::uint32_t k = wide.row_ptr[r]; k < wide.row_ptr[r + 1]; ++k) {
      acc += wide.values[k] *
             x[(wide.col_idx[k] + 1) % wide.num_cols];  // the bug
    }
    buggy[r] = acc;
  }

  engine.set_tier(Tier::kFast, FastFormat::kRsFormat);
  const std::vector<double> fast = engine.compute(x);
  const auto col_err = rsformat_col_err(engine.fast_rs_matrix());
  const auto bound = derive_bounds(wide, x, &col_err, 0.0, kUlp53);

  std::uint64_t violations = 0;
  for (std::uint64_t r = 0; r < wide.num_rows; ++r) {
    if (std::fabs(fast[r] - buggy[r]) > bound[r]) {
      ++violations;
    }
  }
  // Nearly every non-empty row should scream; demand a decisive majority so
  // the test itself is not flaky about a handful of cancelling rows.
  std::uint64_t nonempty = 0;
  for (std::uint64_t r = 0; r < wide.num_rows; ++r) {
    nonempty += wide.row_nnz(r) > 0 ? 1 : 0;
  }
  EXPECT_GT(violations, nonempty / 2);
}

TEST(FastTierBound, CatchesAnOffByOneColumnBugQuantized) {
  // Same tightness demand for the quantized SELL bound: a one-column
  // indexing bug in a reference must blow through it on most rows.
  const auto& ds = beams().front();
  DoseEngine engine(ds.beam.matrix, gpusim::make_a100(), Mode::kHalfDouble,
                    kDefaultVectorTpb, SpmvFamily::kVector, Backend::kNative);
  Rng rng(4321);
  const auto x = sparse::random_vector(rng, engine.num_spots(), 0.5, 2.0);
  const sparse::CsrF64 wide = engine.stored_matrix_as_double();

  std::vector<double> buggy(wide.num_rows, 0.0);
  for (std::uint64_t r = 0; r < wide.num_rows; ++r) {
    double acc = 0.0;
    for (std::uint32_t k = wide.row_ptr[r]; k < wide.row_ptr[r + 1]; ++k) {
      acc += wide.values[k] *
             x[(wide.col_idx[k] + 1) % wide.num_cols];  // the bug
    }
    buggy[r] = acc;
  }

  engine.set_tier(Tier::kFast, FastFormat::kSellCsQ);
  const std::vector<double> fast = engine.compute(x);
  const auto col_err = sellcsq_col_err(engine.fast_sellq_matrix());
  const auto bound = derive_bounds(wide, x, &col_err, 0.0, kUlp53);

  std::uint64_t violations = 0, nonempty = 0;
  for (std::uint64_t r = 0; r < wide.num_rows; ++r) {
    violations += std::fabs(fast[r] - buggy[r]) > bound[r] ? 1 : 0;
    nonempty += wide.row_nnz(r) > 0 ? 1 : 0;
  }
  EXPECT_GT(violations, nonempty / 2);
}

// --- (c) service integration -------------------------------------------------

TEST(FastTierService, PerRequestTiersShareAPlanSafely) {
  const std::uint64_t rows = 300, cols = 90;
  const auto plan_matrix = [] {
    Rng rng(77);
    return sparse::random_csr(rng, 300, 90, 12.0,
                              sparse::RandomStructure::kSkewed);
  };

  service::ServiceConfig config;
  config.workers = 2;
  config.batch_cap = 4;
  config.flush_deadline_ms = 0.5;
  config.engine.device = gpusim::make_a100();
  config.engine.backend = Backend::kNative;
  service::DoseService svc(config);
  svc.register_plan("p", plan_matrix);

  // Sequential oracle + bound ingredients.
  DoseEngine oracle(plan_matrix(), gpusim::make_a100(), Mode::kHalfDouble,
                    kDefaultVectorTpb, SpmvFamily::kVector, Backend::kNative);
  const sparse::CsrF64 wide = oracle.stored_matrix_as_double();
  oracle.set_tier(Tier::kFast, FastFormat::kRsFormat);
  const auto col_err = rsformat_col_err(oracle.fast_rs_matrix());
  oracle.set_tier(Tier::kBitwise);

  struct Sent {
    service::Ticket ticket;
    std::vector<double> weights;
    Tier tier;
    FastFormat format;
  };
  std::vector<Sent> sent;
  for (int i = 0; i < 24; ++i) {
    Rng rng(1000 + i);
    std::vector<double> w = sparse::random_vector(rng, cols, 0.0, 2.0);
    service::SubmitOptions opts;
    opts.tier = i % 3 == 0 ? Tier::kBitwise : Tier::kFast;
    opts.fast_format =
        i % 3 == 1 ? FastFormat::kRsFormat : FastFormat::kSellCs;
    Sent s{svc.submit("p", w, opts), w, opts.tier, opts.fast_format};
    sent.push_back(std::move(s));
  }
  svc.drain();

  for (Sent& s : sent) {
    service::DoseResult r = s.ticket.result.get();
    ASSERT_EQ(r.status, service::RequestStatus::kOk);
    ASSERT_EQ(r.dose.size(), rows);
    const std::vector<double> ref = oracle.compute(s.weights);
    if (s.tier == Tier::kBitwise) {
      // The PR 5 contract, untouched: bitwise identical to a sequential
      // engine, even with fast batches interleaved on the same plan/engine.
      EXPECT_EQ(r.dose, ref);
    } else {
      const auto bound = derive_bounds(
          wide, s.weights,
          s.format == FastFormat::kRsFormat ? &col_err : nullptr, kUlp24,
          kUlp53);
      expect_within(r.dose, ref, bound, "service fast request");
    }
  }
  const service::ServiceStats stats = svc.stats();
  EXPECT_GT(stats.fast_batches, 0u);
  EXPECT_GT(stats.batches, stats.fast_batches);  // bitwise launches too
}

TEST(FastTierService, QueueSplitsMixedTierBatchesUniformly) {
  service::BatchQueue queue(service::BatchQueueConfig{8, 64, 1000});
  const auto push = [&](std::uint64_t id, std::uint32_t key) {
    service::QueuedRequest r;
    r.id = id;
    r.plan = "p";
    r.enqueue_tick = id;
    r.exec_key = key;
    ASSERT_TRUE(queue.submit(std::move(r)));
  };
  push(1, 0);
  push(2, 0);
  push(3, 1);
  push(4, 1);
  push(5, 0);

  const auto ids = [](const std::vector<service::QueuedRequest>& batch) {
    std::vector<std::uint64_t> v;
    for (const auto& r : batch) {
      v.push_back(r.id);
    }
    return v;
  };
  // Uniform prefixes pop in FIFO order; the plan goes busy between launches.
  auto b1 = queue.pop_ready(0, /*drain=*/true);
  EXPECT_EQ(ids(b1), (std::vector<std::uint64_t>{1, 2}));
  EXPECT_TRUE(queue.pop_ready(0, true).empty());  // busy
  queue.mark_idle("p");
  auto b2 = queue.pop_ready(0, true);
  EXPECT_EQ(ids(b2), (std::vector<std::uint64_t>{3, 4}));
  queue.mark_idle("p");
  auto b3 = queue.pop_ready(0, true);
  EXPECT_EQ(ids(b3), (std::vector<std::uint64_t>{5}));
  queue.mark_idle("p");
  EXPECT_EQ(queue.depth(), 0u);
}

}  // namespace
}  // namespace pd::kernels
