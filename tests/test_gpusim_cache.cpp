// Tests for the L2 sector-cache model and the warp coalescer: hit/miss
// accounting, LRU eviction, write-back behaviour, and Nsight-style counters.

#include <gtest/gtest.h>

#include "gpusim/device.hpp"
#include "gpusim/memory.hpp"

namespace pd::gpusim {
namespace {

constexpr unsigned kSector = DeviceSpec::kSectorBytes;

TEST(CacheModel, ColdMissThenHit) {
  CacheModel cache(1024 * kSector, 4);
  TrafficCounters tc;
  EXPECT_FALSE(cache.access(100, false, tc));
  EXPECT_TRUE(cache.access(100, false, tc));
  EXPECT_EQ(tc.dram_read_bytes, kSector);
  EXPECT_EQ(tc.l2_read_sectors, 2u);
  EXPECT_EQ(tc.l2_read_hits, 1u);
}

TEST(CacheModel, LruEvictionWithinSet) {
  // 2-way cache with 4 sets: sectors 0, 4, 8 all map to set 0.
  CacheModel cache(8 * kSector, 2);
  ASSERT_EQ(cache.sets(), 4u);
  TrafficCounters tc;
  cache.access(0, false, tc);
  cache.access(4, false, tc);
  cache.access(0, false, tc);   // touch 0 -> 4 becomes LRU
  cache.access(8, false, tc);   // evicts 4
  EXPECT_TRUE(cache.access(0, false, tc));
  EXPECT_FALSE(cache.access(4, false, tc));  // was evicted
}

TEST(CacheModel, WriteBackOnDirtyEviction) {
  CacheModel cache(8 * kSector, 2);
  TrafficCounters tc;
  cache.access(0, true, tc);  // dirty
  cache.access(4, false, tc);
  cache.access(8, false, tc);   // evicts dirty line 0
  EXPECT_EQ(tc.dram_write_bytes, kSector);
}

TEST(CacheModel, CleanEvictionWritesNothing) {
  CacheModel cache(8 * kSector, 2);
  TrafficCounters tc;
  cache.access(0, false, tc);
  cache.access(4, false, tc);
  cache.access(8, false, tc);
  EXPECT_EQ(tc.dram_write_bytes, 0u);
}

TEST(CacheModel, FlushWritesDirtyOnce) {
  CacheModel cache(1024 * kSector, 4);
  TrafficCounters tc;
  cache.access(1, true, tc);
  cache.access(2, true, tc);
  cache.access(3, false, tc);
  cache.flush_dirty(tc);
  EXPECT_EQ(tc.dram_write_bytes, 2 * kSector);
  cache.flush_dirty(tc);  // idempotent
  EXPECT_EQ(tc.dram_write_bytes, 2 * kSector);
}

TEST(CacheModel, InvalidateForgetsEverything) {
  CacheModel cache(1024 * kSector, 4);
  TrafficCounters tc;
  cache.access(9, false, tc);
  cache.invalidate();
  EXPECT_FALSE(cache.access(9, false, tc));
}

TEST(CacheModel, RejectsDegenerateGeometry) {
  EXPECT_THROW(CacheModel(0, 4), pd::Error);
  EXPECT_THROW(CacheModel(kSector, 0), pd::Error);
}

TEST(MemoryModel, PerfectlyCoalescedWarpLoad) {
  // 32 lanes x 4 bytes contiguous = 128 bytes = 4 sectors, one request.
  MemoryModel mem(make_a100());
  mem.begin_kernel();
  alignas(64) static float data[32];
  Lanes<std::uint64_t> addr;
  for (unsigned i = 0; i < kWarpSize; ++i) {
    addr[i] = reinterpret_cast<std::uint64_t>(&data[i]);
  }
  mem.warp_access(addr, sizeof(float), kFullMask, false);
  const TrafficCounters tc = mem.counters();
  EXPECT_EQ(tc.warp_requests, 1u);
  EXPECT_EQ(tc.sectors_requested, 4u);
  EXPECT_DOUBLE_EQ(tc.sectors_per_request(), 4.0);
}

TEST(MemoryModel, ScatteredGatherTouchesManySectors) {
  MemoryModel mem(make_a100());
  mem.begin_kernel();
  alignas(32) static double data[32 * 64];
  Lanes<std::uint64_t> addr;
  for (unsigned i = 0; i < kWarpSize; ++i) {
    addr[i] = reinterpret_cast<std::uint64_t>(&data[i * 64]);  // 512B stride
  }
  mem.warp_access(addr, sizeof(double), kFullMask, false);
  EXPECT_EQ(mem.counters().sectors_requested, 32u);  // fully uncoalesced
}

TEST(MemoryModel, DuplicateLaneAddressesCoalesceToOneSector) {
  MemoryModel mem(make_a100());
  mem.begin_kernel();
  alignas(32) static double one;
  Lanes<std::uint64_t> addr;
  for (unsigned i = 0; i < kWarpSize; ++i) {
    addr[i] = reinterpret_cast<std::uint64_t>(&one);
  }
  mem.warp_access(addr, sizeof(double), kFullMask, false);
  EXPECT_EQ(mem.counters().sectors_requested, 1u);
}

TEST(MemoryModel, MaskedLanesDoNotTouchMemory) {
  MemoryModel mem(make_a100());
  mem.begin_kernel();
  alignas(32) static float data[32];
  Lanes<std::uint64_t> addr;
  for (unsigned i = 0; i < kWarpSize; ++i) {
    addr[i] = reinterpret_cast<std::uint64_t>(&data[i]);
  }
  mem.warp_access(addr, sizeof(float), 0u, false);
  EXPECT_EQ(mem.counters().warp_requests, 0u);
  EXPECT_EQ(mem.counters().sectors_requested, 0u);
}

TEST(MemoryModel, StraddlingLaneCountsBothSectors) {
  MemoryModel mem(make_a100());
  mem.begin_kernel();
  alignas(32) static std::uint8_t buf[128];
  Lanes<std::uint64_t> addr;
  // One active lane reading 8 bytes across a 32B boundary.
  addr[0] = reinterpret_cast<std::uint64_t>(&buf[28]);
  mem.warp_access(addr, 8, 0x1u, false);
  EXPECT_EQ(mem.counters().sectors_requested, 2u);
}

TEST(MemoryModel, AtomicCountsRmwAndOp) {
  MemoryModel mem(make_a100());
  mem.begin_kernel();
  alignas(32) static double cell;
  mem.atomic_access(reinterpret_cast<std::uint64_t>(&cell), sizeof(double));
  const TrafficCounters tc = mem.counters();
  EXPECT_EQ(tc.l2_atomic_ops, 1u);
  EXPECT_EQ(tc.l2_read_sectors, 1u);
  EXPECT_EQ(tc.l2_write_sectors, 1u);
}

TEST(MemoryModel, EndKernelFlushesDirtyToDram) {
  MemoryModel mem(make_a100());
  mem.begin_kernel();
  alignas(32) static double cell;
  mem.scalar_access(reinterpret_cast<std::uint64_t>(&cell), sizeof(double), true);
  const TrafficCounters tc = mem.end_kernel();
  // write-allocate read + final writeback
  EXPECT_EQ(tc.dram_read_bytes, kSector);
  EXPECT_EQ(tc.dram_write_bytes, kSector);
}

TEST(MemoryModel, StreamingLargeArrayMissesEveryLine) {
  // An array bigger than L2 touched twice: the second pass gets no reuse —
  // the regime the paper's 9 GB matrices live in.
  DeviceSpec tiny = make_a100();
  tiny.l2_bytes = 64 * kSector;  // 2 KiB cache
  MemoryModel mem(tiny);
  mem.begin_kernel();
  alignas(32) static std::uint8_t big[8192];
  for (int pass = 0; pass < 2; ++pass) {
    for (std::size_t off = 0; off < sizeof(big); off += kSector) {
      mem.scalar_access(reinterpret_cast<std::uint64_t>(&big[off]), 4, false);
    }
  }
  const TrafficCounters tc = mem.counters();
  EXPECT_EQ(tc.dram_read_bytes, 2 * sizeof(big));
  EXPECT_EQ(tc.l2_read_hits, 0u);
}

TEST(MemoryModel, SmallArrayIsCacheResident) {
  // The input vector regime: second pass is all hits.
  MemoryModel mem(make_a100());
  mem.begin_kernel();
  alignas(32) static std::uint8_t small[4096];
  for (int pass = 0; pass < 2; ++pass) {
    for (std::size_t off = 0; off < sizeof(small); off += kSector) {
      mem.scalar_access(reinterpret_cast<std::uint64_t>(&small[off]), 4, false);
    }
  }
  const TrafficCounters tc = mem.counters();
  EXPECT_EQ(tc.dram_read_bytes, sizeof(small));
  EXPECT_EQ(tc.l2_read_hits, sizeof(small) / kSector);
}

TEST(TrafficCounters, Accumulate) {
  TrafficCounters a, b;
  a.dram_read_bytes = 10;
  a.warp_requests = 1;
  b.dram_read_bytes = 5;
  b.sectors_requested = 3;
  a += b;
  EXPECT_EQ(a.dram_read_bytes, 15u);
  EXPECT_EQ(a.sectors_requested, 3u);
  EXPECT_EQ(a.dram_bytes(), 15u);
}

}  // namespace
}  // namespace pd::gpusim
