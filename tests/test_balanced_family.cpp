// Parameterized structural sweep for the load-balanced kernel family
// (row-split, CSR-Stream, batched multi-vector): every variant must agree
// with the reference and stay schedule-reproducible on every structural
// family the dose matrices and the random tests cover — including the
// degenerate ones (many empty rows, banded locality).

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "common/rng.hpp"
#include "kernels/multivector_csr.hpp"
#include "kernels/rowsplit_csr.hpp"
#include "kernels/stream_csr.hpp"
#include "sparse/convert.hpp"
#include "sparse/random.hpp"
#include "sparse/reference.hpp"

namespace pd::kernels {
namespace {

using sparse::RandomStructure;
using Param = std::tuple<RandomStructure, std::uint64_t>;

class BalancedFamily : public ::testing::TestWithParam<Param> {
 protected:
  void SetUp() override {
    const auto [structure, seed] = GetParam();
    Rng rng(seed);
    A_ = sparse::random_csr(rng, 280, 120, 14.0, structure);
    x_ = sparse::random_vector(rng, A_.num_cols, 0.1, 2.0);
    ref_.resize(A_.num_rows);
    sparse::reference_spmv(A_, x_, ref_);
  }

  void expect_close(const std::vector<double>& y) {
    for (std::uint64_t r = 0; r < A_.num_rows; ++r) {
      EXPECT_NEAR(y[r], ref_[r], 1e-11 * (1.0 + std::fabs(ref_[r]))) << r;
    }
  }

  sparse::CsrF64 A_;
  std::vector<double> x_;
  std::vector<double> ref_;
};

TEST_P(BalancedFamily, RowSplitAgreesAndReproduces) {
  gpusim::Gpu gpu(gpusim::make_a100());
  const auto plan = build_row_split_plan(A_, 64);
  std::vector<double> a(A_.num_rows), b(A_.num_rows);
  run_rowsplit_csr<double, double>(gpu, A_, plan, x_, std::span<double>(a),
                                   256, 5);
  expect_close(a);
  run_rowsplit_csr<double, double>(gpu, A_, plan, x_, std::span<double>(b),
                                   256, 500);
  EXPECT_EQ(a, b);
}

TEST_P(BalancedFamily, StreamAgreesAndReproduces) {
  gpusim::Gpu gpu(gpusim::make_a100());
  const auto plan = build_stream_plan(A_, 512);
  std::vector<double> a(A_.num_rows), b(A_.num_rows);
  run_stream_csr<double, double>(gpu, A_, plan, x_, std::span<double>(a), 128,
                                 5);
  expect_close(a);
  run_stream_csr<double, double>(gpu, A_, plan, x_, std::span<double>(b), 128,
                                 500);
  EXPECT_EQ(a, b);
}

TEST_P(BalancedFamily, MultiVectorAgreesPerColumn) {
  gpusim::Gpu gpu(gpusim::make_a100());
  Rng rng(std::get<1>(GetParam()) + 7);
  const auto x2 = sparse::random_vector(rng, A_.num_cols, 0.1, 2.0);
  std::vector<double> ref2(A_.num_rows);
  sparse::reference_spmv(A_, x2, ref2);

  std::vector<std::vector<double>> ys(2, std::vector<double>(A_.num_rows));
  const std::vector<std::span<const double>> xs = {x_, x2};
  std::vector<std::span<double>> yspans(ys.begin(), ys.end());
  run_vector_csr_multi<double, double>(
      gpu, A_, xs, std::span<const std::span<double>>(yspans));
  expect_close(ys[0]);
  for (std::uint64_t r = 0; r < A_.num_rows; ++r) {
    EXPECT_NEAR(ys[1][r], ref2[r], 1e-11 * (1.0 + std::fabs(ref2[r]))) << r;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Structures, BalancedFamily,
    ::testing::Combine(::testing::Values(RandomStructure::kUniform,
                                         RandomStructure::kSkewed,
                                         RandomStructure::kManyEmpty,
                                         RandomStructure::kBanded),
                       ::testing::Values(71u, 72u, 73u)));

}  // namespace
}  // namespace pd::kernels
