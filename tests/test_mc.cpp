// Tests for the Monte Carlo pencil-beam engine: Bragg-curve physics,
// transport determinism, noise behaviour, and matrix assembly.

#include <gtest/gtest.h>

#include <cmath>

#include "mc/bragg.hpp"
#include "mc/generator.hpp"
#include "mc/pencilbeam.hpp"
#include "phantom/phantom.hpp"

namespace pd::mc {
namespace {

TEST(Bragg, PeakSitsNearTheRange) {
  const BraggModel model;
  for (const double range : {5.0, 10.0, 20.0, 30.0}) {
    double best_depth = 0.0, best_dose = 0.0;
    for (double d = 0.0; d < range * 1.2; d += 0.01) {
      const double dd = model.depth_dose(d, range);
      if (dd > best_dose) {
        best_dose = dd;
        best_depth = d;
      }
    }
    EXPECT_NEAR(best_depth, range, 3.0 * model.sigma_range_cm(range) + 0.02);
  }
}

TEST(Bragg, EntranceWellBelowPeak) {
  const BraggModel model;
  const double range = 15.0;
  const double entrance = model.depth_dose(0.0, range);
  const double peak = model.depth_dose(range - 0.5 * model.sigma_range_cm(range),
                                       range);
  EXPECT_GT(peak / entrance, 3.0);  // clinical Bragg peaks are ~3-5x entrance
  EXPECT_LT(peak / entrance, 15.0);
}

TEST(Bragg, ZeroBeyondDistalFalloff) {
  const BraggModel model;
  const double range = 12.0;
  EXPECT_EQ(model.depth_dose(model.max_depth_cm(range) + 0.01, range), 0.0);
  EXPECT_GT(model.depth_dose(range, range), 0.0);
  EXPECT_EQ(model.depth_dose(-0.1, range), 0.0);
}

TEST(Bragg, DistalFalloffIsSharp) {
  const BraggModel model;
  const double range = 12.0;
  const double sigma = model.sigma_range_cm(range);
  const double at_peak = model.depth_dose(range - 0.5 * sigma, range);
  const double past = model.depth_dose(range + 2.0 * sigma, range);
  EXPECT_LT(past, 0.25 * at_peak);
}

TEST(Bragg, StragglingGrowsWithRange) {
  const BraggModel model;
  EXPECT_LT(model.sigma_range_cm(5.0), model.sigma_range_cm(30.0));
  EXPECT_THROW(model.sigma_range_cm(0.0), pd::Error);
  EXPECT_THROW(model.depth_dose(1.0, 0.0), pd::Error);
}

class TransportFixture : public ::testing::Test {
 protected:
  TransportFixture()
      : phantom_(phantom::make_liver_phantom(24, 24, 14, 5.0)),
        frame_(phantom::make_beam_frame(phantom_, 0.0)) {
    spot_.u_mm = 0.0;
    spot_.v_mm = 0.0;
    spot_.energy_mev =
        phantom::proton_energy_mev(water_equivalent_depth_cm_of_iso());
  }

  double water_equivalent_depth_cm_of_iso() const {
    return phantom::water_equivalent_depth_cm(phantom_, frame_,
                                              frame_.isocenter);
  }

  phantom::Phantom phantom_;
  phantom::BeamFrame frame_;
  phantom::Spot spot_;
  BraggModel bragg_;
  TransportConfig config_;
};

TEST_F(TransportFixture, DepositsAreInsideTheGridAndPositive) {
  Rng rng(1);
  const auto deposits = transport_spot(phantom_, frame_, spot_, bragg_, config_, rng);
  ASSERT_GT(deposits.size(), 10u);
  for (const Deposit& d : deposits) {
    EXPECT_LT(d.voxel, phantom_.grid().num_voxels());
    EXPECT_GE(d.dose, 0.0);
  }
}

TEST_F(TransportFixture, SortedUniqueVoxels) {
  Rng rng(1);
  const auto deposits = transport_spot(phantom_, frame_, spot_, bragg_, config_, rng);
  for (std::size_t i = 1; i < deposits.size(); ++i) {
    EXPECT_LT(deposits[i - 1].voxel, deposits[i].voxel);
  }
}

TEST_F(TransportFixture, DeterministicForFixedSeed) {
  Rng rng_a(77), rng_b(77);
  const auto a = transport_spot(phantom_, frame_, spot_, bragg_, config_, rng_a);
  const auto b = transport_spot(phantom_, frame_, spot_, bragg_, config_, rng_b);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].voxel, b[i].voxel);
    EXPECT_EQ(a[i].dose, b[i].dose);  // bitwise
  }
}

TEST_F(TransportFixture, PeakDoseNearTheBraggDepth) {
  Rng rng(5);
  const auto deposits = transport_spot(phantom_, frame_, spot_, bragg_, config_, rng);
  // The hottest voxel should sit near the isocenter depth (the spot was
  // aimed there through the energy choice).
  const Deposit* hottest = &deposits.front();
  for (const Deposit& d : deposits) {
    if (d.dose > hottest->dose) hottest = &d;
  }
  const auto hot_center =
      phantom_.grid().voxel_center(phantom_.grid().from_linear(hottest->voxel));
  const double dist = (hot_center - frame_.isocenter).norm();
  EXPECT_LT(dist, 25.0);  // within a few voxels of the aim point
}

TEST_F(TransportFixture, HaloNoiseAddsTinyEntries) {
  Rng rng_with(3), rng_without(3);
  TransportConfig no_halo = config_;
  no_halo.halo_prob = 0.0;
  TransportConfig halo = config_;
  halo.halo_prob = 0.9;
  const auto with = transport_spot(phantom_, frame_, spot_, bragg_, halo, rng_with);
  const auto without =
      transport_spot(phantom_, frame_, spot_, bragg_, no_halo, rng_without);
  EXPECT_GT(with.size(), without.size());  // the paper's MC-noise nnz inflation
}

TEST_F(TransportFixture, PruningDropsSmallDeposits) {
  Rng rng_a(3), rng_b(3);
  TransportConfig loose = config_;
  loose.prune_rel = 0.0;
  loose.halo_prob = 0.0;
  TransportConfig tight = config_;
  tight.prune_rel = 0.05;  // aggressive
  tight.halo_prob = 0.0;
  const auto all = transport_spot(phantom_, frame_, spot_, bragg_, loose, rng_a);
  const auto pruned = transport_spot(phantom_, frame_, spot_, bragg_, tight, rng_b);
  EXPECT_LT(pruned.size(), all.size());
}

TEST_F(TransportFixture, InvalidStepThrows) {
  Rng rng(1);
  TransportConfig bad = config_;
  bad.step_mm = 0.0;
  EXPECT_THROW(transport_spot(phantom_, frame_, spot_, bragg_, bad, rng),
               pd::Error);
}

TEST(Generator, BuildsValidatedMatrix) {
  const auto phantom = phantom::make_prostate_phantom(16, 16, 12, 6.0);
  phantom::BeamConfig beam_cfg;
  beam_cfg.spot_spacing_mm = 8.0;
  beam_cfg.layer_spacing_mm = 8.0;
  const GeneratedBeam beam = generate_dose_matrix(
      phantom, 90.0, beam_cfg, TransportConfig{}, BraggModel{}, 42);
  EXPECT_EQ(beam.matrix.num_rows, phantom.grid().num_voxels());
  EXPECT_EQ(beam.matrix.num_cols, beam.spots.size());
  EXPECT_GT(beam.matrix.nnz(), 100u);
  EXPECT_NO_THROW(beam.matrix.validate());
  EXPECT_DOUBLE_EQ(beam.gantry_angle_deg, 90.0);
}

TEST(Generator, DeterministicInSeed) {
  const auto phantom = phantom::make_prostate_phantom(14, 14, 10, 6.0);
  phantom::BeamConfig cfg;
  cfg.spot_spacing_mm = 9.0;
  cfg.layer_spacing_mm = 9.0;
  const auto a = generate_dose_matrix(phantom, 90.0, cfg, TransportConfig{},
                                      BraggModel{}, 7);
  const auto b = generate_dose_matrix(phantom, 90.0, cfg, TransportConfig{},
                                      BraggModel{}, 7);
  EXPECT_EQ(a.matrix.values, b.matrix.values);
  EXPECT_EQ(a.matrix.col_idx, b.matrix.col_idx);
  const auto c = generate_dose_matrix(phantom, 90.0, cfg, TransportConfig{},
                                      BraggModel{}, 8);
  EXPECT_NE(a.matrix.values, c.matrix.values);
}

TEST(Generator, DifferentAnglesHitDifferentVoxels) {
  const auto phantom = phantom::make_liver_phantom(20, 20, 12, 6.0);
  phantom::BeamConfig cfg;
  cfg.spot_spacing_mm = 9.0;
  cfg.layer_spacing_mm = 9.0;
  const auto a = generate_dose_matrix(phantom, 0.0, cfg, TransportConfig{},
                                      BraggModel{}, 7);
  const auto b = generate_dose_matrix(phantom, 135.0, cfg, TransportConfig{},
                                      BraggModel{}, 7);
  // Count rows non-empty in exactly one of the two.
  std::uint64_t sym_diff = 0;
  for (std::uint64_t r = 0; r < a.matrix.num_rows; ++r) {
    const bool in_a = a.matrix.row_nnz(r) > 0;
    const bool in_b = b.matrix.row_nnz(r) > 0;
    sym_diff += (in_a != in_b);
  }
  EXPECT_GT(sym_diff, a.matrix.num_rows / 20);
}

}  // namespace
}  // namespace pd::mc
