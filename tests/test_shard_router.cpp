// Sharded serving tier: placement model and differential bitwise battery.
//
// ShardRouterPlacement checks the consistent-hash router against an
// independent shadow model — the ring is rebuilt from nothing but the
// documented hash and walked by a second implementation, and a seeded random
// walk of placements and health flips must agree with it exactly.  It also
// pins the distribution properties the design leans on (balance within a
// band, ~1/N movement on shard-count change, replication clamp).
//
// ShardDifferential is §II-D served through the router: every kOk dose —
// whole-plan or column-slice, replication on or off, across shard counts
// {1, 2, 4}, worker counts, and both request priorities — must be *bitwise*
// identical to a fresh sequential DoseEngine::compute on the full plan
// matrix.  Sharding, placement, spills, slicing, and merge order must all be
// invisible in the bits.
//
// ShardThreadcheck runs the whole sharded stack with the analyzer recording
// and schedule perturbation on: bits unchanged, stream clean.
//
// PROTONDOSE_SERVICE_STRESS=1 elevates client/request counts (CI shard-stress
// job).

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstdlib>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "common/threadcheck.hpp"
#include "gpusim/device.hpp"
#include "kernels/dose_engine.hpp"
#include "service/shard_router.hpp"
#include "service/sharded_service.hpp"
#include "sparse/random.hpp"

namespace pd::service {
namespace {

/// Clean-suite enforcement (docs/threadcheck.md): under
/// PROTONDOSE_THREADCHECK=1 every test in this binary doubles as a
/// threadcheck fixture — the analyzer must find nothing at exit.
class ThreadcheckCleanEnv : public ::testing::Environment {
 public:
  void TearDown() override {
    if (!threadcheck::enabled()) {
      return;
    }
    const threadcheck::Report report = threadcheck::analyze();
    EXPECT_TRUE(report.clean()) << report.summary();
  }
};
[[maybe_unused]] const auto* const kThreadcheckCleanEnv =
    ::testing::AddGlobalTestEnvironment(new ThreadcheckCleanEnv);

using Backend = kernels::DoseEngine::Backend;

constexpr std::uint64_t kMatrixSeedBase = 0x5a4dbee5ULL;
constexpr std::uint64_t kSpots = 90;

bool stress_elevated() {
  const char* env = std::getenv("PROTONDOSE_SERVICE_STRESS");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

/// Deterministic per-plan matrix (the MatrixSource contract).
sparse::CsrF64 plan_matrix(std::size_t plan_index) {
  Rng rng(kMatrixSeedBase + plan_index);
  return sparse::random_csr(rng, 300, kSpots, 12.0,
                            sparse::RandomStructure::kSkewed);
}

std::string plan_name(std::size_t plan_index) {
  return "plan" + std::to_string(plan_index);
}

ShardedServiceConfig make_sharded_config(std::size_t shards, unsigned workers,
                                         std::size_t batch_cap,
                                         std::size_t replication) {
  ShardedServiceConfig config;
  config.shards = shards;
  config.replication = replication;
  config.shard.workers = workers;
  config.shard.batch_cap = batch_cap;
  // Above the stress battery's total in-flight request count with bulk
  // admission headroom (0.75 * 1024) to spare: the differential tests want
  // every submit accepted.
  config.shard.queue_bound = 1024;
  config.shard.flush_deadline_ms = 0.5;
  config.shard.engine_cache_capacity = 2;
  config.shard.engine.device = gpusim::make_a100();
  config.shard.engine.backend = Backend::kNative;
  return config;
}

void register_plans(ShardedDoseService& service, std::size_t num_plans) {
  for (std::size_t p = 0; p < num_plans; ++p) {
    service.register_plan(plan_name(p), [p] { return plan_matrix(p); });
  }
}

/// Fresh sequential reference engines on the *full* plan matrices,
/// independent of the service — the other side of the differential.
std::vector<kernels::DoseEngine> make_references(
    std::size_t num_plans, Backend backend = Backend::kNative) {
  std::vector<kernels::DoseEngine> refs;
  refs.reserve(num_plans);
  for (std::size_t p = 0; p < num_plans; ++p) {
    refs.emplace_back(plan_matrix(p), gpusim::make_a100(),
                      kernels::DoseEngine::Mode::kHalfDouble,
                      kernels::kDefaultVectorTpb, kernels::SpmvFamily::kVector,
                      backend);
  }
  return refs;
}

void expect_bitwise_equal(const std::vector<double>& got,
                          const std::vector<double>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(std::bit_cast<std::uint64_t>(got[i]),
              std::bit_cast<std::uint64_t>(want[i]))
        << "dose[" << i << "]: " << got[i] << " vs " << want[i];
  }
}

// ---------------------------------------------------------------------------
// Placement shadow model

/// Independent reimplementation of the ring from nothing but the documented
/// construction: vnode point = hash_key("shard-<s>#<v>"), sorted, clockwise
/// walk collecting distinct shards.  Deliberately written differently from
/// ShardRouter (pair-of-vectors, index sort) so a shared bug is unlikely.
struct ShadowRing {
  std::vector<std::uint64_t> points;
  std::vector<std::size_t> owners;

  ShadowRing(std::size_t shards, std::size_t vnodes) {
    for (std::size_t s = 0; s < shards; ++s) {
      for (std::size_t v = 0; v < vnodes; ++v) {
        points.push_back(ShardRouter::hash_key(
            "shard-" + std::to_string(s) + "#" + std::to_string(v)));
        owners.push_back(s);
      }
    }
    std::vector<std::size_t> order(points.size());
    for (std::size_t i = 0; i < order.size(); ++i) {
      order[i] = i;
    }
    std::sort(order.begin(), order.end(),
              [this](std::size_t a, std::size_t b) {
                return std::make_pair(points[a], owners[a]) <
                       std::make_pair(points[b], owners[b]);
              });
    std::vector<std::uint64_t> sorted_points;
    std::vector<std::size_t> sorted_owners;
    for (const std::size_t i : order) {
      sorted_points.push_back(points[i]);
      sorted_owners.push_back(owners[i]);
    }
    points = std::move(sorted_points);
    owners = std::move(sorted_owners);
  }

  std::vector<std::size_t> walk(const std::string& plan,
                                std::size_t shards) const {
    const std::uint64_t h = ShardRouter::hash_key(plan);
    std::size_t start = 0;
    while (start < points.size() && points[start] < h) {
      ++start;
    }
    std::vector<std::size_t> out;
    std::vector<bool> seen(shards, false);
    for (std::size_t step = 0; step < points.size() && out.size() < shards;
         ++step) {
      const std::size_t i = (start + step) % points.size();
      if (!seen[owners[i]]) {
        seen[owners[i]] = true;
        out.push_back(owners[i]);
      }
    }
    return out;
  }
};

TEST(ShardRouterPlacement, ShadowModelRandomWalk) {
  const std::uint64_t seeds[] = {0x5eedULL, 42ULL, 0xfeedfaceULL};
  for (const std::uint64_t seed : seeds) {
    Rng rng(seed);
    for (int round = 0; round < 20; ++round) {
      const std::size_t shards = 1 + rng.uniform_index(5);
      const std::size_t replication = 1 + rng.uniform_index(3);
      ShardRouter router(
          ShardRouterConfig{.shards = shards, .replication = replication});
      const ShadowRing shadow(shards, router.config().vnodes);
      std::vector<ShardHealth> health(shards, ShardHealth::kActive);

      for (int step = 0; step < 200; ++step) {
        // Mostly placements, occasionally a health flip (never flipping the
        // last active shard down keeps route() non-empty and the "degrade,
        // don't fail" property checkable every step).
        if (rng.uniform_index(5) == 0) {
          const std::size_t shard = rng.uniform_index(shards);
          const ShardHealth next = static_cast<ShardHealth>(
              rng.uniform_index(3));
          const std::size_t actives =
              static_cast<std::size_t>(std::count(
                  health.begin(), health.end(), ShardHealth::kActive));
          if (next == ShardHealth::kActive ||
              health[shard] != ShardHealth::kActive || actives > 1) {
            health[shard] = next;
            router.set_health(shard, next);
          }
        }
        const std::string plan =
            "walk" + std::to_string(rng.uniform_index(500));
        const std::vector<std::size_t> walk = shadow.walk(plan, shards);
        ASSERT_EQ(router.ring_walk(plan), walk);

        std::vector<std::size_t> placement = walk;
        placement.resize(std::min(placement.size(), router.replication()));
        ASSERT_EQ(router.placement(plan), placement);

        std::vector<std::size_t> want_route;
        for (const std::size_t s : placement) {
          if (health[s] == ShardHealth::kActive) {
            want_route.push_back(s);
          }
        }
        if (want_route.empty()) {
          for (const std::size_t s : walk) {
            if (health[s] == ShardHealth::kActive) {
              want_route.push_back(s);
            }
          }
        }
        ASSERT_EQ(router.route(plan), want_route)
            << "seed " << seed << " round " << round << " step " << step;
        ASSERT_FALSE(router.route(plan).empty())
            << "an active shard exists, so routing must degrade, not fail";
      }
    }
  }
}

TEST(ShardRouterPlacement, BalanceAndStability) {
  constexpr std::size_t kPlans = 2000;
  // Balance: with 64 vnodes/shard, each of 4 shards owns a reasonable band
  // of a large plan population.
  ShardRouter four(ShardRouterConfig{.shards = 4});
  std::vector<std::size_t> counts(4, 0);
  for (std::size_t p = 0; p < kPlans; ++p) {
    ++counts[four.placement("balance" + std::to_string(p)).front()];
  }
  for (std::size_t s = 0; s < 4; ++s) {
    EXPECT_GT(counts[s], kPlans / 10) << "shard " << s << " underloaded";
    EXPECT_LT(counts[s], kPlans * 4 / 10) << "shard " << s << " overloaded";
  }

  // Stability: adding a fifth shard moves roughly 1/5 of primaries — the
  // consistent-hashing property that keeps engine caches warm on resize.
  ShardRouter five(ShardRouterConfig{.shards = 5});
  std::size_t moved = 0;
  for (std::size_t p = 0; p < kPlans; ++p) {
    const std::string plan = "balance" + std::to_string(p);
    if (five.placement(plan).front() != four.placement(plan).front()) {
      ++moved;
    }
  }
  EXPECT_LT(moved, kPlans * 35 / 100)
      << "adding one shard should move ~1/5 of plans, not rehash everything";
  EXPECT_GT(moved, 0u);

  // Replication clamps to the shard count and replica sets never repeat a
  // shard.
  ShardRouter clamped(ShardRouterConfig{.shards = 2, .replication = 9});
  EXPECT_EQ(clamped.replication(), 2u);
  const std::vector<std::size_t> replicas = clamped.placement("clamp");
  ASSERT_EQ(replicas.size(), 2u);
  EXPECT_NE(replicas[0], replicas[1]);
}

// ---------------------------------------------------------------------------
// Differential battery

struct ShardCase {
  std::size_t shards;
  unsigned workers;
  std::size_t batch_cap;
  std::size_t replication;
};

class ShardDifferential : public ::testing::TestWithParam<ShardCase> {};

struct ClientRecord {
  std::size_t plan_index;
  std::vector<double> weights;
  std::future<DoseResult> result;
};

/// One client: random-weight requests over the plans, alternating
/// interactive and bulk priorities.
void run_client(ShardedDoseService& service, std::uint64_t seed,
                std::size_t num_plans, std::size_t requests,
                std::vector<ClientRecord>& records) {
  Rng rng(seed);
  records.reserve(requests);
  for (std::size_t r = 0; r < requests; ++r) {
    const std::size_t plan_index = rng.uniform_index(num_plans);
    std::vector<double> weights = sparse::random_vector(rng, kSpots, 0.0, 2.0);
    SubmitOptions options;
    options.priority =
        r % 2 == 0 ? RequestPriority::kInteractive : RequestPriority::kBulk;
    Ticket ticket = service.submit(plan_name(plan_index), weights, options);
    ASSERT_TRUE(ticket.accepted);
    records.push_back(
        ClientRecord{plan_index, std::move(weights), std::move(ticket.result)});
  }
}

TEST_P(ShardDifferential, BitwiseAcrossShardsWorkersPriorities) {
  const ShardCase& param = GetParam();
  const std::size_t num_plans = 4;
  const std::size_t clients = stress_elevated() ? 8 : 3;
  const std::size_t requests_per_client = stress_elevated() ? 48 : 10;

  ShardedDoseService service(make_sharded_config(
      param.shards, param.workers, param.batch_cap, param.replication));
  register_plans(service, num_plans);

  std::vector<std::vector<ClientRecord>> per_client(clients);
  {
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (std::size_t c = 0; c < clients; ++c) {
      threads.emplace_back([&service, &per_client, c, num_plans,
                            requests_per_client] {
        run_client(service, /*seed=*/2000 + c, num_plans, requests_per_client,
                   per_client[c]);
      });
    }
    for (std::thread& t : threads) {
      t.join();
    }
  }
  service.drain();

  std::vector<kernels::DoseEngine> refs = make_references(num_plans);
  std::size_t ok = 0;
  for (std::vector<ClientRecord>& records : per_client) {
    for (ClientRecord& record : records) {
      DoseResult result = record.result.get();
      ASSERT_EQ(result.status, RequestStatus::kOk) << result.error;
      const std::vector<double> want =
          refs[record.plan_index].compute(record.weights);
      expect_bitwise_equal(result.dose, want);
      ++ok;
    }
  }

  const ShardedServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted, clients * requests_per_client);
  EXPECT_EQ(stats.accepted, stats.submitted);
  EXPECT_EQ(stats.rejected + stats.failed_immediate + stats.rerouted, 0u);
  std::uint64_t routed = 0;
  std::uint64_t completed = 0;
  for (std::size_t s = 0; s < param.shards; ++s) {
    routed += stats.routed_per_shard[s];
    completed += stats.shards[s].completed;
    EXPECT_EQ(stats.health[s], ShardHealth::kActive);
  }
  EXPECT_EQ(routed, stats.accepted);
  EXPECT_EQ(completed, ok);
  if (param.shards > 1) {
    // 4 plans over 64 vnodes: every test configuration was chosen to place
    // on at least two shards (sanity that the battery exercises routing).
    std::size_t used = 0;
    for (std::size_t s = 0; s < param.shards; ++s) {
      used += stats.routed_per_shard[s] > 0 ? 1 : 0;
    }
    EXPECT_GE(used, 2u);
  }
}

std::string shard_case_name(const ::testing::TestParamInfo<ShardCase>& info) {
  std::string name = "s" + std::to_string(info.param.shards);
  name += "_w" + std::to_string(info.param.workers);
  name += "_cap" + std::to_string(info.param.batch_cap);
  name += "_r" + std::to_string(info.param.replication);
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ShardDifferential,
    ::testing::Values(ShardCase{1, 1, 4, 1}, ShardCase{1, 2, 9, 1},
                      ShardCase{2, 1, 4, 1}, ShardCase{2, 2, 4, 2},
                      ShardCase{4, 1, 1, 1}, ShardCase{4, 2, 4, 2},
                      ShardCase{4, 2, 9, 4}),
    shard_case_name);

TEST(ShardDifferential, GpusimBackendStaysBitwise) {
  // Backend coverage: the sharded tier is backend-agnostic, so routed doses
  // from simulated-GPU engines must equal a fresh sequential gpusim compute
  // exactly as the native ones do.
  const std::size_t num_plans = 2;
  ShardedServiceConfig config = make_sharded_config(2, 2, 4, 2);
  config.shard.engine.backend = Backend::kGpusim;
  ShardedDoseService service(config);
  register_plans(service, num_plans);
  std::vector<kernels::DoseEngine> refs =
      make_references(num_plans, Backend::kGpusim);

  Rng rng(0x69705133ULL);
  const std::size_t requests = stress_elevated() ? 48 : 12;
  std::vector<ClientRecord> records;
  for (std::size_t r = 0; r < requests; ++r) {
    const std::size_t p = r % num_plans;
    std::vector<double> weights = sparse::random_vector(rng, kSpots, 0.0, 2.0);
    SubmitOptions options;
    options.priority =
        r % 2 == 0 ? RequestPriority::kInteractive : RequestPriority::kBulk;
    Ticket ticket = service.submit(plan_name(p), weights, options);
    ASSERT_TRUE(ticket.accepted);
    records.push_back(
        ClientRecord{p, std::move(weights), std::move(ticket.result)});
  }
  service.drain();
  for (ClientRecord& record : records) {
    DoseResult result = record.result.get();
    ASSERT_EQ(result.status, RequestStatus::kOk) << result.error;
    expect_bitwise_equal(result.dose,
                         refs[record.plan_index].compute(record.weights));
  }
}

TEST(ShardDifferentialDelta, DeltaRequestsStayBitwise) {
  // submit_delta through the router: every delta dose must equal a fresh
  // sequential full compute of the request's new weights, regardless of
  // which shard's engine (and lazily rebuilt CSC sidecar) served it.
  const std::size_t num_plans = 3;
  ShardedDoseService service(make_sharded_config(2, 2, 4, 1));
  register_plans(service, num_plans);
  std::vector<kernels::DoseEngine> refs = make_references(num_plans);

  std::vector<std::shared_ptr<const DeltaBase>> bases;
  for (std::size_t p = 0; p < num_plans; ++p) {
    auto base = std::make_shared<DeltaBase>();
    base->key = static_cast<std::uint32_t>(p);
    base->weights = std::vector<double>(kSpots, 1.0);
    base->dose = refs[p].compute(base->weights);
    bases.push_back(std::move(base));
  }

  Rng rng(0xde17a5eedULL);
  const std::size_t rounds = stress_elevated() ? 60 : 16;
  std::vector<ClientRecord> records;
  for (std::size_t r = 0; r < rounds; ++r) {
    const std::size_t p = r % num_plans;
    std::vector<double> weights = sparse::random_vector(rng, kSpots, 0.0, 2.0);
    DeltaOptions options;
    options.priority =
        r % 2 == 0 ? RequestPriority::kInteractive : RequestPriority::kBulk;
    Ticket ticket = service.submit_delta(plan_name(p), bases[p], weights,
                                         options);
    ASSERT_TRUE(ticket.accepted);
    records.push_back(
        ClientRecord{p, std::move(weights), std::move(ticket.result)});
  }
  service.drain();
  for (ClientRecord& record : records) {
    DoseResult result = record.result.get();
    ASSERT_EQ(result.status, RequestStatus::kOk) << result.error;
    expect_bitwise_equal(result.dose,
                         refs[record.plan_index].compute(record.weights));
  }
}

// ---------------------------------------------------------------------------
// Column-slice mode

TEST(ShardSliced, MergedDoseIsBitwiseFullCompute) {
  // The core slice property: the ordered concatenation of slice doses equals
  // the full-matrix sequential compute bit for bit, for every slice count
  // and shard count tried.
  for (const std::size_t shards : {1UL, 2UL, 4UL}) {
    for (const std::size_t slices : {2UL, 3UL, 5UL}) {
      ShardedDoseService service(make_sharded_config(shards, 2, 4, 1));
      service.register_plan_sliced("liver", [] { return plan_matrix(0); },
                                   slices);
      std::vector<kernels::DoseEngine> refs = make_references(1);

      Rng rng(0x51ce5eedULL + shards * 10 + slices);
      std::vector<ClientRecord> records;
      const std::size_t requests = stress_elevated() ? 24 : 8;
      for (std::size_t r = 0; r < requests; ++r) {
        std::vector<double> weights =
            sparse::random_vector(rng, kSpots, 0.0, 2.0);
        Ticket ticket = service.submit("liver", weights);
        ASSERT_TRUE(ticket.accepted);
        ASSERT_NE(ticket.id, 0u);
        records.push_back(
            ClientRecord{0, std::move(weights), std::move(ticket.result)});
      }
      service.drain();
      for (ClientRecord& record : records) {
        DoseResult result = record.result.get();
        ASSERT_EQ(result.status, RequestStatus::kOk) << result.error;
        ASSERT_GE(result.batch_size, 1u);
        expect_bitwise_equal(result.dose, refs[0].compute(record.weights));
      }
      const ShardedServiceStats stats = service.stats();
      EXPECT_EQ(stats.sliced_submits, requests);
    }
  }
}

TEST(ShardSliced, MixedSlicedAndWholeTrafficUnderConcurrency) {
  // Sliced and whole plans share the shards; concurrent clients on both must
  // not disturb each other's bits.
  const std::size_t shards = 2;
  ShardedDoseService service(make_sharded_config(shards, 2, 4, 1));
  register_plans(service, 2);
  service.register_plan_sliced("sliced", [] { return plan_matrix(2); }, 3);
  std::vector<kernels::DoseEngine> refs = make_references(3);

  const std::size_t clients = stress_elevated() ? 6 : 3;
  const std::size_t requests = stress_elevated() ? 24 : 8;
  std::vector<std::vector<ClientRecord>> per_client(clients);
  {
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (std::size_t c = 0; c < clients; ++c) {
      threads.emplace_back([&service, &per_client, c, requests] {
        Rng rng(3000 + c);
        per_client[c].reserve(requests);
        for (std::size_t r = 0; r < requests; ++r) {
          const std::size_t p = rng.uniform_index(3);
          std::vector<double> weights =
              sparse::random_vector(rng, kSpots, 0.0, 2.0);
          SubmitOptions options;
          options.priority = r % 2 == 0 ? RequestPriority::kInteractive
                                        : RequestPriority::kBulk;
          Ticket ticket = service.submit(
              p == 2 ? std::string("sliced") : plan_name(p), weights, options);
          ASSERT_TRUE(ticket.accepted);
          per_client[c].push_back(
              ClientRecord{p, std::move(weights), std::move(ticket.result)});
        }
      });
    }
    for (std::thread& t : threads) {
      t.join();
    }
  }
  service.drain();
  for (std::vector<ClientRecord>& records : per_client) {
    for (ClientRecord& record : records) {
      DoseResult result = record.result.get();
      ASSERT_EQ(result.status, RequestStatus::kOk) << result.error;
      expect_bitwise_equal(result.dose,
                           refs[record.plan_index].compute(record.weights));
    }
  }
}

// ---------------------------------------------------------------------------
// Threadcheck integration

TEST(ShardThreadcheck, DoesNotPerturb) {
  // The full sharded stack with recording AND seeded schedule perturbation
  // on: doses stay bitwise equal to sequential computes, and the stream
  // analyzes clean (no race, no lock-order cycle, no condvar lint).
  const bool env_was_enabled = threadcheck::enabled();
  threadcheck::reset();
  threadcheck::CheckConfig check;
  check.schedule_seed = 0xC0FFEEULL;
  threadcheck::enable(check);

  constexpr std::size_t kPlans = 2;
  std::vector<kernels::DoseEngine> refs = make_references(kPlans + 1);
  {
    ShardedDoseService service(make_sharded_config(2, 2, 4, 2));
    register_plans(service, kPlans);
    service.register_plan_sliced("sliced", [] { return plan_matrix(kPlans); },
                                 2);
    Rng rng(0x9e7b5eedULL);
    std::vector<std::pair<std::size_t, std::vector<double>>> sent;
    std::vector<Ticket> tickets;
    for (int i = 0; i < 24; ++i) {
      const std::size_t p = static_cast<std::size_t>(i) % (kPlans + 1);
      std::vector<double> weights(kSpots);
      for (double& w : weights) {
        w = rng.uniform(0.0, 2.0);
      }
      SubmitOptions options;
      options.priority = i % 2 == 0 ? RequestPriority::kInteractive
                                    : RequestPriority::kBulk;
      tickets.push_back(service.submit(
          p == kPlans ? std::string("sliced") : plan_name(p), weights,
          options));
      sent.emplace_back(p, std::move(weights));
    }
    service.drain();
    for (std::size_t i = 0; i < tickets.size(); ++i) {
      DoseResult result = tickets[i].result.get();
      ASSERT_EQ(result.status, RequestStatus::kOk) << result.error;
      expect_bitwise_equal(result.dose,
                           refs[sent[i].first].compute(sent[i].second));
    }
  }

  const threadcheck::Report report = threadcheck::analyze();
  EXPECT_TRUE(report.clean()) << report.summary();
  EXPECT_GT(report.perturbations, 0u)
      << "the seed must actually exercise the perturbation hook";

  // Hand the session back the way the environment set it up.
  threadcheck::disable();
  threadcheck::reset();
  if (env_was_enabled) {
    threadcheck::CheckConfig env_config;
    env_config.schedule_seed = threadcheck::env_schedule_seed();
    threadcheck::enable(env_config);
  }
}

}  // namespace
}  // namespace pd::service
