// Native-backend contract tests: DoseEngine with Backend::kNative must be
// *bitwise identical* to the gpusim backend for every kernel family, every
// precision mode, and every native thread count — the native kernels replay
// the simulated warp kernels' exact conversion points and reduction orders
// (docs/native_backend.md), and the nnz-balanced partitioning never changes
// which accumulator an element lands in.  The gpusim engine stays the
// differential oracle; these tests are the contract's enforcement.
//
// Also covered: compute_batch vs looped compute bitwise equality on both
// backends (the gpusim vector path chunks through run_vector_csr_multi, the
// native path does one batched traversal), and the counter-access error when
// only the native backend has run.

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "gpusim/launch.hpp"
#include "kernels/dose_engine.hpp"
#include "kernels/multivector_csr.hpp"
#include "sparse/coo.hpp"
#include "sparse/random.hpp"

namespace pd::kernels {
namespace {

using Backend = DoseEngine::Backend;
using Mode = DoseEngine::Mode;

constexpr std::uint64_t kSeeds[] = {0, 42, 9001};
constexpr Mode kModes[] = {Mode::kHalfDouble, Mode::kSingle, Mode::kDouble};
constexpr unsigned kThreadCounts[] = {1, 2, 5};
constexpr SpmvFamily kFamilies[] = {SpmvFamily::kVector, SpmvFamily::kClassical,
                                    SpmvFamily::kRowSplit,
                                    SpmvFamily::kAdaptive};

void expect_bitwise_equal(const std::vector<double>& a,
                          const std::vector<double>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a[i]),
              std::bit_cast<std::uint64_t>(b[i]))
        << "dose[" << i << "]: " << a[i] << " vs " << b[i];
  }
}

struct Problem {
  sparse::CsrF64 matrix;
  std::vector<double> x;
};

/// Skewed structure: mixes empty, short (segmented-scan path), and >= 32-nnz
/// rows (vector path), so the adaptive worklist exercises both item kinds.
Problem make_problem(std::uint64_t seed) {
  Rng rng(seed);
  Problem p;
  p.matrix = sparse::random_csr(rng, 300, 90, 12.0,
                                sparse::RandomStructure::kSkewed);
  p.x = sparse::random_vector(rng, 90, 0.0, 2.0);
  return p;
}

/// Matrix with guaranteed > chunk_nnz (512) rows so the row-split plan has
/// split rows and phase 2 (partial-slot fold) actually runs.  Column indices
/// are picked deterministically distinct (7 is coprime to 1500) so nnz is
/// exact, not subject to duplicate merging.
Problem make_rowsplit_problem(std::uint64_t seed) {
  Rng rng(seed);
  sparse::CooMatrix<double> coo;
  coo.num_rows = 40;
  coo.num_cols = 1500;
  for (std::uint32_t r = 0; r < coo.num_rows; ++r) {
    const std::uint64_t len =
        (r % 7 == 0) ? 700 + rng.uniform_index(400) : rng.uniform_index(30);
    for (std::uint64_t k = 0; k < len; ++k) {
      const auto c = static_cast<std::uint32_t>((k * 7 + r) % coo.num_cols);
      coo.entries.push_back({r, c, rng.uniform(0.01, 1.0)});
    }
  }
  Problem p;
  p.matrix = sparse::coo_to_csr(coo);
  p.x = sparse::random_vector(rng, coo.num_cols, 0.0, 2.0);
  return p;
}

Problem make_problem_for(SpmvFamily family, std::uint64_t seed) {
  return family == SpmvFamily::kRowSplit ? make_rowsplit_problem(seed)
                                         : make_problem(seed);
}

DoseEngine make_engine(const Problem& p, SpmvFamily family, Mode mode,
                       Backend backend, unsigned native_threads = 1) {
  DoseEngine engine(sparse::CsrF64(p.matrix), gpusim::make_a100(), mode,
                    kDefaultVectorTpb, family, backend);
  if (backend == Backend::kGpusim) {
    // Functional-only: dose values are identical to the full simulation
    // (pinned by the engine-equivalence tests) and the oracle runs fast.
    engine.set_engine_options({gpusim::TraceMode::kFunctionalOnly, 0});
  } else {
    engine.set_native_threads(native_threads);
  }
  return engine;
}

TEST(NativeBackend, BitwiseMatchesGpusimAcrossFamiliesModesThreads) {
  for (const std::uint64_t seed : kSeeds) {
    for (const SpmvFamily family : kFamilies) {
      const Problem p = make_problem_for(family, seed);
      for (const Mode mode : kModes) {
        DoseEngine oracle = make_engine(p, family, mode, Backend::kGpusim);
        const std::vector<double> expected = oracle.compute(p.x);
        for (const unsigned threads : kThreadCounts) {
          DoseEngine native =
              make_engine(p, family, mode, Backend::kNative, threads);
          expect_bitwise_equal(expected, native.compute(p.x));
        }
      }
    }
  }
}

/// compute_batch must be bitwise equal to looping compute, per column, on
/// both backends.  Batch width 11 crosses kMaxSpmvBatch (8) so the gpusim
/// vector path exercises its chunking loop.
TEST(NativeBackend, ComputeBatchMatchesLoopedCompute) {
  constexpr std::size_t kBatch = 11;
  static_assert(kBatch > kMaxSpmvBatch);
  const Problem p = make_problem(7);
  Rng rng(123);
  const std::vector<double> weights =
      sparse::random_vector(rng, kBatch * p.matrix.num_cols, 0.0, 2.0);
  for (const Backend backend : {Backend::kGpusim, Backend::kNative}) {
    for (const Mode mode : kModes) {
      DoseEngine engine =
          make_engine(p, SpmvFamily::kVector, mode, backend, 2);
      const auto batched = engine.compute_batch(weights, kBatch);
      ASSERT_EQ(batched.size(), kBatch);
      for (std::size_t j = 0; j < kBatch; ++j) {
        const std::span<const double> column(
            weights.data() + j * p.matrix.num_cols, p.matrix.num_cols);
        expect_bitwise_equal(engine.compute(column), batched[j]);
      }
    }
  }
}

/// Non-vector families fall back to looped single products inside
/// compute_batch; the equality must still hold (and stay bitwise across
/// backends).
TEST(NativeBackend, ComputeBatchNonVectorFamilyFallsBackBitwise) {
  constexpr std::size_t kBatch = 3;
  const Problem p = make_problem(21);
  Rng rng(456);
  const std::vector<double> weights =
      sparse::random_vector(rng, kBatch * p.matrix.num_cols, 0.0, 2.0);
  DoseEngine gpusim_engine = make_engine(p, SpmvFamily::kClassical,
                                         Mode::kHalfDouble, Backend::kGpusim);
  DoseEngine native_engine = make_engine(p, SpmvFamily::kClassical,
                                         Mode::kHalfDouble, Backend::kNative, 5);
  const auto expected = gpusim_engine.compute_batch(weights, kBatch);
  const auto actual = native_engine.compute_batch(weights, kBatch);
  ASSERT_EQ(expected.size(), actual.size());
  for (std::size_t j = 0; j < kBatch; ++j) {
    expect_bitwise_equal(expected[j], actual[j]);
  }
}

/// The native backend records no simulator counters: last_run()/
/// last_estimate() must keep throwing until a gpusim compute has run, and
/// switching backends on a live engine must not perturb the dose bits.
TEST(NativeBackend, CountersRequireGpusimRunAndBackendSwitchIsBitwise) {
  const Problem p = make_problem(3);
  DoseEngine engine = make_engine(p, SpmvFamily::kVector, Mode::kHalfDouble,
                                  Backend::kNative, 2);
  const std::vector<double> native_dose = engine.compute(p.x);
  EXPECT_THROW(engine.last_run(), pd::Error);
  EXPECT_THROW(engine.last_estimate(), pd::Error);

  engine.set_backend(Backend::kGpusim);
  const std::vector<double> gpusim_dose = engine.compute(p.x);
  EXPECT_NO_THROW(engine.last_run());
  expect_bitwise_equal(gpusim_dose, native_dose);

  engine.set_backend(Backend::kNative);
  expect_bitwise_equal(gpusim_dose, engine.compute(p.x));
}

}  // namespace
}  // namespace pd::kernels
