// Tests for the profiler-style kernel report.

#include <gtest/gtest.h>

#include "gpusim/profile.hpp"

namespace pd::gpusim {
namespace {

PerfEstimate base_estimate() {
  PerfEstimate e;
  e.t_dram = 1e-3;
  e.t_l2 = 2e-4;
  e.t_atomic = 0.0;
  e.t_issue = 1e-4;
  e.t_flop = 1e-5;
  e.t_dispatch = 1e-6;
  e.seconds = 4e-6 + e.t_dispatch + e.t_dram;
  return e;
}

TEST(ProfileBound, ClassifiesEachTerm) {
  PerfEstimate e = base_estimate();
  EXPECT_EQ(classify_bound(e), BoundBy::kDram);
  e.t_l2 = 2e-3;
  EXPECT_EQ(classify_bound(e), BoundBy::kL2);
  e.t_atomic = 3e-3;
  EXPECT_EQ(classify_bound(e), BoundBy::kAtomics);
  e.t_issue = 4e-3;
  EXPECT_EQ(classify_bound(e), BoundBy::kIssue);
  e.t_flop = 5e-3;
  EXPECT_EQ(classify_bound(e), BoundBy::kFlops);
}

TEST(ProfileBound, TinyKernelsAreLaunchBound) {
  PerfEstimate e;
  e.t_dram = 1e-7;
  e.t_dispatch = 1e-6;
  e.seconds = 1.5e-6 + e.t_dispatch + e.t_dram;  // overheads dominate
  EXPECT_EQ(classify_bound(e), BoundBy::kLaunch);
}

TEST(ProfileBound, Names) {
  EXPECT_STREQ(to_string(BoundBy::kDram), "DRAM bandwidth");
  EXPECT_STREQ(to_string(BoundBy::kAtomics), "L2 atomic throughput");
  EXPECT_STREQ(to_string(BoundBy::kLaunch), "launch/dispatch overhead");
}

TEST(ProfileReport, ContainsAllSections) {
  const DeviceSpec spec = make_a100();
  PerfInput in;
  in.stats.traffic.dram_read_bytes = 1 << 20;
  in.stats.traffic.dram_write_bytes = 1 << 16;
  in.stats.traffic.l2_read_sectors = 40000;
  in.stats.traffic.l2_read_hits = 30000;
  in.stats.traffic.sectors_requested = 40000;
  in.stats.traffic.warp_requests = 10000;
  in.stats.compute.flops = 500000;
  in.stats.compute.active_lane_ops = 80;
  in.stats.compute.total_lane_ops = 100;
  in.stats.warps_launched = 1024;
  in.stats.blocks_launched = 64;
  in.config = LaunchConfig::warp_per_item(1024, 512, 40);
  const PerfEstimate est = estimate_performance(spec, in);

  const std::string report = profile_report(spec, in, est, "test_kernel");
  for (const char* needle :
       {"test_kernel", "A100", "Speed of light", "DRAM read", "L2 read hit",
        "SIMT lane efficiency", "occupancy", "t_dram", "t_atomic",
        "bound by", "operational intensity", "registers"}) {
    EXPECT_NE(report.find(needle), std::string::npos) << needle;
  }
  // 30000/40000 hits.
  EXPECT_NE(report.find("75.0%"), std::string::npos);
  // 80/100 lanes.
  EXPECT_NE(report.find("80.0%"), std::string::npos);
}

}  // namespace
}  // namespace pd::gpusim
