// Tests for the case catalog: the generated matrices must reproduce the
// structural properties of the paper's Table I / Figure 2 (these are the
// substitution-fidelity gates promised in DESIGN.md).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>

#include "cases/cases.hpp"

namespace pd::cases {
namespace {

TEST(CaseDefinitions, Catalog) {
  const CaseDefinition liver = liver_case();
  EXPECT_EQ(liver.num_beams(), 4u);  // Table I: four liver beams
  const CaseDefinition prostate = prostate_case();
  EXPECT_EQ(prostate.num_beams(), 2u);  // two parallel-opposed beams
  // Parallel opposed means 180 degrees apart.
  EXPECT_NEAR(std::fabs(prostate.gantry_angles_deg[0] -
                        prostate.gantry_angles_deg[1]),
              180.0, 1e-9);
  EXPECT_THROW(liver_case(0.0), pd::Error);
}

TEST(CaseDefinitions, ScaleChangesGridSize) {
  const CaseDefinition small = liver_case(0.125);
  const CaseDefinition normal = liver_case(1.0);
  EXPECT_LT(small.nx * small.ny * small.nz, normal.nx * normal.ny * normal.nz);
}

TEST(CaseDefinitions, UnknownCaseNameThrows) {
  CaseDefinition def = liver_case();
  def.name = "lung";
  EXPECT_THROW(build_phantom(def), pd::Error);
}

TEST(ScaleFromEnv, ParsesAndValidates) {
  unsetenv("PROTONDOSE_SCALE");
  EXPECT_DOUBLE_EQ(scale_from_env(), 1.0);
  setenv("PROTONDOSE_SCALE", "0.5", 1);
  EXPECT_DOUBLE_EQ(scale_from_env(), 0.5);
  setenv("PROTONDOSE_SCALE", "-2", 1);
  EXPECT_THROW(scale_from_env(), pd::Error);
  unsetenv("PROTONDOSE_SCALE");
}

/// Shared small-scale generation (0.2 keeps this fast) for the structure
/// gates below.
class GeneratedStructure : public ::testing::Test {
 protected:
  static const std::vector<BeamDataset>& beams() {
    static const std::vector<BeamDataset> kBeams = generate_all_beams(0.2);
    return kBeams;
  }
};

TEST_F(GeneratedStructure, SixBeamsInTableOrder) {
  ASSERT_EQ(beams().size(), 6u);
  EXPECT_EQ(beams()[0].label, "Liver 1");
  EXPECT_EQ(beams()[5].label, "Prostate 2");
  EXPECT_EQ(beams()[0].paper.name, "Liver 1");
}

TEST_F(GeneratedStructure, RowsVastlyExceedColumns) {
  // Paper: rows are 40-200x the columns.  The mini cases keep rows >> cols.
  for (const auto& ds : beams()) {
    EXPECT_GT(static_cast<double>(ds.stats.rows) /
                  static_cast<double>(ds.stats.cols),
              4.0)
        << ds.label;
  }
}

TEST_F(GeneratedStructure, DensityInTheClinicalBand) {
  // Paper: 0.6% - 2%.  Allow a wider band at mini scale.
  for (const auto& ds : beams()) {
    EXPECT_GT(ds.stats.density, 0.002) << ds.label;
    EXPECT_LT(ds.stats.density, 0.06) << ds.label;
  }
}

TEST_F(GeneratedStructure, MostRowsAreEmpty) {
  // Paper Figure 2: ~70% of rows have length 0.  At the reduced test scale
  // (0.2) the fixed-size pencil width covers relatively more of the grid, so
  // the band is wider than at the default scale.
  for (const auto& ds : beams()) {
    EXPECT_GT(ds.stats.empty_row_fraction, 0.40) << ds.label;
    EXPECT_LT(ds.stats.empty_row_fraction, 0.93) << ds.label;
  }
}

TEST_F(GeneratedStructure, RowLengthsAreHeavyTailed) {
  for (const auto& ds : beams()) {
    EXPECT_GT(ds.stats.row_skew, 2.0) << ds.label;  // max >> mean
  }
}

TEST_F(GeneratedStructure, ProstateHasMoreSubWarpRowsThanLiver) {
  // Paper: 5.6% (liver) vs 14.2% (prostate) of non-empty rows below one warp.
  const double liver = beams()[0].stats.frac_nonempty_below_warp;
  const double prostate = beams()[4].stats.frac_nonempty_below_warp;
  EXPECT_GT(prostate, liver);
}

TEST_F(GeneratedStructure, LiverRowsLongerOnAverage) {
  EXPECT_GT(beams()[0].stats.mean_nnz_per_nonempty_row,
            beams()[4].stats.mean_nnz_per_nonempty_row);
}

TEST_F(GeneratedStructure, ValuesAreNonNegative) {
  for (const auto& ds : beams()) {
    for (const double v : ds.beam.matrix.values) {
      EXPECT_GE(v, 0.0);
    }
  }
}

TEST_F(GeneratedStructure, BeamsOfACaseDiffer) {
  // Different gantry angles -> different matrices (different nnz patterns).
  EXPECT_NE(beams()[0].beam.matrix.col_idx, beams()[1].beam.matrix.col_idx);
}

TEST_F(GeneratedStructure, LiverLargerThanProstate) {
  // Table I: liver matrices dwarf prostate matrices.
  EXPECT_GT(beams()[0].stats.nnz, 4 * beams()[4].stats.nnz);
  EXPECT_GT(beams()[0].stats.rows, 2 * beams()[4].stats.rows);
  EXPECT_GT(beams()[0].stats.cols, 4 * beams()[4].stats.cols);
}

}  // namespace
}  // namespace pd::cases
