// Engine-equivalence tests for the trace-driven execution engine: for every
// kernel in the family, the two-phase trace-replay engine must produce
// KernelStats bitwise identical to the legacy serial engine, for every
// schedule seed and for any phase-1 parallelism.  This is the determinism
// contract of gpusim/trace.hpp: phase 1 only *records* per-block sector
// traces, and phase 2 replays them in schedule order, so the cache sees the
// exact request sequence the serial engine would have issued.
//
// Also covered: the optimized coalescer + cache hot path against the seed
// reference implementations (differential), and the functional-only mode
// (identical dose values, zero traffic).

#include <gtest/gtest.h>

#include <cmath>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "gpusim/launch.hpp"
#include "kernels/adaptive_csr.hpp"
#include "kernels/baseline_gpu.hpp"
#include "kernels/classical_csr.hpp"
#include "kernels/format_kernels.hpp"
#include "kernels/rowsplit_csr.hpp"
#include "kernels/stream_csr.hpp"
#include "kernels/vector_csr.hpp"
#include "rsformat/rsmatrix.hpp"
#include "sparse/convert.hpp"
#include "sparse/ell.hpp"
#include "sparse/random.hpp"
#include "sparse/sellcs.hpp"

namespace pd::kernels {
namespace {

using gpusim::EngineOptions;
using gpusim::Gpu;
using gpusim::KernelStats;
using gpusim::TraceMode;

void expect_stats_bitwise_equal(const KernelStats& a, const KernelStats& b) {
  const auto& ta = a.traffic;
  const auto& tb = b.traffic;
  EXPECT_EQ(ta.dram_read_bytes, tb.dram_read_bytes);
  EXPECT_EQ(ta.dram_write_bytes, tb.dram_write_bytes);
  EXPECT_EQ(ta.l2_read_sectors, tb.l2_read_sectors);
  EXPECT_EQ(ta.l2_write_sectors, tb.l2_write_sectors);
  EXPECT_EQ(ta.l2_read_hits, tb.l2_read_hits);
  EXPECT_EQ(ta.l2_write_hits, tb.l2_write_hits);
  EXPECT_EQ(ta.l2_atomic_ops, tb.l2_atomic_ops);
  EXPECT_EQ(ta.warp_requests, tb.warp_requests);
  EXPECT_EQ(ta.sectors_requested, tb.sectors_requested);
  EXPECT_EQ(ta.scalar_requests, tb.scalar_requests);
  EXPECT_EQ(ta.scalar_sectors, tb.scalar_sectors);
  EXPECT_EQ(a.compute.flops, b.compute.flops);
  EXPECT_EQ(a.compute.warp_arith_instrs, b.compute.warp_arith_instrs);
  EXPECT_EQ(a.compute.active_lane_ops, b.compute.active_lane_ops);
  EXPECT_EQ(a.compute.total_lane_ops, b.compute.total_lane_ops);
  EXPECT_EQ(a.shared.accesses, b.shared.accesses);
  EXPECT_EQ(a.shared.bank_conflicts, b.shared.bank_conflicts);
  EXPECT_EQ(a.blocks_launched, b.blocks_launched);
  EXPECT_EQ(a.warps_launched, b.warps_launched);
}

void expect_traffic_empty(const KernelStats& s) {
  EXPECT_EQ(s.traffic.dram_read_bytes, 0u);
  EXPECT_EQ(s.traffic.dram_write_bytes, 0u);
  EXPECT_EQ(s.traffic.l2_read_sectors, 0u);
  EXPECT_EQ(s.traffic.l2_write_sectors, 0u);
  EXPECT_EQ(s.traffic.warp_requests, 0u);
  EXPECT_EQ(s.traffic.scalar_requests, 0u);
  EXPECT_EQ(s.traffic.l2_atomic_ops, 0u);
}

struct Problem {
  sparse::CsrF64 matrix;
  std::vector<double> x;
};

Problem make_problem(sparse::RandomStructure structure, std::uint64_t seed,
                     std::uint64_t rows = 300, std::uint64_t cols = 90,
                     double mean_nnz = 12.0) {
  Rng rng(seed);
  Problem p;
  p.matrix = sparse::random_csr(rng, rows, cols, mean_nnz, structure);
  p.x = sparse::random_vector(rng, cols, 0.0, 2.0);
  return p;
}

constexpr std::uint64_t kSeeds[] = {0, 42, 9001};

/// The engine configurations that must all match the serial baseline:
/// trace-replay with a serial phase 1, and trace-replay with a concurrent
/// phase 1 (4 execution contexts — the pool still exercises the work-claim
/// path even on a single-core host).
const EngineOptions kReplayVariants[] = {
    {TraceMode::kTraceReplay, 1},
    {TraceMode::kTraceReplay, 4},
};

/// Run `launch(gpu, seed)` under the serial engine and every trace-replay
/// variant and require bitwise-identical KernelStats across the matrix of
/// engines × schedule seeds.  `deterministic_values` additionally pins the
/// output values (kernels without atomics must match bitwise in every mode).
///
/// Cache set mapping depends on *absolute* addresses, so each test must run
/// every engine against the same output buffer (hoisted outside the lambda)
/// and copy the values out for comparison.
template <typename Launch>
void check_engine_matrix(const Launch& launch, bool deterministic_values) {
  for (const std::uint64_t seed : kSeeds) {
    Gpu serial_gpu(gpusim::make_a100());
    std::vector<double> y_serial;
    const KernelStats serial = launch(serial_gpu, seed, y_serial);

    for (const EngineOptions& opts : kReplayVariants) {
      Gpu gpu(gpusim::make_a100());
      gpu.set_engine(opts);
      std::vector<double> y;
      const KernelStats stats = launch(gpu, seed, y);
      SCOPED_TRACE(testing::Message()
                   << "mode=" << to_string(opts.mode)
                   << " phase1_threads=" << opts.phase1_threads
                   << " seed=" << seed);
      expect_stats_bitwise_equal(serial, stats);
      if (deterministic_values) {
        EXPECT_EQ(y, y_serial);
      } else {
        ASSERT_EQ(y.size(), y_serial.size());
        for (std::size_t i = 0; i < y.size(); ++i) {
          EXPECT_NEAR(y[i], y_serial[i], 1e-9 * (1.0 + std::fabs(y_serial[i])));
        }
      }
    }

    // Functional-only: identical values (serial phase 1 in schedule order),
    // no traffic at all.
    Gpu fgpu(gpusim::make_a100());
    fgpu.set_engine({TraceMode::kFunctionalOnly, 1});
    std::vector<double> y_func;
    const KernelStats func = launch(fgpu, seed, y_func);
    expect_traffic_empty(func);
    EXPECT_EQ(func.compute.flops, serial.compute.flops);
    EXPECT_EQ(func.compute.warp_arith_instrs, serial.compute.warp_arith_instrs);
    EXPECT_EQ(y_func, y_serial);
  }
}

TEST(EngineEquivalence, VectorCsrHalfDouble) {
  const Problem p = make_problem(sparse::RandomStructure::kSkewed, 2100);
  const auto mh = sparse::convert_values<pd::Half>(p.matrix);
  std::vector<double> ybuf(p.matrix.num_rows);
  check_engine_matrix(
      [&](Gpu& gpu, std::uint64_t seed, std::vector<double>& y) {
        std::fill(ybuf.begin(), ybuf.end(), 0.0);
        const auto stats =
            run_vector_csr<pd::Half, double>(gpu, mh, p.x,
                                             std::span<double>(ybuf), 512, seed)
                .stats;
        y = ybuf;
        return stats;
      },
      /*deterministic_values=*/true);
}

TEST(EngineEquivalence, VectorCsrDouble) {
  const Problem p = make_problem(sparse::RandomStructure::kManyEmpty, 2101);
  std::vector<double> ybuf(p.matrix.num_rows);
  check_engine_matrix(
      [&](Gpu& gpu, std::uint64_t seed, std::vector<double>& y) {
        std::fill(ybuf.begin(), ybuf.end(), 0.0);
        const auto stats =
            run_vector_csr<double, double>(gpu, p.matrix, p.x,
                                           std::span<double>(ybuf), 512, seed)
                .stats;
        y = ybuf;
        return stats;
      },
      /*deterministic_values=*/true);
}

TEST(EngineEquivalence, ClassicalCsr) {
  const Problem p = make_problem(sparse::RandomStructure::kUniform, 2102);
  const auto m32 = sparse::convert_values<float>(p.matrix);
  const std::vector<float> x32(p.x.begin(), p.x.end());
  std::vector<float> ybuf(p.matrix.num_rows);
  check_engine_matrix(
      [&](Gpu& gpu, std::uint64_t seed, std::vector<double>& y) {
        std::fill(ybuf.begin(), ybuf.end(), 0.0f);
        const auto stats =
            run_classical_csr(gpu, m32, std::span<const float>(x32),
                              std::span<float>(ybuf), 512, seed)
                .stats;
        y.assign(ybuf.begin(), ybuf.end());
        return stats;
      },
      /*deterministic_values=*/true);
}

TEST(EngineEquivalence, AdaptiveCsr) {
  const Problem p = make_problem(sparse::RandomStructure::kSkewed, 2103);
  const auto m32 = sparse::convert_values<float>(p.matrix);
  const auto worklist = build_adaptive_worklist(m32);
  const std::vector<float> x32(p.x.begin(), p.x.end());
  std::vector<float> ybuf(p.matrix.num_rows);
  check_engine_matrix(
      [&](Gpu& gpu, std::uint64_t seed, std::vector<double>& y) {
        std::fill(ybuf.begin(), ybuf.end(), 0.0f);
        const auto stats =
            run_adaptive_csr(gpu, m32, worklist, std::span<const float>(x32),
                             std::span<float>(ybuf), 512, seed)
                .stats;
        y.assign(ybuf.begin(), ybuf.end());
        return stats;
      },
      /*deterministic_values=*/true);
}

TEST(EngineEquivalence, BaselineGpuAtomics) {
  // The atomic kernel's *values* are schedule-dependent by design (§II-D);
  // its traffic counters still must be engine-independent.
  const Problem p = make_problem(sparse::RandomStructure::kSkewed, 2104, 200,
                                 60, 10.0);
  const rsformat::RsMatrix rs = rsformat::RsMatrix::from_csr(p.matrix);
  std::vector<double> ybuf(p.matrix.num_rows);
  check_engine_matrix(
      [&](Gpu& gpu, std::uint64_t seed, std::vector<double>& y) {
        const auto stats =
            run_baseline_gpu(gpu, rs, p.x, std::span<double>(ybuf), 128, seed)
                .stats;
        y = ybuf;
        return stats;
      },
      /*deterministic_values=*/false);
}

TEST(EngineEquivalence, RowSplitCsr) {
  const Problem p = make_problem(sparse::RandomStructure::kSkewed, 2105, 150,
                                 80, 40.0);
  const auto plan = build_row_split_plan(p.matrix, 64);
  std::vector<double> ybuf(p.matrix.num_rows);
  check_engine_matrix(
      [&](Gpu& gpu, std::uint64_t seed, std::vector<double>& y) {
        std::fill(ybuf.begin(), ybuf.end(), 0.0);
        const auto stats = run_rowsplit_csr<double, double>(
                               gpu, p.matrix, plan, p.x,
                               std::span<double>(ybuf), 512, seed)
                               .stats;
        y = ybuf;
        return stats;
      },
      /*deterministic_values=*/true);
}

TEST(EngineEquivalence, StreamCsrRunBlocks) {
  // stream_csr exercises Gpu::run_blocks (shared memory + bank-conflict
  // counters) rather than Gpu::run.
  const Problem p = make_problem(sparse::RandomStructure::kUniform, 2106, 400,
                                 100, 16.0);
  const auto plan = build_stream_plan(p.matrix, 2048);
  std::vector<double> ybuf(p.matrix.num_rows);
  check_engine_matrix(
      [&](Gpu& gpu, std::uint64_t seed, std::vector<double>& y) {
        std::fill(ybuf.begin(), ybuf.end(), 0.0);
        const auto stats = run_stream_csr<double, double>(
                               gpu, p.matrix, plan, p.x,
                               std::span<double>(ybuf), 512, seed)
                               .stats;
        y = ybuf;
        return stats;
      },
      /*deterministic_values=*/true);
}

TEST(EngineEquivalence, EllKernel) {
  const Problem p = make_problem(sparse::RandomStructure::kUniform, 2107);
  const auto m32 = sparse::convert_values<float>(p.matrix);
  const auto ell = sparse::csr_to_ell(m32, 1ull << 28);
  const std::vector<float> x32(p.x.begin(), p.x.end());
  std::vector<float> ybuf(p.matrix.num_rows);
  check_engine_matrix(
      [&](Gpu& gpu, std::uint64_t seed, std::vector<double>& y) {
        std::fill(ybuf.begin(), ybuf.end(), 0.0f);
        const auto stats =
            run_ell_spmv<float, float>(gpu, ell, std::span<const float>(x32),
                                       std::span<float>(ybuf), 512, seed)
                .stats;
        y.assign(ybuf.begin(), ybuf.end());
        return stats;
      },
      /*deterministic_values=*/true);
}

TEST(EngineEquivalence, SellCsKernel) {
  const Problem p = make_problem(sparse::RandomStructure::kSkewed, 2108);
  const auto m32 = sparse::convert_values<float>(p.matrix);
  const auto sell = sparse::csr_to_sellcs(m32, 32, 128);
  const std::vector<float> x32(p.x.begin(), p.x.end());
  std::vector<float> ybuf(p.matrix.num_rows);
  check_engine_matrix(
      [&](Gpu& gpu, std::uint64_t seed, std::vector<double>& y) {
        std::fill(ybuf.begin(), ybuf.end(), 0.0f);
        const auto stats =
            run_sellcs_spmv<float, float>(gpu, sell,
                                          std::span<const float>(x32),
                                          std::span<float>(ybuf), 512, seed)
                .stats;
        y.assign(ybuf.begin(), ybuf.end());
        return stats;
      },
      /*deterministic_values=*/true);
}

// --- simcheck must be a pure observer ----------------------------------------

/// Enabling the simcheck analyzer may not perturb anything observable: dose
/// bits, traffic counters, shared counters — in any TraceMode.  Same output
/// buffer for both runs so the cache sees identical absolute addresses.
TEST(EngineEquivalence, SimcheckDoesNotPerturbVectorCsr) {
  const Problem p = make_problem(sparse::RandomStructure::kSkewed, 2111);
  const auto mh = sparse::convert_values<pd::Half>(p.matrix);
  std::vector<double> ybuf(p.matrix.num_rows);
  const EngineOptions kModes[] = {
      {TraceMode::kSerial, 0},
      {TraceMode::kTraceReplay, 4},
      {TraceMode::kFunctionalOnly, 4},
  };
  for (const EngineOptions& opts : kModes) {
    SCOPED_TRACE(testing::Message() << "mode=" << to_string(opts.mode));
    Gpu plain(gpusim::make_a100());
    plain.set_engine(opts);
    std::fill(ybuf.begin(), ybuf.end(), 0.0);
    const KernelStats unchecked =
        run_vector_csr<pd::Half, double>(plain, mh, p.x,
                                         std::span<double>(ybuf), 512, 42)
            .stats;
    const std::vector<double> y_unchecked = ybuf;

    Gpu checked_gpu(gpusim::make_a100());
    checked_gpu.set_engine(opts);
    checked_gpu.enable_check();
    std::fill(ybuf.begin(), ybuf.end(), 0.0);
    const KernelStats checked =
        run_vector_csr<pd::Half, double>(checked_gpu, mh, p.x,
                                         std::span<double>(ybuf), 512, 42)
            .stats;
    expect_stats_bitwise_equal(unchecked, checked);
    EXPECT_EQ(ybuf, y_unchecked);
    EXPECT_TRUE(checked_gpu.check_report().clean())
        << checked_gpu.check_report().summary();
  }
}

TEST(EngineEquivalence, SimcheckDoesNotPerturbStreamCsr) {
  // run_blocks path: shared memory, bank conflicts, barrier phases.
  const Problem p = make_problem(sparse::RandomStructure::kUniform, 2112, 400,
                                 100, 16.0);
  const auto plan = build_stream_plan(p.matrix, 2048);
  std::vector<double> ybuf(p.matrix.num_rows);
  const EngineOptions kModes[] = {
      {TraceMode::kSerial, 0},
      {TraceMode::kTraceReplay, 4},
      {TraceMode::kFunctionalOnly, 4},
  };
  for (const EngineOptions& opts : kModes) {
    SCOPED_TRACE(testing::Message() << "mode=" << to_string(opts.mode));
    Gpu plain(gpusim::make_a100());
    plain.set_engine(opts);
    std::fill(ybuf.begin(), ybuf.end(), 0.0);
    const KernelStats unchecked =
        run_stream_csr<double, double>(plain, p.matrix, plan, p.x,
                                       std::span<double>(ybuf), 512, 7)
            .stats;
    const std::vector<double> y_unchecked = ybuf;

    Gpu checked_gpu(gpusim::make_a100());
    checked_gpu.set_engine(opts);
    checked_gpu.enable_check();
    std::fill(ybuf.begin(), ybuf.end(), 0.0);
    const KernelStats checked =
        run_stream_csr<double, double>(checked_gpu, p.matrix, plan, p.x,
                                       std::span<double>(ybuf), 512, 7)
            .stats;
    expect_stats_bitwise_equal(unchecked, checked);
    EXPECT_EQ(ybuf, y_unchecked);
    EXPECT_TRUE(checked_gpu.check_report().clean())
        << checked_gpu.check_report().summary();
  }
}

// --- optimized vs reference hot path (differential) --------------------------

TEST(EngineEquivalence, OptimizedHotPathMatchesReferencePath) {
  // The insertion-dedup coalescer + per-set-tick/MRU cache must be counter-
  // bitwise-identical to the seed's sort+unique coalescer + global-tick scan.
  const Problem p = make_problem(sparse::RandomStructure::kSkewed, 2109, 500,
                                 120, 20.0);
  const auto mh = sparse::convert_values<pd::Half>(p.matrix);
  // One shared output buffer: the cache maps absolute addresses, so both
  // paths must see identical operand addresses for counters to be comparable.
  std::vector<double> ybuf(p.matrix.num_rows);
  for (const std::uint64_t seed : kSeeds) {
    Gpu opt_gpu(gpusim::make_a100());
    Gpu ref_gpu(gpusim::make_a100());
    ref_gpu.set_reference_memory_path(true);
    std::fill(ybuf.begin(), ybuf.end(), 0.0);
    const auto opt = run_vector_csr<pd::Half, double>(
        opt_gpu, mh, p.x, std::span<double>(ybuf), 512, seed);
    const std::vector<double> y_opt = ybuf;
    std::fill(ybuf.begin(), ybuf.end(), 0.0);
    const auto ref = run_vector_csr<pd::Half, double>(
        ref_gpu, mh, p.x, std::span<double>(ybuf), 512, seed);
    expect_stats_bitwise_equal(opt.stats, ref.stats);
    EXPECT_EQ(y_opt, ybuf);
  }
}

TEST(EngineEquivalence, ReferencePathAtomicKernel) {
  // Same differential through the atomic/baseline kernel, which mixes scalar,
  // vector and atomic requests.
  const Problem p = make_problem(sparse::RandomStructure::kUniform, 2110, 200,
                                 60, 10.0);
  const rsformat::RsMatrix rs = rsformat::RsMatrix::from_csr(p.matrix);
  Gpu opt_gpu(gpusim::make_a100());
  Gpu ref_gpu(gpusim::make_a100());
  ref_gpu.set_reference_memory_path(true);
  std::vector<double> ybuf(p.matrix.num_rows);
  const auto opt =
      run_baseline_gpu(opt_gpu, rs, p.x, std::span<double>(ybuf), 128, 42);
  const std::vector<double> y_opt = ybuf;
  const auto ref =
      run_baseline_gpu(ref_gpu, rs, p.x, std::span<double>(ybuf), 128, 42);
  expect_stats_bitwise_equal(opt.stats, ref.stats);
  EXPECT_EQ(y_opt, ybuf);
}

// --- coalescer unit-level differential ---------------------------------------

TEST(EngineEquivalence, CoalescerMatchesReferenceOnRandomStreams) {
  // Fuzz the two coalescers against each other, including non-monotone lane
  // patterns (which force the optimized path's sort fallback) and wide
  // accesses that overflow the seed's fixed 64-entry buffer no more.
  Rng rng(777);
  for (int iter = 0; iter < 500; ++iter) {
    gpusim::Lanes<std::uint64_t> addr;
    const unsigned size = 1u << (rng.next_u64() % 6);  // 1..32 bytes
    const gpusim::LaneMask mask =
        static_cast<gpusim::LaneMask>(rng.next_u64() & 0xffffffffu);
    for (unsigned i = 0; i < gpusim::kWarpSize; ++i) {
      addr[i] = 4096 + (rng.next_u64() % 2048);
    }
    gpusim::SectorBuffer fast, ref;
    gpusim::coalesce_warp_sectors(addr, size, mask, fast);
    gpusim::coalesce_warp_sectors_reference(addr, size, mask, ref);
    ASSERT_EQ(fast.count, ref.count) << "iter " << iter;
    for (unsigned i = 0; i < fast.count; ++i) {
      EXPECT_EQ(fast.data[i], ref.data[i]) << "iter " << iter << " slot " << i;
    }
  }
}

TEST(EngineEquivalence, CoalescerWideAccessSpills) {
  // A 256-byte per-lane access from 32 lanes spans up to 9 sectors each —
  // 288 entries, beyond the seed's 64-slot array (the old buffer overflow).
  gpusim::Lanes<std::uint64_t> addr;
  for (unsigned i = 0; i < gpusim::kWarpSize; ++i) {
    addr[i] = 16 + 512 * i;  // misaligned, non-overlapping 256B ranges
  }
  gpusim::SectorBuffer fast, ref;
  gpusim::coalesce_warp_sectors(addr, 256, gpusim::kFullMask, fast);
  gpusim::coalesce_warp_sectors_reference(addr, 256, gpusim::kFullMask, ref);
  ASSERT_EQ(fast.count, ref.count);
  for (unsigned i = 0; i < fast.count; ++i) {
    EXPECT_EQ(fast.data[i], ref.data[i]);
  }
  EXPECT_EQ(fast.count, 32u * 9u);  // 288 distinct sectors
}

}  // namespace
}  // namespace pd::kernels
