// Tests for the planning objective and the projected-gradient optimizer.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "gpusim/device.hpp"
#include "opt/objective.hpp"
#include "opt/optimizer.hpp"
#include "sparse/random.hpp"

namespace pd::opt {
namespace {

TEST(Objective, UniformTermQuadratic) {
  DoseObjective obj;
  ObjectiveTerm t;
  t.type = ObjectiveTerm::Type::kUniformDose;
  t.voxels = {0, 1};
  t.dose_level = 10.0;
  t.weight = 2.0;
  obj.add_term(std::move(t));
  const std::vector<double> dose{12.0, 8.0};
  // 2 * mean((12-10)^2, (8-10)^2) = 2 * 4 = 8.
  EXPECT_DOUBLE_EQ(obj.value(dose), 8.0);
  const auto g = obj.dose_gradient(dose);
  EXPECT_DOUBLE_EQ(g[0], 2.0 * 2.0 / 2.0 * 2.0);   // 2w/n * (d - p) = 4
  EXPECT_DOUBLE_EQ(g[1], -4.0);
}

TEST(Objective, MaxDoseTermOneSided) {
  DoseObjective obj;
  ObjectiveTerm t;
  t.type = ObjectiveTerm::Type::kMaxDose;
  t.voxels = {0, 1};
  t.dose_level = 5.0;
  t.weight = 1.0;
  obj.add_term(std::move(t));
  const std::vector<double> dose{4.0, 7.0};
  EXPECT_DOUBLE_EQ(obj.value(dose), 0.5 * 4.0);  // only the violation counts
  const auto g = obj.dose_gradient(dose);
  EXPECT_DOUBLE_EQ(g[0], 0.0);
  EXPECT_DOUBLE_EQ(g[1], 2.0);
}

TEST(Objective, GradientMatchesFiniteDifferences) {
  Rng rng(42);
  DoseObjective obj;
  ObjectiveTerm uniform;
  uniform.type = ObjectiveTerm::Type::kUniformDose;
  uniform.voxels = {0, 2, 5};
  uniform.dose_level = 1.0;
  uniform.weight = 3.0;
  obj.add_term(std::move(uniform));
  ObjectiveTerm max_term;
  max_term.type = ObjectiveTerm::Type::kMaxDose;
  max_term.voxels = {1, 3, 4};
  max_term.dose_level = 0.4;
  max_term.weight = 2.0;
  obj.add_term(std::move(max_term));

  std::vector<double> dose(6);
  for (auto& d : dose) d = rng.uniform(0.0, 2.0);
  const auto grad = obj.dose_gradient(dose);
  const double eps = 1e-6;
  for (std::size_t v = 0; v < dose.size(); ++v) {
    auto plus = dose, minus = dose;
    plus[v] += eps;
    minus[v] -= eps;
    const double fd = (obj.value(plus) - obj.value(minus)) / (2 * eps);
    EXPECT_NEAR(grad[v], fd, 1e-5 * (1.0 + std::fabs(fd)));
  }
}

TEST(Objective, RejectsInvalidTerms) {
  DoseObjective obj;
  ObjectiveTerm empty;
  EXPECT_THROW(obj.add_term(empty), pd::Error);
  ObjectiveTerm negative;
  negative.voxels = {0};
  negative.weight = -1.0;
  EXPECT_THROW(obj.add_term(std::move(negative)), pd::Error);
}

TEST(Objective, StandardGoalsCoverRois) {
  const auto phantom = phantom::make_prostate_phantom(16, 16, 12, 6.0);
  const DoseObjective obj = DoseObjective::standard_goals(phantom, 60.0, 25.0);
  ASSERT_GE(obj.terms().size(), 2u);
  EXPECT_EQ(obj.terms()[0].type, ObjectiveTerm::Type::kUniformDose);
  EXPECT_DOUBLE_EQ(obj.terms()[0].dose_level, 60.0);
  EXPECT_THROW(DoseObjective::standard_goals(phantom, -1.0, 25.0), pd::Error);
}

class OptimizerFixture : public ::testing::Test {
 protected:
  OptimizerFixture() {
    Rng rng(77);
    // A well-conditioned toy problem: 120 voxels, 25 spots.
    D_ = sparse::random_csr(rng, 120, 25, 6.0,
                            sparse::RandomStructure::kUniform);
    ObjectiveTerm t;
    t.type = ObjectiveTerm::Type::kUniformDose;
    for (std::uint64_t v = 0; v < 40; ++v) t.voxels.push_back(v);
    t.dose_level = 2.0;
    t.weight = 10.0;
    objective_.add_term(std::move(t));
    ObjectiveTerm oar;
    oar.type = ObjectiveTerm::Type::kMaxDose;
    for (std::uint64_t v = 60; v < 90; ++v) oar.voxels.push_back(v);
    oar.dose_level = 0.5;
    oar.weight = 5.0;
    objective_.add_term(std::move(oar));
  }

  sparse::CsrF64 D_;
  DoseObjective objective_;
};

TEST_F(OptimizerFixture, ObjectiveDecreasesMonotonically) {
  OptimizerConfig cfg;
  cfg.max_iterations = 15;
  PlanOptimizer opt(D_, objective_, gpusim::make_a100(), cfg);
  const OptimizerResult result = opt.optimize();
  ASSERT_GE(result.objective_history.size(), 2u);
  for (std::size_t i = 1; i < result.objective_history.size(); ++i) {
    EXPECT_LE(result.objective_history[i], result.objective_history[i - 1]);
  }
  EXPECT_LT(result.objective_history.back(),
            0.7 * result.objective_history.front());
}

TEST_F(OptimizerFixture, WeightsStayNonNegative) {
  OptimizerConfig cfg;
  cfg.max_iterations = 10;
  PlanOptimizer opt(D_, objective_, gpusim::make_a100(), cfg);
  const OptimizerResult result = opt.optimize();
  for (const double w : result.spot_weights) {
    EXPECT_GE(w, 0.0);
  }
  EXPECT_EQ(result.spot_weights.size(), D_.num_cols);
  EXPECT_EQ(result.dose.size(), D_.num_rows);
}

TEST_F(OptimizerFixture, CountsSpmvProducts) {
  OptimizerConfig cfg;
  cfg.max_iterations = 5;
  PlanOptimizer opt(D_, objective_, gpusim::make_a100(), cfg);
  const OptimizerResult result = opt.optimize();
  // At least one forward + one transpose per iteration.
  EXPECT_GE(result.spmv_count, 2 * result.iterations);
}

TEST_F(OptimizerFixture, DeterministicAcrossRuns) {
  OptimizerConfig cfg;
  cfg.max_iterations = 8;
  PlanOptimizer a(D_, objective_, gpusim::make_a100(), cfg);
  PlanOptimizer b(D_, objective_, gpusim::make_a100(), cfg);
  const auto ra = a.optimize();
  const auto rb = b.optimize();
  EXPECT_EQ(ra.spot_weights, rb.spot_weights);  // bitwise plan reproducibility
  EXPECT_EQ(ra.dose, rb.dose);
}

TEST_F(OptimizerFixture, SingleModeAlsoConverges) {
  OptimizerConfig cfg;
  cfg.max_iterations = 10;
  cfg.mode = kernels::DoseEngine::Mode::kSingle;
  PlanOptimizer opt(D_, objective_, gpusim::make_a100(), cfg);
  const OptimizerResult result = opt.optimize();
  EXPECT_LT(result.objective_history.back(), result.objective_history.front());
}

TEST_F(OptimizerFixture, LbfgsConvergesFasterThanGradientDescent) {
  // On an interior problem (target above the reachable dose, so the
  // non-negativity projection never activates and the objective is a pure
  // ill-conditioned quadratic), quasi-Newton must make far more progress
  // than steepest descent within a short iteration budget — the reason
  // clinical optimizers use it.
  DoseObjective quadratic;
  ObjectiveTerm t;
  t.type = ObjectiveTerm::Type::kUniformDose;
  for (std::uint64_t v = 0; v < 120; ++v) t.voxels.push_back(v);
  t.dose_level = 50.0;  // far above the unit-weight dose: weights only grow
  t.weight = 1.0;
  quadratic.add_term(std::move(t));

  // Near-optimal value (long L-BFGS run) to measure convergence gaps
  // against: the least-squares residual itself is large and irreducible.
  OptimizerConfig ref_cfg;
  ref_cfg.method = OptimizerMethod::kLbfgs;
  ref_cfg.max_iterations = 120;
  PlanOptimizer ref_opt(D_, quadratic, gpusim::make_a100(), ref_cfg);
  const double f_star = ref_opt.optimize().objective_history.back();

  OptimizerConfig gd;
  gd.max_iterations = 8;
  PlanOptimizer gd_opt(D_, quadratic, gpusim::make_a100(), gd);
  const auto gd_result = gd_opt.optimize();

  OptimizerConfig lbfgs = gd;
  lbfgs.method = OptimizerMethod::kLbfgs;
  PlanOptimizer lbfgs_opt(D_, quadratic, gpusim::make_a100(), lbfgs);
  const auto lbfgs_result = lbfgs_opt.optimize();

  const double gd_gap = gd_result.objective_history.back() - f_star;
  const double lbfgs_gap = lbfgs_result.objective_history.back() - f_star;
  ASSERT_GT(gd_gap, 0.0);
  EXPECT_LT(lbfgs_gap, 0.6 * gd_gap);
  // And it keeps the monotone-decrease and feasibility invariants.
  for (std::size_t i = 1; i < lbfgs_result.objective_history.size(); ++i) {
    EXPECT_LE(lbfgs_result.objective_history[i],
              lbfgs_result.objective_history[i - 1]);
  }
  for (const double w : lbfgs_result.spot_weights) {
    EXPECT_GE(w, 0.0);
  }
}

TEST_F(OptimizerFixture, LbfgsIsDeterministic) {
  OptimizerConfig cfg;
  cfg.method = OptimizerMethod::kLbfgs;
  cfg.max_iterations = 10;
  PlanOptimizer a(D_, objective_, gpusim::make_a100(), cfg);
  PlanOptimizer b(D_, objective_, gpusim::make_a100(), cfg);
  EXPECT_EQ(a.optimize().spot_weights, b.optimize().spot_weights);
}

TEST_F(OptimizerFixture, LbfgsHistoryOneStillWorks) {
  OptimizerConfig cfg;
  cfg.method = OptimizerMethod::kLbfgs;
  cfg.max_iterations = 10;
  cfg.lbfgs_history = 1;
  PlanOptimizer opt(D_, objective_, gpusim::make_a100(), cfg);
  const auto r = opt.optimize();
  EXPECT_LT(r.objective_history.back(), r.objective_history.front());
}

TEST(Optimizer, RejectsZeroIterations) {
  Rng rng(1);
  const auto D = sparse::random_csr(rng, 20, 5, 3.0);
  DoseObjective obj;
  ObjectiveTerm t;
  t.voxels = {0};
  t.dose_level = 1.0;
  obj.add_term(std::move(t));
  OptimizerConfig cfg;
  cfg.max_iterations = 0;
  EXPECT_THROW(PlanOptimizer(D, obj, gpusim::make_a100(), cfg), pd::Error);
  cfg.max_iterations = 5;
  cfg.lbfgs_history = 0;
  EXPECT_THROW(PlanOptimizer(D, obj, gpusim::make_a100(), cfg), pd::Error);
}

}  // namespace
}  // namespace pd::opt
