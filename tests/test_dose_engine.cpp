// Tests for the DoseEngine public facade.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "gpusim/device.hpp"
#include "kernels/dose_engine.hpp"
#include "sparse/random.hpp"
#include "sparse/reference.hpp"

namespace pd::kernels {
namespace {

sparse::CsrF64 test_matrix(std::uint64_t seed = 55) {
  Rng rng(seed);
  return sparse::random_csr(rng, 400, 80, 10.0,
                            sparse::RandomStructure::kManyEmpty);
}

TEST(DoseEngine, ExposesMatrixStats) {
  const auto m = test_matrix();
  DoseEngine engine(sparse::CsrF64(m), gpusim::make_a100());
  EXPECT_EQ(engine.num_voxels(), m.num_rows);
  EXPECT_EQ(engine.num_spots(), m.num_cols);
  EXPECT_EQ(engine.stats().nnz, m.nnz());
  EXPECT_EQ(engine.mode(), DoseEngine::Mode::kHalfDouble);
}

TEST(DoseEngine, AllModesAgreeWithinPrecision) {
  const auto m = test_matrix();
  Rng rng(56);
  const auto x = sparse::random_vector(rng, m.num_cols, 0.0, 1.0);
  std::vector<double> y_exact(m.num_rows);
  sparse::reference_spmv(m, x, y_exact);

  for (const auto mode : {DoseEngine::Mode::kHalfDouble,
                          DoseEngine::Mode::kSingle, DoseEngine::Mode::kDouble}) {
    DoseEngine engine(sparse::CsrF64(m), gpusim::make_a100(), mode);
    const auto y = engine.compute(x);
    const double tol = mode == DoseEngine::Mode::kDouble     ? 1e-11
                       : mode == DoseEngine::Mode::kSingle   ? 2e-4
                                                             : 2e-3;
    for (std::uint64_t r = 0; r < m.num_rows; ++r) {
      EXPECT_NEAR(y[r], y_exact[r], tol * (1.0 + std::fabs(y_exact[r])))
          << "mode " << static_cast<int>(mode) << " row " << r;
    }
  }
}

TEST(DoseEngine, ReproducibleAcrossSchedulesInEveryMode) {
  const auto m = test_matrix(57);
  Rng rng(57);
  const auto x = sparse::random_vector(rng, m.num_cols);
  for (const auto mode : {DoseEngine::Mode::kHalfDouble,
                          DoseEngine::Mode::kSingle, DoseEngine::Mode::kDouble}) {
    DoseEngine engine(sparse::CsrF64(m), gpusim::make_a100(), mode);
    const auto a = engine.compute(x, 3);
    const auto b = engine.compute(x, 12345);
    EXPECT_EQ(a, b);
  }
}

TEST(DoseEngine, RunCountersAndEstimate) {
  const auto m = test_matrix(58);
  Rng rng(58);
  const auto x = sparse::random_vector(rng, m.num_cols);
  DoseEngine engine(sparse::CsrF64(m), gpusim::make_a100());
  engine.compute(x);
  const SpmvRun& run = engine.last_run();
  EXPECT_EQ(run.stats.compute.flops, 2 * m.nnz());
  EXPECT_GT(run.stats.dram_bytes(), 0.0);
  const auto est = engine.last_estimate();
  EXPECT_GT(est.gflops, 0.0);
  EXPECT_GT(est.operational_intensity, 0.0);
  EXPECT_LE(est.bandwidth_fraction, 1.0);
}

TEST(DoseEngine, ErrorsBeforeFirstRunAndOnBadInput) {
  const auto m = test_matrix(59);
  DoseEngine engine(sparse::CsrF64(m), gpusim::make_a100());
  EXPECT_THROW(engine.last_run(), pd::Error);
  EXPECT_THROW(engine.last_estimate(), pd::Error);
  std::vector<double> wrong(m.num_cols + 2, 1.0);
  EXPECT_THROW(engine.compute(wrong), pd::Error);
}

TEST(DoseEngine, WorksOnEveryDevice) {
  const auto m = test_matrix(60);
  Rng rng(60);
  const auto x = sparse::random_vector(rng, m.num_cols);
  std::vector<std::vector<double>> results;
  for (const auto& spec : {gpusim::make_a100(), gpusim::make_v100(),
                           gpusim::make_p100()}) {
    DoseEngine engine(sparse::CsrF64(m), spec);
    results.push_back(engine.compute(x));
  }
  // Numerics are device-independent (same kernel semantics everywhere).
  EXPECT_EQ(results[0], results[1]);
  EXPECT_EQ(results[0], results[2]);
}

TEST(DoseEngine, CustomBlockSizeIsHonoured) {
  const auto m = test_matrix(61);
  Rng rng(61);
  const auto x = sparse::random_vector(rng, m.num_cols);
  DoseEngine engine(sparse::CsrF64(m), gpusim::make_a100(),
                    DoseEngine::Mode::kHalfDouble, /*threads_per_block=*/128);
  engine.compute(x);
  EXPECT_EQ(engine.last_run().config.threads_per_block, 128u);
}

TEST(DoseEngine, InvalidMatrixRejectedAtConstruction) {
  sparse::CsrF64 bad;
  bad.num_rows = 2;
  bad.num_cols = 2;
  bad.row_ptr = {0, 1};  // wrong length
  bad.col_idx = {0};
  bad.values = {1.0};
  EXPECT_THROW(DoseEngine(std::move(bad), gpusim::make_a100()), pd::Error);
}

}  // namespace
}  // namespace pd::kernels
