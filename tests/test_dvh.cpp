// Tests for dose-volume histograms and plan-quality indices.

#include <gtest/gtest.h>

#include "opt/dvh.hpp"
#include "phantom/phantom.hpp"

namespace pd::opt {
namespace {

TEST(Dvh, VolumeAtDoseStepFunction) {
  const Dvh dvh = Dvh::from_doses({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(dvh.volume_at_dose(0.0), 1.0);
  EXPECT_DOUBLE_EQ(dvh.volume_at_dose(1.0), 1.0);   // >= 1.0: all
  EXPECT_DOUBLE_EQ(dvh.volume_at_dose(2.5), 0.5);
  EXPECT_DOUBLE_EQ(dvh.volume_at_dose(4.0), 0.25);
  EXPECT_DOUBLE_EQ(dvh.volume_at_dose(4.1), 0.0);
}

TEST(Dvh, DoseAtVolumeQuantiles) {
  const Dvh dvh = Dvh::from_doses({10.0, 20.0, 30.0, 40.0, 50.0});
  EXPECT_DOUBLE_EQ(dvh.dose_at_volume(1.0), 10.0);   // whole volume: min dose
  EXPECT_DOUBLE_EQ(dvh.dose_at_volume(0.0), 50.0);   // hottest sliver: max
  // Hottest 40% of five voxels is exactly {40, 50}: D40 = 40.
  EXPECT_DOUBLE_EQ(dvh.dose_at_volume(0.4), 40.0);
  EXPECT_DOUBLE_EQ(dvh.dose_at_volume(0.6), 30.0);
  EXPECT_THROW(dvh.dose_at_volume(-0.1), pd::Error);
  EXPECT_THROW(dvh.dose_at_volume(1.1), pd::Error);
}

TEST(Dvh, SummaryStatistics) {
  const Dvh dvh = Dvh::from_doses({3.0, 1.0, 2.0});
  EXPECT_DOUBLE_EQ(dvh.min_dose(), 1.0);
  EXPECT_DOUBLE_EQ(dvh.max_dose(), 3.0);
  EXPECT_DOUBLE_EQ(dvh.mean_dose(), 2.0);
  EXPECT_EQ(dvh.voxel_count(), 3u);
  EXPECT_THROW(Dvh::from_doses({}), pd::Error);
}

TEST(Dvh, CurveIsMonotoneNonIncreasing) {
  const Dvh dvh = Dvh::from_doses({0.5, 1.0, 1.5, 2.0, 5.0, 5.5});
  const auto curve = dvh.curve(20);
  ASSERT_EQ(curve.size(), 20u);
  EXPECT_DOUBLE_EQ(curve.front().volume_fraction, 1.0);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LE(curve[i].volume_fraction, curve[i - 1].volume_fraction);
    EXPECT_GT(curve[i].dose, curve[i - 1].dose);
  }
  EXPECT_THROW(dvh.curve(1), pd::Error);
}

TEST(Dvh, ForRoiSelectsStructureVoxels) {
  phantom::Phantom p(phantom::VoxelGrid(4, 4, 4, 5.0), "t");
  p.fill_background(phantom::Roi::kTissue, 1.0);
  p.paint(phantom::Ellipsoid{p.grid().grid_center(), {6.0, 6.0, 6.0}},
          phantom::Roi::kTarget, 1.0);
  std::vector<double> dose(p.grid().num_voxels(), 1.0);
  for (const auto v : p.voxels_with_roi(phantom::Roi::kTarget)) {
    dose[v] = 10.0;
  }
  const Dvh target = Dvh::for_roi(p, phantom::Roi::kTarget, dose);
  EXPECT_DOUBLE_EQ(target.min_dose(), 10.0);
  const Dvh tissue = Dvh::for_roi(p, phantom::Roi::kTissue, dose);
  EXPECT_DOUBLE_EQ(tissue.max_dose(), 1.0);
  std::vector<double> wrong(3);
  EXPECT_THROW(Dvh::for_roi(p, phantom::Roi::kTarget, wrong), pd::Error);
}

TEST(HomogeneityIndex, ZeroForPerfectlyUniformDose) {
  const Dvh uniform = Dvh::from_doses(std::vector<double>(100, 60.0));
  EXPECT_DOUBLE_EQ(homogeneity_index(uniform), 0.0);
}

TEST(HomogeneityIndex, GrowsWithSpread) {
  std::vector<double> tight, loose;
  for (int i = 0; i < 100; ++i) {
    tight.push_back(60.0 + 0.01 * i);
    loose.push_back(50.0 + 0.2 * i);
  }
  EXPECT_LT(homogeneity_index(Dvh::from_doses(tight)),
            homogeneity_index(Dvh::from_doses(loose)));
}

TEST(ConformityIndex, PerfectPlanScoresOne) {
  phantom::Phantom p(phantom::VoxelGrid(6, 6, 6, 5.0), "t");
  p.fill_background(phantom::Roi::kTissue, 1.0);
  p.paint(phantom::Ellipsoid{p.grid().grid_center(), {8.0, 8.0, 8.0}},
          phantom::Roi::kTarget, 1.0);
  std::vector<double> dose(p.grid().num_voxels(), 0.0);
  for (const auto v : p.voxels_with_roi(phantom::Roi::kTarget)) {
    dose[v] = 60.0;
  }
  EXPECT_DOUBLE_EQ(conformity_index(p, dose, 60.0), 1.0);
}

TEST(ConformityIndex, SpillageLowersTheScore) {
  phantom::Phantom p(phantom::VoxelGrid(6, 6, 6, 5.0), "t");
  p.fill_background(phantom::Roi::kTissue, 1.0);
  p.paint(phantom::Ellipsoid{p.grid().grid_center(), {8.0, 8.0, 8.0}},
          phantom::Roi::kTarget, 1.0);
  // Everything gets the prescription: terrible conformity.
  std::vector<double> dose(p.grid().num_voxels(), 60.0);
  const double ci = conformity_index(p, dose, 60.0);
  EXPECT_GT(ci, 0.0);
  EXPECT_LT(ci, 0.3);
  // Nothing reaches the prescription: zero.
  std::vector<double> cold(p.grid().num_voxels(), 1.0);
  EXPECT_DOUBLE_EQ(conformity_index(p, cold, 60.0), 0.0);
  EXPECT_THROW(conformity_index(p, dose, 0.0), pd::Error);
}

}  // namespace
}  // namespace pd::opt
