// Tests for gpusim::simcheck, the compute-sanitizer-style analyzer.
//
// Two-sided contract:
//  * no false positives — every production kernel family runs clean under
//    full checking, in every TraceMode;
//  * no misses — each deliberately buggy micro-kernel below triggers
//    exactly its intended violation class and nothing else.
//
// The micro-kernels are memory-safe on the host even though they are wrong
// by the simulator's rules: "out-of-bounds" accesses land inside a real
// allocation of which only a prefix is registered, shared reads target
// zero-filled checked arenas, and the shared-OOB case hands the kernel a
// host array that simply is not a registered arena.

#include <gtest/gtest.h>

#include <cstdlib>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "gpusim/launch.hpp"
#include "kernels/adaptive_csr.hpp"
#include "kernels/baseline_gpu.hpp"
#include "kernels/classical_csr.hpp"
#include "kernels/rowsplit_csr.hpp"
#include "kernels/stream_csr.hpp"
#include "kernels/vector_csr.hpp"
#include "rsformat/rsmatrix.hpp"
#include "sparse/convert.hpp"
#include "sparse/random.hpp"

namespace pd::kernels {
namespace {

using gpusim::BlockCtx;
using gpusim::CheckConfig;
using gpusim::EngineOptions;
using gpusim::Gpu;
using gpusim::kFullMask;
using gpusim::kWarpSize;
using gpusim::Lanes;
using gpusim::TraceMode;
using gpusim::ViolationKind;
using gpusim::WarpCtx;

const EngineOptions kAllModes[] = {
    {TraceMode::kSerial, 0},
    {TraceMode::kTraceReplay, 4},
    {TraceMode::kFunctionalOnly, 2},
};

/// Assert the report holds `n` findings, all of kind `kind`.
void expect_only(const Gpu& gpu, ViolationKind kind, std::uint64_t n) {
  const auto& rep = gpu.check_report();
  EXPECT_EQ(rep.count(kind), n) << rep.summary();
  EXPECT_EQ(rep.violations.size(), n) << rep.summary();
  EXPECT_EQ(rep.suppressed, 0u);
}

// --- no false positives: every kernel family runs clean ----------------------

struct CleanProblem {
  sparse::CsrF64 A;
  std::vector<double> x;
  std::vector<double> y;
};

CleanProblem clean_problem(std::uint64_t seed) {
  Rng rng(seed);
  CleanProblem p;
  p.A = sparse::random_csr(rng, 250, 90, 12.0, sparse::RandomStructure::kSkewed);
  p.x = sparse::random_vector(rng, p.A.num_cols);
  p.y.assign(p.A.num_rows, 0.0);
  return p;
}

TEST(SimcheckClean, VectorCsrAllModes) {
  CleanProblem p = clean_problem(10);
  const auto mh = sparse::convert_values<pd::Half>(p.A);
  for (const EngineOptions& opts : kAllModes) {
    SCOPED_TRACE(testing::Message() << "mode=" << to_string(opts.mode));
    Gpu gpu(gpusim::make_a100());
    gpu.set_engine(opts);
    gpu.enable_check();
    run_vector_csr<pd::Half, double>(gpu, mh, p.x, std::span<double>(p.y));
    EXPECT_TRUE(gpu.check_report().clean()) << gpu.check_report().summary();
    EXPECT_EQ(gpu.check_report().launches_checked, 1u);
  }
}

TEST(SimcheckClean, ClassicalCsrAllModes) {
  CleanProblem p = clean_problem(11);
  for (const EngineOptions& opts : kAllModes) {
    SCOPED_TRACE(testing::Message() << "mode=" << to_string(opts.mode));
    Gpu gpu(gpusim::make_a100());
    gpu.set_engine(opts);
    gpu.enable_check();
    run_classical_csr<double, double, std::uint32_t>(gpu, p.A, p.x,
                                                     std::span<double>(p.y));
    EXPECT_TRUE(gpu.check_report().clean()) << gpu.check_report().summary();
  }
}

TEST(SimcheckClean, RowSplitCsrAllModes) {
  // Denser skewed matrix so the plan genuinely splits rows (two launches
  // sharing the partials buffer — the multi-launch shadow path).
  Rng rng(12);
  CleanProblem p;
  p.A = sparse::random_csr(rng, 250, 120, 40.0,
                           sparse::RandomStructure::kSkewed);
  p.x = sparse::random_vector(rng, p.A.num_cols);
  p.y.assign(p.A.num_rows, 0.0);
  const auto plan = build_row_split_plan(p.A, 64);
  ASSERT_GT(plan.split_rows.size(), 0u);
  for (const EngineOptions& opts : kAllModes) {
    SCOPED_TRACE(testing::Message() << "mode=" << to_string(opts.mode));
    Gpu gpu(gpusim::make_a100());
    gpu.set_engine(opts);
    gpu.enable_check();
    run_rowsplit_csr<double, double>(gpu, p.A, plan, p.x,
                                     std::span<double>(p.y));
    EXPECT_TRUE(gpu.check_report().clean()) << gpu.check_report().summary();
    // Row-split issues two launches (chunk kernel + combine kernel).
    EXPECT_EQ(gpu.check_report().launches_checked, 2u);
  }
}

TEST(SimcheckClean, AdaptiveCsrAllModes) {
  CleanProblem p = clean_problem(13);
  const auto worklist = build_adaptive_worklist(p.A);
  for (const EngineOptions& opts : kAllModes) {
    SCOPED_TRACE(testing::Message() << "mode=" << to_string(opts.mode));
    Gpu gpu(gpusim::make_a100());
    gpu.set_engine(opts);
    gpu.enable_check();
    run_adaptive_csr<double, double, std::uint32_t>(gpu, p.A, worklist, p.x,
                                                    std::span<double>(p.y));
    EXPECT_TRUE(gpu.check_report().clean()) << gpu.check_report().summary();
  }
}

TEST(SimcheckClean, StreamCsrSharedMemoryKernel) {
  // The run_blocks family: shared tiles, barrier phases, segmented sums.
  CleanProblem p = clean_problem(14);
  const auto plan = build_stream_plan(p.A, 512);
  for (const EngineOptions& opts : kAllModes) {
    SCOPED_TRACE(testing::Message() << "mode=" << to_string(opts.mode));
    Gpu gpu(gpusim::make_a100());
    gpu.set_engine(opts);
    gpu.enable_check();
    run_stream_csr<double, double>(gpu, p.A, plan, p.x,
                                   std::span<double>(p.y));
    EXPECT_TRUE(gpu.check_report().clean()) << gpu.check_report().summary();
  }
}

TEST(SimcheckClean, BaselineGpuFlagsOnlyTheAtomicLint) {
  // The unordered-atomics baseline is the kernel the determinism lint
  // exists for: its one finding must be the lint, nothing else.
  CleanProblem p = clean_problem(15);
  const rsformat::RsMatrix rs = rsformat::RsMatrix::from_csr(p.A);
  std::vector<double> x(rs.num_cols(), 1.0);
  Gpu gpu(gpusim::make_a100());
  gpu.enable_check();
  run_baseline_gpu(gpu, rs, x, std::span<double>(p.y));
  expect_only(gpu, ViolationKind::kNonDeterministicAtomic, 1);
  EXPECT_EQ(gpu.check_report().violations[0].buffer, "y");
}

// --- memcheck ----------------------------------------------------------------

/// One warp, lane 0 gathers/scatters `index` against `base`, with only a
/// 32-double prefix of the 64-double allocation registered.
template <bool kWrite>
void run_prefix_access(Gpu& gpu, std::uint64_t index,
                       std::size_t registered_bytes = 32 * sizeof(double)) {
  std::vector<double> v(64, 1.0);
  gpu.check()->clear_tracking();
  gpu.check()->track_global(v.data(), registered_bytes, "v",
                            /*initialized=*/true);
  const auto cfg = gpusim::LaunchConfig::warp_per_item(1, 32, 32);
  gpu.run(cfg, [&](WarpCtx& w) {
    Lanes<std::uint64_t> idx{};
    idx[0] = index;
    if constexpr (kWrite) {
      Lanes<double> val{};
      w.scatter(v.data(), idx, val, 0x1u);
    } else {
      w.gather(v.data(), idx, 0x1u);
    }
  });
}

TEST(SimcheckMemcheck, FlagsOutOfBoundsRead) {
  Gpu gpu(gpusim::make_a100());
  gpu.enable_check();
  run_prefix_access<false>(gpu, 40);  // past the registered window
  expect_only(gpu, ViolationKind::kGlobalOutOfBounds, 1);
  const auto& v = gpu.check_report().violations[0];
  EXPECT_EQ(v.lane, 0u);
  EXPECT_NE(v.detail.find("read"), std::string::npos) << v.detail;
}

TEST(SimcheckMemcheck, FlagsOutOfBoundsWrite) {
  Gpu gpu(gpusim::make_a100());
  gpu.enable_check();
  run_prefix_access<true>(gpu, 40);
  expect_only(gpu, ViolationKind::kGlobalOutOfBounds, 1);
  EXPECT_NE(gpu.check_report().violations[0].detail.find("write"),
            std::string::npos);
}

TEST(SimcheckMemcheck, FlagsAccessStraddlingBufferEnd) {
  Gpu gpu(gpusim::make_a100());
  gpu.enable_check();
  // Register 31.5 doubles: element 31 begins inside but runs off the end.
  run_prefix_access<false>(gpu, 31, 32 * sizeof(double) - 4);
  expect_only(gpu, ViolationKind::kGlobalOutOfBounds, 1);
  EXPECT_EQ(gpu.check_report().violations[0].buffer, "v");
  EXPECT_NE(gpu.check_report().violations[0].detail.find("straddles"),
            std::string::npos);
}

TEST(SimcheckMemcheck, InBoundsAccessesAreClean) {
  Gpu gpu(gpusim::make_a100());
  gpu.enable_check();
  run_prefix_access<false>(gpu, 31);  // last registered element
  EXPECT_TRUE(gpu.check_report().clean()) << gpu.check_report().summary();
}

TEST(SimcheckMemcheck, UnregisteredLaunchIsNotChecked) {
  // An empty registration table means "no information", not "everything is
  // out of bounds" — ad-hoc launches must not drown in false positives.
  Gpu gpu(gpusim::make_a100());
  gpu.enable_check();
  std::vector<double> v(8, 0.0);
  const auto cfg = gpusim::LaunchConfig::warp_per_item(1, 32, 32);
  gpu.run(cfg, [&](WarpCtx& w) {
    Lanes<std::uint64_t> idx{};
    w.gather(v.data(), idx, 0x1u);
  });
  EXPECT_TRUE(gpu.check_report().clean()) << gpu.check_report().summary();
}

TEST(SimcheckMemcheck, SharedAccessOutsideAnyArena) {
  Gpu gpu(gpusim::make_a100());
  gpu.enable_check();
  std::vector<double> not_shared(8, 0.0);
  gpusim::LaunchConfig cfg;
  cfg.threads_per_block = 32;
  cfg.num_blocks = 1;
  gpu.run_blocks(cfg, [&](BlockCtx& block) {
    block.shared_alloc<double>(8);  // a real arena exists, but is not used
    block.for_each_warp([&](WarpCtx& w) {
      Lanes<std::uint64_t> idx{};
      w.shared_gather(not_shared.data(), idx, 0x1u);
    });
  });
  expect_only(gpu, ViolationKind::kSharedOutOfBounds, 1);
}

// --- initcheck ---------------------------------------------------------------

TEST(SimcheckInitcheck, FlagsReadOfUnwrittenOutput) {
  Gpu gpu(gpusim::make_a100());
  gpu.enable_check();
  std::vector<double> y(64, 0.0);
  gpu.check()->clear_tracking();
  gpu.check()->track_global(y.data(), y.size() * sizeof(double), "y",
                            /*initialized=*/false);
  const auto cfg = gpusim::LaunchConfig::warp_per_item(1, 32, 32);
  gpu.run(cfg, [&](WarpCtx& w) {
    Lanes<std::uint64_t> idx{};
    idx[0] = 3;
    w.gather(y.data(), idx, 0x1u);  // read-before-write on an output
  });
  expect_only(gpu, ViolationKind::kUninitRead, 1);
  EXPECT_EQ(gpu.check_report().violations[0].buffer, "y");
}

TEST(SimcheckInitcheck, WriteThenReadIsClean) {
  Gpu gpu(gpusim::make_a100());
  gpu.enable_check();
  std::vector<double> y(64, 0.0);
  gpu.check()->clear_tracking();
  gpu.check()->track_global(y.data(), y.size() * sizeof(double), "y",
                            /*initialized=*/false);
  const auto cfg = gpusim::LaunchConfig::warp_per_item(1, 32, 32);
  gpu.run(cfg, [&](WarpCtx& w) {
    Lanes<std::uint64_t> idx{};
    idx[0] = 3;
    Lanes<double> val{};
    w.scatter(y.data(), idx, val, 0x1u);
    w.gather(y.data(), idx, 0x1u);
  });
  EXPECT_TRUE(gpu.check_report().clean()) << gpu.check_report().summary();
}

TEST(SimcheckInitcheck, FlagsReadOfUnwrittenSharedSlot) {
  Gpu gpu(gpusim::make_a100());
  gpu.enable_check();
  gpusim::LaunchConfig cfg;
  cfg.threads_per_block = 32;
  cfg.num_blocks = 1;
  gpu.run_blocks(cfg, [&](BlockCtx& block) {
    double* tile = block.shared_alloc<double>(8);
    block.for_each_warp([&](WarpCtx& w) {
      Lanes<std::uint64_t> idx{};
      idx[0] = 5;  // never written; checked arenas are zero-filled, so the
      w.shared_gather(tile, idx, 0x1u);  // read itself is well-defined
    });
  });
  expect_only(gpu, ViolationKind::kUninitRead, 1);
}

// --- racecheck ---------------------------------------------------------------

TEST(SimcheckRacecheck, FlagsWriteWriteRace) {
  Gpu gpu(gpusim::make_a100());
  gpu.enable_check();
  gpusim::LaunchConfig cfg;
  cfg.threads_per_block = 64;  // 2 warps
  cfg.num_blocks = 1;
  gpu.run_blocks(cfg, [&](BlockCtx& block) {
    double* tile = block.shared_alloc<double>(8);
    block.for_each_warp([&](WarpCtx& w) {
      Lanes<std::uint64_t> idx{};
      Lanes<double> val{};
      w.shared_scatter(tile, idx, val, 0x1u);  // both warps write tile[0]
    });
  });
  expect_only(gpu, ViolationKind::kSharedRace, 1);
  EXPECT_EQ(gpu.check_report().violations[0].warp, 1u);
}

TEST(SimcheckRacecheck, FlagsReadWriteRace) {
  Gpu gpu(gpusim::make_a100());
  gpu.enable_check();
  gpusim::LaunchConfig cfg;
  cfg.threads_per_block = 64;
  cfg.num_blocks = 1;
  gpu.run_blocks(cfg, [&](BlockCtx& block) {
    double* tile = block.shared_alloc<double>(8);
    block.for_each_warp([&](WarpCtx& w) {
      Lanes<std::uint64_t> idx{};
      if (w.global_warp_id() % 2 == 0) {
        Lanes<double> val{};
        w.shared_scatter(tile, idx, val, 0x1u);  // warp 0 writes tile[0]
      } else {
        w.shared_gather(tile, idx, 0x1u);  // warp 1 reads it, no barrier
      }
    });
  });
  expect_only(gpu, ViolationKind::kSharedRace, 1);
}

TEST(SimcheckRacecheck, BarrierSeparatedWritesAreClean) {
  // Warp 0 writes before its barrier, warp 1 after its barrier: the sync
  // count is part of the epoch, so the two writes are ordered — no race.
  Gpu gpu(gpusim::make_a100());
  gpu.enable_check();
  gpusim::LaunchConfig cfg;
  cfg.threads_per_block = 64;
  cfg.num_blocks = 1;
  gpu.run_blocks(cfg, [&](BlockCtx& block) {
    double* tile = block.shared_alloc<double>(8);
    block.for_each_warp([&](WarpCtx& w) {
      Lanes<std::uint64_t> idx{};
      Lanes<double> val{};
      if (w.global_warp_id() % 2 == 0) {
        w.shared_scatter(tile, idx, val, 0x1u);
        w.sync();
      } else {
        w.sync();
        w.shared_scatter(tile, idx, val, 0x1u);
      }
    });
  });
  EXPECT_TRUE(gpu.check_report().clean()) << gpu.check_report().summary();
}

TEST(SimcheckRacecheck, PhaseSeparatedSharingIsClean) {
  // Cross-warp communication through separate for_each_warp phases (the
  // stream kernel's structure) carries an implicit barrier — no hazard.
  Gpu gpu(gpusim::make_a100());
  gpu.enable_check();
  gpusim::LaunchConfig cfg;
  cfg.threads_per_block = 64;
  cfg.num_blocks = 1;
  gpu.run_blocks(cfg, [&](BlockCtx& block) {
    double* tile = block.shared_alloc<double>(64);
    block.for_each_warp([&](WarpCtx& w) {
      const std::uint64_t warp = w.global_warp_id() % 2;
      Lanes<std::uint64_t> idx{};
      Lanes<double> val{};
      for (unsigned lane = 0; lane < kWarpSize; ++lane) {
        idx[lane] = warp * kWarpSize + lane;
        val[lane] = 1.0;
      }
      w.shared_scatter(tile, idx, val, kFullMask);
    });
    block.for_each_warp([&](WarpCtx& w) {
      if (w.global_warp_id() % 2 != 0) return;
      Lanes<std::uint64_t> idx{};
      for (unsigned lane = 0; lane < kWarpSize; ++lane) {
        idx[lane] = kWarpSize + lane;  // the *other* warp's stripe
      }
      w.shared_gather(tile, idx, kFullMask);
    });
  });
  EXPECT_TRUE(gpu.check_report().clean()) << gpu.check_report().summary();
}

// --- synccheck ---------------------------------------------------------------

TEST(SimcheckSynccheck, FlagsPartialMaskBarrier) {
  Gpu gpu(gpusim::make_a100());
  gpu.enable_check();
  gpusim::LaunchConfig cfg;
  cfg.threads_per_block = 32;
  cfg.num_blocks = 1;
  gpu.run_blocks(cfg, [&](BlockCtx& block) {
    block.for_each_warp([&](WarpCtx& w) {
      w.sync(0x1u);  // barrier with 31 lanes exited — divergent
    });
  });
  expect_only(gpu, ViolationKind::kBarrierDivergence, 1);
  EXPECT_NE(gpu.check_report().violations[0].detail.find("partial"),
            std::string::npos);
}

TEST(SimcheckSynccheck, FlagsUnequalBarrierCounts) {
  Gpu gpu(gpusim::make_a100());
  gpu.enable_check();
  gpusim::LaunchConfig cfg;
  cfg.threads_per_block = 64;  // 2 warps
  cfg.num_blocks = 1;
  gpu.run_blocks(cfg, [&](BlockCtx& block) {
    block.for_each_warp([&](WarpCtx& w) {
      if (w.global_warp_id() % 2 == 0) {
        w.sync();  // warp 1 never reaches the barrier
      }
    });
  });
  expect_only(gpu, ViolationKind::kBarrierDivergence, 1);
  EXPECT_EQ(gpu.check_report().violations[0].warp, 1u);
}

TEST(SimcheckSynccheck, EqualBarrierCountsAreClean) {
  Gpu gpu(gpusim::make_a100());
  gpu.enable_check();
  gpusim::LaunchConfig cfg;
  cfg.threads_per_block = 64;
  cfg.num_blocks = 2;
  gpu.run_blocks(cfg, [&](BlockCtx& block) {
    block.for_each_warp([&](WarpCtx& w) {
      w.sync();
      w.sync();
    });
  });
  EXPECT_TRUE(gpu.check_report().clean()) << gpu.check_report().summary();
}

// --- determinism lint --------------------------------------------------------

TEST(SimcheckDeterminismLint, FlagsFpAtomicsAcrossWarps) {
  Gpu gpu(gpusim::make_a100());
  gpu.enable_check();
  std::vector<double> acc(kWarpSize, 0.0);
  const auto cfg = gpusim::LaunchConfig::warp_per_item(2, 32, 32);  // 2 warps
  gpu.run(cfg, [&](WarpCtx& w) {
    Lanes<std::uint64_t> idx{};
    Lanes<double> val{};
    w.atomic_add_scatter(acc.data(), idx, val, 0x1u);
  });
  // Deduplicated: one finding per launch, not one per atomic.
  expect_only(gpu, ViolationKind::kNonDeterministicAtomic, 1);
}

TEST(SimcheckDeterminismLint, SingleWarpFpAtomicIsOrdered) {
  // With one warp in flight there is only one possible accumulation order.
  Gpu gpu(gpusim::make_a100());
  gpu.enable_check();
  std::vector<double> acc(kWarpSize, 0.0);
  const auto cfg = gpusim::LaunchConfig::warp_per_item(1, 32, 32);
  gpu.run(cfg, [&](WarpCtx& w) {
    Lanes<std::uint64_t> idx{};
    Lanes<double> val{};
    w.atomic_add_scatter(acc.data(), idx, val, 0x1u);
  });
  EXPECT_TRUE(gpu.check_report().clean()) << gpu.check_report().summary();
}

TEST(SimcheckDeterminismLint, IntegerAtomicsAreExact) {
  // Integer addition commutes exactly; the lint is FP-only.
  Gpu gpu(gpusim::make_a100());
  gpu.enable_check();
  std::vector<std::uint64_t> acc(kWarpSize, 0);
  const auto cfg = gpusim::LaunchConfig::warp_per_item(4, 32, 32);
  gpu.run(cfg, [&](WarpCtx& w) {
    Lanes<std::uint64_t> idx{};
    Lanes<std::uint64_t> val{};
    w.atomic_add_scatter(acc.data(), idx, val, 0x1u);
  });
  EXPECT_TRUE(gpu.check_report().clean()) << gpu.check_report().summary();
}

// --- configuration and reporting ---------------------------------------------

TEST(SimcheckConfig, NarrowedConfigSkipsDisabledTools) {
  CheckConfig cfg = CheckConfig::all();
  cfg.memcheck = false;
  Gpu gpu(gpusim::make_a100());
  gpu.enable_check(cfg);
  run_prefix_access<false>(gpu, 40);  // would be OOB under memcheck
  EXPECT_TRUE(gpu.check_report().clean()) << gpu.check_report().summary();

  CheckConfig lint_off = CheckConfig::all();
  lint_off.determinism_lint = false;
  Gpu gpu2(gpusim::make_a100());
  gpu2.enable_check(lint_off);
  std::vector<double> acc(kWarpSize, 0.0);
  const auto lcfg = gpusim::LaunchConfig::warp_per_item(2, 32, 32);
  gpu2.run(lcfg, [&](WarpCtx& w) {
    Lanes<std::uint64_t> idx{};
    Lanes<double> val{};
    w.atomic_add_scatter(acc.data(), idx, val, 0x1u);
  });
  EXPECT_TRUE(gpu2.check_report().clean());
}

TEST(SimcheckConfig, MaxViolationsCapsRecordingAndCountsSuppressed) {
  CheckConfig cfg = CheckConfig::all();
  cfg.max_violations = 2;
  Gpu gpu(gpusim::make_a100());
  gpu.enable_check(cfg);
  std::vector<double> v(64, 1.0);
  gpu.check()->clear_tracking();
  gpu.check()->track_global(v.data(), 32 * sizeof(double), "v", true);
  const auto lcfg = gpusim::LaunchConfig::warp_per_item(1, 32, 32);
  gpu.run(lcfg, [&](WarpCtx& w) {
    Lanes<std::uint64_t> idx{};
    for (unsigned lane = 0; lane < 5; ++lane) {
      idx[lane] = 40 + lane;  // five OOB lanes
    }
    w.gather(v.data(), idx, 0x1fu);
  });
  const auto& rep = gpu.check_report();
  EXPECT_EQ(rep.violations.size(), 2u);
  EXPECT_EQ(rep.suppressed, 3u);
  EXPECT_FALSE(rep.clean());
}

TEST(SimcheckReport, SummaryNamesKindsAndBuffers) {
  Gpu gpu(gpusim::make_a100());
  gpu.enable_check();
  run_prefix_access<false>(gpu, 40);
  const std::string s = gpu.check_report().summary();
  EXPECT_NE(s.find("simcheck:"), std::string::npos) << s;
  EXPECT_NE(s.find("global-out-of-bounds"), std::string::npos) << s;
  EXPECT_EQ(std::string(gpusim::violation_kind_name(
                ViolationKind::kNonDeterministicAtomic)),
            "non-deterministic-atomic");
}

TEST(SimcheckReport, DisableCheckStopsTracking) {
  Gpu gpu(gpusim::make_a100());
  gpu.enable_check();
  run_prefix_access<false>(gpu, 40);
  EXPECT_FALSE(gpu.check_report().clean());
  gpu.disable_check();
  EXPECT_FALSE(gpu.check_enabled());
}

TEST(SimcheckEnv, EnvVariableParsesCommonSpellings) {
  ::setenv("PROTONDOSE_SIMCHECK", "1", 1);
  EXPECT_TRUE(gpusim::simcheck_env_enabled());
  ::setenv("PROTONDOSE_SIMCHECK", "on", 1);
  EXPECT_TRUE(gpusim::simcheck_env_enabled());
  ::setenv("PROTONDOSE_SIMCHECK", "0", 1);
  EXPECT_FALSE(gpusim::simcheck_env_enabled());
  ::unsetenv("PROTONDOSE_SIMCHECK");
  EXPECT_FALSE(gpusim::simcheck_env_enabled());
}

}  // namespace
}  // namespace pd::kernels
