// Golden regression tests: pin the calibrated model's key outputs on the
// paper's full-scale workloads.  These numbers are this reproduction's
// quantitative claims (recorded in EXPERIMENTS.md); if a perf-model change
// moves them, the change must be deliberate and EXPERIMENTS.md updated.

#include <gtest/gtest.h>

#include "gpusim/perf.hpp"
#include "kernels/analytic.hpp"
#include "sparse/stats.hpp"

namespace pd::kernels {
namespace {

gpusim::PerfEstimate full_scale(KernelKind kind, std::size_t table_row,
                                const gpusim::DeviceSpec& spec) {
  const Workload w =
      Workload::from_paper(sparse::paper_table1()[table_row]);
  return gpusim::estimate_performance(spec, analytic_perf_input(kind, w));
}

TEST(Golden, Liver1HalfDoubleOnA100) {
  const auto est = full_scale(KernelKind::kHalfDouble, 0, gpusim::make_a100());
  EXPECT_NEAR(est.gflops, 434.0, 6.0);           // paper: ~420
  EXPECT_NEAR(est.bandwidth_fraction, 0.841, 0.01);  // paper: 80-87%
  EXPECT_NEAR(est.operational_intensity, 0.332, 0.002);
}

TEST(Golden, Prostate1HalfDoubleOnA100) {
  const auto est = full_scale(KernelKind::kHalfDouble, 4, gpusim::make_a100());
  EXPECT_NEAR(est.gflops, 357.0, 6.0);
  EXPECT_NEAR(est.bandwidth_fraction, 0.704, 0.01);  // paper: ~68%
}

TEST(Golden, Liver1BaselineOnA100) {
  const auto est = full_scale(KernelKind::kBaselineRs, 0, gpusim::make_a100());
  EXPECT_NEAR(est.gflops, 116.0, 4.0);
  // Atomic-throughput bound, as the paper's analysis says.
  EXPECT_GT(est.t_atomic, est.t_dram);
}

TEST(Golden, Liver1SingleOnA100) {
  const auto est = full_scale(KernelKind::kSingle, 0, gpusim::make_a100());
  EXPECT_NEAR(est.gflops, 326.0, 6.0);
}

TEST(Golden, GenerationRatios) {
  const double a100 =
      full_scale(KernelKind::kHalfDouble, 0, gpusim::make_a100()).gflops;
  const double v100 =
      full_scale(KernelKind::kHalfDouble, 0, gpusim::make_v100()).gflops;
  const double p100 =
      full_scale(KernelKind::kHalfDouble, 0, gpusim::make_p100()).gflops;
  EXPECT_NEAR(a100 / v100, 1.75, 0.15);  // paper: 1.5-2x
  EXPECT_NEAR(v100 / p100, 2.1, 0.3);    // paper: ~2.5x
}

TEST(Golden, CpuEngineOnLiver1) {
  const Workload w = Workload::from_paper(sparse::paper_table1()[0]);
  const auto cpu = gpusim::estimate_cpu_performance(gpusim::make_i9_7940x(),
                                                    analytic_cpu_workload(w));
  EXPECT_NEAR(cpu.gflops, 6.0, 1.0);
  const auto base = full_scale(KernelKind::kBaselineRs, 0, gpusim::make_a100());
  EXPECT_NEAR(base.gflops / cpu.gflops, 19.0, 3.0);  // paper: ~17x
}

TEST(Golden, ColIdx16UpliftOnProstate) {
  // The u16 column-index optimization the paper proposes: ~1.4-1.5x.
  const auto u32 = full_scale(KernelKind::kHalfDouble, 4, gpusim::make_a100());
  const auto u16 = full_scale(KernelKind::kColIdx16, 4, gpusim::make_a100());
  EXPECT_NEAR(u16.gflops / u32.gflops, 1.45, 0.1);
}

}  // namespace
}  // namespace pd::kernels
