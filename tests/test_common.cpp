// Tests for src/common: RNG determinism and distributions, descriptive
// statistics, text tables, CSV escaping, CLI parsing, unit conversions.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/cli.hpp"
#include "common/csv.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/units.hpp"

namespace pd {
namespace {

// --- Rng -------------------------------------------------------------------

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    equal += (a.next_u64() == b.next_u64());
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.5);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.5);
  }
}

TEST(Rng, UniformEmptyIntervalThrows) {
  Rng rng(7);
  EXPECT_THROW(rng.uniform(1.0, 0.0), Error);
}

TEST(Rng, UniformIndexBounds) {
  Rng rng(3);
  for (std::uint64_t n : {1ull, 2ull, 7ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.uniform_index(n), n);
    }
  }
}

TEST(Rng, UniformIndexZeroThrows) {
  Rng rng(3);
  EXPECT_THROW(rng.uniform_index(0), Error);
}

TEST(Rng, UniformIndexCoversAllValues) {
  Rng rng(11);
  std::array<int, 5> seen{};
  for (int i = 0; i < 1000; ++i) {
    seen[rng.uniform_index(5)]++;
  }
  for (const int count : seen) {
    EXPECT_GT(count, 100);  // roughly uniform
  }
}

TEST(Rng, NormalMomentsPlausible) {
  Rng rng(99);
  double sum = 0.0, sumsq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sumsq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sumsq / n, 1.0, 0.05);
}

TEST(Rng, NormalWithParams) {
  Rng rng(99);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum += rng.normal(10.0, 0.5);
  }
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, ForkIsIndependentOfParentContinuation) {
  Rng a(5);
  Rng fork = a.fork();
  const std::uint64_t fork_first = fork.next_u64();
  // Forking again from the same parent state gives a different stream.
  Rng b(5);
  (void)b.fork();
  Rng fork2 = b.fork();
  EXPECT_NE(fork_first, fork2.next_u64());
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(8);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9};
  auto sorted = v;
  rng.shuffle(v.data(), v.size());
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, SplitMix64IsDeterministic) {
  std::uint64_t s1 = 123, s2 = 123;
  EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  EXPECT_EQ(s1, s2);
}

// --- stats -----------------------------------------------------------------

TEST(Stats, SummaryBasics) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  const Summary s = summarize(v);
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_NEAR(s.stddev, std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(Stats, SummaryEmpty) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> v{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 25.0);
}

TEST(Stats, PercentileErrors) {
  EXPECT_THROW(percentile({}, 50.0), Error);
  const std::vector<double> v{1.0};
  EXPECT_THROW(percentile(v, -1.0), Error);
  EXPECT_THROW(percentile(v, 101.0), Error);
}

TEST(Stats, HistogramBinningAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);    // bin 0
  h.add(9.9);    // bin 4
  h.add(-3.0);   // clamped to bin 0
  h.add(42.0);   // clamped to bin 4
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(4), 2u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Stats, HistogramCumulative) {
  Histogram h(0.0, 4.0, 4);
  h.add_count(0.5, 1);
  h.add_count(1.5, 1);
  h.add_count(2.5, 2);
  EXPECT_DOUBLE_EQ(h.cumulative_fraction(0), 0.25);
  EXPECT_DOUBLE_EQ(h.cumulative_fraction(2), 1.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(1), 1.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(1), 2.0);
}

TEST(Stats, HistogramInvalidConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), Error);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), Error);
}

TEST(Stats, EmpiricalCdf) {
  const std::vector<std::uint64_t> sorted{1, 2, 2, 5, 9};
  EXPECT_DOUBLE_EQ(empirical_cdf(sorted, 0), 0.0);
  EXPECT_DOUBLE_EQ(empirical_cdf(sorted, 2), 0.6);
  EXPECT_DOUBLE_EQ(empirical_cdf(sorted, 9), 1.0);
  EXPECT_DOUBLE_EQ(empirical_cdf({}, 5), 0.0);
}

// --- table / csv -----------------------------------------------------------

TEST(Table, AlignsColumns) {
  TextTable t({"a", "long_header"});
  t.add_row({"xxxx", "1"});
  const std::string s = t.str();
  EXPECT_NE(s.find("a     "), std::string::npos);
  EXPECT_NE(s.find("xxxx"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
}

TEST(Table, RejectsMismatchedRow) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), Error);
}

TEST(Table, Formatters) {
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_percent(0.123, 1), "12.3%");
  EXPECT_EQ(fmt_bytes(1024.0), "1.00 KiB");
  EXPECT_EQ(fmt_bytes(512.0), "512 B");
  EXPECT_NE(fmt_sci(12345.0, 2).find("e"), std::string::npos);
}

TEST(Csv, EscapesSpecials) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(Csv, WritesRows) {
  std::ostringstream os;
  CsvWriter w(os);
  w.write_row({"a", "b,c"});
  EXPECT_EQ(os.str(), "a,\"b,c\"\n");
}

// --- cli -------------------------------------------------------------------

TEST(Cli, ParsesOptionsAndFlags) {
  CliParser cli("prog", "test");
  cli.add_option("scale", "1.0", "scale");
  cli.add_flag("verbose", "verbosity");
  const char* argv[] = {"prog", "--scale", "2.5", "--verbose"};
  ASSERT_TRUE(cli.parse(4, argv));
  EXPECT_DOUBLE_EQ(cli.get_double("scale"), 2.5);
  EXPECT_TRUE(cli.get_flag("verbose"));
}

TEST(Cli, EqualsSyntaxAndDefaults) {
  CliParser cli("prog", "test");
  cli.add_option("n", "7", "count");
  const char* argv[] = {"prog", "--n=9"};
  ASSERT_TRUE(cli.parse(2, argv));
  EXPECT_EQ(cli.get_int("n"), 9);

  CliParser cli2("prog", "test");
  cli2.add_option("n", "7", "count");
  const char* argv2[] = {"prog"};
  ASSERT_TRUE(cli2.parse(1, argv2));
  EXPECT_EQ(cli2.get_int("n"), 7);
}

TEST(Cli, UnknownOptionThrows) {
  CliParser cli("prog", "test");
  const char* argv[] = {"prog", "--nope", "1"};
  EXPECT_THROW(cli.parse(3, argv), Error);
}

TEST(Cli, MissingValueThrows) {
  CliParser cli("prog", "test");
  cli.add_option("n", "7", "count");
  const char* argv[] = {"prog", "--n"};
  EXPECT_THROW(cli.parse(2, argv), Error);
}

TEST(Cli, NonNumericValueThrows) {
  CliParser cli("prog", "test");
  cli.add_option("n", "7", "count");
  const char* argv[] = {"prog", "--n", "abc"};
  ASSERT_TRUE(cli.parse(3, argv));
  EXPECT_THROW(cli.get_int("n"), Error);
  EXPECT_THROW(cli.get_double("n"), Error);
}

TEST(Cli, HelpReturnsFalse) {
  CliParser cli("prog", "test");
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(cli.parse(2, argv));
}

// --- units -----------------------------------------------------------------

TEST(Units, Conversions) {
  EXPECT_DOUBLE_EQ(gbytes_per_sec(2e9, 1.0), 2.0);
  EXPECT_DOUBLE_EQ(gflops_per_sec(4e9, 2.0), 2.0);
  EXPECT_DOUBLE_EQ(operational_intensity(2.0, 8.0), 0.25);
  EXPECT_DOUBLE_EQ(seconds_for_bytes(1e9, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(seconds_for_flops(1e9, 1.0), 1.0);
}

TEST(Units, GuardsAgainstNonPositive) {
  EXPECT_THROW(gbytes_per_sec(1.0, 0.0), Error);
  EXPECT_THROW(operational_intensity(1.0, 0.0), Error);
  EXPECT_THROW(seconds_for_bytes(1.0, 0.0), Error);
}

// --- error -----------------------------------------------------------------

TEST(ErrorMacros, CheckCarriesContext) {
  try {
    PD_CHECK_MSG(false, "details here");
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("details here"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("test_common.cpp"), std::string::npos);
  }
}

}  // namespace
}  // namespace pd
