// DoseService differential stress and fault-injection tests.
//
// ServiceStress: N client threads hammer M plans with seeded random weight
// vectors through a DoseService, across worker counts {1, 2, 5}, batch caps
// {1, 4, 9}, and both backends.  Every returned dose is checked *bitwise*
// against a fresh sequential DoseEngine::compute on the same plan matrix —
// batching, scheduling order, worker count, cache eviction, and backend must
// all be invisible in the bits (§II-D served end-to-end).
//
// ServiceFaults: deterministic fault injection — deadline expiry mid-queue,
// cancellation after submit, cache eviction racing an in-flight batch,
// queue-overflow backpressure, unknown plans, and malformed weight vectors.
// Every fault resolves with a documented status; no fault ever yields a
// wrong dose or a deadlock, including under ASan/UBSan
// (-DPROTONDOSE_SANITIZE=ON, exercised by the CI sanitize job).
//
// PROTONDOSE_SERVICE_STRESS=1 elevates client/request counts (CI stress job).

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstdlib>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "common/threadcheck.hpp"
#include "gpusim/device.hpp"
#include "kernels/dose_engine.hpp"
#include "service/dose_service.hpp"
#include "sparse/random.hpp"

namespace pd::service {
namespace {

/// Clean-suite enforcement (docs/threadcheck.md): under
/// PROTONDOSE_THREADCHECK=1 (the CI threadcheck job) every test in this
/// binary doubles as a threadcheck fixture — at exit the analyzer must have
/// found nothing in the whole recorded stream.
class ThreadcheckCleanEnv : public ::testing::Environment {
 public:
  void TearDown() override {
    if (!threadcheck::enabled()) {
      return;
    }
    const threadcheck::Report report = threadcheck::analyze();
    EXPECT_TRUE(report.clean()) << report.summary();
  }
};
[[maybe_unused]] const auto* const kThreadcheckCleanEnv =
    ::testing::AddGlobalTestEnvironment(new ThreadcheckCleanEnv);

using Backend = kernels::DoseEngine::Backend;

constexpr std::uint64_t kMatrixSeedBase = 0xd05e5eedULL;
constexpr std::uint64_t kSpots = 90;

bool stress_elevated() {
  const char* env = std::getenv("PROTONDOSE_SERVICE_STRESS");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

/// Deterministic per-plan matrix: same seed -> same bits, every call.  This
/// is the MatrixSource contract the cache relies on for eviction safety.
sparse::CsrF64 plan_matrix(std::size_t plan_index) {
  Rng rng(kMatrixSeedBase + plan_index);
  return sparse::random_csr(rng, 300, kSpots, 12.0,
                            sparse::RandomStructure::kSkewed);
}

std::string plan_name(std::size_t plan_index) {
  return "plan" + std::to_string(plan_index);
}

ServiceConfig make_config(Backend backend, unsigned workers,
                          std::size_t batch_cap) {
  ServiceConfig config;
  config.workers = workers;
  config.batch_cap = batch_cap;
  config.queue_bound = 512;
  config.flush_deadline_ms = 0.5;
  config.engine_cache_capacity = 2;  // < plan count: eviction under stress
  config.engine.device = gpusim::make_a100();
  config.engine.backend = backend;
  return config;
}

void register_plans(DoseService& service, std::size_t num_plans) {
  for (std::size_t p = 0; p < num_plans; ++p) {
    service.register_plan(plan_name(p), [p] { return plan_matrix(p); });
  }
}

/// Fresh sequential reference engines, one per plan, independent of the
/// service (never shared, never batched).
std::vector<kernels::DoseEngine> make_references(Backend backend,
                                                 std::size_t num_plans) {
  std::vector<kernels::DoseEngine> refs;
  refs.reserve(num_plans);
  for (std::size_t p = 0; p < num_plans; ++p) {
    refs.emplace_back(plan_matrix(p), gpusim::make_a100(),
                      kernels::DoseEngine::Mode::kHalfDouble,
                      kernels::kDefaultVectorTpb, kernels::SpmvFamily::kVector,
                      backend);
  }
  return refs;
}

void expect_bitwise_equal(const std::vector<double>& got,
                          const std::vector<double>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(std::bit_cast<std::uint64_t>(got[i]),
              std::bit_cast<std::uint64_t>(want[i]))
        << "dose[" << i << "]: " << got[i] << " vs " << want[i];
  }
}

struct ClientRecord {
  std::size_t plan_index;
  std::vector<double> weights;
  std::future<DoseResult> result;
};

/// One client: submits `requests` random-weight requests round-robin over the
/// plans, then verifies each future bitwise against the reference engine.
void run_client(DoseService& service, std::uint64_t seed,
                std::size_t num_plans, std::size_t requests,
                std::vector<ClientRecord>& records) {
  Rng rng(seed);
  records.reserve(requests);
  for (std::size_t r = 0; r < requests; ++r) {
    const std::size_t plan_index = rng.uniform_index(num_plans);
    std::vector<double> weights = sparse::random_vector(rng, kSpots, 0.0, 2.0);
    Ticket ticket =
        service.submit(plan_name(plan_index), weights);
    records.push_back(
        ClientRecord{plan_index, std::move(weights), std::move(ticket.result)});
  }
}

struct StressCase {
  Backend backend;
  unsigned workers;
  std::size_t batch_cap;
};

class ServiceStress : public ::testing::TestWithParam<StressCase> {};

TEST_P(ServiceStress, DifferentialBitwiseUnderConcurrency) {
  const StressCase& param = GetParam();
  const std::size_t num_plans = 3;
  const std::size_t clients = stress_elevated() ? 8 : 3;
  const std::size_t requests_per_client = stress_elevated() ? 48 : 10;

  DoseService service(
      make_config(param.backend, param.workers, param.batch_cap));
  register_plans(service, num_plans);

  std::vector<std::vector<ClientRecord>> per_client(clients);
  {
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (std::size_t c = 0; c < clients; ++c) {
      threads.emplace_back([&service, &per_client, c, num_plans,
                            requests_per_client] {
        run_client(service, /*seed=*/1000 + c, num_plans, requests_per_client,
                   per_client[c]);
      });
    }
    for (std::thread& t : threads) {
      t.join();
    }
  }
  service.drain();

  std::vector<kernels::DoseEngine> refs =
      make_references(param.backend, num_plans);
  std::size_t ok = 0;
  for (std::vector<ClientRecord>& records : per_client) {
    for (ClientRecord& record : records) {
      DoseResult result = record.result.get();
      ASSERT_EQ(result.status, RequestStatus::kOk) << result.error;
      ASSERT_GE(result.batch_size, 1u);
      ASSERT_LE(result.batch_size, param.batch_cap);
      const std::vector<double> want =
          refs[record.plan_index].compute(record.weights);
      expect_bitwise_equal(result.dose, want);
      ++ok;
    }
  }

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.completed, ok);
  EXPECT_EQ(stats.submitted, clients * requests_per_client);
  EXPECT_EQ(stats.rejected + stats.cancelled + stats.expired + stats.failed,
            0u);
  EXPECT_EQ(stats.queue_depth, 0u);
  EXPECT_GE(stats.batches, 1u);
  EXPECT_GT(stats.mean_batch_size(), 0.0);
  // 3 plans, capacity 2: the cache must have missed at least once per plan.
  EXPECT_GE(stats.cache.misses, num_plans);
}

std::string stress_case_name(
    const ::testing::TestParamInfo<StressCase>& info) {
  std::string name =
      info.param.backend == Backend::kNative ? "native" : "gpusim";
  name += "_w" + std::to_string(info.param.workers);
  name += "_cap" + std::to_string(info.param.batch_cap);
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ServiceStress,
    ::testing::Values(
        // Native backend: full worker x cap sweep (fast wall-clock).
        StressCase{Backend::kNative, 1, 1}, StressCase{Backend::kNative, 1, 4},
        StressCase{Backend::kNative, 1, 9}, StressCase{Backend::kNative, 2, 1},
        StressCase{Backend::kNative, 2, 4}, StressCase{Backend::kNative, 2, 9},
        StressCase{Backend::kNative, 5, 1}, StressCase{Backend::kNative, 5, 4},
        StressCase{Backend::kNative, 5, 9},
        // Gpusim backend: corner configs (the simulated device is slow; the
        // batching logic upstream of the backend is identical).
        StressCase{Backend::kGpusim, 1, 4}, StressCase{Backend::kGpusim, 2, 9},
        StressCase{Backend::kGpusim, 5, 1}),
    stress_case_name);

// ---------------------------------------------------------------------------
// Fault injection

TEST(ServiceFaults, QueueOverflowBackpressure) {
  // queue_bound 4 < batch_cap 8 with an hour-long flush deadline: nothing
  // launches, so the 5th submit must bounce with kRejected + retry hint.
  ServiceConfig config = make_config(Backend::kNative, 1, 8);
  config.queue_bound = 4;
  config.flush_deadline_ms = 3.6e6;
  DoseService service(config);
  register_plans(service, 1);

  const std::vector<double> weights(kSpots, 1.0);
  std::vector<Ticket> accepted;
  for (int i = 0; i < 4; ++i) {
    accepted.push_back(service.submit(plan_name(0), weights));
  }
  Ticket bounced = service.submit(plan_name(0), weights);
  DoseResult rejected = bounced.result.get();
  EXPECT_EQ(rejected.status, RequestStatus::kRejected);
  EXPECT_GT(rejected.retry_after_ms, 0.0);
  EXPECT_EQ(service.stats().rejected, 1u);
  EXPECT_EQ(service.stats().max_queue_depth, 4u);

  // Backpressure is transient: drain flushes the partial batch and the
  // accepted requests complete normally.
  service.drain();
  for (Ticket& ticket : accepted) {
    EXPECT_EQ(ticket.result.get().status, RequestStatus::kOk);
  }
  EXPECT_EQ(service.stats().completed, 4u);
}

TEST(ServiceFaults, DeadlineExpiresMidQueue) {
  // One worker, huge flush deadline, cap 4: a lone request can never launch
  // on its own, so its 5 ms queue deadline must fire (worker wakes on the
  // deadline tick via next_event_tick).
  ServiceConfig config = make_config(Backend::kNative, 1, 4);
  config.flush_deadline_ms = 3.6e6;
  DoseService service(config);
  register_plans(service, 1);

  SubmitOptions options;
  options.deadline_ms = 5.0;
  Ticket ticket =
      service.submit(plan_name(0), std::vector<double>(kSpots, 1.0), options);
  DoseResult result = ticket.result.get();  // must not deadlock
  EXPECT_EQ(result.status, RequestStatus::kDeadlineExpired);
  EXPECT_GE(result.latency_ms, 5.0);
  EXPECT_EQ(service.stats().expired, 1u);
  EXPECT_EQ(service.stats().queue_depth, 0u);
}

TEST(ServiceFaults, CancelAfterSubmit) {
  ServiceConfig config = make_config(Backend::kNative, 1, 4);
  config.flush_deadline_ms = 3.6e6;
  DoseService service(config);
  register_plans(service, 1);

  Ticket ticket = service.submit(plan_name(0), std::vector<double>(kSpots, 1.0));
  EXPECT_TRUE(service.cancel(ticket.id));
  DoseResult result = ticket.result.get();
  EXPECT_EQ(result.status, RequestStatus::kCancelled);
  // Idempotence and unknown ids.
  EXPECT_FALSE(service.cancel(ticket.id));
  EXPECT_FALSE(service.cancel(99999));
  EXPECT_EQ(service.stats().cancelled, 1u);
  EXPECT_EQ(service.stats().queue_depth, 0u);
}

TEST(ServiceFaults, CancelTooLateReturnsFalseAndResultArrives) {
  // Zero flush deadline: the request launches immediately, so cancel either
  // catches it in-queue (kCancelled) or arrives too late (false + kOk dose).
  // Either way the outcome is documented and the dose, if any, is right.
  ServiceConfig config = make_config(Backend::kNative, 2, 4);
  config.flush_deadline_ms = 0.0;
  DoseService service(config);
  register_plans(service, 1);

  const std::vector<double> weights(kSpots, 0.5);
  Ticket ticket = service.submit(plan_name(0), weights);
  const bool cancelled = service.cancel(ticket.id);
  DoseResult result = ticket.result.get();
  if (cancelled) {
    EXPECT_EQ(result.status, RequestStatus::kCancelled);
  } else {
    ASSERT_EQ(result.status, RequestStatus::kOk) << result.error;
    std::vector<kernels::DoseEngine> refs =
        make_references(Backend::kNative, 1);
    expect_bitwise_equal(result.dose, refs[0].compute(weights));
  }
}

TEST(ServiceFaults, EvictionRacesInFlightBatch) {
  // Cache capacity 1 with two hot plans and two workers: every launch of one
  // plan evicts (or tries to evict) the other plan's engine while batches are
  // in flight.  Pinning must keep in-flight engines alive, and rebuilt
  // engines must produce bitwise-identical doses.
  ServiceConfig config = make_config(Backend::kNative, 2, 2);
  config.engine_cache_capacity = 1;
  config.flush_deadline_ms = 0.0;  // launch eagerly: maximize overlap
  DoseService service(config);
  register_plans(service, 2);

  const std::size_t rounds = stress_elevated() ? 120 : 30;
  Rng rng(0xca5eULL);
  std::vector<ClientRecord> records;
  records.reserve(2 * rounds);
  for (std::size_t r = 0; r < rounds; ++r) {
    for (std::size_t p = 0; p < 2; ++p) {
      std::vector<double> weights =
          sparse::random_vector(rng, kSpots, 0.0, 2.0);
      Ticket ticket = service.submit(plan_name(p), weights);
      records.push_back(
          ClientRecord{p, std::move(weights), std::move(ticket.result)});
    }
  }
  service.drain();

  // Serialized alternation tail: one request in flight at a time, drained
  // between submits.  Whatever the concurrent phase left behind (even a
  // fully pinned overshoot where both engines got inserted while the other
  // was in flight), each acquire here finds the other plan's engine
  // unpinned, so the capacity-1 cache must evict it and rebuild on the next
  // alternation — churn is guaranteed for any worker count or scheduler.
  const std::size_t tail = 4;
  for (std::size_t t = 0; t < tail; ++t) {
    const std::size_t p = t % 2;
    std::vector<double> weights = sparse::random_vector(rng, kSpots, 0.0, 2.0);
    Ticket ticket = service.submit(plan_name(p), weights);
    records.push_back(
        ClientRecord{p, std::move(weights), std::move(ticket.result)});
    service.drain();
  }

  std::vector<kernels::DoseEngine> refs = make_references(Backend::kNative, 2);
  for (ClientRecord& record : records) {
    DoseResult result = record.result.get();
    ASSERT_EQ(result.status, RequestStatus::kOk) << result.error;
    expect_bitwise_equal(result.dose,
                         refs[record.plan_index].compute(record.weights));
  }
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.completed, 2 * rounds + tail);
  // Capacity 1 with two alternating plans has to churn.
  EXPECT_GT(stats.cache.evictions, 0u);
  EXPECT_GT(stats.cache.misses, 2u);
}

TEST(ServiceFaults, EvictionRacesInFlightDeltaBatch) {
  // Same churn as EvictionRacesInFlightBatch, but the traffic is
  // submit_delta: every launch must lazily rebuild the evicted engine's CSC
  // sidecar (EngineCache rebuilds are bit-identical, and the sidecar is a
  // pure function of the stored matrix), so delta doses stay bitwise equal
  // to a fresh sequential full compute of each request's new weights.
  //
  // One worker makes the churn deterministic: launches serialize and the
  // worker unpins its engine before completing a batch, so every cross-plan
  // acquire inserts while the other engine is unpinned and the capacity-1
  // cache must evict it.  (With concurrent workers both engines can be
  // inserted while the other is pinned; the cache then overshoots and never
  // sees another miss, leaving the eviction count to scheduler timing.)
  ServiceConfig config = make_config(Backend::kNative, 1, 2);
  config.engine_cache_capacity = 1;
  config.flush_deadline_ms = 0.0;  // launch eagerly
  DoseService service(config);
  register_plans(service, 2);

  std::vector<kernels::DoseEngine> refs = make_references(Backend::kNative, 2);
  std::vector<std::shared_ptr<const DeltaBase>> bases;
  for (std::size_t p = 0; p < 2; ++p) {
    auto base = std::make_shared<DeltaBase>();
    base->key = static_cast<std::uint32_t>(p);
    base->weights = std::vector<double>(kSpots, 1.0);
    base->dose = refs[p].compute(base->weights);
    bases.push_back(std::move(base));
  }

  const std::size_t rounds = stress_elevated() ? 120 : 30;
  Rng rng(0xde17aULL);
  std::vector<ClientRecord> records;
  records.reserve(2 * rounds);
  for (std::size_t r = 0; r < rounds; ++r) {
    for (std::size_t p = 0; p < 2; ++p) {
      std::vector<double> weights =
          sparse::random_vector(rng, kSpots, 0.0, 2.0);
      Ticket ticket = service.submit_delta(plan_name(p), bases[p], weights);
      records.push_back(
          ClientRecord{p, std::move(weights), std::move(ticket.result)});
    }
    // Draining each round keeps the shape crisp: exactly two alternating
    // single-plan launches per round, each one a rebuild-after-evict
    // (sidecar included) of the engine the previous launch displaced.
    service.drain();
  }

  for (ClientRecord& record : records) {
    DoseResult result = record.result.get();
    ASSERT_EQ(result.status, RequestStatus::kOk) << result.error;
    expect_bitwise_equal(result.dose,
                         refs[record.plan_index].compute(record.weights));
  }
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.completed, 2 * rounds);
  EXPECT_GT(stats.delta_batches, 0u);
  // Capacity 1 with two alternating plans has to churn.
  EXPECT_GT(stats.cache.evictions, 0u);
  EXPECT_GT(stats.cache.misses, 2u);
}

TEST(ServiceFaults, UnknownPlanFailsImmediately) {
  DoseService service(make_config(Backend::kNative, 1, 4));
  register_plans(service, 1);
  Ticket ticket =
      service.submit("no_such_plan", std::vector<double>(kSpots, 1.0));
  DoseResult result = ticket.result.get();
  EXPECT_EQ(result.status, RequestStatus::kFailed);
  EXPECT_NE(result.error.find("unknown plan"), std::string::npos);
  EXPECT_EQ(service.stats().failed, 1u);
}

TEST(ServiceFaults, BadWeightLengthFailsAloneBatchmatesSucceed) {
  // cap 3 with a huge flush deadline: all three requests ride one launch;
  // the malformed one must fail individually without poisoning the batch.
  ServiceConfig config = make_config(Backend::kNative, 1, 3);
  config.flush_deadline_ms = 3.6e6;
  DoseService service(config);
  register_plans(service, 1);

  const std::vector<double> good(kSpots, 1.0);
  Ticket a = service.submit(plan_name(0), good);
  Ticket bad = service.submit(plan_name(0), std::vector<double>(7, 1.0));
  Ticket b = service.submit(plan_name(0), good);
  service.drain();

  DoseResult bad_result = bad.result.get();
  EXPECT_EQ(bad_result.status, RequestStatus::kFailed);
  EXPECT_NE(bad_result.error.find("weight vector"), std::string::npos);

  std::vector<kernels::DoseEngine> refs = make_references(Backend::kNative, 1);
  const std::vector<double> want = refs[0].compute(good);
  for (Ticket* ticket : {&a, &b}) {
    DoseResult result = ticket->result.get();
    ASSERT_EQ(result.status, RequestStatus::kOk) << result.error;
    EXPECT_EQ(result.batch_size, 2u);  // the bad one dropped out pre-launch
    expect_bitwise_equal(result.dose, want);
  }
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.completed, 2u);
}

TEST(ServiceFaults, DestructorDrainsOutstandingRequests) {
  // A service destroyed with queued work must resolve every future (the
  // destructor drains) — nobody blocks forever on a dropped promise.
  std::vector<Ticket> tickets;
  {
    ServiceConfig config = make_config(Backend::kNative, 2, 4);
    config.flush_deadline_ms = 3.6e6;  // only the destructor's drain flushes
    DoseService service(config);
    register_plans(service, 1);
    for (int i = 0; i < 6; ++i) {
      tickets.push_back(
          service.submit(plan_name(0), std::vector<double>(kSpots, 1.0)));
    }
  }
  for (Ticket& ticket : tickets) {
    EXPECT_EQ(ticket.result.get().status, RequestStatus::kOk);
  }
}

TEST(ServiceThreadcheck, DoesNotPerturb) {
  // §II-D with the analyzer fully on: recording AND seeded schedule
  // perturbation must be invisible in the bits — every served dose stays
  // bitwise equal to a fresh sequential compute, and the instrumented
  // serving stack itself must analyze clean.
  const bool env_was_enabled = threadcheck::enabled();
  threadcheck::reset();
  threadcheck::CheckConfig check;
  check.schedule_seed = 0xC0FFEEULL;
  threadcheck::enable(check);

  constexpr std::size_t kPlans = 2;
  std::vector<kernels::DoseEngine> refs =
      make_references(Backend::kNative, kPlans);
  {
    DoseService service(make_config(Backend::kNative, 2, 4));
    register_plans(service, kPlans);
    Rng rng(0x9e7b5eedULL);
    std::vector<std::pair<std::size_t, std::vector<double>>> sent;
    std::vector<Ticket> tickets;
    for (int i = 0; i < 24; ++i) {
      const std::size_t p = i % kPlans;
      std::vector<double> weights(kSpots);
      for (double& w : weights) {
        w = rng.uniform(0.0, 2.0);
      }
      tickets.push_back(service.submit(plan_name(p), weights));
      sent.emplace_back(p, std::move(weights));
    }
    service.drain();
    for (std::size_t i = 0; i < tickets.size(); ++i) {
      DoseResult result = tickets[i].result.get();
      ASSERT_EQ(result.status, RequestStatus::kOk) << result.error;
      expect_bitwise_equal(result.dose,
                           refs[sent[i].first].compute(sent[i].second));
    }
  }

  const threadcheck::Report report = threadcheck::analyze();
  EXPECT_TRUE(report.clean()) << report.summary();
  EXPECT_GT(report.perturbations, 0u)
      << "the seed must actually exercise the perturbation hook";

  // Hand the session back the way the environment set it up.
  threadcheck::disable();
  threadcheck::reset();
  if (env_was_enabled) {
    threadcheck::CheckConfig env_config;
    env_config.schedule_seed = threadcheck::env_schedule_seed();
    threadcheck::enable(env_config);
  }
}

}  // namespace
}  // namespace pd::service
