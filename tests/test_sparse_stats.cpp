// Tests for matrix-structure statistics (the Table I / Figure 2 quantities).

#include <gtest/gtest.h>

#include "sparse/stats.hpp"

namespace pd::sparse {
namespace {

CsrF64 structured_matrix() {
  // Rows with lengths 0, 2, 40, 0, 1.
  CsrF64 m;
  m.num_rows = 5;
  m.num_cols = 50;
  m.row_ptr = {0, 0, 2, 42, 42, 43};
  for (int i = 0; i < 43; ++i) {
    m.col_idx.push_back(static_cast<std::uint32_t>(i % 50));
    m.values.push_back(1.0);
  }
  m.validate();
  return m;
}

TEST(MatrixStats, CountsAndFractions) {
  const MatrixStats s = compute_stats(structured_matrix());
  EXPECT_EQ(s.rows, 5u);
  EXPECT_EQ(s.cols, 50u);
  EXPECT_EQ(s.nnz, 43u);
  EXPECT_EQ(s.empty_rows, 2u);
  EXPECT_DOUBLE_EQ(s.empty_row_fraction, 0.4);
  EXPECT_DOUBLE_EQ(s.mean_nnz_per_row, 43.0 / 5.0);
  EXPECT_DOUBLE_EQ(s.mean_nnz_per_nonempty_row, 43.0 / 3.0);
  EXPECT_EQ(s.max_row_nnz, 40u);
  EXPECT_DOUBLE_EQ(s.density, 43.0 / 250.0);
  // Two of the three non-empty rows are shorter than a warp.
  EXPECT_DOUBLE_EQ(s.frac_nonempty_below_warp, 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(s.row_skew, 40.0 / (43.0 / 3.0));
}

TEST(MatrixStats, RowLengthCdf) {
  const MatrixStats s = compute_stats(structured_matrix());
  EXPECT_DOUBLE_EQ(s.row_length_cdf(0), 0.0);   // non-empty rows only
  EXPECT_DOUBLE_EQ(s.row_length_cdf(1), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(s.row_length_cdf(2), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(s.row_length_cdf(39), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(s.row_length_cdf(40), 1.0);
}

TEST(MatrixStats, CsrBytesMatchesTableOneArithmetic) {
  const MatrixStats s = compute_stats(structured_matrix());
  // 2-byte values + 4-byte columns + 4-byte row offsets.
  EXPECT_EQ(s.csr_bytes(2, 4), 43u * 6 + 6 * 4);
}

TEST(MatrixStats, CumulativeHistogramIsMonotone) {
  const MatrixStats s = compute_stats(structured_matrix());
  const auto hist = cumulative_row_length_histogram(s, 10);
  ASSERT_FALSE(hist.empty());
  for (std::size_t i = 1; i < hist.size(); ++i) {
    EXPECT_GT(hist[i].row_length, hist[i - 1].row_length);
    EXPECT_GE(hist[i].cumulative_fraction, hist[i - 1].cumulative_fraction);
  }
  EXPECT_DOUBLE_EQ(hist.back().cumulative_fraction, 1.0);
}

TEST(MatrixStats, StatsFromLengthsValidatesSize) {
  EXPECT_THROW(stats_from_row_lengths(3, 4, {1, 2}), pd::Error);
}

TEST(MatrixStats, EmptyMatrix) {
  CsrF64 m;
  m.num_rows = 4;
  m.num_cols = 4;
  m.row_ptr = {0, 0, 0, 0, 0};
  const MatrixStats s = compute_stats(m);
  EXPECT_EQ(s.nnz, 0u);
  EXPECT_DOUBLE_EQ(s.empty_row_fraction, 1.0);
  EXPECT_EQ(s.mean_nnz_per_nonempty_row, 0.0);
  EXPECT_TRUE(cumulative_row_length_histogram(s).empty());
}

TEST(PaperTable1, MatchesThePublishedNumbers) {
  const auto& t = paper_table1();
  ASSERT_EQ(t.size(), 6u);
  EXPECT_EQ(t[0].name, "Liver 1");
  EXPECT_DOUBLE_EQ(t[0].rows, 2.97e6);
  EXPECT_DOUBLE_EQ(t[0].cols, 6.80e4);
  EXPECT_DOUBLE_EQ(t[0].nnz, 1.48e9);
  EXPECT_DOUBLE_EQ(t[3].nnz, 1.84e9);  // Liver 4, the largest
  EXPECT_EQ(t[4].name, "Prostate 1");
  EXPECT_DOUBLE_EQ(t[4].cols, 5.09e3);

  // Table I consistency: the published non-zero ratios (0.73%, 1.81%, ...)
  // follow from rows/cols/nnz.
  EXPECT_NEAR(t[0].nnz / (t[0].rows * t[0].cols), 0.0073, 0.0002);
  EXPECT_NEAR(t[4].nnz / (t[4].rows * t[4].cols), 0.0181, 0.0002);

  // The row-skew the paper highlights: rows are 40-200x the columns.
  for (const auto& info : t) {
    EXPECT_GE(info.rows / info.cols, 40.0);
    EXPECT_LE(info.rows / info.cols, 210.0);
  }
}

}  // namespace
}  // namespace pd::sparse
