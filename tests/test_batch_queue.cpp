// BatchQueue property test (ServiceBatchQueueProperty).
//
// BatchQueue is passive and deterministic — no threads, no clocks — so its
// scheduling logic can be tested exhaustively single-threaded.  A seeded
// pd::Rng drives random interleavings of submit / tick advance / pop_ready /
// mark_idle / expire / cancel against a shadow model, checking the queue's
// core invariants after every step:
//
//  * per-plan FIFO: the concatenation of popped batches for a plan equals
//    that plan's submission order minus cancelled/expired requests;
//  * a popped batch never exceeds batch_cap, is single-plan, and is only
//    produced when the plan is full, its head aged past flush_age_ticks, or
//    the caller drains;
//  * depth() never exceeds queue_bound, and submit() returns false exactly
//    at the bound;
//  * at most one in-flight batch per plan (pop_ready never returns a busy
//    plan until mark_idle);
//  * expire() removes exactly the queued requests whose deadline has passed.

#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "service/batch_queue.hpp"

namespace pd::service {
namespace {

struct ShadowRequest {
  std::uint64_t id;
  std::uint64_t deadline_tick;
};

class ServiceBatchQueueProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ServiceBatchQueueProperty, RandomInterleavingsKeepInvariants) {
  Rng rng(GetParam());
  BatchQueueConfig config;
  config.batch_cap = 1 + rng.uniform_index(8);
  config.queue_bound = 4 + rng.uniform_index(28);
  config.flush_age_ticks = 1 + rng.uniform_index(50);
  BatchQueue queue(config);

  const std::vector<std::string> plans = {"liver", "prostate", "hn"};
  std::map<std::string, std::deque<ShadowRequest>> shadow;
  std::map<std::string, bool> shadow_busy;
  std::set<std::uint64_t> live_ids;
  std::uint64_t now = 0;
  std::uint64_t next_id = 1;
  std::size_t shadow_depth = 0;

  const auto check_depth = [&] {
    ASSERT_EQ(queue.depth(), shadow_depth);
    ASSERT_LE(queue.depth(), config.queue_bound);
  };

  for (int step = 0; step < 4000; ++step) {
    const std::uint64_t op = rng.uniform_index(100);
    if (op < 45) {
      // submit
      const std::string& plan = plans[rng.uniform_index(plans.size())];
      QueuedRequest request;
      request.id = next_id;
      request.plan = plan;
      request.enqueue_tick = now;
      request.deadline_tick =
          rng.uniform_index(4) == 0 ? now + 1 + rng.uniform_index(80) : 0;
      const bool accepted = queue.submit(request);
      ASSERT_EQ(accepted, shadow_depth < config.queue_bound)
          << "submit must accept exactly below the bound";
      if (accepted) {
        shadow[plan].push_back(ShadowRequest{next_id, request.deadline_tick});
        live_ids.insert(next_id);
        ++shadow_depth;
      }
      ++next_id;
    } else if (op < 60) {
      // advance time
      now += 1 + rng.uniform_index(30);
    } else if (op < 80) {
      // pop_ready
      const bool drain = rng.uniform_index(5) == 0;
      std::vector<QueuedRequest> batch = queue.pop_ready(now, drain);
      if (!batch.empty()) {
        ASSERT_LE(batch.size(), config.batch_cap);
        const std::string& plan = batch.front().plan;
        ASSERT_FALSE(shadow_busy[plan]) << "popped a busy plan";
        std::deque<ShadowRequest>& pending = shadow[plan];
        ASSERT_GE(pending.size(), batch.size());
        const bool full = pending.size() >= config.batch_cap;
        const bool aged =
            now >= batch.front().enqueue_tick + config.flush_age_ticks;
        ASSERT_TRUE(full || aged || drain)
            << "popped a batch with no launch condition";
        for (const QueuedRequest& request : batch) {
          ASSERT_EQ(request.plan, plan) << "batch mixes plans";
          ASSERT_EQ(request.id, pending.front().id)
              << "batch is not a FIFO prefix of the plan's submissions";
          pending.pop_front();
          live_ids.erase(request.id);
          --shadow_depth;
        }
        shadow_busy[plan] = true;
      }
    } else if (op < 88) {
      // mark_idle (sometimes on a plan that is not busy — must be harmless)
      const std::string& plan = plans[rng.uniform_index(plans.size())];
      queue.mark_idle(plan);
      shadow_busy[plan] = false;
    } else if (op < 95) {
      // expire
      std::vector<QueuedRequest> dead = queue.expire(now);
      std::set<std::uint64_t> dead_ids;
      for (const QueuedRequest& request : dead) {
        ASSERT_NE(request.deadline_tick, 0u);
        ASSERT_LE(request.deadline_tick, now);
        dead_ids.insert(request.id);
      }
      for (auto& [plan, pending] : shadow) {
        for (auto it = pending.begin(); it != pending.end();) {
          const bool should_die =
              it->deadline_tick != 0 && it->deadline_tick <= now;
          ASSERT_EQ(should_die, dead_ids.count(it->id) != 0)
              << "expire() and the model disagree on id " << it->id;
          if (should_die) {
            live_ids.erase(it->id);
            it = pending.erase(it);
            --shadow_depth;
          } else {
            ++it;
          }
        }
      }
    } else {
      // cancel: half the time a live id, half the time a bogus one
      std::uint64_t id = next_id + 1000;  // unknown
      if (!live_ids.empty() && rng.uniform_index(2) == 0) {
        auto it = live_ids.begin();
        std::advance(it, rng.uniform_index(live_ids.size()));
        id = *it;
      }
      const bool cancelled = queue.cancel(id);
      ASSERT_EQ(cancelled, live_ids.count(id) != 0);
      if (cancelled) {
        for (auto& [plan, pending] : shadow) {
          for (auto it = pending.begin(); it != pending.end(); ++it) {
            if (it->id == id) {
              pending.erase(it);
              break;
            }
          }
        }
        live_ids.erase(id);
        --shadow_depth;
      }
    }
    check_depth();
  }

  // Drain everything out and confirm total FIFO consistency of what is left.
  for (const std::string& plan : plans) {
    queue.mark_idle(plan);
    shadow_busy[plan] = false;
  }
  while (queue.depth() > 0) {
    std::vector<QueuedRequest> batch = queue.pop_ready(now, /*drain=*/true);
    ASSERT_FALSE(batch.empty()) << "non-empty queue must drain";
    ASSERT_LE(batch.size(), config.batch_cap);
    std::deque<ShadowRequest>& pending = shadow[batch.front().plan];
    for (const QueuedRequest& request : batch) {
      ASSERT_EQ(request.id, pending.front().id);
      pending.pop_front();
      --shadow_depth;
    }
    queue.mark_idle(batch.front().plan);
  }
  for (const auto& [plan, pending] : shadow) {
    EXPECT_TRUE(pending.empty()) << "plan " << plan << " retained requests";
  }
  EXPECT_FALSE(queue.next_event_tick().has_value());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ServiceBatchQueueProperty,
                         ::testing::Values(0x5eedULL, 42ULL, 9001ULL,
                                           0xfeedfaceULL, 7ULL));

// Directed checks for the scheduling edge cases the random walk may not pin
// precisely: flush timing, next_event_tick, and the busy gate.
TEST(ServiceBatchQueueProperty, FlushAgeAndNextEventTick) {
  BatchQueueConfig config;
  config.batch_cap = 4;
  config.queue_bound = 16;
  config.flush_age_ticks = 100;
  BatchQueue queue(config);

  QueuedRequest request;
  request.id = 1;
  request.plan = "liver";
  request.enqueue_tick = 10;
  ASSERT_TRUE(queue.submit(request));

  // Below cap and below flush age: nothing pops, next event is the flush.
  EXPECT_TRUE(queue.pop_ready(/*now=*/50, /*drain=*/false).empty());
  ASSERT_TRUE(queue.next_event_tick().has_value());
  EXPECT_EQ(*queue.next_event_tick(), 110u);

  // At flush age the partial batch launches.
  std::vector<QueuedRequest> batch = queue.pop_ready(/*now=*/110, false);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch.front().id, 1u);

  // The plan is busy: a full batch queued behind it must not pop...
  for (std::uint64_t id = 2; id <= 5; ++id) {
    request.id = id;
    request.enqueue_tick = 110;
    ASSERT_TRUE(queue.submit(request));
  }
  EXPECT_TRUE(queue.pop_ready(/*now=*/500, /*drain=*/true).empty());
  // ...until mark_idle, at which point it is actionable immediately.  The
  // reported event tick is the head's enqueue tick (already in the past),
  // not a constant 0 — multi-queue consumers compare these ticks across
  // queues to serve the globally oldest head first.
  queue.mark_idle("liver");
  ASSERT_TRUE(queue.next_event_tick().has_value());
  EXPECT_EQ(*queue.next_event_tick(), 110u);
  EXPECT_EQ(queue.pop_ready(/*now=*/500, false).size(), 4u);
  queue.mark_idle("liver");
  EXPECT_EQ(queue.depth(), 0u);
}

TEST(ServiceBatchQueueProperty, OldestHeadWinsAcrossPlans) {
  BatchQueueConfig config;
  config.batch_cap = 2;
  config.queue_bound = 16;
  config.flush_age_ticks = 10;
  BatchQueue queue(config);

  QueuedRequest request;
  request.plan = "b_newer";
  request.id = 1;
  request.enqueue_tick = 5;
  ASSERT_TRUE(queue.submit(request));
  request.plan = "a_older";
  request.id = 2;
  request.enqueue_tick = 1;
  ASSERT_TRUE(queue.submit(request));

  // Both aged; the plan whose head waited longest goes first regardless of
  // map order.
  std::vector<QueuedRequest> first = queue.pop_ready(/*now=*/100, false);
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(first.front().plan, "a_older");
  std::vector<QueuedRequest> second = queue.pop_ready(/*now=*/100, false);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second.front().plan, "b_newer");
}

TEST(ServiceBatchQueueProperty, InteractivePlanBeatsOlderBulkPlan) {
  BatchQueueConfig config;
  config.batch_cap = 2;
  config.queue_bound = 16;
  config.flush_age_ticks = 10;
  BatchQueue queue(config);

  QueuedRequest request;
  request.plan = "bulk_older";
  request.id = 1;
  request.enqueue_tick = 1;
  request.priority = 1;
  ASSERT_TRUE(queue.submit(request));
  request.plan = "interactive_newer";
  request.id = 2;
  request.enqueue_tick = 5;
  request.priority = 0;
  ASSERT_TRUE(queue.submit(request));

  // Both aged past the flush deadline; the interactive head launches first
  // even though the bulk head is older...
  std::vector<QueuedRequest> first = queue.pop_ready(/*now=*/20, false);
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(first.front().plan, "interactive_newer");
  // ...and the bulk head follows — delayed, never dropped.
  std::vector<QueuedRequest> second = queue.pop_ready(/*now=*/20, false);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second.front().plan, "bulk_older");
}

TEST(ServiceBatchQueueProperty, BulkHeadEscalatesPastStarvationBound) {
  BatchQueueConfig config;
  config.batch_cap = 2;
  config.queue_bound = 16;
  config.flush_age_ticks = 10;
  BatchQueue queue(config);

  QueuedRequest request;
  request.plan = "bulk_ancient";
  request.id = 1;
  request.enqueue_tick = 0;
  request.priority = 1;
  ASSERT_TRUE(queue.submit(request));
  request.plan = "interactive_fresh";
  request.id = 2;
  request.enqueue_tick = 30;
  request.priority = 0;
  ASSERT_TRUE(queue.submit(request));

  // At now=45 the bulk head has waited 45 ticks >= kBulkEscalationAges (4)
  // * flush_age (10): it counts as interactive, and being older it wins —
  // sustained interactive traffic delays bulk by a bounded amount only.
  const std::uint64_t now = kBulkEscalationAges * config.flush_age_ticks + 5;
  std::vector<QueuedRequest> first = queue.pop_ready(now, false);
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(first.front().plan, "bulk_ancient");
}

TEST(ServiceBatchQueueProperty, MultiQueueConsumerStaysOldestHeadFair) {
  // Regression for the cross-queue fairness bug: next_event_tick reported a
  // literal 0 for a full non-busy plan, so a consumer polling one BatchQueue
  // per shard saw every full queue as infinitely old and served them in
  // iteration order, starving shards whose heads had genuinely waited
  // longest.  oldest_ready_head_tick (and the fixed next_event_tick) report
  // the real head tick; a consumer that always serves the queue with the
  // smallest value drains heads in global enqueue order.
  BatchQueueConfig config;
  config.batch_cap = 2;  // Two-request plans are full => launchable "now".
  config.queue_bound = 16;
  config.flush_age_ticks = 1000;  // Age alone never triggers a launch here.
  std::vector<BatchQueue> queues;
  queues.emplace_back(config);
  queues.emplace_back(config);
  queues.emplace_back(config);

  // Interleave full plans across the queues so iteration order (queue 0
  // first) disagrees with global head age.
  const struct {
    std::size_t queue;
    const char* plan;
    std::uint64_t tick;
  } plans[] = {
      {2, "p_oldest", 10}, {0, "p_mid", 20}, {1, "p_newer", 30},
      {0, "p_newest", 40},
  };
  std::uint64_t id = 1;
  for (const auto& p : plans) {
    QueuedRequest request;
    request.plan = p.plan;
    request.enqueue_tick = p.tick;
    request.id = id++;
    ASSERT_TRUE(queues[p.queue].submit(request));
    request.id = id++;
    ASSERT_TRUE(queues[p.queue].submit(request));
  }

  std::vector<std::string> served;
  while (true) {
    std::size_t best = queues.size();
    std::uint64_t best_tick = 0;
    for (std::size_t q = 0; q < queues.size(); ++q) {
      const std::optional<std::uint64_t> tick =
          queues[q].oldest_ready_head_tick(/*now=*/100, /*drain=*/false);
      if (tick && (best == queues.size() || *tick < best_tick)) {
        best = q;
        best_tick = *tick;
      }
    }
    if (best == queues.size()) {
      break;
    }
    std::vector<QueuedRequest> batch = queues[best].pop_ready(100, false);
    ASSERT_FALSE(batch.empty());
    served.push_back(batch.front().plan);
    queues[best].mark_idle(batch.front().plan);
  }
  const std::vector<std::string> want = {"p_oldest", "p_mid", "p_newer",
                                         "p_newest"};
  EXPECT_EQ(served, want);

  // next_event_tick agrees with the fairness key for full plans: it must
  // report the real head tick, never 0.
  QueuedRequest request;
  request.plan = "full";
  request.enqueue_tick = 77;
  request.id = id++;
  ASSERT_TRUE(queues[0].submit(request));
  request.id = id++;
  ASSERT_TRUE(queues[0].submit(request));
  ASSERT_TRUE(queues[0].next_event_tick().has_value());
  EXPECT_EQ(*queues[0].next_event_tick(), 77u);
}

TEST(ServiceBatchQueueProperty, OldestReadyHeadTickIsPriorityBlind) {
  BatchQueueConfig config;
  config.batch_cap = 4;
  config.queue_bound = 16;
  config.flush_age_ticks = 10;
  BatchQueue queue(config);

  QueuedRequest request;
  request.plan = "bulk";
  request.id = 1;
  request.enqueue_tick = 1;
  request.priority = 1;
  ASSERT_TRUE(queue.submit(request));
  request.plan = "interactive";
  request.id = 2;
  request.enqueue_tick = 5;
  request.priority = 0;
  ASSERT_TRUE(queue.submit(request));

  // Fairness observable: the oldest launchable head is the bulk one even
  // though pop_ready would serve the interactive plan first — head age and
  // service order are deliberately different measurements.
  const std::optional<std::uint64_t> tick =
      queue.oldest_ready_head_tick(/*now=*/20, /*drain=*/false);
  ASSERT_TRUE(tick.has_value());
  EXPECT_EQ(*tick, 1u);
  std::vector<QueuedRequest> first = queue.pop_ready(/*now=*/20, false);
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(first.front().plan, "interactive");
}

}  // namespace
}  // namespace pd::service
