// Tests for the batched multi-vector CSR SpMV.

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "kernels/multivector_csr.hpp"
#include "kernels/vector_csr.hpp"
#include "sparse/convert.hpp"
#include "sparse/random.hpp"

namespace pd::kernels {
namespace {

struct Batch {
  sparse::CsrMatrix<pd::Half> matrix;
  std::vector<std::vector<double>> xs;
};

Batch make_batch(std::size_t width, std::uint64_t seed) {
  Rng rng(seed);
  Batch b;
  b.matrix = sparse::convert_values<pd::Half>(sparse::random_csr(
      rng, 300, 90, 12.0, sparse::RandomStructure::kSkewed));
  for (std::size_t j = 0; j < width; ++j) {
    b.xs.push_back(sparse::random_vector(rng, b.matrix.num_cols, 0.1, 2.0));
  }
  return b;
}

TEST(MultiVector, EveryColumnBitwiseMatchesSingleVectorRuns) {
  const Batch b = make_batch(4, 1);
  gpusim::Gpu gpu(gpusim::make_a100());

  std::vector<std::vector<double>> ys(4,
                                      std::vector<double>(b.matrix.num_rows));
  std::vector<std::span<const double>> xs(b.xs.begin(), b.xs.end());
  std::vector<std::span<double>> yspans(ys.begin(), ys.end());
  run_vector_csr_multi<pd::Half, double>(gpu, b.matrix, xs,
                                         std::span<const std::span<double>>(yspans));

  for (std::size_t j = 0; j < 4; ++j) {
    std::vector<double> y_single(b.matrix.num_rows);
    run_vector_csr<pd::Half, double>(gpu, b.matrix, b.xs[j],
                                     std::span<double>(y_single));
    EXPECT_EQ(ys[j], y_single) << "batch column " << j;
  }
}

TEST(MultiVector, MatrixTrafficIsAmortized) {
  const Batch b = make_batch(4, 2);
  gpusim::Gpu gpu(gpusim::make_a100());

  std::vector<std::vector<double>> ys(4,
                                      std::vector<double>(b.matrix.num_rows));
  std::vector<std::span<const double>> xs(b.xs.begin(), b.xs.end());
  std::vector<std::span<double>> yspans(ys.begin(), ys.end());
  const SpmvRun multi = run_vector_csr_multi<pd::Half, double>(
      gpu, b.matrix, xs, std::span<const std::span<double>>(yspans));

  std::vector<double> y(b.matrix.num_rows);
  const SpmvRun single = run_vector_csr<pd::Half, double>(
      gpu, b.matrix, b.xs[0], std::span<double>(y));

  // 4 products for much less than 4x the DRAM traffic...
  EXPECT_LT(multi.stats.dram_bytes(), 2.5 * single.stats.dram_bytes());
  // ...which means higher per-launch operational intensity.
  EXPECT_GT(multi.stats.operational_intensity(),
            2.0 * single.stats.operational_intensity());
  // FLOPs scale with the batch exactly.
  EXPECT_EQ(multi.stats.compute.flops, 4 * single.stats.compute.flops);
  // And the register cost is charged to occupancy.
  EXPECT_GT(multi.config.regs_per_thread, single.config.regs_per_thread);
}

TEST(MultiVector, ReproducibleAcrossSchedules) {
  const Batch b = make_batch(3, 3);
  gpusim::Gpu gpu(gpusim::make_a100());
  std::vector<std::span<const double>> xs(b.xs.begin(), b.xs.end());

  auto run_with_seed = [&](std::uint64_t seed) {
    std::vector<std::vector<double>> ys(
        3, std::vector<double>(b.matrix.num_rows));
    std::vector<std::span<double>> yspans(ys.begin(), ys.end());
    run_vector_csr_multi<pd::Half, double>(
        gpu, b.matrix, xs, std::span<const std::span<double>>(yspans), 512,
        seed);
    return ys;
  };
  EXPECT_EQ(run_with_seed(7), run_with_seed(7777));
}

TEST(MultiVector, ValidatesInputs) {
  const Batch b = make_batch(2, 4);
  gpusim::Gpu gpu(gpusim::make_a100());
  std::vector<std::vector<double>> ys(2,
                                      std::vector<double>(b.matrix.num_rows));
  std::vector<std::span<const double>> xs(b.xs.begin(), b.xs.end());
  std::vector<std::span<double>> yspans(ys.begin(), ys.end());

  // Mismatched batch widths.
  std::vector<std::span<double>> one(yspans.begin(), yspans.begin() + 1);
  EXPECT_THROW((run_vector_csr_multi<pd::Half, double>(
                   gpu, b.matrix, xs, std::span<const std::span<double>>(one))),
               pd::Error);

  // Over-wide batch.
  std::vector<std::vector<double>> many_x(
      kMaxSpmvBatch + 1, std::vector<double>(b.matrix.num_cols, 1.0));
  std::vector<std::vector<double>> many_y(
      kMaxSpmvBatch + 1, std::vector<double>(b.matrix.num_rows));
  std::vector<std::span<const double>> mxs(many_x.begin(), many_x.end());
  std::vector<std::span<double>> mys(many_y.begin(), many_y.end());
  EXPECT_THROW((run_vector_csr_multi<pd::Half, double>(
                   gpu, b.matrix, mxs, std::span<const std::span<double>>(mys))),
               pd::Error);

  // Wrong vector length.
  std::vector<double> short_x(b.matrix.num_cols - 1, 1.0);
  std::vector<std::span<const double>> bad_xs = {short_x, b.xs[1]};
  EXPECT_THROW((run_vector_csr_multi<pd::Half, double>(
                   gpu, b.matrix, bad_xs,
                   std::span<const std::span<double>>(yspans))),
               pd::Error);
}

}  // namespace
}  // namespace pd::kernels
