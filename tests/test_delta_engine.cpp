// Delta-engine differential suite (docs/delta_engine.md).
//
// The incremental delta path promises two contracts and this suite pins both:
//  (a) DeltaMode::kBitwise — compute_delta is EXPECT_EQ-bitwise-identical to
//      a full compute of the new weights, on every Table I beam, both
//      backends, thread counts {1, 2, 5}, every kernel family and precision
//      mode, and through the service (submit_delta);
//  (b) DeltaMode::kFast — the scatter-add update stays inside a *derived*
//      per-row bound (test_fast_tier.cpp style), and the bound is tight
//      enough to reject a deliberately miscompiled reference.
// Plus the structural pieces: the CSC sidecar is exactly the transpose,
// last_delta() reports the true touch counts, and the tuner's delta
// threshold does its streamed-bytes arithmetic (tie goes to full recompute).
//
// Suite names start with Delta so CI can run `ctest -R Delta` under the
// sanitizers.

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cases/cases.hpp"
#include "common/rng.hpp"
#include "common/threadcheck.hpp"
#include "gpusim/device.hpp"
#include "kernels/dose_engine.hpp"
#include "kernels/tuner.hpp"
#include "opt/optimizer.hpp"
#include "service/dose_service.hpp"
#include "sparse/coo.hpp"
#include "sparse/random.hpp"
#include "sparse/reference.hpp"

namespace pd::kernels {
namespace {

/// Clean-suite enforcement (docs/threadcheck.md): under
/// PROTONDOSE_THREADCHECK=1 (the CI threadcheck job) this binary's service
/// and delta traffic runs instrumented, and at exit the analyzer must have
/// found nothing.
class ThreadcheckCleanEnv : public ::testing::Environment {
 public:
  void TearDown() override {
    if (!threadcheck::enabled()) {
      return;
    }
    const threadcheck::Report report = threadcheck::analyze();
    EXPECT_TRUE(report.clean()) << report.summary();
  }
};
[[maybe_unused]] const auto* const kThreadcheckCleanEnv =
    ::testing::AddGlobalTestEnvironment(new ThreadcheckCleanEnv);

using Backend = DoseEngine::Backend;
using DeltaMode = DoseEngine::DeltaMode;
using Mode = DoseEngine::Mode;

const std::vector<cases::BeamDataset>& beams() {
  static const std::vector<cases::BeamDataset> b =
      cases::generate_all_beams(0.2);
  return b;
}

constexpr double kUlp53 = 1.1102230246251565e-16;  // 2^-53
constexpr double kUlp24 = 5.9604644775390625e-8;   // 2^-24

std::vector<double> base_weights_for(std::uint64_t cols, std::uint64_t seed) {
  Rng rng(seed);
  return sparse::random_vector(rng, cols, 0.5, 2.0);
}

/// Change ~frac of the weights (at least one), multiplicatively so changed
/// entries are bounded away from their old values.
std::vector<double> perturb(const std::vector<double>& w, double frac,
                            std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> w_new = w;
  const std::size_t k = std::min<std::size_t>(
      w.size(),
      std::max<std::size_t>(
          1, static_cast<std::size_t>(frac * static_cast<double>(w.size()))));
  std::vector<std::uint8_t> used(w.size(), 0);
  for (std::size_t changed = 0; changed < k;) {
    const std::size_t j = rng.uniform_index(w.size());
    if (used[j] == 0) {
      used[j] = 1;
      w_new[j] = w[j] * 1.5 + 0.1;
      ++changed;
    }
  }
  return w_new;
}

void expect_bitwise(const std::vector<double>& got,
                    const std::vector<double>& want, const char* what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (std::size_t r = 0; r < got.size(); ++r) {
    ASSERT_EQ(std::bit_cast<std::uint64_t>(got[r]),
              std::bit_cast<std::uint64_t>(want[r]))
        << what << ": row " << r << " (" << got[r] << " vs " << want[r] << ")";
  }
}

/// kBitwise differential on one engine: delta result must match the full
/// compute of the new weights bit for bit, at every thread count.
void check_bitwise_delta(DoseEngine& engine, const std::string& label,
                         double frac = 0.02) {
  const std::vector<double> w = base_weights_for(engine.num_spots(), 211);
  const std::vector<double> w_new = perturb(w, frac, 977);
  const std::vector<double> base = engine.compute(w);
  const std::vector<double> full = engine.compute(w_new);
  for (const unsigned threads : {1u, 2u, 5u}) {
    engine.set_native_threads(threads);
    const std::vector<double> delta =
        engine.compute_delta(base, w, w_new, DeltaMode::kBitwise);
    expect_bitwise(delta, full,
                   (label + " t" + std::to_string(threads)).c_str());
  }
  EXPECT_GT(engine.last_delta().changed_cols, 0u);
}

// --- (a) the bitwise contract -----------------------------------------------

TEST(DeltaCases, BitwiseEqualOnAllBeamsNativeBackend) {
  for (const auto& ds : beams()) {
    DoseEngine engine(ds.beam.matrix, gpusim::make_a100(), Mode::kHalfDouble,
                      kDefaultVectorTpb, SpmvFamily::kVector,
                      Backend::kNative);
    check_bitwise_delta(engine, ds.label + " native");
  }
}

TEST(DeltaCases, BitwiseEqualOnAllBeamsGpusimBackend) {
  // The delta replay executes host-native even on gpusim engines; the
  // cross-backend bitwise contract makes the result identical to the
  // simulated full compute too.
  for (const auto& ds : beams()) {
    DoseEngine engine(ds.beam.matrix, gpusim::make_a100(), Mode::kHalfDouble,
                      kDefaultVectorTpb, SpmvFamily::kVector,
                      Backend::kGpusim);
    engine.set_engine_options({gpusim::TraceMode::kFunctionalOnly, 0});
    check_bitwise_delta(engine, ds.label + " gpusim");
  }
}

TEST(DeltaCases, BitwiseEqualForEveryKernelFamily) {
  const auto& ds = beams().front();
  for (const SpmvFamily family :
       {SpmvFamily::kVector, SpmvFamily::kClassical, SpmvFamily::kRowSplit,
        SpmvFamily::kAdaptive}) {
    DoseEngine engine(ds.beam.matrix, gpusim::make_a100(), Mode::kHalfDouble,
                      kDefaultVectorTpb, family, Backend::kNative);
    check_bitwise_delta(engine,
                        "family " + std::to_string(static_cast<int>(family)));
  }
}

TEST(DeltaCases, BitwiseEqualForEveryPrecisionMode) {
  const auto& ds = beams().front();
  for (const Mode mode : {Mode::kHalfDouble, Mode::kSingle, Mode::kDouble}) {
    for (const SpmvFamily family :
         {SpmvFamily::kVector, SpmvFamily::kAdaptive, SpmvFamily::kRowSplit}) {
      DoseEngine engine(ds.beam.matrix, gpusim::make_a100(), mode,
                        kDefaultVectorTpb, family, Backend::kNative);
      check_bitwise_delta(engine, "mode " +
                                      std::to_string(static_cast<int>(mode)) +
                                      " family " +
                                      std::to_string(static_cast<int>(family)));
    }
  }
}

TEST(DeltaCases, ChainedAppliesStayBitwise) {
  // An optimizer loop applies deltas on top of deltas; drift would compound.
  const auto& ds = beams().front();
  DoseEngine engine(ds.beam.matrix, gpusim::make_a100(), Mode::kHalfDouble,
                    kDefaultVectorTpb, SpmvFamily::kVector, Backend::kNative);
  std::vector<double> w = base_weights_for(engine.num_spots(), 5);
  std::vector<double> dose = engine.compute(w);
  for (int step = 0; step < 6; ++step) {
    const std::vector<double> w_new =
        perturb(w, 0.03, 42 + static_cast<std::uint64_t>(step));
    engine.apply_delta(dose, w, w_new, DeltaMode::kBitwise);
    w = w_new;
  }
  expect_bitwise(dose, engine.compute(w), "chained applies");
}

TEST(DeltaCases, EdgeCases) {
  const auto& ds = beams().front();
  DoseEngine engine(ds.beam.matrix, gpusim::make_a100(), Mode::kHalfDouble,
                    kDefaultVectorTpb, SpmvFamily::kVector, Backend::kNative);
  std::vector<double> w = base_weights_for(engine.num_spots(), 7);
  w[0] = 0.0;
  const std::vector<double> base = engine.compute(w);

  // No change: nothing touched, dose returned verbatim.
  const std::vector<double> same =
      engine.compute_delta(base, w, w, DeltaMode::kBitwise);
  expect_bitwise(same, base, "no-op delta");
  EXPECT_EQ(engine.last_delta().changed_cols, 0u);
  EXPECT_EQ(engine.last_delta().delta_nnz, 0u);
  EXPECT_EQ(engine.last_delta().touched_rows, 0u);

  // A sign flip on zero is invisible to operator== but not to the bitwise
  // contract — diff_weights compares bits, so it must be treated as changed.
  std::vector<double> w_negzero = w;
  w_negzero[0] = -0.0;
  (void)engine.compute_delta(base, w, w_negzero, DeltaMode::kBitwise);
  EXPECT_EQ(engine.last_delta().changed_cols, 1u);

  // Every column changed: the worklist degenerates to a full recompute and
  // must still match bit for bit.
  std::vector<double> w_all(w.size());
  for (std::size_t j = 0; j < w.size(); ++j) {
    w_all[j] = w[j] * 2.0 + 0.25;
  }
  expect_bitwise(engine.compute_delta(base, w, w_all, DeltaMode::kBitwise),
                 engine.compute(w_all), "all columns changed");
}

// --- sidecar + counters ------------------------------------------------------

TEST(DeltaSidecar, MatchesTheTransposeExactly) {
  const auto& ds = beams().front();
  // Mode::kDouble stores the matrix unconverted, so the sidecar must equal
  // the transpose of the input with no precision caveats.
  DoseEngine engine(ds.beam.matrix, gpusim::make_a100(), Mode::kDouble,
                    kDefaultVectorTpb, SpmvFamily::kVector, Backend::kNative);
  const CscSidecar& csc = engine.csc_sidecar();
  const sparse::CsrF64 t = sparse::transpose(ds.beam.matrix);
  ASSERT_EQ(csc.num_cols, t.num_rows);
  ASSERT_EQ(csc.nnz(), t.nnz());
  for (std::uint64_t c = 0; c <= csc.num_cols; ++c) {
    ASSERT_EQ(csc.col_ptr[c], t.row_ptr[c]) << "col " << c;
  }
  for (std::uint64_t k = 0; k < csc.nnz(); ++k) {
    ASSERT_EQ(csc.row_idx[k], t.col_idx[k]) << "entry " << k;
    ASSERT_EQ(std::bit_cast<std::uint64_t>(csc.values[k]),
              std::bit_cast<std::uint64_t>(t.values[k]))
        << "entry " << k;
  }
}

TEST(DeltaSidecar, LastDeltaReportsTrueTouchCounts) {
  const auto& ds = beams().front();
  DoseEngine engine(ds.beam.matrix, gpusim::make_a100(), Mode::kHalfDouble,
                    kDefaultVectorTpb, SpmvFamily::kVector, Backend::kNative);
  const std::vector<double> w = base_weights_for(engine.num_spots(), 13);
  std::vector<double> w_new = w;
  const std::uint32_t c0 = 1, c1 = static_cast<std::uint32_t>(w.size() / 2);
  w_new[c0] += 0.5;
  w_new[c1] += 0.5;
  const std::vector<double> base = engine.compute(w);
  (void)engine.compute_delta(base, w, w_new, DeltaMode::kBitwise);

  const CscSidecar& csc = engine.csc_sidecar();
  const DoseEngine::DeltaRun& run = engine.last_delta();
  EXPECT_EQ(run.mode, DeltaMode::kBitwise);
  EXPECT_EQ(run.changed_cols, 2u);
  EXPECT_EQ(run.delta_nnz, csc.col_nnz(c0) + csc.col_nnz(c1));
  // touched_rows = |union of the two columns' row sets|.
  std::vector<std::uint32_t> rows;
  for (const std::uint32_t c : {c0, c1}) {
    for (std::uint32_t k = csc.col_ptr[c]; k < csc.col_ptr[c + 1]; ++k) {
      rows.push_back(csc.row_idx[k]);
    }
  }
  std::sort(rows.begin(), rows.end());
  rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
  EXPECT_EQ(run.touched_rows, rows.size());
  // delta cost ∝ |Δw| nnz: two columns touch a tiny fraction of the matrix.
  EXPECT_LT(run.delta_nnz, engine.stats().nnz / 4);

  (void)engine.compute_delta(base, w, w_new, DeltaMode::kFast);
  EXPECT_EQ(engine.last_delta().mode, DeltaMode::kFast);
  EXPECT_EQ(engine.last_delta().delta_nnz, run.delta_nnz);
  EXPECT_EQ(engine.last_delta().touched_rows, 0u);  // fast builds no worklist
}

// --- (b) the fast mode's derived bound --------------------------------------

/// Derived per-row tolerance for |fast_delta - full_compute(new)|:
///
///   bound_r = 4 n_r u (S_r + S'_r)  +  4 (m_r + 1) u (|base_r| + T_r)
///
/// S_r = Σ|v_k w_k|, S'_r = Σ|v_k w'_k| cover both full computes'
/// accumulation slack (each side within ~n·u of its exact sum, first-order);
/// the second term covers the m_r scatter-add roundings the fast update
/// performs on top of the base value (T_r = Σ_changed |v_k Δw_k| bounds the
/// running value's excursion; +1 for the product roundings).  u is 2^-24
/// when the bitwise side accumulates in float (Mode::kSingle), else 2^-53.
std::vector<double> derive_delta_bounds(const sparse::CsrF64& wide,
                                        const std::vector<double>& w,
                                        const std::vector<double>& w_new,
                                        const std::vector<double>& base,
                                        double acc_ulp) {
  std::vector<double> bound(wide.num_rows, 0.0);
  for (std::uint64_t r = 0; r < wide.num_rows; ++r) {
    const std::uint64_t n = wide.row_nnz(r);
    double s_base = 0.0, s_new = 0.0, t_delta = 0.0;
    std::uint64_t m = 0;
    for (std::uint32_t k = wide.row_ptr[r]; k < wide.row_ptr[r + 1]; ++k) {
      const std::uint32_t c = wide.col_idx[k];
      const double av = std::fabs(wide.values[k]);
      s_base += av * std::fabs(w[c]);
      s_new += av * std::fabs(w_new[c]);
      if (std::bit_cast<std::uint64_t>(w[c]) !=
          std::bit_cast<std::uint64_t>(w_new[c])) {
        t_delta += av * std::fabs(w_new[c] - w[c]);
        ++m;
      }
    }
    bound[r] = 4.0 * static_cast<double>(n) * acc_ulp * (s_base + s_new) +
               4.0 * static_cast<double>(m + 1) * acc_ulp *
                   (std::fabs(base[r]) + t_delta);
  }
  return bound;
}

TEST(DeltaFastBound, WithinDerivedBoundOnAllBeams) {
  for (const auto& ds : beams()) {
    for (const Mode mode : {Mode::kHalfDouble, Mode::kSingle}) {
      DoseEngine engine(ds.beam.matrix, gpusim::make_a100(), mode,
                        kDefaultVectorTpb, SpmvFamily::kVector,
                        Backend::kNative);
      const std::vector<double> w = base_weights_for(engine.num_spots(), 31);
      const std::vector<double> w_new = perturb(w, 0.05, 67);
      const std::vector<double> base = engine.compute(w);
      const std::vector<double> full = engine.compute(w_new);
      const std::vector<double> fast =
          engine.compute_delta(base, w, w_new, DeltaMode::kFast);
      const double acc_ulp = mode == Mode::kSingle ? kUlp24 : kUlp53;
      const std::vector<double> bound = derive_delta_bounds(
          engine.stored_matrix_as_double(), w, w_new, base, acc_ulp);
      for (std::size_t r = 0; r < fast.size(); ++r) {
        ASSERT_LE(std::fabs(fast[r] - full[r]), bound[r])
            << ds.label << " row " << r;
      }
    }
  }
}

TEST(DeltaFastBound, CatchesAnOffByOneColumnBug) {
  // Tightness: a miscompiled full-recompute reference (every entry reads its
  // right neighbour's weight) must violate the bound on a decisive majority
  // of rows.  Every column changes so every nonempty row is exercised.
  const auto& ds = beams().front();
  DoseEngine engine(ds.beam.matrix, gpusim::make_a100(), Mode::kHalfDouble,
                    kDefaultVectorTpb, SpmvFamily::kVector, Backend::kNative);
  const std::vector<double> w = base_weights_for(engine.num_spots(), 1234);
  std::vector<double> w_new(w.size());
  for (std::size_t j = 0; j < w.size(); ++j) {
    w_new[j] = w[j] * 1.5 + 0.25;
  }
  const std::vector<double> base = engine.compute(w);
  const std::vector<double> fast =
      engine.compute_delta(base, w, w_new, DeltaMode::kFast);
  const sparse::CsrF64 wide = engine.stored_matrix_as_double();

  std::vector<double> buggy(wide.num_rows, 0.0);
  for (std::uint64_t r = 0; r < wide.num_rows; ++r) {
    double acc = 0.0;
    for (std::uint32_t k = wide.row_ptr[r]; k < wide.row_ptr[r + 1]; ++k) {
      acc += wide.values[k] * w_new[(wide.col_idx[k] + 1) % wide.num_cols];
    }
    buggy[r] = acc;
  }

  const std::vector<double> bound =
      derive_delta_bounds(wide, w, w_new, base, kUlp53);
  std::uint64_t violations = 0, nonempty = 0;
  for (std::uint64_t r = 0; r < wide.num_rows; ++r) {
    nonempty += wide.row_nnz(r) > 0 ? 1 : 0;
    violations += std::fabs(fast[r] - buggy[r]) > bound[r] ? 1 : 0;
  }
  EXPECT_GT(violations, nonempty / 2);
}

// --- tuner -------------------------------------------------------------------

TEST(DeltaTuner, ThresholdFromStreamedBytes) {
  // nnz/cols = 10 entries per column, 28 B each: updating every column would
  // stream 28000 B.  A full CSR pass streams 14000 B, so delta pays off only
  // below half the columns.
  const DeltaThreshold t = delta_threshold(14000, 1000, 100);
  EXPECT_EQ(t.full_bytes, 14000u);
  EXPECT_DOUBLE_EQ(t.delta_bytes_per_col, 280.0);
  EXPECT_DOUBLE_EQ(t.breakeven_changed_frac, 0.5);
  EXPECT_TRUE(t.prefer_delta(0.49));
  EXPECT_FALSE(t.prefer_delta(0.51));
}

TEST(DeltaTuner, TieGoesToFullRecompute) {
  const DeltaThreshold t = delta_threshold(14000, 1000, 100);
  // Exactly at breakeven the bytes are equal; full recompute wins the tie
  // (one sequential pass, no worklist bookkeeping).
  EXPECT_FALSE(t.prefer_delta(t.breakeven_changed_frac));
}

TEST(DeltaTuner, BreakevenCapsAtOneAndHandlesEmpty) {
  // CSR streams more than updating every column: delta always wins, but the
  // fraction is still capped at 1.
  EXPECT_DOUBLE_EQ(delta_threshold(1u << 20, 1000, 100).breakeven_changed_frac,
                   1.0);
  EXPECT_DOUBLE_EQ(delta_threshold(0, 0, 0).breakeven_changed_frac, 1.0);
  // On a real beam the threshold is a proper fraction: half-precision CSR
  // streams fewer bytes per nnz than the delta path's 28.
  const auto& ds = beams().front();
  DoseEngine engine(ds.beam.matrix, gpusim::make_a100(), Mode::kHalfDouble,
                    kDefaultVectorTpb, SpmvFamily::kVector, Backend::kNative);
  const sparse::MatrixStats& st = engine.stats();
  const DeltaThreshold t =
      delta_threshold(st.csr_bytes(2, 4), st.nnz, st.cols);
  EXPECT_GT(t.breakeven_changed_frac, 0.0);
  EXPECT_LT(t.breakeven_changed_frac, 1.0);
  EXPECT_TRUE(t.prefer_delta(0.01));
}

// --- service -----------------------------------------------------------------

sparse::CsrF64 plan_matrix() {
  Rng rng(77);
  return sparse::random_csr(rng, 300, 90, 12.0,
                            sparse::RandomStructure::kSkewed);
}

TEST(DeltaService, SubmitDeltaBitwiseDifferential) {
  constexpr std::uint64_t kCols = 90;
  service::ServiceConfig config;
  config.workers = 2;
  config.batch_cap = 4;
  config.flush_deadline_ms = 0.5;
  config.engine.device = gpusim::make_a100();
  config.engine.backend = Backend::kNative;
  service::DoseService svc(config);
  svc.register_plan("p", plan_matrix);

  DoseEngine oracle(plan_matrix(), gpusim::make_a100(), Mode::kHalfDouble,
                    kDefaultVectorTpb, SpmvFamily::kVector, Backend::kNative);

  const std::vector<double> w0 = base_weights_for(kCols, 3);
  auto base = std::make_shared<service::DeltaBase>();
  base->key = 9;
  base->weights = w0;
  base->dose = oracle.compute(w0);

  struct Sent {
    service::Ticket ticket;
    std::vector<double> weights;
    bool is_delta;
  };
  std::vector<Sent> sent;
  for (int i = 0; i < 24; ++i) {
    if (i % 2 == 0) {
      std::vector<double> w_new = perturb(w0, 0.05, 500 + i);
      Sent s{svc.submit_delta("p", base, w_new), w_new, true};
      sent.push_back(std::move(s));
    } else {
      Rng rng(1000 + i);
      std::vector<double> w = sparse::random_vector(rng, kCols, 0.0, 2.0);
      Sent s{svc.submit("p", w), w, false};
      sent.push_back(std::move(s));
    }
  }
  svc.drain();
  for (Sent& s : sent) {
    service::DoseResult r = s.ticket.result.get();
    ASSERT_EQ(r.status, service::RequestStatus::kOk);
    // Both full and bitwise-delta requests meet the same contract: bitwise
    // identical to a sequential full compute of the request's weights.
    expect_bitwise(r.dose, oracle.compute(s.weights),
                   s.is_delta ? "delta request" : "full request");
  }
  const service::ServiceStats stats = svc.stats();
  EXPECT_GT(stats.delta_batches, 0u);
  EXPECT_GT(stats.batches, stats.delta_batches);  // full launches too
}

TEST(DeltaService, FastModeRequestStaysInBound) {
  service::ServiceConfig config;
  config.workers = 1;
  config.engine.device = gpusim::make_a100();
  config.engine.backend = Backend::kNative;
  service::DoseService svc(config);
  svc.register_plan("p", plan_matrix);

  DoseEngine oracle(plan_matrix(), gpusim::make_a100(), Mode::kHalfDouble,
                    kDefaultVectorTpb, SpmvFamily::kVector, Backend::kNative);
  const std::vector<double> w0 = base_weights_for(90, 19);
  auto base = std::make_shared<service::DeltaBase>();
  base->weights = w0;
  base->dose = oracle.compute(w0);

  const std::vector<double> w_new = perturb(w0, 0.1, 23);
  service::DeltaOptions opts;
  opts.mode = DeltaMode::kFast;
  service::Ticket t = svc.submit_delta("p", base, w_new, opts);
  svc.drain();
  service::DoseResult r = t.result.get();
  ASSERT_EQ(r.status, service::RequestStatus::kOk);
  const std::vector<double> full = oracle.compute(w_new);
  const std::vector<double> bound = derive_delta_bounds(
      oracle.stored_matrix_as_double(), w0, w_new, base->dose, kUlp53);
  for (std::size_t i = 0; i < full.size(); ++i) {
    ASSERT_LE(std::fabs(r.dose[i] - full[i]), bound[i]) << "row " << i;
  }
}

TEST(DeltaService, BadBaseFailsAloneAndNullBaseImmediately) {
  service::ServiceConfig config;
  config.workers = 1;
  config.batch_cap = 4;
  config.engine.device = gpusim::make_a100();
  config.engine.backend = Backend::kNative;
  service::DoseService svc(config);
  svc.register_plan("p", plan_matrix);

  service::Ticket null_t = svc.submit_delta("p", nullptr, {});
  service::DoseResult null_r = null_t.result.get();
  EXPECT_EQ(null_r.status, service::RequestStatus::kFailed);

  DoseEngine oracle(plan_matrix(), gpusim::make_a100(), Mode::kHalfDouble,
                    kDefaultVectorTpb, SpmvFamily::kVector, Backend::kNative);
  const std::vector<double> w0 = base_weights_for(90, 29);
  auto good = std::make_shared<service::DeltaBase>();
  good->key = 1;
  good->weights = w0;
  good->dose = oracle.compute(w0);
  auto bad = std::make_shared<service::DeltaBase>();
  bad->key = 1;  // same exec key: coalesces with the good request
  bad->weights = w0;
  bad->dose = std::vector<double>(3, 0.0);  // wrong length

  const std::vector<double> w_new = perturb(w0, 0.05, 31);
  service::Ticket bad_t = svc.submit_delta("p", bad, w_new);
  service::Ticket good_t = svc.submit_delta("p", good, w_new);
  svc.drain();
  service::DoseResult bad_r = bad_t.result.get();
  service::DoseResult good_r = good_t.result.get();
  EXPECT_EQ(bad_r.status, service::RequestStatus::kFailed);
  ASSERT_EQ(good_r.status, service::RequestStatus::kOk);
  expect_bitwise(good_r.dose, oracle.compute(w_new), "good batch-mate");
}

TEST(DeltaService, QueueKeepsDeltaTrafficApartFromFullComputes) {
  // Delta exec keys live in their own key space (top bit) split by base key
  // and mode; the queue must never coalesce them with full computes or with
  // deltas against a different base.
  service::BatchQueue queue(service::BatchQueueConfig{8, 64, 1000});
  const std::uint32_t kDeltaBase5 = 0x80000000u | 5u;
  const std::uint32_t kDeltaBase5Fast = 0x80000000u | 0x40000000u | 5u;
  const std::uint32_t kDeltaBase6 = 0x80000000u | 6u;
  const auto push = [&](std::uint64_t id, std::uint32_t key) {
    service::QueuedRequest r;
    r.id = id;
    r.plan = "p";
    r.enqueue_tick = id;
    r.exec_key = key;
    ASSERT_TRUE(queue.submit(std::move(r)));
  };
  push(1, 0);             // full compute
  push(2, kDeltaBase5);   // delta, base 5
  push(3, kDeltaBase5);   // delta, base 5 — coalesces with 2
  push(4, kDeltaBase6);   // delta, base 6
  push(5, kDeltaBase5Fast);  // fast-mode delta, base 5

  const auto ids = [](const std::vector<service::QueuedRequest>& batch) {
    std::vector<std::uint64_t> v;
    for (const auto& r : batch) {
      v.push_back(r.id);
    }
    return v;
  };
  EXPECT_EQ(ids(queue.pop_ready(0, true)), (std::vector<std::uint64_t>{1}));
  queue.mark_idle("p");
  EXPECT_EQ(ids(queue.pop_ready(0, true)),
            (std::vector<std::uint64_t>{2, 3}));
  queue.mark_idle("p");
  EXPECT_EQ(ids(queue.pop_ready(0, true)), (std::vector<std::uint64_t>{4}));
  queue.mark_idle("p");
  EXPECT_EQ(ids(queue.pop_ready(0, true)), (std::vector<std::uint64_t>{5}));
  queue.mark_idle("p");
  EXPECT_EQ(queue.depth(), 0u);
}

// --- optimizer warm start ----------------------------------------------------

TEST(DeltaOptimizer, WarmStartKeepsTheTrajectoryBitwise) {
  // Identical configs except the warm start: the delta replay is bitwise
  // equal to the full compute, so weights, dose, and objective history must
  // match exactly — while the warm-started run serves some forward products
  // via compute_delta.
  const auto def = cases::prostate_case(0.2);
  const auto patient = cases::build_phantom(def);
  const sparse::CsrF64 D = cases::generate_beam(def, patient, 0).matrix;
  std::vector<double> probe(D.num_rows);
  sparse::reference_spmv(D, std::vector<double>(D.num_cols, 1.0), probe);
  double max_dose = 0.0;
  for (const double d : probe) max_dose = std::max(max_dose, d);
  const auto objective = opt::DoseObjective::standard_goals(
      patient, 0.5 * max_dose, 0.2 * max_dose);

  opt::OptimizerConfig off;
  off.max_iterations = 12;
  off.delta_warm_start = false;
  opt::OptimizerConfig on = off;
  on.delta_warm_start = true;
  // Force the warm start to engage regardless of the matrix's breakeven:
  // the projection won't pin enough spots in 12 iterations on this phantom.
  on.delta_changed_frac = 1.1;
  on.delta_stable_iters = 1;

  opt::PlanOptimizer opt_off(D, objective, gpusim::make_a100(), off);
  opt::PlanOptimizer opt_on(D, objective, gpusim::make_a100(), on);
  const opt::OptimizerResult r_off = opt_off.optimize();
  const opt::OptimizerResult r_on = opt_on.optimize();

  EXPECT_EQ(r_off.iterations, r_on.iterations);
  EXPECT_EQ(r_off.objective_history, r_on.objective_history);
  expect_bitwise(r_on.spot_weights, r_off.spot_weights, "weights");
  expect_bitwise(r_on.dose, r_off.dose, "dose");
  EXPECT_EQ(r_off.delta_spmv_count, 0u);
  EXPECT_EQ(r_off.warm_start_iteration, 0u);
  EXPECT_GT(r_on.delta_spmv_count, 0u);
  EXPECT_GT(r_on.warm_start_iteration, 0u);
  EXPECT_EQ(r_on.spmv_count, r_off.spmv_count);
}

}  // namespace
}  // namespace pd::kernels
