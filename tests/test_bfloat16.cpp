// Tests for the bfloat16 storage alternative.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/rng.hpp"
#include "fp16/bfloat16.hpp"
#include "fp16/half.hpp"

namespace pd {
namespace {

TEST(Bfloat16, SizeIsTwoBytes) { EXPECT_EQ(sizeof(Bfloat16), 2u); }

TEST(Bfloat16, ExhaustiveBitRoundTrip) {
  for (std::uint32_t bits = 0; bits <= 0xffff; ++bits) {
    const Bfloat16 b = Bfloat16::from_bits(static_cast<std::uint16_t>(bits));
    if (b.is_nan()) {
      continue;
    }
    EXPECT_EQ(Bfloat16(b.to_float()).bits(), b.bits()) << bits;
  }
}

TEST(Bfloat16, KnownValues) {
  EXPECT_EQ(Bfloat16(1.0f).bits(), 0x3f80);
  EXPECT_EQ(Bfloat16(-2.0f).bits(), 0xc000);
  EXPECT_EQ(Bfloat16(0.0f).bits(), 0x0000);
  EXPECT_TRUE(Bfloat16(0.0f) == Bfloat16(-0.0f));
}

TEST(Bfloat16, RoundToNearestEven) {
  // 1 + 2^-8 is halfway between 1.0 and 1 + 2^-7: ties to even (1.0).
  EXPECT_EQ(Bfloat16(1.0f + std::ldexp(1.0f, -8)).bits(), 0x3f80);
  // Just above the tie rounds up.
  EXPECT_EQ(Bfloat16(std::nextafter(1.0f + std::ldexp(1.0f, -8), 2.0f)).bits(),
            0x3f81);
  // 1 + 3*2^-8 ties to the even mantissa 0x02.
  EXPECT_EQ(Bfloat16(1.0f + 3.0f * std::ldexp(1.0f, -8)).bits(), 0x3f82);
}

TEST(Bfloat16, SpecialsPropagate) {
  EXPECT_TRUE(Bfloat16(std::numeric_limits<float>::infinity()).is_inf());
  EXPECT_TRUE(Bfloat16(std::numeric_limits<float>::quiet_NaN()).is_nan());
  EXPECT_TRUE(std::isinf(std::numeric_limits<Bfloat16>::infinity().to_float()));
  EXPECT_FALSE(Bfloat16::from_bits(0x7f80).is_nan());
  // Huge finite floats overflow to inf under RNE.
  EXPECT_TRUE(Bfloat16(3.4e38f).is_inf());
}

TEST(Bfloat16, WiderRangeThanHalf) {
  // bf16 represents 1e20; half overflows at 65504.
  EXPECT_FALSE(Bfloat16(1e20f).is_inf());
  EXPECT_TRUE(Half(1e20f).is_inf());
}

TEST(Bfloat16, CoarserPrecisionThanHalfInDoseRange) {
  // In the dose-value range the half ulp is 8x finer (10 vs 7 mantissa bits).
  Rng rng(5);
  double bf_err = 0.0, half_err = 0.0;
  for (int i = 0; i < 5000; ++i) {
    const double v = rng.uniform(1e-3, 1.0);
    bf_err = std::max(bf_err, std::fabs(Bfloat16(v).to_double() - v) / v);
    half_err = std::max(half_err, std::fabs(Half(v).to_double() - v) / v);
  }
  EXPECT_GT(bf_err, 4.0 * half_err);
  EXPECT_LE(bf_err, std::ldexp(1.0, -8) * 1.01);   // 0.5 ulp bound
  EXPECT_LE(half_err, std::ldexp(1.0, -11) * 1.01);
}

TEST(Bfloat16, QuantizationWithinHalfUlp) {
  Rng rng(6);
  for (int i = 0; i < 2000; ++i) {
    const double v = rng.uniform(1e-4, 1e4);
    const double q = Bfloat16(v).to_double();
    EXPECT_LE(std::fabs(q - v), 0.5 * bfloat16_ulp(v) * (1 + 1e-12));
  }
}

TEST(Bfloat16, ArithmeticRoundsThroughFloat) {
  const Bfloat16 a(1.5f), b(2.25f);
  EXPECT_EQ((a + b).bits(), Bfloat16(3.75f).bits());
  EXPECT_EQ((a * b).bits(), Bfloat16(1.5f * 2.25f).bits());
}

}  // namespace
}  // namespace pd
