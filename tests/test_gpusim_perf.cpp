// Tests for the analytic performance model: term selection, monotonicity,
// efficiency factors, calibration targets, and the CPU model.

#include <gtest/gtest.h>

#include <algorithm>

#include "gpusim/perf.hpp"

namespace pd::gpusim {
namespace {

PerfInput bandwidth_bound_input(double dram_bytes, double flops) {
  PerfInput in;
  in.stats.traffic.dram_read_bytes = static_cast<std::uint64_t>(dram_bytes);
  in.stats.traffic.l2_read_sectors =
      static_cast<std::uint64_t>(dram_bytes / 32.0);
  in.stats.traffic.sectors_requested =
      static_cast<std::uint64_t>(dram_bytes / 32.0);
  in.stats.compute.flops = static_cast<std::uint64_t>(flops);
  in.config = LaunchConfig::warp_per_item(1u << 20, 512, 40);
  in.mean_work_per_warp = 2000.0;  // long rows: little MLP penalty
  return in;
}

TEST(PerfModel, BandwidthBoundKernelNearPeak) {
  const DeviceSpec spec = make_a100();
  // A big SpMV-shaped workload: OI ~0.33, plenty of parallelism.
  const double bytes = 9e9;
  const PerfInput in = bandwidth_bound_input(bytes, 0.33 * bytes);
  const PerfEstimate est = estimate_performance(spec, in);
  EXPECT_GT(est.bandwidth_fraction, 0.75);  // paper: 80-87%
  EXPECT_LT(est.bandwidth_fraction, 0.9);
  EXPECT_GT(est.t_dram, est.t_flop);  // memory bound
  EXPECT_DOUBLE_EQ(est.operational_intensity, 0.33);
}

TEST(PerfModel, TimeMonotoneInTraffic) {
  const DeviceSpec spec = make_a100();
  const PerfEstimate small =
      estimate_performance(spec, bandwidth_bound_input(1e8, 3.3e7));
  const PerfEstimate big =
      estimate_performance(spec, bandwidth_bound_input(1e9, 3.3e8));
  EXPECT_LT(small.seconds, big.seconds);
}

TEST(PerfModel, ShortRowsReduceAchievedBandwidth) {
  const DeviceSpec spec = make_a100();
  PerfInput in = bandwidth_bound_input(1e9, 3.3e8);
  in.mean_work_per_warp = 2000.0;
  const double long_rows = estimate_performance(spec, in).dram_gbs;
  in.mean_work_per_warp = 40.0;
  const double short_rows = estimate_performance(spec, in).dram_gbs;
  EXPECT_LT(short_rows, long_rows);  // liver beats prostate, as in Figure 5
}

TEST(PerfModel, LowOccupancyReducesBandwidth) {
  const DeviceSpec spec = make_a100();
  PerfInput in = bandwidth_bound_input(1e9, 3.3e8);
  in.config = LaunchConfig::warp_per_item(1u << 20, 512, 40);  // 75% occ
  const double occ75 = estimate_performance(spec, in).dram_gbs;
  in.config = LaunchConfig::warp_per_item(1u << 20, 32, 40);   // 50% occ
  const double occ50 = estimate_performance(spec, in).dram_gbs;
  EXPECT_LT(occ50, occ75);
}

TEST(PerfModel, TinyGridsAreLaunchBound) {
  const DeviceSpec spec = make_a100();
  PerfInput in = bandwidth_bound_input(1e5, 3.3e4);
  in.config = LaunchConfig::warp_per_item(64, 512, 40);
  const PerfEstimate est = estimate_performance(spec, in);
  EXPECT_LT(est.bandwidth_fraction, 0.1);  // overhead dominates
}

TEST(PerfModel, AtomicsDominateTheBaseline) {
  const DeviceSpec spec = make_a100();
  PerfInput in = bandwidth_bound_input(4e9, 2e9);
  in.stats.traffic.l2_atomic_ops = 1'000'000'000;  // one per nnz
  const PerfEstimate est = estimate_performance(spec, in);
  EXPECT_GT(est.t_atomic, est.t_dram);
  EXPECT_GT(est.seconds, est.t_dram);
}

TEST(PerfModel, DevicesOrderAsInFigure7) {
  // Same workload on the three GPUs: A100 > V100 > P100 throughput.
  const PerfInput in = bandwidth_bound_input(2e9, 0.33 * 2e9);
  const double a100 = estimate_performance(make_a100(), in).gflops;
  const double v100 = estimate_performance(make_v100(), in).gflops;
  const double p100 = estimate_performance(make_p100(), in).gflops;
  EXPECT_GT(a100, v100);
  EXPECT_GT(v100, p100);
  // Figure 7: A100/V100 between 1.5x and 2x; V100/P100 around 2.5x.
  EXPECT_GT(a100 / v100, 1.4);
  EXPECT_LT(a100 / v100, 2.2);
  EXPECT_GT(v100 / p100, 2.0);
  EXPECT_LT(v100 / p100, 3.0);
}

TEST(PerfModel, Fp32PeakUsedForSingle) {
  const DeviceSpec spec = make_a100();
  // Compute-bound workload: tiny traffic, huge FLOPs.
  PerfInput in = bandwidth_bound_input(1e6, 1e12);
  in.precision = FlopPrecision::kFp64;
  const double t64 = estimate_performance(spec, in).seconds;
  in.precision = FlopPrecision::kFp32;
  const double t32 = estimate_performance(spec, in).seconds;
  EXPECT_GT(t64, t32);  // fp32 peak is ~2x fp64 on A100
}

TEST(PerfModel, InvalidLaunchConfigThrows) {
  PerfInput in = bandwidth_bound_input(1e9, 1e8);
  in.config.threads_per_block = 48;  // not a warp multiple
  EXPECT_THROW(estimate_performance(make_a100(), in), pd::Error);
}

TEST(PerfModel, BreakdownConsistent) {
  const DeviceSpec spec = make_a100();
  const PerfInput in = bandwidth_bound_input(1e9, 3.3e8);
  const PerfEstimate est = estimate_performance(spec, in);
  const double max_term = std::max(
      {est.t_dram, est.t_l2, est.t_atomic, est.t_issue, est.t_flop});
  EXPECT_DOUBLE_EQ(est.seconds,
                   spec.launch_overhead_s + est.t_dispatch + max_term);
  EXPECT_GT(est.occupancy, 0.0);
  EXPECT_LE(est.occupancy, 1.0);
}

TEST(CpuModel, CalibrationTargets) {
  // Full-scale liver beam 1 on the i9-7940X: the paper reports the GPU
  // Baseline is ~17x faster than the CPU engine, which puts the CPU at
  // single-digit GFLOP/s.
  const CpuSpec cpu = make_i9_7940x();
  CpuWorkload w;
  w.nnz = 1.48e9;
  w.rows = 2.97e6;
  w.stream_bytes = 4.0 * w.nnz;
  w.flops = 2.0 * w.nnz;
  const CpuEstimate est = estimate_cpu_performance(cpu, w);
  EXPECT_GT(est.gflops, 3.0);
  EXPECT_LT(est.gflops, 12.0);
}

TEST(CpuModel, MemoryAndCoreTermsBothMatter) {
  const CpuSpec cpu = make_i9_7940x();
  CpuWorkload w;
  w.nnz = 1e9;
  w.rows = 1e6;
  w.stream_bytes = 4e9;
  w.flops = 2e9;
  const CpuEstimate est = estimate_cpu_performance(cpu, w);
  EXPECT_GT(est.t_mem, 0.0);
  EXPECT_GT(est.t_core, 0.0);
  EXPECT_DOUBLE_EQ(est.seconds, std::max(est.t_mem, est.t_core));
}

}  // namespace
}  // namespace pd::gpusim
