// Tests for Matrix Market and binary I/O, including malformed-input paths.

#include <gtest/gtest.h>

#include <sstream>

#include "common/rng.hpp"
#include "sparse/io.hpp"
#include "sparse/random.hpp"

namespace pd::sparse {
namespace {

TEST(MatrixMarket, RoundTrip) {
  Rng rng(10);
  const CsrF64 m = random_csr(rng, 50, 30, 4.0, RandomStructure::kSkewed);
  std::stringstream ss;
  write_matrix_market(ss, m);
  const CsrF64 back = read_matrix_market(ss);
  EXPECT_EQ(back.num_rows, m.num_rows);
  EXPECT_EQ(back.num_cols, m.num_cols);
  EXPECT_EQ(back.row_ptr, m.row_ptr);
  EXPECT_EQ(back.col_idx, m.col_idx);
  for (std::size_t i = 0; i < m.values.size(); ++i) {
    EXPECT_DOUBLE_EQ(back.values[i], m.values[i]);  // %.17g is exact
  }
}

TEST(MatrixMarket, ReadsCommentsAndHeader) {
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate real general\n"
      "% a comment\n"
      "% another\n"
      "2 3 2\n"
      "1 1 1.5\n"
      "2 3 -2.0\n");
  const CsrF64 m = read_matrix_market(ss);
  EXPECT_EQ(m.num_rows, 2u);
  EXPECT_EQ(m.num_cols, 3u);
  EXPECT_EQ(m.nnz(), 2u);
  EXPECT_DOUBLE_EQ(m.values[0], 1.5);
  EXPECT_EQ(m.col_idx[1], 2u);
}

TEST(MatrixMarket, RejectsBadBanner) {
  std::stringstream ss("%%NotMatrixMarket matrix coordinate real general\n1 1 0\n");
  EXPECT_THROW(read_matrix_market(ss), pd::Error);
}

TEST(MatrixMarket, RejectsUnsupportedFormats) {
  std::stringstream dense("%%MatrixMarket matrix array real general\n1 1\n1.0\n");
  EXPECT_THROW(read_matrix_market(dense), pd::Error);
  std::stringstream sym(
      "%%MatrixMarket matrix coordinate real symmetric\n1 1 0\n");
  EXPECT_THROW(read_matrix_market(sym), pd::Error);
}

TEST(MatrixMarket, RejectsOutOfRangeCoordinates) {
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n");
  EXPECT_THROW(read_matrix_market(ss), pd::Error);
}

TEST(MatrixMarket, RejectsTruncatedEntries) {
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 1.0\n");
  EXPECT_THROW(read_matrix_market(ss), pd::Error);
}

TEST(MatrixMarket, EmptyStreamThrows) {
  std::stringstream ss("");
  EXPECT_THROW(read_matrix_market(ss), pd::Error);
}

TEST(Binary, RoundTripBitExact) {
  Rng rng(11);
  const CsrF64 m = random_csr(rng, 80, 40, 6.0, RandomStructure::kManyEmpty);
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  write_binary(ss, m);
  const CsrF64 back = read_binary(ss);
  EXPECT_EQ(back.num_rows, m.num_rows);
  EXPECT_EQ(back.num_cols, m.num_cols);
  EXPECT_EQ(back.row_ptr, m.row_ptr);
  EXPECT_EQ(back.col_idx, m.col_idx);
  EXPECT_EQ(back.values, m.values);  // bit-exact
}

TEST(Binary, RejectsBadMagic) {
  std::stringstream ss("NOPE....");
  EXPECT_THROW(read_binary(ss), pd::Error);
}

TEST(Binary, RejectsTruncation) {
  Rng rng(12);
  const CsrF64 m = random_csr(rng, 20, 10, 3.0);
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  write_binary(ss, m);
  const std::string full = ss.str();
  std::stringstream cut(full.substr(0, full.size() / 2),
                        std::ios::in | std::ios::binary);
  EXPECT_THROW(read_binary(cut), pd::Error);
}

TEST(Binary, FileRoundTrip) {
  Rng rng(13);
  const CsrF64 m = random_csr(rng, 30, 20, 3.0);
  const std::string path = ::testing::TempDir() + "/pdsm_roundtrip.bin";
  write_binary_file(path, m);
  const CsrF64 back = read_binary_file(path);
  EXPECT_EQ(back.values, m.values);
  EXPECT_THROW(read_binary_file(path + ".missing"), pd::Error);
}

TEST(MatrixMarket, FileRoundTrip) {
  Rng rng(14);
  const CsrF64 m = random_csr(rng, 30, 20, 3.0);
  const std::string path = ::testing::TempDir() + "/pdsm_roundtrip.mtx";
  write_matrix_market_file(path, m);
  const CsrF64 back = read_matrix_market_file(path);
  EXPECT_EQ(back.col_idx, m.col_idx);
  EXPECT_THROW(read_matrix_market_file(path + ".missing"), pd::Error);
}

}  // namespace
}  // namespace pd::sparse
