// Tests for warp-level primitives: masks, lane registers, the deterministic
// tree reduction, and the segmented scan.

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "gpusim/lanes.hpp"

namespace pd::gpusim {
namespace {

TEST(LaneMaskOps, FirstLanes) {
  EXPECT_EQ(first_lanes(0), 0u);
  EXPECT_EQ(first_lanes(1), 1u);
  EXPECT_EQ(first_lanes(4), 0xfu);
  EXPECT_EQ(first_lanes(32), kFullMask);
}

TEST(LaneMaskOps, LaneActiveAndPopcount) {
  const LaneMask m = 0b1010;
  EXPECT_FALSE(lane_active(m, 0));
  EXPECT_TRUE(lane_active(m, 1));
  EXPECT_TRUE(lane_active(m, 3));
  EXPECT_EQ(popcount_mask(m), 2u);
  EXPECT_EQ(popcount_mask(kFullMask), 32u);
}

TEST(Lanes, BroadcastAndLaneId) {
  const auto b = Lanes<double>::broadcast(3.5);
  for (unsigned i = 0; i < kWarpSize; ++i) {
    EXPECT_EQ(b[i], 3.5);
  }
  const auto ids = Lanes<double>::lane_id();
  for (unsigned i = 0; i < kWarpSize; ++i) {
    EXPECT_EQ(ids[i], i);
  }
}

TEST(Lanes, LaneMapRespectsMask) {
  Lanes<int> x;
  for (unsigned i = 0; i < kWarpSize; ++i) x[i] = static_cast<int>(i);
  const auto doubled =
      lane_map<int>(x, first_lanes(4), [](int v) { return 2 * v; }, -1);
  EXPECT_EQ(doubled[0], 0);
  EXPECT_EQ(doubled[3], 6);
  EXPECT_EQ(doubled[4], -1);  // inactive keeps fill
}

TEST(WarpReduce, SumsAllLanes) {
  Lanes<double> x;
  for (unsigned i = 0; i < kWarpSize; ++i) x[i] = static_cast<double>(i + 1);
  EXPECT_DOUBLE_EQ(warp_reduce_add(x), 32.0 * 33.0 / 2.0);
}

TEST(WarpReduce, MaskedLanesContributeIdentity) {
  Lanes<double> x = Lanes<double>::broadcast(5.0);
  EXPECT_DOUBLE_EQ(warp_reduce_add(x, first_lanes(3)), 15.0);
  EXPECT_DOUBLE_EQ(warp_reduce_add(x, 0u), 0.0);
}

TEST(WarpReduce, FixedTreeOrderIsDeterministic) {
  // The reduction order is fixed, so re-running with the same lanes must be
  // bit-identical — and it must equal an explicit 16/8/4/2/1 butterfly.
  Rng rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    Lanes<double> x;
    for (unsigned i = 0; i < kWarpSize; ++i) x[i] = rng.uniform(-1.0, 1.0);
    const double a = warp_reduce_add(x);
    const double b = warp_reduce_add(x);
    EXPECT_EQ(a, b);

    double manual[kWarpSize];
    for (unsigned i = 0; i < kWarpSize; ++i) manual[i] = x[i];
    for (unsigned o = 16; o > 0; o /= 2) {
      for (unsigned i = 0; i < o; ++i) manual[i] += manual[i + o];
    }
    EXPECT_EQ(a, manual[0]);
  }
}

TEST(WarpReduce, TreeOrderDiffersFromSequentialInGeneral) {
  // Sanity that the bitwise tests downstream are meaningful: tree order and
  // sequential order genuinely disagree in the last ulp for some input.
  Rng rng(17);
  bool found_difference = false;
  for (int trial = 0; trial < 100 && !found_difference; ++trial) {
    Lanes<double> x;
    double seq = 0.0;
    for (unsigned i = 0; i < kWarpSize; ++i) {
      x[i] = rng.uniform(0.0, 1.0);
      seq += x[i];
    }
    found_difference = (warp_reduce_add(x) != seq);
  }
  EXPECT_TRUE(found_difference);
}

TEST(SegmentedScan, SingleSegmentIsInclusiveScan) {
  Lanes<float> x;
  for (unsigned i = 0; i < kWarpSize; ++i) x[i] = 1.0f;
  const auto incl = warp_segmented_inclusive_sum(x, /*head_flags=*/1u);
  for (unsigned i = 0; i < kWarpSize; ++i) {
    EXPECT_FLOAT_EQ(incl[i], static_cast<float>(i + 1));
  }
}

TEST(SegmentedScan, SegmentsResetAtHeads) {
  Lanes<float> x = Lanes<float>::broadcast(1.0f);
  // Heads at lanes 0, 4, 10 -> per-segment running counts.
  const LaneMask heads = (1u << 0) | (1u << 4) | (1u << 10);
  const auto incl = warp_segmented_inclusive_sum(x, heads);
  EXPECT_FLOAT_EQ(incl[3], 4.0f);
  EXPECT_FLOAT_EQ(incl[4], 1.0f);   // new segment
  EXPECT_FLOAT_EQ(incl[9], 6.0f);
  EXPECT_FLOAT_EQ(incl[10], 1.0f);  // new segment
  EXPECT_FLOAT_EQ(incl[31], 22.0f);
}

TEST(SegmentedScan, MatchesSerialReference) {
  Rng rng(23);
  for (int trial = 0; trial < 100; ++trial) {
    Lanes<double> x;
    LaneMask heads = 1u;
    for (unsigned i = 0; i < kWarpSize; ++i) {
      x[i] = rng.uniform(-2.0, 2.0);
      if (i > 0 && rng.uniform() < 0.2) {
        heads |= (1u << i);
      }
    }
    const auto incl = warp_segmented_inclusive_sum(x, heads);
    // Serial reference (same left-to-right accumulation within segments is
    // not guaranteed bitwise by the Hillis-Steele network, so compare with a
    // tolerance).
    double running = 0.0;
    for (unsigned i = 0; i < kWarpSize; ++i) {
      if (lane_active(heads, i)) running = 0.0;
      running += x[i];
      EXPECT_NEAR(incl[i], running, 1e-12);
    }
  }
}

TEST(SegmentedScan, InactiveLanesContributeZero) {
  Lanes<double> x = Lanes<double>::broadcast(7.0);
  const auto incl = warp_segmented_inclusive_sum(x, 1u, first_lanes(2));
  EXPECT_DOUBLE_EQ(incl[1], 14.0);
  EXPECT_DOUBLE_EQ(incl[31], 14.0);  // inactive lanes appended nothing
}

}  // namespace
}  // namespace pd::gpusim
