// Tests for voxel grids, phantoms, beam geometry, and spot generation.

#include <gtest/gtest.h>

#include <cmath>

#include "phantom/beam.hpp"
#include "phantom/grid.hpp"
#include "phantom/phantom.hpp"

namespace pd::phantom {
namespace {

TEST(Vec3, BasicAlgebra) {
  const Vec3 a{1, 2, 3}, b{4, 5, 6};
  const Vec3 s = a + b;
  EXPECT_DOUBLE_EQ(s.x, 5.0);
  EXPECT_DOUBLE_EQ((a - b).z, -3.0);
  EXPECT_DOUBLE_EQ((a * 2.0).y, 4.0);
  EXPECT_DOUBLE_EQ(a.dot(b), 32.0);
  EXPECT_DOUBLE_EQ((Vec3{3, 4, 0}).norm(), 5.0);
  EXPECT_DOUBLE_EQ((Vec3{0, 0, 9}).normalized().z, 1.0);
  EXPECT_THROW((Vec3{}).normalized(), pd::Error);
}

TEST(VoxelGrid, LinearIndexRoundTrip) {
  const VoxelGrid g(5, 7, 3, 2.0);
  EXPECT_EQ(g.num_voxels(), 105u);
  for (std::uint64_t i = 0; i < g.num_voxels(); ++i) {
    EXPECT_EQ(g.linear_index(g.from_linear(i)), i);
  }
}

TEST(VoxelGrid, CentersAndNearest) {
  const VoxelGrid g(4, 4, 4, 3.0, Vec3{10.0, 0.0, 0.0});
  const Vec3 c = g.voxel_center({2, 1, 3});
  EXPECT_DOUBLE_EQ(c.x, 16.0);
  EXPECT_DOUBLE_EQ(c.y, 3.0);
  EXPECT_DOUBLE_EQ(c.z, 9.0);
  const VoxelIndex v = g.nearest_voxel({16.4, 3.4, 9.4});
  EXPECT_EQ(v.i, 2);
  EXPECT_EQ(v.j, 1);
  EXPECT_EQ(v.k, 3);
}

TEST(VoxelGrid, ContainsAndInvalid) {
  const VoxelGrid g(4, 4, 4, 1.0);
  EXPECT_TRUE(g.contains({0, 0, 0}));
  EXPECT_FALSE(g.contains({-1, 0, 0}));
  EXPECT_FALSE(g.contains({0, 4, 0}));
  EXPECT_THROW(VoxelGrid(0, 4, 4, 1.0), pd::Error);
  EXPECT_THROW(VoxelGrid(4, 4, 4, 0.0), pd::Error);
}

TEST(VoxelGrid, CenterAndVolume) {
  const VoxelGrid g(3, 3, 3, 10.0);
  const Vec3 c = g.grid_center();
  EXPECT_DOUBLE_EQ(c.x, 10.0);
  EXPECT_DOUBLE_EQ(g.voxel_volume_cm3(), 1.0);
}

TEST(Ellipsoid, Containment) {
  const Ellipsoid e{{0, 0, 0}, {2, 1, 1}};
  EXPECT_TRUE(e.contains({1.9, 0, 0}));
  EXPECT_FALSE(e.contains({0, 1.1, 0}));
  EXPECT_TRUE(e.contains({0, 0, -1.0}));
}

TEST(Phantom, PaintAndQuery) {
  Phantom p(VoxelGrid(10, 10, 10, 2.0), "test");
  EXPECT_EQ(p.count_roi(Roi::kAir), 1000u);
  p.fill_background(Roi::kTissue, 1.0);
  p.paint(Ellipsoid{p.grid().grid_center(), {4.0, 4.0, 4.0}}, Roi::kTarget, 1.05);
  const auto target = p.voxels_with_roi(Roi::kTarget);
  EXPECT_GT(target.size(), 10u);
  for (const auto v : target) {
    EXPECT_DOUBLE_EQ(p.stopping_power(v), 1.05);
    EXPECT_EQ(p.roi(v), Roi::kTarget);
  }
  EXPECT_EQ(p.count_roi(Roi::kTissue) + target.size(), 1000u);
}

TEST(Phantom, CentroidOfSymmetricTargetIsCenter) {
  Phantom p(VoxelGrid(11, 11, 11, 2.0), "test");
  p.paint(Ellipsoid{p.grid().grid_center(), {6.0, 6.0, 6.0}}, Roi::kTarget, 1.0);
  const Vec3 c = p.roi_centroid(Roi::kTarget);
  const Vec3 gc = p.grid().grid_center();
  EXPECT_NEAR(c.x, gc.x, 1e-9);
  EXPECT_NEAR(c.y, gc.y, 1e-9);
  EXPECT_NEAR(c.z, gc.z, 1e-9);
  EXPECT_THROW(p.roi_centroid(Roi::kLung), pd::Error);
}

TEST(Phantom, FactoriesProduceAnatomies) {
  const Phantom liver = make_liver_phantom(30, 30, 16, 5.0);
  EXPECT_GT(liver.count_roi(Roi::kTarget), 0u);
  EXPECT_GT(liver.count_roi(Roi::kTissue), 0u);
  EXPECT_GT(liver.count_roi(Roi::kBone), 0u);
  EXPECT_GT(liver.count_roi(Roi::kOar), 0u);
  EXPECT_GT(liver.count_roi(Roi::kLung), 0u);

  const Phantom prostate = make_prostate_phantom(24, 24, 16, 5.0);
  EXPECT_GT(prostate.count_roi(Roi::kTarget), 0u);
  EXPECT_GT(prostate.count_roi(Roi::kOar), 0u);
}

TEST(BeamFrame, OrthonormalAndAngleDependent) {
  const Phantom p = make_liver_phantom(24, 24, 12, 5.0);
  for (const double angle : {0.0, 45.0, 90.0, 135.0, 270.0}) {
    const BeamFrame f = make_beam_frame(p, angle);
    EXPECT_NEAR(f.direction.norm(), 1.0, 1e-12);
    EXPECT_NEAR(f.u_axis.norm(), 1.0, 1e-12);
    EXPECT_NEAR(f.v_axis.norm(), 1.0, 1e-12);
    EXPECT_NEAR(f.direction.dot(f.u_axis), 0.0, 1e-12);
    EXPECT_NEAR(f.direction.dot(f.v_axis), 0.0, 1e-12);
    EXPECT_NEAR(f.u_axis.dot(f.v_axis), 0.0, 1e-12);
  }
  const BeamFrame f0 = make_beam_frame(p, 0.0);
  const BeamFrame f90 = make_beam_frame(p, 90.0);
  EXPECT_NEAR(f0.direction.dot(f90.direction), 0.0, 1e-12);
}

TEST(BeamFrame, ProjectUnprojectRoundTrip) {
  const Phantom p = make_liver_phantom(24, 24, 12, 5.0);
  const BeamFrame f = make_beam_frame(p, 37.0);
  const Vec3 point = f.unproject(13.0, -4.0, 25.0);
  double u = 0.0, v = 0.0;
  f.project(point, u, v);
  EXPECT_NEAR(u, 13.0, 1e-9);
  EXPECT_NEAR(v, -4.0, 1e-9);
}

TEST(RangeEnergy, MonotoneRoundTrip) {
  for (const double e : {70.0, 120.0, 180.0, 230.0}) {
    const double r = proton_range_cm(e);
    EXPECT_GT(r, 0.0);
    EXPECT_NEAR(proton_energy_mev(r), e, 1e-9);
  }
  EXPECT_LT(proton_range_cm(70.0), proton_range_cm(230.0));
  // ~4 cm at 70 MeV, ~33 cm at 230 MeV (textbook values).
  EXPECT_NEAR(proton_range_cm(70.0), 4.1, 0.5);
  EXPECT_NEAR(proton_range_cm(230.0), 33.0, 3.0);
  EXPECT_THROW(proton_range_cm(0.0), pd::Error);
  EXPECT_THROW(proton_energy_mev(-1.0), pd::Error);
}

TEST(WaterEquivalentDepth, GrowsAlongTheBeam) {
  const Phantom p = make_liver_phantom(30, 30, 16, 5.0);
  const BeamFrame f = make_beam_frame(p, 0.0);
  const Vec3 iso = f.isocenter;
  const double shallow =
      water_equivalent_depth_cm(p, f, iso - f.direction * 30.0);
  const double mid = water_equivalent_depth_cm(p, f, iso);
  const double deep = water_equivalent_depth_cm(p, f, iso + f.direction * 30.0);
  EXPECT_LT(shallow, mid);
  EXPECT_LT(mid, deep);
  EXPECT_GT(shallow, 0.0);
}

TEST(Spots, CoverTargetWithMarginAndLayers) {
  const Phantom p = make_liver_phantom(30, 30, 16, 5.0);
  const BeamFrame f = make_beam_frame(p, 0.0);
  BeamConfig cfg;
  cfg.spot_spacing_mm = 6.0;
  cfg.layer_spacing_mm = 6.0;
  cfg.lateral_margin_mm = 6.0;
  const auto spots = generate_spots(p, f, cfg);
  ASSERT_GT(spots.size(), 20u);

  // Spots lie on the lattice, and multiple energy layers exist.
  std::uint32_t max_layer = 0;
  for (const Spot& s : spots) {
    EXPECT_NEAR(std::fmod(std::fabs(s.u_mm), 6.0), 0.0, 1e-9);
    EXPECT_GT(s.energy_mev, 0.0);
    max_layer = std::max(max_layer, s.layer);
  }
  EXPECT_GE(max_layer, 2u);

  // The lateral extent exceeds the target projection (margin), and spot
  // energies bracket the target depth span.
  double span_u = 0.0;
  for (const Spot& s : spots) {
    span_u = std::max(span_u, std::fabs(s.u_mm));
  }
  EXPECT_GT(span_u, 0.20 * 30 * 5.0 * 0.9);  // at least near the target radius

  EXPECT_THROW(
      generate_spots(p, f, BeamConfig{0.0, 0.0, 6.0, 6.0}), pd::Error);
}

TEST(Spots, EnergiesLieOnABeamWideLadder) {
  // Machine realism: every spot's energy corresponds to a depth that is a
  // multiple of the layer spacing, shared across lateral positions.
  const Phantom p = make_liver_phantom(30, 30, 16, 5.0);
  const BeamFrame f = make_beam_frame(p, 45.0);
  BeamConfig cfg;
  cfg.layer_spacing_mm = 6.0;
  const auto spots = generate_spots(p, f, cfg);
  for (const Spot& s : spots) {
    const double depth_cm = proton_range_cm(s.energy_mev);
    const double k = depth_cm / 0.6;
    EXPECT_NEAR(k, std::round(k), 1e-6) << s.energy_mev;
  }
}

TEST(Spots, ScanlineOrderIsSerpentine) {
  const Phantom p = make_liver_phantom(26, 26, 14, 5.0);
  const BeamFrame f = make_beam_frame(p, 0.0);
  BeamConfig cfg;
  const auto ordered = scanline_order(generate_spots(p, f, cfg));
  ASSERT_GT(ordered.size(), 10u);

  // Energies never increase along the plan (deepest layer first).
  for (std::size_t i = 1; i < ordered.size(); ++i) {
    EXPECT_LE(ordered[i].energy_mev, ordered[i - 1].energy_mev + 1e-12);
  }

  // Within a layer, consecutive same-v spots move monotonically in u, and
  // the u-direction alternates between consecutive v-rows (the serpentine).
  for (std::size_t i = 0; i < ordered.size();) {
    const double energy = ordered[i].energy_mev;
    int prev_dir = 0;
    while (i < ordered.size() && ordered[i].energy_mev == energy) {
      const double v = ordered[i].v_mm;
      std::size_t j = i;
      int dir = 0;
      while (j + 1 < ordered.size() && ordered[j + 1].energy_mev == energy &&
             ordered[j + 1].v_mm == v) {
        const double du = ordered[j + 1].u_mm - ordered[j].u_mm;
        EXPECT_NE(du, 0.0);
        if (dir == 0) {
          dir = du > 0 ? 1 : -1;
        } else {
          EXPECT_EQ(du > 0 ? 1 : -1, dir);  // monotone within the row
        }
        ++j;
      }
      if (dir != 0 && prev_dir != 0) {
        EXPECT_EQ(dir, -prev_dir);  // alternating rows
      }
      if (dir != 0) {
        prev_dir = dir;
      }
      i = j + 1;
    }
  }
}

TEST(Spots, DenserLatticeGivesMoreSpots) {
  const Phantom p = make_liver_phantom(24, 24, 12, 5.0);
  const BeamFrame f = make_beam_frame(p, 90.0);
  BeamConfig coarse;
  coarse.spot_spacing_mm = 8.0;
  BeamConfig fine = coarse;
  fine.spot_spacing_mm = 4.0;
  EXPECT_GT(generate_spots(p, f, fine).size(),
            generate_spots(p, f, coarse).size());
}

}  // namespace
}  // namespace pd::phantom
