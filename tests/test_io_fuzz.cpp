// Fuzz-style robustness tests: the matrix readers must reject arbitrary or
// corrupted bytes with a pd::Error — never crash, hang, or allocate
// unboundedly.

#include <gtest/gtest.h>

#include <sstream>

#include "common/rng.hpp"
#include "sparse/io.hpp"
#include "sparse/random.hpp"

namespace pd::sparse {
namespace {

std::string random_bytes(Rng& rng, std::size_t n) {
  std::string s(n, '\0');
  for (auto& c : s) {
    c = static_cast<char>(rng.uniform_index(256));
  }
  return s;
}

TEST(IoFuzz, RandomBytesNeverCrashBinaryReader) {
  Rng rng(1234);
  for (int trial = 0; trial < 300; ++trial) {
    const std::size_t len = 1 + rng.uniform_index(256);
    std::stringstream ss(random_bytes(rng, len),
                         std::ios::in | std::ios::binary);
    EXPECT_THROW(read_binary(ss), pd::Error) << "trial " << trial;
  }
}

TEST(IoFuzz, RandomBytesWithValidMagicStillRejected) {
  Rng rng(77);
  for (int trial = 0; trial < 300; ++trial) {
    std::string payload = "PDSM" + random_bytes(rng, 8 + rng.uniform_index(128));
    std::stringstream ss(payload, std::ios::in | std::ios::binary);
    EXPECT_THROW(read_binary(ss), pd::Error) << "trial " << trial;
  }
}

TEST(IoFuzz, HugeDeclaredArrayLengthIsRejectedNotAllocated) {
  // A header claiming 2^60 entries must be caught by the plausibility guard
  // before any allocation is attempted.
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  ss.write("PDSM", 4);
  const std::uint32_t version = 1;
  ss.write(reinterpret_cast<const char*>(&version), 4);
  const std::uint64_t dims[2] = {4, 4};
  ss.write(reinterpret_cast<const char*>(dims), 16);
  const std::uint64_t absurd = std::uint64_t{1} << 60;
  ss.write(reinterpret_cast<const char*>(&absurd), 8);
  EXPECT_THROW(read_binary(ss), pd::Error);
}

TEST(IoFuzz, TruncationAtEveryPrefixLength) {
  Rng rng(9);
  const CsrF64 m = random_csr(rng, 12, 8, 3.0);
  std::stringstream full(std::ios::in | std::ios::out | std::ios::binary);
  write_binary(full, m);
  const std::string bytes = full.str();
  // Every strict prefix must throw (the final length must parse).
  for (std::size_t len = 0; len < bytes.size(); len += 7) {
    std::stringstream cut(bytes.substr(0, len), std::ios::in | std::ios::binary);
    EXPECT_THROW(read_binary(cut), pd::Error) << "prefix " << len;
  }
  std::stringstream ok(bytes, std::ios::in | std::ios::binary);
  EXPECT_NO_THROW(read_binary(ok));
}

TEST(IoFuzz, BitFlippedStructuralBytesAreRejectedOrEquivalent) {
  // Flipping bytes in the structural region (header + row_ptr) must either
  // throw or — if the flip hit padding/values — produce a validating matrix.
  Rng rng(10);
  const CsrF64 m = random_csr(rng, 20, 10, 4.0);
  std::stringstream full(std::ios::in | std::ios::out | std::ios::binary);
  write_binary(full, m);
  const std::string bytes = full.str();
  int rejected = 0, accepted = 0;
  for (int trial = 0; trial < 200; ++trial) {
    std::string corrupt = bytes;
    const std::size_t pos = rng.uniform_index(corrupt.size());
    corrupt[pos] = static_cast<char>(corrupt[pos] ^
                                     (1 << rng.uniform_index(8)));
    std::stringstream ss(corrupt, std::ios::in | std::ios::binary);
    try {
      const CsrF64 back = read_binary(ss);
      back.validate();  // anything accepted must be structurally sound
      ++accepted;
    } catch (const pd::Error&) {
      ++rejected;
    }
  }
  EXPECT_EQ(rejected + accepted, 200);
  EXPECT_GT(rejected, 0);  // structural corruption is actually caught
}

TEST(IoFuzz, NonCanonicalStructureIsRejectedByTheLoader) {
  // Unsorted or duplicate columns within a row pass the basic structural
  // validate() but violate the canonical form every kernel assumes; the
  // strict loader tier (validate_canonical) must reject such files.
  CsrF64 m;
  m.num_rows = 2;
  m.num_cols = 2;
  m.row_ptr = {0, 2, 2};
  m.col_idx = {1, 0};  // unsorted
  m.values = {1.0, 2.0};
  EXPECT_NO_THROW(m.validate());
  EXPECT_THROW(m.validate_canonical(), pd::Error);
  std::stringstream unsorted(std::ios::in | std::ios::out | std::ios::binary);
  write_binary(unsorted, m);
  EXPECT_THROW(read_binary(unsorted), pd::Error);

  m.col_idx = {0, 0};  // duplicate column
  EXPECT_THROW(m.validate_canonical(), pd::Error);
  std::stringstream dup(std::ios::in | std::ios::out | std::ios::binary);
  write_binary(dup, m);
  EXPECT_THROW(read_binary(dup), pd::Error);

  m.col_idx = {0, 1};  // canonical form round-trips
  std::stringstream ok(std::ios::in | std::ios::out | std::ios::binary);
  write_binary(ok, m);
  EXPECT_NO_THROW(read_binary(ok));
}

TEST(IoFuzz, MatrixMarketGarbageLines) {
  Rng rng(11);
  for (int trial = 0; trial < 200; ++trial) {
    std::stringstream ss(random_bytes(rng, 1 + rng.uniform_index(200)));
    EXPECT_THROW(read_matrix_market(ss), pd::Error);
  }
}

TEST(IoFuzz, MatrixMarketNegativeAndOverflowCoordinates) {
  std::stringstream neg(
      "%%MatrixMarket matrix coordinate real general\n2 2 1\n-1 1 1.0\n");
  EXPECT_THROW(read_matrix_market(neg), pd::Error);
  std::stringstream huge(
      "%%MatrixMarket matrix coordinate real general\n2 2 1\n999999999999 1 1.0\n");
  EXPECT_THROW(read_matrix_market(huge), pd::Error);
}

}  // namespace
}  // namespace pd::sparse
