// Tests for the roofline model and its ASCII rendering.

#include <gtest/gtest.h>

#include "gpusim/device.hpp"
#include "roofline/roofline.hpp"

namespace pd::roofline {
namespace {

TEST(Roofline, AttainableIsMinOfRoofAndSlope) {
  RooflineModel m;
  m.device_name = "X";
  m.peak_bw_gbs = 1000.0;
  m.peak_gflops = 5000.0;
  EXPECT_DOUBLE_EQ(m.ridge_oi(), 5.0);
  EXPECT_DOUBLE_EQ(m.attainable_gflops(1.0), 1000.0);   // bandwidth-bound
  EXPECT_DOUBLE_EQ(m.attainable_gflops(10.0), 5000.0);  // compute-bound
  EXPECT_DOUBLE_EQ(m.attainable_gflops(5.0), 5000.0);   // exactly the ridge
  EXPECT_THROW(m.attainable_gflops(0.0), pd::Error);
}

TEST(Roofline, FromDeviceSpecs) {
  const auto a100_64 =
      make_roofline(gpusim::make_a100(), gpusim::FlopPrecision::kFp64);
  EXPECT_DOUBLE_EQ(a100_64.peak_gflops, 9700.0);
  EXPECT_DOUBLE_EQ(a100_64.peak_bw_gbs, 1555.0);
  const auto a100_32 =
      make_roofline(gpusim::make_a100(), gpusim::FlopPrecision::kFp32);
  EXPECT_DOUBLE_EQ(a100_32.peak_gflops, 19500.0);
  // SpMV (OI ~0.33) sits far left of the ridge on every device — the reason
  // the paper's analysis is all about bandwidth.
  EXPECT_LT(0.332, a100_64.ridge_oi());
}

TEST(Roofline, FractionOfRoof) {
  RooflineModel m;
  m.peak_bw_gbs = 1000.0;
  m.peak_gflops = 5000.0;
  // At OI 0.33 the roof is 330 GFLOP/s.
  EXPECT_NEAR(roofline_fraction(m, {"k", 0.33, 165.0}), 0.5, 1e-12);
  EXPECT_NEAR(roofline_fraction(m, {"k", 0.33, 330.0}), 1.0, 1e-12);
}

TEST(Roofline, AsciiRenderingContainsPointsAndLegend) {
  const auto model =
      make_roofline(gpusim::make_a100(), gpusim::FlopPrecision::kFp64);
  const std::vector<RooflinePoint> pts = {
      {"Half/Double", 0.332, 420.0},
      {"Single", 0.25, 310.0},
      {"cuSPARSE", 0.25, 290.0},
  };
  const std::string art = ascii_roofline(model, pts);
  EXPECT_NE(art.find("Half/Double"), std::string::npos);
  EXPECT_NE(art.find("cuSPARSE"), std::string::npos);
  EXPECT_NE(art.find("[1]"), std::string::npos);
  EXPECT_NE(art.find("[3]"), std::string::npos);
  EXPECT_NE(art.find("ridge"), std::string::npos);
  EXPECT_NE(art.find('1'), std::string::npos);  // the plotted marker
}

TEST(Roofline, AsciiRejectsTinyCanvas) {
  const auto model =
      make_roofline(gpusim::make_a100(), gpusim::FlopPrecision::kFp64);
  EXPECT_THROW(ascii_roofline(model, {}, 5, 5), pd::Error);
}

TEST(Roofline, AsciiHandlesNoPoints) {
  const auto model =
      make_roofline(gpusim::make_a100(), gpusim::FlopPrecision::kFp64);
  const std::string art = ascii_roofline(model, {});
  EXPECT_NE(art.find("Roofline: A100"), std::string::npos);
}

}  // namespace
}  // namespace pd::roofline
