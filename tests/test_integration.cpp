// End-to-end integration tests across module boundaries: synthetic patient ->
// Monte Carlo dose matrix -> compressed clinical format -> GPU kernels ->
// plan optimization, checking that all computation paths agree and that the
// performance machinery produces sane figures on real (generated) data.

#include <gtest/gtest.h>

#include <cmath>

#include "cases/cases.hpp"
#include "gpusim/device.hpp"
#include "kernels/analytic.hpp"
#include "kernels/adaptive_csr.hpp"
#include "kernels/baseline_gpu.hpp"
#include "kernels/classical_csr.hpp"
#include "kernels/dose_engine.hpp"
#include "kernels/vector_csr.hpp"
#include "opt/optimizer.hpp"
#include "roofline/roofline.hpp"
#include "rsformat/cpu_engine.hpp"
#include "rsformat/rsmatrix.hpp"
#include "sparse/convert.hpp"
#include "sparse/reference.hpp"

namespace pd {
namespace {

/// One generated prostate beam, shared across the tests in this file.
class Pipeline : public ::testing::Test {
 protected:
  static const mc::GeneratedBeam& beam() {
    static const mc::GeneratedBeam kBeam = [] {
      const auto def = cases::prostate_case(0.2);
      const auto phantom = cases::build_phantom(def);
      return cases::generate_beam(def, phantom, 0);
    }();
    return kBeam;
  }

  /// A liver beam at half scale: long rows and a big enough grid that the
  /// GPU performance regime (Figure 5's ordering) is visible.  The tiny
  /// prostate beam above is launch-overhead-bound by design — exactly the
  /// size effect the paper discusses — so performance-shape assertions use
  /// this one.
  static const mc::GeneratedBeam& liver_beam() {
    static const mc::GeneratedBeam kBeam = [] {
      const auto def = cases::liver_case(0.5);
      const auto phantom = cases::build_phantom(def);
      return cases::generate_beam(def, phantom, 0);
    }();
    return kBeam;
  }

  static std::vector<double> unit_weights() {
    return std::vector<double>(beam().matrix.num_cols, 1.0);
  }
};

TEST_F(Pipeline, EveryComputePathAgreesOnTheDose) {
  const auto& D = beam().matrix;
  const auto x = unit_weights();

  // Gold: exact double SpMV.
  std::vector<double> gold(D.num_rows);
  sparse::reference_spmv(D, x, gold);
  double max_dose = 0.0;
  for (const double d : gold) max_dose = std::max(max_dose, d);
  ASSERT_GT(max_dose, 0.0);

  // Path 1: the paper's kernel (half matrix, double vectors) on the GPU sim.
  kernels::DoseEngine engine(sparse::CsrF64(D), gpusim::make_a100());
  const auto y_hd = engine.compute(x);

  // Path 2: the clinical CPU engine on the compressed format.
  const rsformat::RsMatrix rs = rsformat::RsMatrix::from_csr(D);
  std::vector<double> y_cpu(D.num_rows);
  rsformat::cpu_compute_dose(rs, x, y_cpu, 4);

  // Path 3: the GPU Baseline port on the compressed format.
  gpusim::Gpu gpu(gpusim::make_a100());
  std::vector<double> y_base(D.num_rows);
  kernels::run_baseline_gpu(gpu, rs, x, std::span<double>(y_base));

  for (std::uint64_t r = 0; r < D.num_rows; ++r) {
    const double tol = 2e-3 * max_dose;
    EXPECT_NEAR(y_hd[r], gold[r], tol) << "half/double row " << r;
    EXPECT_NEAR(y_cpu[r], gold[r], tol) << "cpu engine row " << r;
    EXPECT_NEAR(y_base[r], gold[r], tol) << "gpu baseline row " << r;
  }
}

TEST_F(Pipeline, DoseLandsInsideThePatient) {
  const auto def = cases::prostate_case(0.2);
  const auto phantom = cases::build_phantom(def);
  const auto& D = beam().matrix;
  std::vector<double> dose(D.num_rows);
  sparse::reference_spmv(D, unit_weights(), dose);

  // The hottest voxels must be in or near the target, not in air.
  double max_dose = 0.0;
  std::uint64_t hottest = 0;
  for (std::uint64_t v = 0; v < dose.size(); ++v) {
    if (dose[v] > max_dose) {
      max_dose = dose[v];
      hottest = v;
    }
  }
  EXPECT_NE(phantom.roi(hottest), phantom::Roi::kAir);
  const auto target = phantom.voxels_with_roi(phantom::Roi::kTarget);
  double mean_target = 0.0;
  for (const auto v : target) mean_target += dose[v];
  mean_target /= static_cast<double>(target.size());
  double mean_all = 0.0;
  for (const double d : dose) mean_all += d;
  mean_all /= static_cast<double>(dose.size());
  EXPECT_GT(mean_target, 3.0 * mean_all);  // beams concentrate on the target
}

TEST_F(Pipeline, LibraryKernelsAgreeOnGeneratedMatrix) {
  const auto m32 = sparse::convert_values<float>(beam().matrix);
  std::vector<float> x32(m32.num_cols, 1.0f);
  std::vector<float> gold(m32.num_rows);
  sparse::reference_spmv_f32(m32, x32, gold);

  gpusim::Gpu gpu(gpusim::make_a100());
  std::vector<float> y(m32.num_rows);
  kernels::run_classical_csr(gpu, m32, x32, std::span<float>(y));
  float max_dose = 0.0f;
  for (const float d : gold) max_dose = std::max(max_dose, d);
  for (std::uint64_t r = 0; r < m32.num_rows; ++r) {
    EXPECT_NEAR(y[r], gold[r], 2e-3f * (1.0f + max_dose));
  }
  const auto items = kernels::build_adaptive_worklist(m32);
  kernels::run_adaptive_csr(gpu, m32, items, x32, std::span<float>(y));
  for (std::uint64_t r = 0; r < m32.num_rows; ++r) {
    EXPECT_NEAR(y[r], gold[r], 2e-3f * (1.0f + max_dose));
  }
}

TEST_F(Pipeline, PerformanceEstimatesAreOrderedLikeFigure5) {
  // On the same generated beam: Half/Double beats Single beats Baseline.
  const auto& D = liver_beam().matrix;
  const std::vector<double> x(D.num_cols, 1.0);

  kernels::DoseEngine hd(sparse::CsrF64(D), gpusim::make_a100(),
                         kernels::DoseEngine::Mode::kHalfDouble);
  hd.compute(x);
  kernels::DoseEngine single(sparse::CsrF64(D), gpusim::make_a100(),
                             kernels::DoseEngine::Mode::kSingle);
  single.compute(x);

  gpusim::Gpu gpu(gpusim::make_a100());
  const rsformat::RsMatrix rs = rsformat::RsMatrix::from_csr(D);
  std::vector<double> y(D.num_rows);
  const kernels::SpmvRun base_run =
      kernels::run_baseline_gpu(gpu, rs, x, std::span<double>(y));
  gpusim::PerfInput base_in;
  base_in.stats = base_run.stats;
  base_in.config = base_run.config;
  base_in.mean_work_per_warp =
      static_cast<double>(D.nnz()) / static_cast<double>(D.num_cols);
  const auto base_est = gpusim::estimate_performance(gpu.spec(), base_in);

  const double hd_gflops = hd.last_estimate().gflops;
  const double single_gflops = single.last_estimate().gflops;
  EXPECT_GT(hd_gflops, single_gflops);
  EXPECT_GT(single_gflops, base_est.gflops);
  EXPECT_GT(hd_gflops / base_est.gflops, 1.5);  // the paper's headline ordering
}

TEST_F(Pipeline, MeasuredOiTracksTheAnalyticModel) {
  const auto& D = liver_beam().matrix;
  kernels::DoseEngine engine(sparse::CsrF64(D), gpusim::make_a100());
  engine.compute(std::vector<double>(D.num_cols, 1.0));
  const double measured = engine.last_run().stats.operational_intensity();
  const auto stats = sparse::compute_stats(D);
  const double analytic = kernels::analytic_operational_intensity(
      kernels::KernelKind::kHalfDouble, kernels::Workload::from_stats(stats));
  // The closed-form value is an infinite-cache *upper bound* (the paper's
  // §V argument); the measured OI must sit just below it.
  EXPECT_LE(measured, analytic * 1.02);
  EXPECT_GE(measured, analytic * 0.70);
}

TEST_F(Pipeline, RooflinePlacesTheKernelInTheBandwidthRegion) {
  const auto& D = beam().matrix;
  kernels::DoseEngine engine(sparse::CsrF64(D), gpusim::make_a100());
  engine.compute(unit_weights());
  const auto est = engine.last_estimate();
  const auto model =
      roofline::make_roofline(gpusim::make_a100(), gpusim::FlopPrecision::kFp64);
  EXPECT_LT(est.operational_intensity, model.ridge_oi());  // memory-bound
  const double frac = roofline_fraction(
      model, {"hd", est.operational_intensity, est.gflops});
  EXPECT_GT(frac, 0.0);
  EXPECT_LE(frac, 1.0);
}

TEST_F(Pipeline, OptimizerImprovesAClinicalObjective) {
  const auto def = cases::prostate_case(0.2);
  const auto phantom = cases::build_phantom(def);
  const auto& D = beam().matrix;

  std::vector<double> probe(D.num_rows);
  sparse::reference_spmv(D, unit_weights(), probe);
  double max_dose = 0.0;
  for (const double d : probe) max_dose = std::max(max_dose, d);

  auto goals = opt::DoseObjective::standard_goals(phantom, 0.5 * max_dose,
                                                  0.2 * max_dose);
  opt::OptimizerConfig cfg;
  cfg.max_iterations = 12;
  opt::PlanOptimizer optimizer(D, std::move(goals), gpusim::make_a100(), cfg);
  const auto result = optimizer.optimize();
  EXPECT_LT(result.objective_history.back(),
            0.9 * result.objective_history.front());
  EXPECT_GT(result.spmv_count, 10u);
}

TEST_F(Pipeline, CompressedFormatSavesMemoryOnClinicalData) {
  const auto& D = beam().matrix;
  const rsformat::RsMatrix rs = rsformat::RsMatrix::from_csr(D);
  EXPECT_LT(rs.bytes(), D.bytes() / 2);  // ~4B/entry vs 12B/entry
  const auto stats = sparse::compute_stats(D);
  // Half-precision CSR (the GPU path): 6 bytes per nnz.
  EXPECT_LT(stats.csr_bytes(2, 4), D.bytes());
}

}  // namespace
}  // namespace pd
