// Tests for sparse formats: CSR validation, COO assembly with duplicate
// merging, transpose, ELLPACK, SELL-C-σ — including parameterized
// round-trip sweeps over structural families and seeds.

#include <gtest/gtest.h>

#include <numeric>
#include <tuple>

#include "common/rng.hpp"
#include "sparse/coo.hpp"
#include "sparse/csr.hpp"
#include "sparse/ell.hpp"
#include "sparse/random.hpp"
#include "sparse/reference.hpp"
#include "sparse/sellcs.hpp"

namespace pd::sparse {
namespace {

CsrF64 tiny_matrix() {
  // [ 1 0 2 ]
  // [ 0 0 0 ]
  // [ 3 4 0 ]
  CsrF64 m;
  m.num_rows = 3;
  m.num_cols = 3;
  m.row_ptr = {0, 2, 2, 4};
  m.col_idx = {0, 2, 0, 1};
  m.values = {1.0, 2.0, 3.0, 4.0};
  m.validate();
  return m;
}

TEST(Csr, ValidationCatchesCorruption) {
  CsrF64 m = tiny_matrix();
  m.col_idx[1] = 99;
  EXPECT_THROW(m.validate(), pd::Error);

  m = tiny_matrix();
  m.row_ptr[1] = 5;
  EXPECT_THROW(m.validate(), pd::Error);

  m = tiny_matrix();
  m.row_ptr.back() = 3;
  EXPECT_THROW(m.validate(), pd::Error);

  m = tiny_matrix();
  m.row_ptr.pop_back();
  EXPECT_THROW(m.validate(), pd::Error);
}

TEST(Csr, RowNnzAndBytes) {
  const CsrF64 m = tiny_matrix();
  EXPECT_EQ(m.row_nnz(0), 2u);
  EXPECT_EQ(m.row_nnz(1), 0u);
  EXPECT_EQ(m.nnz(), 4u);
  EXPECT_EQ(m.bytes(), 4 * sizeof(std::uint32_t) + 4 * (4 + 8));
}

TEST(Coo, AssembleSortsAndIndexes) {
  CooMatrix<double> coo;
  coo.num_rows = 2;
  coo.num_cols = 4;
  coo.entries = {{1, 3, 1.0}, {0, 2, 2.0}, {1, 0, 3.0}};
  const auto csr = coo_to_csr(coo);
  EXPECT_EQ(csr.row_ptr, (std::vector<std::uint32_t>{0, 1, 3}));
  EXPECT_EQ(csr.col_idx, (std::vector<std::uint32_t>{2, 0, 3}));
  EXPECT_EQ(csr.values, (std::vector<double>{2.0, 3.0, 1.0}));
}

TEST(Coo, DuplicatesAreSummed) {
  CooMatrix<double> coo;
  coo.num_rows = 1;
  coo.num_cols = 3;
  coo.entries = {{0, 1, 1.5}, {0, 1, 2.5}, {0, 0, 1.0}};
  const auto csr = coo_to_csr(coo);
  EXPECT_EQ(csr.nnz(), 2u);
  EXPECT_DOUBLE_EQ(csr.values[1], 4.0);
}

TEST(Coo, OutOfRangeEntryThrows) {
  CooMatrix<double> coo;
  coo.num_rows = 2;
  coo.num_cols = 2;
  coo.entries = {{2, 0, 1.0}};
  EXPECT_THROW(coo_to_csr(coo), pd::Error);
}

TEST(Coo, CsrRoundTrip) {
  const CsrF64 m = tiny_matrix();
  const auto back = coo_to_csr(csr_to_coo(m));
  EXPECT_EQ(back.row_ptr, m.row_ptr);
  EXPECT_EQ(back.col_idx, m.col_idx);
  EXPECT_EQ(back.values, m.values);
}

TEST(Transpose, IsInvolutionAndMovesEntries) {
  const CsrF64 m = tiny_matrix();
  const CsrF64 t = transpose(m);
  EXPECT_EQ(t.num_rows, m.num_cols);
  EXPECT_EQ(t.num_cols, m.num_rows);
  EXPECT_EQ(t.nnz(), m.nnz());
  // (2,1) = 4 in m -> (1,2) = 4 in t.
  bool found = false;
  for (std::uint32_t k = t.row_ptr[1]; k < t.row_ptr[2]; ++k) {
    if (t.col_idx[k] == 2) {
      EXPECT_DOUBLE_EQ(t.values[k], 4.0);
      found = true;
    }
  }
  EXPECT_TRUE(found);

  const CsrF64 tt = transpose(t);
  EXPECT_EQ(tt.row_ptr, m.row_ptr);
  EXPECT_EQ(tt.col_idx, m.col_idx);
  EXPECT_EQ(tt.values, m.values);
}

TEST(Ell, ConversionPreservesValues) {
  const CsrF64 m = tiny_matrix();
  const auto ell = csr_to_ell(m);
  EXPECT_EQ(ell.width, 2u);
  EXPECT_EQ(ell.stored_nnz, 4u);
  EXPECT_DOUBLE_EQ(ell.padding_overhead(), 1.0 - 4.0 / 6.0);
  // Entry (0, slot 1) = value 2 at column 2, stored column-major.
  EXPECT_DOUBLE_EQ(ell.values[1 * 3 + 0], 2.0);
  EXPECT_EQ(ell.col_idx[1 * 3 + 0], 2u);
  // Padded slot of row 1 holds zeros.
  EXPECT_DOUBLE_EQ(ell.values[0 * 3 + 1], 0.0);
}

TEST(Ell, BlowUpGuard) {
  // One long row with many short ones: padded size explodes past the cap.
  CooMatrix<double> coo;
  coo.num_rows = 1000;
  coo.num_cols = 600;
  for (std::uint32_t c = 0; c < 500; ++c) {
    coo.entries.push_back({0, c, 1.0});
  }
  for (std::uint32_t r = 1; r < 1000; ++r) {
    coo.entries.push_back({r, 0, 1.0});
  }
  const auto csr = coo_to_csr(coo);
  EXPECT_THROW(csr_to_ell(csr, /*max_padded_entries=*/100000), pd::Error);
  EXPECT_NO_THROW(csr_to_ell(csr, 1000000));
}

TEST(SellCs, PermutationIsValid) {
  Rng rng(4);
  const CsrF64 m = random_csr(rng, 100, 40, 6.0, RandomStructure::kSkewed);
  const auto s = csr_to_sellcs(m, 32, 64);
  std::vector<std::uint32_t> perm = s.row_perm;
  std::sort(perm.begin(), perm.end());
  for (std::uint32_t i = 0; i < perm.size(); ++i) {
    EXPECT_EQ(perm[i], i);
  }
}

TEST(SellCs, ChunkWidthsCoverRows) {
  Rng rng(4);
  const CsrF64 m = random_csr(rng, 100, 40, 6.0, RandomStructure::kSkewed);
  const auto s = csr_to_sellcs(m, 32, 64);
  for (std::uint64_t c = 0; c < s.num_chunks(); ++c) {
    for (std::uint32_t l = 0; l < 32; ++l) {
      const std::uint64_t sr = c * 32 + l;
      if (sr < m.num_rows) {
        EXPECT_GE(s.chunk_width[c], m.row_nnz(s.row_perm[sr]));
      }
    }
  }
}

TEST(SellCs, SortingReducesPaddingOnSkewedMatrices) {
  Rng rng(4);
  const CsrF64 m = random_csr(rng, 512, 64, 8.0, RandomStructure::kSkewed);
  const auto sorted = csr_to_sellcs(m, 32, 512);
  const auto unsorted = csr_to_sellcs(m, 32, 32);  // σ == C: no reordering room
  EXPECT_LE(sorted.values.size(), unsorted.values.size());
  const auto ell = csr_to_ell(m, 1ull << 28);
  EXPECT_LE(sorted.values.size(), ell.values.size());
}

TEST(SellCs, InvalidParametersThrow) {
  const CsrF64 m = tiny_matrix();
  EXPECT_THROW(csr_to_sellcs(m, 0, 32), pd::Error);
  EXPECT_THROW(csr_to_sellcs(m, 32, 48), pd::Error);  // σ not multiple of C
}

// --- parameterized round-trip sweep ----------------------------------------

using FormatSweepParam = std::tuple<RandomStructure, std::uint64_t /*seed*/>;

class FormatRoundTrip : public ::testing::TestWithParam<FormatSweepParam> {};

TEST_P(FormatRoundTrip, CooRoundTripPreservesMatrix) {
  const auto [structure, seed] = GetParam();
  Rng rng(seed);
  const CsrF64 m = random_csr(rng, 200, 60, 5.0, structure);
  const CsrF64 back = coo_to_csr(csr_to_coo(m));
  EXPECT_EQ(back.row_ptr, m.row_ptr);
  EXPECT_EQ(back.col_idx, m.col_idx);
  EXPECT_EQ(back.values, m.values);
}

TEST_P(FormatRoundTrip, DoubleTransposeIsIdentity) {
  const auto [structure, seed] = GetParam();
  Rng rng(seed);
  const CsrF64 m = random_csr(rng, 150, 70, 4.0, structure);
  const CsrF64 tt = transpose(transpose(m));
  EXPECT_EQ(tt.row_ptr, m.row_ptr);
  EXPECT_EQ(tt.col_idx, m.col_idx);
  EXPECT_EQ(tt.values, m.values);
}

TEST_P(FormatRoundTrip, AllFormatsAgreeOnSpmv) {
  const auto [structure, seed] = GetParam();
  Rng rng(seed);
  const CsrF64 m = random_csr(rng, 200, 60, 5.0, structure);
  const std::vector<double> x = random_vector(rng, m.num_cols);

  std::vector<double> y_csr(m.num_rows);
  reference_spmv(m, x, y_csr);

  // ELLPACK evaluation on the host.
  const auto ell = csr_to_ell(m, 1ull << 28);
  std::vector<double> y_ell(m.num_rows, 0.0);
  for (std::uint64_t j = 0; j < ell.width; ++j) {
    for (std::uint64_t r = 0; r < ell.num_rows; ++r) {
      y_ell[r] += ell.values[j * ell.num_rows + r] *
                  x[ell.col_idx[j * ell.num_rows + r]];
    }
  }

  // SELL-C-σ evaluation on the host.
  const auto s = csr_to_sellcs(m, 32, 64);
  std::vector<double> y_sell(m.num_rows, 0.0);
  for (std::uint64_t c = 0; c < s.num_chunks(); ++c) {
    for (std::uint32_t l = 0; l < 32; ++l) {
      const std::uint64_t sr = c * 32 + l;
      if (sr >= m.num_rows) continue;
      double acc = 0.0;
      for (std::uint32_t j = 0; j < s.chunk_width[c]; ++j) {
        const std::uint64_t slot = s.chunk_ptr[c] + j * 32ull + l;
        acc += s.values[slot] * x[s.col_idx[slot]];
      }
      y_sell[s.row_perm[sr]] = acc;
    }
  }

  for (std::uint64_t r = 0; r < m.num_rows; ++r) {
    EXPECT_NEAR(y_ell[r], y_csr[r], 1e-9 * (1.0 + std::fabs(y_csr[r])));
    EXPECT_NEAR(y_sell[r], y_csr[r], 1e-9 * (1.0 + std::fabs(y_csr[r])));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Structures, FormatRoundTrip,
    ::testing::Combine(::testing::Values(RandomStructure::kUniform,
                                         RandomStructure::kSkewed,
                                         RandomStructure::kManyEmpty,
                                         RandomStructure::kBanded),
                       ::testing::Values(1u, 2u, 3u)));

}  // namespace
}  // namespace pd::sparse
