// Tests for the closed-form traffic model — including the paper's own
// headline number: an operational-intensity upper bound of ~0.332 for
// Half/Double on liver beam 1 (§V).

#include <gtest/gtest.h>

#include "kernels/analytic.hpp"

namespace pd::kernels {
namespace {

Workload liver1() {
  return Workload::from_paper(sparse::paper_table1()[0]);
}

TEST(Analytic, PaperOperationalIntensityForLiver1) {
  // The paper computes 6*nnz + 12*nr + 8*nc and reports OI ~= 0.332.
  const double oi = analytic_operational_intensity(KernelKind::kHalfDouble,
                                                   liver1());
  EXPECT_NEAR(oi, 0.332, 0.002);
}

TEST(Analytic, DramBytesFormulaMatchesHandCalculation) {
  const Workload w = liver1();
  EXPECT_DOUBLE_EQ(analytic_dram_bytes(KernelKind::kHalfDouble, w),
                   6.0 * w.nnz + 12.0 * w.rows + 8.0 * w.cols);
  EXPECT_DOUBLE_EQ(analytic_dram_bytes(KernelKind::kSingle, w),
                   8.0 * w.nnz + 8.0 * w.rows + 4.0 * w.cols);
  EXPECT_DOUBLE_EQ(analytic_dram_bytes(KernelKind::kDouble, w),
                   12.0 * w.nnz + 12.0 * w.rows + 8.0 * w.cols);
  EXPECT_DOUBLE_EQ(analytic_dram_bytes(KernelKind::kColIdx16, w),
                   4.0 * w.nnz + 12.0 * w.rows + 8.0 * w.cols);
}

TEST(Analytic, PrecisionOrderingOfOperationalIntensity) {
  // The paper's key observation: half storage -> higher OI than single,
  // single higher than double; 16-bit columns raise it further.
  const Workload w = liver1();
  const double hd = analytic_operational_intensity(KernelKind::kHalfDouble, w);
  const double single = analytic_operational_intensity(KernelKind::kSingle, w);
  const double dbl = analytic_operational_intensity(KernelKind::kDouble, w);
  const double u16 = analytic_operational_intensity(KernelKind::kColIdx16, w);
  EXPECT_GT(hd, single);
  EXPECT_GT(single, dbl);
  EXPECT_GT(u16, hd);
  // §V: dropping 2 bytes of column index should raise OI by about 6/4.
  EXPECT_NEAR(u16 / hd, 1.5, 0.02);
}

TEST(Analytic, SingleMatchesLibraryKernels) {
  const Workload w = liver1();
  EXPECT_DOUBLE_EQ(analytic_dram_bytes(KernelKind::kSingle, w),
                   analytic_dram_bytes(KernelKind::kCuSparseLike, w));
  EXPECT_DOUBLE_EQ(analytic_dram_bytes(KernelKind::kSingle, w),
                   analytic_dram_bytes(KernelKind::kGinkgoLike, w));
}

TEST(Analytic, BaselineStreamsLessDramButPaysAtomics) {
  const Workload w = liver1();
  EXPECT_LT(analytic_dram_bytes(KernelKind::kBaselineRs, w),
            analytic_dram_bytes(KernelKind::kHalfDouble, w));
  const auto in = analytic_perf_input(KernelKind::kBaselineRs, w);
  EXPECT_EQ(in.stats.traffic.l2_atomic_ops,
            static_cast<std::uint64_t>(w.nnz));
}

TEST(Analytic, PerfInputGeometry) {
  const Workload w = liver1();
  const auto hd = analytic_perf_input(KernelKind::kHalfDouble, w);
  EXPECT_EQ(hd.config.threads_per_block, kDefaultVectorTpb);
  EXPECT_EQ(hd.config.regs_per_thread, kVectorCsrRegs);
  // One warp per row.
  EXPECT_GE(hd.config.total_warps(), static_cast<std::uint64_t>(w.rows));
  EXPECT_EQ(hd.precision, gpusim::FlopPrecision::kFp64);

  const auto base = analytic_perf_input(KernelKind::kBaselineRs, w);
  EXPECT_EQ(base.config.threads_per_block, kDefaultBaselineTpb);
  // One warp per column.
  EXPECT_LT(base.config.total_warps(), hd.config.total_warps());

  const auto single = analytic_perf_input(KernelKind::kSingle, w);
  EXPECT_EQ(single.precision, gpusim::FlopPrecision::kFp32);
}

TEST(Analytic, MeanWorkPerWarpFollowsNonEmptyRows) {
  Workload w = liver1();
  const auto in = analytic_perf_input(KernelKind::kHalfDouble, w);
  EXPECT_NEAR(in.mean_work_per_warp, w.nnz / (0.3 * w.rows), 1.0);
}

TEST(Analytic, WorkloadFromStatsAndPaperAgree) {
  sparse::MatrixStats s;
  s.rows = 100;
  s.cols = 10;
  s.nnz = 500;
  s.empty_row_fraction = 0.7;
  const Workload w = Workload::from_stats(s);
  EXPECT_DOUBLE_EQ(w.rows, 100.0);
  EXPECT_DOUBLE_EQ(w.mean_nnz_per_nonempty_row(), 500.0 / 30.0);
}

TEST(Analytic, DegenerateWorkloadThrows) {
  Workload w;
  EXPECT_THROW(analytic_dram_bytes(KernelKind::kHalfDouble, w), pd::Error);
}

TEST(Analytic, CpuWorkloadShape) {
  const auto cw = analytic_cpu_workload(liver1());
  EXPECT_DOUBLE_EQ(cw.nnz, 1.48e9);
  EXPECT_DOUBLE_EQ(cw.flops, 2.96e9);
  EXPECT_GT(cw.stream_bytes, 4.0 * 1.48e9 - 1.0);
}

TEST(Analytic, KernelNames) {
  EXPECT_STREQ(to_string(KernelKind::kHalfDouble), "Half/Double");
  EXPECT_STREQ(to_string(KernelKind::kBaselineRs), "GPU Baseline");
  EXPECT_STREQ(to_string(KernelKind::kCuSparseLike), "cuSPARSE-like");
}

TEST(Analytic, FullScalePredictionsReproducePaperHeadlines) {
  // Putting the model together at paper scale: Half/Double ~420 GFLOP/s at
  // 80-87% of A100 peak bandwidth; baseline ~3-4x slower; single slower
  // than half/double by roughly the OI ratio.
  const auto spec = gpusim::make_a100();
  const Workload w = liver1();

  const auto hd =
      gpusim::estimate_performance(spec, analytic_perf_input(KernelKind::kHalfDouble, w));
  EXPECT_GT(hd.gflops, 350.0);
  EXPECT_LT(hd.gflops, 500.0);       // paper: ~420
  EXPECT_GT(hd.bandwidth_fraction, 0.78);
  EXPECT_LT(hd.bandwidth_fraction, 0.88);

  const auto single =
      gpusim::estimate_performance(spec, analytic_perf_input(KernelKind::kSingle, w));
  EXPECT_LT(single.gflops, hd.gflops);
  EXPECT_NEAR(single.gflops / hd.gflops,
              analytic_operational_intensity(KernelKind::kSingle, w) /
                  analytic_operational_intensity(KernelKind::kHalfDouble, w),
              0.08);

  const auto base = gpusim::estimate_performance(
      spec, analytic_perf_input(KernelKind::kBaselineRs, w));
  const double speedup = hd.gflops / base.gflops;
  EXPECT_GT(speedup, 2.5);
  EXPECT_LT(speedup, 4.5);  // paper: up to 4x, average ~3x
}

TEST(Analytic, FullScaleCpuSpeedupsMatchSectionVII) {
  // §VII: GPU Baseline ~17x over the CPU engine; Half/Double ~46x.
  const auto spec = gpusim::make_a100();
  const auto cpu_spec = gpusim::make_i9_7940x();
  const Workload w = liver1();

  const auto cpu = gpusim::estimate_cpu_performance(cpu_spec,
                                                    analytic_cpu_workload(w));
  const auto base = gpusim::estimate_performance(
      spec, analytic_perf_input(KernelKind::kBaselineRs, w));
  const auto hd = gpusim::estimate_performance(
      spec, analytic_perf_input(KernelKind::kHalfDouble, w));

  const double base_speedup = base.gflops / cpu.gflops;
  const double hd_speedup = hd.gflops / cpu.gflops;
  EXPECT_GT(base_speedup, 10.0);
  EXPECT_LT(base_speedup, 30.0);
  EXPECT_GT(hd_speedup, 35.0);
  EXPECT_LT(hd_speedup, 100.0);
  EXPECT_GT(hd_speedup, base_speedup);
}

}  // namespace
}  // namespace pd::kernels
