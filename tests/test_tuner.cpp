// Fast-tier autotuner suite (kernels/tuner.hpp, docs/fast_tier.md).
//
// Pins the autotuner's three contracts:
//  (a) decision table — choose_fast_format picks the fewest streamed bytes
//      with the documented tie order (rsformat > quantized SELL > float
//      SELL), and degrades to the two-way choice when quantized is
//      unavailable;
//  (b) determinism — trials == 0 (the CI pin, PROTONDOSE_TUNER_TRIALS=0)
//      runs the byte model only, so repeated tunes of the same matrix make
//      the same decision; measured runs still return a valid config;
//  (c) safety — tuning and applying a config never perturbs Tier::kBitwise
//      bits, and the EngineCache keeps a plan's config across LRU eviction
//      (a hot plan is tuned exactly once per register_plan).
//
// Suite names start with Tuner so CI can run `ctest -R "FastTier|Tuner"`
// under the sanitizers.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "cases/cases.hpp"
#include "common/rng.hpp"
#include "gpusim/device.hpp"
#include "kernels/dose_engine.hpp"
#include "kernels/tuner.hpp"
#include "service/dose_service.hpp"
#include "service/engine_cache.hpp"
#include "sparse/convert.hpp"
#include "sparse/random.hpp"
#include "sparse/sellcs.hpp"

namespace pd::kernels {
namespace {

using Tier = DoseEngine::Tier;
using FastFormat = DoseEngine::FastFormat;
using Mode = DoseEngine::Mode;
using Backend = DoseEngine::Backend;

DoseEngine make_engine() {
  static const cases::BeamDataset ds = cases::generate_all_beams(0.2).front();
  return DoseEngine(ds.beam.matrix, gpusim::make_a100(), Mode::kHalfDouble,
                    kDefaultVectorTpb, SpmvFamily::kVector, Backend::kNative);
}

TuneOptions model_only() {
  TuneOptions opts;
  opts.trials = 0;
  return opts;
}

// --- (a) decision table ------------------------------------------------------

TEST(TunerDecisionTable, PicksFewestBytesWithDocumentedTieOrder) {
  // Each row: {rs, sell, sellq} bytes -> expected format.
  struct Row {
    std::uint64_t rs, sell, sellq;
    FastFormat expect;
  };
  const Row rows[] = {
      {100, 200, 150, FastFormat::kRsFormat},   // rsformat smallest
      {200, 150, 100, FastFormat::kSellCsQ},    // quantized smallest
      {200, 100, 150, FastFormat::kSellCs},     // float SELL smallest
      {100, 200, 100, FastFormat::kRsFormat},   // tie rs/sellq -> rsformat
      {200, 100, 100, FastFormat::kSellCsQ},    // tie sellq/sell -> quantized
      {100, 100, 100, FastFormat::kRsFormat},   // three-way tie -> rsformat
      {200, 100, 0, FastFormat::kSellCs},       // quantized unavailable
      {100, 200, 0, FastFormat::kRsFormat},     // two-way, rsformat wins
      {100, 100, 0, FastFormat::kRsFormat},     // two-way tie -> rsformat
  };
  for (const Row& row : rows) {
    const FastFormatChoice c = choose_fast_format(row.rs, row.sell, row.sellq);
    EXPECT_EQ(c.format, row.expect)
        << "rs=" << row.rs << " sell=" << row.sell << " sellq=" << row.sellq;
    const std::uint64_t expect_bytes = row.expect == FastFormat::kRsFormat
                                           ? row.rs
                                       : row.expect == FastFormat::kSellCsQ
                                           ? row.sellq
                                           : row.sell;
    EXPECT_EQ(c.chosen_bytes(), expect_bytes);
    EXPECT_EQ(c.prefer_rsformat(), row.expect == FastFormat::kRsFormat);
  }
}

TEST(TunerDecisionTable, ModelBytesMatchTheRealBuilders) {
  // The deterministic stage is only trustworthy if the byte model is exact.
  DoseEngine engine = make_engine();
  const sparse::CsrF64 wide = engine.stored_matrix_as_double();
  std::vector<std::uint32_t> all_lens, stored_lens;
  for (std::uint64_t r = 0; r < wide.num_rows; ++r) {
    const auto n = static_cast<std::uint32_t>(wide.row_nnz(r));
    all_lens.push_back(n);
    if (n > 0) {
      stored_lens.push_back(n);
    }
  }
  for (const std::uint32_t c : {8u, 32u}) {
    for (const std::uint32_t sigma : {256u, 1024u}) {
      const auto sell =
          sparse::csr_to_sellcs(sparse::convert_values<float>(wide), c, sigma);
      EXPECT_EQ(sellcs_model_bytes(all_lens, wide.num_cols, c, sigma, false),
                sell.bytes())
          << "float C=" << c << " sigma=" << sigma;
      const auto sellq = sparse::csr_to_sellcs_q(wide, c, sigma);
      EXPECT_EQ(sellcs_model_bytes(stored_lens, wide.num_cols, c, sigma, true),
                sellq.bytes())
          << "quantized C=" << c << " sigma=" << sigma;
    }
  }
}

// --- (b) determinism ---------------------------------------------------------

TEST(TunerDeterminism, ModelModeIsReproducible) {
  DoseEngine engine = make_engine();
  const TunedConfig a = autotune_fast_tier(engine, model_only());
  const TunedConfig b = autotune_fast_tier(engine, model_only());
  EXPECT_TRUE(same_decision(a, b));
  EXPECT_EQ(a.trials, 0u);
  EXPECT_EQ(a.us_per_product, 0.0);  // nothing was measured
  EXPECT_EQ(a.candidates.size(), b.candidates.size());
  ASSERT_FALSE(a.candidates.empty());
  // Candidates come back in model-rank order: non-decreasing streamed bytes.
  for (std::size_t i = 1; i < a.candidates.size(); ++i) {
    EXPECT_LE(a.candidates[i - 1].streamed_bytes,
              a.candidates[i].streamed_bytes);
  }
  // The winner is the model front-runner and its bytes beat CSR-double.
  EXPECT_EQ(a.streamed_bytes, a.candidates.front().streamed_bytes);
  EXPECT_LT(a.streamed_bytes, engine.stored_matrix_as_double().bytes());
}

TEST(TunerDeterminism, EnvPinOverridesTrials) {
  ::setenv("PROTONDOSE_TUNER_TRIALS", "0", 1);
  const TuneOptions opts = tune_options_from_env();
  ::unsetenv("PROTONDOSE_TUNER_TRIALS");
  EXPECT_EQ(opts.trials, 0u);
  ::setenv("PROTONDOSE_TUNER_TRIALS", "7", 1);
  const TuneOptions opts7 = tune_options_from_env();
  ::unsetenv("PROTONDOSE_TUNER_TRIALS");
  EXPECT_EQ(opts7.trials, 7u);
}

TEST(TunerDeterminism, MeasuredModeReturnsAValidConfig) {
  DoseEngine engine = make_engine();
  TuneOptions opts;
  opts.trials = 1;
  opts.probe_batch = 4;
  const TunedConfig config = autotune_fast_tier(engine, opts);
  EXPECT_NE(config.format, FastFormat::kAuto);  // always a concrete format
  EXPECT_GT(config.streamed_bytes, 0u);
  EXPECT_GE(config.fast_threads, 0u);
  ASSERT_FALSE(config.candidates.empty());
  // At least one finalist was actually measured.
  bool any_measured = false;
  for (const TuneCandidate& c : config.candidates) {
    any_measured = any_measured || c.measured;
  }
  EXPECT_TRUE(any_measured);
  if (config.format == FastFormat::kRsFormat) {
    // The batch probe ran; width 1 (no win) or the probed width.
    EXPECT_TRUE(config.batch_width == 1 || config.batch_width == 4);
  }
}

// --- (c) safety --------------------------------------------------------------

TEST(TunerSafety, TuningNeverPerturbsBitwiseBits) {
  DoseEngine engine = make_engine();
  Rng rng(42);
  const auto x =
      sparse::random_vector(rng, engine.num_spots(), 0.0, 2.0);
  const std::vector<double> before = engine.compute(x);

  const TunedConfig config = autotune_fast_tier(engine, model_only());
  EXPECT_EQ(engine.tier(), Tier::kBitwise);  // tuner restored the tier
  EXPECT_EQ(engine.compute(x), before);

  // Applying the config (tuned threads, geometry, kAuto resolution) must
  // not touch the bitwise path either — fast threads live on a separate
  // executor.
  apply_tuned(engine, config);
  EXPECT_EQ(engine.compute(x), before);

  // And a fast kAuto compute resolves to the tuned format without touching
  // the bitwise bits afterwards.
  engine.set_tier(Tier::kFast, FastFormat::kAuto);
  EXPECT_EQ(engine.fast_format(), config.format);
  (void)engine.compute(x);
  engine.set_tier(Tier::kBitwise);
  EXPECT_EQ(engine.compute(x), before);
}

TEST(TunerSafety, CacheTunesOncePerPlanAcrossEviction) {
  Rng rng(7);
  const auto matrix_a = sparse::random_csr(rng, 400, 120, 10.0,
                                           sparse::RandomStructure::kSkewed);
  const auto matrix_b = sparse::random_csr(rng, 300, 90, 8.0,
                                           sparse::RandomStructure::kSkewed);

  service::EngineParams params;
  params.device = gpusim::make_a100();
  params.backend = Backend::kNative;
  params.autotune = true;
  params.tune_options = model_only();
  service::EngineCache cache(1, params);  // capacity 1 forces eviction thrash
  cache.register_plan("a", [&] { return sparse::CsrF64(matrix_a); });
  cache.register_plan("b", [&] { return sparse::CsrF64(matrix_b); });

  (void)cache.acquire("a");
  const auto first = cache.tuned_config("a");
  ASSERT_NE(first, nullptr);
  // Thrash: each acquire evicts the other plan's engine, but never its
  // config — the tune counter must stay at one per plan.
  for (int i = 0; i < 3; ++i) {
    (void)cache.acquire("b");
    (void)cache.acquire("a");
  }
  const service::EngineCacheStats stats = cache.stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_EQ(stats.tunes, 2u);  // one per plan, ever
  EXPECT_EQ(stats.tuned_plans, 2u);
  const auto again = cache.tuned_config("a");
  ASSERT_NE(again, nullptr);
  EXPECT_TRUE(same_decision(*first, *again));

  // Replacing the source invalidates the tuning (the matrix may differ).
  cache.register_plan("a", [&] { return sparse::CsrF64(matrix_b); });
  EXPECT_EQ(cache.tuned_config("a"), nullptr);
  (void)cache.acquire("a");
  EXPECT_EQ(cache.stats().tunes, 3u);
}

TEST(TunerSafety, ServiceWithAutotuneKeepsBitwiseContractAndServesAuto) {
  Rng rng(77);
  const auto plan_matrix = sparse::random_csr(
      rng, 300, 90, 12.0, sparse::RandomStructure::kSkewed);

  service::ServiceConfig config;
  config.workers = 2;
  config.batch_cap = 4;
  config.flush_deadline_ms = 0.5;
  config.engine.device = gpusim::make_a100();
  config.engine.backend = Backend::kNative;
  config.engine.autotune = true;
  config.engine.tune_options = model_only();
  service::DoseService svc(config);
  svc.register_plan("p", [&] { return sparse::CsrF64(plan_matrix); });

  DoseEngine oracle(sparse::CsrF64(plan_matrix), gpusim::make_a100(),
                    Mode::kHalfDouble, kDefaultVectorTpb, SpmvFamily::kVector,
                    Backend::kNative);

  std::vector<service::Ticket> bitwise_tickets;
  std::vector<std::vector<double>> bitwise_weights;
  std::vector<service::Ticket> auto_tickets;
  for (int i = 0; i < 8; ++i) {
    Rng wrng(100 + i);
    std::vector<double> w = sparse::random_vector(wrng, 90, 0.0, 2.0);
    service::SubmitOptions opts;
    if (i % 2 == 0) {
      bitwise_weights.push_back(w);
      bitwise_tickets.push_back(svc.submit("p", std::move(w), opts));
    } else {
      opts.tier = Tier::kFast;
      opts.fast_format = FastFormat::kAuto;
      auto_tickets.push_back(svc.submit("p", std::move(w), opts));
    }
  }
  svc.drain();

  for (std::size_t i = 0; i < bitwise_tickets.size(); ++i) {
    service::DoseResult r = bitwise_tickets[i].result.get();
    ASSERT_EQ(r.status, service::RequestStatus::kOk);
    // Autotune on: default-tier traffic still bitwise-matches a fresh
    // sequential engine.
    EXPECT_EQ(r.dose, oracle.compute(bitwise_weights[i]));
  }
  for (service::Ticket& t : auto_tickets) {
    service::DoseResult r = t.result.get();
    ASSERT_EQ(r.status, service::RequestStatus::kOk);
    EXPECT_EQ(r.dose.size(), 300u);
  }
  const auto tuned = svc.tuned_config("p");
  ASSERT_NE(tuned, nullptr);
  EXPECT_NE(tuned->format, FastFormat::kAuto);
  EXPECT_EQ(svc.stats().cache.tunes, 1u);
}

}  // namespace
}  // namespace pd::kernels
