// Tests for the launch engine: grid iteration, schedule permutation, traffic
// and FLOP accounting through WarpCtx, and atomic ordering semantics.

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "gpusim/launch.hpp"

namespace pd::gpusim {
namespace {

TEST(LaunchConfig, WarpPerItemGeometry) {
  const LaunchConfig cfg = LaunchConfig::warp_per_item(1000, 512, 40);
  EXPECT_EQ(cfg.warps_per_block(), 16u);
  EXPECT_EQ(cfg.num_blocks, 63u);  // ceil(1000 / 16)
  EXPECT_EQ(cfg.total_warps(), 1008u);
  EXPECT_THROW(LaunchConfig::warp_per_item(10, 48, 40), pd::Error);
}

TEST(Engine, VisitsEveryWarpExactlyOnce) {
  Gpu gpu(make_a100());
  const LaunchConfig cfg = LaunchConfig::warp_per_item(500, 128, 32);
  std::vector<int> visits(cfg.total_warps(), 0);
  const KernelStats stats = gpu.run(cfg, [&](WarpCtx& w) {
    visits[w.global_warp_id()]++;
  });
  for (const int v : visits) {
    EXPECT_EQ(v, 1);
  }
  EXPECT_EQ(stats.warps_launched, cfg.total_warps());
  EXPECT_EQ(stats.blocks_launched, cfg.num_blocks);
}

TEST(Engine, ScheduleSeedPermutesBlockOrderButVisitsAll) {
  Gpu gpu(make_a100());
  const LaunchConfig cfg = LaunchConfig::warp_per_item(256, 32, 32);
  std::vector<std::uint64_t> order_a, order_b;
  gpu.run(cfg, [&](WarpCtx& w) { order_a.push_back(w.block_idx()); }, 111);
  gpu.run(cfg, [&](WarpCtx& w) { order_b.push_back(w.block_idx()); }, 222);
  EXPECT_NE(order_a, order_b);  // different schedules
  std::sort(order_a.begin(), order_a.end());
  std::sort(order_b.begin(), order_b.end());
  EXPECT_EQ(order_a, order_b);  // same set of blocks
}

TEST(Engine, SameSeedSameSchedule) {
  Gpu gpu(make_a100());
  const LaunchConfig cfg = LaunchConfig::warp_per_item(128, 64, 32);
  std::vector<std::uint64_t> a, b;
  gpu.run(cfg, [&](WarpCtx& w) { a.push_back(w.block_idx()); }, 7);
  gpu.run(cfg, [&](WarpCtx& w) { b.push_back(w.block_idx()); }, 7);
  EXPECT_EQ(a, b);
}

TEST(Engine, RejectsBadConfigs) {
  Gpu gpu(make_a100());
  LaunchConfig cfg;
  cfg.threads_per_block = 512;
  cfg.num_blocks = 0;
  EXPECT_THROW(gpu.run(cfg, [](WarpCtx&) {}), pd::Error);
  cfg.num_blocks = 1;
  cfg.threads_per_block = 2048;
  EXPECT_THROW(gpu.run(cfg, [](WarpCtx&) {}), pd::Error);
}

TEST(Engine, CopyKernelComputesAndCountsTraffic) {
  Gpu gpu(make_a100());
  const std::uint64_t n = 32 * 64;
  std::vector<double> src(n), dst(n, 0.0);
  std::iota(src.begin(), src.end(), 0.0);

  const LaunchConfig cfg = LaunchConfig::warp_per_item(n / 32, 128, 32);
  const KernelStats stats = gpu.run(cfg, [&](WarpCtx& w) {
    const std::uint64_t base = w.global_warp_id() * kWarpSize;
    if (base >= n) return;
    const auto vals = w.load_contiguous(src.data(), base, kFullMask);
    w.store_contiguous(dst.data(), base, vals, kFullMask);
  });

  EXPECT_EQ(dst, src);
  // Reads: n doubles streamed once.  (Writes appear as write-allocate reads
  // plus final writebacks, so read traffic is 2x.)  Allow one sector of
  // slack per array for allocation alignment.
  EXPECT_NEAR(static_cast<double>(stats.traffic.dram_read_bytes),
              2.0 * n * sizeof(double), 64.0);
  EXPECT_NEAR(static_cast<double>(stats.traffic.dram_write_bytes),
              1.0 * n * sizeof(double), 32.0);
  EXPECT_EQ(stats.operational_intensity(), 0.0);  // no FLOPs counted
}

TEST(Engine, FlopAccounting) {
  Gpu gpu(make_a100());
  const LaunchConfig cfg = LaunchConfig::warp_per_item(4, 128, 32);
  const KernelStats stats = gpu.run(cfg, [&](WarpCtx& w) {
    w.count_flops(2, kFullMask);          // 64 flops per warp
    w.count_flops(1, first_lanes(8));     // 8 flops per warp
  });
  EXPECT_EQ(stats.compute.flops, 4 * (64 + 8));
  EXPECT_NEAR(stats.compute.simt_efficiency(),
              static_cast<double>(64 + 8) / (64 + 32), 1e-12);
}

TEST(Engine, UniformLoadBroadcasts) {
  Gpu gpu(make_a100());
  const double value = 42.5;
  double out = 0.0;
  const LaunchConfig cfg = LaunchConfig::warp_per_item(1, 32, 32);
  gpu.run(cfg, [&](WarpCtx& w) {
    out = w.load_uniform(&value);
  });
  EXPECT_EQ(out, 42.5);
}

TEST(Engine, GatherReadsIndexedValues) {
  Gpu gpu(make_a100());
  std::vector<double> table(100);
  std::iota(table.begin(), table.end(), 0.0);
  Lanes<std::uint32_t> idx;
  for (unsigned i = 0; i < kWarpSize; ++i) idx[i] = 3 * i;
  Lanes<double> got{};
  const LaunchConfig cfg = LaunchConfig::warp_per_item(1, 32, 32);
  gpu.run(cfg, [&](WarpCtx& w) {
    got = w.gather(table.data(), idx, kFullMask);
  });
  for (unsigned i = 0; i < kWarpSize; ++i) {
    EXPECT_EQ(got[i], 3.0 * i);
  }
}

TEST(Engine, AtomicAddAppliesInScheduleOrder) {
  // Two warps atomically add to the same cell: the value is exact either
  // way for integers-in-doubles, but the *order* differs with the schedule.
  // Use values whose FP sum is order-sensitive to observe it.
  Gpu gpu(make_a100());
  const LaunchConfig cfg = LaunchConfig::warp_per_item(64, 32, 32);

  auto run_once = [&](std::uint64_t seed) {
    std::vector<double> cell(1, 0.0);
    gpu.run(cfg, [&](WarpCtx& w) {
      Lanes<std::uint64_t> zero_idx{};
      Lanes<double> val{};
      // Order-sensitive values: non-representable reciprocals make the FP
      // sum depend on accumulation order in the last ulps.
      val[0] = 1.0 / static_cast<double>(w.global_warp_id() + 1);
      w.atomic_add_scatter(cell.data(), zero_idx, val, 0x1u);
    }, seed);
    return cell[0];
  };

  const double a = run_once(1);
  const double b = run_once(1);
  EXPECT_EQ(a, b);  // fixed schedule -> deterministic
  // Across many seeds, at least one ordering must differ in the last ulp.
  bool differs = false;
  for (std::uint64_t seed = 2; seed < 20 && !differs; ++seed) {
    differs = (run_once(seed) != a);
  }
  EXPECT_TRUE(differs);
}

TEST(Engine, ColdCachePerLaunchByDefault) {
  Gpu gpu(make_a100());
  std::vector<double> data(1024, 1.0);
  const LaunchConfig cfg = LaunchConfig::warp_per_item(data.size() / 32, 128, 32);
  auto body = [&](WarpCtx& w) {
    const std::uint64_t base = w.global_warp_id() * kWarpSize;
    if (base < data.size()) {
      w.load_contiguous(data.data(), base, kFullMask);
    }
  };
  const KernelStats first = gpu.run(cfg, body);
  const KernelStats second = gpu.run(cfg, body);
  EXPECT_EQ(first.traffic.dram_read_bytes, second.traffic.dram_read_bytes);
  // Warm-cache launch, in contrast, re-reads nothing.
  const KernelStats warm = gpu.run(cfg, body, 0, /*cold_cache=*/false);
  EXPECT_EQ(warm.traffic.dram_read_bytes, 0u);
}

}  // namespace
}  // namespace pd::gpusim
