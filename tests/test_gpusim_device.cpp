// Tests for device descriptors and the occupancy calculator.

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "gpusim/device.hpp"

namespace pd::gpusim {
namespace {

TEST(DeviceSpecs, PublishedNumbers) {
  const DeviceSpec a100 = make_a100();
  EXPECT_EQ(a100.name, "A100");
  EXPECT_DOUBLE_EQ(a100.peak_bw_gbs, 1555.0);      // paper §V-B
  EXPECT_DOUBLE_EQ(a100.peak_fp64_gflops, 9700.0); // paper §I: ~9.4-9.7 TF
  EXPECT_EQ(a100.l2_bytes, 40ull * 1024 * 1024);   // paper §IV: 40 MB
  EXPECT_EQ(a100.num_sms, 108u);

  const DeviceSpec v100 = make_v100();
  EXPECT_DOUBLE_EQ(v100.peak_bw_gbs, 897.0);
  EXPECT_EQ(v100.l2_bytes, 6ull * 1024 * 1024);

  const DeviceSpec p100 = make_p100();
  EXPECT_DOUBLE_EQ(p100.peak_bw_gbs, 732.0);
  EXPECT_EQ(p100.l2_bytes, 4ull * 1024 * 1024);
}

TEST(DeviceSpecs, CalibratedEfficienciesMatchPaperOrdering) {
  // A100/V100 achieve 80-88% of peak in the paper; P100 only ~41%.
  EXPECT_GT(make_a100().mem_efficiency, 0.8);
  EXPECT_GT(make_v100().mem_efficiency, 0.8);
  EXPECT_LT(make_p100().mem_efficiency, 0.5);
}

TEST(Occupancy, ThreadLimited) {
  // 512 threads/block at 32 regs: 4 blocks x 512 = 2048 threads (100%).
  const Occupancy occ = compute_occupancy(make_a100(), 512, 32);
  EXPECT_EQ(occ.blocks_per_sm, 4u);
  EXPECT_DOUBLE_EQ(occ.fraction, 1.0);
  EXPECT_EQ(occ.limiter, Occupancy::Limiter::kThreads);
}

TEST(Occupancy, RegisterLimited) {
  // The paper's half/double kernel footprint (40 regs) at 512 tpb:
  // 65536 / (40*512) = 3 blocks -> 1536 threads = 75%.
  const Occupancy occ = compute_occupancy(make_a100(), 512, 40);
  EXPECT_EQ(occ.blocks_per_sm, 3u);
  EXPECT_DOUBLE_EQ(occ.fraction, 0.75);
  EXPECT_EQ(occ.limiter, Occupancy::Limiter::kRegisters);
}

TEST(Occupancy, BlockCountLimited) {
  // 32-thread blocks: the 32-blocks/SM cap bites first -> 1024 threads = 50%.
  const Occupancy occ = compute_occupancy(make_a100(), 32, 32);
  EXPECT_EQ(occ.blocks_per_sm, 32u);
  EXPECT_DOUBLE_EQ(occ.fraction, 0.5);
  EXPECT_EQ(occ.limiter, Occupancy::Limiter::kBlocks);
}

TEST(Occupancy, Figure4Shape) {
  // The Figure 4 sweep for the 40-register kernel: 512 tpb must be at least
  // as good as every other candidate, with dips at 32 and 1024.
  const DeviceSpec spec = make_a100();
  const double occ512 = compute_occupancy(spec, 512, 40).fraction;
  EXPECT_GT(occ512, compute_occupancy(spec, 32, 40).fraction);
  EXPECT_GT(occ512, compute_occupancy(spec, 1024, 40).fraction);
  EXPECT_GE(occ512, compute_occupancy(spec, 256, 40).fraction);
  EXPECT_GE(occ512, compute_occupancy(spec, 128, 40).fraction);
}

TEST(Occupancy, InvalidConfigurations) {
  const DeviceSpec spec = make_a100();
  EXPECT_EQ(compute_occupancy(spec, 0, 32).limiter, Occupancy::Limiter::kInvalid);
  EXPECT_EQ(compute_occupancy(spec, 48, 32).limiter,
            Occupancy::Limiter::kInvalid);  // not a multiple of 32
  EXPECT_EQ(compute_occupancy(spec, 2048, 32).limiter,
            Occupancy::Limiter::kInvalid);  // above max threads per block
  EXPECT_THROW(compute_occupancy(spec, 512, 0), pd::Error);
}

TEST(Occupancy, ExtremeRegisterPressureYieldsZeroBlocks) {
  const Occupancy occ = compute_occupancy(make_a100(), 1024, 255);
  EXPECT_EQ(occ.blocks_per_sm, 0u);
  EXPECT_EQ(occ.limiter, Occupancy::Limiter::kInvalid);
}

TEST(Occupancy, LimiterNames) {
  EXPECT_STREQ(to_string(Occupancy::Limiter::kThreads), "threads");
  EXPECT_STREQ(to_string(Occupancy::Limiter::kRegisters), "registers");
  EXPECT_STREQ(to_string(Occupancy::Limiter::kBlocks), "blocks");
  EXPECT_STREQ(to_string(Occupancy::Limiter::kInvalid), "invalid");
}

}  // namespace
}  // namespace pd::gpusim
