// Tests for the host reference SpMVs, in particular that the warp-order
// reference really reproduces the kernel's accumulation order semantics.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "sparse/convert.hpp"
#include "sparse/parallel_spmv.hpp"
#include "sparse/random.hpp"
#include "sparse/reference.hpp"

namespace pd::sparse {
namespace {

TEST(Reference, IdentityMatrix) {
  CsrF64 eye;
  eye.num_rows = eye.num_cols = 4;
  eye.row_ptr = {0, 1, 2, 3, 4};
  eye.col_idx = {0, 1, 2, 3};
  eye.values = {1.0, 1.0, 1.0, 1.0};
  const std::vector<double> x{1.0, 2.0, 3.0, 4.0};
  std::vector<double> y(4);
  reference_spmv(eye, x, y);
  EXPECT_EQ(y, x);
  warp_order_spmv(eye, x, y);
  EXPECT_EQ(y, x);
}

TEST(Reference, EmptyRowsYieldZero) {
  CsrF64 m;
  m.num_rows = 3;
  m.num_cols = 2;
  m.row_ptr = {0, 0, 2, 2};
  m.col_idx = {0, 1};
  m.values = {2.0, 3.0};
  const std::vector<double> x{10.0, 100.0};
  std::vector<double> y(3, -1.0);
  reference_spmv(m, x, y);
  EXPECT_DOUBLE_EQ(y[0], 0.0);
  EXPECT_DOUBLE_EQ(y[1], 320.0);
  EXPECT_DOUBLE_EQ(y[2], 0.0);
}

TEST(Reference, SizeMismatchesThrow) {
  CsrF64 m;
  m.num_rows = 2;
  m.num_cols = 2;
  m.row_ptr = {0, 0, 0};
  std::vector<double> x(3), y(2);
  EXPECT_THROW(reference_spmv(m, x, y), pd::Error);
  std::vector<double> x2(2), y2(1);
  EXPECT_THROW(reference_spmv(m, x2, y2), pd::Error);
  EXPECT_THROW(warp_order_spmv(m, x, y), pd::Error);
}

TEST(Reference, WarpOrderMatchesSequentialWithinTolerance) {
  Rng rng(3);
  const CsrF64 m = random_csr(rng, 300, 80, 20.0, RandomStructure::kSkewed);
  const std::vector<double> x = random_vector(rng, m.num_cols);
  std::vector<double> seq(m.num_rows), warp(m.num_rows);
  reference_spmv(m, x, seq);
  warp_order_spmv(m, x, warp);
  for (std::uint64_t r = 0; r < m.num_rows; ++r) {
    EXPECT_NEAR(warp[r], seq[r], 1e-12 * (1.0 + std::fabs(seq[r])));
  }
}

TEST(Reference, WarpOrderRowDotIsExactlyTheButterfly) {
  // Construct a row of 64 elements and verify against a hand-rolled
  // 32-lane strided accumulation + tree fold.
  Rng rng(9);
  CsrF64 m;
  m.num_rows = 1;
  m.num_cols = 64;
  m.row_ptr = {0, 64};
  std::vector<double> x(64);
  for (std::uint32_t i = 0; i < 64; ++i) {
    m.col_idx.push_back(i);
    m.values.push_back(rng.uniform(0.0, 1.0));
    x[i] = rng.uniform(0.0, 1.0);
  }

  double lanes[32] = {};
  for (unsigned k = 0; k < 64; ++k) {
    lanes[k % 32] += m.values[k] * x[m.col_idx[k]];
  }
  for (unsigned o = 16; o > 0; o /= 2) {
    for (unsigned i = 0; i < o; ++i) lanes[i] += lanes[i + o];
  }
  EXPECT_EQ(warp_order_row_dot(m, x, 0), lanes[0]);
}

TEST(ReferenceF32, MatchesDoubleWithinFloatTolerance) {
  Rng rng(21);
  const CsrF64 m64 = random_csr(rng, 100, 40, 8.0);
  const auto m32 = convert_values<float>(m64);
  std::vector<float> x32(m64.num_cols);
  std::vector<double> x64(m64.num_cols);
  for (std::size_t i = 0; i < x32.size(); ++i) {
    x64[i] = rng.uniform(0.0, 1.0);
    x32[i] = static_cast<float>(x64[i]);
  }
  std::vector<float> y32(m64.num_rows);
  std::vector<double> y64(m64.num_rows);
  reference_spmv_f32(m32, x32, y32);
  reference_spmv(m64, x64, y64);
  for (std::uint64_t r = 0; r < m64.num_rows; ++r) {
    EXPECT_NEAR(y32[r], y64[r], 1e-4 * (1.0 + std::fabs(y64[r])));
  }
}

TEST(ParallelSpmv, BitwiseEqualToSerialForEveryThreadCount) {
  // The row-parallel design needs no scratch arrays and no atomics: the
  // result is bit-identical for ANY thread count — the property the paper's
  // column-parallel CPU engine cannot have (its grouping changes with the
  // partition; see rsformat/cpu_engine.hpp).
  Rng rng(40);
  const CsrF64 m = random_csr(rng, 500, 90, 12.0, RandomStructure::kSkewed);
  const std::vector<double> x = random_vector(rng, m.num_cols);
  std::vector<double> serial(m.num_rows);
  reference_spmv(m, x, serial);
  for (const unsigned threads : {1u, 2u, 3u, 5u, 8u, 16u}) {
    std::vector<double> y(m.num_rows, -1.0);
    parallel_spmv(m, x, y, threads);
    EXPECT_EQ(y, serial) << threads << " threads";
  }
}

TEST(ParallelSpmv, HandlesDegenerateShapes) {
  CsrF64 empty;
  empty.num_rows = 3;
  empty.num_cols = 2;
  empty.row_ptr = {0, 0, 0, 0};
  std::vector<double> x(2, 1.0), y(3, 9.0);
  parallel_spmv(empty, x, y, 8);  // more threads than work
  for (const double v : y) EXPECT_EQ(v, 0.0);
  EXPECT_THROW(parallel_spmv(empty, x, y, 0), pd::Error);
  std::vector<double> bad(1);
  EXPECT_THROW(parallel_spmv(empty, bad, y, 2), pd::Error);
}

TEST(Convert, HalfNarrowingBoundsError) {
  Rng rng(30);
  const CsrF64 m = random_csr(rng, 50, 20, 5.0);
  const auto mh = convert_values<pd::Half>(m);
  ASSERT_EQ(mh.values.size(), m.values.size());
  for (std::size_t i = 0; i < m.values.size(); ++i) {
    const double err = std::fabs(mh.values[i].to_double() - m.values[i]);
    EXPECT_LE(err, 0.5 * pd::half_ulp(m.values[i]) * (1 + 1e-12));
  }
}

TEST(Convert, ColIndexNarrowing) {
  Rng rng(31);
  const CsrF64 m = random_csr(rng, 40, 100, 5.0);
  EXPECT_TRUE(fits_u16_columns(m));
  const auto m16 = narrow_col_index<std::uint16_t>(m);
  for (std::size_t i = 0; i < m.col_idx.size(); ++i) {
    EXPECT_EQ(static_cast<std::uint32_t>(m16.col_idx[i]), m.col_idx[i]);
  }

  CsrF64 wide;
  wide.num_rows = 1;
  wide.num_cols = 70000;  // like the liver cases: too wide for u16
  wide.row_ptr = {0, 1};
  wide.col_idx = {69999};
  wide.values = {1.0};
  EXPECT_FALSE(fits_u16_columns(wide));
  EXPECT_THROW(narrow_col_index<std::uint16_t>(wide), pd::Error);
}

}  // namespace
}  // namespace pd::sparse
