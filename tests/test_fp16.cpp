// Tests for the software binary16 implementation: exhaustive round-trips,
// round-to-nearest-even cases, specials, arithmetic, and the quantization
// bound the dose matrices rely on.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "common/rng.hpp"
#include "fp16/half.hpp"

namespace pd {
namespace {

TEST(Half, SizeIsTwoBytes) { EXPECT_EQ(sizeof(Half), 2u); }

TEST(Half, ExhaustiveBitRoundTrip) {
  // Every non-NaN binary16 value must survive half -> float -> half exactly.
  int checked = 0;
  for (std::uint32_t bits = 0; bits <= 0xffff; ++bits) {
    const Half h = Half::from_bits(static_cast<std::uint16_t>(bits));
    if (h.is_nan()) {
      continue;
    }
    const Half back(h.to_float());
    EXPECT_EQ(back.bits(), h.bits()) << "bits=" << bits;
    ++checked;
  }
  EXPECT_EQ(checked, 65536 - 2 * 1023);  // 2 * 1023 NaN payloads excluded
}

TEST(Half, ExhaustiveDoubleRoundTrip) {
  for (std::uint32_t bits = 0; bits <= 0xffff; ++bits) {
    const Half h = Half::from_bits(static_cast<std::uint16_t>(bits));
    if (h.is_nan()) {
      continue;
    }
    EXPECT_EQ(Half(h.to_double()).bits(), h.bits());
  }
}

TEST(Half, KnownValues) {
  EXPECT_EQ(Half(1.0f).bits(), 0x3c00);
  EXPECT_EQ(Half(-2.0f).bits(), 0xc000);
  EXPECT_EQ(Half(0.5f).bits(), 0x3800);
  EXPECT_EQ(Half(65504.0f).bits(), 0x7bff);  // max finite
  EXPECT_EQ(Half(0.0f).bits(), 0x0000);
  EXPECT_EQ(Half(-0.0f).bits(), 0x8000);
  EXPECT_FLOAT_EQ(Half::from_bits(0x3555).to_float(), 0.33325195f);
}

TEST(Half, RoundToNearestEven) {
  // 1 + 2^-11 is exactly halfway between 1.0 and the next half; RNE keeps
  // the even mantissa (1.0).
  EXPECT_EQ(Half(1.0f + std::ldexp(1.0f, -11)).bits(), 0x3c00);
  // 1 + 3*2^-11 is halfway between 1+2^-10 and 1+2^-9: rounds to even
  // mantissa 0x002 (1 + 2^-9).
  EXPECT_EQ(Half(1.0f + 3.0f * std::ldexp(1.0f, -11)).bits(), 0x3c02);
  // Just above halfway (one binary32 ulp past the tie) rounds up.
  EXPECT_EQ(Half(std::nextafter(1.0f + std::ldexp(1.0f, -11), 2.0f)).bits(),
            0x3c01);
}

TEST(Half, OverflowToInfinity) {
  EXPECT_TRUE(Half(65520.0f).is_inf());   // rounds up past max finite
  EXPECT_TRUE(Half(1e10f).is_inf());
  EXPECT_TRUE(Half(-1e10f).is_inf());
  EXPECT_TRUE(Half(-1e10f).signbit());
  EXPECT_EQ(Half(65519.0f).bits(), 0x7bff);  // just below the rounding cut
}

TEST(Half, SubnormalsRepresented) {
  const float min_sub = std::ldexp(1.0f, -24);
  EXPECT_EQ(Half(min_sub).bits(), 0x0001);
  EXPECT_TRUE(Half(min_sub).is_subnormal());
  // Below half of the smallest subnormal: flush to zero by RNE.
  EXPECT_EQ(Half(std::ldexp(1.0f, -26)).bits(), 0x0000);
  // Subnormal round-trips exactly.
  EXPECT_FLOAT_EQ(Half::from_bits(0x0001).to_float(), min_sub);
  EXPECT_FLOAT_EQ(Half::from_bits(0x03ff).to_float(),
                  1023.0f * std::ldexp(1.0f, -24));
}

TEST(Half, SubnormalRoundsUpToNormal) {
  // Largest subnormal + half a step rounds into the smallest normal.
  const float just_below_normal = std::ldexp(1.0f, -14) * 0.99999f;
  EXPECT_EQ(Half(just_below_normal).bits(), 0x0400);
}

TEST(Half, NanAndInfPropagate) {
  EXPECT_TRUE(Half(std::numeric_limits<float>::quiet_NaN()).is_nan());
  EXPECT_TRUE(Half(std::numeric_limits<float>::infinity()).is_inf());
  EXPECT_TRUE(std::isnan(Half::quiet_nan().to_float()));
  EXPECT_TRUE(std::isinf(Half::infinity().to_float()));
  EXPECT_FALSE(Half::infinity().is_nan());
  EXPECT_FALSE(Half::quiet_nan().is_inf());
}

TEST(Half, ComparisonSemantics) {
  using namespace pd::literals;
  EXPECT_TRUE(1.0_h < 2.0_h);
  EXPECT_TRUE(2.0_h >= 2.0_h);
  EXPECT_TRUE(Half(0.0f) == Half(-0.0f));  // signed zeros compare equal
  EXPECT_FALSE(Half::quiet_nan() == Half::quiet_nan());
  EXPECT_TRUE(Half::quiet_nan() != Half::quiet_nan());
  EXPECT_FALSE(Half::quiet_nan() < 1.0_h);
}

TEST(Half, ArithmeticMatchesFloat) {
  Rng rng(1234);
  for (int i = 0; i < 2000; ++i) {
    const Half a(rng.uniform(-100.0, 100.0));
    const Half b(rng.uniform(-100.0, 100.0));
    EXPECT_EQ((a + b).bits(), Half(a.to_float() + b.to_float()).bits());
    EXPECT_EQ((a * b).bits(), Half(a.to_float() * b.to_float()).bits());
    EXPECT_EQ((a - b).bits(), Half(a.to_float() - b.to_float()).bits());
  }
}

TEST(Half, CompoundAssignment) {
  Half a(2.0f);
  a += Half(3.0f);
  EXPECT_FLOAT_EQ(a.to_float(), 5.0f);
  a *= Half(2.0f);
  EXPECT_FLOAT_EQ(a.to_float(), 10.0f);
  a -= Half(4.0f);
  EXPECT_FLOAT_EQ(a.to_float(), 6.0f);
  a /= Half(3.0f);
  EXPECT_FLOAT_EQ(a.to_float(), 2.0f);
}

TEST(Half, NegationFlipsSignOnly) {
  EXPECT_EQ((-Half(1.5f)).bits(), Half(-1.5f).bits());
  EXPECT_TRUE((-Half::zero()).signbit());
}

TEST(Half, QuantizationErrorBound) {
  // Rounding any double to half must land within half_ulp/2 — this is the
  // bound the mixed-precision dose calculation inherits.
  Rng rng(77);
  for (int i = 0; i < 5000; ++i) {
    const double v = rng.uniform(1e-4, 60000.0);
    const double q = Half(v).to_double();
    EXPECT_LE(std::fabs(q - v), 0.5 * half_ulp(v) * (1.0 + 1e-12)) << v;
  }
}

TEST(Half, UlpValues) {
  EXPECT_DOUBLE_EQ(half_ulp(1.0), std::ldexp(1.0, -10));
  EXPECT_DOUBLE_EQ(half_ulp(2.0), std::ldexp(1.0, -9));
  EXPECT_DOUBLE_EQ(half_ulp(1e-6), std::ldexp(1.0, -24));  // subnormal region
}

TEST(Half, NumericLimits) {
  using L = std::numeric_limits<Half>;
  EXPECT_TRUE(L::is_specialized);
  EXPECT_EQ(L::max().bits(), 0x7bff);
  EXPECT_EQ(L::min().bits(), 0x0400);
  EXPECT_EQ(L::lowest().bits(), 0xfbff);
  EXPECT_FLOAT_EQ(L::epsilon().to_float(), std::ldexp(1.0f, -10));
  EXPECT_EQ(L::digits, 11);
}

TEST(Half, StreamOutput) {
  std::ostringstream os;
  os << Half(1.5f);
  EXPECT_EQ(os.str(), "1.5");
}

TEST(Half, IntConstructor) {
  EXPECT_EQ(Half(3).bits(), Half(3.0f).bits());
  EXPECT_EQ(Half(-7).bits(), Half(-7.0f).bits());
}

}  // namespace
}  // namespace pd
