// Tests for scenario-based robust optimization: worst-case and expected-value
// modes, SpMV-count scaling (the paper's cost motivation), and robustness of
// the resulting plan against the perturbed scenarios.

#include <gtest/gtest.h>

#include <algorithm>

#include "cases/cases.hpp"
#include "common/rng.hpp"
#include "gpusim/device.hpp"
#include "opt/robust.hpp"
#include "sparse/random.hpp"
#include "sparse/reference.hpp"

namespace pd::opt {
namespace {

/// Synthetic scenarios: a nominal matrix plus column-weight perturbations.
std::vector<sparse::CsrF64> synthetic_scenarios(std::size_t count,
                                                std::uint64_t seed) {
  Rng rng(seed);
  const auto nominal =
      sparse::random_csr(rng, 150, 30, 6.0, sparse::RandomStructure::kUniform);
  std::vector<sparse::CsrF64> scenarios{nominal};
  for (std::size_t k = 1; k < count; ++k) {
    sparse::CsrF64 shifted = nominal;
    for (auto& v : shifted.values) {
      v *= rng.uniform(0.85, 1.15);  // delivery perturbation
    }
    scenarios.push_back(std::move(shifted));
  }
  return scenarios;
}

DoseObjective toy_objective() {
  DoseObjective obj;
  ObjectiveTerm t;
  t.type = ObjectiveTerm::Type::kUniformDose;
  for (std::uint64_t v = 0; v < 50; ++v) t.voxels.push_back(v);
  t.dose_level = 2.0;
  t.weight = 10.0;
  obj.add_term(std::move(t));
  return obj;
}

TEST(Robust, RejectsInconsistentScenarios) {
  auto scenarios = synthetic_scenarios(2, 1);
  scenarios[1].num_cols -= 1;
  scenarios[1].col_idx.clear();
  scenarios[1].values.clear();
  scenarios[1].row_ptr.assign(scenarios[1].num_rows + 1, 0);
  EXPECT_THROW(RobustPlanOptimizer(std::move(scenarios), toy_objective(),
                                   gpusim::make_a100()),
               pd::Error);
  EXPECT_THROW(RobustPlanOptimizer({}, toy_objective(), gpusim::make_a100()),
               pd::Error);
}

TEST(Robust, RejectsBadWeights) {
  EXPECT_THROW(RobustPlanOptimizer(synthetic_scenarios(3, 2), toy_objective(),
                                   gpusim::make_a100(), RobustConfig{},
                                   {0.5, 0.5}),
               pd::Error);
  EXPECT_THROW(RobustPlanOptimizer(synthetic_scenarios(2, 2), toy_objective(),
                                   gpusim::make_a100(), RobustConfig{},
                                   {0.5, -0.5}),
               pd::Error);
}

TEST(Robust, WorstCaseObjectiveDecreasesMonotonically) {
  RobustConfig cfg;
  cfg.mode = RobustMode::kWorstCase;
  cfg.max_iterations = 12;
  RobustPlanOptimizer opt(synthetic_scenarios(3, 3), toy_objective(),
                          gpusim::make_a100(), cfg);
  const RobustResult r = opt.optimize();
  for (std::size_t i = 1; i < r.objective_history.size(); ++i) {
    EXPECT_LE(r.objective_history[i], r.objective_history[i - 1]);
  }
  EXPECT_LT(r.objective_history.back(), 0.8 * r.objective_history.front());
  // The robust value equals the max of the final per-scenario objectives.
  EXPECT_DOUBLE_EQ(r.objective_history.back(),
                   *std::max_element(r.final_scenario_objectives.begin(),
                                     r.final_scenario_objectives.end()));
}

TEST(Robust, ExpectedValueModeConverges) {
  RobustConfig cfg;
  cfg.mode = RobustMode::kExpectedValue;
  cfg.max_iterations = 12;
  RobustPlanOptimizer opt(synthetic_scenarios(3, 4), toy_objective(),
                          gpusim::make_a100(), cfg);
  const RobustResult r = opt.optimize();
  EXPECT_LT(r.objective_history.back(), r.objective_history.front());
  EXPECT_EQ(r.scenario_doses.size(), 3u);
  for (const double w : r.spot_weights) {
    EXPECT_GE(w, 0.0);
  }
}

TEST(Robust, SpmvCountScalesWithScenarios) {
  // The paper's motivation: robustness multiplies dose calculations.
  RobustConfig cfg;
  cfg.max_iterations = 6;
  cfg.mode = RobustMode::kExpectedValue;
  RobustPlanOptimizer opt1(synthetic_scenarios(1, 5), toy_objective(),
                           gpusim::make_a100(), cfg);
  RobustPlanOptimizer opt5(synthetic_scenarios(5, 5), toy_objective(),
                           gpusim::make_a100(), cfg);
  const auto r1 = opt1.optimize();
  const auto r5 = opt5.optimize();
  EXPECT_GT(r5.spmv_count, 3 * r1.spmv_count);
}

TEST(Robust, WorstCasePlanIsMoreRobustThanNominalPlan) {
  // Optimize on the nominal scenario only, then evaluate across all
  // scenarios: the worst-case-optimized plan must have a better (lower)
  // worst-scenario objective.
  const auto scenarios = synthetic_scenarios(4, 6);
  const DoseObjective obj = toy_objective();

  RobustConfig nominal_cfg;
  nominal_cfg.max_iterations = 15;
  RobustPlanOptimizer nominal_opt({scenarios[0]}, obj, gpusim::make_a100(),
                                  nominal_cfg);
  const auto nominal = nominal_opt.optimize();

  RobustConfig robust_cfg;
  robust_cfg.max_iterations = 15;
  robust_cfg.mode = RobustMode::kWorstCase;
  RobustPlanOptimizer robust_opt(
      std::vector<sparse::CsrF64>(scenarios.begin(), scenarios.end()), obj,
      gpusim::make_a100(), robust_cfg);
  const auto robust = robust_opt.optimize();

  auto worst_over_scenarios = [&](const std::vector<double>& weights) {
    double worst = 0.0;
    for (const auto& s : scenarios) {
      std::vector<double> dose(s.num_rows);
      sparse::reference_spmv(s, weights, dose);
      worst = std::max(worst, obj.value(dose));
    }
    return worst;
  };
  EXPECT_LE(worst_over_scenarios(robust.spot_weights),
            worst_over_scenarios(nominal.spot_weights) * 1.0001);
}

TEST(Robust, GeneratedSetupScenariosShareThePlan) {
  const auto def = cases::prostate_case(0.15);
  const auto phantom = cases::build_phantom(def);
  const auto scenarios = cases::generate_setup_scenarios(
      def, phantom, 0,
      {{3.0, 0.0, 0.0}, {-3.0, 0.0, 0.0}, {0.0, 0.0, 3.0}});
  ASSERT_EQ(scenarios.size(), 4u);  // nominal + 3 shifts
  for (const auto& s : scenarios) {
    EXPECT_EQ(s.num_cols, scenarios[0].num_cols);  // same spot plan
    EXPECT_EQ(s.num_rows, scenarios[0].num_rows);
    EXPECT_GT(s.nnz(), 0u);
  }
  // Shifted delivery hits different voxels than nominal.
  EXPECT_NE(scenarios[1].col_idx, scenarios[0].col_idx);
}

TEST(Robust, EndToEndOnGeneratedScenarios) {
  const auto def = cases::prostate_case(0.15);
  const auto phantom = cases::build_phantom(def);
  auto scenarios = cases::generate_setup_scenarios(
      def, phantom, 0, {{2.5, 0.0, 0.0}, {-2.5, 0.0, 0.0}});

  // Clinical-style goals on the target.
  std::vector<double> probe(scenarios[0].num_rows);
  sparse::reference_spmv(scenarios[0],
                         std::vector<double>(scenarios[0].num_cols, 1.0),
                         probe);
  double max_dose = 0.0;
  for (const double d : probe) max_dose = std::max(max_dose, d);
  const auto goals =
      DoseObjective::standard_goals(phantom, 0.5 * max_dose, 0.2 * max_dose);

  RobustConfig cfg;
  cfg.max_iterations = 8;
  cfg.mode = RobustMode::kWorstCase;
  RobustPlanOptimizer opt(std::move(scenarios), goals, gpusim::make_a100(),
                          cfg);
  const auto result = opt.optimize();
  EXPECT_LT(result.objective_history.back(), result.objective_history.front());
  EXPECT_GE(result.spmv_count, 3u * result.iterations);
}

}  // namespace
}  // namespace pd::opt
