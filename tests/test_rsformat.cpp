// Tests for the RayStation-like compressed format and the scratch-array CPU
// dose engine: quantization bounds, delta/escape coding, compression ratio,
// and the reproducibility properties the paper's §II-D discusses.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <sstream>

#include "common/rng.hpp"
#include "kernels/rsformat_spmv.hpp"
#include "rsformat/cpu_engine.hpp"
#include "rsformat/rsmatrix.hpp"
#include "sparse/random.hpp"
#include "sparse/reference.hpp"

namespace pd::rsformat {
namespace {

sparse::CsrF64 dose_like_matrix(std::uint64_t seed, std::uint64_t rows = 400,
                                std::uint64_t cols = 50) {
  Rng rng(seed);
  return sparse::random_csr(rng, rows, cols, 8.0,
                            sparse::RandomStructure::kManyEmpty);
}

TEST(RsMatrix, RoundTripStructureExact) {
  const auto csr = dose_like_matrix(1);
  const RsMatrix rs = RsMatrix::from_csr(csr);
  EXPECT_EQ(rs.num_rows(), csr.num_rows);
  EXPECT_EQ(rs.num_cols(), csr.num_cols);
  EXPECT_EQ(rs.nnz(), csr.nnz());
  const auto back = rs.to_csr();
  EXPECT_EQ(back.row_ptr, csr.row_ptr);
  EXPECT_EQ(back.col_idx, csr.col_idx);
}

TEST(RsMatrix, QuantizationErrorBounded) {
  const auto csr = dose_like_matrix(2);
  const RsMatrix rs = RsMatrix::from_csr(csr);
  const auto back = rs.to_csr();
  ASSERT_EQ(back.values.size(), csr.values.size());
  // Per-column scale: error <= scale/2; verify via the per-column bound.
  std::vector<double> col_max(csr.num_cols, 0.0);
  for (std::size_t k = 0; k < csr.values.size(); ++k) {
    col_max[csr.col_idx[k]] = std::max(col_max[csr.col_idx[k]], csr.values[k]);
  }
  for (std::size_t k = 0; k < csr.values.size(); ++k) {
    const double bound = col_max[csr.col_idx[k]] / 65535.0;
    EXPECT_LE(std::fabs(back.values[k] - csr.values[k]), 0.51 * bound + 1e-12);
  }
}

TEST(RsMatrix, SixteenBitPayload) {
  // The format stores 4 bytes per entry (2B delta + 2B value) versus CSR's
  // 12 (8B double + 4B col) — the memory-scarcity design the paper mentions.
  const auto csr = dose_like_matrix(3, 2000, 40);
  const RsMatrix rs = RsMatrix::from_csr(csr);
  EXPECT_LT(rs.bytes(), csr.bytes() / 2);
}

TEST(RsMatrix, EscapeCodesHandleHugeRowGaps) {
  // One column with two entries separated by ~200k rows: needs escapes.
  sparse::CsrF64 csr;
  csr.num_rows = 200000;
  csr.num_cols = 1;
  csr.row_ptr.assign(csr.num_rows + 1, 0);
  csr.row_ptr[1] = 1;  // row 0 has entry
  for (std::uint64_t r = 1; r < 199999; ++r) csr.row_ptr[r + 1] = 1;
  csr.row_ptr[199999] = 1;
  csr.row_ptr[200000] = 2;  // row 199999 has the second entry
  csr.col_idx = {0, 0};
  csr.values = {1.0, 0.5};
  csr.validate();

  const RsMatrix rs = RsMatrix::from_csr(csr);
  EXPECT_EQ(rs.nnz(), 2u);
  EXPECT_GT(rs.deltas().size(), 4u);  // escapes were emitted
  const auto back = rs.to_csr();
  EXPECT_EQ(back.row_ptr, csr.row_ptr);
  EXPECT_EQ(back.col_idx, csr.col_idx);
  EXPECT_NEAR(back.values[0], 1.0, 1e-4);
  EXPECT_NEAR(back.values[1], 0.5, 1e-4);
}

TEST(RsMatrix, RejectsNegativeValues) {
  sparse::CsrF64 csr;
  csr.num_rows = 1;
  csr.num_cols = 1;
  csr.row_ptr = {0, 1};
  csr.col_idx = {0};
  csr.values = {-1.0};
  EXPECT_THROW(RsMatrix::from_csr(csr), pd::Error);
}

TEST(RsMatrix, EmptyColumnsAreFine) {
  sparse::CsrF64 csr;
  csr.num_rows = 4;
  csr.num_cols = 3;
  csr.row_ptr = {0, 1, 1, 1, 1};
  csr.col_idx = {1};  // only column 1 has an entry
  csr.values = {2.0};
  const RsMatrix rs = RsMatrix::from_csr(csr);
  int visited = 0;
  rs.for_each_in_column(0, [&](std::uint64_t, double) { ++visited; });
  rs.for_each_in_column(2, [&](std::uint64_t, double) { ++visited; });
  EXPECT_EQ(visited, 0);
  rs.for_each_in_column(1, [&](std::uint64_t row, double v) {
    EXPECT_EQ(row, 0u);
    EXPECT_NEAR(v, 2.0, 1e-4);
    ++visited;
  });
  EXPECT_EQ(visited, 1);
  EXPECT_THROW(rs.for_each_in_column(3, [](std::uint64_t, double) {}),
               pd::Error);
}

TEST(RsMatrix, BinaryRoundTripBitExact) {
  const auto csr = dose_like_matrix(20);
  const RsMatrix rs = RsMatrix::from_csr(csr);
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  rs.write_binary(ss);
  const RsMatrix back = RsMatrix::read_binary(ss);
  EXPECT_EQ(back.num_rows(), rs.num_rows());
  EXPECT_EQ(back.num_cols(), rs.num_cols());
  EXPECT_EQ(back.nnz(), rs.nnz());
  EXPECT_EQ(back.deltas(), rs.deltas());
  EXPECT_EQ(back.qvalues(), rs.qvalues());
  EXPECT_EQ(back.col_scale(), rs.col_scale());
  // The decoded doses are bit-identical too.
  const auto a = rs.to_csr();
  const auto b = back.to_csr();
  EXPECT_EQ(a.values, b.values);
}

TEST(RsMatrix, BinaryFileRoundTripAndErrors) {
  const auto csr = dose_like_matrix(21);
  const RsMatrix rs = RsMatrix::from_csr(csr);
  const std::string path = ::testing::TempDir() + "/rs_roundtrip.pdrs";
  rs.write_binary_file(path);
  const RsMatrix back = RsMatrix::read_binary_file(path);
  EXPECT_EQ(back.nnz(), rs.nnz());
  EXPECT_THROW(RsMatrix::read_binary_file(path + ".missing"), pd::Error);
}

TEST(RsMatrix, BinaryRejectsCorruption) {
  const auto csr = dose_like_matrix(22);
  const RsMatrix rs = RsMatrix::from_csr(csr);
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  rs.write_binary(ss);
  std::string bytes = ss.str();
  // Bad magic.
  std::string bad = bytes;
  bad[0] = 'X';
  std::stringstream s1(bad, std::ios::in | std::ios::binary);
  EXPECT_THROW(RsMatrix::read_binary(s1), pd::Error);
  // Truncation.
  std::stringstream s2(bytes.substr(0, bytes.size() / 3),
                       std::ios::in | std::ios::binary);
  EXPECT_THROW(RsMatrix::read_binary(s2), pd::Error);
}

TEST(RsMatrix, ReadLintsTheDecodedDeltaStream) {
  // The reader decodes every column exactly like the kernels and must
  // reject streams whose decoded content disagrees with the header — the
  // GPU baseline scatters to decoded row indices with no per-access bounds
  // check, so corruption has to die at load time.
  const auto csr = dose_like_matrix(23);
  const RsMatrix rs = RsMatrix::from_csr(csr);
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  rs.write_binary(ss);
  const std::string bytes = ss.str();

  // Layout: magic(4) version(4) rows(8) cols(8) nnz(8) ... — bump the nnz
  // header so it disagrees with the decoded entry count.
  std::string bad_nnz = bytes;
  std::uint64_t nnz = 0;
  std::memcpy(&nnz, bad_nnz.data() + 24, sizeof(nnz));
  ++nnz;
  std::memcpy(bad_nnz.data() + 24, &nnz, sizeof(nnz));
  std::stringstream s1(bad_nnz, std::ios::in | std::ios::binary);
  EXPECT_THROW(RsMatrix::read_binary(s1), pd::Error);

  // Blow up a delta so a decoded row index runs past num_rows.  The deltas
  // vector sits after col_ptr / col_first_row / col_scale.
  const std::uint64_t cols = rs.num_cols();
  const std::size_t deltas_off = 32 + (8 + (cols + 1) * 8) + (8 + cols * 4) +
                                 (8 + cols * 4) + 8;
  std::string bad_delta = bytes;
  const std::uint16_t huge = 0x7fff;  // well past any 400-row matrix
  std::memcpy(bad_delta.data() + deltas_off, &huge, sizeof(huge));
  std::stringstream s2(bad_delta, std::ios::in | std::ios::binary);
  EXPECT_THROW(RsMatrix::read_binary(s2), pd::Error);
}

// --- delta-stream edge cases (shared by to_csr and the fused kernel) ---------

// One matrix column holding entries at exactly `rows` (ascending), value 1.0.
sparse::CsrF64 one_column_at_rows(const std::vector<std::uint64_t>& rows,
                                  std::uint64_t num_rows) {
  sparse::CsrF64 csr;
  csr.num_rows = num_rows;
  csr.num_cols = 1;
  csr.row_ptr.assign(num_rows + 1, 0);
  for (const std::uint64_t r : rows) {
    csr.row_ptr[r + 1] = 1;
  }
  for (std::uint64_t r = 0; r < num_rows; ++r) {
    csr.row_ptr[r + 1] += csr.row_ptr[r];
  }
  csr.col_idx.assign(rows.size(), 0);
  csr.values.assign(rows.size(), 1.0);
  csr.validate_canonical();
  return csr;
}

std::vector<double> run_fused(const RsMatrix& rs,
                              const std::vector<double>& x, unsigned threads,
                              bool allow_simd) {
  kernels::NativeExecutor exec;
  exec.set_threads(threads);
  std::vector<double> y(rs.num_rows());
  kernels::rsformat_spmv(rs, x, y, exec, allow_simd);
  return y;
}

// to_csr and the fused kernel must agree exactly: to_csr values are
// double(q)*scale and the fused kernel computes (double(q)*scale)*w in
// ascending column order per row — the same products reference_spmv sums.
void expect_fused_matches_to_csr(const RsMatrix& rs,
                                 const std::vector<double>& x) {
  std::vector<double> y_ref(rs.num_rows());
  sparse::reference_spmv(rs.to_csr(), x, y_ref);
  EXPECT_EQ(run_fused(rs, x, 1, false), y_ref) << "scalar";
  EXPECT_EQ(run_fused(rs, x, 1, true), y_ref) << "simd";
  // Threaded runs merge per-part scratch (different order): tolerance, and
  // deterministic per thread count.
  for (const unsigned threads : {2u, 5u}) {
    const auto y = run_fused(rs, x, threads, true);
    ASSERT_EQ(y.size(), y_ref.size());
    for (std::size_t r = 0; r < y.size(); ++r) {
      EXPECT_NEAR(y[r], y_ref[r], 1e-12 * (1.0 + std::fabs(y_ref[r])))
          << threads << " threads, row " << r;
    }
    EXPECT_EQ(y, run_fused(rs, x, threads, true)) << "rerun " << threads;
  }
}

TEST(RsMatrixEdges, GapExactlyEscapeAdvanceIsADirectDelta) {
  // kEscapeAdvance (0xfffe) still fits a raw uint16 delta — only gaps
  // >= kEscape (0xffff) emit the escape code.  from_csr must not waste an
  // escape here and every decoder must agree.
  const std::uint64_t gap = RsMatrix::kEscapeAdvance;
  const auto csr = one_column_at_rows({3, 3 + gap}, 3 + gap + 2);
  const RsMatrix rs = RsMatrix::from_csr(csr);
  ASSERT_EQ(rs.deltas().size(), 2u);  // no escape slot
  EXPECT_EQ(rs.deltas()[0], 0u);
  EXPECT_EQ(rs.deltas()[1], RsMatrix::kEscapeAdvance);
  EXPECT_EQ(rs.to_csr().row_ptr, csr.row_ptr);
  expect_fused_matches_to_csr(rs, {1.25});
}

TEST(RsMatrixEdges, GapExactlyEscapeEmitsOneEscape) {
  // The smallest gap that cannot be a raw delta: kEscape (0xffff) becomes
  // one escape (advancing 0xfffe) plus a delta of 1.
  const std::uint64_t gap = RsMatrix::kEscape;
  const auto csr = one_column_at_rows({0, gap}, gap + 1);
  const RsMatrix rs = RsMatrix::from_csr(csr);
  ASSERT_EQ(rs.deltas().size(), 3u);
  EXPECT_EQ(rs.deltas()[1], RsMatrix::kEscape);
  EXPECT_EQ(rs.deltas()[2], 1u);
  EXPECT_EQ(rs.to_csr().row_ptr, csr.row_ptr);
  expect_fused_matches_to_csr(rs, {0.75});
}

TEST(RsMatrixEdges, ConsecutiveEscapesDecodeUniformly) {
  // A gap needing several escapes back-to-back, plus trailing entries close
  // together so the fused kernel's escape-block scalar fallback hands back
  // to the vector path mid-column.
  const std::uint64_t gap = 2 * std::uint64_t{RsMatrix::kEscapeAdvance} + 7;
  std::vector<std::uint64_t> rows = {1, 1 + gap};
  for (std::uint64_t i = 1; i <= 40; ++i) {
    rows.push_back(1 + gap + 3 * i);  // a vectorizable tail after the jump
  }
  const auto csr = one_column_at_rows(rows, rows.back() + 2);
  const RsMatrix rs = RsMatrix::from_csr(csr);
  // 2 escapes + one slot per entry.
  ASSERT_EQ(rs.deltas().size(), rows.size() + 2);
  EXPECT_EQ(rs.deltas()[1], RsMatrix::kEscape);
  EXPECT_EQ(rs.deltas()[2], RsMatrix::kEscape);
  EXPECT_EQ(rs.to_csr().row_ptr, csr.row_ptr);
  expect_fused_matches_to_csr(rs, {2.0});
}

TEST(RsMatrixEdges, EmptyColumnsAgreeAcrossDecoders) {
  // Leading, interior, and trailing empty columns; zero-weight columns are
  // skipped by the fused kernel without touching their (absent) streams.
  sparse::CsrF64 csr;
  csr.num_rows = 6;
  csr.num_cols = 5;
  csr.row_ptr = {0, 1, 1, 2, 2, 2, 2};
  csr.col_idx = {1, 3};
  csr.values = {2.0, 4.0};
  csr.validate_canonical();
  const RsMatrix rs = RsMatrix::from_csr(csr);
  EXPECT_EQ(rs.to_csr().row_ptr, csr.row_ptr);
  expect_fused_matches_to_csr(rs, {9.0, 1.5, 9.0, 0.5, 9.0});
  // All-zero weights: exact zeros out.
  const auto y = run_fused(rs, {0.0, 0.0, 0.0, 0.0, 0.0}, 2, true);
  for (const double v : y) {
    EXPECT_EQ(v, 0.0);
  }
}

TEST(RsMatrixEdges, FusedMatchesToCsrOnRandomMatrices) {
  for (const std::uint64_t seed : {31u, 32u, 33u}) {
    const auto csr = dose_like_matrix(seed, 700, 60);
    const RsMatrix rs = RsMatrix::from_csr(csr);
    Rng rng(seed);
    const auto x = sparse::random_vector(rng, csr.num_cols, 0.0, 2.0);
    expect_fused_matches_to_csr(rs, x);
  }
}

// --- CPU engine --------------------------------------------------------------

TEST(CpuEngine, MatchesReferenceWithinQuantization) {
  const auto csr = dose_like_matrix(4);
  const RsMatrix rs = RsMatrix::from_csr(csr);
  Rng rng(5);
  const auto x = sparse::random_vector(rng, csr.num_cols, 0.0, 2.0);

  std::vector<double> y_ref(csr.num_rows), y_cpu(csr.num_rows);
  sparse::reference_spmv(csr, x, y_ref);
  cpu_compute_dose(rs, x, y_cpu, 4);

  // Error budget: per-entry quantization times row contributions.
  for (std::uint64_t r = 0; r < csr.num_rows; ++r) {
    const double tol = 1e-3 * (1.0 + std::fabs(y_ref[r])) +
                       2e-5 * static_cast<double>(csr.row_nnz(r));
    EXPECT_NEAR(y_cpu[r], y_ref[r], tol);
  }
}

TEST(CpuEngine, SerialEqualsSingleThreaded) {
  const auto csr = dose_like_matrix(6);
  const RsMatrix rs = RsMatrix::from_csr(csr);
  Rng rng(6);
  const auto x = sparse::random_vector(rng, csr.num_cols);
  std::vector<double> a(csr.num_rows), b(csr.num_rows);
  cpu_compute_dose_serial(rs, x, a);
  cpu_compute_dose(rs, x, b, 1);
  EXPECT_EQ(a, b);  // bitwise
}

TEST(CpuEngine, BitwiseReproducibleAcrossRuns) {
  // The paper's requirement: same input, same system -> same bits.
  const auto csr = dose_like_matrix(7);
  const RsMatrix rs = RsMatrix::from_csr(csr);
  Rng rng(7);
  const auto x = sparse::random_vector(rng, csr.num_cols);
  std::vector<double> a(csr.num_rows), b(csr.num_rows);
  for (const unsigned threads : {2u, 4u, 7u}) {
    cpu_compute_dose(rs, x, a, threads);
    cpu_compute_dose(rs, x, b, threads);
    EXPECT_EQ(a, b) << threads << " threads";
  }
}

TEST(CpuEngine, ThreadCountsAgreeWithinRounding) {
  const auto csr = dose_like_matrix(8);
  const RsMatrix rs = RsMatrix::from_csr(csr);
  Rng rng(8);
  const auto x = sparse::random_vector(rng, csr.num_cols);
  std::vector<double> a(csr.num_rows), b(csr.num_rows);
  cpu_compute_dose(rs, x, a, 1);
  cpu_compute_dose(rs, x, b, 8);
  for (std::uint64_t r = 0; r < csr.num_rows; ++r) {
    EXPECT_NEAR(a[r], b[r], 1e-9 * (1.0 + std::fabs(a[r])));
  }
}

TEST(CpuEngine, ZeroWeightSpotsContributeNothing) {
  const auto csr = dose_like_matrix(9);
  const RsMatrix rs = RsMatrix::from_csr(csr);
  std::vector<double> x(csr.num_cols, 0.0);
  std::vector<double> y(csr.num_rows, 123.0);
  cpu_compute_dose(rs, x, y, 3);
  for (const double v : y) {
    EXPECT_EQ(v, 0.0);
  }
}

TEST(CpuEngine, ValidatesShapes) {
  const auto csr = dose_like_matrix(10);
  const RsMatrix rs = RsMatrix::from_csr(csr);
  std::vector<double> x(csr.num_cols + 1), y(csr.num_rows);
  EXPECT_THROW(cpu_compute_dose(rs, x, y, 2), pd::Error);
  std::vector<double> x2(csr.num_cols), y2(csr.num_rows - 1);
  EXPECT_THROW(cpu_compute_dose(rs, x2, y2, 2), pd::Error);
  EXPECT_THROW(cpu_compute_dose(rs, x2, y, 0), pd::Error);
}

TEST(CpuEngine, MoreThreadsThanColumnsIsSafe) {
  const auto csr = dose_like_matrix(11, 60, 3);
  const RsMatrix rs = RsMatrix::from_csr(csr);
  Rng rng(11);
  const auto x = sparse::random_vector(rng, csr.num_cols);
  std::vector<double> y(csr.num_rows);
  EXPECT_NO_THROW(cpu_compute_dose(rs, x, y, 16));
}

}  // namespace
}  // namespace pd::rsformat
