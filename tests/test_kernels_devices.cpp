// Parameterized sweep: every precision mode on every simulated device.  The
// numerics must be device-independent (the kernel semantics don't change),
// while the modeled performance must respect each device's physical limits.

#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.hpp"
#include "gpusim/device.hpp"
#include "kernels/dose_engine.hpp"
#include "sparse/random.hpp"

namespace pd::kernels {
namespace {

enum class DeviceId { kA100, kV100, kP100 };

gpusim::DeviceSpec spec_of(DeviceId id) {
  switch (id) {
    case DeviceId::kA100: return gpusim::make_a100();
    case DeviceId::kV100: return gpusim::make_v100();
    case DeviceId::kP100: return gpusim::make_p100();
  }
  throw pd::Error("bad device id");
}

using Param = std::tuple<DeviceId, DoseEngine::Mode>;

class DeviceModeSweep : public ::testing::TestWithParam<Param> {
 protected:
  static const sparse::CsrF64& matrix() {
    static const sparse::CsrF64 kMatrix = [] {
      Rng rng(321);
      return sparse::random_csr(rng, 600, 120, 15.0,
                                sparse::RandomStructure::kManyEmpty);
    }();
    return kMatrix;
  }
};

TEST_P(DeviceModeSweep, EstimateRespectsDeviceLimits) {
  const auto [device, mode] = GetParam();
  const gpusim::DeviceSpec spec = spec_of(device);
  DoseEngine engine(sparse::CsrF64(matrix()), spec, mode);
  Rng rng(11);
  engine.compute(sparse::random_vector(rng, matrix().num_cols));
  const auto est = engine.last_estimate();

  EXPECT_GT(est.gflops, 0.0);
  EXPECT_LE(est.dram_gbs, spec.peak_bw_gbs * 1.0001);
  const double peak = engine.last_run().precision == gpusim::FlopPrecision::kFp64
                          ? spec.peak_fp64_gflops
                          : spec.peak_fp32_gflops;
  EXPECT_LE(est.gflops, peak);
  EXPECT_GT(est.occupancy, 0.0);
  EXPECT_LE(est.occupancy, 1.0);
  EXPECT_GT(est.operational_intensity, 0.1);
  EXPECT_LT(est.operational_intensity, 0.6);  // SpMV territory
}

TEST_P(DeviceModeSweep, DoseIsDeviceIndependentAndScheduleStable) {
  const auto [device, mode] = GetParam();
  DoseEngine engine(sparse::CsrF64(matrix()), spec_of(device), mode);
  Rng rng(12);
  const auto x = sparse::random_vector(rng, matrix().num_cols);
  const auto y1 = engine.compute(x, 5);
  const auto y2 = engine.compute(x, 777);
  EXPECT_EQ(y1, y2);

  // Reference: the same mode on the A100 — bitwise equal on any device.
  DoseEngine ref(sparse::CsrF64(matrix()), gpusim::make_a100(), mode);
  EXPECT_EQ(ref.compute(x), y1);
}

INSTANTIATE_TEST_SUITE_P(
    AllDevicesAllModes, DeviceModeSweep,
    ::testing::Combine(::testing::Values(DeviceId::kA100, DeviceId::kV100,
                                         DeviceId::kP100),
                       ::testing::Values(DoseEngine::Mode::kHalfDouble,
                                         DoseEngine::Mode::kSingle,
                                         DoseEngine::Mode::kDouble)));

}  // namespace
}  // namespace pd::kernels
