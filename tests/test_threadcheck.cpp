// threadcheck fixture battery (docs/threadcheck.md), mirroring
// test_simcheck.cpp's design: a set of deliberately buggy micro-services,
// each carrying exactly one seeded concurrency bug, where the analyzer must
// flag exactly that bug's check class and nothing else; clean twins of each
// fixture prove the passes don't cry wolf; and config/cap/env/perturbation
// plumbing is pinned.
//
// The analysis is a deterministic function of the recorded event stream, so
// every fixture here is reliable: a race is flagged because the *events*
// admit no happens-before ordering, not because the scheduler happened to
// interleave the bug this run.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "common/threadcheck.hpp"
#include "gpusim/device.hpp"
#include "gpusim/pool.hpp"
#include "kernels/dose_engine.hpp"
#include "service/sharded_service.hpp"
#include "sparse/parallel_spmv.hpp"
#include "sparse/random.hpp"
#include "sparse/reference.hpp"

namespace pd {
namespace {

using threadcheck::CheckConfig;
using threadcheck::FindingKind;
using threadcheck::Report;

/// Run `body` in a fresh recording session and analyze it.  reset() first:
/// the suite may start with env-driven recording already live
/// (PROTONDOSE_THREADCHECK=1), and fixtures must not see its events.
Report run_session(CheckConfig config, const std::function<void()>& body) {
  threadcheck::reset();
  threadcheck::enable(config);
  body();
  threadcheck::disable();
  return threadcheck::analyze();
}

void expect_only(const Report& report, FindingKind kind, std::uint64_t n) {
  EXPECT_EQ(report.count(kind), n) << report.summary();
  EXPECT_EQ(report.findings.size(), n) << report.summary();
  EXPECT_EQ(report.suppressed, 0u) << report.summary();
}

/// Run `first` then `second` on two *coexisting* threads, sequenced by an
/// uninstrumented atomic handshake.  The accesses never physically collide
/// and the release/acquire edge keeps TSan quiet, so racy fixtures can ride
/// in the TSan CI job next to the real serving stack — while the analyzer,
/// whose only happens-before edges are pd::Mutex release/acquire pairs,
/// still flags the missing ordering.  (Plain join-between does not work: a
/// joined thread's id is routinely reused by the next thread, which would
/// collapse both bodies onto one recorded thread and lose the finding.)
void sequenced_threads(const std::function<void()>& first,
                       const std::function<void()>& second) {
  std::atomic<bool> ready{false};
  std::thread a([&] {
    first();
    ready.store(true, std::memory_order_release);
  });
  std::thread b([&] {
    while (!ready.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    second();
  });
  a.join();
  b.join();
}

// ---------------------------------------------------------------------------
// race pass
// ---------------------------------------------------------------------------

TEST(ThreadcheckRace, FlagsWriteWriteRace) {
  // BUG: two threads increment a shared counter with no lock.  The
  // sequenced_threads handshake keeps the increments from physically
  // colliding, so the fixture is clean under TSan — but the analyzer's only
  // happens-before edges are mutex release/acquire pairs, never atomics or
  // thread fork/join, so the unordered accesses are flagged all the same.
  // Every racy fixture in this file uses this shape.
  SharedState<int> counter{"fixture.racy_counter"};
  const Report report = run_session({}, [&] {
    sequenced_threads(
        [&] {
          for (int i = 0; i < 4; ++i) {
            ++counter.write();
          }
        },
        [&] {
          for (int i = 0; i < 4; ++i) {
            ++counter.write();
          }
        });
  });
  expect_only(report, FindingKind::kDataRace, 1);
  EXPECT_EQ(report.findings[0].object, "fixture.racy_counter");
  EXPECT_NE(report.findings[0].detail.find("write/write"), std::string::npos)
      << report.findings[0].detail;
}

TEST(ThreadcheckRace, FlagsReadWriteRace) {
  // BUG: a reader polls a value a writer updates with no synchronization.
  // The handshake keeps TSan quiet; the analyzer flags the missing
  // happens-before edge regardless.
  SharedState<double> value{"fixture.racy_value"};
  const Report report = run_session({}, [&] {
    sequenced_threads(
        [&] {
          for (int i = 0; i < 4; ++i) {
            value.write() = static_cast<double>(i);
          }
        },
        [&] {
          double sink = 0.0;
          for (int i = 0; i < 4; ++i) {
            sink += value.read();
          }
          (void)sink;
        });
  });
  expect_only(report, FindingKind::kDataRace, 1);
  EXPECT_NE(report.findings[0].detail.find("read/write"), std::string::npos)
      << report.findings[0].detail;
}

TEST(ThreadcheckRace, LockedAccessesAreClean) {
  // Clean twin: the same increments under a mutex — the release/acquire
  // edges order every pair of accesses.
  SharedState<int> counter{"fixture.locked_counter"};
  Mutex mu{"fixture.locked_counter.mu"};
  const Report report = run_session({}, [&] {
    auto work = [&] {
      for (int i = 0; i < 4; ++i) {
        std::lock_guard<Mutex> lock(mu);
        ++counter.write();
      }
    };
    std::thread a(work);
    std::thread b(work);
    a.join();
    b.join();
  });
  EXPECT_TRUE(report.clean()) << report.summary();
  EXPECT_EQ(counter.unchecked(), 8);
}

TEST(ThreadcheckRace, DisjointPartitionIsClean) {
  // Clean twin of the partition bug below: parallel_spmv's contract — each
  // worker owns a disjoint output range, so no locks are needed at all.
  SharedRange rows{"fixture.partition"};
  const Report report = run_session({}, [&] {
    std::thread a([&] { rows.write(0, 50); });
    std::thread b([&] { rows.write(50, 100); });
    a.join();
    b.join();
  });
  EXPECT_TRUE(report.clean()) << report.summary();
}

TEST(ThreadcheckRace, FlagsOverlappingPartition) {
  // BUG: a partitioning error hands two workers overlapping row ranges.
  // The overlap is flagged from the ranges alone — even a run where the
  // duplicated rows were written in a benign order is a seeded failure.
  SharedRange rows{"fixture.bad_partition"};
  const Report report = run_session({}, [&] {
    std::thread a([&] { rows.write(0, 60); });
    std::thread b([&] { rows.write(50, 100); });
    a.join();
    b.join();
  });
  expect_only(report, FindingKind::kDataRace, 1);
}

TEST(ThreadcheckRace, PassCanBeDisabled) {
  SharedState<int> counter{"fixture.racy_counter.norace"};
  CheckConfig config;
  config.race = false;
  const Report report = run_session(config, [&] {
    sequenced_threads([&] { ++counter.write(); }, [&] { ++counter.write(); });
  });
  EXPECT_TRUE(report.clean()) << report.summary();
}

// ---------------------------------------------------------------------------
// lockorder pass
// ---------------------------------------------------------------------------

TEST(ThreadcheckLockOrder, FlagsAbBaInversion) {
  // BUG: one code path locks A then B, another B then A.  The threads run
  // sequentially here (join between), so this run could never deadlock —
  // the cycle in the order graph is flagged anyway, which is the point.
  Mutex a{"fixture.mu_a"};
  Mutex b{"fixture.mu_b"};
  const Report report = run_session({}, [&] {
    std::thread t1([&] {
      std::scoped_lock lock(a, b);
    });
    t1.join();
    std::thread t2([&] {
      std::lock_guard<Mutex> first(b);
      std::lock_guard<Mutex> second(a);
    });
    t2.join();
  });
  expect_only(report, FindingKind::kLockInversion, 1);
  EXPECT_NE(report.findings[0].detail.find("cycle"), std::string::npos);
}

TEST(ThreadcheckLockOrder, ConsistentNestingIsClean) {
  // Clean twin: both paths take A before B.
  Mutex a{"fixture.nested_a"};
  Mutex b{"fixture.nested_b"};
  const Report report = run_session({}, [&] {
    auto work = [&] {
      std::lock_guard<Mutex> first(a);
      std::lock_guard<Mutex> second(b);
    };
    std::thread t1(work);
    t1.join();
    std::thread t2(work);
    t2.join();
  });
  EXPECT_TRUE(report.clean()) << report.summary();
}

TEST(ThreadcheckLockOrder, PassCanBeDisabled) {
  Mutex a{"fixture.mu_a.nolockorder"};
  Mutex b{"fixture.mu_b.nolockorder"};
  CheckConfig config;
  config.lockorder = false;
  const Report report = run_session(config, [&] {
    {
      std::scoped_lock lock(a, b);
    }
    std::lock_guard<Mutex> first(b);
    std::lock_guard<Mutex> second(a);
  });
  EXPECT_TRUE(report.clean()) << report.summary();
}

// ---------------------------------------------------------------------------
// condvar pass
// ---------------------------------------------------------------------------

TEST(ThreadcheckCondVar, FlagsUnpredicatedWait) {
  // BUG: a bare untimed wait() — a spurious or stale wakeup proceeds on an
  // unverified condition.  The notifier loops until the waiter confirms, so
  // the fixture terminates under any wakeup behavior.
  Mutex mu{"fixture.wait.mu"};
  CondVar cv{"fixture.wait.cv"};
  bool woken = false;
  const Report report = run_session({}, [&] {
    std::thread waiter([&] {
      std::unique_lock<Mutex> lock(mu);
      cv.wait(lock);  // the seeded bug
      woken = true;
    });
    for (;;) {
      {
        std::lock_guard<Mutex> lock(mu);
        if (woken) {
          break;
        }
      }
      cv.notify_all();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    waiter.join();
  });
  expect_only(report, FindingKind::kUnpredicatedWait, 1);
  EXPECT_EQ(report.findings[0].object, "fixture.wait.cv");
}

TEST(ThreadcheckCondVar, PredicatedAndAttestedWaitsAreClean) {
  // Clean twins: the predicate overload, the caller-attested re-check-loop
  // form, and a timed wait (a poll by construction) — none are linted.
  Mutex mu{"fixture.goodwait.mu"};
  CondVar cv{"fixture.goodwait.cv"};
  bool ready = false;
  const Report report = run_session({}, [&] {
    std::thread waiter([&] {
      std::unique_lock<Mutex> lock(mu);
      cv.wait(lock, [&] { return ready; });
      while (!ready) {
        cv.wait_unpredicated(lock);
      }
      cv.wait_until(lock,
                    std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(1));
    });
    {
      std::lock_guard<Mutex> lock(mu);
      ready = true;
    }
    cv.notify_all();
    waiter.join();
  });
  EXPECT_TRUE(report.clean()) << report.summary();
}

TEST(ThreadcheckCondVar, FlagsNotifyWithoutWaiters) {
  // BUG: notifying a condvar no one ever waits on — the classic
  // wrong-condvar lost wakeup.  A Waiters::kOptional twin (a completion
  // broadcast whose waiters are legitimately optional) is exempt.
  CondVar lonely{"fixture.lonely.cv"};
  CondVar optional{"fixture.optional.cv", CondVar::Waiters::kOptional};
  const Report report = run_session({}, [&] {
    lonely.notify_one();
    optional.notify_all();
  });
  expect_only(report, FindingKind::kNotifyWithoutWaiters, 1);
  EXPECT_EQ(report.findings[0].object, "fixture.lonely.cv");
}

TEST(ThreadcheckCondVar, PassCanBeDisabled) {
  CondVar lonely{"fixture.lonely.cv.nocondvar"};
  CheckConfig config;
  config.condvar = false;
  const Report report = run_session(config, [&] { lonely.notify_one(); });
  EXPECT_TRUE(report.clean()) << report.summary();
}

// ---------------------------------------------------------------------------
// latency pass
// ---------------------------------------------------------------------------

kernels::DoseEngine make_small_engine() {
  Rng rng(0x7ea5eedULL);
  sparse::CsrF64 matrix = sparse::random_csr(
      rng, 60, 20, 6.0, sparse::RandomStructure::kSkewed);
  return kernels::DoseEngine(
      std::move(matrix), gpusim::make_a100(),
      kernels::DoseEngine::Mode::kHalfDouble, kernels::kDefaultVectorTpb,
      kernels::SpmvFamily::kVector, kernels::DoseEngine::Backend::kNative);
}

TEST(ThreadcheckLatency, FlagsLockHeldAcrossCompute) {
  // BUG: serving code computing a dose while holding a lock — the whole
  // stack serializes on a multi-millisecond kernel at paper scale.
  kernels::DoseEngine engine = make_small_engine();
  const std::vector<double> weights(20, 1.0);
  Mutex mu{"fixture.latency.mu"};
  const Report report = run_session({}, [&] {
    std::lock_guard<Mutex> lock(mu);
    engine.compute(weights);
  });
  expect_only(report, FindingKind::kLockHeldAcrossCompute, 1);
  EXPECT_EQ(report.findings[0].object, "fixture.latency.mu");
  EXPECT_NE(report.findings[0].detail.find("DoseEngine::compute"),
            std::string::npos)
      << report.findings[0].detail;
}

TEST(ThreadcheckLatency, UnlockedComputeIsClean) {
  // Clean twin: the serving stack's actual discipline — drop the lock,
  // compute, relock to publish.
  kernels::DoseEngine engine = make_small_engine();
  const std::vector<double> weights(20, 1.0);
  Mutex mu{"fixture.latency.clean.mu"};
  const Report report = run_session({}, [&] {
    {
      std::lock_guard<Mutex> lock(mu);
    }
    engine.compute(weights);
    engine.compute_batch(std::vector<double>(40, 0.5), 2);
  });
  EXPECT_TRUE(report.clean()) << report.summary();
}

TEST(ThreadcheckLatency, PassCanBeDisabled) {
  kernels::DoseEngine engine = make_small_engine();
  const std::vector<double> weights(20, 1.0);
  Mutex mu{"fixture.latency.nolatency.mu"};
  CheckConfig config;
  config.latency = false;
  const Report report = run_session(config, [&] {
    std::lock_guard<Mutex> lock(mu);
    engine.compute(weights);
  });
  EXPECT_TRUE(report.clean()) << report.summary();
}

// ---------------------------------------------------------------------------
// Instrumented production components run clean
// ---------------------------------------------------------------------------

TEST(ThreadcheckStack, ThreadPoolRunsClean) {
  // The gpusim phase-1 pool under full instrumentation: the generation
  // handshake must order every batch-descriptor access, across batches.
  const Report report = run_session({}, [&] {
    gpusim::ThreadPool pool(3);
    std::atomic<long> sum{0};
    for (int round = 0; round < 5; ++round) {
      pool.parallel_for(64, [&](std::size_t i) {
        sum.fetch_add(static_cast<long>(i), std::memory_order_relaxed);
      });
    }
    EXPECT_EQ(sum.load(), 5 * (64 * 63 / 2));
  });
  EXPECT_TRUE(report.clean()) << report.summary();
}

TEST(ThreadcheckStack, ParallelSpmvRunsClean) {
  // The nnz-balanced row partition needs no locks: disjoint writes plus the
  // join edge.  The recorded ranges must prove exactly that.
  Rng rng(0x5eedULL);
  const sparse::CsrF64 A = sparse::random_csr(
      rng, 200, 80, 8.0, sparse::RandomStructure::kSkewed);
  const std::vector<double> x(80, 1.0);
  std::vector<double> y(200, 0.0);
  const Report report = run_session(
      {}, [&] { sparse::parallel_spmv(A, x, y, 4); });
  EXPECT_TRUE(report.clean()) << report.summary();

  std::vector<double> want(200, 0.0);
  sparse::reference_spmv(A, x, want);
  EXPECT_EQ(y, want);
}

TEST(ThreadcheckStack, ShardedServiceRunsClean) {
  // The full sharded serving tier under instrumentation: router lock, shard
  // locks, engine-cache locks, worker condvars, and concurrent clients.
  // Clean means no race, no lock-order cycle (router -> shard only), no
  // condvar lint, and no lock held across compute.
  const Report report = run_session({}, [&] {
    service::ShardedServiceConfig config;
    config.shards = 2;
    config.replication = 2;
    config.shard.workers = 2;
    config.shard.batch_cap = 4;
    config.shard.flush_deadline_ms = 0.5;
    config.shard.engine_cache_capacity = 2;
    config.shard.engine.device = gpusim::make_a100();
    config.shard.engine.backend = kernels::DoseEngine::Backend::kNative;
    service::ShardedDoseService sharded(config);
    Rng rng(0x7a5eedULL);
    const sparse::CsrF64 matrix = sparse::random_csr(
        rng, 200, 60, 8.0, sparse::RandomStructure::kSkewed);
    sharded.register_plan("whole", [matrix] { return matrix; });
    sharded.register_plan_sliced("sliced", [matrix] { return matrix; }, 2);

    std::vector<service::Ticket> tickets;
    std::vector<std::thread> clients;
    std::mutex tickets_mu;  // test-local, deliberately uninstrumented
    for (int c = 0; c < 2; ++c) {
      clients.emplace_back([&sharded, &tickets, &tickets_mu, c] {
        for (int i = 0; i < 8; ++i) {
          service::SubmitOptions options;
          options.priority = i % 2 == 0
                                 ? service::RequestPriority::kInteractive
                                 : service::RequestPriority::kBulk;
          service::Ticket t = sharded.submit(
              (c + i) % 2 == 0 ? "whole" : "sliced",
              std::vector<double>(60, 1.0), options);
          std::lock_guard<std::mutex> lock(tickets_mu);
          tickets.push_back(std::move(t));
        }
      });
    }
    for (std::thread& t : clients) {
      t.join();
    }
    sharded.drain();
    for (service::Ticket& t : tickets) {
      EXPECT_EQ(t.result.get().status, service::RequestStatus::kOk);
    }
  });
  EXPECT_TRUE(report.clean()) << report.summary();
}

// ---------------------------------------------------------------------------
// Caps, determinism, env plumbing, perturbation
// ---------------------------------------------------------------------------

TEST(ThreadcheckCaps, FindingCapCountsSuppressed) {
  SharedState<int> first{"fixture.cap_a"};
  SharedState<int> second{"fixture.cap_b"};
  CheckConfig config;
  config.max_findings = 1;
  const Report report = run_session(config, [&] {
    auto work = [&] {
      ++first.write();
      ++second.write();
    };
    sequenced_threads(work, work);
  });
  EXPECT_EQ(report.findings.size(), 1u) << report.summary();
  EXPECT_EQ(report.suppressed, 1u) << report.summary();
  EXPECT_FALSE(report.clean());
}

TEST(ThreadcheckCaps, EventCapCountsDropped) {
  Mutex mu{"fixture.eventcap.mu"};
  CheckConfig config;
  config.max_events = 6;
  const Report report = run_session(config, [&] {
    for (int i = 0; i < 50; ++i) {
      std::lock_guard<Mutex> lock(mu);
    }
  });
  EXPECT_EQ(report.events, 6u);
  EXPECT_EQ(report.events_dropped, 94u);  // 50 lock/unlock pairs minus 6
  EXPECT_TRUE(report.clean()) << report.summary();
}

TEST(ThreadcheckReport, AnalyzeIsDeterministicAndNonDestructive) {
  SharedState<int> counter{"fixture.repeat"};
  threadcheck::reset();
  threadcheck::enable({});
  sequenced_threads([&] { ++counter.write(); }, [&] { ++counter.write(); });
  threadcheck::disable();
  const Report first = threadcheck::analyze();
  const Report second = threadcheck::analyze();
  EXPECT_EQ(first.summary(), second.summary());
  EXPECT_EQ(first.findings.size(), 1u);
  EXPECT_EQ(first.events, second.events);
}

TEST(ThreadcheckEnv, ParsesActivationAndSeed) {
  const char* prev_on = std::getenv("PROTONDOSE_THREADCHECK");
  const std::string saved_on = prev_on == nullptr ? "" : prev_on;
  const char* prev_seed = std::getenv("PROTONDOSE_THREADCHECK_SEED");
  const std::string saved_seed = prev_seed == nullptr ? "" : prev_seed;

  for (const char* truthy : {"1", "true", "on", "yes"}) {
    setenv("PROTONDOSE_THREADCHECK", truthy, 1);
    EXPECT_TRUE(threadcheck::env_enabled()) << truthy;
  }
  for (const char* falsy : {"0", "off", "", "2"}) {
    setenv("PROTONDOSE_THREADCHECK", falsy, 1);
    EXPECT_FALSE(threadcheck::env_enabled()) << falsy;
  }
  unsetenv("PROTONDOSE_THREADCHECK");
  EXPECT_FALSE(threadcheck::env_enabled());

  setenv("PROTONDOSE_THREADCHECK_SEED", "42", 1);
  EXPECT_EQ(threadcheck::env_schedule_seed(), 42u);
  unsetenv("PROTONDOSE_THREADCHECK_SEED");
  EXPECT_EQ(threadcheck::env_schedule_seed(), 0u);

  if (prev_on != nullptr) {
    setenv("PROTONDOSE_THREADCHECK", saved_on.c_str(), 1);
  }
  if (prev_seed != nullptr) {
    setenv("PROTONDOSE_THREADCHECK_SEED", saved_seed.c_str(), 1);
  }
}

TEST(ThreadcheckPerturb, SeededRunPerturbsDeterministically) {
  // The yield/sleep decisions are a pure function of (seed, thread, op
  // count): a seeded single-threaded run must perturb (the decisions fire)
  // yet compute the exact same result — the OS has nothing to reorder.
  Mutex mu{"fixture.perturb.mu"};
  int counter = 0;
  CheckConfig config;
  config.schedule_seed = 0x5eedULL;
  const Report report = run_session(config, [&] {
    for (int i = 0; i < 2000; ++i) {
      std::lock_guard<Mutex> lock(mu);
      ++counter;
    }
  });
  EXPECT_EQ(counter, 2000);
  EXPECT_GT(report.perturbations, 0u);
  EXPECT_TRUE(report.clean()) << report.summary();
}

TEST(ThreadcheckPerturb, ZeroSeedNeverPerturbs) {
  Mutex mu{"fixture.noperturb.mu"};
  const Report report = run_session({}, [&] {
    for (int i = 0; i < 2000; ++i) {
      std::lock_guard<Mutex> lock(mu);
    }
  });
  EXPECT_EQ(report.perturbations, 0u);
}

TEST(ThreadcheckReport, KindNamesAndSummary) {
  EXPECT_STREQ(threadcheck::finding_kind_name(FindingKind::kDataRace),
               "data-race");
  EXPECT_STREQ(threadcheck::finding_kind_name(FindingKind::kLockInversion),
               "lock-inversion");
  EXPECT_STREQ(
      threadcheck::finding_kind_name(FindingKind::kUnpredicatedWait),
      "unpredicated-wait");
  EXPECT_STREQ(
      threadcheck::finding_kind_name(FindingKind::kNotifyWithoutWaiters),
      "notify-without-waiters");
  EXPECT_STREQ(
      threadcheck::finding_kind_name(FindingKind::kLockHeldAcrossCompute),
      "lock-held-across-compute");

  SharedState<int> counter{"fixture.summary"};
  const Report report = run_session({}, [&] {
    sequenced_threads([&] { ++counter.write(); }, [&] { ++counter.write(); });
  });
  EXPECT_NE(report.summary().find("data-race"), std::string::npos)
      << report.summary();
  EXPECT_NE(report.summary().find("fixture.summary"), std::string::npos);
}

}  // namespace
}  // namespace pd
