// Metamorphic properties of the SpMV kernels.  These exploit exact FP
// identities, so they hold BITWISE and catch subtle kernel bugs that
// tolerance-based comparisons absorb:
//   * scaling x by a power of two only changes exponents: K(2^k x) = 2^k K(x)
//     exactly, for every kernel and precision;
//   * zero weights give exactly zero dose;
//   * permuting matrix rows permutes the output identically (the kernel must
//     not couple rows);
//   * linearity K(x + y) = K(x) + K(y) holds to rounding.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "kernels/baseline_gpu.hpp"
#include "kernels/vector_csr.hpp"
#include "rsformat/rsmatrix.hpp"
#include "sparse/coo.hpp"
#include "sparse/convert.hpp"
#include "sparse/random.hpp"

namespace pd::kernels {
namespace {

class Metamorphic : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  void SetUp() override {
    Rng rng(GetParam());
    A_ = sparse::random_csr(rng, 250, 80, 10.0,
                            sparse::RandomStructure::kSkewed);
    mh_ = sparse::convert_values<pd::Half>(A_);
    x_ = sparse::random_vector(rng, A_.num_cols, 0.25, 4.0);
  }

  std::vector<double> run(const std::vector<double>& x) {
    gpusim::Gpu gpu(gpusim::make_a100());
    std::vector<double> y(A_.num_rows);
    run_vector_csr<pd::Half, double>(gpu, mh_, x, std::span<double>(y));
    return y;
  }

  sparse::CsrF64 A_;
  sparse::CsrMatrix<pd::Half> mh_;
  std::vector<double> x_;
};

TEST_P(Metamorphic, PowerOfTwoScalingIsExact) {
  const auto y1 = run(x_);
  for (const double factor : {2.0, 0.25, 1024.0}) {
    std::vector<double> xs(x_.size());
    for (std::size_t i = 0; i < x_.size(); ++i) {
      xs[i] = factor * x_[i];
    }
    const auto ys = run(xs);
    for (std::size_t r = 0; r < y1.size(); ++r) {
      EXPECT_EQ(ys[r], factor * y1[r]) << "row " << r << " factor " << factor;
    }
  }
}

TEST_P(Metamorphic, ZeroWeightsGiveExactlyZeroDose) {
  const std::vector<double> zero(A_.num_cols, 0.0);
  for (const double d : run(zero)) {
    EXPECT_EQ(d, 0.0);
  }
}

TEST_P(Metamorphic, RowPermutationPermutesTheDose) {
  // Reverse the row order of the matrix; the per-row results must follow
  // bitwise (each row's computation is self-contained).
  sparse::CooMatrix<pd::Half> coo;
  coo.num_rows = mh_.num_rows;
  coo.num_cols = mh_.num_cols;
  for (std::uint64_t r = 0; r < mh_.num_rows; ++r) {
    for (std::uint32_t k = mh_.row_ptr[r]; k < mh_.row_ptr[r + 1]; ++k) {
      coo.entries.push_back(sparse::CooEntry<pd::Half>{
          static_cast<std::uint32_t>(mh_.num_rows - 1 - r), mh_.col_idx[k],
          mh_.values[k]});
    }
  }
  const auto reversed = sparse::coo_to_csr(coo);

  gpusim::Gpu gpu(gpusim::make_a100());
  std::vector<double> y_rev(A_.num_rows);
  run_vector_csr<pd::Half, double>(gpu, reversed, x_, std::span<double>(y_rev));
  const auto y = run(x_);
  for (std::uint64_t r = 0; r < A_.num_rows; ++r) {
    EXPECT_EQ(y_rev[A_.num_rows - 1 - r], y[r]) << r;
  }
}

TEST_P(Metamorphic, LinearityWithinRounding) {
  Rng rng(GetParam() + 99);
  const auto x2 = sparse::random_vector(rng, A_.num_cols, 0.25, 4.0);
  std::vector<double> sum(x_.size());
  for (std::size_t i = 0; i < x_.size(); ++i) {
    sum[i] = x_[i] + x2[i];
  }
  const auto y1 = run(x_);
  const auto y2 = run(x2);
  const auto ysum = run(sum);
  for (std::size_t r = 0; r < ysum.size(); ++r) {
    EXPECT_NEAR(ysum[r], y1[r] + y2[r],
                1e-12 * (1.0 + std::fabs(y1[r]) + std::fabs(y2[r])));
  }
}

TEST_P(Metamorphic, BaselineAlsoScalesExactly) {
  // The same power-of-two identity holds for the compressed-format baseline.
  const rsformat::RsMatrix rs = rsformat::RsMatrix::from_csr(A_);
  gpusim::Gpu gpu(gpusim::make_a100());
  std::vector<double> y1(A_.num_rows), y2(A_.num_rows);
  run_baseline_gpu(gpu, rs, x_, std::span<double>(y1));
  std::vector<double> xs(x_.size());
  for (std::size_t i = 0; i < x_.size(); ++i) {
    xs[i] = 8.0 * x_[i];
  }
  run_baseline_gpu(gpu, rs, xs, std::span<double>(y2));
  for (std::size_t r = 0; r < y1.size(); ++r) {
    EXPECT_EQ(y2[r], 8.0 * y1[r]) << r;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Metamorphic,
                         ::testing::Values(901u, 902u, 903u, 904u));

}  // namespace
}  // namespace pd::kernels
