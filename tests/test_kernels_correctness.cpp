// Correctness tests for the whole SpMV kernel family on the simulated GPU:
// agreement with references, the bitwise-reproducibility guarantees of the
// paper's kernel, the demonstrated NON-reproducibility of the atomic GPU
// Baseline, and parameterized sweeps over matrix structure.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "common/rng.hpp"
#include "gpusim/launch.hpp"
#include "kernels/adaptive_csr.hpp"
#include "kernels/baseline_gpu.hpp"
#include "kernels/classical_csr.hpp"
#include "kernels/format_kernels.hpp"
#include "kernels/tuner.hpp"
#include "kernels/vector_csr.hpp"
#include "rsformat/cpu_engine.hpp"
#include "rsformat/rsmatrix.hpp"
#include "sparse/convert.hpp"
#include "sparse/ell.hpp"
#include "sparse/random.hpp"
#include "sparse/reference.hpp"
#include "sparse/sellcs.hpp"

namespace pd::kernels {
namespace {

using sparse::CsrF64;
using sparse::RandomStructure;

struct Problem {
  CsrF64 matrix;
  std::vector<double> x;
};

Problem make_problem(RandomStructure structure, std::uint64_t seed,
                     std::uint64_t rows = 300, std::uint64_t cols = 90,
                     double mean_nnz = 12.0) {
  Rng rng(seed);
  Problem p;
  p.matrix = sparse::random_csr(rng, rows, cols, mean_nnz, structure);
  p.x = sparse::random_vector(rng, cols, 0.0, 2.0);
  return p;
}

// --- the paper's kernel ------------------------------------------------------

TEST(VectorCsr, HalfDoubleBitwiseMatchesWarpOrderReference) {
  // Strongest statement: the simulated kernel's result equals a pure host
  // re-implementation of its accumulation order, bit for bit.
  const Problem p = make_problem(RandomStructure::kSkewed, 100);
  const auto mh = sparse::convert_values<pd::Half>(p.matrix);
  // The reference must see the *quantized* values.
  const auto mq = sparse::convert_values<double>(mh);

  gpusim::Gpu gpu(gpusim::make_a100());
  std::vector<double> y(p.matrix.num_rows, -1.0);
  run_vector_csr<pd::Half, double>(gpu, mh, p.x, std::span<double>(y));

  std::vector<double> y_ref(p.matrix.num_rows);
  sparse::warp_order_spmv(mq, p.x, y_ref);
  EXPECT_EQ(y, y_ref);
}

TEST(VectorCsr, DoublePrecisionBitwiseMatchesWarpOrderReference) {
  const Problem p = make_problem(RandomStructure::kManyEmpty, 101);
  gpusim::Gpu gpu(gpusim::make_a100());
  std::vector<double> y(p.matrix.num_rows);
  run_vector_csr<double, double>(gpu, p.matrix, p.x, std::span<double>(y));
  std::vector<double> y_ref(p.matrix.num_rows);
  sparse::warp_order_spmv(p.matrix, p.x, y_ref);
  EXPECT_EQ(y, y_ref);
}

TEST(VectorCsr, ReproducibleAcrossSchedules) {
  // The paper's §II-D requirement: identical bits for any block schedule.
  const Problem p = make_problem(RandomStructure::kSkewed, 102);
  const auto mh = sparse::convert_values<pd::Half>(p.matrix);
  gpusim::Gpu gpu(gpusim::make_a100());
  std::vector<double> y1(p.matrix.num_rows), y2(p.matrix.num_rows);
  run_vector_csr<pd::Half, double>(gpu, mh, p.x, std::span<double>(y1), 512, 1);
  run_vector_csr<pd::Half, double>(gpu, mh, p.x, std::span<double>(y2), 512,
                                   999);
  EXPECT_EQ(y1, y2);
}

TEST(VectorCsr, ReproducibleAcrossBlockSizes) {
  // Block size changes grid geometry but not the row <-> warp math.
  const Problem p = make_problem(RandomStructure::kUniform, 103);
  const auto mh = sparse::convert_values<pd::Half>(p.matrix);
  gpusim::Gpu gpu(gpusim::make_a100());
  std::vector<double> y1(p.matrix.num_rows), y2(p.matrix.num_rows);
  run_vector_csr<pd::Half, double>(gpu, mh, p.x, std::span<double>(y1), 64);
  run_vector_csr<pd::Half, double>(gpu, mh, p.x, std::span<double>(y2), 1024);
  EXPECT_EQ(y1, y2);
}

TEST(VectorCsr, HalfQuantizationBoundsTheError) {
  const Problem p = make_problem(RandomStructure::kUniform, 104);
  const auto mh = sparse::convert_values<pd::Half>(p.matrix);
  gpusim::Gpu gpu(gpusim::make_a100());
  std::vector<double> y(p.matrix.num_rows);
  run_vector_csr<pd::Half, double>(gpu, mh, p.x, std::span<double>(y));
  std::vector<double> y_exact(p.matrix.num_rows);
  sparse::reference_spmv(p.matrix, p.x, y_exact);
  for (std::uint64_t r = 0; r < p.matrix.num_rows; ++r) {
    // Each entry contributes at most ulp/2 * |x| of quantization error.
    double budget = 1e-12;
    for (std::uint32_t k = p.matrix.row_ptr[r]; k < p.matrix.row_ptr[r + 1];
         ++k) {
      budget += 0.5 * pd::half_ulp(p.matrix.values[k]) * std::fabs(p.x[p.matrix.col_idx[k]]);
    }
    EXPECT_LE(std::fabs(y[r] - y_exact[r]), budget * 1.0001) << "row " << r;
  }
}

TEST(VectorCsr, U16ColumnIndexVariantAgreesBitwise) {
  // Ablation A: narrowing the column index changes traffic, not results.
  const Problem p = make_problem(RandomStructure::kSkewed, 105);
  const auto mh = sparse::convert_values<pd::Half>(p.matrix);
  const auto mh16 = sparse::narrow_col_index<std::uint16_t>(mh);
  gpusim::Gpu gpu(gpusim::make_a100());
  std::vector<double> y32(p.matrix.num_rows), y16(p.matrix.num_rows);
  run_vector_csr<pd::Half, double>(gpu, mh, p.x, std::span<double>(y32));
  const SpmvRun run16 = run_vector_csr<pd::Half, double, std::uint16_t>(
      gpu, mh16, p.x, std::span<double>(y16));
  EXPECT_EQ(y32, y16);
  EXPECT_GT(run16.stats.flops(), 0.0);
}

TEST(VectorCsr, U16TrafficIsLower) {
  const Problem p =
      make_problem(RandomStructure::kUniform, 106, 2000, 200, 30.0);
  const auto mh = sparse::convert_values<pd::Half>(p.matrix);
  const auto mh16 = sparse::narrow_col_index<std::uint16_t>(mh);
  gpusim::Gpu gpu(gpusim::make_a100());
  std::vector<double> y(p.matrix.num_rows);
  const auto run32 =
      run_vector_csr<pd::Half, double>(gpu, mh, p.x, std::span<double>(y));
  const auto run16 = run_vector_csr<pd::Half, double, std::uint16_t>(
      gpu, mh16, p.x, std::span<double>(y));
  EXPECT_LT(run16.stats.dram_bytes(), run32.stats.dram_bytes());
  EXPECT_GT(run16.stats.operational_intensity(),
            run32.stats.operational_intensity());
}

TEST(VectorCsr, SizeMismatchThrows) {
  const Problem p = make_problem(RandomStructure::kUniform, 107);
  const auto mh = sparse::convert_values<pd::Half>(p.matrix);
  gpusim::Gpu gpu(gpusim::make_a100());
  std::vector<double> y_bad(p.matrix.num_rows + 1);
  EXPECT_THROW((run_vector_csr<pd::Half, double>(gpu, mh, p.x,
                                                 std::span<double>(y_bad))),
               pd::Error);
}

// --- GPU Baseline ------------------------------------------------------------

TEST(BaselineGpu, MatchesCpuEngineBitwiseOnFixedSchedule) {
  // Same compressed data, same deterministic order -> the GPU port with a
  // fixed schedule applies column contributions in the same order as the
  // serial CPU engine.
  const Problem p = make_problem(RandomStructure::kManyEmpty, 108);
  const rsformat::RsMatrix rs = rsformat::RsMatrix::from_csr(p.matrix);
  gpusim::Gpu gpu(gpusim::make_a100());
  std::vector<double> y_gpu(p.matrix.num_rows);
  run_baseline_gpu(gpu, rs, p.x, std::span<double>(y_gpu));
  std::vector<double> y_cpu(p.matrix.num_rows);
  rsformat::cpu_compute_dose_serial(rs, p.x, y_cpu);
  for (std::uint64_t r = 0; r < p.matrix.num_rows; ++r) {
    EXPECT_NEAR(y_gpu[r], y_cpu[r], 1e-9 * (1.0 + std::fabs(y_cpu[r])));
  }
}

TEST(BaselineGpu, NotBitwiseReproducibleAcrossSchedules) {
  // The paper's point about the baseline: atomics make the result depend on
  // block scheduling.  Find at least one schedule pair that differs.
  const Problem p = make_problem(RandomStructure::kSkewed, 109, 400, 120, 20.0);
  const rsformat::RsMatrix rs = rsformat::RsMatrix::from_csr(p.matrix);
  gpusim::Gpu gpu(gpusim::make_a100());
  std::vector<double> base(p.matrix.num_rows);
  run_baseline_gpu(gpu, rs, p.x, std::span<double>(base), 32, 0);
  bool differs = false;
  std::vector<double> y(p.matrix.num_rows);
  for (std::uint64_t seed = 1; seed <= 16 && !differs; ++seed) {
    run_baseline_gpu(gpu, rs, p.x, std::span<double>(y), 32, seed);
    differs = (y != base);
    // Values still agree to rounding, of course.
    for (std::uint64_t r = 0; r < y.size(); ++r) {
      EXPECT_NEAR(y[r], base[r], 1e-9 * (1.0 + std::fabs(base[r])));
    }
  }
  EXPECT_TRUE(differs);
}

TEST(BaselineGpu, IssuesAtomics) {
  const Problem p = make_problem(RandomStructure::kUniform, 110);
  const rsformat::RsMatrix rs = rsformat::RsMatrix::from_csr(p.matrix);
  gpusim::Gpu gpu(gpusim::make_a100());
  std::vector<double> y(p.matrix.num_rows);
  const SpmvRun run = run_baseline_gpu(gpu, rs, p.x, std::span<double>(y));
  EXPECT_GT(run.stats.traffic.l2_atomic_ops, 0u);
  // One atomic per stored entry with nonzero weight (weights here are > 0).
  EXPECT_EQ(run.stats.traffic.l2_atomic_ops, rs.nnz());
}

// --- library-style kernels ----------------------------------------------------

TEST(ClassicalCsr, SubwarpHeuristic) {
  EXPECT_EQ(classical_subwarp_size(0, 10), 1u);
  EXPECT_EQ(classical_subwarp_size(10, 10), 1u);
  EXPECT_EQ(classical_subwarp_size(30, 10), 4u);
  EXPECT_EQ(classical_subwarp_size(320, 10), 32u);
  EXPECT_EQ(classical_subwarp_size(100000, 10), 32u);
}

TEST(AdaptiveCsr, WorklistCoversEveryRowOnce) {
  const Problem p = make_problem(RandomStructure::kSkewed, 111, 500, 100, 10.0);
  const auto m32 = sparse::convert_values<float>(p.matrix);
  const auto items = build_adaptive_worklist(m32);
  std::vector<int> covered(p.matrix.num_rows, 0);
  for (const auto& item : items) {
    EXPECT_LT(item.row_begin, item.row_end);
    for (std::uint32_t r = item.row_begin; r < item.row_end; ++r) {
      covered[r]++;
    }
    if (item.long_row) {
      EXPECT_EQ(item.row_end, item.row_begin + 1);
      EXPECT_GE(m32.row_nnz(item.row_begin), 32u);
    } else {
      EXPECT_LE(m32.row_ptr[item.row_end] - m32.row_ptr[item.row_begin], 32u);
      EXPECT_LE(item.row_end - item.row_begin, 32u);
    }
  }
  for (const int c : covered) {
    EXPECT_EQ(c, 1);
  }
}

// --- parameterized family sweep -----------------------------------------------

using SweepParam = std::tuple<RandomStructure, std::uint64_t>;

class KernelFamily : public ::testing::TestWithParam<SweepParam> {
 protected:
  void SetUp() override {
    const auto [structure, seed] = GetParam();
    problem_ = make_problem(structure, seed, 350, 100, 10.0);
    m32_ = sparse::convert_values<float>(problem_.matrix);
    x32_.resize(problem_.x.size());
    for (std::size_t i = 0; i < x32_.size(); ++i) {
      x32_[i] = static_cast<float>(problem_.x[i]);
    }
    y32_ref_.resize(problem_.matrix.num_rows);
    sparse::reference_spmv_f32(m32_, x32_, y32_ref_);
  }

  void expect_close_f32(const std::vector<float>& y) {
    for (std::uint64_t r = 0; r < y.size(); ++r) {
      EXPECT_NEAR(y[r], y32_ref_[r], 2e-4 * (1.0 + std::fabs(y32_ref_[r])))
          << "row " << r;
    }
  }

  Problem problem_;
  sparse::CsrMatrix<float> m32_;
  std::vector<float> x32_;
  std::vector<float> y32_ref_;
};

TEST_P(KernelFamily, SingleVectorKernel) {
  gpusim::Gpu gpu(gpusim::make_a100());
  std::vector<float> y(m32_.num_rows);
  run_vector_csr<float, float>(gpu, m32_, x32_, std::span<float>(y));
  expect_close_f32(y);
}

TEST_P(KernelFamily, ClassicalKernel) {
  gpusim::Gpu gpu(gpusim::make_a100());
  std::vector<float> y(m32_.num_rows, -7.0f);
  run_classical_csr(gpu, m32_, x32_, std::span<float>(y));
  expect_close_f32(y);
}

TEST_P(KernelFamily, AdaptiveKernel) {
  gpusim::Gpu gpu(gpusim::make_a100());
  const auto items = build_adaptive_worklist(m32_);
  std::vector<float> y(m32_.num_rows, -7.0f);
  run_adaptive_csr(gpu, m32_, items, x32_, std::span<float>(y));
  expect_close_f32(y);
}

TEST_P(KernelFamily, EllKernel) {
  gpusim::Gpu gpu(gpusim::make_a100());
  const auto ell = sparse::csr_to_ell(m32_, 1ull << 28);
  std::vector<float> y(m32_.num_rows);
  run_ell_spmv<float, float>(gpu, ell, x32_, std::span<float>(y));
  expect_close_f32(y);
}

TEST_P(KernelFamily, SellCsKernel) {
  gpusim::Gpu gpu(gpusim::make_a100());
  const auto sell = sparse::csr_to_sellcs(m32_, 32, 128);
  std::vector<float> y(m32_.num_rows);
  run_sellcs_spmv<float, float>(gpu, sell, x32_, std::span<float>(y));
  expect_close_f32(y);
}

TEST_P(KernelFamily, BaselineKernel) {
  gpusim::Gpu gpu(gpusim::make_a100());
  const rsformat::RsMatrix rs = rsformat::RsMatrix::from_csr(problem_.matrix);
  std::vector<double> y(problem_.matrix.num_rows);
  run_baseline_gpu(gpu, rs, problem_.x, std::span<double>(y));
  std::vector<double> y_ref(problem_.matrix.num_rows);
  sparse::reference_spmv(problem_.matrix, problem_.x, y_ref);
  for (std::uint64_t r = 0; r < y.size(); ++r) {
    const double tol = 2e-3 * (1.0 + std::fabs(y_ref[r])) +
                       5e-5 * static_cast<double>(problem_.matrix.row_nnz(r));
    EXPECT_NEAR(y[r], y_ref[r], tol) << "row " << r;
  }
}

TEST_P(KernelFamily, AllKernelsReproducibleExceptBaseline) {
  gpusim::Gpu gpu(gpusim::make_a100());
  std::vector<float> a(m32_.num_rows), b(m32_.num_rows);
  run_classical_csr(gpu, m32_, x32_, std::span<float>(a), 512, 3);
  run_classical_csr(gpu, m32_, x32_, std::span<float>(b), 512, 17);
  EXPECT_EQ(a, b);
  const auto items = build_adaptive_worklist(m32_);
  run_adaptive_csr(gpu, m32_, items, x32_, std::span<float>(a), 512, 3);
  run_adaptive_csr(gpu, m32_, items, x32_, std::span<float>(b), 512, 17);
  EXPECT_EQ(a, b);
}

INSTANTIATE_TEST_SUITE_P(
    Structures, KernelFamily,
    ::testing::Combine(::testing::Values(RandomStructure::kUniform,
                                         RandomStructure::kSkewed,
                                         RandomStructure::kManyEmpty,
                                         RandomStructure::kBanded),
                       ::testing::Values(11u, 22u, 33u)));

// --- tuner ---------------------------------------------------------------------

TEST(Tuner, SweepsAndPicksBest) {
  const Problem p = make_problem(RandomStructure::kSkewed, 200, 2000, 150, 25.0);
  const auto mh = sparse::convert_values<pd::Half>(p.matrix);
  gpusim::Gpu gpu(gpusim::make_a100());
  std::vector<double> y(p.matrix.num_rows);

  const TuneResult result = tune_block_size(
      gpu.spec(),
      [&](unsigned tpb) {
        return run_vector_csr<pd::Half, double>(gpu, mh, p.x,
                                                std::span<double>(y), tpb);
      },
      /*mean_work_per_warp=*/50.0);

  ASSERT_EQ(result.points.size(), default_block_sizes().size());
  double best = -1.0;
  for (const TunePoint& pt : result.points) {
    best = std::max(best, pt.estimate.gflops);
  }
  EXPECT_DOUBLE_EQ(result.best().estimate.gflops, best);
  EXPECT_THROW(tune_block_size(gpu.spec(), [&](unsigned) {
    return SpmvRun{};
  }, 1.0, {}), pd::Error);
}

}  // namespace
}  // namespace pd::kernels
