// Sharded serving tier: fault injection across the router.
//
// Deterministic faults against ShardedDoseService — shard drain/stop
// mid-traffic, every-shard-down, saturated-replica backpressure, bulk
// admission control, deadline expiry behind a saturated shard, cancellation
// through the router (whole-plan and sliced), and slice refusal/failure.
// Every fault resolves with a documented status; no fault ever yields a
// wrong dose, a *partial* sliced dose, or a deadlock.  Where a request does
// complete, its dose is still checked bitwise against a fresh sequential
// compute — faults must not perturb surviving bits.

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstdlib>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "common/threadcheck.hpp"
#include "gpusim/device.hpp"
#include "kernels/dose_engine.hpp"
#include "service/shard_router.hpp"
#include "service/sharded_service.hpp"
#include "sparse/random.hpp"

namespace pd::service {
namespace {

class ThreadcheckCleanEnv : public ::testing::Environment {
 public:
  void TearDown() override {
    if (!threadcheck::enabled()) {
      return;
    }
    const threadcheck::Report report = threadcheck::analyze();
    EXPECT_TRUE(report.clean()) << report.summary();
  }
};
[[maybe_unused]] const auto* const kThreadcheckCleanEnv =
    ::testing::AddGlobalTestEnvironment(new ThreadcheckCleanEnv);

using Backend = kernels::DoseEngine::Backend;

constexpr std::uint64_t kMatrixSeedBase = 0xfa1175eedULL;
constexpr std::uint64_t kSpots = 90;

sparse::CsrF64 fault_matrix(std::size_t index) {
  Rng rng(kMatrixSeedBase + index);
  return sparse::random_csr(rng, 300, kSpots, 12.0,
                            sparse::RandomStructure::kSkewed);
}

ShardedServiceConfig make_config(std::size_t shards, unsigned workers,
                                 std::size_t batch_cap,
                                 std::size_t replication) {
  ShardedServiceConfig config;
  config.shards = shards;
  config.replication = replication;
  config.shard.workers = workers;
  config.shard.batch_cap = batch_cap;
  config.shard.queue_bound = 512;
  config.shard.flush_deadline_ms = 0.5;
  config.shard.engine_cache_capacity = 2;
  config.shard.engine.device = gpusim::make_a100();
  config.shard.engine.backend = Backend::kNative;
  return config;
}

kernels::DoseEngine make_reference(std::size_t index) {
  return kernels::DoseEngine(fault_matrix(index), gpusim::make_a100(),
                             kernels::DoseEngine::Mode::kHalfDouble,
                             kernels::kDefaultVectorTpb,
                             kernels::SpmvFamily::kVector, Backend::kNative);
}

void expect_bitwise_equal(const std::vector<double>& got,
                          const std::vector<double>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(std::bit_cast<std::uint64_t>(got[i]),
              std::bit_cast<std::uint64_t>(want[i]))
        << "dose[" << i << "]";
  }
}

/// A plan name whose primary placement is `shard` — deterministic search so
/// fault tests can aim traffic at a specific shard.
std::string plan_placed_on(const ShardRouter& router, std::size_t shard) {
  for (std::size_t i = 0;; ++i) {
    const std::string name = "aimed" + std::to_string(i);
    if (router.placement(name).front() == shard) {
      return name;
    }
  }
}

TEST(ShardFaults, DrainShardMidTrafficLosesNothing) {
  // Requests accepted before drain_shard resolve kOk (drain flushes, never
  // drops); requests submitted after reroute to the surviving shard and
  // still produce bitwise-correct doses.
  ShardedDoseService service(make_config(2, 2, 4, 1));
  const std::string on0 = plan_placed_on(service.router(), 0);
  const std::string on1 = plan_placed_on(service.router(), 1);
  service.register_plan(on0, [] { return fault_matrix(0); });
  service.register_plan(on1, [] { return fault_matrix(1); });
  kernels::DoseEngine ref0 = make_reference(0);
  kernels::DoseEngine ref1 = make_reference(1);

  Rng rng(0xd4a15eedULL);
  std::vector<std::pair<bool, std::vector<double>>> sent;  // (on0?, weights)
  std::vector<Ticket> tickets;
  const auto send = [&](const std::string& plan, bool is0) {
    std::vector<double> weights = sparse::random_vector(rng, kSpots, 0.0, 2.0);
    Ticket ticket = service.submit(plan, weights);
    ASSERT_TRUE(ticket.accepted);
    tickets.push_back(std::move(ticket));
    sent.emplace_back(is0, std::move(weights));
  };
  for (int i = 0; i < 6; ++i) {
    send(on0, true);
    send(on1, false);
  }

  service.drain_shard(0);
  EXPECT_EQ(service.shard_health(0), ShardHealth::kStopped);
  EXPECT_EQ(service.shard_health(1), ShardHealth::kActive);

  // The stopped shard's plan now reroutes to shard 1 — same bits, counted.
  for (int i = 0; i < 4; ++i) {
    send(on0, true);
  }
  service.drain();
  for (std::size_t i = 0; i < tickets.size(); ++i) {
    DoseResult result = tickets[i].result.get();
    ASSERT_EQ(result.status, RequestStatus::kOk) << result.error;
    expect_bitwise_equal(result.dose, (sent[i].first ? ref0 : ref1)
                                          .compute(sent[i].second));
  }
  const ShardedServiceStats stats = service.stats();
  EXPECT_EQ(stats.accepted, tickets.size());
  EXPECT_EQ(stats.rerouted, 4u);
  EXPECT_EQ(stats.shards[0].completed + stats.shards[1].completed,
            tickets.size());

  // resume_shard returns the shard to routing: the plan goes home.
  service.resume_shard(0);
  EXPECT_EQ(service.shard_health(0), ShardHealth::kActive);
  const std::uint64_t before = service.stats().routed_per_shard[0];
  send(on0, true);
  service.drain();
  EXPECT_EQ(service.stats().routed_per_shard[0], before + 1);
  EXPECT_EQ(service.stats().rerouted, 4u);
}

TEST(ShardFaults, AllShardsDownFailsImmediately) {
  ShardedDoseService service(make_config(2, 1, 4, 1));
  service.register_plan("p", [] { return fault_matrix(0); });
  service.drain_shard(0);
  service.drain_shard(1);

  Ticket ticket = service.submit("p", std::vector<double>(kSpots, 1.0));
  EXPECT_FALSE(ticket.accepted);
  DoseResult result = ticket.result.get();
  EXPECT_EQ(result.status, RequestStatus::kFailed);
  EXPECT_NE(result.error.find("no active shard"), std::string::npos);
  EXPECT_EQ(service.stats().failed_immediate, 1u);

  // Recovery: resuming any shard restores service.
  service.resume_shard(1);
  Ticket retry = service.submit("p", std::vector<double>(kSpots, 1.0));
  ASSERT_TRUE(retry.accepted);
  service.drain();
  EXPECT_EQ(retry.result.get().status, RequestStatus::kOk);
}

TEST(ShardFaults, SaturatedReplicaPropagatesRetryAfter) {
  // replication=1 and an hour-long flush deadline with batch_cap above the
  // bound: the single replica's queue fills and never launches, so the
  // overflow submit must bounce kRejected with the shard's own retry hint —
  // backpressure crosses the router intact.
  ShardedServiceConfig config = make_config(2, 1, 16, 1);
  config.shard.queue_bound = 4;
  config.shard.flush_deadline_ms = 3.6e6;
  ShardedDoseService service(config);
  const std::string plan = plan_placed_on(service.router(), 0);
  service.register_plan(plan, [] { return fault_matrix(0); });

  const std::vector<double> weights(kSpots, 1.0);
  std::vector<Ticket> accepted;
  for (int i = 0; i < 4; ++i) {
    Ticket t = service.submit(plan, weights);
    ASSERT_TRUE(t.accepted);
    accepted.push_back(std::move(t));
  }
  Ticket bounced = service.submit(plan, weights);
  EXPECT_FALSE(bounced.accepted);
  DoseResult rejected = bounced.result.get();
  EXPECT_EQ(rejected.status, RequestStatus::kRejected);
  EXPECT_GT(rejected.retry_after_ms, 0.0);
  const ShardedServiceStats stats = service.stats();
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.admission_rejected, 0u);
  // The other shard was never involved: replication=1 means no spill.
  EXPECT_EQ(stats.routed_per_shard[1], 0u);

  service.drain();
  for (Ticket& t : accepted) {
    EXPECT_EQ(t.result.get().status, RequestStatus::kOk);
  }
}

TEST(ShardFaults, ReplicatedPlanSurvivesSaturatedPrimary) {
  // replication=2: with the primary's queue full, the least-loaded replica
  // serves the plan — no rejection, no reroute (the replica is in the set).
  ShardedServiceConfig config = make_config(2, 1, 16, 2);
  config.shard.queue_bound = 4;
  config.shard.flush_deadline_ms = 3.6e6;
  ShardedDoseService service(config);
  const std::string plan = plan_placed_on(service.router(), 0);
  service.register_plan(plan, [] { return fault_matrix(0); });
  kernels::DoseEngine ref = make_reference(0);

  const std::vector<double> weights(kSpots, 1.0);
  std::vector<Ticket> tickets;
  // 8 submits against bound 4: the first 4 land on the (less-loaded-first)
  // alternating shards... depth-balanced routing spreads them 4/4 and no one
  // overflows.
  for (int i = 0; i < 8; ++i) {
    Ticket t = service.submit(plan, weights);
    ASSERT_TRUE(t.accepted) << "submit " << i;
    tickets.push_back(std::move(t));
  }
  const ShardedServiceStats mid = service.stats();
  EXPECT_EQ(mid.routed_per_shard[0] + mid.routed_per_shard[1], 8u);
  EXPECT_EQ(mid.routed_per_shard[0], 4u);
  EXPECT_EQ(mid.routed_per_shard[1], 4u);
  EXPECT_EQ(mid.rejected, 0u);
  EXPECT_EQ(mid.rerouted, 0u);

  service.drain();
  const std::vector<double> want = ref.compute(weights);
  for (Ticket& t : tickets) {
    DoseResult result = t.result.get();
    ASSERT_EQ(result.status, RequestStatus::kOk) << result.error;
    expect_bitwise_equal(result.dose, want);
  }
}

TEST(ShardFaults, BulkAdmissionControlShedsLoad) {
  // Interactive keeps its headroom: once the queue passes the admission
  // fraction, bulk bounces with a retry hint while interactive still lands.
  ShardedServiceConfig config = make_config(1, 1, 16, 1);
  config.shard.queue_bound = 8;
  config.shard.flush_deadline_ms = 3.6e6;
  config.bulk_admit_fraction = 0.5;  // admission knee at depth 4
  ShardedDoseService service(config);
  service.register_plan("p", [] { return fault_matrix(0); });

  const std::vector<double> weights(kSpots, 1.0);
  SubmitOptions bulk;
  bulk.priority = RequestPriority::kBulk;
  std::vector<Ticket> accepted;
  for (int i = 0; i < 4; ++i) {
    Ticket t = service.submit("p", weights, bulk);
    ASSERT_TRUE(t.accepted) << "bulk below the knee must be admitted";
    accepted.push_back(std::move(t));
  }
  // Depth 4 == 0.5 * 8: the next bulk submit is shed...
  Ticket shed = service.submit("p", weights, bulk);
  EXPECT_FALSE(shed.accepted);
  DoseResult shed_result = shed.result.get();
  EXPECT_EQ(shed_result.status, RequestStatus::kRejected);
  EXPECT_GE(shed_result.retry_after_ms, 0.0);
  // ...while interactive still has the reserved headroom.
  Ticket interactive = service.submit("p", weights);
  ASSERT_TRUE(interactive.accepted);
  accepted.push_back(std::move(interactive));

  const ShardedServiceStats stats = service.stats();
  EXPECT_EQ(stats.admission_rejected, 1u);
  EXPECT_EQ(stats.rejected, 1u);

  service.drain();
  for (Ticket& t : accepted) {
    EXPECT_EQ(t.result.get().status, RequestStatus::kOk);
  }
}

TEST(ShardFaults, DeadlineExpiresBehindSlowShard) {
  // A request parked behind a saturated shard expires alone: batch-mates
  // ahead of it still complete, and nothing deadlocks.
  ShardedServiceConfig config = make_config(2, 1, 4, 1);
  config.shard.flush_deadline_ms = 3.6e6;  // nothing flushes on age
  ShardedDoseService service(config);
  const std::string plan = plan_placed_on(service.router(), 0);
  service.register_plan(plan, [] { return fault_matrix(0); });

  SubmitOptions options;
  options.deadline_ms = 5.0;
  Ticket ticket =
      service.submit(plan, std::vector<double>(kSpots, 1.0), options);
  ASSERT_TRUE(ticket.accepted);
  DoseResult result = ticket.result.get();  // must not deadlock
  EXPECT_EQ(result.status, RequestStatus::kDeadlineExpired);
  EXPECT_GE(result.latency_ms, 5.0);
  EXPECT_EQ(service.stats().shards[0].expired, 1u);
}

TEST(ShardFaults, CancelRoutesAcrossShards) {
  ShardedServiceConfig config = make_config(2, 1, 8, 1);
  config.shard.flush_deadline_ms = 3.6e6;  // stays queued until cancelled
  ShardedDoseService service(config);
  const std::string on0 = plan_placed_on(service.router(), 0);
  const std::string on1 = plan_placed_on(service.router(), 1);
  service.register_plan(on0, [] { return fault_matrix(0); });
  service.register_plan(on1, [] { return fault_matrix(1); });

  Ticket t0 = service.submit(on0, std::vector<double>(kSpots, 1.0));
  Ticket t1 = service.submit(on1, std::vector<double>(kSpots, 1.0));
  ASSERT_TRUE(t0.accepted);
  ASSERT_TRUE(t1.accepted);
  // Router ids encode the owning shard; both cancels land on the right one.
  EXPECT_TRUE(service.cancel(t0.id));
  EXPECT_TRUE(service.cancel(t1.id));
  EXPECT_EQ(t0.result.get().status, RequestStatus::kCancelled);
  EXPECT_EQ(t1.result.get().status, RequestStatus::kCancelled);
  // Idempotence, unknown ids, and garbage shard encodings are all false.
  EXPECT_FALSE(service.cancel(t0.id));
  EXPECT_FALSE(service.cancel(0));
  EXPECT_FALSE(service.cancel((std::uint64_t{200} << 48) | 1));
  const ShardedServiceStats stats = service.stats();
  EXPECT_EQ(stats.shards[0].cancelled + stats.shards[1].cancelled, 2u);
}

TEST(ShardFaults, CancelRacesAcrossRouter) {
  // Concurrent cancels racing the workers: every request resolves exactly
  // once, as either kOk (bitwise-checked) or kCancelled — never both, never
  // neither, never a wrong dose.
  ShardedDoseService service(make_config(2, 2, 4, 1));
  service.register_plan("p", [] { return fault_matrix(0); });
  kernels::DoseEngine ref = make_reference(0);

  const bool stress = [] {
    const char* env = std::getenv("PROTONDOSE_SERVICE_STRESS");
    return env != nullptr && env[0] != '\0' && env[0] != '0';
  }();
  const int requests = stress ? 160 : 40;
  std::vector<Ticket> tickets;
  std::vector<std::vector<double>> sent;
  Rng rng(0xca9ce15eedULL);
  for (int i = 0; i < requests; ++i) {
    std::vector<double> weights = sparse::random_vector(rng, kSpots, 0.0, 2.0);
    Ticket t = service.submit("p", weights);
    ASSERT_TRUE(t.accepted);
    tickets.push_back(std::move(t));
    sent.push_back(std::move(weights));
  }
  std::thread canceller([&service, &tickets] {
    for (std::size_t i = 0; i < tickets.size(); i += 3) {
      service.cancel(tickets[i].id);
    }
  });
  canceller.join();
  service.drain();

  std::size_t ok = 0;
  std::size_t cancelled = 0;
  for (std::size_t i = 0; i < tickets.size(); ++i) {
    DoseResult result = tickets[i].result.get();
    if (result.status == RequestStatus::kOk) {
      expect_bitwise_equal(result.dose, ref.compute(sent[i]));
      ++ok;
    } else {
      ASSERT_EQ(result.status, RequestStatus::kCancelled);
      ++cancelled;
    }
  }
  EXPECT_EQ(ok + cancelled, tickets.size());
  const ShardedServiceStats stats = service.stats();
  EXPECT_EQ(stats.shards[0].completed + stats.shards[1].completed, ok);
  EXPECT_EQ(stats.shards[0].cancelled + stats.shards[1].cancelled, cancelled);
}

TEST(ShardFaults, SliceOverflowRefusesWholeRequestNeverPartial) {
  // 4 slices against a bound-2 queue on one shard: slice submits overflow,
  // the whole request resolves kRejected, and the already-accepted slices
  // are cancelled — the service never returns (or leaks) a partial dose.
  ShardedServiceConfig config = make_config(1, 1, 16, 1);
  config.shard.queue_bound = 2;
  config.shard.flush_deadline_ms = 3.6e6;
  ShardedDoseService service(config);
  service.register_plan_sliced("sliced", [] { return fault_matrix(0); }, 4);

  Ticket ticket = service.submit("sliced", std::vector<double>(kSpots, 1.0));
  EXPECT_FALSE(ticket.accepted);
  DoseResult result = ticket.result.get();
  EXPECT_EQ(result.status, RequestStatus::kRejected);
  EXPECT_TRUE(result.dose.empty());
  EXPECT_NE(result.error.find("slice"), std::string::npos);

  const ShardedServiceStats stats = service.stats();
  EXPECT_EQ(stats.sliced_submits, 1u);
  // Both accepted slices were cancelled back out; the queue is empty and a
  // later well-sized request is unaffected.
  EXPECT_EQ(stats.shards[0].cancelled, 2u);
  service.drain();
  EXPECT_EQ(service.stats().shards[0].queue_depth, 0u);
}

TEST(ShardFaults, SliceFailureYieldsFailedNeverPartial) {
  // Malformed weights fail every slice at launch: the merged result is
  // kFailed with the offending slice named, and the dose is empty — not a
  // concatenation of whatever happened to succeed.
  ShardedDoseService service(make_config(2, 1, 4, 1));
  service.register_plan_sliced("sliced", [] { return fault_matrix(0); }, 3);

  Ticket ticket =
      service.submit("sliced", std::vector<double>(kSpots + 7, 1.0));
  ASSERT_TRUE(ticket.accepted);
  service.drain();
  DoseResult result = ticket.result.get();
  EXPECT_EQ(result.status, RequestStatus::kFailed);
  EXPECT_TRUE(result.dose.empty());
  EXPECT_NE(result.error.find("slice"), std::string::npos);
}

TEST(ShardFaults, CancelSlicedRequestCancelsEverySlice) {
  ShardedServiceConfig config = make_config(2, 1, 8, 1);
  config.shard.flush_deadline_ms = 3.6e6;  // slices stay queued
  ShardedDoseService service(config);
  service.register_plan_sliced("sliced", [] { return fault_matrix(0); }, 3);

  Ticket ticket = service.submit("sliced", std::vector<double>(kSpots, 1.0));
  ASSERT_TRUE(ticket.accepted);
  EXPECT_TRUE(service.cancel(ticket.id));
  DoseResult result = ticket.result.get();
  EXPECT_EQ(result.status, RequestStatus::kCancelled);
  EXPECT_TRUE(result.dose.empty());
  // Second cancel: the mapping is gone.
  EXPECT_FALSE(service.cancel(ticket.id));
  const ShardedServiceStats stats = service.stats();
  EXPECT_EQ(stats.shards[0].cancelled + stats.shards[1].cancelled, 3u);
  service.drain();
}

TEST(ShardFaults, DeltaOnSlicedPlanFailsImmediately) {
  ShardedDoseService service(make_config(2, 1, 4, 1));
  service.register_plan_sliced("sliced", [] { return fault_matrix(0); }, 2);

  auto base = std::make_shared<DeltaBase>();
  base->weights = std::vector<double>(kSpots, 1.0);
  base->dose = std::vector<double>(300, 0.0);
  Ticket ticket = service.submit_delta("sliced", base,
                                       std::vector<double>(kSpots, 2.0));
  EXPECT_FALSE(ticket.accepted);
  DoseResult result = ticket.result.get();
  EXPECT_EQ(result.status, RequestStatus::kFailed);
  EXPECT_NE(result.error.find("sliced"), std::string::npos);
}

TEST(ShardFaults, DrainShardRacesInFlightTraffic) {
  // drain_shard while clients are mid-burst: every accepted request still
  // resolves (kOk bitwise or a documented refusal), and the drained shard
  // ends idle.  This is the stop/drain-mid-batch reroute scenario.
  ShardedDoseService service(make_config(2, 2, 4, 1));
  const std::string on0 = plan_placed_on(service.router(), 0);
  const std::string on1 = plan_placed_on(service.router(), 1);
  service.register_plan(on0, [] { return fault_matrix(0); });
  service.register_plan(on1, [] { return fault_matrix(1); });
  kernels::DoseEngine ref0 = make_reference(0);
  kernels::DoseEngine ref1 = make_reference(1);

  std::vector<std::pair<bool, std::vector<double>>> sent;
  std::vector<Ticket> tickets;
  std::thread producer([&] {
    Rng rng(0xd4a1a5eedULL);
    for (int i = 0; i < 30; ++i) {
      const bool is0 = i % 2 == 0;
      std::vector<double> weights =
          sparse::random_vector(rng, kSpots, 0.0, 2.0);
      Ticket t = service.submit(is0 ? on0 : on1, weights);
      ASSERT_TRUE(t.accepted);
      tickets.push_back(std::move(t));
      sent.emplace_back(is0, std::move(weights));
    }
  });
  service.drain_shard(0);  // races the producer's burst
  producer.join();
  service.drain();

  EXPECT_EQ(service.shard_health(0), ShardHealth::kStopped);
  for (std::size_t i = 0; i < tickets.size(); ++i) {
    DoseResult result = tickets[i].result.get();
    ASSERT_EQ(result.status, RequestStatus::kOk) << result.error;
    expect_bitwise_equal(result.dose, (sent[i].first ? ref0 : ref1)
                                          .compute(sent[i].second));
  }
  // After the drain completed, shard 0 accepts nothing new: all post-drain
  // traffic for its plan was rerouted, none lost.
  const ShardedServiceStats stats = service.stats();
  EXPECT_EQ(stats.accepted, tickets.size());
  EXPECT_EQ(stats.shards[0].queue_depth, 0u);
}

}  // namespace
}  // namespace pd::service
