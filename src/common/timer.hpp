#pragma once
// Wall-clock timer for host-side measurements (the simulated-GPU timings come
// from gpusim::PerfModel, not from this).

#include <chrono>

namespace pd {

class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace pd
