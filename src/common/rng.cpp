#include "common/rng.hpp"

#include <cmath>

#include "common/error.hpp"

namespace pd {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) {
    word = splitmix64(sm);
  }
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random bits into the mantissa gives uniform [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  PD_CHECK_MSG(lo <= hi, "uniform: empty interval");
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  PD_CHECK_MSG(n > 0, "uniform_index: n must be positive");
  // Lemire's multiply-shift rejection method.
  std::uint64_t x = next_u64();
  unsigned __int128 m = static_cast<unsigned __int128>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = (0ULL - n) % n;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<unsigned __int128>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller; u1 in (0,1] to avoid log(0).
  double u1 = 1.0 - uniform();
  double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

Rng Rng::fork() { return Rng(next_u64()); }

}  // namespace pd
