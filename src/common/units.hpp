#pragma once
// Strong unit helpers for the performance model: keeping bytes, FLOPs, and
// seconds as distinct vocabulary avoids the classic GB-vs-GiB and
// bytes-vs-transactions mix-ups in roofline arithmetic.

#include <cstdint>

namespace pd {

inline constexpr double kGiga = 1e9;

/// Convert bytes and seconds to GB/s (decimal gigabytes, as GPU datasheets do).
double gbytes_per_sec(double bytes, double seconds);

/// Convert FLOP count and seconds to GFLOP/s.
double gflops_per_sec(double flops, double seconds);

/// Operational intensity (FLOP per DRAM byte).
double operational_intensity(double flops, double dram_bytes);

/// Seconds from a byte volume at a bandwidth given in GB/s.
double seconds_for_bytes(double bytes, double bandwidth_gbs);

/// Seconds from a FLOP count at a compute rate given in GFLOP/s.
double seconds_for_flops(double flops, double gflops);

}  // namespace pd
