#pragma once
// Minimal CSV writer with RFC-4180 quoting; benches emit machine-readable CSV
// alongside the human-readable tables so results can be re-plotted.

#include <ostream>
#include <string>
#include <vector>

namespace pd {

class CsvWriter {
 public:
  /// Writes into an externally owned stream (file or string stream).
  explicit CsvWriter(std::ostream& out);

  void write_row(const std::vector<std::string>& cells);

  /// Quote a cell if it contains separators, quotes, or newlines.
  static std::string escape(const std::string& cell);

 private:
  std::ostream& out_;
};

}  // namespace pd
