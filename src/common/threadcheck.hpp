#pragma once
// threadcheck — a happens-before race and lock-order analyzer for the host
// serving stack, the simcheck sibling for host concurrency.
//
// simcheck (docs/simcheck.md) gives the simulated device kernels
// compute-sanitizer-style coverage; the code that actually serves traffic —
// service::DoseService, BatchQueue scheduling under the service lock,
// EngineCache, the gpusim phase-1 ThreadPool, and the nnz-balanced
// parallel_spmv threading — had none.  threadcheck closes that gap with the
// same contract: strictly opt-in instrumentation whose disabled cost is one
// relaxed atomic null test per operation, and whose enabled findings are
// deterministic functions of the recorded event stream.
//
// Instrumented primitives (drop-in for the std types they wrap):
//  * pd::Mutex      — std::mutex + lock/unlock event recording.  Works with
//    std::lock_guard / std::unique_lock / std::scoped_lock.
//  * pd::CondVar    — std::condition_variable_any over pd::Mutex.  Untimed
//    waits must state their predicate (wait(lock, pred)) or explicitly
//    attest to an enclosing re-check loop (wait_unpredicated); a plain
//    wait(lock) is linted.  Constructors declare whether the condvar
//    expects waiters — notifying one that never had any is linted.
//  * pd::SharedState<T> / pd::SharedRange — registration for shared data:
//    read()/write() record range-granular access events that the race pass
//    checks for happens-before ordering.
//
// Analysis passes (threadcheck::analyze(), over the recorded stream):
//  * race        — FastTrack-style vector-clock happens-before detection on
//    registered shared state.  Mutex release/acquire are the sync edges
//    (condvar waits ride on them: condition_variable_any unlocks/relocks
//    through the instrumented Mutex).  Two overlapping accesses from
//    different threads with at least one write and no happens-before path
//    are a race — detected from the event order alone, so a fixture's bug
//    is flagged even when the actual interleaving happened to be benign.
//  * lockorder   — a lock-order graph (edge A->B when a thread acquires B
//    while holding A) with cycle detection: a cycle is a potential deadlock
//    even if this run never interleaved into it.
//  * condvar     — wait-without-predicate and notify-with-no-waiter lints.
//  * latency     — flags DoseEngine::compute* calls (which can run for
//    milliseconds at paper scale) made while holding any pd::Mutex; the
//    serving stack's contract is that locks bracket queue state, never
//    compute.
//
// Schedule perturbation: a seeded PCT-style hook at every instrumented
// point (lock acquire, notify, shared access).  The yield/sleep decisions
// are a pure function of (seed, thread index, per-thread op count), so a
// seed names one perturbation pattern and a failing seed can be re-run —
// the OS still owns the final interleaving, but the analysis above is
// interleaving-independent, which is what makes seeded runs reproducible
// in what they *report*.
//
// Reproducibility contract (§II-D): disabled-mode behavior is bitwise
// identical to the uninstrumented stack — the primitives add one null test
// and otherwise forward to the std types (ServiceThreadcheck.DoesNotPerturb
// in tests/test_service.cpp asserts served doses stay bitwise equal to
// sequential compute even with checking and perturbation enabled).

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace pd::threadcheck {

/// The finding taxonomy, one class per analysis pass (the condvar pass owns
/// two).  Mirrors simcheck's ViolationKind design.
enum class FindingKind : std::uint8_t {
  kDataRace,              ///< race: unordered conflicting accesses.
  kLockInversion,         ///< lockorder: cycle in the lock-order graph.
  kUnpredicatedWait,      ///< condvar: untimed wait with no predicate.
  kNotifyWithoutWaiters,  ///< condvar: notify on a never-waited condvar.
  kLockHeldAcrossCompute, ///< latency: DoseEngine::compute* under a lock.
};

const char* finding_kind_name(FindingKind kind);

/// One structured finding: what happened, on which named object, and a
/// human-readable sentence for reports.
struct Finding {
  FindingKind kind = FindingKind::kDataRace;
  std::string object;  ///< name of the mutex / condvar / shared state
  std::string detail;
};

/// Which passes run, the perturbation seed, and the recording bounds.
struct CheckConfig {
  bool race = true;
  bool lockorder = true;
  bool condvar = true;
  bool latency = true;
  /// 0 = no perturbation; any other value seeds the PCT-style hook.
  std::uint64_t schedule_seed = 0;
  /// Finding cap; further findings only bump `Report::suppressed`.
  std::size_t max_findings = 256;
  /// Event-stream cap (a safety valve for very long runs); events past the
  /// cap are counted in `Report::events_dropped` and not analyzed.
  std::size_t max_events = std::size_t{1} << 21;

  static CheckConfig all() { return CheckConfig{}; }
};

struct Report {
  std::vector<Finding> findings;
  std::uint64_t suppressed = 0;      ///< findings past max_findings
  std::uint64_t events = 0;          ///< events analyzed
  std::uint64_t events_dropped = 0;  ///< events past max_events
  std::uint64_t perturbations = 0;   ///< yields/sleeps the seed injected

  bool clean() const { return findings.empty() && suppressed == 0; }
  std::uint64_t count(FindingKind kind) const;
  /// Multi-line human-readable summary for test messages and reports.
  std::string summary() const;
};

/// Start recording under `config`.  Events already recorded are kept (enable
/// after reset() for a fresh session).  Thread-safe; the context is a
/// never-destroyed singleton, so a stale pointer in a racing recorder is
/// always valid.
void enable(CheckConfig config = {});

/// Stop recording.  The event stream is kept for analyze().
void disable();

bool enabled();

/// Drop every recorded event, finding, and thread registration (object
/// registrations survive: live primitives hold their ids).
void reset();

/// Run all configured passes over the recorded stream.  Non-destructive —
/// callers may keep recording afterwards, though mid-run analysis can see
/// open waits.  Deterministic: same stream + config => same findings.
Report analyze();

/// True when PROTONDOSE_THREADCHECK requests checking ("1"/"true"/"on"/
/// "yes").  A static initializer honors it at startup, seeding the
/// perturbation hook from PROTONDOSE_THREADCHECK_SEED when set.
bool env_enabled();
std::uint64_t env_schedule_seed();

/// Latency-lint hook: DoseEngine::compute* entry points call this with a
/// site name; the pass flags any such call made while the calling thread
/// holds a pd::Mutex.  One null test when disabled.
void note_compute(const char* site);

namespace detail {

enum class EventKind : std::uint8_t {
  kLock,
  kUnlock,
  kWaitBegin,
  kWaitEnd,
  kNotify,
  kAccess,
  kCompute,
};

/// WaitBegin flavors (Event::aux).
constexpr std::uint32_t kWaitPlain = 0;      ///< linted
constexpr std::uint32_t kWaitPredicated = 1;
constexpr std::uint32_t kWaitAttested = 2;   ///< caller-attested re-check loop
constexpr std::uint32_t kWaitTimed = 3;      ///< timed waits poll; not linted

enum class ObjectKind : std::uint8_t {
  kMutex,
  kCondVar,
  kShared,
  kComputeSite,
};

/// Condvar waiter expectation (see pd::CondVar).
constexpr std::uint32_t kWaitersExpected = 0;
constexpr std::uint32_t kWaitersOptional = 1;

std::uint32_t register_object(ObjectKind kind, const char* name,
                              std::uint32_t flags);

/// Lazily resolve a primitive's object id (0 = unregistered).  Registration
/// happens on first instrumented use, so primitives constructed before
/// enable() still get ids.
inline std::uint32_t resolve_id(std::atomic<std::uint32_t>& slot,
                                ObjectKind kind, const char* name,
                                std::uint32_t flags = 0) {
  std::uint32_t id = slot.load(std::memory_order_relaxed);
  if (id == 0) {
    id = register_object(kind, name, flags);
    slot.store(id, std::memory_order_relaxed);
  }
  return id;
}

/// The active context, or nullptr when disabled — the one test every
/// instrumented operation pays.
struct Context;
Context* active();

void record_lock(Context* ctx, std::uint32_t id);
void record_unlock(Context* ctx, std::uint32_t id);
void record_wait_begin(Context* ctx, std::uint32_t cv, std::uint32_t flavor);
void record_wait_end(Context* ctx, std::uint32_t cv);
void record_notify(Context* ctx, std::uint32_t cv, bool all);
void record_access(Context* ctx, std::uint32_t obj, std::size_t begin,
                   std::size_t end, bool write);
void record_compute(Context* ctx, std::uint32_t site);

/// Seeded PCT-style perturbation at an instrumented point (no-op when the
/// session seed is 0).
void perturb(Context* ctx);

}  // namespace detail
}  // namespace pd::threadcheck

namespace pd {

/// Instrumented std::mutex.  Satisfies Lockable, so the std lock adapters
/// work unchanged.  The name should be a string literal (stored as a
/// pointer; registration copies it).
class Mutex {
 public:
  explicit Mutex(const char* name = "pd::Mutex") noexcept : name_(name) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() {
    if (auto* ctx = threadcheck::detail::active()) {
      threadcheck::detail::perturb(ctx);
      m_.lock();
      threadcheck::detail::record_lock(ctx, id());
      return;
    }
    m_.lock();
  }

  bool try_lock() {
    if (auto* ctx = threadcheck::detail::active()) {
      const bool got = m_.try_lock();
      if (got) {
        threadcheck::detail::record_lock(ctx, id());
      }
      return got;
    }
    return m_.try_lock();
  }

  void unlock() {
    // Record *before* releasing so a competitor's subsequent lock record
    // always lands after ours — the recorded order then matches the real
    // acquisition order, which the analysis passes rely on.
    if (auto* ctx = threadcheck::detail::active()) {
      threadcheck::detail::record_unlock(ctx, id());
    }
    m_.unlock();
  }

  const char* name() const { return name_; }

 private:
  std::uint32_t id() {
    return threadcheck::detail::resolve_id(
        id_, threadcheck::detail::ObjectKind::kMutex, name_);
  }

  std::mutex m_;
  const char* name_;
  std::atomic<std::uint32_t> id_{0};
};

/// Instrumented condition variable over pd::Mutex.
///
/// Untimed waits must either state their predicate (wait(lock, pred)) or
/// attest to an enclosing re-check loop (wait_unpredicated); the bare
/// wait(lock) records a linted event — it is the missed-predicate hazard.
/// Timed waits are polls by construction and are not linted.
///
/// `Waiters` is the notify-lint registration: the default (kExpected)
/// asserts that someone waits on this condvar over the run, so notifying a
/// never-waited condvar — the classic wrong-condvar lost-wakeup bug — is
/// flagged.  Completion-broadcast condvars whose waiters are legitimately
/// optional (a drain() no one calls, workers that exit before their first
/// wait in a short-lived pool) declare kOptional, with a comment at the
/// declaration saying why — the same per-suppression-rationale discipline
/// as .clang-tidy.
class CondVar {
 public:
  enum class Waiters : std::uint8_t { kExpected, kOptional };

  explicit CondVar(const char* name = "pd::CondVar",
                   Waiters waiters = Waiters::kExpected) noexcept
      : name_(name), waiters_(waiters) {}
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() { notify(false); }
  void notify_all() { notify(true); }

  /// Bare untimed wait — linted (kUnpredicatedWait).  Prefer the predicate
  /// overload, or wait_unpredicated when an enclosing loop re-checks.
  void wait(std::unique_lock<Mutex>& lock) {
    wait_flavored(lock, threadcheck::detail::kWaitPlain);
  }

  template <typename Pred>
  void wait(std::unique_lock<Mutex>& lock, Pred pred) {
    if (auto* ctx = threadcheck::detail::active()) {
      threadcheck::detail::record_wait_begin(
          ctx, id(), threadcheck::detail::kWaitPredicated);
      cv_.wait(lock, std::move(pred));
      threadcheck::detail::record_wait_end(
          threadcheck::detail::active(), id());
      return;
    }
    cv_.wait(lock, std::move(pred));
  }

  /// Untimed wait whose caller attests to an enclosing re-check loop (the
  /// worker-loop pattern: every wake re-evaluates the full scheduling
  /// state).  Recorded, not linted.
  void wait_unpredicated(std::unique_lock<Mutex>& lock) {
    wait_flavored(lock, threadcheck::detail::kWaitAttested);
  }

  template <typename Clock, typename Duration>
  std::cv_status wait_until(
      std::unique_lock<Mutex>& lock,
      const std::chrono::time_point<Clock, Duration>& deadline) {
    if (auto* ctx = threadcheck::detail::active()) {
      threadcheck::detail::record_wait_begin(
          ctx, id(), threadcheck::detail::kWaitTimed);
      const std::cv_status status = cv_.wait_until(lock, deadline);
      threadcheck::detail::record_wait_end(
          threadcheck::detail::active(), id());
      return status;
    }
    return cv_.wait_until(lock, deadline);
  }

  template <typename Clock, typename Duration, typename Pred>
  bool wait_until(std::unique_lock<Mutex>& lock,
                  const std::chrono::time_point<Clock, Duration>& deadline,
                  Pred pred) {
    if (auto* ctx = threadcheck::detail::active()) {
      threadcheck::detail::record_wait_begin(
          ctx, id(), threadcheck::detail::kWaitTimed);
      const bool satisfied = cv_.wait_until(lock, deadline, std::move(pred));
      threadcheck::detail::record_wait_end(
          threadcheck::detail::active(), id());
      return satisfied;
    }
    return cv_.wait_until(lock, deadline, std::move(pred));
  }

  const char* name() const { return name_; }

 private:
  void notify(bool all) {
    if (auto* ctx = threadcheck::detail::active()) {
      threadcheck::detail::perturb(ctx);
      threadcheck::detail::record_notify(ctx, id(), all);
    }
    if (all) {
      cv_.notify_all();
    } else {
      cv_.notify_one();
    }
  }

  void wait_flavored(std::unique_lock<Mutex>& lock, std::uint32_t flavor) {
    if (auto* ctx = threadcheck::detail::active()) {
      threadcheck::detail::record_wait_begin(ctx, id(), flavor);
      cv_.wait(lock);
      threadcheck::detail::record_wait_end(
          threadcheck::detail::active(), id());
      return;
    }
    cv_.wait(lock);
  }

  std::uint32_t id() {
    return threadcheck::detail::resolve_id(
        id_, threadcheck::detail::ObjectKind::kCondVar, name_,
        waiters_ == Waiters::kOptional
            ? threadcheck::detail::kWaitersOptional
            : threadcheck::detail::kWaitersExpected);
  }

  std::condition_variable_any cv_;
  const char* name_;
  Waiters waiters_;
  std::atomic<std::uint32_t> id_{0};
};

/// Registration handle for a shared region accessed at range granularity
/// (e.g. parallel_spmv's output rows: each worker records one write of its
/// partition).  The race pass flags overlapping, unordered accesses — so a
/// partitioning bug that handed two threads overlapping ranges is caught
/// even when the duplicated rows happened to be written in a benign order.
class SharedRange {
 public:
  explicit SharedRange(const char* name = "pd::SharedRange") noexcept
      : name_(name) {}
  SharedRange(const SharedRange&) = delete;
  SharedRange& operator=(const SharedRange&) = delete;

  void read(std::size_t begin, std::size_t end) const {
    if (auto* ctx = threadcheck::detail::active()) {
      threadcheck::detail::perturb(ctx);
      threadcheck::detail::record_access(ctx, id(), begin, end, false);
    }
  }

  void write(std::size_t begin, std::size_t end) {
    if (auto* ctx = threadcheck::detail::active()) {
      threadcheck::detail::perturb(ctx);
      threadcheck::detail::record_access(ctx, id(), begin, end, true);
    }
  }

  const char* name() const { return name_; }

 private:
  std::uint32_t id() const {
    return threadcheck::detail::resolve_id(
        id_, threadcheck::detail::ObjectKind::kShared, name_);
  }

  const char* name_;
  mutable std::atomic<std::uint32_t> id_{0};
};

/// A single shared cell with instrumented accessors.  read()/write() return
/// references, so call sites stay close to plain member access:
///   state.write() = 3;   int v = state.read();
/// The accessors record the event *before* returning the reference; the
/// recorded order is the instrumented-operation order, which is what the
/// happens-before pass reasons about.
template <typename T>
class SharedState {
 public:
  explicit SharedState(const char* name, T value = T{})
      : value_(std::move(value)), range_(name) {}
  SharedState(const SharedState&) = delete;
  SharedState& operator=(const SharedState&) = delete;

  const T& read() const {
    range_.read(0, 1);
    return value_;
  }

  T& write() {
    range_.write(0, 1);
    return value_;
  }

  /// Uninstrumented access for single-threaded phases (construction,
  /// post-join teardown).
  T& unchecked() { return value_; }

 private:
  T value_;
  SharedRange range_;
};

}  // namespace pd
