#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/error.hpp"

namespace pd {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  PD_CHECK_MSG(!header_.empty(), "TextTable: header must be non-empty");
}

void TextTable::add_row(std::vector<std::string> cells) {
  PD_CHECK_MSG(cells.size() == header_.size(),
               "TextTable: row width differs from header");
  rows_.push_back(std::move(cells));
}

std::string TextTable::str() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c])) << row[c];
      os << (c + 1 == row.size() ? "\n" : "  ");
    }
  };
  emit(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << std::string(widths[c], '-') << (c + 1 == header_.size() ? "\n" : "  ");
  }
  for (const auto& row : rows_) {
    emit(row);
  }
  return os.str();
}

std::string fmt_double(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string fmt_sci(double v, int precision) {
  std::ostringstream os;
  os << std::scientific << std::setprecision(precision) << v;
  return os.str();
}

std::string fmt_percent(double fraction, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << fraction * 100.0 << "%";
  return os.str();
}

std::string fmt_bytes(double bytes) {
  static const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  int unit = 0;
  while (bytes >= 1024.0 && unit < 4) {
    bytes /= 1024.0;
    ++unit;
  }
  std::ostringstream os;
  os << std::fixed << std::setprecision(unit == 0 ? 0 : 2) << bytes << " "
     << kUnits[unit];
  return os.str();
}

}  // namespace pd
