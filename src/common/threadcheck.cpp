#include "common/threadcheck.hpp"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <set>
#include <sstream>
#include <thread>
#include <tuple>
#include <unordered_map>
#include <utility>

namespace pd::threadcheck {
namespace detail {

struct Event {
  EventKind kind = EventKind::kLock;
  std::uint32_t thread = 0;
  std::uint32_t object = 0;
  std::uint32_t aux = 0;  ///< wait flavor / notify-all flag
  std::size_t begin = 0;  ///< access range
  std::size_t end = 0;
  bool write = false;
};

struct ObjectInfo {
  ObjectKind kind = ObjectKind::kMutex;
  std::string name;
  std::uint32_t flags = 0;
};

/// The singleton shadow state.  Recording serializes on `mu` — threadcheck
/// is an analyzer, not a production mode, and the serialization also gives
/// the stream a total order consistent with every thread's program order
/// and with real lock-acquisition order (see Mutex::unlock).
struct Context {
  std::mutex mu;
  CheckConfig config;
  bool recording = false;
  std::vector<Event> events;
  std::uint64_t events_dropped = 0;
  std::uint64_t perturbations = 0;
  /// Dense thread indices.  Cleared by reset(), so a recycled OS thread id
  /// cannot inherit a finished thread's vector clock across sessions.
  std::unordered_map<std::thread::id, std::uint32_t> threads;
  /// Registered objects, 1-based (0 = unregistered).  Never cleared while
  /// the process lives: live primitives cache their ids.
  std::vector<ObjectInfo> objects;
  /// Compute-site ids, keyed by the (string-literal) site pointer.
  std::unordered_map<const void*, std::uint32_t> compute_sites;

  std::uint32_t thread_index_locked() {
    const auto id = std::this_thread::get_id();
    const auto it = threads.find(id);
    if (it != threads.end()) {
      return it->second;
    }
    const auto idx = static_cast<std::uint32_t>(threads.size());
    threads.emplace(id, idx);
    return idx;
  }

  void append(Event event) {
    std::lock_guard<std::mutex> lock(mu);
    if (!recording) {
      return;
    }
    if (events.size() >= config.max_events) {
      ++events_dropped;
      return;
    }
    event.thread = thread_index_locked();
    events.push_back(event);
  }
};

namespace {

Context& context() {
  // Never destroyed: a racing recorder that loaded the active pointer just
  // before disable() must still have valid storage to write into.
  static Context* instance = new Context();
  return *instance;
}

std::atomic<Context*> g_active{nullptr};

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

bool env_truthy(const char* name) {
  const char* v = std::getenv(name);
  if (v == nullptr) {
    return false;
  }
  const std::string s(v);
  return s == "1" || s == "true" || s == "on" || s == "yes";
}

// Honor PROTONDOSE_THREADCHECK at startup, exactly as simcheck honors
// PROTONDOSE_SIMCHECK: the whole test suite then runs instrumented and the
// clean-suite gtest environments (tests/test_service.cpp,
// tests/test_delta_engine.cpp) assert a clean report at exit.
const bool g_env_init = [] {
  if (env_enabled()) {
    CheckConfig config;
    config.schedule_seed = env_schedule_seed();
    enable(config);
  }
  return true;
}();

}  // namespace

Context* active() { return g_active.load(std::memory_order_acquire); }

std::uint32_t register_object(ObjectKind kind, const char* name,
                              std::uint32_t flags) {
  Context& ctx = context();
  std::lock_guard<std::mutex> lock(ctx.mu);
  ctx.objects.push_back(
      ObjectInfo{kind, name == nullptr ? "" : name, flags});
  return static_cast<std::uint32_t>(ctx.objects.size());  // 1-based
}

void record_lock(Context* ctx, std::uint32_t id) {
  ctx->append(Event{EventKind::kLock, 0, id, 0, 0, 0, false});
}

void record_unlock(Context* ctx, std::uint32_t id) {
  ctx->append(Event{EventKind::kUnlock, 0, id, 0, 0, 0, false});
}

void record_wait_begin(Context* ctx, std::uint32_t cv, std::uint32_t flavor) {
  ctx->append(Event{EventKind::kWaitBegin, 0, cv, flavor, 0, 0, false});
}

void record_wait_end(Context* ctx, std::uint32_t cv) {
  if (ctx == nullptr) {
    return;  // disabled while we were blocked in the wait
  }
  ctx->append(Event{EventKind::kWaitEnd, 0, cv, 0, 0, 0, false});
}

void record_notify(Context* ctx, std::uint32_t cv, bool all) {
  ctx->append(Event{EventKind::kNotify, 0, cv, all ? 1u : 0u, 0, 0, false});
}

void record_access(Context* ctx, std::uint32_t obj, std::size_t begin,
                   std::size_t end, bool write) {
  ctx->append(Event{EventKind::kAccess, 0, obj, 0, begin, end, write});
}

void record_compute(Context* ctx, std::uint32_t site) {
  ctx->append(Event{EventKind::kCompute, 0, site, 0, 0, 0, false});
}

void perturb(Context* ctx) {
  std::uint64_t seed;
  {
    std::lock_guard<std::mutex> lock(ctx->mu);
    if (!ctx->recording || ctx->config.schedule_seed == 0) {
      return;
    }
    seed = ctx->config.schedule_seed;
  }
  // Deterministic decision, nondeterministic effect: the (seed, thread,
  // op-count) hash decides *whether* this point yields or stalls, the OS
  // decides what runs instead.  thread_local keeps the op counter free of
  // cross-thread contention.
  thread_local std::uint64_t op_count = 0;
  const std::uint64_t tid =
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  const std::uint64_t mix = splitmix64(seed ^ splitmix64(tid) ^ op_count++);
  if ((mix & 0x3F) == 0) {  // 1/64: a real stall, long enough to reorder
    {
      std::lock_guard<std::mutex> lock(ctx->mu);
      ++ctx->perturbations;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  } else if ((mix & 0x7) == 0) {  // 1/8: cheap reschedule point
    {
      std::lock_guard<std::mutex> lock(ctx->mu);
      ++ctx->perturbations;
    }
    std::this_thread::yield();
  }
}

}  // namespace detail

const char* finding_kind_name(FindingKind kind) {
  switch (kind) {
    case FindingKind::kDataRace:
      return "data-race";
    case FindingKind::kLockInversion:
      return "lock-inversion";
    case FindingKind::kUnpredicatedWait:
      return "unpredicated-wait";
    case FindingKind::kNotifyWithoutWaiters:
      return "notify-without-waiters";
    case FindingKind::kLockHeldAcrossCompute:
      return "lock-held-across-compute";
  }
  return "unknown";
}

std::uint64_t Report::count(FindingKind kind) const {
  std::uint64_t n = 0;
  for (const Finding& f : findings) {
    if (f.kind == kind) {
      ++n;
    }
  }
  return n;
}

std::string Report::summary() const {
  std::ostringstream out;
  out << "threadcheck: " << findings.size() << " finding(s)";
  if (suppressed > 0) {
    out << " (+" << suppressed << " suppressed)";
  }
  out << " over " << events << " event(s)";
  if (events_dropped > 0) {
    out << " (" << events_dropped << " dropped past the cap)";
  }
  out << "\n";
  for (const Finding& f : findings) {
    out << "  [" << finding_kind_name(f.kind) << "] " << f.object << ": "
        << f.detail << "\n";
  }
  return out.str();
}

void enable(CheckConfig config) {
  detail::Context& ctx = detail::context();
  {
    std::lock_guard<std::mutex> lock(ctx.mu);
    ctx.config = config;
    ctx.recording = true;
  }
  detail::g_active.store(&ctx, std::memory_order_release);
}

void disable() {
  detail::Context& ctx = detail::context();
  detail::g_active.store(nullptr, std::memory_order_release);
  std::lock_guard<std::mutex> lock(ctx.mu);
  ctx.recording = false;
}

bool enabled() {
  return detail::g_active.load(std::memory_order_acquire) != nullptr;
}

void reset() {
  detail::Context& ctx = detail::context();
  std::lock_guard<std::mutex> lock(ctx.mu);
  ctx.events.clear();
  ctx.events_dropped = 0;
  ctx.perturbations = 0;
  ctx.threads.clear();
}

bool env_enabled() { return detail::env_truthy("PROTONDOSE_THREADCHECK"); }

std::uint64_t env_schedule_seed() {
  const char* v = std::getenv("PROTONDOSE_THREADCHECK_SEED");
  if (v == nullptr) {
    return 0;
  }
  return std::strtoull(v, nullptr, 10);
}

void note_compute(const char* site) {
  if (auto* ctx = threadcheck::detail::active()) {
    std::uint32_t id;
    {
      std::lock_guard<std::mutex> lock(ctx->mu);
      const auto it = ctx->compute_sites.find(site);
      if (it != ctx->compute_sites.end()) {
        id = it->second;
      } else {
        ctx->objects.push_back(detail::ObjectInfo{
            detail::ObjectKind::kComputeSite, site, 0});
        id = static_cast<std::uint32_t>(ctx->objects.size());
        ctx->compute_sites.emplace(site, id);
      }
    }
    detail::record_compute(ctx, id);
  }
}

// ---------------------------------------------------------------------------
// Analysis passes.
// ---------------------------------------------------------------------------

namespace {

using detail::Event;
using detail::EventKind;
using detail::ObjectInfo;
using detail::ObjectKind;

/// Vector clock: clock[t] = the latest operation of thread t known to
/// happen-before the owner's current point.
using VectorClock = std::vector<std::uint64_t>;

void vc_join(VectorClock& into, const VectorClock& from) {
  if (into.size() < from.size()) {
    into.resize(from.size(), 0);
  }
  for (std::size_t i = 0; i < from.size(); ++i) {
    into[i] = std::max(into[i], from[i]);
  }
}

std::uint64_t vc_get(const VectorClock& vc, std::uint32_t t) {
  return t < vc.size() ? vc[t] : 0;
}

void vc_set(VectorClock& vc, std::uint32_t t, std::uint64_t v) {
  if (vc.size() <= t) {
    vc.resize(t + 1, 0);
  }
  vc[t] = v;
}

/// One remembered access for the race pass.  `clock` is the accessor's own
/// component C_t[t] at access time: access a happens-before a later point p
/// iff a.clock <= C_p[a.thread] (FastTrack's epoch comparison).
struct AccessRecord {
  std::uint32_t thread = 0;
  std::uint64_t clock = 0;
  std::size_t begin = 0;
  std::size_t end = 0;
  bool write = false;
};

struct Analyzer {
  const CheckConfig& config;
  const std::vector<ObjectInfo>& objects;
  Report& report;

  std::vector<VectorClock> thread_clock;
  std::vector<VectorClock> mutex_clock;       ///< release clocks, by object id
  std::vector<std::vector<std::uint32_t>> held;  ///< lock stack per thread
  /// Lock-order edges: held -> acquired, with one witness thread each.
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint32_t> edges;
  /// Recent accesses per object, bounded per (object, thread) so a
  /// long-lived object (the pool's batch marker) cannot grow the pass
  /// quadratic.  Last-K approximation, same spirit as simcheck's last-access
  /// shared shadow.
  static constexpr std::size_t kKeepPerThread = 8;
  std::map<std::uint32_t, std::map<std::uint32_t, std::vector<AccessRecord>>>
      accesses;
  std::map<std::uint32_t, std::uint64_t> cv_waits;
  std::map<std::uint32_t, std::uint64_t> cv_notifies;
  std::set<std::uint32_t> linted_unpredicated;
  std::set<std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>>
      race_reported;  ///< (object, thread a, thread b)
  std::set<std::pair<std::uint32_t, std::uint32_t>> latency_reported;

  const std::string& object_name(std::uint32_t id) const {
    static const std::string unknown = "<unregistered>";
    return (id >= 1 && id <= objects.size()) ? objects[id - 1].name : unknown;
  }

  void add_finding(FindingKind kind, std::uint32_t object,
                   std::string detail_text) {
    if (report.findings.size() >= config.max_findings) {
      ++report.suppressed;
      return;
    }
    report.findings.push_back(
        Finding{kind, object_name(object), std::move(detail_text)});
  }

  VectorClock& clock_of(std::uint32_t t) {
    if (thread_clock.size() <= t) {
      thread_clock.resize(t + 1);
    }
    VectorClock& c = thread_clock[t];
    if (vc_get(c, t) == 0) {
      vc_set(c, t, 1);  // each thread starts at its own epoch 1
    }
    return c;
  }

  void on_lock(const Event& e) {
    VectorClock& c = clock_of(e.thread);
    if (mutex_clock.size() <= e.object) {
      mutex_clock.resize(e.object + 1);
    }
    vc_join(c, mutex_clock[e.object]);  // acquire edge

    if (held.size() <= e.thread) {
      held.resize(e.thread + 1);
    }
    if (config.lockorder) {
      for (const std::uint32_t h : held[e.thread]) {
        if (h != e.object) {
          edges.emplace(std::make_pair(h, e.object), e.thread);
        }
      }
    }
    held[e.thread].push_back(e.object);
  }

  void on_unlock(const Event& e) {
    VectorClock& c = clock_of(e.thread);
    if (mutex_clock.size() <= e.object) {
      mutex_clock.resize(e.object + 1);
    }
    mutex_clock[e.object] = c;                     // release edge
    vc_set(c, e.thread, vc_get(c, e.thread) + 1);  // advance own epoch

    if (held.size() > e.thread) {
      auto& stack = held[e.thread];
      const auto it = std::find(stack.rbegin(), stack.rend(), e.object);
      if (it != stack.rend()) {
        stack.erase(std::next(it).base());
      }
    }
  }

  void on_wait_begin(const Event& e) {
    ++cv_waits[e.object];
    if (config.condvar && e.aux == detail::kWaitPlain &&
        linted_unpredicated.insert(e.object).second) {
      add_finding(FindingKind::kUnpredicatedWait, e.object,
                  "untimed wait() without a predicate — a spurious or stale "
                  "wakeup proceeds on an unverified condition; state the "
                  "predicate (wait(lock, pred)) or attest to the enclosing "
                  "re-check loop (wait_unpredicated)");
    }
  }

  void on_notify(const Event& e) { ++cv_notifies[e.object]; }

  void on_access(const Event& e) {
    VectorClock& c = clock_of(e.thread);
    const std::uint64_t my_clock = vc_get(c, e.thread);
    auto& per_thread = accesses[e.object];
    if (config.race) {
      for (const auto& [other_thread, records] : per_thread) {
        if (other_thread == e.thread) {
          continue;
        }
        for (const AccessRecord& a : records) {
          const bool overlap = a.begin < e.end && e.begin < a.end;
          const bool conflict = a.write || e.write;
          const bool ordered = a.clock <= vc_get(c, a.thread);
          if (overlap && conflict && !ordered) {
            const auto lo = std::min(a.thread, e.thread);
            const auto hi = std::max(a.thread, e.thread);
            if (race_reported.insert({e.object, lo, hi}).second) {
              std::ostringstream detail_text;
              detail_text
                  << (a.write && e.write
                          ? "write/write"
                          : "read/write")
                  << " race: thread " << a.thread << " "
                  << (a.write ? "wrote" : "read") << " [" << a.begin << ", "
                  << a.end << ") and thread " << e.thread << " "
                  << (e.write ? "wrote" : "read") << " [" << e.begin << ", "
                  << e.end << ") with no happens-before ordering";
              add_finding(FindingKind::kDataRace, e.object,
                          detail_text.str());
            }
          }
        }
      }
    }
    auto& mine = per_thread[e.thread];
    mine.push_back(AccessRecord{e.thread, my_clock, e.begin, e.end, e.write});
    if (mine.size() > kKeepPerThread) {
      mine.erase(mine.begin());
    }
  }

  void on_compute(const Event& e) {
    if (!config.latency || held.size() <= e.thread ||
        held[e.thread].empty()) {
      return;
    }
    const std::uint32_t lock_id = held[e.thread].back();
    if (latency_reported.insert({e.object, lock_id}).second) {
      std::ostringstream detail_text;
      detail_text << object_name(e.object) << " called while holding ";
      for (std::size_t i = 0; i < held[e.thread].size(); ++i) {
        detail_text << (i > 0 ? ", " : "")
                    << object_name(held[e.thread][i]);
      }
      detail_text << " — engine compute can run for milliseconds at paper "
                     "scale; locks must bracket queue state, not compute";
      add_finding(FindingKind::kLockHeldAcrossCompute, lock_id,
                  detail_text.str());
    }
  }

  void finish() {
    if (config.lockorder) {
      report_lock_cycles();
    }
    if (config.condvar) {
      for (const auto& [cv, notifies] : cv_notifies) {
        if (notifies == 0 || cv_waits.count(cv) != 0) {
          continue;
        }
        const ObjectInfo& info = objects[cv - 1];
        if ((info.flags & detail::kWaitersOptional) != 0) {
          continue;  // declared optional, with rationale at the declaration
        }
        std::ostringstream detail_text;
        detail_text << notifies
                    << " notify call(s) but no thread ever waited on this "
                       "condvar — a waiter elsewhere may be blocked on the "
                       "wrong one (lost wakeup)";
        add_finding(FindingKind::kNotifyWithoutWaiters, cv,
                    detail_text.str());
      }
    }
  }

  void report_lock_cycles() {
    // DFS over the lock-order graph; each cycle found is reported once,
    // keyed by its sorted node set.
    std::map<std::uint32_t, std::vector<std::uint32_t>> graph;
    for (const auto& [edge, witness] : edges) {
      (void)witness;
      graph[edge.first].push_back(edge.second);
    }
    std::set<std::vector<std::uint32_t>> reported;
    std::set<std::uint32_t> done;
    for (const auto& [start, ignored] : graph) {
      (void)ignored;
      if (done.count(start) != 0) {
        continue;
      }
      std::vector<std::uint32_t> path;
      std::set<std::uint32_t> on_path;
      dfs_cycle(start, graph, done, path, on_path, reported);
    }
  }

  void dfs_cycle(std::uint32_t node,
                 const std::map<std::uint32_t, std::vector<std::uint32_t>>& graph,
                 std::set<std::uint32_t>& done,
                 std::vector<std::uint32_t>& path,
                 std::set<std::uint32_t>& on_path,
                 std::set<std::vector<std::uint32_t>>& reported) {
    path.push_back(node);
    on_path.insert(node);
    const auto it = graph.find(node);
    if (it != graph.end()) {
      for (const std::uint32_t next : it->second) {
        if (on_path.count(next) != 0) {
          // Cycle: the path suffix from `next` to `node`.
          const auto cycle_start = std::find(path.begin(), path.end(), next);
          std::vector<std::uint32_t> cycle(cycle_start, path.end());
          std::vector<std::uint32_t> key = cycle;
          std::sort(key.begin(), key.end());
          if (reported.insert(key).second) {
            std::ostringstream detail_text;
            detail_text << "lock-order cycle (potential deadlock): ";
            for (const std::uint32_t m : cycle) {
              detail_text << object_name(m) << " -> ";
            }
            detail_text << object_name(next);
            add_finding(FindingKind::kLockInversion, cycle.front(),
                        detail_text.str());
          }
          continue;
        }
        if (done.count(next) == 0) {
          dfs_cycle(next, graph, done, path, on_path, reported);
        }
      }
    }
    on_path.erase(node);
    path.pop_back();
    done.insert(node);
  }
};

}  // namespace

Report analyze() {
  detail::Context& ctx = detail::context();
  // Snapshot under the registry lock, analyze outside it so recording
  // threads are not stalled for the whole pass.
  std::vector<Event> events;
  std::vector<ObjectInfo> objects;
  CheckConfig config;
  Report report;
  {
    std::lock_guard<std::mutex> lock(ctx.mu);
    events = ctx.events;
    objects = ctx.objects;
    config = ctx.config;
    report.events_dropped = ctx.events_dropped;
    report.perturbations = ctx.perturbations;
  }
  report.events = events.size();

  Analyzer analyzer{config, objects, report};
  for (const Event& e : events) {
    switch (e.kind) {
      case EventKind::kLock:
        analyzer.on_lock(e);
        break;
      case EventKind::kUnlock:
        analyzer.on_unlock(e);
        break;
      case EventKind::kWaitBegin:
        analyzer.on_wait_begin(e);
        break;
      case EventKind::kWaitEnd:
        break;  // the relock already re-joined the mutex clock
      case EventKind::kNotify:
        analyzer.on_notify(e);
        break;
      case EventKind::kAccess:
        analyzer.on_access(e);
        break;
      case EventKind::kCompute:
        analyzer.on_compute(e);
        break;
    }
  }
  analyzer.finish();
  return report;
}

}  // namespace pd::threadcheck
