#include "common/units.hpp"

#include "common/error.hpp"

namespace pd {

double gbytes_per_sec(double bytes, double seconds) {
  PD_CHECK_MSG(seconds > 0.0, "gbytes_per_sec: non-positive time");
  return bytes / seconds / kGiga;
}

double gflops_per_sec(double flops, double seconds) {
  PD_CHECK_MSG(seconds > 0.0, "gflops_per_sec: non-positive time");
  return flops / seconds / kGiga;
}

double operational_intensity(double flops, double dram_bytes) {
  PD_CHECK_MSG(dram_bytes > 0.0, "operational_intensity: no DRAM traffic");
  return flops / dram_bytes;
}

double seconds_for_bytes(double bytes, double bandwidth_gbs) {
  PD_CHECK_MSG(bandwidth_gbs > 0.0, "seconds_for_bytes: non-positive bandwidth");
  return bytes / (bandwidth_gbs * kGiga);
}

double seconds_for_flops(double flops, double gflops) {
  PD_CHECK_MSG(gflops > 0.0, "seconds_for_flops: non-positive rate");
  return flops / (gflops * kGiga);
}

}  // namespace pd
