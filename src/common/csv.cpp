#include "common/csv.hpp"

namespace pd {

CsvWriter::CsvWriter(std::ostream& out) : out_(out) {}

std::string CsvWriter::escape(const std::string& cell) {
  const bool needs_quotes =
      cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) {
    return cell;
  }
  std::string quoted = "\"";
  for (char c : cell) {
    if (c == '"') {
      quoted += '"';
    }
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    out_ << escape(cells[i]);
    if (i + 1 < cells.size()) {
      out_ << ',';
    }
  }
  out_ << '\n';
}

}  // namespace pd
