#pragma once
// Tiny command-line parser for the bench/example binaries.
//
// Supports --name value / --name=value / boolean --flag forms, prints a usage
// synopsis from the registered options, and falls back to environment
// variables (e.g. PROTONDOSE_SCALE) so ctest-driven runs can be configured.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace pd {

class CliParser {
 public:
  CliParser(std::string program, std::string description);

  /// Register an option with a default value (rendered in --help).
  void add_option(const std::string& name, const std::string& default_value,
                  const std::string& help);
  void add_flag(const std::string& name, const std::string& help);

  /// Parse argv; throws pd::Error on unknown options; returns false if
  /// --help was requested (usage already printed to stdout).
  bool parse(int argc, const char* const* argv);

  std::string get(const std::string& name) const;
  double get_double(const std::string& name) const;
  std::int64_t get_int(const std::string& name) const;
  bool get_flag(const std::string& name) const;

  /// Environment-variable override helper: returns env value if set,
  /// otherwise the parsed/default option value.
  std::string get_env_or(const std::string& name, const std::string& env) const;

  std::string usage() const;

 private:
  struct Option {
    std::string default_value;
    std::string help;
    bool is_flag = false;
  };
  std::string program_;
  std::string description_;
  std::map<std::string, Option> options_;
  std::map<std::string, std::string> values_;
};

}  // namespace pd
