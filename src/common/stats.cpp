#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace pd {

Summary summarize(std::span<const double> values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) {
    return s;
  }
  double sum = 0.0;
  s.min = values.front();
  s.max = values.front();
  for (double v : values) {
    sum += v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.mean = sum / static_cast<double>(s.count);
  if (s.count > 1) {
    double ss = 0.0;
    for (double v : values) {
      const double d = v - s.mean;
      ss += d * d;
    }
    s.stddev = std::sqrt(ss / static_cast<double>(s.count - 1));
  }
  return s;
}

double percentile(std::span<const double> values, double p) {
  PD_CHECK_MSG(!values.empty(), "percentile of empty sample");
  PD_CHECK_MSG(p >= 0.0 && p <= 100.0, "percentile p out of range");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) {
    return sorted.front();
  }
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo), hi_(hi) {
  PD_CHECK_MSG(hi > lo, "Histogram: hi must exceed lo");
  PD_CHECK_MSG(bins > 0, "Histogram: need at least one bin");
  counts_.assign(bins, 0);
}

void Histogram::add(double value) { add_count(value, 1); }

void Histogram::add_count(double value, std::uint64_t count) {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto idx = static_cast<std::ptrdiff_t>(std::floor((value - lo_) / width));
  idx = std::clamp<std::ptrdiff_t>(idx, 0,
                                   static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  counts_[static_cast<std::size_t>(idx)] += count;
  total_ += count;
}

double Histogram::bin_lo(std::size_t bin) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(bin);
}

double Histogram::bin_hi(std::size_t bin) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(bin + 1);
}

double Histogram::cumulative_fraction(std::size_t bin) const {
  PD_CHECK_MSG(bin < counts_.size(), "cumulative_fraction: bin out of range");
  if (total_ == 0) {
    return 0.0;
  }
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i <= bin; ++i) {
    acc += counts_[i];
  }
  return static_cast<double>(acc) / static_cast<double>(total_);
}

double empirical_cdf(std::span<const std::uint64_t> sorted_values, std::uint64_t x) {
  if (sorted_values.empty()) {
    return 0.0;
  }
  const auto it =
      std::upper_bound(sorted_values.begin(), sorted_values.end(), x);
  return static_cast<double>(it - sorted_values.begin()) /
         static_cast<double>(sorted_values.size());
}

}  // namespace pd
