#include "common/cli.hpp"

#include <cstdlib>
#include <iostream>
#include <sstream>

#include "common/error.hpp"

namespace pd {

CliParser::CliParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void CliParser::add_option(const std::string& name,
                           const std::string& default_value,
                           const std::string& help) {
  options_[name] = Option{default_value, help, /*is_flag=*/false};
}

void CliParser::add_flag(const std::string& name, const std::string& help) {
  options_[name] = Option{"false", help, /*is_flag=*/true};
}

bool CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << usage();
      return false;
    }
    PD_CHECK_MSG(arg.rfind("--", 0) == 0, "unexpected positional argument: " + arg);
    arg = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      has_value = true;
    }
    const auto it = options_.find(arg);
    PD_CHECK_MSG(it != options_.end(), "unknown option: --" + arg);
    if (it->second.is_flag) {
      values_[arg] = has_value ? value : "true";
    } else {
      if (!has_value) {
        PD_CHECK_MSG(i + 1 < argc, "option --" + arg + " expects a value");
        value = argv[++i];
      }
      values_[arg] = value;
    }
  }
  return true;
}

std::string CliParser::get(const std::string& name) const {
  const auto opt = options_.find(name);
  PD_CHECK_MSG(opt != options_.end(), "option not registered: --" + name);
  const auto it = values_.find(name);
  return it != values_.end() ? it->second : opt->second.default_value;
}

double CliParser::get_double(const std::string& name) const {
  const std::string v = get(name);
  try {
    return std::stod(v);
  } catch (const std::exception&) {
    throw Error("option --" + name + ": not a number: " + v);
  }
}

std::int64_t CliParser::get_int(const std::string& name) const {
  const std::string v = get(name);
  try {
    return std::stoll(v);
  } catch (const std::exception&) {
    throw Error("option --" + name + ": not an integer: " + v);
  }
}

bool CliParser::get_flag(const std::string& name) const {
  return get(name) == "true";
}

std::string CliParser::get_env_or(const std::string& name,
                                  const std::string& env) const {
  if (const char* v = std::getenv(env.c_str()); v != nullptr && *v != '\0') {
    return v;
  }
  return get(name);
}

std::string CliParser::usage() const {
  std::ostringstream os;
  os << program_ << " — " << description_ << "\n\nOptions:\n";
  for (const auto& [name, opt] : options_) {
    os << "  --" << name;
    if (!opt.is_flag) {
      os << " <value> (default: " << opt.default_value << ")";
    }
    os << "\n      " << opt.help << "\n";
  }
  return os.str();
}

}  // namespace pd
