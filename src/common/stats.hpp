#pragma once
// Descriptive statistics and histograms used for the matrix-structure analyses
// (paper Table I and Figure 2) and for benchmark post-processing.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace pd {

/// Summary statistics of a sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  ///< Sample standard deviation (n-1 denominator).
  double min = 0.0;
  double max = 0.0;
};

Summary summarize(std::span<const double> values);

/// Interpolated percentile (p in [0, 100]) of an *unsorted* sample.
double percentile(std::span<const double> values, double p);

/// Fixed-width histogram over [lo, hi) with `bins` buckets; values outside the
/// range are clamped into the first/last bucket.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double value);
  void add_count(double value, std::uint64_t count);

  std::size_t bins() const { return counts_.size(); }
  std::uint64_t count(std::size_t bin) const { return counts_.at(bin); }
  std::uint64_t total() const { return total_; }
  double bin_lo(std::size_t bin) const;
  double bin_hi(std::size_t bin) const;

  /// Cumulative fraction of samples with value < bin_hi(bin).
  double cumulative_fraction(std::size_t bin) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Empirical CDF evaluated at x: fraction of samples <= x.
double empirical_cdf(std::span<const std::uint64_t> sorted_values, std::uint64_t x);

}  // namespace pd
