#pragma once
// Error handling for protondose.
//
// PD_CHECK / PD_CHECK_MSG throw pd::Error on violated preconditions; they stay
// enabled in release builds because the library validates untrusted inputs
// (matrix files, CLI parameters).  PD_ASSERT is for internal invariants and
// compiles out in NDEBUG builds.

#include <stdexcept>
#include <string>

namespace pd {

/// Exception type thrown by all protondose validation failures.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] void throw_check_failure(const char* expr, const char* file, int line,
                                      const std::string& msg);
}  // namespace detail

}  // namespace pd

#define PD_CHECK(expr)                                                     \
  do {                                                                     \
    if (!(expr)) {                                                         \
      ::pd::detail::throw_check_failure(#expr, __FILE__, __LINE__, "");    \
    }                                                                      \
  } while (false)

#define PD_CHECK_MSG(expr, msg)                                            \
  do {                                                                     \
    if (!(expr)) {                                                         \
      ::pd::detail::throw_check_failure(#expr, __FILE__, __LINE__, (msg)); \
    }                                                                      \
  } while (false)

#ifdef NDEBUG
#define PD_ASSERT(expr) ((void)0)
#else
#define PD_ASSERT(expr) PD_CHECK(expr)
#endif
