#pragma once
// Deterministic random number generation.
//
// All stochastic components of the library (Monte Carlo dose engine, random
// test matrices, randomized GPU schedules) draw from pd::Rng so that every
// experiment is reproducible from a single 64-bit seed.  The generator is
// xoshiro256++ seeded through SplitMix64, chosen for speed and well-studied
// statistical quality; we deliberately avoid std::mt19937 whose seeding and
// distribution implementations differ across standard libraries.

#include <array>
#include <cstdint>

namespace pd {

/// SplitMix64 step — used for seed expansion and as a cheap standalone mixer.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256++ PRNG with explicit, portable seeding and distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed5eed5eedULL);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next_u64(); }

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n) without modulo bias (Lemire's method).
  std::uint64_t uniform_index(std::uint64_t n);

  /// Standard normal via Box–Muller (cached second value).
  double normal();

  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Derive an independent child stream (for per-beam / per-spot streams).
  Rng fork();

  /// Fisher–Yates shuffle of a contiguous range.
  template <typename T>
  void shuffle(T* data, std::size_t n) {
    for (std::size_t i = n; i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform_index(i));
      T tmp = data[i - 1];
      data[i - 1] = data[j];
      data[j] = tmp;
    }
  }

 private:
  std::array<std::uint64_t, 4> s_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace pd
