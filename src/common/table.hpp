#pragma once
// Plain-text table formatter used by the benchmark harness to print the same
// rows/series the paper's tables and figures report.

#include <string>
#include <vector>

namespace pd {

/// Column-aligned text table.  Cells are strings; numeric helpers format with
/// a fixed number of significant digits so benchmark output is stable.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Render with column alignment and a header separator.
  std::string str() const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format helpers shared by benches.
std::string fmt_double(double v, int precision = 3);
std::string fmt_sci(double v, int precision = 2);
std::string fmt_percent(double fraction, int precision = 1);
std::string fmt_bytes(double bytes);

}  // namespace pd
