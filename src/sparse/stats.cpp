#include "sparse/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace pd::sparse {

double MatrixStats::row_length_cdf(std::uint64_t x) const {
  return empirical_cdf(sorted_nonempty_lengths, x);
}

MatrixStats stats_from_row_lengths(std::uint64_t rows, std::uint64_t cols,
                                   const std::vector<std::uint64_t>& lengths) {
  PD_CHECK_MSG(lengths.size() == rows, "stats: row-length vector size mismatch");
  MatrixStats s;
  s.rows = rows;
  s.cols = cols;
  std::uint64_t below_warp = 0;
  for (const std::uint64_t len : lengths) {
    s.nnz += len;
    if (len == 0) {
      ++s.empty_rows;
    } else {
      s.sorted_nonempty_lengths.push_back(len);
      s.max_row_nnz = std::max(s.max_row_nnz, len);
      if (len < 32) {
        ++below_warp;
      }
    }
  }
  std::sort(s.sorted_nonempty_lengths.begin(), s.sorted_nonempty_lengths.end());
  if (rows > 0) {
    s.empty_row_fraction =
        static_cast<double>(s.empty_rows) / static_cast<double>(rows);
    s.mean_nnz_per_row = static_cast<double>(s.nnz) / static_cast<double>(rows);
  }
  if (rows > 0 && cols > 0) {
    s.density = static_cast<double>(s.nnz) /
                (static_cast<double>(rows) * static_cast<double>(cols));
  }
  const std::uint64_t nonempty = rows - s.empty_rows;
  if (nonempty > 0) {
    s.mean_nnz_per_nonempty_row =
        static_cast<double>(s.nnz) / static_cast<double>(nonempty);
    s.frac_nonempty_below_warp =
        static_cast<double>(below_warp) / static_cast<double>(nonempty);
    s.row_skew = static_cast<double>(s.max_row_nnz) / s.mean_nnz_per_nonempty_row;
  }
  return s;
}

std::vector<CdfPoint> cumulative_row_length_histogram(const MatrixStats& stats,
                                                      std::size_t points) {
  PD_CHECK_MSG(points >= 2, "cumulative histogram needs >= 2 points");
  std::vector<CdfPoint> out;
  if (stats.sorted_nonempty_lengths.empty()) {
    return out;
  }
  const double lo = 1.0;
  const double hi = static_cast<double>(stats.max_row_nnz);
  out.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double t = static_cast<double>(i) / static_cast<double>(points - 1);
    const auto x = static_cast<std::uint64_t>(
        std::llround(lo * std::pow(hi / lo, t)));
    if (!out.empty() && out.back().row_length == x) {
      continue;
    }
    out.push_back(CdfPoint{x, stats.row_length_cdf(x)});
  }
  return out;
}

const std::vector<PaperMatrixInfo>& paper_table1() {
  static const std::vector<PaperMatrixInfo> kTable = {
      {"Liver 1", 2.97e6, 6.80e4, 1.48e9, 0.70},
      {"Liver 2", 2.97e6, 6.77e4, 1.28e9, 0.70},
      {"Liver 3", 2.97e6, 6.99e4, 1.39e9, 0.70},
      {"Liver 4", 2.97e6, 6.32e4, 1.84e9, 0.70},
      {"Prostate 1", 1.03e6, 5.09e3, 9.50e7, 0.70},
      {"Prostate 2", 1.03e6, 4.96e3, 9.51e7, 0.70},
  };
  return kTable;
}

}  // namespace pd::sparse
