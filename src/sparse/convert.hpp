#pragma once
// Precision and index-width conversions between CSR instantiations.
//
// value narrowing double -> Half is the paper's core storage decision
// (16-bit matrix entries); index narrowing uint32 -> uint16 is the paper's
// §V "future work" optimization (our Ablation A) and is only legal when
// num_cols <= 65536 — true for the prostate cases, not the liver cases, just
// as the paper notes.

#include <cstdint>
#include <limits>

#include "fp16/half.hpp"
#include "sparse/csr.hpp"

namespace pd::sparse {

/// Convert the value type (RNE rounding on narrowing), preserving structure.
template <typename VTo, typename VFrom, typename I>
CsrMatrix<VTo, I> convert_values(const CsrMatrix<VFrom, I>& in) {
  CsrMatrix<VTo, I> out;
  out.num_rows = in.num_rows;
  out.num_cols = in.num_cols;
  out.row_ptr = in.row_ptr;
  out.col_idx = in.col_idx;
  out.values.reserve(in.values.size());
  for (const VFrom& v : in.values) {
    out.values.push_back(static_cast<VTo>(static_cast<double>(v)));
  }
  return out;
}

/// Narrow column indices; throws pd::Error if any column does not fit.
template <typename ITo, typename V, typename IFrom>
CsrMatrix<V, ITo> narrow_col_index(const CsrMatrix<V, IFrom>& in) {
  PD_CHECK_MSG(in.num_cols <= std::uint64_t{std::numeric_limits<ITo>::max()} + 1,
               "narrow_col_index: matrix has more columns than the index type "
               "can address");
  CsrMatrix<V, ITo> out;
  out.num_rows = in.num_rows;
  out.num_cols = in.num_cols;
  out.row_ptr = in.row_ptr;
  out.values = in.values;
  out.col_idx.reserve(in.col_idx.size());
  for (const IFrom c : in.col_idx) {
    out.col_idx.push_back(static_cast<ITo>(c));
  }
  return out;
}

/// Whether the 16-bit column-index optimization applies (paper §V: prostate
/// yes, liver "not much larger than 65535" — no).
template <typename V, typename I>
bool fits_u16_columns(const CsrMatrix<V, I>& m) {
  return m.num_cols <= 65536;
}

}  // namespace pd::sparse
