#pragma once
// Row-block partitioning for multi-device SpMV.
//
// The paper's liver matrices are 7-11 GB each *after* half-precision
// compression; a four-beam plan does not fit one 40 GB A100 alongside the
// optimizer state.  Because y = D·x decomposes by row blocks with no
// reduction (each device owns a disjoint dose-grid slice and the full spot
// vector), a balanced contiguous row partition is all multi-GPU dose
// calculation needs.  This header provides the partitioner and the block
// extractor, with the balance and reassembly properties pinned by tests.

#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "sparse/csr.hpp"

namespace pd::sparse {

struct RowPartition {
  /// parts()+1 ascending boundaries; part p owns rows
  /// [boundaries[p], boundaries[p+1]).
  std::vector<std::uint64_t> boundaries;

  std::size_t parts() const {
    return boundaries.empty() ? 0 : boundaries.size() - 1;
  }
};

/// Greedy contiguous partition targeting nnz/parts per block.  Parts never
/// split a row (rows are the unit of SpMV work and of the dose grid), so the
/// imbalance is bounded by the largest row.
template <typename V, typename I>
RowPartition balanced_row_partition(const CsrMatrix<V, I>& m,
                                    std::size_t parts) {
  PD_CHECK_MSG(parts > 0, "partition: need at least one part");
  PD_CHECK_MSG(parts <= m.num_rows, "partition: more parts than rows");
  RowPartition out;
  out.boundaries.push_back(0);
  const double target = static_cast<double>(m.nnz()) / static_cast<double>(parts);
  double carried = 0.0;
  for (std::size_t p = 1; p < parts; ++p) {
    // Advance until this part holds ~target nnz, but leave at least one row
    // for every remaining part.
    std::uint64_t r = out.boundaries.back();
    const std::uint64_t max_r = m.num_rows - (parts - p);
    double acc = 0.0;
    while (r < max_r && acc + carried < target) {
      acc += static_cast<double>(m.row_nnz(r));
      ++r;
    }
    r = std::max<std::uint64_t>(r, out.boundaries.back() + 1);
    carried += acc - target;
    out.boundaries.push_back(r);
  }
  out.boundaries.push_back(m.num_rows);
  return out;
}

/// Extract rows [row_begin, row_end) as a standalone matrix (same columns).
template <typename V, typename I>
CsrMatrix<V, I> extract_row_block(const CsrMatrix<V, I>& m,
                                  std::uint64_t row_begin,
                                  std::uint64_t row_end) {
  PD_CHECK_MSG(row_begin <= row_end && row_end <= m.num_rows,
               "extract_row_block: bad range");
  CsrMatrix<V, I> out;
  out.num_rows = row_end - row_begin;
  out.num_cols = m.num_cols;
  out.row_ptr.reserve(out.num_rows + 1);
  const std::uint32_t base = m.row_ptr[row_begin];
  for (std::uint64_t r = row_begin; r <= row_end; ++r) {
    out.row_ptr.push_back(m.row_ptr[r] - base);
  }
  out.col_idx.assign(m.col_idx.begin() + base,
                     m.col_idx.begin() + m.row_ptr[row_end]);
  out.values.assign(m.values.begin() + base,
                    m.values.begin() + m.row_ptr[row_end]);
  return out;
}

/// Largest part nnz relative to the ideal nnz/parts (1.0 == perfect).
template <typename V, typename I>
double partition_imbalance(const CsrMatrix<V, I>& m, const RowPartition& p) {
  PD_CHECK_MSG(p.parts() > 0, "partition_imbalance: empty partition");
  std::uint64_t worst = 0;
  for (std::size_t i = 0; i < p.parts(); ++i) {
    const std::uint64_t nnz =
        m.row_ptr[p.boundaries[i + 1]] - m.row_ptr[p.boundaries[i]];
    worst = std::max(worst, nnz);
  }
  const double ideal = static_cast<double>(m.nnz()) /
                       static_cast<double>(p.parts());
  return ideal > 0.0 ? static_cast<double>(worst) / ideal : 1.0;
}

}  // namespace pd::sparse
