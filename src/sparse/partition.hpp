#pragma once
// Row-block partitioning for multi-device SpMV.
//
// The paper's liver matrices are 7-11 GB each *after* half-precision
// compression; a four-beam plan does not fit one 40 GB A100 alongside the
// optimizer state.  Because y = D·x decomposes by row blocks with no
// reduction (each device owns a disjoint dose-grid slice and the full spot
// vector), a balanced contiguous row partition is all multi-GPU dose
// calculation needs.  This header provides the partitioner and the block
// extractor, with the balance and reassembly properties pinned by tests.

#include <algorithm>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "sparse/csr.hpp"

namespace pd::sparse {

struct RowPartition {
  /// parts()+1 ascending boundaries; part p owns rows
  /// [boundaries[p], boundaries[p+1]).
  std::vector<std::uint64_t> boundaries;

  std::size_t parts() const {
    return boundaries.empty() ? 0 : boundaries.size() - 1;
  }
};

/// Greedy contiguous partition of arbitrary per-item costs targeting
/// total/parts per block.  Items are never split, so the imbalance is bounded
/// by the largest item.  The same greedy walk (with carried target error)
/// backs balanced_row_partition and the native backend's work-item
/// partitions (rowsplit chunks, adaptive groups).
inline RowPartition balanced_cost_partition(std::span<const std::uint64_t> costs,
                                            std::size_t parts) {
  PD_CHECK_MSG(parts > 0, "partition: need at least one part");
  PD_CHECK_MSG(parts <= costs.size(), "partition: more parts than items");
  std::uint64_t total = 0;
  for (const std::uint64_t c : costs) {
    total += c;
  }
  RowPartition out;
  out.boundaries.push_back(0);
  const double target = static_cast<double>(total) / static_cast<double>(parts);
  double carried = 0.0;
  for (std::size_t p = 1; p < parts; ++p) {
    // Advance until this part holds ~target cost, but leave at least one item
    // for every remaining part.
    std::uint64_t r = out.boundaries.back();
    const std::uint64_t max_r = costs.size() - (parts - p);
    double acc = 0.0;
    while (r < max_r && acc + carried < target) {
      acc += static_cast<double>(costs[r]);
      ++r;
    }
    r = std::max<std::uint64_t>(r, out.boundaries.back() + 1);
    carried += acc - target;
    out.boundaries.push_back(r);
  }
  out.boundaries.push_back(costs.size());
  return out;
}

/// Greedy contiguous partition targeting nnz/parts per block.  Parts never
/// split a row (rows are the unit of SpMV work and of the dose grid), so the
/// imbalance is bounded by the largest row.
template <typename V, typename I>
RowPartition balanced_row_partition(const CsrMatrix<V, I>& m,
                                    std::size_t parts) {
  PD_CHECK_MSG(parts <= m.num_rows, "partition: more parts than rows");
  std::vector<std::uint64_t> costs(m.num_rows);
  for (std::uint64_t r = 0; r < m.num_rows; ++r) {
    costs[r] = m.row_nnz(r);
  }
  return balanced_cost_partition(costs, parts);
}

/// Extract rows [row_begin, row_end) as a standalone matrix (same columns).
template <typename V, typename I>
CsrMatrix<V, I> extract_row_block(const CsrMatrix<V, I>& m,
                                  std::uint64_t row_begin,
                                  std::uint64_t row_end) {
  PD_CHECK_MSG(row_begin <= row_end && row_end <= m.num_rows,
               "extract_row_block: bad range");
  CsrMatrix<V, I> out;
  out.num_rows = row_end - row_begin;
  out.num_cols = m.num_cols;
  out.row_ptr.reserve(out.num_rows + 1);
  const std::uint32_t base = m.row_ptr[row_begin];
  for (std::uint64_t r = row_begin; r <= row_end; ++r) {
    out.row_ptr.push_back(m.row_ptr[r] - base);
  }
  out.col_idx.assign(m.col_idx.begin() + base,
                     m.col_idx.begin() + m.row_ptr[row_end]);
  out.values.assign(m.values.begin() + base,
                    m.values.begin() + m.row_ptr[row_end]);
  return out;
}

/// Inverse of extract_row_block: stack blocks sharing a column space on top
/// of each other.  RobustPlanOptimizer uses this to fuse its K scenario
/// matrices into one engine whose single traversal yields every scenario
/// dose; because each row's result depends only on that row's entries and x,
/// every row block of the stacked product is bitwise identical to the
/// standalone per-block product (for warp-per-row kernels).
template <typename V, typename I>
CsrMatrix<V, I> vstack_rows(std::span<const CsrMatrix<V, I>> blocks) {
  PD_CHECK_MSG(!blocks.empty(), "vstack_rows: need at least one block");
  CsrMatrix<V, I> out;
  out.num_cols = blocks.front().num_cols;
  std::uint64_t total_rows = 0;
  std::uint64_t total_nnz = 0;
  for (const auto& b : blocks) {
    PD_CHECK_MSG(b.num_cols == out.num_cols, "vstack_rows: column mismatch");
    total_rows += b.num_rows;
    total_nnz += b.nnz();
  }
  PD_CHECK_MSG(total_nnz <= std::numeric_limits<std::uint32_t>::max(),
               "vstack_rows: combined nnz exceeds 32-bit row offsets");
  out.num_rows = total_rows;
  out.row_ptr.reserve(total_rows + 1);
  out.row_ptr.push_back(0);
  out.col_idx.reserve(total_nnz);
  out.values.reserve(total_nnz);
  for (const auto& b : blocks) {
    const std::uint32_t base = out.row_ptr.back();
    for (std::uint64_t r = 1; r <= b.num_rows; ++r) {
      out.row_ptr.push_back(base + b.row_ptr[r]);
    }
    out.col_idx.insert(out.col_idx.end(), b.col_idx.begin(), b.col_idx.end());
    out.values.insert(out.values.end(), b.values.begin(), b.values.end());
  }
  return out;
}

/// Largest part nnz relative to the ideal nnz/parts (1.0 == perfect).
template <typename V, typename I>
double partition_imbalance(const CsrMatrix<V, I>& m, const RowPartition& p) {
  PD_CHECK_MSG(p.parts() > 0, "partition_imbalance: empty partition");
  std::uint64_t worst = 0;
  for (std::size_t i = 0; i < p.parts(); ++i) {
    const std::uint64_t nnz =
        m.row_ptr[p.boundaries[i + 1]] - m.row_ptr[p.boundaries[i]];
    worst = std::max(worst, nnz);
  }
  const double ideal = static_cast<double>(m.nnz()) /
                       static_cast<double>(p.parts());
  return ideal > 0.0 ? static_cast<double>(worst) / ideal : 1.0;
}

}  // namespace pd::sparse
