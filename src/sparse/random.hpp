#pragma once
// Random sparse-matrix generators for the property-based test sweeps: the
// kernels must agree with the reference on *any* structure, not just dose
// matrices, so tests draw from several structural families.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "sparse/coo.hpp"
#include "sparse/csr.hpp"

namespace pd::sparse {

/// Shape of the randomly generated row-length distribution.
enum class RandomStructure {
  kUniform,     ///< i.i.d. uniform row lengths.
  kSkewed,      ///< Heavy-tailed (pareto-ish) lengths, like the dose matrices.
  kManyEmpty,   ///< ~70% empty rows, the Figure 2 regime.
  kBanded,      ///< Clustered column indices around the diagonal band.
};

/// Generate a random CSR matrix with values in [0.01, 1] (positive, like
/// dose) — deterministic in (seed, parameters).
inline CsrF64 random_csr(Rng& rng, std::uint64_t rows, std::uint64_t cols,
                         double target_mean_row_nnz,
                         RandomStructure structure = RandomStructure::kUniform) {
  CooMatrix<double> coo;
  coo.num_rows = rows;
  coo.num_cols = cols;
  for (std::uint64_t r = 0; r < rows; ++r) {
    std::uint64_t len = 0;
    switch (structure) {
      case RandomStructure::kUniform:
        len = rng.uniform_index(
            static_cast<std::uint64_t>(2.0 * target_mean_row_nnz) + 1);
        break;
      case RandomStructure::kSkewed: {
        // Pareto-like: most rows short, occasional very long row.
        const double u = rng.uniform(1e-4, 1.0);
        len = static_cast<std::uint64_t>(target_mean_row_nnz * 0.4 /
                                         std::pow(u, 0.7));
        break;
      }
      case RandomStructure::kManyEmpty:
        len = rng.uniform() < 0.7
                  ? 0
                  : rng.uniform_index(static_cast<std::uint64_t>(
                        6.0 * target_mean_row_nnz) + 1);
        break;
      case RandomStructure::kBanded:
        len = rng.uniform_index(
            static_cast<std::uint64_t>(2.0 * target_mean_row_nnz) + 1);
        break;
    }
    len = std::min<std::uint64_t>(len, cols);
    for (std::uint64_t k = 0; k < len; ++k) {
      std::uint64_t c;
      if (structure == RandomStructure::kBanded) {
        const auto center = static_cast<double>(r) * static_cast<double>(cols) /
                            static_cast<double>(rows);
        const double offset = rng.normal(0.0, target_mean_row_nnz);
        auto signed_col = static_cast<std::int64_t>(center + offset);
        signed_col = std::clamp<std::int64_t>(signed_col, 0,
                                              static_cast<std::int64_t>(cols) - 1);
        c = static_cast<std::uint64_t>(signed_col);
      } else {
        c = rng.uniform_index(cols);
      }
      coo.entries.push_back(CooEntry<double>{static_cast<std::uint32_t>(r),
                                             static_cast<std::uint32_t>(c),
                                             rng.uniform(0.01, 1.0)});
    }
  }
  return coo_to_csr(coo);  // duplicate (r,c) pairs are merged
}

/// Random dense vector with entries in [lo, hi).
inline std::vector<double> random_vector(Rng& rng, std::uint64_t n,
                                         double lo = 0.0, double hi = 1.0) {
  std::vector<double> v(n);
  for (auto& x : v) {
    x = rng.uniform(lo, hi);
  }
  return v;
}

}  // namespace pd::sparse
