#pragma once
// ELLPACK storage (paper §II-C "future work"; our Ablation B).
//
// Every row is padded to the same width and stored column-major so that
// thread-per-row SIMT access is fully coalesced.  ELLPACK is catastrophic for
// the dose matrices' skewed row lengths (one 16k-long row pads everything),
// which is exactly what the ablation demonstrates; a width cap guards
// against accidentally materializing such a blow-up.

#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "sparse/csr.hpp"

namespace pd::sparse {

template <typename V, typename I = std::uint32_t>
struct EllMatrix {
  std::uint64_t num_rows = 0;
  std::uint64_t num_cols = 0;
  std::uint64_t width = 0;    ///< Padded row width (max row nnz).
  std::uint64_t stored_nnz = 0;
  /// Column-major num_rows × width; padding uses col 0 / value 0.
  std::vector<I> col_idx;
  std::vector<V> values;

  std::uint64_t padded_entries() const { return num_rows * width; }

  /// Fraction of stored entries that are padding.
  double padding_overhead() const {
    return padded_entries() == 0
               ? 0.0
               : 1.0 - static_cast<double>(stored_nnz) /
                           static_cast<double>(padded_entries());
  }

  std::uint64_t bytes() const {
    return col_idx.size() * sizeof(I) + values.size() * sizeof(V);
  }
};

/// Convert CSR to ELLPACK.  Throws if the padded size would exceed
/// `max_padded_entries` (default 1 Gi entries) — the guard that makes the
/// liver matrices' 16k-wide rows an explicit failure rather than an OOM.
template <typename V, typename I>
EllMatrix<V, I> csr_to_ell(const CsrMatrix<V, I>& csr,
                           std::uint64_t max_padded_entries = (1ull << 30)) {
  EllMatrix<V, I> ell;
  ell.num_rows = csr.num_rows;
  ell.num_cols = csr.num_cols;
  for (std::uint64_t r = 0; r < csr.num_rows; ++r) {
    ell.width = std::max<std::uint64_t>(ell.width, csr.row_nnz(r));
  }
  PD_CHECK_MSG(ell.num_rows * ell.width <= max_padded_entries,
               "csr_to_ell: padded ELLPACK size exceeds the configured cap");
  ell.stored_nnz = csr.nnz();
  ell.col_idx.assign(ell.padded_entries(), I{0});
  ell.values.assign(ell.padded_entries(), V{});
  for (std::uint64_t r = 0; r < csr.num_rows; ++r) {
    std::uint64_t slot = 0;
    for (std::uint32_t k = csr.row_ptr[r]; k < csr.row_ptr[r + 1]; ++k, ++slot) {
      // Column-major: entry (r, slot) at slot * num_rows + r.
      ell.col_idx[slot * ell.num_rows + r] = csr.col_idx[k];
      ell.values[slot * ell.num_rows + r] = csr.values[k];
    }
  }
  return ell;
}

}  // namespace pd::sparse
