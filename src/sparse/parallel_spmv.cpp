#include "sparse/parallel_spmv.hpp"

#include <algorithm>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/threadcheck.hpp"
#include "sparse/partition.hpp"
#include "sparse/reference.hpp"

namespace pd::sparse {

void parallel_spmv(const CsrF64& A, std::span<const double> x,
                   std::span<double> y, unsigned num_threads) {
  PD_CHECK_MSG(num_threads > 0, "parallel_spmv: need at least one thread");
  PD_CHECK_MSG(x.size() == A.num_cols, "parallel_spmv: x size mismatch");
  PD_CHECK_MSG(y.size() == A.num_rows, "parallel_spmv: y size mismatch");
  num_threads = static_cast<unsigned>(
      std::min<std::uint64_t>(num_threads, std::max<std::uint64_t>(A.num_rows, 1)));
  if (num_threads == 1 || A.num_rows == 0) {
    reference_spmv(A, x, y);
    return;
  }

  const RowPartition part = balanced_row_partition(A, num_threads);
  // threadcheck registration of the shared spans: each worker writes a
  // disjoint y row range and only reads x, so the race pass proves the
  // partition needs no synchronization at all (the join is the only edge).
  pd::SharedRange y_state{"parallel_spmv.y"};
  pd::SharedRange x_state{"parallel_spmv.x"};
  std::vector<std::thread> workers;
  workers.reserve(num_threads);
  for (unsigned t = 0; t < num_threads; ++t) {
    const std::uint64_t begin = part.boundaries[t];
    const std::uint64_t end = part.boundaries[t + 1];
    workers.emplace_back([&, begin, end] {
      x_state.read(0, A.num_cols);
      y_state.write(begin, end);
      // Per-row accumulation identical to reference_spmv: the partition only
      // changes WHO computes a row, never HOW — hence bitwise equality.
      for (std::uint64_t r = begin; r < end; ++r) {
        double acc = 0.0;
        for (std::uint32_t k = A.row_ptr[r]; k < A.row_ptr[r + 1]; ++k) {
          acc += A.values[k] * x[A.col_idx[k]];
        }
        y[r] = acc;
      }
    });
  }
  for (std::thread& w : workers) {
    w.join();
  }
}

}  // namespace pd::sparse
