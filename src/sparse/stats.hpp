#pragma once
// Matrix-structure statistics — the quantities in the paper's Table I and
// Figure 2 (rows/cols/nnz/density/size, row-length distribution, cumulative
// row-length histogram, fraction of non-empty rows shorter than one warp).

#include <cstdint>
#include <string>
#include <vector>

#include "sparse/csr.hpp"

namespace pd::sparse {

struct MatrixStats {
  std::uint64_t rows = 0;
  std::uint64_t cols = 0;
  std::uint64_t nnz = 0;
  double density = 0.0;                ///< nnz / (rows · cols) — Table I "non-zero ratio".
  std::uint64_t empty_rows = 0;
  double empty_row_fraction = 0.0;     ///< Paper: ~70% for both cases.
  double mean_nnz_per_row = 0.0;
  double mean_nnz_per_nonempty_row = 0.0;
  std::uint64_t max_row_nnz = 0;
  /// Fraction of *non-empty* rows with fewer than 32 non-zeros — the paper's
  /// "rows violating the one-warp-per-row efficiency assumption" (5.6% liver,
  /// 14.2% prostate).
  double frac_nonempty_below_warp = 0.0;
  double row_skew = 0.0;               ///< max / mean non-empty row length.

  /// Sorted non-empty row lengths (ascending) for CDF evaluation.
  std::vector<std::uint64_t> sorted_nonempty_lengths;

  /// CSR byte size for given value/column-index widths (Table I "size (GB)"
  /// uses 2-byte values + 4-byte columns + 4-byte row offsets).
  std::uint64_t csr_bytes(std::size_t value_bytes, std::size_t col_bytes) const {
    return nnz * (value_bytes + col_bytes) + (rows + 1) * 4;
  }

  /// Cumulative fraction of non-empty rows with length <= x (Figure 2).
  double row_length_cdf(std::uint64_t x) const;
};

template <typename V, typename I>
std::vector<std::uint64_t> row_lengths(const CsrMatrix<V, I>& csr) {
  std::vector<std::uint64_t> lens(csr.num_rows);
  for (std::uint64_t r = 0; r < csr.num_rows; ++r) {
    lens[r] = csr.row_nnz(r);
  }
  return lens;
}

MatrixStats stats_from_row_lengths(std::uint64_t rows, std::uint64_t cols,
                                   const std::vector<std::uint64_t>& lengths);

template <typename V, typename I>
MatrixStats compute_stats(const CsrMatrix<V, I>& csr) {
  return stats_from_row_lengths(csr.num_rows, csr.num_cols, row_lengths(csr));
}

/// One point of the Figure 2 cumulative histogram.
struct CdfPoint {
  std::uint64_t row_length = 0;
  double cumulative_fraction = 0.0;
};

/// Log-spaced cumulative row-length histogram over non-empty rows.
std::vector<CdfPoint> cumulative_row_length_histogram(const MatrixStats& stats,
                                                      std::size_t points = 24);

/// Known structural facts of the paper's full-size matrices (Table I),
/// used for analytic full-scale model evaluation without materializing 9 GB.
struct PaperMatrixInfo {
  std::string name;
  double rows;
  double cols;
  double nnz;
  double empty_row_fraction;  ///< From Figure 2: ~0.70.
};

/// The six beams of Table I.
const std::vector<PaperMatrixInfo>& paper_table1();

}  // namespace pd::sparse
