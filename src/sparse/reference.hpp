#pragma once
// Host reference SpMV implementations.
//
// Two references, for two different jobs:
//  * reference_spmv       — plain sequential left-to-right accumulation in
//    double; the accuracy gold standard.
//  * warp_order_spmv      — accumulates each row in *exactly* the order the
//    paper's warp-per-row kernel does (32 strided lane accumulators folded by
//    a fixed tree reduction).  Simulated kernels must match this bitwise,
//    which is the strongest possible statement of the paper's §II-D
//    reproducibility requirement.

#include <cstdint>
#include <span>

#include "common/error.hpp"
#include "sparse/csr.hpp"

namespace pd::sparse {

/// Accumulation order of the vector (warp-per-row) kernel for one row:
/// lane l sums elements start+l, start+l+32, ... and the 32 lane partials are
/// folded by the shfl_down butterfly (offsets 16, 8, 4, 2, 1).
template <typename V, typename I>
double warp_order_row_dot(const CsrMatrix<V, I>& m, std::span<const double> x,
                          std::uint64_t row) {
  double lanes[32] = {};
  const std::uint32_t start = m.row_ptr[row];
  const std::uint32_t end = m.row_ptr[row + 1];
  for (std::uint32_t k = start; k < end; ++k) {
    const unsigned lane = (k - start) % 32;
    lanes[lane] += static_cast<double>(m.values[k]) * x[m.col_idx[k]];
  }
  for (unsigned offset = 16; offset > 0; offset /= 2) {
    for (unsigned i = 0; i < offset; ++i) {
      lanes[i] += lanes[i + offset];
    }
  }
  return lanes[0];
}

/// Sequential gold-standard SpMV, double accumulation.
template <typename V, typename I>
void reference_spmv(const CsrMatrix<V, I>& m, std::span<const double> x,
                    std::span<double> y) {
  PD_CHECK_MSG(x.size() == m.num_cols, "reference_spmv: x size mismatch");
  PD_CHECK_MSG(y.size() == m.num_rows, "reference_spmv: y size mismatch");
  for (std::uint64_t r = 0; r < m.num_rows; ++r) {
    double acc = 0.0;
    for (std::uint32_t k = m.row_ptr[r]; k < m.row_ptr[r + 1]; ++k) {
      acc += static_cast<double>(m.values[k]) * x[m.col_idx[k]];
    }
    y[r] = acc;
  }
}

/// SpMV in the exact accumulation order of the simulated vector kernel.
template <typename V, typename I>
void warp_order_spmv(const CsrMatrix<V, I>& m, std::span<const double> x,
                     std::span<double> y) {
  PD_CHECK_MSG(x.size() == m.num_cols, "warp_order_spmv: x size mismatch");
  PD_CHECK_MSG(y.size() == m.num_rows, "warp_order_spmv: y size mismatch");
  for (std::uint64_t r = 0; r < m.num_rows; ++r) {
    y[r] = warp_order_row_dot(m, x, r);
  }
}

/// Single-precision sequential SpMV (float accumulate, float vectors) —
/// reference for the "Single" kernel family where everything is binary32.
template <typename V, typename I>
void reference_spmv_f32(const CsrMatrix<V, I>& m, std::span<const float> x,
                        std::span<float> y) {
  PD_CHECK_MSG(x.size() == m.num_cols, "reference_spmv_f32: x size mismatch");
  PD_CHECK_MSG(y.size() == m.num_rows, "reference_spmv_f32: y size mismatch");
  for (std::uint64_t r = 0; r < m.num_rows; ++r) {
    float acc = 0.0f;
    for (std::uint32_t k = m.row_ptr[r]; k < m.row_ptr[r + 1]; ++k) {
      acc += static_cast<float>(m.values[k]) * x[m.col_idx[k]];
    }
    y[r] = acc;
  }
}

}  // namespace pd::sparse
