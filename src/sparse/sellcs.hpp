#pragma once
// SELL-C-σ storage (Kreutzer et al., SIAM SISC 2014) — the second format the
// paper defers to future work; our Ablation B.
//
// Rows are sorted by length inside windows of σ rows, grouped into chunks of
// C rows, and each chunk is padded only to its own longest row.  With C equal
// to the warp size this keeps SIMT lanes coalesced like ELLPACK while the
// σ-scoped sorting contains the padding that the dose matrices' skewed rows
// would otherwise cause.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <vector>

#include "common/error.hpp"
#include "sparse/csr.hpp"

namespace pd::sparse {

template <typename V, typename I = std::uint32_t>
struct SellCsMatrix {
  std::uint64_t num_rows = 0;
  std::uint64_t num_cols = 0;
  std::uint32_t chunk_height = 32;  ///< C.
  std::uint32_t sort_window = 1;    ///< σ (1 == no reordering).
  std::uint64_t stored_nnz = 0;

  std::vector<std::uint64_t> chunk_ptr;   ///< chunk start offsets into arrays.
  std::vector<std::uint32_t> chunk_width; ///< padded width per chunk.
  std::vector<I> col_idx;                 ///< per chunk: width × C, lane-major.
  std::vector<V> values;
  std::vector<std::uint32_t> row_perm;    ///< storage row -> original row.

  std::uint64_t num_chunks() const { return chunk_width.size(); }

  double padding_overhead() const {
    const auto padded = static_cast<double>(values.size());
    return padded == 0.0 ? 0.0 : 1.0 - static_cast<double>(stored_nnz) / padded;
  }

  std::uint64_t bytes() const {
    return chunk_ptr.size() * sizeof(std::uint64_t) +
           chunk_width.size() * sizeof(std::uint32_t) +
           row_perm.size() * sizeof(std::uint32_t) +
           col_idx.size() * sizeof(I) + values.size() * sizeof(V);
  }
};

template <typename V, typename I>
SellCsMatrix<V, I> csr_to_sellcs(const CsrMatrix<V, I>& csr,
                                 std::uint32_t chunk_height = 32,
                                 std::uint32_t sort_window = 1024) {
  PD_CHECK_MSG(chunk_height > 0, "SELL-C-σ: chunk height must be positive");
  PD_CHECK_MSG(sort_window % chunk_height == 0,
               "SELL-C-σ: σ must be a multiple of C");
  SellCsMatrix<V, I> m;
  m.num_rows = csr.num_rows;
  m.num_cols = csr.num_cols;
  m.chunk_height = chunk_height;
  m.sort_window = sort_window;
  m.stored_nnz = csr.nnz();

  // σ-scoped descending-length sort (stable: preserves row order for ties).
  m.row_perm.resize(csr.num_rows);
  std::iota(m.row_perm.begin(), m.row_perm.end(), 0u);
  for (std::uint64_t w = 0; w < csr.num_rows; w += sort_window) {
    const std::uint64_t end = std::min<std::uint64_t>(w + sort_window, csr.num_rows);
    std::stable_sort(m.row_perm.begin() + w, m.row_perm.begin() + end,
                     [&](std::uint32_t a, std::uint32_t b) {
                       return csr.row_nnz(a) > csr.row_nnz(b);
                     });
  }

  const std::uint64_t chunks =
      (csr.num_rows + chunk_height - 1) / chunk_height;
  m.chunk_ptr.resize(chunks + 1, 0);
  m.chunk_width.resize(chunks, 0);
  for (std::uint64_t c = 0; c < chunks; ++c) {
    std::uint32_t width = 0;
    for (std::uint32_t l = 0; l < chunk_height; ++l) {
      const std::uint64_t sr = c * chunk_height + l;
      if (sr < csr.num_rows) {
        width = std::max<std::uint32_t>(
            width, static_cast<std::uint32_t>(csr.row_nnz(m.row_perm[sr])));
      }
    }
    m.chunk_width[c] = width;
    m.chunk_ptr[c + 1] =
        m.chunk_ptr[c] + static_cast<std::uint64_t>(width) * chunk_height;
  }

  m.col_idx.assign(m.chunk_ptr.back(), I{0});
  m.values.assign(m.chunk_ptr.back(), V{});
  for (std::uint64_t c = 0; c < chunks; ++c) {
    for (std::uint32_t l = 0; l < chunk_height; ++l) {
      const std::uint64_t sr = c * chunk_height + l;
      if (sr >= csr.num_rows) {
        continue;
      }
      const std::uint32_t orig = m.row_perm[sr];
      std::uint64_t j = 0;
      for (std::uint32_t k = csr.row_ptr[orig]; k < csr.row_ptr[orig + 1];
           ++k, ++j) {
        // Lane-major inside the chunk: element j of lane l at
        // chunk_ptr[c] + j * C + l.
        const std::uint64_t slot = m.chunk_ptr[c] + j * chunk_height + l;
        m.col_idx[slot] = csr.col_idx[k];
        m.values[slot] = csr.values[k];
      }
    }
  }
  return m;
}

/// Quantized SELL-C-σ (fast tier v2): the SELL chunk layout with rsformat's
/// value compression folded in — u16 quantized magnitudes plus one float
/// scale per matrix column (q = round(v/scale), scale = col_max/65535, the
/// exact recipe of RsMatrix::from_csr), and u16 column indices.  Two further
/// differences against the float container keep the streamed bytes at or
/// under half of SELL-C-σ-float:
///   * slots are 4 bytes (u16 value + u16 column) instead of 12
///     (f32 + u32 padding-free would be 8; we also halve the index), and
///   * empty rows are compacted out of storage entirely: row_perm maps only
///     the `stored_rows` non-empty rows, so the dose matrices' large empty
///     fraction stops paying 4 bytes/row of permutation traffic.  Kernels
///     zero-fill y and scatter just the stored lanes.
/// u16 column indices bound the container to num_cols <= 65536 — every
/// paper-scale beam has a few thousand spots, and the builder checks.
struct SellCsQMatrix {
  std::uint64_t num_rows = 0;     ///< logical rows (including empty ones).
  std::uint64_t num_cols = 0;
  std::uint64_t stored_rows = 0;  ///< non-empty rows kept in chunks.
  std::uint32_t chunk_height = 32;  ///< C.
  std::uint32_t sort_window = 1024; ///< σ (over the compacted rows).
  std::uint64_t stored_nnz = 0;

  std::vector<std::uint64_t> chunk_ptr;   ///< chunk start offsets into arrays.
  std::vector<std::uint32_t> chunk_width; ///< padded width per chunk.
  std::vector<std::uint16_t> col_idx;     ///< per chunk: width × C, lane-major.
  std::vector<std::uint16_t> qvalues;     ///< quantized magnitudes.
  std::vector<float> col_scale;           ///< dequant scale per matrix column.
  std::vector<std::uint32_t> row_perm;    ///< storage row -> original row.

  std::uint64_t num_chunks() const { return chunk_width.size(); }

  double padding_overhead() const {
    const auto padded = static_cast<double>(qvalues.size());
    return padded == 0.0 ? 0.0 : 1.0 - static_cast<double>(stored_nnz) / padded;
  }

  /// Worst-case |v - double(q)*scale| for entries of column `col` (the
  /// rounding radius; callers widen for the float narrowing of the scale,
  /// mirroring RsMatrix::max_abs_error).
  double max_abs_error(std::uint32_t col) const {
    return static_cast<double>(col_scale[col]) * 0.5;
  }

  std::uint64_t bytes() const {
    return chunk_ptr.size() * sizeof(std::uint64_t) +
           chunk_width.size() * sizeof(std::uint32_t) +
           row_perm.size() * sizeof(std::uint32_t) +
           col_scale.size() * sizeof(float) +
           col_idx.size() * sizeof(std::uint16_t) +
           qvalues.size() * sizeof(std::uint16_t);
  }
};

inline SellCsQMatrix csr_to_sellcs_q(const CsrF64& csr,
                                     std::uint32_t chunk_height = 32,
                                     std::uint32_t sort_window = 1024) {
  PD_CHECK_MSG(chunk_height > 0, "SELL-C-σ-q: chunk height must be positive");
  PD_CHECK_MSG(sort_window % chunk_height == 0,
               "SELL-C-σ-q: σ must be a multiple of C");
  PD_CHECK_MSG(csr.num_cols <= (std::uint64_t{1} << 16),
               "SELL-C-σ-q: u16 column indices need num_cols <= 65536");
  SellCsQMatrix m;
  m.num_rows = csr.num_rows;
  m.num_cols = csr.num_cols;
  m.chunk_height = chunk_height;
  m.sort_window = sort_window;
  m.stored_nnz = csr.nnz();

  // Per-column quantization scale, exactly as RsMatrix::from_csr: dose
  // values are non-negative, scale = col_max/65535 (1.0 for empty/zero
  // columns), q = round(v/scale) clamped to u16.
  std::vector<double> col_max(csr.num_cols, 0.0);
  for (std::uint64_t r = 0; r < csr.num_rows; ++r) {
    for (std::uint32_t k = csr.row_ptr[r]; k < csr.row_ptr[r + 1]; ++k) {
      PD_CHECK_MSG(csr.values[k] >= 0.0,
                   "SELL-C-σ-q: dose values must be non-negative");
      col_max[csr.col_idx[k]] = std::max(col_max[csr.col_idx[k]],
                                         csr.values[k]);
    }
  }
  m.col_scale.resize(csr.num_cols);
  std::vector<double> scale_d(csr.num_cols);
  for (std::uint64_t c = 0; c < csr.num_cols; ++c) {
    scale_d[c] = col_max[c] > 0.0 ? col_max[c] / 65535.0 : 1.0;
    m.col_scale[c] = static_cast<float>(scale_d[c]);
  }

  // Compact the non-empty rows (ascending original order), then the usual
  // σ-scoped stable descending-length sort over the compacted list.
  m.row_perm.reserve(csr.num_rows);
  for (std::uint64_t r = 0; r < csr.num_rows; ++r) {
    if (csr.row_nnz(r) > 0) {
      m.row_perm.push_back(static_cast<std::uint32_t>(r));
    }
  }
  m.stored_rows = m.row_perm.size();
  for (std::uint64_t w = 0; w < m.stored_rows; w += sort_window) {
    const std::uint64_t end =
        std::min<std::uint64_t>(w + sort_window, m.stored_rows);
    std::stable_sort(m.row_perm.begin() + w, m.row_perm.begin() + end,
                     [&](std::uint32_t a, std::uint32_t b) {
                       return csr.row_nnz(a) > csr.row_nnz(b);
                     });
  }

  const std::uint64_t chunks =
      (m.stored_rows + chunk_height - 1) / chunk_height;
  m.chunk_ptr.resize(chunks + 1, 0);
  m.chunk_width.resize(chunks, 0);
  for (std::uint64_t c = 0; c < chunks; ++c) {
    std::uint32_t width = 0;
    for (std::uint32_t l = 0; l < chunk_height; ++l) {
      const std::uint64_t sr = c * chunk_height + l;
      if (sr < m.stored_rows) {
        width = std::max<std::uint32_t>(
            width, static_cast<std::uint32_t>(csr.row_nnz(m.row_perm[sr])));
      }
    }
    m.chunk_width[c] = width;
    m.chunk_ptr[c + 1] =
        m.chunk_ptr[c] + static_cast<std::uint64_t>(width) * chunk_height;
  }

  // Padded slots carry column 0 / q 0 and so contribute +0.0 in the kernel.
  m.col_idx.assign(m.chunk_ptr.back(), std::uint16_t{0});
  m.qvalues.assign(m.chunk_ptr.back(), std::uint16_t{0});
  for (std::uint64_t c = 0; c < chunks; ++c) {
    for (std::uint32_t l = 0; l < chunk_height; ++l) {
      const std::uint64_t sr = c * chunk_height + l;
      if (sr >= m.stored_rows) {
        continue;
      }
      const std::uint32_t orig = m.row_perm[sr];
      std::uint64_t j = 0;
      for (std::uint32_t k = csr.row_ptr[orig]; k < csr.row_ptr[orig + 1];
           ++k, ++j) {
        const std::uint64_t slot = m.chunk_ptr[c] + j * chunk_height + l;
        const std::uint32_t col = csr.col_idx[k];
        m.col_idx[slot] = static_cast<std::uint16_t>(col);
        m.qvalues[slot] = static_cast<std::uint16_t>(std::min<long long>(
            65535, std::llround(csr.values[k] / scale_d[col])));
      }
    }
  }
  return m;
}

}  // namespace pd::sparse
