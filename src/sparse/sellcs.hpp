#pragma once
// SELL-C-σ storage (Kreutzer et al., SIAM SISC 2014) — the second format the
// paper defers to future work; our Ablation B.
//
// Rows are sorted by length inside windows of σ rows, grouped into chunks of
// C rows, and each chunk is padded only to its own longest row.  With C equal
// to the warp size this keeps SIMT lanes coalesced like ELLPACK while the
// σ-scoped sorting contains the padding that the dose matrices' skewed rows
// would otherwise cause.

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

#include "common/error.hpp"
#include "sparse/csr.hpp"

namespace pd::sparse {

template <typename V, typename I = std::uint32_t>
struct SellCsMatrix {
  std::uint64_t num_rows = 0;
  std::uint64_t num_cols = 0;
  std::uint32_t chunk_height = 32;  ///< C.
  std::uint32_t sort_window = 1;    ///< σ (1 == no reordering).
  std::uint64_t stored_nnz = 0;

  std::vector<std::uint64_t> chunk_ptr;   ///< chunk start offsets into arrays.
  std::vector<std::uint32_t> chunk_width; ///< padded width per chunk.
  std::vector<I> col_idx;                 ///< per chunk: width × C, lane-major.
  std::vector<V> values;
  std::vector<std::uint32_t> row_perm;    ///< storage row -> original row.

  std::uint64_t num_chunks() const { return chunk_width.size(); }

  double padding_overhead() const {
    const auto padded = static_cast<double>(values.size());
    return padded == 0.0 ? 0.0 : 1.0 - static_cast<double>(stored_nnz) / padded;
  }

  std::uint64_t bytes() const {
    return chunk_ptr.size() * sizeof(std::uint64_t) +
           chunk_width.size() * sizeof(std::uint32_t) +
           row_perm.size() * sizeof(std::uint32_t) +
           col_idx.size() * sizeof(I) + values.size() * sizeof(V);
  }
};

template <typename V, typename I>
SellCsMatrix<V, I> csr_to_sellcs(const CsrMatrix<V, I>& csr,
                                 std::uint32_t chunk_height = 32,
                                 std::uint32_t sort_window = 1024) {
  PD_CHECK_MSG(chunk_height > 0, "SELL-C-σ: chunk height must be positive");
  PD_CHECK_MSG(sort_window % chunk_height == 0,
               "SELL-C-σ: σ must be a multiple of C");
  SellCsMatrix<V, I> m;
  m.num_rows = csr.num_rows;
  m.num_cols = csr.num_cols;
  m.chunk_height = chunk_height;
  m.sort_window = sort_window;
  m.stored_nnz = csr.nnz();

  // σ-scoped descending-length sort (stable: preserves row order for ties).
  m.row_perm.resize(csr.num_rows);
  std::iota(m.row_perm.begin(), m.row_perm.end(), 0u);
  for (std::uint64_t w = 0; w < csr.num_rows; w += sort_window) {
    const std::uint64_t end = std::min<std::uint64_t>(w + sort_window, csr.num_rows);
    std::stable_sort(m.row_perm.begin() + w, m.row_perm.begin() + end,
                     [&](std::uint32_t a, std::uint32_t b) {
                       return csr.row_nnz(a) > csr.row_nnz(b);
                     });
  }

  const std::uint64_t chunks =
      (csr.num_rows + chunk_height - 1) / chunk_height;
  m.chunk_ptr.resize(chunks + 1, 0);
  m.chunk_width.resize(chunks, 0);
  for (std::uint64_t c = 0; c < chunks; ++c) {
    std::uint32_t width = 0;
    for (std::uint32_t l = 0; l < chunk_height; ++l) {
      const std::uint64_t sr = c * chunk_height + l;
      if (sr < csr.num_rows) {
        width = std::max<std::uint32_t>(
            width, static_cast<std::uint32_t>(csr.row_nnz(m.row_perm[sr])));
      }
    }
    m.chunk_width[c] = width;
    m.chunk_ptr[c + 1] =
        m.chunk_ptr[c] + static_cast<std::uint64_t>(width) * chunk_height;
  }

  m.col_idx.assign(m.chunk_ptr.back(), I{0});
  m.values.assign(m.chunk_ptr.back(), V{});
  for (std::uint64_t c = 0; c < chunks; ++c) {
    for (std::uint32_t l = 0; l < chunk_height; ++l) {
      const std::uint64_t sr = c * chunk_height + l;
      if (sr >= csr.num_rows) {
        continue;
      }
      const std::uint32_t orig = m.row_perm[sr];
      std::uint64_t j = 0;
      for (std::uint32_t k = csr.row_ptr[orig]; k < csr.row_ptr[orig + 1];
           ++k, ++j) {
        // Lane-major inside the chunk: element j of lane l at
        // chunk_ptr[c] + j * C + l.
        const std::uint64_t slot = m.chunk_ptr[c] + j * chunk_height + l;
        m.col_idx[slot] = csr.col_idx[k];
        m.values[slot] = csr.values[k];
      }
    }
  }
  return m;
}

}  // namespace pd::sparse
