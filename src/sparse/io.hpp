#pragma once
// Matrix I/O: Matrix Market (coordinate, real, general) for interchange with
// other tools, and a fast binary container for caching generated dose
// deposition matrices between benchmark runs.

#include <iosfwd>
#include <string>

#include "sparse/csr.hpp"

namespace pd::sparse {

/// Write in MatrixMarket coordinate format (1-based indices).
void write_matrix_market(std::ostream& os, const CsrF64& m);
void write_matrix_market_file(const std::string& path, const CsrF64& m);

/// Read MatrixMarket coordinate real general; throws pd::Error on malformed
/// headers, out-of-range coordinates, or truncated entry lists.
CsrF64 read_matrix_market(std::istream& is);
CsrF64 read_matrix_market_file(const std::string& path);

/// Binary container ("PDSM" magic, version, dims, raw arrays, little-endian).
void write_binary(std::ostream& os, const CsrF64& m);
void write_binary_file(const std::string& path, const CsrF64& m);
CsrF64 read_binary(std::istream& is);
CsrF64 read_binary_file(const std::string& path);

}  // namespace pd::sparse
