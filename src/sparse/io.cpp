#include "sparse/io.hpp"

#include <array>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "common/error.hpp"
#include "sparse/coo.hpp"

namespace pd::sparse {

namespace {
constexpr std::array<char, 4> kMagic = {'P', 'D', 'S', 'M'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ostream& os, const T& value) {
  os.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::istream& is) {
  T value{};
  is.read(reinterpret_cast<char*>(&value), sizeof(T));
  PD_CHECK_MSG(static_cast<bool>(is), "binary read: truncated stream");
  return value;
}

template <typename T>
void write_vec(std::ostream& os, const std::vector<T>& v) {
  write_pod<std::uint64_t>(os, v.size());
  os.write(reinterpret_cast<const char*>(v.data()),
           static_cast<std::streamsize>(v.size() * sizeof(T)));
}

template <typename T>
std::vector<T> read_vec(std::istream& is) {
  const auto n = read_pod<std::uint64_t>(is);
  // Guard against corrupted headers demanding absurd allocations.
  PD_CHECK_MSG(n <= (std::uint64_t{1} << 33),
               "binary read: implausible array length (corrupt file?)");
  std::vector<T> v(n);
  is.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(n * sizeof(T)));
  PD_CHECK_MSG(static_cast<bool>(is), "binary read: truncated array");
  return v;
}
}  // namespace

void write_matrix_market(std::ostream& os, const CsrF64& m) {
  os << "%%MatrixMarket matrix coordinate real general\n";
  os << "% exported by protondose\n";
  os << m.num_rows << ' ' << m.num_cols << ' ' << m.nnz() << '\n';
  os << std::setprecision(17);
  for (std::uint64_t r = 0; r < m.num_rows; ++r) {
    for (std::uint32_t k = m.row_ptr[r]; k < m.row_ptr[r + 1]; ++k) {
      os << (r + 1) << ' ' << (m.col_idx[k] + 1) << ' ' << m.values[k] << '\n';
    }
  }
}

void write_matrix_market_file(const std::string& path, const CsrF64& m) {
  std::ofstream os(path);
  PD_CHECK_MSG(os.is_open(), "cannot open for writing: " + path);
  write_matrix_market(os, m);
}

CsrF64 read_matrix_market(std::istream& is) {
  std::string line;
  PD_CHECK_MSG(static_cast<bool>(std::getline(is, line)),
               "MatrixMarket: empty stream");
  std::istringstream header(line);
  std::string banner, object, format, field, symmetry;
  header >> banner >> object >> format >> field >> symmetry;
  PD_CHECK_MSG(banner == "%%MatrixMarket", "MatrixMarket: bad banner");
  PD_CHECK_MSG(object == "matrix" && format == "coordinate",
               "MatrixMarket: only coordinate matrices supported");
  PD_CHECK_MSG(field == "real" || field == "integer",
               "MatrixMarket: only real/integer fields supported");
  PD_CHECK_MSG(symmetry == "general",
               "MatrixMarket: only general symmetry supported");

  while (std::getline(is, line)) {
    if (!line.empty() && line[0] != '%') {
      break;
    }
  }
  std::istringstream dims(line);
  std::uint64_t rows = 0, cols = 0, nnz = 0;
  dims >> rows >> cols >> nnz;
  PD_CHECK_MSG(static_cast<bool>(dims), "MatrixMarket: bad dimension line");

  CooMatrix<double> coo;
  coo.num_rows = rows;
  coo.num_cols = cols;
  coo.entries.reserve(nnz);
  for (std::uint64_t i = 0; i < nnz; ++i) {
    std::uint64_t r = 0, c = 0;
    double v = 0.0;
    is >> r >> c >> v;
    PD_CHECK_MSG(static_cast<bool>(is), "MatrixMarket: truncated entry list");
    PD_CHECK_MSG(r >= 1 && r <= rows && c >= 1 && c <= cols,
                 "MatrixMarket: coordinate out of range");
    coo.entries.push_back(CooEntry<double>{static_cast<std::uint32_t>(r - 1),
                                           static_cast<std::uint32_t>(c - 1), v});
  }
  CsrF64 m = coo_to_csr(coo);
  // coo_to_csr sorts each row and merges duplicate columns, so this is a
  // structural self-check of the conversion rather than of the file.
  m.validate_canonical();
  return m;
}

CsrF64 read_matrix_market_file(const std::string& path) {
  std::ifstream is(path);
  PD_CHECK_MSG(is.is_open(), "cannot open for reading: " + path);
  return read_matrix_market(is);
}

void write_binary(std::ostream& os, const CsrF64& m) {
  os.write(kMagic.data(), kMagic.size());
  write_pod(os, kVersion);
  write_pod<std::uint64_t>(os, m.num_rows);
  write_pod<std::uint64_t>(os, m.num_cols);
  write_vec(os, m.row_ptr);
  write_vec(os, m.col_idx);
  write_vec(os, m.values);
}

void write_binary_file(const std::string& path, const CsrF64& m) {
  std::ofstream os(path, std::ios::binary);
  PD_CHECK_MSG(os.is_open(), "cannot open for writing: " + path);
  write_binary(os, m);
}

CsrF64 read_binary(std::istream& is) {
  std::array<char, 4> magic{};
  is.read(magic.data(), magic.size());
  PD_CHECK_MSG(static_cast<bool>(is) && magic == kMagic,
               "binary read: bad magic (not a PDSM file)");
  const auto version = read_pod<std::uint32_t>(is);
  PD_CHECK_MSG(version == kVersion, "binary read: unsupported version");
  CsrF64 m;
  m.num_rows = read_pod<std::uint64_t>(is);
  m.num_cols = read_pod<std::uint64_t>(is);
  m.row_ptr = read_vec<std::uint32_t>(is);
  m.col_idx = read_vec<std::uint32_t>(is);
  m.values = read_vec<double>(is);
  // Strict tier: PDSM files come from arbitrary tools, so reject anything
  // the kernels' coalescing/reproducibility contracts do not cover
  // (non-monotone row_ptr, out-of-range or unsorted/duplicate columns).
  m.validate_canonical();
  return m;
}

CsrF64 read_binary_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  PD_CHECK_MSG(is.is_open(), "cannot open for reading: " + path);
  return read_binary(is);
}

}  // namespace pd::sparse
