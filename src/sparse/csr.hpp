#pragma once
// Compressed Sparse Row storage.
//
// The paper converts RayStation's custom format to CSR and builds all GPU
// kernels on it.  Value type V is a template parameter because the central
// idea of the paper is a *mixed-precision* CSR (binary16 values, binary64
// vectors); index type I is templated because the paper's §V analysis
// identifies narrowing the 4-byte column indices to 16 bits as the next
// optimization (our Ablation A).  Row offsets are 32-bit, as in the paper
// ("one index of four bytes per row").

#include <cstdint>
#include <vector>

#include "common/error.hpp"

namespace pd::sparse {

template <typename V, typename I = std::uint32_t>
struct CsrMatrix {
  using value_type = V;
  using index_type = I;

  std::uint64_t num_rows = 0;
  std::uint64_t num_cols = 0;
  std::vector<std::uint32_t> row_ptr;  ///< num_rows + 1 offsets.
  std::vector<I> col_idx;              ///< nnz column indices, row-major.
  std::vector<V> values;               ///< nnz values, row-major.

  std::uint64_t nnz() const { return values.size(); }

  std::uint64_t row_nnz(std::uint64_t row) const {
    return row_ptr[row + 1] - row_ptr[row];
  }

  /// Storage footprint of the three arrays (the paper's Table I "size").
  std::uint64_t bytes() const {
    return row_ptr.size() * sizeof(std::uint32_t) + col_idx.size() * sizeof(I) +
           values.size() * sizeof(V);
  }

  /// Structural validation; throws pd::Error on inconsistency.
  void validate() const {
    PD_CHECK_MSG(row_ptr.size() == num_rows + 1, "CSR: row_ptr size mismatch");
    PD_CHECK_MSG(col_idx.size() == values.size(), "CSR: col/value size mismatch");
    PD_CHECK_MSG(row_ptr.empty() || row_ptr.front() == 0,
                 "CSR: row_ptr must start at 0");
    PD_CHECK_MSG(!row_ptr.empty() && row_ptr.back() == values.size(),
                 "CSR: row_ptr must end at nnz");
    for (std::size_t r = 0; r + 1 < row_ptr.size(); ++r) {
      PD_CHECK_MSG(row_ptr[r] <= row_ptr[r + 1], "CSR: row_ptr not monotone");
    }
    for (const I c : col_idx) {
      PD_CHECK_MSG(static_cast<std::uint64_t>(c) < num_cols,
                   "CSR: column index out of range");
    }
  }

  /// Strict loader-tier validation: everything validate() checks, plus each
  /// row's column indices must be strictly ascending (sorted, no duplicate
  /// columns) — the canonical form coo_to_csr emits and every kernel assumes
  /// for its coalescing and reproducibility arguments.  File loaders call
  /// this so malformed input dies with a clear error instead of silently
  /// producing wrong dose.
  void validate_canonical() const {
    validate();
    for (std::size_t r = 0; r + 1 < row_ptr.size(); ++r) {
      for (std::uint32_t k = row_ptr[r] + 1; k < row_ptr[r + 1]; ++k) {
        PD_CHECK_MSG(col_idx[k - 1] < col_idx[k],
                     "CSR: unsorted or duplicate column indices within a row");
      }
    }
  }
};

/// Common instantiations.
using CsrF64 = CsrMatrix<double>;
using CsrF32 = CsrMatrix<float>;

}  // namespace pd::sparse
