#pragma once
// Deterministic multithreaded host SpMV.
//
// A design contrast the paper's §IV turns on: RayStation's CPU engine
// parallelizes over *columns* (one compressed record per spot), which races
// on the output and forces per-thread scratch dose arrays; the GPU port has
// to fall back to atomics and loses reproducibility.  Parallelizing over
// *rows* instead — exactly what CSR and the paper's GPU kernel do — needs no
// scratch and no atomics: threads own disjoint output slices, and every row
// is accumulated in the same order regardless of the thread count, so the
// result is bitwise identical to the serial reference for ANY thread count.

#include <span>

#include "sparse/csr.hpp"

namespace pd::sparse {

/// y = A·x with `num_threads` workers over an nnz-balanced row partition.
/// Bitwise identical to reference_spmv for every thread count.
void parallel_spmv(const CsrF64& A, std::span<const double> x,
                   std::span<double> y, unsigned num_threads);

}  // namespace pd::sparse
