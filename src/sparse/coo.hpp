#pragma once
// Coordinate-list storage and assembly into CSR.
//
// The Monte Carlo dose engine naturally produces one (voxel, spot, dose)
// triplet per energy deposit — COO — which is then assembled into CSR with a
// counting sort.  Duplicate (row, col) entries are summed, matching how
// repeated deposits into the same voxel accumulate.

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "sparse/csr.hpp"

namespace pd::sparse {

template <typename V>
struct CooEntry {
  std::uint32_t row = 0;
  std::uint32_t col = 0;
  V value{};
};

template <typename V>
struct CooMatrix {
  std::uint64_t num_rows = 0;
  std::uint64_t num_cols = 0;
  std::vector<CooEntry<V>> entries;

  std::uint64_t nnz() const { return entries.size(); }

  void validate() const {
    for (const auto& e : entries) {
      PD_CHECK_MSG(e.row < num_rows, "COO: row index out of range");
      PD_CHECK_MSG(e.col < num_cols, "COO: column index out of range");
    }
  }
};

/// Assemble COO into CSR: counting sort by row, then per-row sort by column
/// with duplicate coordinates summed (deterministic: entries are combined in
/// ascending column order, then by input order).
template <typename V, typename I = std::uint32_t>
CsrMatrix<V, I> coo_to_csr(const CooMatrix<V>& coo) {
  coo.validate();
  PD_CHECK_MSG(coo.entries.size() < (std::uint64_t{1} << 32),
               "coo_to_csr: nnz exceeds 32-bit row offsets");

  CsrMatrix<V, I> csr;
  csr.num_rows = coo.num_rows;
  csr.num_cols = coo.num_cols;
  csr.row_ptr.assign(coo.num_rows + 1, 0);

  for (const auto& e : coo.entries) {
    ++csr.row_ptr[e.row + 1];
  }
  for (std::size_t r = 0; r < coo.num_rows; ++r) {
    csr.row_ptr[r + 1] += csr.row_ptr[r];
  }

  std::vector<std::uint32_t> cursor(csr.row_ptr.begin(), csr.row_ptr.end() - 1);
  std::vector<I> cols(coo.entries.size());
  std::vector<V> vals(coo.entries.size());
  for (const auto& e : coo.entries) {
    const std::uint32_t slot = cursor[e.row]++;
    cols[slot] = static_cast<I>(e.col);
    vals[slot] = e.value;
  }

  // Per-row: sort by column and merge duplicates.
  std::vector<std::uint32_t> new_row_ptr(csr.row_ptr.size(), 0);
  std::vector<I> out_cols;
  std::vector<V> out_vals;
  out_cols.reserve(cols.size());
  out_vals.reserve(vals.size());
  std::vector<std::pair<I, V>> row_buf;
  for (std::uint64_t r = 0; r < csr.num_rows; ++r) {
    row_buf.clear();
    for (std::uint32_t k = csr.row_ptr[r]; k < csr.row_ptr[r + 1]; ++k) {
      row_buf.emplace_back(cols[k], vals[k]);
    }
    std::stable_sort(row_buf.begin(), row_buf.end(),
                     [](const auto& a, const auto& b) { return a.first < b.first; });
    for (std::size_t k = 0; k < row_buf.size(); ++k) {
      if (!out_cols.empty() && out_cols.size() > new_row_ptr[r] &&
          out_cols.back() == row_buf[k].first) {
        out_vals.back() = out_vals.back() + row_buf[k].second;
      } else {
        out_cols.push_back(row_buf[k].first);
        out_vals.push_back(row_buf[k].second);
      }
    }
    new_row_ptr[r + 1] = static_cast<std::uint32_t>(out_cols.size());
  }

  csr.row_ptr = std::move(new_row_ptr);
  csr.col_idx = std::move(out_cols);
  csr.values = std::move(out_vals);
  csr.validate();
  return csr;
}

/// Expand CSR back to row-sorted COO (for round-trip tests and transpose).
template <typename V, typename I>
CooMatrix<V> csr_to_coo(const CsrMatrix<V, I>& csr) {
  CooMatrix<V> coo;
  coo.num_rows = csr.num_rows;
  coo.num_cols = csr.num_cols;
  coo.entries.reserve(csr.nnz());
  for (std::uint64_t r = 0; r < csr.num_rows; ++r) {
    for (std::uint32_t k = csr.row_ptr[r]; k < csr.row_ptr[r + 1]; ++k) {
      coo.entries.push_back(CooEntry<V>{static_cast<std::uint32_t>(r),
                                        static_cast<std::uint32_t>(csr.col_idx[k]),
                                        csr.values[k]});
    }
  }
  return coo;
}

/// Transpose via COO relabeling (used for the optimizer's gradient D^T g).
template <typename V, typename I>
CsrMatrix<V, I> transpose(const CsrMatrix<V, I>& csr) {
  CooMatrix<V> coo;
  coo.num_rows = csr.num_cols;
  coo.num_cols = csr.num_rows;
  coo.entries.reserve(csr.nnz());
  for (std::uint64_t r = 0; r < csr.num_rows; ++r) {
    for (std::uint32_t k = csr.row_ptr[r]; k < csr.row_ptr[r + 1]; ++k) {
      coo.entries.push_back(CooEntry<V>{static_cast<std::uint32_t>(csr.col_idx[k]),
                                        static_cast<std::uint32_t>(r),
                                        csr.values[k]});
    }
  }
  return coo_to_csr<V, I>(coo);
}

}  // namespace pd::sparse
