#include "roofline/roofline.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.hpp"
#include "common/table.hpp"

namespace pd::roofline {

double RooflineModel::attainable_gflops(double oi) const {
  PD_CHECK_MSG(oi > 0.0, "roofline: OI must be positive");
  return std::min(peak_gflops, oi * peak_bw_gbs);
}

double RooflineModel::ridge_oi() const { return peak_gflops / peak_bw_gbs; }

RooflineModel make_roofline(const gpusim::DeviceSpec& spec,
                            gpusim::FlopPrecision precision) {
  RooflineModel m;
  m.device_name = spec.name;
  m.peak_bw_gbs = spec.peak_bw_gbs;
  m.peak_gflops = precision == gpusim::FlopPrecision::kFp64
                      ? spec.peak_fp64_gflops
                      : spec.peak_fp32_gflops;
  return m;
}

double roofline_fraction(const RooflineModel& model, const RooflinePoint& p) {
  const double roof = model.attainable_gflops(p.oi);
  return roof > 0.0 ? p.gflops / roof : 0.0;
}

std::string ascii_roofline(const RooflineModel& model,
                           const std::vector<RooflinePoint>& points, int width,
                           int height) {
  PD_CHECK_MSG(width >= 20 && height >= 8, "ascii_roofline: canvas too small");

  // Log ranges covering the points and the ridge.
  double oi_min = model.ridge_oi(), oi_max = model.ridge_oi();
  double gf_min = model.peak_gflops, gf_max = model.peak_gflops;
  for (const RooflinePoint& p : points) {
    oi_min = std::min(oi_min, p.oi);
    oi_max = std::max(oi_max, p.oi);
    gf_min = std::min(gf_min, p.gflops);
    gf_max = std::max(gf_max, p.gflops);
  }
  oi_min /= 2.0;
  oi_max *= 2.0;
  gf_min /= 2.0;
  gf_max *= 2.0;

  const double lx0 = std::log10(oi_min), lx1 = std::log10(oi_max);
  const double ly0 = std::log10(gf_min), ly1 = std::log10(gf_max);
  auto col_of = [&](double oi) {
    return static_cast<int>((std::log10(oi) - lx0) / (lx1 - lx0) * (width - 1));
  };
  auto row_of = [&](double gf) {
    return (height - 1) -
           static_cast<int>((std::log10(gf) - ly0) / (ly1 - ly0) * (height - 1));
  };

  std::vector<std::string> canvas(height, std::string(width, ' '));
  auto plot = [&](int r, int c, char ch) {
    if (r >= 0 && r < height && c >= 0 && c < width) {
      canvas[r][c] = ch;
    }
  };

  // Roofline itself.
  for (int c = 0; c < width; ++c) {
    const double oi = std::pow(10.0, lx0 + (lx1 - lx0) * c / (width - 1));
    plot(row_of(model.attainable_gflops(oi)), c, '-');
  }
  plot(row_of(model.peak_gflops), col_of(model.ridge_oi()), '+');

  // Measured points, labeled 1..9/a..z.
  std::ostringstream legend;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const char mark = i < 9 ? static_cast<char>('1' + i)
                            : static_cast<char>('a' + (i - 9));
    plot(row_of(points[i].gflops), col_of(points[i].oi), mark);
    legend << "  [" << mark << "] " << points[i].label << ": OI="
           << pd::fmt_double(points[i].oi, 3) << " FLOP/B, "
           << pd::fmt_double(points[i].gflops, 1) << " GFLOP/s ("
           << pd::fmt_percent(roofline_fraction(model, points[i]), 1)
           << " of roof)\n";
  }

  std::ostringstream os;
  os << "Roofline: " << model.device_name << " (peak "
     << pd::fmt_double(model.peak_gflops, 0) << " GFLOP/s, "
     << pd::fmt_double(model.peak_bw_gbs, 0) << " GB/s, ridge at OI="
     << pd::fmt_double(model.ridge_oi(), 2) << ")\n";
  for (const std::string& line : canvas) {
    os << '|' << line << '\n';
  }
  os << '+' << std::string(width, '-') << "  (log OI ->)\n" << legend.str();
  return os.str();
}

}  // namespace pd::roofline
