#pragma once
// Roofline model (Williams, Waterman & Patterson, CACM 2009) — the analysis
// behind the paper's Figure 3.

#include <string>
#include <vector>

#include "gpusim/device.hpp"
#include "gpusim/perf.hpp"

namespace pd::roofline {

struct RooflineModel {
  std::string device_name;
  double peak_bw_gbs = 0.0;
  double peak_gflops = 0.0;

  /// Attainable GFLOP/s at operational intensity `oi` (FLOP/byte).
  double attainable_gflops(double oi) const;

  /// The ridge point: OI where the kernel stops being bandwidth-bound.
  double ridge_oi() const;
};

/// Build the model for a device at a given FLOP precision.
RooflineModel make_roofline(const gpusim::DeviceSpec& spec,
                            gpusim::FlopPrecision precision);

struct RooflinePoint {
  std::string label;
  double oi = 0.0;
  double gflops = 0.0;
};

/// Fraction of the roofline achieved by a measured point.
double roofline_fraction(const RooflineModel& model, const RooflinePoint& p);

/// Log-log ASCII rendering of the roofline with the measured points — the
/// textual analogue of Figure 3.
std::string ascii_roofline(const RooflineModel& model,
                           const std::vector<RooflinePoint>& points,
                           int width = 72, int height = 20);

}  // namespace pd::roofline
