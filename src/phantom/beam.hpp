#pragma once
// Beam geometry and pencil-beam-scanning spot generation.
//
// A beam is defined by its gantry angle; spots live on a lattice in the
// beam's-eye-view (BEV) plane (paper Figure 1), with one spot per (lateral
// position, energy layer).  The spots are the *columns* of the dose
// deposition matrix.  Energies are chosen per lateral position so the Bragg
// peaks sweep the target's water-equivalent depth span — which is what makes
// deep voxels receive dose from many layers and produces the heavy-tailed
// row lengths of Figure 2.

#include <cstdint>
#include <vector>

#include "phantom/phantom.hpp"

namespace pd::phantom {

/// Scanning parameters for one treatment beam.
struct BeamConfig {
  double gantry_angle_deg = 0.0;
  double spot_spacing_mm = 5.0;    ///< Lateral lattice pitch in the BEV.
  double layer_spacing_mm = 6.0;   ///< Water-equivalent distance between layers.
  double lateral_margin_mm = 6.0;  ///< Margin around the target outline.
};

/// Orthonormal beam frame.  The beam travels along `direction`; (u, v) span
/// the BEV plane.
struct BeamFrame {
  Vec3 direction;
  Vec3 u_axis;
  Vec3 v_axis;
  Vec3 isocenter;

  /// BEV coordinates of a patient-space point.
  void project(const Vec3& p, double& u, double& v) const {
    const Vec3 d = p - isocenter;
    u = d.dot(u_axis);
    v = d.dot(v_axis);
  }

  /// Patient-space point at BEV (u, v), depth t along the beam from the
  /// isocenter plane.
  Vec3 unproject(double u, double v, double t) const {
    return isocenter + u_axis * u + v_axis * v + direction * t;
  }
};

/// One pencil-beam spot: lateral BEV position + beam energy.
struct Spot {
  double u_mm = 0.0;
  double v_mm = 0.0;
  double energy_mev = 0.0;
  std::uint32_t layer = 0;
};

/// Gantry rotates in the axial (x–y) plane; v is the patient axis z.
BeamFrame make_beam_frame(const Phantom& phantom, double gantry_angle_deg);

/// Proton range–energy relation R = alpha·E^p (Bortfeld), R in cm of water.
double proton_range_cm(double energy_mev);
double proton_energy_mev(double range_cm);

/// Water-equivalent depth (cm) of patient point `p` along the beam: stopping
/// power integrated from grid entry to p with step `step_mm`.
double water_equivalent_depth_cm(const Phantom& phantom, const BeamFrame& frame,
                                 const Vec3& p, double step_mm = 1.0);

/// Generate the spot list for a beam: a BEV lattice clipped to the target
/// outline (+margin), with energy layers per lateral position spanning the
/// local target depth range.
std::vector<Spot> generate_spots(const Phantom& phantom, const BeamFrame& frame,
                                 const BeamConfig& config);

/// Order spots the way the machine delivers them (paper Figure 1): energy
/// layers from deepest (highest energy) to shallowest, and within a layer a
/// serpentine raster — rows of constant v scanned in alternating u
/// direction, so the beam never jumps across the field.
std::vector<Spot> scanline_order(std::vector<Spot> spots);

}  // namespace pd::phantom
