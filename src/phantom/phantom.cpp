#include "phantom/phantom.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace pd::phantom {

Phantom::Phantom(VoxelGrid grid, std::string name)
    : grid_(grid), name_(std::move(name)) {
  density_.assign(grid_.num_voxels(), 0.0);
  roi_.assign(grid_.num_voxels(), Roi::kAir);
}

void Phantom::paint(const Ellipsoid& shape, Roi roi, double stopping_power) {
  PD_CHECK_MSG(stopping_power >= 0.0, "paint: negative stopping power");
  const VoxelGrid& g = grid_;
  // Bounding box of the ellipsoid, clipped to the grid.
  const VoxelIndex lo = g.nearest_voxel(shape.center - shape.radii);
  const VoxelIndex hi = g.nearest_voxel(shape.center + shape.radii);
  for (std::int64_t k = std::max<std::int64_t>(lo.k, 0);
       k <= std::min<std::int64_t>(hi.k, g.nz() - 1); ++k) {
    for (std::int64_t j = std::max<std::int64_t>(lo.j, 0);
         j <= std::min<std::int64_t>(hi.j, g.ny() - 1); ++j) {
      for (std::int64_t i = std::max<std::int64_t>(lo.i, 0);
           i <= std::min<std::int64_t>(hi.i, g.nx() - 1); ++i) {
        const VoxelIndex v{i, j, k};
        if (shape.contains(g.voxel_center(v))) {
          const std::uint64_t idx = g.linear_index(v);
          density_[idx] = stopping_power;
          roi_[idx] = roi;
        }
      }
    }
  }
}

void Phantom::fill_background(Roi roi, double stopping_power) {
  for (std::uint64_t v = 0; v < grid_.num_voxels(); ++v) {
    density_[v] = stopping_power;
    roi_[v] = roi;
  }
}

std::vector<std::uint64_t> Phantom::voxels_with_roi(Roi roi) const {
  std::vector<std::uint64_t> out;
  for (std::uint64_t v = 0; v < roi_.size(); ++v) {
    if (roi_[v] == roi) {
      out.push_back(v);
    }
  }
  return out;
}

std::uint64_t Phantom::count_roi(Roi roi) const {
  std::uint64_t n = 0;
  for (const Roi r : roi_) {
    if (r == roi) {
      ++n;
    }
  }
  return n;
}

Vec3 Phantom::roi_centroid(Roi roi) const {
  Vec3 acc;
  std::uint64_t n = 0;
  for (std::uint64_t v = 0; v < roi_.size(); ++v) {
    if (roi_[v] == roi) {
      acc = acc + grid_.voxel_center(grid_.from_linear(v));
      ++n;
    }
  }
  PD_CHECK_MSG(n > 0, "roi_centroid: ROI is empty");
  return acc * (1.0 / static_cast<double>(n));
}

Phantom make_liver_phantom(std::int64_t nx, std::int64_t ny, std::int64_t nz,
                           double spacing_mm) {
  VoxelGrid grid(nx, ny, nz, spacing_mm);
  Phantom p(grid, "liver");
  const Vec3 c = grid.grid_center();
  const double sx = static_cast<double>(nx) * spacing_mm;
  const double sy = static_cast<double>(ny) * spacing_mm;
  const double sz = static_cast<double>(nz) * spacing_mm;

  // Torso: soft tissue filling most of the grid.
  p.paint(Ellipsoid{c, {0.46 * sx, 0.42 * sy, 0.55 * sz}}, Roi::kTissue, 1.0);
  // Right lung lobe above the liver (low stopping power).
  p.paint(Ellipsoid{{c.x - 0.18 * sx, c.y - 0.10 * sy, c.z + 0.28 * sz},
                    {0.16 * sx, 0.18 * sy, 0.22 * sz}},
          Roi::kLung, 0.30);
  // Vertebral column (bone) behind the target.
  p.paint(Ellipsoid{{c.x, c.y + 0.28 * sy, c.z}, {0.06 * sx, 0.07 * sy, 0.5 * sz}},
          Roi::kBone, 1.70);
  // Spinal-cord OAR inside the column.
  p.paint(Ellipsoid{{c.x, c.y + 0.28 * sy, c.z}, {0.02 * sx, 0.025 * sy, 0.5 * sz}},
          Roi::kOar, 1.05);
  // Liver target: off-centre in the right abdomen.  Large (as liver tumours
  // often are): the beam corridors must irradiate ~30% of the dose grid to
  // match the paper's 70% empty-row fraction.
  p.paint(Ellipsoid{{c.x - 0.10 * sx, c.y - 0.04 * sy, c.z - 0.02 * sz},
                    {0.24 * sx, 0.22 * sy, 0.26 * sz}},
          Roi::kTarget, 1.05);
  return p;
}

Phantom make_prostate_phantom(std::int64_t nx, std::int64_t ny, std::int64_t nz,
                              double spacing_mm) {
  VoxelGrid grid(nx, ny, nz, spacing_mm);
  Phantom p(grid, "prostate");
  const Vec3 c = grid.grid_center();
  const double sx = static_cast<double>(nx) * spacing_mm;
  const double sy = static_cast<double>(ny) * spacing_mm;
  const double sz = static_cast<double>(nz) * spacing_mm;

  // Pelvis: soft tissue.
  p.paint(Ellipsoid{c, {0.47 * sx, 0.42 * sy, 0.55 * sz}}, Roi::kTissue, 1.0);
  // Femoral heads on both lateral sides (the parallel-opposed beams pass
  // close to these).
  p.paint(Ellipsoid{{c.x - 0.32 * sx, c.y, c.z}, {0.09 * sx, 0.12 * sy, 0.16 * sz}},
          Roi::kBone, 1.75);
  p.paint(Ellipsoid{{c.x + 0.32 * sx, c.y, c.z}, {0.09 * sx, 0.12 * sy, 0.16 * sz}},
          Roi::kBone, 1.75);
  // Bladder OAR anterior, rectum OAR posterior of the target.
  p.paint(Ellipsoid{{c.x, c.y - 0.16 * sy, c.z}, {0.11 * sx, 0.10 * sy, 0.10 * sz}},
          Roi::kOar, 1.0);
  p.paint(Ellipsoid{{c.x, c.y + 0.15 * sy, c.z}, {0.07 * sx, 0.07 * sy, 0.12 * sz}},
          Roi::kOar, 1.0);
  // Prostate target: central; sized so the two opposed corridors cover ~30%
  // of the (cropped) pelvic dose grid, per the paper's Figure 2.
  p.paint(Ellipsoid{c, {0.16 * sx, 0.16 * sy, 0.20 * sz}}, Roi::kTarget, 1.02);
  return p;
}

}  // namespace pd::phantom
