#include "phantom/grid.hpp"

#include <cmath>

namespace pd::phantom {

double Vec3::norm() const { return std::sqrt(dot(*this)); }

Vec3 Vec3::normalized() const {
  const double n = norm();
  PD_CHECK_MSG(n > 0.0, "normalizing zero vector");
  return {x / n, y / n, z / n};
}

VoxelGrid::VoxelGrid(std::int64_t nx, std::int64_t ny, std::int64_t nz,
                     double spacing_mm, Vec3 origin)
    : nx_(nx), ny_(ny), nz_(nz), spacing_(spacing_mm), origin_(origin) {
  PD_CHECK_MSG(nx > 0 && ny > 0 && nz > 0, "VoxelGrid: dimensions must be positive");
  PD_CHECK_MSG(spacing_mm > 0.0, "VoxelGrid: spacing must be positive");
}

VoxelIndex VoxelGrid::from_linear(std::uint64_t idx) const {
  PD_ASSERT(idx < num_voxels());
  VoxelIndex v;
  v.i = static_cast<std::int64_t>(idx % static_cast<std::uint64_t>(nx_));
  const std::uint64_t rest = idx / static_cast<std::uint64_t>(nx_);
  v.j = static_cast<std::int64_t>(rest % static_cast<std::uint64_t>(ny_));
  v.k = static_cast<std::int64_t>(rest / static_cast<std::uint64_t>(ny_));
  return v;
}

VoxelIndex VoxelGrid::nearest_voxel(const Vec3& p) const {
  VoxelIndex v;
  v.i = static_cast<std::int64_t>(std::llround((p.x - origin_.x) / spacing_));
  v.j = static_cast<std::int64_t>(std::llround((p.y - origin_.y) / spacing_));
  v.k = static_cast<std::int64_t>(std::llround((p.z - origin_.z) / spacing_));
  return v;
}

Vec3 VoxelGrid::grid_center() const {
  return {origin_.x + spacing_ * static_cast<double>(nx_ - 1) / 2.0,
          origin_.y + spacing_ * static_cast<double>(ny_ - 1) / 2.0,
          origin_.z + spacing_ * static_cast<double>(nz_ - 1) / 2.0};
}

}  // namespace pd::phantom
