#pragma once
// Synthetic CT phantoms.
//
// The paper uses real patient CTs (a liver case and a prostate case) that are
// not publicly available; we substitute parametric phantoms built from
// ellipsoidal organs with realistic relative stopping powers.  What matters
// for reproducing the paper is the *structure* the geometry induces in the
// dose deposition matrix (rows = voxels ≫ cols = spots, ~70% rows never hit,
// heavy-tailed row lengths); organ shapes and densities only need to be
// anatomically plausible.

#include <cstdint>
#include <string>
#include <vector>

#include "phantom/grid.hpp"

namespace pd::phantom {

/// Region-of-interest label per voxel.
enum class Roi : std::uint8_t {
  kAir = 0,
  kTissue,
  kLung,
  kBone,
  kTarget,   ///< The tumor (planning target volume).
  kOar,      ///< Organ at risk adjacent to the target.
};

/// Axis-aligned ellipsoid, the primitive organs are composed from.
struct Ellipsoid {
  Vec3 center;
  Vec3 radii;  ///< Semi-axes in mm.

  bool contains(const Vec3& p) const {
    const double dx = (p.x - center.x) / radii.x;
    const double dy = (p.y - center.y) / radii.y;
    const double dz = (p.z - center.z) / radii.z;
    return dx * dx + dy * dy + dz * dz <= 1.0;
  }
};

/// A voxelized patient: relative (to water) proton stopping power and ROI
/// labels per voxel.
class Phantom {
 public:
  Phantom(VoxelGrid grid, std::string name);

  const VoxelGrid& grid() const { return grid_; }
  const std::string& name() const { return name_; }

  double stopping_power(std::uint64_t voxel) const { return density_[voxel]; }
  Roi roi(std::uint64_t voxel) const { return roi_[voxel]; }

  void paint(const Ellipsoid& shape, Roi roi, double stopping_power);
  void fill_background(Roi roi, double stopping_power);

  std::vector<std::uint64_t> voxels_with_roi(Roi roi) const;
  std::uint64_t count_roi(Roi roi) const;

  /// Centroid of a ROI in patient coordinates (beam targeting).
  Vec3 roi_centroid(Roi roi) const;

 private:
  VoxelGrid grid_;
  std::string name_;
  std::vector<double> density_;
  std::vector<Roi> roi_;
};

/// Liver-like phantom: large tissue volume, rib (bone) shell fragments, a
/// target deep in the right abdomen, spinal-cord OAR.  `lateral_voxels` and
/// `axial_voxels` size the grid (the scaled-down Table I rows).
Phantom make_liver_phantom(std::int64_t nx, std::int64_t ny, std::int64_t nz,
                           double spacing_mm);

/// Prostate-like phantom: smaller pelvic volume, femoral heads (bone),
/// central target, rectum/bladder OARs.
Phantom make_prostate_phantom(std::int64_t nx, std::int64_t ny, std::int64_t nz,
                              double spacing_mm);

}  // namespace pd::phantom
