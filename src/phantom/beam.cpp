#include "phantom/beam.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/error.hpp"

namespace pd::phantom {

namespace {
// Bortfeld range–energy fit for protons in water: R[cm] = alpha * E[MeV]^p.
constexpr double kAlpha = 0.0022;
constexpr double kP = 1.77;
}  // namespace

BeamFrame make_beam_frame(const Phantom& phantom, double gantry_angle_deg) {
  const double theta = gantry_angle_deg * M_PI / 180.0;
  BeamFrame frame;
  frame.direction = {std::cos(theta), std::sin(theta), 0.0};
  frame.u_axis = {-std::sin(theta), std::cos(theta), 0.0};
  frame.v_axis = {0.0, 0.0, 1.0};
  frame.isocenter = phantom.roi_centroid(Roi::kTarget);
  return frame;
}

double proton_range_cm(double energy_mev) {
  PD_CHECK_MSG(energy_mev > 0.0, "proton_range_cm: non-positive energy");
  return kAlpha * std::pow(energy_mev, kP);
}

double proton_energy_mev(double range_cm) {
  PD_CHECK_MSG(range_cm > 0.0, "proton_energy_mev: non-positive range");
  return std::pow(range_cm / kAlpha, 1.0 / kP);
}

double water_equivalent_depth_cm(const Phantom& phantom, const BeamFrame& frame,
                                 const Vec3& p, double step_mm) {
  const VoxelGrid& g = phantom.grid();
  // March from p backwards along the beam until leaving the grid, summing
  // stopping power · step.  Marching backwards avoids having to find the
  // entry point explicitly.
  double wed_mm = 0.0;
  Vec3 cursor = p;
  const Vec3 back = frame.direction * (-step_mm);
  // Generous bound on the path length: the grid diagonal.
  const double diag_mm =
      std::sqrt(static_cast<double>(g.nx() * g.nx() + g.ny() * g.ny() +
                                    g.nz() * g.nz())) *
      g.spacing();
  const auto max_steps = static_cast<std::uint64_t>(diag_mm / step_mm) + 2;
  for (std::uint64_t s = 0; s < max_steps; ++s) {
    const VoxelIndex v = g.nearest_voxel(cursor);
    if (!g.contains(v)) {
      break;
    }
    wed_mm += phantom.stopping_power(g.linear_index(v)) * step_mm;
    cursor = cursor + back;
  }
  return wed_mm / 10.0;
}

std::vector<Spot> generate_spots(const Phantom& phantom, const BeamFrame& frame,
                                 const BeamConfig& config) {
  PD_CHECK_MSG(config.spot_spacing_mm > 0.0, "spot spacing must be positive");
  PD_CHECK_MSG(config.layer_spacing_mm > 0.0, "layer spacing must be positive");

  // Bin target voxels into BEV lattice cells; per cell track the local
  // water-equivalent depth span.
  struct DepthSpan {
    double min_cm = 1e30;
    double max_cm = -1e30;
  };
  std::map<std::pair<std::int64_t, std::int64_t>, DepthSpan> cells;

  const VoxelGrid& g = phantom.grid();
  for (std::uint64_t vox = 0; vox < g.num_voxels(); ++vox) {
    if (phantom.roi(vox) != Roi::kTarget) {
      continue;
    }
    const Vec3 p = g.voxel_center(g.from_linear(vox));
    double u = 0.0, v = 0.0;
    frame.project(p, u, v);
    const double wed = water_equivalent_depth_cm(phantom, frame, p);

    // The voxel claims every lattice cell within the lateral margin, so the
    // spot outline extends slightly beyond the target (paper Figure 1).
    const auto reach =
        static_cast<std::int64_t>(config.lateral_margin_mm / config.spot_spacing_mm);
    const auto cu = static_cast<std::int64_t>(std::llround(u / config.spot_spacing_mm));
    const auto cv = static_cast<std::int64_t>(std::llround(v / config.spot_spacing_mm));
    for (std::int64_t du = -reach; du <= reach; ++du) {
      for (std::int64_t dv = -reach; dv <= reach; ++dv) {
        DepthSpan& span = cells[{cu + du, cv + dv}];
        span.min_cm = std::min(span.min_cm, wed);
        span.max_cm = std::max(span.max_cm, wed);
      }
    }
  }
  PD_CHECK_MSG(!cells.empty(), "generate_spots: phantom has no target voxels");

  // One energy layer per layer_spacing of water-equivalent depth, spanning
  // the local target depth range plus one layer of margin on each side.
  // Depths snap to a beam-wide ladder (multiples of the layer spacing), the
  // way a real machine's discrete energy selection works, so lateral
  // positions share their energy layers.
  std::vector<Spot> spots;
  const double layer_cm = config.layer_spacing_mm / 10.0;
  for (const auto& [cell, span] : cells) {
    const auto k_lo = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(std::floor((span.min_cm - layer_cm) /
                                                layer_cm)));
    const auto k_hi = static_cast<std::int64_t>(
        std::ceil((span.max_cm + layer_cm) / layer_cm));
    for (std::int64_t k = k_lo; k <= k_hi; ++k) {
      Spot s;
      s.u_mm = static_cast<double>(cell.first) * config.spot_spacing_mm;
      s.v_mm = static_cast<double>(cell.second) * config.spot_spacing_mm;
      s.energy_mev = proton_energy_mev(static_cast<double>(k) * layer_cm);
      s.layer = static_cast<std::uint32_t>(k - k_lo);
      spots.push_back(s);
    }
  }
  return spots;
}

std::vector<Spot> scanline_order(std::vector<Spot> spots) {
  // Deepest layer first (energies descend), then serpentine over (v, u).
  std::sort(spots.begin(), spots.end(), [](const Spot& a, const Spot& b) {
    if (a.energy_mev != b.energy_mev) {
      return a.energy_mev > b.energy_mev;
    }
    if (a.v_mm != b.v_mm) {
      return a.v_mm < b.v_mm;
    }
    return a.u_mm < b.u_mm;
  });
  // Reverse every second v-row within each energy layer (the serpentine).
  std::size_t i = 0;
  while (i < spots.size()) {
    const double energy = spots[i].energy_mev;
    bool flip = false;
    while (i < spots.size() && spots[i].energy_mev == energy) {
      const double v = spots[i].v_mm;
      std::size_t j = i;
      while (j < spots.size() && spots[j].energy_mev == energy &&
             spots[j].v_mm == v) {
        ++j;
      }
      if (flip) {
        std::reverse(spots.begin() + static_cast<std::ptrdiff_t>(i),
                     spots.begin() + static_cast<std::ptrdiff_t>(j));
      }
      flip = !flip;
      i = j;
    }
  }
  return spots;
}

}  // namespace pd::phantom
