#pragma once
// Voxel grid geometry: the dose grid whose voxels are the *rows* of the dose
// deposition matrix.

#include <cstdint>

#include "common/error.hpp"

namespace pd::phantom {

/// 3D vector in patient coordinates (millimetres).
struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  Vec3 operator+(const Vec3& o) const { return {x + o.x, y + o.y, z + o.z}; }
  Vec3 operator-(const Vec3& o) const { return {x - o.x, y - o.y, z - o.z}; }
  Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }
  double dot(const Vec3& o) const { return x * o.x + y * o.y + z * o.z; }
  double norm() const;
  Vec3 normalized() const;
};

/// Integer voxel coordinate.
struct VoxelIndex {
  std::int64_t i = 0;
  std::int64_t j = 0;
  std::int64_t k = 0;
};

/// Regular voxel grid: `dims` voxels of `spacing` mm, with `origin` at the
/// centre of voxel (0,0,0).
class VoxelGrid {
 public:
  VoxelGrid(std::int64_t nx, std::int64_t ny, std::int64_t nz, double spacing_mm,
            Vec3 origin = {});

  std::int64_t nx() const { return nx_; }
  std::int64_t ny() const { return ny_; }
  std::int64_t nz() const { return nz_; }
  double spacing() const { return spacing_; }
  const Vec3& origin() const { return origin_; }

  std::uint64_t num_voxels() const {
    return static_cast<std::uint64_t>(nx_) * ny_ * nz_;
  }

  double voxel_volume_cm3() const {
    const double s_cm = spacing_ / 10.0;
    return s_cm * s_cm * s_cm;
  }

  bool contains(const VoxelIndex& v) const {
    return v.i >= 0 && v.i < nx_ && v.j >= 0 && v.j < ny_ && v.k >= 0 && v.k < nz_;
  }

  std::uint64_t linear_index(const VoxelIndex& v) const {
    PD_ASSERT(contains(v));
    return static_cast<std::uint64_t>((v.k * ny_ + v.j) * nx_ + v.i);
  }

  VoxelIndex from_linear(std::uint64_t idx) const;

  /// Centre of a voxel in patient coordinates.
  Vec3 voxel_center(const VoxelIndex& v) const {
    return {origin_.x + static_cast<double>(v.i) * spacing_,
            origin_.y + static_cast<double>(v.j) * spacing_,
            origin_.z + static_cast<double>(v.k) * spacing_};
  }

  /// Nearest voxel to a point (may be outside the grid; check contains()).
  VoxelIndex nearest_voxel(const Vec3& p) const;

  /// Geometric centre of the whole grid.
  Vec3 grid_center() const;

 private:
  std::int64_t nx_, ny_, nz_;
  double spacing_;
  Vec3 origin_;
};

}  // namespace pd::phantom
