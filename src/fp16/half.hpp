#pragma once
// Software IEEE-754 binary16 ("half") implementation.
//
// The paper stores dose-deposition-matrix entries in IEEE-754 half precision
// (matching the 16 bits RayStation's CPU code uses) while keeping the SpMV
// input/output vectors in double.  CUDA provides `__half` in hardware; on this
// substrate we implement binary16 in software with bit-exact conversions:
//  * half -> float/double conversion is exact (binary16 ⊂ binary32 ⊂ binary64),
//  * float/double -> half rounds to nearest, ties to even,
//  * subnormals, ±inf and NaN are fully supported.
// Arithmetic operators convert to float, compute, and round back — the same
// semantics as CUDA's promoted-half arithmetic.

#include <bit>
#include <compare>
#include <cstdint>
#include <iosfwd>
#include <limits>

namespace pd {

class Half {
 public:
  constexpr Half() = default;

  /// Construct from raw binary16 bits.
  static constexpr Half from_bits(std::uint16_t bits) {
    Half h;
    h.bits_ = bits;
    return h;
  }

  explicit Half(float value);
  explicit Half(double value);
  explicit Half(int value);

  constexpr std::uint16_t bits() const { return bits_; }

  /// Exact widening conversions.
  float to_float() const;
  double to_double() const;
  explicit operator float() const { return to_float(); }
  explicit operator double() const { return to_double(); }

  bool is_nan() const;
  bool is_inf() const;
  bool is_subnormal() const;
  bool is_zero() const;  ///< true for both +0 and -0.
  bool signbit() const { return (bits_ & 0x8000u) != 0; }

  Half operator-() const { return from_bits(static_cast<std::uint16_t>(bits_ ^ 0x8000u)); }

  friend Half operator+(Half a, Half b) { return Half(a.to_float() + b.to_float()); }
  friend Half operator-(Half a, Half b) { return Half(a.to_float() - b.to_float()); }
  friend Half operator*(Half a, Half b) { return Half(a.to_float() * b.to_float()); }
  friend Half operator/(Half a, Half b) { return Half(a.to_float() / b.to_float()); }

  Half& operator+=(Half o) { return *this = *this + o; }
  Half& operator-=(Half o) { return *this = *this - o; }
  Half& operator*=(Half o) { return *this = *this * o; }
  Half& operator/=(Half o) { return *this = *this / o; }

  /// IEEE comparison semantics (NaN compares unordered/false).
  friend bool operator==(Half a, Half b) {
    if (a.is_nan() || b.is_nan()) return false;
    if (a.is_zero() && b.is_zero()) return true;  // +0 == -0
    return a.bits_ == b.bits_;
  }
  friend bool operator!=(Half a, Half b) { return !(a == b); }
  friend bool operator<(Half a, Half b) { return a.to_float() < b.to_float(); }
  friend bool operator<=(Half a, Half b) { return a.to_float() <= b.to_float(); }
  friend bool operator>(Half a, Half b) { return a.to_float() > b.to_float(); }
  friend bool operator>=(Half a, Half b) { return a.to_float() >= b.to_float(); }

  static constexpr Half zero() { return from_bits(0x0000); }
  static constexpr Half one() { return from_bits(0x3c00); }
  static constexpr Half infinity() { return from_bits(0x7c00); }
  static constexpr Half quiet_nan() { return from_bits(0x7e00); }
  static constexpr Half max() { return from_bits(0x7bff); }       ///< 65504
  static constexpr Half min_normal() { return from_bits(0x0400); } ///< 2^-14
  static constexpr Half denorm_min() { return from_bits(0x0001); } ///< 2^-24

 private:
  std::uint16_t bits_ = 0;
};

static_assert(sizeof(Half) == 2, "Half must be 2 bytes — its size is the point");

/// Round-to-nearest-even conversion of a binary32 value to binary16 bits.
std::uint16_t float_to_half_bits(float value);

/// Exact conversion of binary16 bits to binary32.  Inline: this sits on the
/// per-element hot path of every half-precision SpMV (both the simulated
/// kernels and the native backend convert each matrix entry on load), and an
/// out-of-line call per non-zero dominates the native backend's runtime.
inline float half_bits_to_float(std::uint16_t bits) {
  const std::uint32_t sign = static_cast<std::uint32_t>(bits & 0x8000u) << 16;
  const std::uint32_t exp16 = (bits >> 10) & 0x1fu;
  std::uint32_t mant = bits & 0x3ffu;

  std::uint32_t f;
  if (exp16 == 0) {
    if (mant == 0) {
      f = sign;  // signed zero
    } else {
      // Subnormal half: renormalize into a binary32 normal.
      int e = -1;
      do {
        ++e;
        mant <<= 1;
      } while ((mant & 0x400u) == 0);
      mant &= 0x3ffu;
      const std::uint32_t exp32 = static_cast<std::uint32_t>(127 - 15 - e);
      f = sign | (exp32 << 23) | (mant << 13);
    }
  } else if (exp16 == 0x1f) {
    f = sign | 0x7f800000u | (mant << 13);  // inf / NaN (payload widened)
  } else {
    const std::uint32_t exp32 = exp16 + (127 - 15);
    f = sign | (exp32 << 23) | (mant << 13);
  }
  return std::bit_cast<float>(f);
}

inline float Half::to_float() const { return half_bits_to_float(bits_); }

inline double Half::to_double() const {
  return static_cast<double>(to_float());
}

std::ostream& operator<<(std::ostream& os, Half h);

/// Unit in the last place of a half value near |x| — the quantization step of
/// the dose-matrix entries, used by tests to bound mixed-precision error.
double half_ulp(double x);

namespace literals {
inline Half operator""_h(long double v) { return Half(static_cast<double>(v)); }
}  // namespace literals

}  // namespace pd

template <>
struct std::numeric_limits<pd::Half> {
  static constexpr bool is_specialized = true;
  static constexpr bool is_signed = true;
  static constexpr bool is_integer = false;
  static constexpr bool is_exact = false;
  static constexpr bool has_infinity = true;
  static constexpr bool has_quiet_NaN = true;
  static constexpr int digits = 11;       // implicit bit + 10 mantissa bits
  static constexpr int max_exponent = 16; // 2^15 < 65504 < 2^16
  static constexpr int min_exponent = -13;
  static pd::Half min() { return pd::Half::min_normal(); }
  static pd::Half max() { return pd::Half::max(); }
  static pd::Half lowest() { return -pd::Half::max(); }
  static pd::Half epsilon() { return pd::Half::from_bits(0x1400); }  // 2^-10
  static pd::Half infinity() { return pd::Half::infinity(); }
  static pd::Half quiet_NaN() { return pd::Half::quiet_nan(); }
  static pd::Half denorm_min() { return pd::Half::denorm_min(); }
};
