#pragma once
// Software bfloat16 (brain floating point): the other 16-bit storage format
// a dose engine could use.
//
// The paper chooses IEEE binary16 for the matrix entries; bfloat16 trades
// mantissa (7 bits vs 10) for binary32's full exponent range.  Dose
// deposition values are positive and span a modest dynamic range, so half
// should quantize them ~8x more precisely — the value-type ablation
// (`bench/ablation_value_type`) measures exactly that.  Conversions use
// round-to-nearest-even, like hardware bf16 units.

#include <bit>
#include <cstdint>
#include <limits>

namespace pd {

class Bfloat16 {
 public:
  constexpr Bfloat16() = default;

  static constexpr Bfloat16 from_bits(std::uint16_t bits) {
    Bfloat16 b;
    b.bits_ = bits;
    return b;
  }

  explicit Bfloat16(float value) : bits_(float_to_bits(value)) {}
  explicit Bfloat16(double value) : Bfloat16(static_cast<float>(value)) {}

  constexpr std::uint16_t bits() const { return bits_; }

  /// Exact widening: bf16 is binary32 with a truncated mantissa.
  float to_float() const {
    const std::uint32_t f = static_cast<std::uint32_t>(bits_) << 16;
    return std::bit_cast<float>(f);
  }
  double to_double() const { return static_cast<double>(to_float()); }
  explicit operator float() const { return to_float(); }
  explicit operator double() const { return to_double(); }

  bool is_nan() const {
    return ((bits_ & 0x7f80u) == 0x7f80u) && ((bits_ & 0x7fu) != 0);
  }
  bool is_inf() const { return (bits_ & 0x7fffu) == 0x7f80u; }
  bool signbit() const { return (bits_ & 0x8000u) != 0; }

  friend Bfloat16 operator+(Bfloat16 a, Bfloat16 b) {
    return Bfloat16(a.to_float() + b.to_float());
  }
  friend Bfloat16 operator*(Bfloat16 a, Bfloat16 b) {
    return Bfloat16(a.to_float() * b.to_float());
  }
  friend bool operator==(Bfloat16 a, Bfloat16 b) {
    if (a.is_nan() || b.is_nan()) return false;
    if ((a.bits_ | b.bits_ | 0x8000u) == 0x8000u) return true;  // ±0
    return a.bits_ == b.bits_;
  }

  /// RNE narrowing of binary32 to bf16 bits.
  static std::uint16_t float_to_bits(float value) {
    std::uint32_t f = std::bit_cast<std::uint32_t>(value);
    if ((f & 0x7f800000u) == 0x7f800000u && (f & 0x007fffffu) != 0) {
      // NaN: keep a quiet payload.
      return static_cast<std::uint16_t>((f >> 16) | 0x0040u);
    }
    // Round to nearest even on the 16-bit boundary.
    const std::uint32_t lsb = (f >> 16) & 1u;
    f += 0x7fffu + lsb;
    return static_cast<std::uint16_t>(f >> 16);
  }

 private:
  std::uint16_t bits_ = 0;
};

static_assert(sizeof(Bfloat16) == 2, "Bfloat16 must be 2 bytes");

/// ulp of a bf16 value near |x| (7 mantissa bits).
double bfloat16_ulp(double x);

}  // namespace pd

template <>
struct std::numeric_limits<pd::Bfloat16> {
  static constexpr bool is_specialized = true;
  static constexpr int digits = 8;  // implicit bit + 7 mantissa bits
  static pd::Bfloat16 max() { return pd::Bfloat16::from_bits(0x7f7f); }
  static pd::Bfloat16 min() { return pd::Bfloat16::from_bits(0x0080); }
  static pd::Bfloat16 infinity() { return pd::Bfloat16::from_bits(0x7f80); }
  static pd::Bfloat16 quiet_NaN() { return pd::Bfloat16::from_bits(0x7fc0); }
  static pd::Bfloat16 epsilon() { return pd::Bfloat16::from_bits(0x3c00); }  // 2^-7
};
