#include "fp16/half.hpp"

#include <bit>
#include <cmath>
#include <ostream>

namespace pd {

std::uint16_t float_to_half_bits(float value) {
  const std::uint32_t f = std::bit_cast<std::uint32_t>(value);
  const std::uint32_t sign = (f >> 16) & 0x8000u;
  const std::uint32_t exp32 = (f >> 23) & 0xffu;
  std::uint32_t mant32 = f & 0x007fffffu;

  if (exp32 == 0xffu) {  // inf or NaN
    if (mant32 == 0) {
      return static_cast<std::uint16_t>(sign | 0x7c00u);
    }
    // Preserve a quiet NaN; keep the top mantissa bits so payload ordering
    // survives where it fits.
    std::uint32_t nan_mant = mant32 >> 13;
    if (nan_mant == 0) nan_mant = 1;
    return static_cast<std::uint16_t>(sign | 0x7c00u | 0x0200u | nan_mant);
  }

  // Unbiased exponent; binary16 bias is 15, binary32 bias is 127.
  const int unbiased = static_cast<int>(exp32) - 127;
  int exp16 = unbiased + 15;

  if (exp16 >= 0x1f) {  // overflow -> infinity
    return static_cast<std::uint16_t>(sign | 0x7c00u);
  }

  if (exp16 <= 0) {
    // Subnormal half (or zero).  The effective mantissa (with implicit bit,
    // if the input is normal) must be shifted right by (1 - exp16) extra
    // positions on top of the usual 13-bit narrowing.
    if (exp16 < -10) {
      // Too small for even the largest subnormal: round to (signed) zero,
      // except values >= 2^-25 exactly at the halfway point round to the
      // smallest subnormal — handled by the shift path below when exp16==-10.
      return static_cast<std::uint16_t>(sign);
    }
    mant32 |= 0x00800000u;  // make the implicit bit explicit
    const int shift = 14 - exp16;  // 13 narrowing bits + (1 - exp16)
    const std::uint32_t mant = mant32 >> shift;
    const std::uint32_t rem = mant32 & ((1u << shift) - 1u);
    const std::uint32_t half_point = 1u << (shift - 1);
    std::uint32_t rounded = mant;
    if (rem > half_point || (rem == half_point && (mant & 1u))) {
      ++rounded;  // may carry into the exponent (to min normal) — that is fine
    }
    return static_cast<std::uint16_t>(sign | rounded);
  }

  // Normal half: narrow the 23-bit mantissa to 10 bits with RNE.
  std::uint32_t mant = mant32 >> 13;
  const std::uint32_t rem = mant32 & 0x1fffu;
  if (rem > 0x1000u || (rem == 0x1000u && (mant & 1u))) {
    ++mant;
    if (mant == 0x400u) {  // mantissa overflow carries into the exponent
      mant = 0;
      ++exp16;
      if (exp16 >= 0x1f) {
        return static_cast<std::uint16_t>(sign | 0x7c00u);
      }
    }
  }
  return static_cast<std::uint16_t>(sign | (static_cast<std::uint32_t>(exp16) << 10) | mant);
}


Half::Half(float value) : bits_(float_to_half_bits(value)) {}

Half::Half(double value)
    // Double -> half via float is correctly rounded for every double whose
    // magnitude is representable without double rounding hazards in our use
    // (matrix entries are bounded, and the hazard window around half-ULP
    // boundaries of binary32 cannot change the binary16 RNE result because
    // binary32 keeps 13 extra mantissa bits beyond binary16).
    : bits_(float_to_half_bits(static_cast<float>(value))) {}

Half::Half(int value) : Half(static_cast<double>(value)) {}

bool Half::is_nan() const {
  return ((bits_ & 0x7c00u) == 0x7c00u) && ((bits_ & 0x3ffu) != 0);
}

bool Half::is_inf() const { return (bits_ & 0x7fffu) == 0x7c00u; }

bool Half::is_subnormal() const {
  return ((bits_ & 0x7c00u) == 0) && ((bits_ & 0x3ffu) != 0);
}

bool Half::is_zero() const { return (bits_ & 0x7fffu) == 0; }

std::ostream& operator<<(std::ostream& os, Half h) { return os << h.to_float(); }

double half_ulp(double x) {
  x = std::fabs(x);
  if (x < 6.103515625e-05) {  // below min normal: fixed subnormal spacing
    return 5.960464477539063e-08;  // 2^-24
  }
  const int e = static_cast<int>(std::floor(std::log2(x)));
  return std::ldexp(1.0, e - 10);
}

}  // namespace pd
