#include "fp16/bfloat16.hpp"

#include <cmath>

namespace pd {

double bfloat16_ulp(double x) {
  x = std::fabs(x);
  if (x < std::ldexp(1.0, -126)) {  // below min normal: subnormal spacing
    return std::ldexp(1.0, -133);
  }
  const int e = static_cast<int>(std::floor(std::log2(x)));
  return std::ldexp(1.0, e - 7);
}

}  // namespace pd
