#pragma once
// ELLPACK and SELL-C-σ SpMV kernels — the storage formats the paper defers
// to future work (§II-C, §VII); our Ablation B measures them.
//
// Both formats store lane-contiguous data so that *thread-per-row* execution
// is fully coalesced: a warp covers 32 consecutive (ELLPACK) or chunk-
// permuted (SELL-C-σ) rows and iterates over the padded width.  ELLPACK pads
// every row to the global maximum — catastrophic for the dose matrices'
// 16k-long tail rows; SELL-C-σ pads per 32-row chunk after σ-window sorting,
// which contains the padding.

#include <algorithm>
#include <span>

#include "common/error.hpp"
#include "gpusim/launch.hpp"
#include "kernels/spmv_common.hpp"
#include "sparse/ell.hpp"
#include "sparse/sellcs.hpp"

namespace pd::kernels {

template <typename MatV, typename Acc, typename IdxT>
SpmvRun run_ell_spmv(gpusim::Gpu& gpu, const sparse::EllMatrix<MatV, IdxT>& A,
                     std::span<const Acc> x, std::span<Acc> y,
                     unsigned threads_per_block = kDefaultVectorTpb,
                     std::uint64_t schedule_seed = 0) {
  PD_CHECK_MSG(x.size() == A.num_cols, "ell: x size mismatch");
  PD_CHECK_MSG(y.size() == A.num_rows, "ell: y size mismatch");

  using namespace pd::gpusim;
  const IdxT* col_idx = A.col_idx.data();
  const MatV* values = A.values.data();
  const Acc* xp = x.data();
  Acc* yp = y.data();
  const std::uint64_t num_rows = A.num_rows;
  const std::uint64_t width = A.width;

  // Thread-per-row: one warp covers 32 consecutive rows.
  const std::uint64_t warps = (num_rows + kWarpSize - 1) / kWarpSize;
  const LaunchConfig cfg =
      LaunchConfig::warp_per_item(warps, threads_per_block, kClassicalRegs);

  SpmvRun run;
  run.config = cfg;
  run.precision = sizeof(Acc) == 8 ? FlopPrecision::kFp64 : FlopPrecision::kFp32;
  run.stats = gpu.run(
      cfg,
      [&](WarpCtx& w) {
        const std::uint64_t row0 = w.global_warp_id() * kWarpSize;
        if (row0 >= num_rows) {
          return;
        }
        const auto active = static_cast<unsigned>(
            std::min<std::uint64_t>(kWarpSize, num_rows - row0));
        const LaneMask m = first_lanes(active);

        Lanes<Acc> acc{};
        for (std::uint64_t j = 0; j < width; ++j) {
          // Column-major: slot j of rows row0..row0+31 is contiguous.
          const std::uint64_t base = j * num_rows + row0;
          const Lanes<IdxT> cols = w.load_contiguous(col_idx, base, m);
          const Lanes<MatV> vals = w.load_contiguous(values, base, m);
          Lanes<std::uint64_t> ci{};
          for (unsigned lane = 0; lane < kWarpSize; ++lane) {
            if (lane_active(m, lane)) ci[lane] = cols[lane];
          }
          const Lanes<Acc> xv = w.gather(xp, ci, m);
          for (unsigned lane = 0; lane < kWarpSize; ++lane) {
            if (lane_active(m, lane)) {
              // Padding entries multiply value 0 — harmless but costed, which
              // is precisely ELLPACK's weakness.
              acc[lane] = acc[lane] + convert_value<Acc>(vals[lane]) * xv[lane];
            }
          }
          w.count_flops(2, m);
        }
        w.store_contiguous(yp, row0, acc, m);
      },
      schedule_seed);
  return run;
}

template <typename MatV, typename Acc, typename IdxT>
SpmvRun run_sellcs_spmv(gpusim::Gpu& gpu,
                        const sparse::SellCsMatrix<MatV, IdxT>& A,
                        std::span<const Acc> x, std::span<Acc> y,
                        unsigned threads_per_block = kDefaultVectorTpb,
                        std::uint64_t schedule_seed = 0) {
  PD_CHECK_MSG(x.size() == A.num_cols, "sellcs: x size mismatch");
  PD_CHECK_MSG(y.size() == A.num_rows, "sellcs: y size mismatch");
  PD_CHECK_MSG(A.chunk_height == gpusim::kWarpSize,
               "sellcs kernel requires C == warp size");

  using namespace pd::gpusim;
  const IdxT* col_idx = A.col_idx.data();
  const MatV* values = A.values.data();
  const std::uint64_t* chunk_ptr = A.chunk_ptr.data();
  const std::uint32_t* chunk_width = A.chunk_width.data();
  const std::uint32_t* row_perm = A.row_perm.data();
  const Acc* xp = x.data();
  Acc* yp = y.data();
  const std::uint64_t num_rows = A.num_rows;
  const std::uint64_t num_chunks = A.num_chunks();

  const LaunchConfig cfg = LaunchConfig::warp_per_item(
      num_chunks, threads_per_block, kClassicalRegs);

  SpmvRun run;
  run.config = cfg;
  run.precision = sizeof(Acc) == 8 ? FlopPrecision::kFp64 : FlopPrecision::kFp32;
  run.stats = gpu.run(
      cfg,
      [&](WarpCtx& w) {
        const std::uint64_t chunk = w.global_warp_id();
        if (chunk >= num_chunks) {
          return;
        }
        const std::uint64_t base = w.load_uniform(chunk_ptr + chunk);
        const std::uint32_t width = w.load_uniform(chunk_width + chunk);
        const std::uint64_t row0 = chunk * kWarpSize;
        const auto active = static_cast<unsigned>(
            std::min<std::uint64_t>(kWarpSize, num_rows - row0));
        const LaneMask m = first_lanes(active);

        Lanes<Acc> acc{};
        for (std::uint32_t j = 0; j < width; ++j) {
          const std::uint64_t slot = base + static_cast<std::uint64_t>(j) * kWarpSize;
          const Lanes<IdxT> cols = w.load_contiguous(col_idx, slot, m);
          const Lanes<MatV> vals = w.load_contiguous(values, slot, m);
          Lanes<std::uint64_t> ci{};
          for (unsigned lane = 0; lane < kWarpSize; ++lane) {
            if (lane_active(m, lane)) ci[lane] = cols[lane];
          }
          const Lanes<Acc> xv = w.gather(xp, ci, m);
          for (unsigned lane = 0; lane < kWarpSize; ++lane) {
            if (lane_active(m, lane)) {
              acc[lane] = acc[lane] + convert_value<Acc>(vals[lane]) * xv[lane];
            }
          }
          w.count_flops(2, m);
        }

        // Scatter the results through the σ-sort permutation (row_perm maps
        // storage rows back to original rows; σ-window sorting keeps the
        // scatter targets nearly local).
        const Lanes<std::uint32_t> perm = w.load_contiguous(row_perm, row0, m);
        w.scatter(yp, perm, acc, m);
      },
      schedule_seed);
  return run;
}

}  // namespace pd::kernels
