#include "kernels/analytic.hpp"

#include <cmath>

#include "common/error.hpp"

namespace pd::kernels {

const char* to_string(KernelKind kind) {
  switch (kind) {
    case KernelKind::kHalfDouble: return "Half/Double";
    case KernelKind::kSingle: return "Single";
    case KernelKind::kDouble: return "Double";
    case KernelKind::kColIdx16: return "Half/Double+u16col";
    case KernelKind::kBaselineRs: return "GPU Baseline";
    case KernelKind::kCuSparseLike: return "cuSPARSE-like";
    case KernelKind::kGinkgoLike: return "Ginkgo-like";
  }
  return "unknown";
}

Workload Workload::from_stats(const sparse::MatrixStats& s) {
  Workload w;
  w.rows = static_cast<double>(s.rows);
  w.cols = static_cast<double>(s.cols);
  w.nnz = static_cast<double>(s.nnz);
  w.empty_row_fraction = s.empty_row_fraction;
  return w;
}

Workload Workload::from_paper(const sparse::PaperMatrixInfo& info) {
  Workload w;
  w.rows = info.rows;
  w.cols = info.cols;
  w.nnz = info.nnz;
  w.empty_row_fraction = info.empty_row_fraction;
  return w;
}

double analytic_dram_bytes(KernelKind kind, const Workload& w) {
  PD_CHECK_MSG(w.nnz > 0.0 && w.rows > 0.0 && w.cols > 0.0,
               "analytic model: degenerate workload");
  switch (kind) {
    case KernelKind::kHalfDouble:
      // The paper's §V derivation: 2B value + 4B column per nnz; 4B row_ptr
      // + 8B output per row; 8B input per column.
      return 6.0 * w.nnz + 12.0 * w.rows + 8.0 * w.cols;
    case KernelKind::kColIdx16:
      return 4.0 * w.nnz + 12.0 * w.rows + 8.0 * w.cols;
    case KernelKind::kSingle:
    case KernelKind::kCuSparseLike:
    case KernelKind::kGinkgoLike:
      // 4B value + 4B column per nnz; 4B row_ptr + 4B output; 4B input.
      return 8.0 * w.nnz + 8.0 * w.rows + 4.0 * w.cols;
    case KernelKind::kDouble:
      return 12.0 * w.nnz + 12.0 * w.rows + 8.0 * w.cols;
    case KernelKind::kBaselineRs:
      // Compressed stream: 2B delta + 2B qvalue per entry; per-column header
      // (8B ptr + 4B first row + 4B scale + 8B weight); the atomic output
      // traffic stays inside L2 (the dose vector fits), so DRAM only sees
      // one 8B write per row at the end.
      return 4.0 * w.nnz + 24.0 * w.cols + 8.0 * w.rows;
  }
  return 0.0;
}

double analytic_operational_intensity(KernelKind kind, const Workload& w) {
  return 2.0 * w.nnz / analytic_dram_bytes(kind, w);
}

gpusim::PerfInput analytic_perf_input(KernelKind kind, const Workload& w,
                                      unsigned threads_per_block) {
  gpusim::PerfInput in;
  const double dram = analytic_dram_bytes(kind, w);
  in.stats.compute.flops = static_cast<std::uint64_t>(2.0 * w.nnz);
  in.stats.traffic.dram_read_bytes =
      static_cast<std::uint64_t>(dram - 8.0 * w.rows);
  in.stats.traffic.dram_write_bytes = static_cast<std::uint64_t>(8.0 * w.rows);

  // L2-side request volume: DRAM-visible traffic plus cache-hit traffic —
  // input-vector gathers (8B per nnz, resident in L2) and, for the baseline,
  // the atomic read-modify-writes.
  double l2_bytes = dram + 8.0 * w.nnz;
  double atomics = 0.0;
  if (kind == KernelKind::kBaselineRs) {
    atomics = w.nnz;
    l2_bytes += 2.0 * 32.0 * w.nnz / 4.0;  // RMW sector traffic, ~8 ops/sector
  }
  in.stats.traffic.l2_read_sectors = static_cast<std::uint64_t>(l2_bytes / 32.0);
  in.stats.traffic.l2_atomic_ops = static_cast<std::uint64_t>(atomics);
  in.stats.traffic.sectors_requested =
      static_cast<std::uint64_t>(l2_bytes / 32.0);
  in.stats.traffic.warp_requests =
      static_cast<std::uint64_t>(3.0 * w.nnz / 32.0 + 2.0 * w.rows);
  in.stats.compute.warp_arith_instrs =
      static_cast<std::uint64_t>(2.0 * w.nnz / 32.0 + 7.0 * w.rows);

  // Launch geometry and the MLP driver depend on the work decomposition.
  unsigned regs = kVectorCsrRegs;
  double work_items = w.rows;
  double mean_work = w.mean_nnz_per_nonempty_row();
  unsigned tpb = threads_per_block != 0 ? threads_per_block : kDefaultVectorTpb;
  switch (kind) {
    case KernelKind::kBaselineRs:
      regs = kBaselineRegs;
      work_items = w.cols;
      mean_work = w.nnz / w.cols;  // long columns: MLP is not the limiter
      if (threads_per_block == 0) {
        tpb = kDefaultBaselineTpb;
      }
      break;
    case KernelKind::kCuSparseLike:
      regs = kAdaptiveRegs;
      break;
    case KernelKind::kGinkgoLike:
      regs = kClassicalRegs;
      break;
    default:
      break;
  }
  in.config = gpusim::LaunchConfig::warp_per_item(
      static_cast<std::uint64_t>(work_items), tpb, regs);
  in.precision = (kind == KernelKind::kSingle ||
                  kind == KernelKind::kCuSparseLike ||
                  kind == KernelKind::kGinkgoLike)
                     ? gpusim::FlopPrecision::kFp32
                     : gpusim::FlopPrecision::kFp64;
  in.mean_work_per_warp = mean_work;
  return in;
}

gpusim::CpuWorkload analytic_cpu_workload(const Workload& w) {
  gpusim::CpuWorkload cw;
  cw.nnz = w.nnz;
  cw.rows = w.rows;
  cw.stream_bytes = 4.0 * w.nnz + 24.0 * w.cols;
  cw.flops = 2.0 * w.nnz;
  return cw;
}

}  // namespace pd::kernels
