#pragma once
// DoseEngine — the library's high-level public API.
//
// Wraps everything a treatment-planning optimizer needs: take a dose
// deposition matrix once, choose a precision mode and device, then compute
// dose = D · spot_weights repeatedly (once per optimizer iteration).  The
// default mode is the paper's mixed half/double kernel, which satisfies both
// RayStation requirements from §II-D: double-precision vectors and bitwise
// run-to-run reproducibility.
//
// Two execution backends share the engine's storage and produce bitwise
// identical dose vectors (docs/native_backend.md):
//  * Backend::kGpusim — the simulated GPU, with traffic counters and the
//    performance model (the differential oracle);
//  * Backend::kNative — host-native scalar row kernels replicating the warp
//    kernels' exact accumulation orders, multithreaded over an nnz-balanced
//    row partition.  No counters, but much faster wall-clock — the backend
//    optimizer inner loops run on.
//
// Orthogonal to the backend axis, the engine exposes two accuracy *tiers*
// (docs/fast_tier.md):
//  * Tier::kBitwise (default) — everything above: bitwise run-to-run and
//    cross-backend reproducible, the differential oracle.
//  * Tier::kFast — SpMV executed directly on compressed storage (fused
//    rsformat decompress-SpMV or a native SELL-C-σ kernel), streaming far
//    fewer bytes than CSR.  Host-native only, verified against the bitwise
//    tier with a derived tolerance bound instead of bit equality.

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "fp16/half.hpp"
#include "gpusim/device.hpp"
#include "gpusim/launch.hpp"
#include "gpusim/perf.hpp"
#include "kernels/adaptive_csr.hpp"
#include "kernels/delta_spmv.hpp"
#include "kernels/native_backend.hpp"
#include "kernels/rowsplit_csr.hpp"
#include "kernels/spmv_common.hpp"
#include "rsformat/rsmatrix.hpp"
#include "sparse/csr.hpp"
#include "sparse/sellcs.hpp"
#include "sparse/stats.hpp"

namespace pd::kernels {

class DoseEngine {
 public:
  enum class Mode {
    kHalfDouble,  ///< 16-bit matrix, 64-bit vectors (the paper's kernel).
    kSingle,      ///< everything binary32.
    kDouble,      ///< everything binary64 (reference-quality).
  };

  enum class Backend {
    kGpusim,  ///< simulated GPU: counters + perf model, slow wall-clock.
    kNative,  ///< host-native, bitwise identical dose, no counters.
  };

  enum class Tier {
    kBitwise,  ///< default: bitwise-reproducible CSR kernels (the oracle).
    kFast,     ///< compute on compressed storage; tolerance-verified.
  };

  enum class FastFormat {
    kRsFormat,  ///< fused decompress-SpMV on the 16-bit delta streams.
    kSellCs,    ///< native SELL-C-σ kernel (float values, SIMD gathers).
    kSellCsQ,   ///< quantized SELL-C-σ (u16 values + per-column scale,
                ///< empty rows compacted out; needs <= 65536 columns).
    kAuto,      ///< resolve at set_tier time: the tuned format when a
                ///< TunedConfig was applied (kernels/tuner.hpp), else
                ///< kRsFormat.  fast_format() reports the resolved format.
  };

  /// Accuracy contract for compute_delta / apply_delta
  /// (docs/delta_engine.md) — the delta analogue of the tier axis.
  enum class DeltaMode {
    kBitwise,  ///< recompute affected rows in the bitwise tier's order;
               ///< result bitwise equal to a full compute of the new weights.
    kFast,     ///< scatter-add D[:,j]·Δw_j; verified by a derived bound.
  };

  /// What the most recent delta update actually touched.
  struct DeltaRun {
    DeltaMode mode = DeltaMode::kBitwise;
    std::uint64_t changed_cols = 0;  ///< bitwise-changed weight entries.
    std::uint64_t delta_nnz = 0;     ///< nnz of the changed columns (|Δw| work).
    std::uint64_t touched_rows = 0;  ///< dose rows written.
  };

  using Family = SpmvFamily;

  /// Takes ownership of the (double-precision) dose deposition matrix and
  /// prepares the storage for `mode` on a simulated `device`.  `family`
  /// selects the SpMV kernel family (host-side analysis for rowsplit /
  /// adaptive runs here); `backend` selects who executes it.
  DoseEngine(sparse::CsrF64 matrix, gpusim::DeviceSpec device,
             Mode mode = Mode::kHalfDouble,
             unsigned threads_per_block = kDefaultVectorTpb,
             Family family = Family::kVector,
             Backend backend = Backend::kGpusim);

  DoseEngine(const DoseEngine&) = delete;
  DoseEngine& operator=(const DoseEngine&) = delete;
  DoseEngine(DoseEngine&&) = default;
  ~DoseEngine();

  std::uint64_t num_voxels() const { return stats_.rows; }
  std::uint64_t num_spots() const { return stats_.cols; }
  const sparse::MatrixStats& stats() const { return stats_; }
  Mode mode() const { return mode_; }
  Family family() const { return family_; }

  Backend backend() const { return backend_; }
  /// Switch backends between computes; dose bits do not change.
  void set_backend(Backend backend) { backend_ = backend; }

  /// Thread count for the native backend (default 1; 0 = all hardware
  /// threads).  Bitwise-tier results are bitwise identical for every thread
  /// count; fast-tier results are run-to-run deterministic per thread count
  /// (docs/fast_tier.md).
  void set_native_threads(unsigned threads) { native_.set_threads(threads); }
  unsigned native_threads() const { return native_.requested_threads(); }

  /// Select the accuracy tier for subsequent computes.  Switching to
  /// Tier::kFast builds the compressed storage for `format` on first use
  /// (cached thereafter; throws pd::Error for kRsFormat if the stored matrix
  /// has negative values).  The fast tier executes host-native regardless of
  /// backend() — there is no simulated fast kernel, so gpusim counters and
  /// simcheck do not apply to it.  Switching tiers never perturbs the
  /// bitwise tier's bits.
  void set_tier(Tier tier, FastFormat format = FastFormat::kRsFormat);
  Tier tier() const { return tier_; }
  FastFormat fast_format() const { return fast_format_; }

  /// SELL-C-σ geometry for subsequently built fast containers (both the
  /// float and the quantized one).  Changing it drops the cached SELL
  /// containers so the next set_tier rebuilds them; the rsformat container
  /// and every bitwise-tier structure are untouched.  `sigma == 0` means
  /// "all rows" (resolved to the row count rounded up to a multiple of C);
  /// otherwise σ must be a positive multiple of C.
  void set_fast_sell_config(std::uint32_t chunk_height, std::uint32_t sigma);
  std::uint32_t fast_sell_c() const { return fast_sell_c_; }
  std::uint32_t fast_sell_sigma() const { return fast_sell_sigma_; }

  /// Thread count for *fast-tier* computes only (same semantics as
  /// set_native_threads; 0 = all hardware threads).  Until called, the fast
  /// tier follows set_native_threads.  The bitwise tier never reads this —
  /// a tuned fast configuration cannot perturb the oracle.
  void set_fast_threads(unsigned threads);
  /// Back to "fast tier follows set_native_threads".
  void clear_fast_threads() { fast_threads_set_ = false; }
  bool fast_threads_overridden() const { return fast_threads_set_; }
  unsigned fast_threads() const { return fast_native_.requested_threads(); }

  /// What FastFormat::kAuto resolves to (kernels/tuner.hpp applies the
  /// tuned format here).  Must be a concrete format, not kAuto.
  void set_auto_fast_format(FastFormat format);
  FastFormat auto_fast_format() const { return auto_fast_format_; }

  /// Fast-tier storage accessors (built by set_tier; throw if absent).
  const rsformat::RsMatrix& fast_rs_matrix() const;
  const sparse::SellCsMatrix<float>& fast_sell_matrix() const;
  const sparse::SellCsQMatrix& fast_sellq_matrix() const;

  /// The matrix the selected mode actually computes with, widened to double
  /// (exact: half and float embed in double).  This is what the fast tier
  /// compresses and what the tolerance bound is derived against.
  sparse::CsrF64 stored_matrix_as_double() const;

  /// Compute the dose vector for the given spot weights.  `schedule_seed`
  /// permutes GPU block scheduling; the result is independent of it (that is
  /// the reproducibility guarantee — asserted in tests).
  std::vector<double> compute(std::span<const double> spot_weights,
                              std::uint64_t schedule_seed = 0);

  /// Compute `batch` dose vectors for `batch` weight vectors stored
  /// back-to-back in `weights` (batch × num_spots doubles), traversing the
  /// matrix once for the whole batch where the family supports it (vector
  /// family on both backends; other families fall back to per-vector
  /// launches).  Column j is bitwise identical to compute(weights_j).
  std::vector<std::vector<double>> compute_batch(
      std::span<const double> weights, std::size_t batch,
      std::uint64_t schedule_seed = 0);

  /// Update `dose` (a dose vector previously computed for `base_weights` by
  /// the bitwise tier) in place to the dose for `new_weights`, touching only
  /// what the weight change reaches (docs/delta_engine.md).  Takes the full
  /// new weight vector, not Δw: changed columns are detected by *bit*
  /// comparison, which is what makes the kBitwise contract exact.
  ///
  ///  * DeltaMode::kBitwise — recomputes exactly the rows reachable from the
  ///    changed columns, replaying the engine's per-row reduction order; the
  ///    updated dose is bitwise identical to compute(new_weights).  Executes
  ///    host-native regardless of backend() (like the fast tier, there is no
  ///    simulated delta kernel); bits are invariant across thread counts.
  ///  * DeltaMode::kFast — dose += Σ_j D[:,j]·Δw_j over the changed columns;
  ///    cost ∝ nnz of the changed columns, verified by a derived per-row
  ///    bound (tests/test_delta_engine.cpp).
  ///
  /// Builds the CSC sidecar on first use (cached for the engine's lifetime).
  void apply_delta(std::span<double> dose, std::span<const double> base_weights,
                   std::span<const double> new_weights,
                   DeltaMode mode = DeltaMode::kBitwise);

  /// Copying form: returns the new dose, `base_dose` untouched.
  std::vector<double> compute_delta(std::span<const double> base_dose,
                                    std::span<const double> base_weights,
                                    std::span<const double> new_weights,
                                    DeltaMode mode = DeltaMode::kBitwise);

  /// The column-major sidecar (built lazily on first access).
  const CscSidecar& csc_sidecar();

  /// Touch counts of the most recent apply_delta / compute_delta.
  const DeltaRun& last_delta() const { return last_delta_; }

  /// Select how the simulated GPU executes launches (serial, trace-replay,
  /// or functional-only — see gpusim/trace.hpp).  Dose values are identical
  /// in every mode; traffic counters are zero under functional-only.
  void set_engine_options(const gpusim::EngineOptions& opts);
  const gpusim::EngineOptions& engine_options() const;

  /// Run subsequent gpusim computes under the simcheck analyzer
  /// (docs/simcheck.md).  Dose bits and counters are unchanged; findings
  /// accumulate in check_report().  Also enabled automatically when the
  /// PROTONDOSE_SIMCHECK environment variable is set at construction.
  /// Checking never applies to the native backend (no simulation there).
  void enable_check(
      const gpusim::CheckConfig& cfg = gpusim::CheckConfig::all());
  void disable_check();
  bool check_enabled() const;
  const gpusim::CheckReport& check_report() const;

  /// Counters and launch geometry of the most recent gpusim compute().
  /// Native computes record no counters, so this throws until a gpusim
  /// launch has run.
  const SpmvRun& last_run() const;

  /// Modeled performance of the most recent gpusim compute() on this device.
  gpusim::PerfEstimate last_estimate() const;

 private:
  template <typename MatV, typename Acc>
  void execute(const sparse::CsrMatrix<MatV>& A, std::span<const Acc> x,
               std::span<Acc> y, std::uint64_t schedule_seed);
  template <typename MatV, typename Acc>
  void execute_batch(const sparse::CsrMatrix<MatV>& A,
                     std::span<const Acc* const> xs, std::span<Acc* const> ys,
                     std::uint64_t schedule_seed);
  void ensure_fast_storage(FastFormat format);
  void compute_fast(std::span<const double> x, std::span<double> y);
  void ensure_delta_context();
  template <typename MatV, typename Acc>
  void delta_recompute_rows(const sparse::CsrMatrix<MatV>& A,
                            std::span<const Acc> x,
                            std::span<const std::uint32_t> rows,
                            std::span<double> dose);

  Mode mode_;
  Family family_;
  Backend backend_;
  unsigned threads_per_block_;
  sparse::MatrixStats stats_;
  sparse::CsrMatrix<pd::Half> half_matrix_;  ///< kHalfDouble storage.
  sparse::CsrF32 single_matrix_;             ///< kSingle storage.
  sparse::CsrF64 double_matrix_;             ///< kDouble storage.
  Tier tier_ = Tier::kBitwise;
  FastFormat fast_format_ = FastFormat::kRsFormat;
  FastFormat auto_fast_format_ = FastFormat::kRsFormat;
  std::uint32_t fast_sell_c_ = 32;
  std::uint32_t fast_sell_sigma_ = 1024;
  /// Fast-tier containers, built lazily from stored_matrix_as_double() and
  /// cached until the geometry changes (unique_ptr doubles as "built" flag).
  std::unique_ptr<rsformat::RsMatrix> rs_matrix_;
  std::unique_ptr<sparse::SellCsMatrix<float>> sell_matrix_;
  std::unique_ptr<sparse::SellCsQMatrix> sellq_matrix_;
  RowSplitPlan rowsplit_plan_;               ///< kRowSplit analysis.
  std::vector<AdaptiveWorkItem> adaptive_worklist_;  ///< kAdaptive analysis.
  /// CSC sidecar + row→work-item maps + scratch for the delta path, built
  /// lazily on the first apply_delta / csc_sidecar() and cached.
  std::unique_ptr<DeltaContext> delta_;
  DeltaRun last_delta_;
  std::unique_ptr<gpusim::Gpu> gpu_;
  NativeExecutor native_;
  /// Fast-tier executor, used instead of native_ once set_fast_threads ran
  /// (a tuned thread count must never leak into the bitwise tier).
  NativeExecutor fast_native_;
  bool fast_threads_set_ = false;
  SpmvRun last_run_;
  bool has_run_ = false;
};

}  // namespace pd::kernels
