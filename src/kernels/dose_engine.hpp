#pragma once
// DoseEngine — the library's high-level public API.
//
// Wraps everything a treatment-planning optimizer needs: take a dose
// deposition matrix once, choose a precision mode and device, then compute
// dose = D · spot_weights repeatedly (once per optimizer iteration).  The
// default mode is the paper's mixed half/double kernel, which satisfies both
// RayStation requirements from §II-D: double-precision vectors and bitwise
// run-to-run reproducibility.
//
// Two execution backends share the engine's storage and produce bitwise
// identical dose vectors (docs/native_backend.md):
//  * Backend::kGpusim — the simulated GPU, with traffic counters and the
//    performance model (the differential oracle);
//  * Backend::kNative — host-native scalar row kernels replicating the warp
//    kernels' exact accumulation orders, multithreaded over an nnz-balanced
//    row partition.  No counters, but much faster wall-clock — the backend
//    optimizer inner loops run on.

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "fp16/half.hpp"
#include "gpusim/device.hpp"
#include "gpusim/launch.hpp"
#include "gpusim/perf.hpp"
#include "kernels/adaptive_csr.hpp"
#include "kernels/native_backend.hpp"
#include "kernels/rowsplit_csr.hpp"
#include "kernels/spmv_common.hpp"
#include "sparse/csr.hpp"
#include "sparse/stats.hpp"

namespace pd::kernels {

class DoseEngine {
 public:
  enum class Mode {
    kHalfDouble,  ///< 16-bit matrix, 64-bit vectors (the paper's kernel).
    kSingle,      ///< everything binary32.
    kDouble,      ///< everything binary64 (reference-quality).
  };

  enum class Backend {
    kGpusim,  ///< simulated GPU: counters + perf model, slow wall-clock.
    kNative,  ///< host-native, bitwise identical dose, no counters.
  };

  using Family = SpmvFamily;

  /// Takes ownership of the (double-precision) dose deposition matrix and
  /// prepares the storage for `mode` on a simulated `device`.  `family`
  /// selects the SpMV kernel family (host-side analysis for rowsplit /
  /// adaptive runs here); `backend` selects who executes it.
  DoseEngine(sparse::CsrF64 matrix, gpusim::DeviceSpec device,
             Mode mode = Mode::kHalfDouble,
             unsigned threads_per_block = kDefaultVectorTpb,
             Family family = Family::kVector,
             Backend backend = Backend::kGpusim);

  DoseEngine(const DoseEngine&) = delete;
  DoseEngine& operator=(const DoseEngine&) = delete;
  DoseEngine(DoseEngine&&) = default;
  ~DoseEngine();

  std::uint64_t num_voxels() const { return stats_.rows; }
  std::uint64_t num_spots() const { return stats_.cols; }
  const sparse::MatrixStats& stats() const { return stats_; }
  Mode mode() const { return mode_; }
  Family family() const { return family_; }

  Backend backend() const { return backend_; }
  /// Switch backends between computes; dose bits do not change.
  void set_backend(Backend backend) { backend_ = backend; }

  /// Thread count for the native backend (default 1; 0 = all hardware
  /// threads).  Results are bitwise identical for every thread count.
  void set_native_threads(unsigned threads) { native_.set_threads(threads); }
  unsigned native_threads() const { return native_.requested_threads(); }

  /// Compute the dose vector for the given spot weights.  `schedule_seed`
  /// permutes GPU block scheduling; the result is independent of it (that is
  /// the reproducibility guarantee — asserted in tests).
  std::vector<double> compute(std::span<const double> spot_weights,
                              std::uint64_t schedule_seed = 0);

  /// Compute `batch` dose vectors for `batch` weight vectors stored
  /// back-to-back in `weights` (batch × num_spots doubles), traversing the
  /// matrix once for the whole batch where the family supports it (vector
  /// family on both backends; other families fall back to per-vector
  /// launches).  Column j is bitwise identical to compute(weights_j).
  std::vector<std::vector<double>> compute_batch(
      std::span<const double> weights, std::size_t batch,
      std::uint64_t schedule_seed = 0);

  /// Select how the simulated GPU executes launches (serial, trace-replay,
  /// or functional-only — see gpusim/trace.hpp).  Dose values are identical
  /// in every mode; traffic counters are zero under functional-only.
  void set_engine_options(const gpusim::EngineOptions& opts);
  const gpusim::EngineOptions& engine_options() const;

  /// Run subsequent gpusim computes under the simcheck analyzer
  /// (docs/simcheck.md).  Dose bits and counters are unchanged; findings
  /// accumulate in check_report().  Also enabled automatically when the
  /// PROTONDOSE_SIMCHECK environment variable is set at construction.
  /// Checking never applies to the native backend (no simulation there).
  void enable_check(
      const gpusim::CheckConfig& cfg = gpusim::CheckConfig::all());
  void disable_check();
  bool check_enabled() const;
  const gpusim::CheckReport& check_report() const;

  /// Counters and launch geometry of the most recent gpusim compute().
  /// Native computes record no counters, so this throws until a gpusim
  /// launch has run.
  const SpmvRun& last_run() const;

  /// Modeled performance of the most recent gpusim compute() on this device.
  gpusim::PerfEstimate last_estimate() const;

 private:
  template <typename MatV, typename Acc>
  void execute(const sparse::CsrMatrix<MatV>& A, std::span<const Acc> x,
               std::span<Acc> y, std::uint64_t schedule_seed);
  template <typename MatV, typename Acc>
  void execute_batch(const sparse::CsrMatrix<MatV>& A,
                     std::span<const Acc* const> xs, std::span<Acc* const> ys,
                     std::uint64_t schedule_seed);

  Mode mode_;
  Family family_;
  Backend backend_;
  unsigned threads_per_block_;
  sparse::MatrixStats stats_;
  sparse::CsrMatrix<pd::Half> half_matrix_;  ///< kHalfDouble storage.
  sparse::CsrF32 single_matrix_;             ///< kSingle storage.
  sparse::CsrF64 double_matrix_;             ///< kDouble storage.
  RowSplitPlan rowsplit_plan_;               ///< kRowSplit analysis.
  std::vector<AdaptiveWorkItem> adaptive_worklist_;  ///< kAdaptive analysis.
  std::unique_ptr<gpusim::Gpu> gpu_;
  NativeExecutor native_;
  SpmvRun last_run_;
  bool has_run_ = false;
};

}  // namespace pd::kernels
