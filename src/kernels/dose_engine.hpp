#pragma once
// DoseEngine — the library's high-level public API.
//
// Wraps everything a treatment-planning optimizer needs: take a dose
// deposition matrix once, choose a precision mode and device, then compute
// dose = D · spot_weights repeatedly (once per optimizer iteration).  The
// default mode is the paper's mixed half/double kernel, which satisfies both
// RayStation requirements from §II-D: double-precision vectors and bitwise
// run-to-run reproducibility.

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "fp16/half.hpp"
#include "gpusim/device.hpp"
#include "gpusim/launch.hpp"
#include "gpusim/perf.hpp"
#include "kernels/spmv_common.hpp"
#include "sparse/csr.hpp"
#include "sparse/stats.hpp"

namespace pd::kernels {

class DoseEngine {
 public:
  enum class Mode {
    kHalfDouble,  ///< 16-bit matrix, 64-bit vectors (the paper's kernel).
    kSingle,      ///< everything binary32.
    kDouble,      ///< everything binary64 (reference-quality).
  };

  /// Takes ownership of the (double-precision) dose deposition matrix and
  /// prepares the storage for `mode` on a simulated `device`.
  DoseEngine(sparse::CsrF64 matrix, gpusim::DeviceSpec device,
             Mode mode = Mode::kHalfDouble,
             unsigned threads_per_block = kDefaultVectorTpb);

  DoseEngine(const DoseEngine&) = delete;
  DoseEngine& operator=(const DoseEngine&) = delete;
  DoseEngine(DoseEngine&&) = default;
  ~DoseEngine();

  std::uint64_t num_voxels() const { return stats_.rows; }
  std::uint64_t num_spots() const { return stats_.cols; }
  const sparse::MatrixStats& stats() const { return stats_; }
  Mode mode() const { return mode_; }

  /// Compute the dose vector for the given spot weights.  `schedule_seed`
  /// permutes GPU block scheduling; the result is independent of it (that is
  /// the reproducibility guarantee — asserted in tests).
  std::vector<double> compute(std::span<const double> spot_weights,
                              std::uint64_t schedule_seed = 0);

  /// Select how the simulated GPU executes launches (serial, trace-replay,
  /// or functional-only — see gpusim/trace.hpp).  Dose values are identical
  /// in every mode; traffic counters are zero under functional-only.
  void set_engine_options(const gpusim::EngineOptions& opts);
  const gpusim::EngineOptions& engine_options() const;

  /// Counters and launch geometry of the most recent compute().
  const SpmvRun& last_run() const;

  /// Modeled performance of the most recent compute() on this device.
  gpusim::PerfEstimate last_estimate() const;

 private:
  Mode mode_;
  unsigned threads_per_block_;
  sparse::MatrixStats stats_;
  sparse::CsrMatrix<pd::Half> half_matrix_;  ///< kHalfDouble storage.
  sparse::CsrF32 single_matrix_;             ///< kSingle storage.
  sparse::CsrF64 double_matrix_;             ///< kDouble storage.
  std::unique_ptr<gpusim::Gpu> gpu_;
  SpmvRun last_run_;
  bool has_run_ = false;
};

}  // namespace pd::kernels
