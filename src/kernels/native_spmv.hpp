#pragma once
// Native host row kernels, bitwise-faithful to the simulated warp kernels.
//
// The gpusim kernels execute real arithmetic — the simulator only adds
// counter bookkeeping, per-lane address vectors, and mask checks around it.
// These functions strip that scaffolding and keep *exactly* the arithmetic:
// the same half/single/double conversion points (convert_value), the same
// 32-lane strided partial sums accumulated in the same chunk order, and the
// same fixed reduction trees (warp_reduce_add's shfl_down butterfly,
// warp_segmented_inclusive_sum's segmented Hillis-Steele).  DoseEngine's
// Backend::kNative runs these and is asserted bitwise identical to
// Backend::kGpusim for every family x precision mode
// (tests/test_native_backend.cpp).
//
// Short rows additionally take a fast path that skips the lanes the kernel
// never touches.  This is bitwise-safe, not approximate: untouched lanes
// hold exactly +0.0, x + (+0.0) reproduces x bitwise for every value an
// accumulator can reach (lanes start at +0.0, and under round-to-nearest an
// addition never yields -0.0 unless both operands are -0.0, so partial sums
// are never -0.0), and in both reduction trees lane i depends only on lanes
// <= i — so arithmetic on lanes that are never read can be dropped outright.
//
// Everything here is per-row/per-item and stateless: callers own the
// partitioning and threading (native_backend.hpp).  Rows write disjoint
// outputs, so any partition of the row space yields identical bits.

#include <algorithm>
#include <cstdint>
#include <type_traits>

#include "fp16/half.hpp"
#include "gpusim/lanes.hpp"
#include "kernels/adaptive_csr.hpp"
#include "kernels/rowsplit_csr.hpp"
#include "kernels/spmv_common.hpp"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#include <immintrin.h>
#define PD_NATIVE_F16C_DISPATCH 1
#endif

namespace pd::kernels {

#if defined(PD_NATIVE_F16C_DISPATCH)
/// Hardware half->float conversion (VCVTPH2PS).  IEEE-754 defines a unique
/// binary32 image for every binary16 value and both this instruction and
/// half_bits_to_float implement exactly that mapping (subnormals included;
/// NaN payloads widen by the same 13-bit shift), so the fast path is
/// bitwise-identical, not approximate.
__attribute__((target("f16c"))) inline void half_chunk_to_float_f16c(
    const pd::Half* v, unsigned n, float* out) {
  unsigned i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128i h =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(v + i));
    _mm256_storeu_ps(out + i, _mm256_cvtph_ps(h));
  }
  for (; i < n; ++i) {
    out[i] = v[i].to_float();
  }
}

inline const bool kHaveF16c = __builtin_cpu_supports("f16c") != 0;
#endif

/// Convert a chunk of matrix halves to binary32 (exact widening), using the
/// hardware converter when the CPU has one.
inline void half_chunk_to_float(const pd::Half* v, unsigned n, float* out) {
#if defined(PD_NATIVE_F16C_DISPATCH)
  if (kHaveF16c) {
    half_chunk_to_float_f16c(v, n, out);
    return;
  }
#endif
  for (unsigned i = 0; i < n; ++i) {
    out[i] = v[i].to_float();
  }
}

/// Stage a chunk (n <= 32) of matrix values into Acc precision.  For Half
/// this funnels through the (possibly hardware) exact widening above;
/// identical to calling convert_value per element.
template <typename Acc, typename MatV>
inline void convert_chunk(const MatV* v, unsigned n, Acc* out) {
  if constexpr (std::is_same_v<MatV, pd::Half>) {
    float f[gpusim::kWarpSize];
    half_chunk_to_float(v, n, f);
    for (unsigned i = 0; i < n; ++i) {
      out[i] = static_cast<Acc>(f[i]);
    }
  } else {
    for (unsigned i = 0; i < n; ++i) {
      out[i] = convert_value<Acc>(v[i]);
    }
  }
}

/// warp_reduce_add over a warp whose lanes [n, 32) are exactly +0.0: runs
/// the same butterfly passes but skips the additions whose right operand is
/// one of those zero lanes (a bitwise no-op, see the header comment).
/// `tmp[0..n-1]` is mutated in place; lanes >= n are never read.  n >= 1.
template <typename Acc>
inline Acc native_reduce_tail(Acc* tmp, unsigned n) {
  for (unsigned offset = gpusim::kWarpSize / 2; offset > 0; offset /= 2) {
    for (unsigned i = 0; i < offset && i + offset < n; ++i) {
      tmp[i] = tmp[i] + tmp[i + offset];
    }
    n = std::min(n, offset);
  }
  return tmp[0];
}

/// One vector-kernel row: lanes stride the row's non-zeros in chunks of 32
/// (vector_csr.hpp's accumulation loop), then the fixed butterfly reduction.
/// Rows of <= 32 non-zeros (the dose-matrix common case, Figure 2) skip the
/// 32-lane zero-fill and reduce only the lanes that were written.
template <typename Acc, typename MatV, typename IdxT>
inline Acc native_row_product(const MatV* values, const IdxT* col_idx,
                              const Acc* x, std::uint64_t start,
                              std::uint64_t end) {
  const std::uint64_t nnz = end - start;
  if (nnz <= gpusim::kWarpSize) {
    if (nnz == 0) {
      return Acc{};
    }
    const auto n = static_cast<unsigned>(nnz);
    Acc conv[gpusim::kWarpSize];
    convert_chunk(values + start, n, conv);
    Acc tmp[gpusim::kWarpSize];  // lanes >= n stay unread
    for (unsigned lane = 0; lane < n; ++lane) {
      // Acc{} + ... is the kernel's first accumulation into the zeroed lane
      // (it differs from the bare product only for a -0.0 product).
      tmp[lane] = Acc{} + conv[lane] * x[col_idx[start + lane]];
    }
    return native_reduce_tail(tmp, n);
  }
  gpusim::Lanes<Acc> acc{};
  Acc conv[gpusim::kWarpSize];
  const std::uint64_t tail =
      start + (nnz & ~static_cast<std::uint64_t>(gpusim::kWarpSize - 1));
  for (std::uint64_t base = start; base < tail; base += gpusim::kWarpSize) {
    convert_chunk(values + base, gpusim::kWarpSize, conv);
    for (unsigned lane = 0; lane < gpusim::kWarpSize; ++lane) {
      acc[lane] = acc[lane] + conv[lane] * x[col_idx[base + lane]];
    }
  }
  const auto rem = static_cast<unsigned>(nnz & (gpusim::kWarpSize - 1));
  if (rem != 0) {
    convert_chunk(values + tail, rem, conv);
    for (unsigned lane = 0; lane < rem; ++lane) {
      acc[lane] = acc[lane] + conv[lane] * x[col_idx[tail + lane]];
    }
  }
  // All 32 lanes are live, so warp_reduce_add's masked zero-fill copy is an
  // identity; run its tree in place.
  return native_reduce_tail(&acc[0], gpusim::kWarpSize);
}

/// Batched (multi-RHS) form of native_row_product: one pass over the row's
/// non-zeros feeds all `batch` accumulators, matching multivector_csr.hpp.
/// Each column's per-lane sums and reduction are those of the single-vector
/// kernel, so every batch column is bitwise identical to a looped compute.
/// `x_int` holds the batch vectors interleaved column-major — vector j's
/// entry for matrix column c at `x_int[c*batch + j]` — so one non-zero's
/// `batch` reads are contiguous.  `acc` is caller-provided scratch of
/// `batch` lane registers (lanes this row does not touch are never read, so
/// stale contents are fine); `out` receives the `batch` row results.
template <typename Acc, typename MatV, typename IdxT>
inline void native_row_product_batch(const MatV* values, const IdxT* col_idx,
                                     const Acc* x_int, std::size_t batch,
                                     std::uint64_t start, std::uint64_t end,
                                     gpusim::Lanes<Acc>* acc, Acc* out) {
  const std::uint64_t nnz = end - start;
  if (nnz <= gpusim::kWarpSize) {
    if (nnz == 0) {
      for (std::size_t j = 0; j < batch; ++j) {
        out[j] = Acc{};
      }
      return;
    }
    const auto n = static_cast<unsigned>(nnz);
    Acc conv[gpusim::kWarpSize];
    convert_chunk(values + start, n, conv);
    for (unsigned lane = 0; lane < n; ++lane) {
      const Acc v = conv[lane];
      const Acc* xc = x_int + static_cast<std::size_t>(col_idx[start + lane]) * batch;
      for (std::size_t j = 0; j < batch; ++j) {
        acc[j][lane] = Acc{} + v * xc[j];
      }
    }
    for (std::size_t j = 0; j < batch; ++j) {
      out[j] = native_reduce_tail(&acc[j][0], n);
    }
    return;
  }
  for (std::size_t j = 0; j < batch; ++j) {
    acc[j] = gpusim::Lanes<Acc>{};
  }
  Acc conv[gpusim::kWarpSize];
  for (std::uint64_t base = start; base < end; base += gpusim::kWarpSize) {
    const auto remaining = static_cast<unsigned>(
        std::min<std::uint64_t>(gpusim::kWarpSize, end - base));
    convert_chunk(values + base, remaining, conv);
    for (unsigned lane = 0; lane < remaining; ++lane) {
      const Acc v = conv[lane];
      const Acc* xc = x_int + static_cast<std::size_t>(col_idx[base + lane]) * batch;
      for (std::size_t j = 0; j < batch; ++j) {
        acc[j][lane] = acc[j][lane] + v * xc[j];
      }
    }
  }
  for (std::size_t j = 0; j < batch; ++j) {
    out[j] = native_reduce_tail(&acc[j][0], gpusim::kWarpSize);
  }
}

/// One classical-kernel row: element i of the row lands in sub-accumulator
/// i % sub in ascending order (classical_csr.hpp's iter loop), then the
/// kernel's in-register subwarp tree.  `sub` must be the launch-wide
/// classical_subwarp_size(A.nnz(), A.num_rows) — it is a property of the
/// whole matrix, not of the row — and is always a power of two, so the
/// modulo is a mask.
template <typename Acc, typename MatV, typename IdxT>
inline Acc native_classical_row(const MatV* values, const IdxT* col_idx,
                                const Acc* x, std::uint32_t start,
                                std::uint32_t end, unsigned sub) {
  Acc partial[gpusim::kWarpSize] = {};
  const unsigned mask = sub - 1;
  for (std::uint32_t i = 0; i < end - start; ++i) {
    const std::uint32_t k = start + i;
    const unsigned o = i & mask;
    partial[o] = partial[o] + convert_value<Acc>(values[k]) * x[col_idx[k]];
  }
  for (unsigned offset = sub / 2; offset > 0; offset /= 2) {
    for (unsigned i = 0; i < offset; ++i) {
      partial[i] += partial[i + offset];
    }
  }
  return partial[0];
}

/// warp_segmented_inclusive_sum restricted to the first `count` lanes: the
/// Hillis-Steele passes give lane i a value that depends only on lanes <= i,
/// so lanes >= count (inactive in the kernel, never read by the caller) are
/// simply not computed.  In-place: the descending walk reads out[i - d]
/// before that slot is written in the same pass, exactly the `prev` copy the
/// kernel keeps.
template <typename Acc>
inline void native_segmented_inclusive_sum(Acc* out, gpusim::LaneMask heads,
                                           unsigned count) {
  unsigned seg[gpusim::kWarpSize];
  unsigned current = 0;
  for (unsigned i = 0; i < count; ++i) {
    if (gpusim::lane_active(heads, i)) {
      current = i;
    }
    seg[i] = current;
  }
  for (unsigned d = 1; d < count; d *= 2) {
    for (unsigned i = count; i-- > d;) {
      if (seg[i] <= i - d) {
        out[i] = out[i - d] + out[i];
      }
    }
  }
}

/// One adaptive work item: long rows take the vector path; short-row groups
/// form the per-lane products and reduce them with the same segmented
/// inclusive sum (and the same head-flag construction) as the kernel.
template <typename Acc, typename MatV, typename IdxT>
inline void native_adaptive_item(const std::uint32_t* row_ptr,
                                 const MatV* values, const IdxT* col_idx,
                                 const Acc* x, Acc* y,
                                 const AdaptiveWorkItem& item) {
  if (item.long_row != 0) {
    const std::uint32_t row = item.row_begin;
    y[row] = native_row_product(values, col_idx, x, row_ptr[row],
                                row_ptr[row + 1]);
    return;
  }
  const std::uint32_t start = row_ptr[item.row_begin];
  const std::uint32_t end = row_ptr[item.row_end];
  const unsigned count = end - start;

  Acc incl[gpusim::kWarpSize];  // lanes >= count stay unread
  for (unsigned lane = 0; lane < count; ++lane) {
    const std::uint32_t k = start + lane;
    incl[lane] = convert_value<Acc>(values[k]) * x[col_idx[k]];
  }
  gpusim::LaneMask heads = 0;
  for (std::uint32_t r = item.row_begin; r < item.row_end; ++r) {
    const std::uint32_t rs = row_ptr[r];
    if (rs < end && rs >= start && row_ptr[r + 1] > rs) {
      heads |= (gpusim::LaneMask{1} << (rs - start));
    }
  }
  native_segmented_inclusive_sum(incl, heads, count);
  for (std::uint32_t r = item.row_begin; r < item.row_end; ++r) {
    const std::uint32_t rs = row_ptr[r];
    const std::uint32_t re = row_ptr[r + 1];
    y[r] = (re > rs) ? incl[re - 1 - start] : Acc{};
  }
}

/// Rowsplit phase 1: one chunk's partial sum, written to y (unsplit rows) or
/// to the chunk's fixed partial slot.  The chunk sum is the vector row loop
/// over [item.begin, item.end).
template <typename Acc, typename MatV, typename IdxT>
inline void native_rowsplit_item(const MatV* values, const IdxT* col_idx,
                                 const Acc* x, Acc* y, Acc* partials,
                                 const RowSplitPlan::WorkItem& item) {
  const Acc total =
      native_row_product(values, col_idx, x, item.begin, item.end);
  if (item.partial_slot < 0) {
    y[item.row] = total;
  } else {
    partials[item.partial_slot] = total;
  }
}

/// Rowsplit phase 2: fold one split row's partial slots with the same
/// 32-strided accumulation + butterfly as the kernel's second launch.
template <typename Acc>
inline Acc native_rowsplit_fold(const Acc* partials,
                                const RowSplitPlan::SplitRow& split) {
  const std::uint64_t first = split.first_slot;
  const std::uint64_t last = first + split.num_slots;
  if (split.num_slots <= gpusim::kWarpSize) {
    const auto n = static_cast<unsigned>(split.num_slots);
    Acc tmp[gpusim::kWarpSize];  // lanes >= n stay unread
    for (unsigned lane = 0; lane < n; ++lane) {
      tmp[lane] = Acc{} + partials[first + lane];
    }
    return native_reduce_tail(tmp, n);
  }
  gpusim::Lanes<Acc> acc{};
  for (std::uint64_t base = first; base < last; base += gpusim::kWarpSize) {
    const auto remaining = static_cast<unsigned>(
        std::min<std::uint64_t>(gpusim::kWarpSize, last - base));
    for (unsigned lane = 0; lane < remaining; ++lane) {
      acc[lane] = acc[lane] + partials[base + lane];
    }
  }
  return native_reduce_tail(&acc[0], gpusim::kWarpSize);
}

}  // namespace pd::kernels
