#pragma once
// Native host row kernels, bitwise-faithful to the simulated warp kernels.
//
// The gpusim kernels execute real arithmetic — the simulator only adds
// counter bookkeeping, per-lane address vectors, and mask checks around it.
// These functions strip that scaffolding and keep *exactly* the arithmetic:
// the same half/single/double conversion points (convert_value), the same
// 32-lane strided partial sums accumulated in the same chunk order, and the
// same fixed reduction trees (warp_reduce_add's shfl_down butterfly,
// warp_segmented_inclusive_sum's segmented Hillis-Steele).  DoseEngine's
// Backend::kNative runs these and is asserted bitwise identical to
// Backend::kGpusim for every family x precision mode
// (tests/test_native_backend.cpp).
//
// Short rows additionally take a fast path that skips the lanes the kernel
// never touches.  This is bitwise-safe, not approximate: untouched lanes
// hold exactly +0.0, x + (+0.0) reproduces x bitwise for every value an
// accumulator can reach (lanes start at +0.0, and under round-to-nearest an
// addition never yields -0.0 unless both operands are -0.0, so partial sums
// are never -0.0), and in both reduction trees lane i depends only on lanes
// <= i — so arithmetic on lanes that are never read can be dropped outright.
//
// Everything here is per-row/per-item and stateless: callers own the
// partitioning and threading (native_backend.hpp).  Rows write disjoint
// outputs, so any partition of the row space yields identical bits.

#include <algorithm>
#include <cstdint>
#include <type_traits>

#include "fp16/half.hpp"
#include "gpusim/lanes.hpp"
#include "kernels/adaptive_csr.hpp"
#include "kernels/rowsplit_csr.hpp"
#include "kernels/spmv_common.hpp"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#include <immintrin.h>
#define PD_NATIVE_F16C_DISPATCH 1
#endif

namespace pd::kernels {

#if defined(PD_NATIVE_F16C_DISPATCH)
/// Hardware half->float conversion (VCVTPH2PS).  IEEE-754 defines a unique
/// binary32 image for every binary16 value and both this instruction and
/// half_bits_to_float implement exactly that mapping (subnormals included;
/// NaN payloads widen by the same 13-bit shift), so the fast path is
/// bitwise-identical, not approximate.
__attribute__((target("f16c"))) inline void half_chunk_to_float_f16c(
    const pd::Half* v, unsigned n, float* out) {
  unsigned i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128i h =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(v + i));
    _mm256_storeu_ps(out + i, _mm256_cvtph_ps(h));
  }
  for (; i < n; ++i) {
    out[i] = v[i].to_float();
  }
}

inline const bool kHaveF16c = __builtin_cpu_supports("f16c") != 0;
#endif

/// Convert a chunk of matrix halves to binary32 (exact widening), using the
/// hardware converter when the CPU has one.
inline void half_chunk_to_float(const pd::Half* v, unsigned n, float* out) {
#if defined(PD_NATIVE_F16C_DISPATCH)
  if (kHaveF16c) {
    half_chunk_to_float_f16c(v, n, out);
    return;
  }
#endif
  for (unsigned i = 0; i < n; ++i) {
    out[i] = v[i].to_float();
  }
}

/// Stage a chunk (n <= 32) of matrix values into Acc precision.  For Half
/// this funnels through the (possibly hardware) exact widening above;
/// identical to calling convert_value per element.
template <typename Acc, typename MatV>
inline void convert_chunk(const MatV* v, unsigned n, Acc* out) {
  if constexpr (std::is_same_v<MatV, pd::Half>) {
    float f[gpusim::kWarpSize];
    half_chunk_to_float(v, n, f);
    for (unsigned i = 0; i < n; ++i) {
      out[i] = static_cast<Acc>(f[i]);
    }
  } else {
    for (unsigned i = 0; i < n; ++i) {
      out[i] = convert_value<Acc>(v[i]);
    }
  }
}

/// warp_reduce_add over a warp whose lanes [n, 32) are exactly +0.0: runs
/// the same butterfly passes but skips the additions whose right operand is
/// one of those zero lanes (a bitwise no-op, see the header comment).
/// `tmp[0..n-1]` is mutated in place; lanes >= n are never read.  n >= 1.
template <typename Acc>
inline Acc native_reduce_tail(Acc* tmp, unsigned n) {
  for (unsigned offset = gpusim::kWarpSize / 2; offset > 0; offset /= 2) {
    for (unsigned i = 0; i < offset && i + offset < n; ++i) {
      tmp[i] = tmp[i] + tmp[i + offset];
    }
    n = std::min(n, offset);
  }
  return tmp[0];
}

/// One vector-kernel row: lanes stride the row's non-zeros in chunks of 32
/// (vector_csr.hpp's accumulation loop), then the fixed butterfly reduction.
/// Rows of <= 32 non-zeros (the dose-matrix common case, Figure 2) skip the
/// 32-lane zero-fill and reduce only the lanes that were written.
template <typename Acc, typename MatV, typename IdxT>
inline Acc native_row_product(const MatV* values, const IdxT* col_idx,
                              const Acc* x, std::uint64_t start,
                              std::uint64_t end) {
  const std::uint64_t nnz = end - start;
  if (nnz <= gpusim::kWarpSize) {
    if (nnz == 0) {
      return Acc{};
    }
    const auto n = static_cast<unsigned>(nnz);
    Acc conv[gpusim::kWarpSize];
    convert_chunk(values + start, n, conv);
    Acc tmp[gpusim::kWarpSize];  // lanes >= n stay unread
    for (unsigned lane = 0; lane < n; ++lane) {
      // Acc{} + ... is the kernel's first accumulation into the zeroed lane
      // (it differs from the bare product only for a -0.0 product).
      tmp[lane] = Acc{} + conv[lane] * x[col_idx[start + lane]];
    }
    return native_reduce_tail(tmp, n);
  }
  gpusim::Lanes<Acc> acc{};
  Acc conv[gpusim::kWarpSize];
  const std::uint64_t tail =
      start + (nnz & ~static_cast<std::uint64_t>(gpusim::kWarpSize - 1));
  for (std::uint64_t base = start; base < tail; base += gpusim::kWarpSize) {
    convert_chunk(values + base, gpusim::kWarpSize, conv);
    for (unsigned lane = 0; lane < gpusim::kWarpSize; ++lane) {
      acc[lane] = acc[lane] + conv[lane] * x[col_idx[base + lane]];
    }
  }
  const auto rem = static_cast<unsigned>(nnz & (gpusim::kWarpSize - 1));
  if (rem != 0) {
    convert_chunk(values + tail, rem, conv);
    for (unsigned lane = 0; lane < rem; ++lane) {
      acc[lane] = acc[lane] + conv[lane] * x[col_idx[tail + lane]];
    }
  }
  // All 32 lanes are live, so warp_reduce_add's masked zero-fill copy is an
  // identity; run its tree in place.
  return native_reduce_tail(&acc[0], gpusim::kWarpSize);
}

#if defined(PD_NATIVE_F16C_DISPATCH)
/// AVX2 forms of the batched inner loops.  Each vector lane performs the
/// scalar code's exact mul-then-add (separate _mm256_mul / _mm256_add — never
/// an FMA, honoring the -ffp-contract=off reproducibility contract), and
/// column j's accumulator sees the same operation sequence as the scalar
/// loop, so the bits are identical; only how many columns advance per
/// instruction changes.  The baseline build stays SSE2, hence the runtime
/// dispatch mirroring half_chunk_to_float_f16c.
__attribute__((target("avx2"))) inline void batch_madd_avx2(
    double* __restrict a, double v, const double* __restrict xc,
    std::size_t batch) {
  const __m256d vv = _mm256_set1_pd(v);
  std::size_t j = 0;
  for (; j + 4 <= batch; j += 4) {
    const __m256d prod = _mm256_mul_pd(vv, _mm256_loadu_pd(xc + j));
    _mm256_storeu_pd(a + j, _mm256_add_pd(_mm256_loadu_pd(a + j), prod));
  }
  for (; j < batch; ++j) {
    a[j] = a[j] + v * xc[j];
  }
}

__attribute__((target("avx2"))) inline void batch_madd_avx2(
    float* __restrict a, float v, const float* __restrict xc,
    std::size_t batch) {
  const __m256 vv = _mm256_set1_ps(v);
  std::size_t j = 0;
  for (; j + 8 <= batch; j += 8) {
    const __m256 prod = _mm256_mul_ps(vv, _mm256_loadu_ps(xc + j));
    _mm256_storeu_ps(a + j, _mm256_add_ps(_mm256_loadu_ps(a + j), prod));
  }
  for (; j < batch; ++j) {
    a[j] = a[j] + v * xc[j];
  }
}

__attribute__((target("avx2"))) inline void batch_add_avx2(
    double* __restrict a, const double* __restrict b, std::size_t batch) {
  std::size_t j = 0;
  for (; j + 4 <= batch; j += 4) {
    _mm256_storeu_pd(
        a + j, _mm256_add_pd(_mm256_loadu_pd(a + j), _mm256_loadu_pd(b + j)));
  }
  for (; j < batch; ++j) {
    a[j] = a[j] + b[j];
  }
}

__attribute__((target("avx2"))) inline void batch_add_avx2(
    float* __restrict a, const float* __restrict b, std::size_t batch) {
  std::size_t j = 0;
  for (; j + 8 <= batch; j += 8) {
    _mm256_storeu_ps(
        a + j, _mm256_add_ps(_mm256_loadu_ps(a + j), _mm256_loadu_ps(b + j)));
  }
  for (; j < batch; ++j) {
    a[j] = a[j] + b[j];
  }
}

__attribute__((target("avx2"))) inline void batch_first_madd_avx2(
    double* __restrict a, double v, const double* __restrict xc,
    std::size_t batch) {
  const __m256d vv = _mm256_set1_pd(v);
  std::size_t j = 0;
  for (; j + 4 <= batch; j += 4) {
    const __m256d prod = _mm256_mul_pd(vv, _mm256_loadu_pd(xc + j));
    _mm256_storeu_pd(a + j, _mm256_add_pd(_mm256_setzero_pd(), prod));
  }
  for (; j < batch; ++j) {
    a[j] = 0.0 + v * xc[j];
  }
}

__attribute__((target("avx2"))) inline void batch_first_madd_avx2(
    float* __restrict a, float v, const float* __restrict xc,
    std::size_t batch) {
  const __m256 vv = _mm256_set1_ps(v);
  std::size_t j = 0;
  for (; j + 8 <= batch; j += 8) {
    const __m256 prod = _mm256_mul_ps(vv, _mm256_loadu_ps(xc + j));
    _mm256_storeu_ps(a + j, _mm256_add_ps(_mm256_setzero_ps(), prod));
  }
  for (; j < batch; ++j) {
    a[j] = 0.0f + v * xc[j];
  }
}

inline const bool kHaveAvx2 = __builtin_cpu_supports("avx2") != 0;
#endif

/// a[j] = a[j] + v * xc[j] across the batch block (one non-zero feeding all
/// right-hand sides).  AVX2 when the CPU has it; plain loop otherwise.
template <typename Acc>
inline void batch_madd(Acc* __restrict a, Acc v, const Acc* __restrict xc,
                       std::size_t batch) {
#if defined(PD_NATIVE_F16C_DISPATCH)
  if constexpr (std::is_same_v<Acc, double> || std::is_same_v<Acc, float>) {
    if (kHaveAvx2) {
      batch_madd_avx2(a, v, xc, batch);
      return;
    }
  }
#endif
  for (std::size_t j = 0; j < batch; ++j) {
    a[j] = a[j] + v * xc[j];
  }
}

/// a[j] = Acc{} + v * xc[j] across the batch block — the kernel's first
/// accumulation into a zeroed lane, without requiring `a` to be pre-zeroed.
template <typename Acc>
inline void batch_first_madd(Acc* __restrict a, Acc v,
                             const Acc* __restrict xc, std::size_t batch) {
#if defined(PD_NATIVE_F16C_DISPATCH)
  if constexpr (std::is_same_v<Acc, double> || std::is_same_v<Acc, float>) {
    if (kHaveAvx2) {
      batch_first_madd_avx2(a, v, xc, batch);
      return;
    }
  }
#endif
  for (std::size_t j = 0; j < batch; ++j) {
    a[j] = Acc{} + v * xc[j];
  }
}

/// a[j] = a[j] + b[j] across the batch block (one reduction-tree step).
template <typename Acc>
inline void batch_add(Acc* __restrict a, const Acc* __restrict b,
                      std::size_t batch) {
#if defined(PD_NATIVE_F16C_DISPATCH)
  if constexpr (std::is_same_v<Acc, double> || std::is_same_v<Acc, float>) {
    if (kHaveAvx2) {
      batch_add_avx2(a, b, batch);
      return;
    }
  }
#endif
  for (std::size_t j = 0; j < batch; ++j) {
    a[j] = a[j] + b[j];
  }
}

/// native_reduce_tail applied to all `batch` columns of a lane-major
/// accumulator block (lane l's `batch` partials at `acc[l*batch .. ]`).
/// Column j sees exactly native_reduce_tail's tree — same passes, same
/// operand order — so each column's bits match the single-vector reduction;
/// the j loop is innermost purely so the adds are contiguous and vectorize.
/// Results land in lane 0's block, `acc[0..batch)`.
template <typename Acc>
inline void native_reduce_tail_batch(Acc* acc, std::size_t batch, unsigned n) {
  for (unsigned offset = gpusim::kWarpSize / 2; offset > 0; offset /= 2) {
    for (unsigned i = 0; i < offset && i + offset < n; ++i) {
      batch_add(acc + i * batch, acc + (i + offset) * batch, batch);
    }
    n = std::min(n, offset);
  }
}

/// Long-row (nnz > kWarpSize) batched row product with the batch width a
/// compile-time constant: loops lane-outer / stride-inner so each lane's
/// B-wide accumulator lives in registers across the whole row instead of
/// being re-read and re-stored per non-zero.  Per (lane, column) the
/// accumulation order over strides is exactly the stride-outer loop's order,
/// and per-element convert_value is bitwise convert_chunk (see its comment),
/// so the result is bit-identical — this is purely a traffic optimization:
/// the generic path moves 2*B accumulator values per non-zero, which does
/// not amortize with batch width and caps the batched speedup at the x-read
/// bound.  `acc` receives the lane-major partials for the reduction tree.
template <unsigned B, typename Acc, typename MatV, typename IdxT>
inline void native_row_product_batch_lanes(const MatV* values,
                                           const IdxT* col_idx,
                                           const Acc* x_int,
                                           std::uint64_t start,
                                           std::uint64_t end, Acc* acc) {
  for (unsigned lane = 0; lane < gpusim::kWarpSize; ++lane) {
    // nnz > kWarpSize, so every lane has a first element.
    std::uint64_t k = start + lane;
    const Acc v0 = convert_value<Acc>(values[k]);
    const Acc* xc0 = x_int + static_cast<std::size_t>(col_idx[k]) * B;
    Acc a[B];
    for (unsigned j = 0; j < B; ++j) {
      a[j] = Acc{} + v0 * xc0[j];
    }
    for (k += gpusim::kWarpSize; k < end; k += gpusim::kWarpSize) {
      const Acc v = convert_value<Acc>(values[k]);
      const Acc* xc = x_int + static_cast<std::size_t>(col_idx[k]) * B;
      for (unsigned j = 0; j < B; ++j) {
        a[j] += v * xc[j];
      }
    }
    Acc* lane_acc = acc + lane * B;
    for (unsigned j = 0; j < B; ++j) {
      lane_acc[j] = a[j];
    }
  }
}

#if defined(PD_NATIVE_F16C_DISPATCH)
/// AVX2-enabled clone of native_row_product_batch_lanes (the target attribute
/// only widens codegen: vmulpd/vaddpd stay separate — AVX2 does not imply FMA
/// and -ffp-contract=off holds — so every per-element rounding is identical
/// to the baseline body).
template <unsigned B, typename Acc, typename MatV, typename IdxT>
__attribute__((target("avx2"))) inline void native_row_product_batch_lanes_avx2(
    const MatV* values, const IdxT* col_idx, const Acc* x_int,
    std::uint64_t start, std::uint64_t end, Acc* acc) {
  for (unsigned lane = 0; lane < gpusim::kWarpSize; ++lane) {
    std::uint64_t k = start + lane;
    const Acc v0 = convert_value<Acc>(values[k]);
    const Acc* xc0 = x_int + static_cast<std::size_t>(col_idx[k]) * B;
    Acc a[B];
    for (unsigned j = 0; j < B; ++j) {
      a[j] = Acc{} + v0 * xc0[j];
    }
    for (k += gpusim::kWarpSize; k < end; k += gpusim::kWarpSize) {
      const Acc v = convert_value<Acc>(values[k]);
      const Acc* xc = x_int + static_cast<std::size_t>(col_idx[k]) * B;
      for (unsigned j = 0; j < B; ++j) {
        a[j] += v * xc[j];
      }
    }
    Acc* lane_acc = acc + lane * B;
    for (unsigned j = 0; j < B; ++j) {
      lane_acc[j] = a[j];
    }
  }
}
#endif  // PD_NATIVE_F16C_DISPATCH

/// Dispatch a long row to the fixed-width lane-outer kernel when the batch
/// width has an instantiation; false means the caller runs the generic path.
template <typename Acc, typename MatV, typename IdxT>
inline bool native_row_product_batch_fixed(const MatV* values,
                                           const IdxT* col_idx,
                                           const Acc* x_int, std::size_t batch,
                                           std::uint64_t start,
                                           std::uint64_t end, Acc* acc) {
  const auto run = [&](auto width) {
    constexpr unsigned kB = decltype(width)::value;
#if defined(PD_NATIVE_F16C_DISPATCH)
    if (kHaveAvx2) {
      native_row_product_batch_lanes_avx2<kB>(values, col_idx, x_int, start,
                                              end, acc);
      return;
    }
#endif
    native_row_product_batch_lanes<kB>(values, col_idx, x_int, start, end,
                                       acc);
  };
  switch (batch) {
    case 2: run(std::integral_constant<unsigned, 2>{}); return true;
    case 3: run(std::integral_constant<unsigned, 3>{}); return true;
    case 4: run(std::integral_constant<unsigned, 4>{}); return true;
    case 5: run(std::integral_constant<unsigned, 5>{}); return true;
    case 6: run(std::integral_constant<unsigned, 6>{}); return true;
    case 7: run(std::integral_constant<unsigned, 7>{}); return true;
    case 8: run(std::integral_constant<unsigned, 8>{}); return true;
    case 9: run(std::integral_constant<unsigned, 9>{}); return true;
    case 10: run(std::integral_constant<unsigned, 10>{}); return true;
    case 11: run(std::integral_constant<unsigned, 11>{}); return true;
    case 12: run(std::integral_constant<unsigned, 12>{}); return true;
    case 13: run(std::integral_constant<unsigned, 13>{}); return true;
    case 14: run(std::integral_constant<unsigned, 14>{}); return true;
    case 15: run(std::integral_constant<unsigned, 15>{}); return true;
    case 16: run(std::integral_constant<unsigned, 16>{}); return true;
    default: return false;
  }
}

/// Batched (multi-RHS) form of native_row_product: one pass over the row's
/// non-zeros feeds all `batch` accumulators, matching multivector_csr.hpp.
/// Each column's per-lane sums and reduction are those of the single-vector
/// kernel, so every batch column is bitwise identical to a looped compute.
/// `x_int` holds the batch vectors interleaved column-major — vector j's
/// entry for matrix column c at `x_int[c*batch + j]` — so one non-zero's
/// `batch` reads are contiguous.  `acc` is caller-provided scratch of
/// kWarpSize*batch accumulators in lane-major layout (lane l's partials at
/// `acc[l*batch + j]`, so the per-non-zero batch FMAs are contiguous too;
/// lanes this row does not touch are never read, so stale contents are
/// fine); `out` receives the `batch` row results.
template <typename Acc, typename MatV, typename IdxT>
inline void native_row_product_batch(const MatV* values, const IdxT* col_idx,
                                     const Acc* x_int, std::size_t batch,
                                     std::uint64_t start, std::uint64_t end,
                                     Acc* acc, Acc* out) {
  const std::uint64_t nnz = end - start;
  if (nnz == 0) {
    for (std::size_t j = 0; j < batch; ++j) {
      out[j] = Acc{};
    }
    return;
  }
  Acc conv[gpusim::kWarpSize];
  if (nnz <= gpusim::kWarpSize) {
    const auto n = static_cast<unsigned>(nnz);
    convert_chunk(values + start, n, conv);
    for (unsigned lane = 0; lane < n; ++lane) {
      const Acc v = conv[lane];
      batch_first_madd(
          acc + lane * batch, v,
          x_int + static_cast<std::size_t>(col_idx[start + lane]) * batch,
          batch);
    }
    native_reduce_tail_batch(acc, batch, n);
    for (std::size_t j = 0; j < batch; ++j) {
      out[j] = acc[j];
    }
    return;
  }
  if (!native_row_product_batch_fixed(values, col_idx, x_int, batch, start,
                                      end, acc)) {
    // Generic width: stride-outer with the lane-major accumulator in memory.
    // The first stride covers every lane, so its products are *stored*
    // (Acc{} + v*x, exactly the zero-initialized first madd) instead of
    // zero-filling the whole accumulator block up front.
    for (std::uint64_t base = start; base < end; base += gpusim::kWarpSize) {
      const auto remaining = static_cast<unsigned>(
          std::min<std::uint64_t>(gpusim::kWarpSize, end - base));
      convert_chunk(values + base, remaining, conv);
      for (unsigned lane = 0; lane < remaining; ++lane) {
        const Acc v = conv[lane];
        const Acc* xc =
            x_int + static_cast<std::size_t>(col_idx[base + lane]) * batch;
        if (base == start) {
          batch_first_madd(acc + lane * batch, v, xc, batch);
        } else {
          batch_madd(acc + lane * batch, v, xc, batch);
        }
      }
    }
  }
  native_reduce_tail_batch(acc, batch, gpusim::kWarpSize);
  for (std::size_t j = 0; j < batch; ++j) {
    out[j] = acc[j];
  }
}

/// One classical-kernel row: element i of the row lands in sub-accumulator
/// i % sub in ascending order (classical_csr.hpp's iter loop), then the
/// kernel's in-register subwarp tree.  `sub` must be the launch-wide
/// classical_subwarp_size(A.nnz(), A.num_rows) — it is a property of the
/// whole matrix, not of the row — and is always a power of two, so the
/// modulo is a mask.
template <typename Acc, typename MatV, typename IdxT>
inline Acc native_classical_row(const MatV* values, const IdxT* col_idx,
                                const Acc* x, std::uint32_t start,
                                std::uint32_t end, unsigned sub) {
  Acc partial[gpusim::kWarpSize] = {};
  const unsigned mask = sub - 1;
  for (std::uint32_t i = 0; i < end - start; ++i) {
    const std::uint32_t k = start + i;
    const unsigned o = i & mask;
    partial[o] = partial[o] + convert_value<Acc>(values[k]) * x[col_idx[k]];
  }
  for (unsigned offset = sub / 2; offset > 0; offset /= 2) {
    for (unsigned i = 0; i < offset; ++i) {
      partial[i] += partial[i + offset];
    }
  }
  return partial[0];
}

/// warp_segmented_inclusive_sum restricted to the first `count` lanes: the
/// Hillis-Steele passes give lane i a value that depends only on lanes <= i,
/// so lanes >= count (inactive in the kernel, never read by the caller) are
/// simply not computed.  In-place: the descending walk reads out[i - d]
/// before that slot is written in the same pass, exactly the `prev` copy the
/// kernel keeps.
template <typename Acc>
inline void native_segmented_inclusive_sum(Acc* out, gpusim::LaneMask heads,
                                           unsigned count) {
  unsigned seg[gpusim::kWarpSize];
  unsigned current = 0;
  for (unsigned i = 0; i < count; ++i) {
    if (gpusim::lane_active(heads, i)) {
      current = i;
    }
    seg[i] = current;
  }
  for (unsigned d = 1; d < count; d *= 2) {
    for (unsigned i = count; i-- > d;) {
      if (seg[i] <= i - d) {
        out[i] = out[i - d] + out[i];
      }
    }
  }
}

/// One adaptive work item: long rows take the vector path; short-row groups
/// form the per-lane products and reduce them with the same segmented
/// inclusive sum (and the same head-flag construction) as the kernel.
template <typename Acc, typename MatV, typename IdxT>
inline void native_adaptive_item(const std::uint32_t* row_ptr,
                                 const MatV* values, const IdxT* col_idx,
                                 const Acc* x, Acc* y,
                                 const AdaptiveWorkItem& item) {
  if (item.long_row != 0) {
    const std::uint32_t row = item.row_begin;
    y[row] = native_row_product(values, col_idx, x, row_ptr[row],
                                row_ptr[row + 1]);
    return;
  }
  const std::uint32_t start = row_ptr[item.row_begin];
  const std::uint32_t end = row_ptr[item.row_end];
  const unsigned count = end - start;

  Acc incl[gpusim::kWarpSize];  // lanes >= count stay unread
  for (unsigned lane = 0; lane < count; ++lane) {
    const std::uint32_t k = start + lane;
    incl[lane] = convert_value<Acc>(values[k]) * x[col_idx[k]];
  }
  gpusim::LaneMask heads = 0;
  for (std::uint32_t r = item.row_begin; r < item.row_end; ++r) {
    const std::uint32_t rs = row_ptr[r];
    if (rs < end && rs >= start && row_ptr[r + 1] > rs) {
      heads |= (gpusim::LaneMask{1} << (rs - start));
    }
  }
  native_segmented_inclusive_sum(incl, heads, count);
  for (std::uint32_t r = item.row_begin; r < item.row_end; ++r) {
    const std::uint32_t rs = row_ptr[r];
    const std::uint32_t re = row_ptr[r + 1];
    y[r] = (re > rs) ? incl[re - 1 - start] : Acc{};
  }
}

/// Rowsplit phase 1: one chunk's partial sum, written to y (unsplit rows) or
/// to the chunk's fixed partial slot.  The chunk sum is the vector row loop
/// over [item.begin, item.end).
template <typename Acc, typename MatV, typename IdxT>
inline void native_rowsplit_item(const MatV* values, const IdxT* col_idx,
                                 const Acc* x, Acc* y, Acc* partials,
                                 const RowSplitPlan::WorkItem& item) {
  const Acc total =
      native_row_product(values, col_idx, x, item.begin, item.end);
  if (item.partial_slot < 0) {
    y[item.row] = total;
  } else {
    partials[item.partial_slot] = total;
  }
}

/// Rowsplit phase 2: fold one split row's partial slots with the same
/// 32-strided accumulation + butterfly as the kernel's second launch.
template <typename Acc>
inline Acc native_rowsplit_fold(const Acc* partials,
                                const RowSplitPlan::SplitRow& split) {
  const std::uint64_t first = split.first_slot;
  const std::uint64_t last = first + split.num_slots;
  if (split.num_slots <= gpusim::kWarpSize) {
    const auto n = static_cast<unsigned>(split.num_slots);
    Acc tmp[gpusim::kWarpSize];  // lanes >= n stay unread
    for (unsigned lane = 0; lane < n; ++lane) {
      tmp[lane] = Acc{} + partials[first + lane];
    }
    return native_reduce_tail(tmp, n);
  }
  gpusim::Lanes<Acc> acc{};
  for (std::uint64_t base = first; base < last; base += gpusim::kWarpSize) {
    const auto remaining = static_cast<unsigned>(
        std::min<std::uint64_t>(gpusim::kWarpSize, last - base));
    for (unsigned lane = 0; lane < remaining; ++lane) {
      acc[lane] = acc[lane] + partials[base + lane];
    }
  }
  return native_reduce_tail(&acc[0], gpusim::kWarpSize);
}

}  // namespace pd::kernels
