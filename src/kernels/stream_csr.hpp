#pragma once
// CSR-Stream: block-cooperative SpMV through shared memory (the second half
// of the Greathouse–Daga CSR-Adaptive design, here with the full block scope
// the simulator's BlockCtx provides).
//
// Each block owns either a group of consecutive rows whose combined
// non-zeros fit a shared-memory tile, or one very long row:
//
//  * group blocks — phase 1: all warps stream the tile's products
//    (value · x) into shared memory with perfectly coalesced global loads;
//    phase 2: one warp per row reduces its slice of the tile in the same
//    strided order as the paper's vector kernel, so the per-row results are
//    BITWISE IDENTICAL to warp-per-row CSR while the global loads no longer
//    care about row boundaries.
//  * long-row blocks — phase 1: every warp accumulates a block-strided
//    partial and parks it in shared memory; phase 2: warp 0 folds the
//    partials in a fixed order.  A block-level deterministic reduction —
//    no atomics, schedule-independent (§II-D preserved).

#include <algorithm>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "gpusim/launch.hpp"
#include "kernels/spmv_common.hpp"
#include "sparse/csr.hpp"

namespace pd::kernels {

struct StreamPlan {
  struct BlockItem {
    std::uint32_t row_begin = 0;
    std::uint32_t row_end = 0;   ///< exclusive
    std::uint32_t long_row = 0;  ///< 1: the block owns a single long row.
  };
  std::vector<BlockItem> items;
  std::uint32_t tile_nnz = 0;  ///< Shared tile capacity (products per block).
};

template <typename V, typename I>
StreamPlan build_stream_plan(const sparse::CsrMatrix<V, I>& A,
                             std::uint32_t tile_nnz = 2048) {
  PD_CHECK_MSG(tile_nnz >= gpusim::kWarpSize,
               "stream plan: tile must hold at least one warp-load");
  StreamPlan plan;
  plan.tile_nnz = tile_nnz;
  std::uint32_t r = 0;
  const auto rows = static_cast<std::uint32_t>(A.num_rows);
  while (r < rows) {
    if (A.row_nnz(r) > tile_nnz) {
      plan.items.push_back({r, r + 1, 1});
      ++r;
      continue;
    }
    const std::uint32_t begin = r;
    std::uint64_t total = 0;
    while (r < rows) {
      const std::uint64_t next = A.row_nnz(r);
      if (next > tile_nnz || total + next > tile_nnz) {
        break;
      }
      total += next;
      ++r;
    }
    plan.items.push_back({begin, r, 0});
  }
  return plan;
}

template <typename MatV, typename Acc, typename IdxT>
SpmvRun run_stream_csr(gpusim::Gpu& gpu, const sparse::CsrMatrix<MatV, IdxT>& A,
                       const StreamPlan& plan, std::span<const Acc> x,
                       std::span<Acc> y,
                       unsigned threads_per_block = kDefaultVectorTpb,
                       std::uint64_t schedule_seed = 0) {
  PD_CHECK_MSG(x.size() == A.num_cols, "stream: x size mismatch");
  PD_CHECK_MSG(y.size() == A.num_rows, "stream: y size mismatch");
  PD_CHECK_MSG(!plan.items.empty(), "stream: empty plan");

  using namespace pd::gpusim;
  const std::uint32_t* row_ptr = A.row_ptr.data();
  const IdxT* col_idx = A.col_idx.data();
  const MatV* values = A.values.data();
  const Acc* xp = x.data();
  Acc* yp = y.data();
  const StreamPlan::BlockItem* items = plan.items.data();
  const std::uint32_t tile_nnz = plan.tile_nnz;

  LaunchConfig cfg;
  cfg.threads_per_block = threads_per_block;
  cfg.num_blocks = plan.items.size();
  cfg.regs_per_thread = kAdaptiveRegs;

  register_spmv_buffers(gpu, A, x, y);
  if (gpusim::CheckContext* chk = gpu.check()) {
    chk->track_global(items, plan.items.size() * sizeof(StreamPlan::BlockItem),
                      "stream.items", /*initialized=*/true);
  }
  SpmvRun run;
  run.config = cfg;
  run.precision = sizeof(Acc) == 8 ? FlopPrecision::kFp64 : FlopPrecision::kFp32;
  run.stats = gpu.run_blocks(
      cfg,
      [&](BlockCtx& block) {
        const StreamPlan::BlockItem item = items[block.block_idx()];
        const unsigned wpb = block.warps_per_block();

        if (item.long_row != 0) {
          // --- one long row, block-wide deterministic reduction ----------
          Acc* partials = block.shared_alloc<Acc>(wpb);
          block.for_each_warp([&](WarpCtx& w) {
            const std::uint64_t warp_id =
                w.global_warp_id() % wpb;  // warp index inside the block
            const std::uint32_t start = w.load_uniform(row_ptr + item.row_begin);
            const std::uint32_t end =
                w.load_uniform(row_ptr + item.row_begin + 1);
            Lanes<Acc> acc{};
            for (std::uint64_t base = start + warp_id * kWarpSize; base < end;
                 base += static_cast<std::uint64_t>(wpb) * kWarpSize) {
              const auto remaining = static_cast<unsigned>(
                  std::min<std::uint64_t>(kWarpSize, end - base));
              const LaneMask m = first_lanes(remaining);
              const Lanes<IdxT> cols = w.load_contiguous(col_idx, base, m);
              const Lanes<MatV> vals = w.load_contiguous(values, base, m);
              const Lanes<Acc> xv = w.gather(xp, cols, m);
              for (unsigned lane = 0; lane < kWarpSize; ++lane) {
                if (lane_active(m, lane)) {
                  acc[lane] =
                      acc[lane] + convert_value<Acc>(vals[lane]) * xv[lane];
                }
              }
              w.count_flops(2, m);
            }
            const Acc partial = w.reduce_add(acc);
            Lanes<std::uint64_t> slot{};
            Lanes<Acc> val{};
            slot[0] = warp_id;
            val[0] = partial;
            w.shared_scatter(partials, slot, val, 0x1u);
          });
          // ...barrier...
          block.for_each_warp([&](WarpCtx& w) {
            if (w.global_warp_id() % wpb != 0) {
              return;  // only warp 0 folds the partials
            }
            Lanes<Acc> acc{};
            for (unsigned base = 0; base < wpb; base += kWarpSize) {
              const LaneMask m =
                  first_lanes(std::min<unsigned>(kWarpSize, wpb - base));
              Lanes<std::uint64_t> idx{};
              for (unsigned lane = 0; lane < kWarpSize; ++lane) {
                idx[lane] = base + lane;
              }
              const Lanes<Acc> part = w.shared_gather(partials, idx, m);
              for (unsigned lane = 0; lane < kWarpSize; ++lane) {
                if (lane_active(m, lane)) {
                  acc[lane] = acc[lane] + part[lane];
                }
              }
              w.count_flops(1, m);
            }
            w.store_uniform(yp + item.row_begin, w.reduce_add(acc));
          });
          return;
        }

        // --- row group streamed through a shared tile ---------------------
        const std::uint32_t tile_start = row_ptr[item.row_begin];
        const std::uint32_t tile_end = row_ptr[item.row_end];
        Acc* tile = block.shared_alloc<Acc>(tile_nnz);

        // Phase 1: coalesced product streaming, row-agnostic.
        block.for_each_warp([&](WarpCtx& w) {
          const std::uint64_t warp_id = w.global_warp_id() % wpb;
          for (std::uint64_t base = tile_start + warp_id * kWarpSize;
               base < tile_end;
               base += static_cast<std::uint64_t>(wpb) * kWarpSize) {
            const auto remaining = static_cast<unsigned>(
                std::min<std::uint64_t>(kWarpSize, tile_end - base));
            const LaneMask m = first_lanes(remaining);
            const Lanes<IdxT> cols = w.load_contiguous(col_idx, base, m);
            const Lanes<MatV> vals = w.load_contiguous(values, base, m);
            const Lanes<Acc> xv = w.gather(xp, cols, m);
            Lanes<Acc> prod{};
            Lanes<std::uint64_t> slot{};
            for (unsigned lane = 0; lane < kWarpSize; ++lane) {
              if (lane_active(m, lane)) {
                prod[lane] = convert_value<Acc>(vals[lane]) * xv[lane];
                slot[lane] = base + lane - tile_start;
              }
            }
            w.count_flops(1, m);
            w.shared_scatter(tile, slot, prod, m);
          }
        });
        // ...barrier...
        // Phase 2: warp-per-row reduction out of the tile, in the vector
        // kernel's exact strided order (hence bitwise-equal results).
        block.for_each_warp([&](WarpCtx& w) {
          const std::uint64_t warp_id = w.global_warp_id() % wpb;
          for (std::uint32_t row = item.row_begin + warp_id;
               row < item.row_end; row += wpb) {
            const std::uint32_t start = w.load_uniform(row_ptr + row);
            const std::uint32_t end = w.load_uniform(row_ptr + row + 1);
            Lanes<Acc> acc{};
            for (std::uint64_t base = start; base < end; base += kWarpSize) {
              const auto remaining = static_cast<unsigned>(
                  std::min<std::uint64_t>(kWarpSize, end - base));
              const LaneMask m = first_lanes(remaining);
              Lanes<std::uint64_t> idx{};
              for (unsigned lane = 0; lane < kWarpSize; ++lane) {
                idx[lane] = base + lane - tile_start;
              }
              const Lanes<Acc> prod = w.shared_gather(tile, idx, m);
              for (unsigned lane = 0; lane < kWarpSize; ++lane) {
                if (lane_active(m, lane)) {
                  acc[lane] = acc[lane] + prod[lane];
                }
              }
              w.count_flops(1, m);
            }
            w.store_uniform(yp + row, w.reduce_add(acc));
          }
        });
      },
      schedule_seed);
  return run;
}

}  // namespace pd::kernels
