#pragma once
// Shared pieces of the SpMV kernel family: value-conversion helpers, the
// per-kernel register footprints that feed the occupancy calculator, and the
// result bundle every kernel launcher returns.

#include <cstdint>
#include <span>

#include "fp16/bfloat16.hpp"
#include "fp16/half.hpp"
#include "gpusim/launch.hpp"
#include "gpusim/perf.hpp"
#include "sparse/csr.hpp"

namespace pd::kernels {

/// Register the standard SpMV buffer set (CSR arrays + input + output) with
/// the Gpu's simcheck analyzer, when one is enabled.  Inputs are registered
/// as initialized; `y` is an output whose bytes start unwritten (initcheck).
/// Launchers call this right before gpu.run; with checking disabled it is a
/// single branch.  Extra launch-specific buffers (worklists, partials) are
/// added by the caller via gpu.check()->track_global.
template <typename MatV, typename IdxT, typename Acc>
inline void register_spmv_buffers(gpusim::Gpu& gpu,
                                  const sparse::CsrMatrix<MatV, IdxT>& A,
                                  std::span<const Acc> x, std::span<Acc> y) {
  gpusim::CheckContext* chk = gpu.check();
  if (chk == nullptr) {
    return;
  }
  chk->clear_tracking();
  chk->track_global(A.row_ptr.data(), A.row_ptr.size() * sizeof(std::uint32_t),
                    "row_ptr", /*initialized=*/true);
  chk->track_global(A.col_idx.data(), A.col_idx.size() * sizeof(IdxT),
                    "col_idx", /*initialized=*/true);
  chk->track_global(A.values.data(), A.values.size() * sizeof(MatV), "values",
                    /*initialized=*/true);
  chk->track_global(x.data(), x.size_bytes(), "x", /*initialized=*/true);
  chk->track_global(y.data(), y.size_bytes(), "y", /*initialized=*/false);
}

/// Convert a stored matrix value to the accumulation type.  Half widens
/// exactly (binary16 ⊂ binary32/64); float/double follow usual conversions.
template <typename Acc>
inline Acc convert_value(pd::Half v) {
  return static_cast<Acc>(v.to_float());
}
template <typename Acc>
inline Acc convert_value(pd::Bfloat16 v) {
  return static_cast<Acc>(v.to_float());
}
template <typename Acc, typename V>
inline Acc convert_value(V v) {
  return static_cast<Acc>(v);
}

/// Kernel-family selector shared by DoseEngine's two execution backends.
/// Every family keeps the §II-D bitwise-reproducibility guarantee; they
/// differ in load balancing and metadata cost (Figures 5-6).
enum class SpmvFamily {
  kVector,     ///< warp-per-row (the paper's kernel).
  kClassical,  ///< Ginkgo-style subwarp-per-row.
  kRowSplit,   ///< deterministic two-phase row splitting.
  kAdaptive,   ///< cuSPARSE-style adaptive row binning.
};

/// Per-thread register footprints, as a CUDA compiler would report them.
/// They drive the Figure 4 occupancy sweep: 40 registers puts the knee of
/// the half/double kernel at 512 threads/block (75% occupancy) with dips at
/// 32 and 1024, matching the paper's observed best configuration.
inline constexpr unsigned kVectorCsrRegs = 40;
inline constexpr unsigned kBaselineRegs = 32;
inline constexpr unsigned kClassicalRegs = 32;
inline constexpr unsigned kAdaptiveRegs = 40;

/// Default launch widths chosen in the paper after the Figure 4 sweep.
inline constexpr unsigned kDefaultVectorTpb = 512;
inline constexpr unsigned kDefaultBaselineTpb = 128;

/// What one kernel launch produced: measured counters plus the launch
/// geometry (both are inputs to gpusim::estimate_performance).
struct SpmvRun {
  gpusim::KernelStats stats;
  gpusim::LaunchConfig config;
  gpusim::FlopPrecision precision = gpusim::FlopPrecision::kFp64;
};

}  // namespace pd::kernels
