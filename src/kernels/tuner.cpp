#include "kernels/tuner.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <limits>
#include <numeric>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "kernels/rsformat_spmv.hpp"
#include "kernels/sellcs_spmv.hpp"

namespace pd::kernels {

namespace {

using FastFormat = DoseEngine::FastFormat;

// Deterministic tie order when streamed bytes match: rsformat (no padding,
// no permutation) before quantized SELL before float SELL.
int format_rank(FastFormat f) {
  switch (f) {
    case FastFormat::kRsFormat:
      return 0;
    case FastFormat::kSellCsQ:
      return 1;
    default:
      return 2;
  }
}

bool model_order(const TuneCandidate& a, const TuneCandidate& b) {
  if (a.streamed_bytes != b.streamed_bytes) {
    return a.streamed_bytes < b.streamed_bytes;
  }
  if (format_rank(a.format) != format_rank(b.format)) {
    return format_rank(a.format) < format_rank(b.format);
  }
  if (a.sell_c != b.sell_c) {
    return a.sell_c < b.sell_c;
  }
  return a.sell_sigma < b.sell_sigma;
}

std::uint32_t resolve_rows_sigma(std::uint64_t rows, std::uint32_t C) {
  const std::uint64_t up =
      (std::max<std::uint64_t>(rows, 1) + C - 1) / C * C;
  return static_cast<std::uint32_t>(std::min<std::uint64_t>(
      up, std::numeric_limits<std::uint32_t>::max() / C * C));
}

// Switch the engine to the candidate's fast configuration (building the
// container if needed) and return the wall-clock of the fastest of `trials`
// products of an all-ones weight vector.  One warmup rep primes the
// container build and the thread pool out of the measurement.
double measure_candidate(DoseEngine& engine, const TuneCandidate& cand,
                         unsigned trials) {
  if (cand.format != FastFormat::kRsFormat) {
    engine.set_fast_sell_config(cand.sell_c, cand.sell_sigma);
  }
  engine.set_tier(DoseEngine::Tier::kFast, cand.format);
  const std::vector<double> x(engine.num_spots(), 1.0);
  (void)engine.compute(x);
  double best_us = std::numeric_limits<double>::infinity();
  for (unsigned t = 0; t < trials; ++t) {
    const auto start = std::chrono::steady_clock::now();
    (void)engine.compute(x);
    const double us = std::chrono::duration<double, std::micro>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    best_us = std::min(best_us, us);
  }
  return best_us;
}

// A measured rival must beat the model-preferred incumbent by more than
// this margin to override the deterministic order (run-to-run stability on
// quiet machines; see header).
constexpr double kHysteresis = 0.10;

}  // namespace

TuneOptions tune_options_from_env() {
  TuneOptions opts;
  if (const char* env = std::getenv("PROTONDOSE_TUNER_TRIALS")) {
    try {
      opts.trials = static_cast<unsigned>(std::stoul(env));
    } catch (...) {
      throw pd::Error(std::string("PROTONDOSE_TUNER_TRIALS: not a number: ") +
                      env);
    }
  }
  return opts;
}

std::uint64_t sellcs_model_bytes(const std::vector<std::uint32_t>& row_nnz,
                                 std::uint64_t num_cols, std::uint32_t C,
                                 std::uint32_t sigma, bool quantized) {
  PD_CHECK_MSG(C > 0 && sigma > 0 && sigma % C == 0,
               "sellcs_model_bytes: σ must be a positive multiple of C");
  // Replicate the builder: descending sort inside σ windows, then each
  // C-chunk pads to its longest row.  Only the length multiset matters.
  std::vector<std::uint32_t> lens = row_nnz;
  const std::uint64_t rows = lens.size();
  for (std::uint64_t w = 0; w < rows; w += sigma) {
    const std::uint64_t end = std::min<std::uint64_t>(w + sigma, rows);
    std::sort(lens.begin() + static_cast<std::ptrdiff_t>(w),
              lens.begin() + static_cast<std::ptrdiff_t>(end),
              std::greater<std::uint32_t>());
  }
  std::uint64_t slots = 0;
  for (std::uint64_t c0 = 0; c0 < rows; c0 += C) {
    // σ is a multiple of C, so a chunk never straddles a window boundary and
    // the group's first (descending-sorted) length is its padded width.
    slots += static_cast<std::uint64_t>(lens[c0]) * C;
  }
  const std::uint64_t chunks = (rows + C - 1) / C;
  const std::uint64_t shared = (chunks + 1) * 8   // chunk_ptr
                               + chunks * 4       // chunk_width
                               + rows * 4;        // row_perm
  if (quantized) {
    return shared + num_cols * 4  // col_scale
           + slots * (2 + 2);     // u16 qvalue + u16 col_idx
  }
  return shared + slots * (4 + 4);  // f32 value + u32 col_idx
}

TunedConfig autotune_fast_tier(DoseEngine& engine, const TuneOptions& opts) {
  PD_CHECK_MSG(!opts.chunk_heights.empty() && !opts.sort_windows.empty(),
               "autotune_fast_tier: empty candidate grid");
  // Snapshot fast-tier state; restored on every exit path.  The bitwise tier
  // owns none of this, so the tuner cannot perturb the oracle.
  struct Restore {
    DoseEngine& engine;
    DoseEngine::Tier tier;
    FastFormat format;
    std::uint32_t sell_c, sell_sigma;
    bool fast_threads_set;
    unsigned fast_threads;
    ~Restore() {
      try {
        engine.set_fast_sell_config(sell_c, sell_sigma);
        if (fast_threads_set) {
          engine.set_fast_threads(fast_threads);
        } else {
          engine.clear_fast_threads();
        }
        engine.set_tier(tier, format);
      } catch (...) {
        // Best-effort: restoring must not turn an in-flight exception into
        // std::terminate.
      }
    }
  } restore{engine,
            engine.tier(),
            engine.fast_format(),
            engine.fast_sell_c(),
            engine.fast_sell_sigma(),
            engine.fast_threads_overridden(),
            engine.fast_threads()};

  const sparse::CsrF64 wide = engine.stored_matrix_as_double();
  const std::uint64_t rows = wide.num_rows;
  bool nonneg = true;
  for (const double v : wide.values) {
    nonneg = nonneg && v >= 0.0;
  }
  std::vector<std::uint32_t> all_lens(rows);
  std::vector<std::uint32_t> stored_lens;
  stored_lens.reserve(rows);
  for (std::uint64_t r = 0; r < rows; ++r) {
    all_lens[r] = static_cast<std::uint32_t>(wide.row_nnz(r));
    if (all_lens[r] > 0) {
      stored_lens.push_back(all_lens[r]);
    }
  }
  const bool sellq_ok = nonneg && wide.num_cols <= (std::uint64_t{1} << 16);

  TunedConfig config;
  config.trials = opts.trials;

  // --- Stage 1: deterministic streamed-bytes model over the full grid. ---
  std::vector<TuneCandidate> candidates;
  if (nonneg) {
    // rsformat has no geometry knob; its exact bytes need the real container
    // (escape count), which set_tier builds once and the engine keeps.
    engine.set_tier(DoseEngine::Tier::kFast, FastFormat::kRsFormat);
    TuneCandidate rs;
    rs.format = FastFormat::kRsFormat;
    rs.streamed_bytes = rsformat_streamed_bytes(engine.fast_rs_matrix());
    candidates.push_back(rs);
  }
  for (const std::uint32_t C : opts.chunk_heights) {
    for (const std::uint32_t sigma_raw : opts.sort_windows) {
      const std::uint32_t sigma =
          sigma_raw == 0 ? resolve_rows_sigma(rows, C)
                         : (sigma_raw / C) * C;  // snap to a multiple of C
      if (sigma == 0) {
        continue;  // window smaller than a chunk: not a real configuration.
      }
      TuneCandidate fl;
      fl.format = FastFormat::kSellCs;
      fl.sell_c = C;
      fl.sell_sigma = sigma;
      fl.streamed_bytes =
          sellcs_model_bytes(all_lens, wide.num_cols, C, sigma, false);
      candidates.push_back(fl);
      if (sellq_ok) {
        TuneCandidate q = fl;
        q.format = FastFormat::kSellCsQ;
        q.streamed_bytes =
            sellcs_model_bytes(stored_lens, wide.num_cols, C, sigma, true);
        candidates.push_back(q);
      }
    }
  }
  PD_CHECK_MSG(!candidates.empty(),
               "autotune_fast_tier: no viable fast format for this matrix");
  std::sort(candidates.begin(), candidates.end(), model_order);
  // Duplicate (format, C, σ) pairs can arise from σ snapping; keep the first.
  candidates.erase(
      std::unique(candidates.begin(), candidates.end(),
                  [](const TuneCandidate& a, const TuneCandidate& b) {
                    return a.format == b.format && a.sell_c == b.sell_c &&
                           a.sell_sigma == b.sell_sigma;
                  }),
      candidates.end());

  // --- Stage 2: micro-benchmark the model's finalists (trials > 0). ---
  std::size_t winner = 0;
  if (opts.trials > 0) {
    const std::size_t finalists =
        std::min<std::size_t>(std::max<std::size_t>(opts.measure_finalists, 1),
                              candidates.size());
    for (std::size_t i = 0; i < finalists; ++i) {
      candidates[i].us_per_product =
          measure_candidate(engine, candidates[i], opts.trials);
      candidates[i].measured = true;
      // Model order is the incumbent; a rival must win by > kHysteresis.
      if (i > 0 && candidates[i].us_per_product <
                       candidates[winner].us_per_product * (1.0 - kHysteresis)) {
        winner = i;
      }
    }
  }
  const TuneCandidate& best = candidates[winner];
  config.format = best.format;
  if (best.format != FastFormat::kRsFormat) {
    config.sell_c = best.sell_c;
    config.sell_sigma = best.sell_sigma;
  }
  config.streamed_bytes = best.streamed_bytes;
  config.us_per_product = best.us_per_product;

  // --- Stage 3: native thread count for the winning format. ---
  config.fast_threads =
      opts.thread_candidates.empty() ? 1 : opts.thread_candidates.front();
  if (opts.trials > 0 && opts.thread_candidates.size() > 1) {
    if (best.format != FastFormat::kRsFormat) {
      engine.set_fast_sell_config(best.sell_c, best.sell_sigma);
    }
    engine.set_tier(DoseEngine::Tier::kFast, best.format);
    double incumbent_us = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < opts.thread_candidates.size(); ++i) {
      TuneCandidate probe = best;
      engine.set_fast_threads(opts.thread_candidates[i]);
      const double us = measure_candidate(engine, probe, opts.trials);
      if (i == 0) {
        incumbent_us = us;
      } else if (us < incumbent_us * (1.0 - kHysteresis)) {
        incumbent_us = us;
        config.fast_threads = opts.thread_candidates[i];
      }
    }
    config.us_per_product = incumbent_us;
  }

  // --- Stage 4: batch-width probe (fused rsformat only — the one kernel
  // with a batched traversal). ---
  config.batch_width = 1;
  if (opts.trials > 0 && opts.probe_batch > 1 &&
      best.format == FastFormat::kRsFormat) {
    engine.set_fast_threads(config.fast_threads);
    engine.set_tier(DoseEngine::Tier::kFast, FastFormat::kRsFormat);
    const std::size_t K = opts.probe_batch;
    const std::vector<double> weights(engine.num_spots() * K, 1.0);
    const std::vector<double> x(engine.num_spots(), 1.0);
    (void)engine.compute_batch(weights, K);
    double batched_us = std::numeric_limits<double>::infinity();
    double looped_us = std::numeric_limits<double>::infinity();
    for (unsigned t = 0; t < opts.trials; ++t) {
      auto start = std::chrono::steady_clock::now();
      (void)engine.compute_batch(weights, K);
      batched_us = std::min(
          batched_us, std::chrono::duration<double, std::micro>(
                          std::chrono::steady_clock::now() - start)
                          .count());
      start = std::chrono::steady_clock::now();
      for (std::size_t j = 0; j < K; ++j) {
        (void)engine.compute(x);
      }
      looped_us = std::min(
          looped_us, std::chrono::duration<double, std::micro>(
                         std::chrono::steady_clock::now() - start)
                         .count());
    }
    config.batched_speedup = batched_us > 0.0 ? looped_us / batched_us : 0.0;
    config.batch_width = config.batched_speedup > 1.0 ? K : 1;
  }

  config.candidates = std::move(candidates);
  return config;
}

void apply_tuned(DoseEngine& engine, const TunedConfig& config) {
  engine.set_fast_sell_config(config.sell_c, config.sell_sigma);
  engine.set_fast_threads(config.fast_threads);
  engine.set_auto_fast_format(config.format);
}

}  // namespace pd::kernels
