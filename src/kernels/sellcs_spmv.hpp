#pragma once
// Native SELL-C-σ SpMV — the fast tier's second kernel family
// (docs/fast_tier.md), putting the Ablation B container (sparse/sellcs.hpp,
// Kreutzer et al.) behind a real host kernel for the first time.
//
// The chunk layout is lane-major: element j of lane l lives at
// chunk_ptr[c] + j*C + l, so a 4-lane (AVX2) or 8-lane (AVX-512) group reads
// contiguous values/columns per step j and gathers x.  Padded slots carry
// column 0 and value 0, so they contribute +0.0 and need no masking; only
// the final scatter through row_perm guards lanes past num_rows.
//
// Determinism: each output row is one lane — a private accumulator added in
// ascending j (== ascending column) order, identical in the scalar, AVX2 and
// AVX-512 variants (SIMD vectorizes *across* lanes, never within a row) and
// under any chunk partition.  Unlike the fused rsformat kernel, this family
// is therefore bitwise invariant across thread counts and SIMD variants.
// It still sits in the fast tier, not the bitwise tier: values are stored as
// float (2^-24 relative narrowing error against the engine's stored matrix)
// and the sequential per-row order differs from the warp kernels' strided
// tree reduction, so it is verified with the derived tolerance bound.

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "kernels/native_backend.hpp"
#include "kernels/spmv_common.hpp"
#include "sparse/partition.hpp"
#include "sparse/sellcs.hpp"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#include <immintrin.h>
#define PD_SELLCS_SIMD_DISPATCH 1
#endif

namespace pd::kernels {

/// One chunk, scalar: j-outer / lane-inner keeps the slot reads contiguous;
/// out[l] receives lane l's full dot product (C doubles, caller-provided).
template <typename V, typename I>
inline void sellcs_chunk_scalar(const V* values, const I* col_idx,
                                std::uint64_t base, std::uint32_t width,
                                std::uint32_t chunk_height, const double* x,
                                double* out) {
  for (std::uint32_t l = 0; l < chunk_height; ++l) {
    out[l] = 0.0;
  }
  for (std::uint32_t j = 0; j < width; ++j) {
    const std::uint64_t row_base = base + std::uint64_t{j} * chunk_height;
    for (std::uint32_t l = 0; l < chunk_height; ++l) {
      const std::uint64_t slot = row_base + l;
      out[l] += convert_value<double>(values[slot]) *
                x[static_cast<std::uint64_t>(col_idx[slot])];
    }
  }
}

#if defined(PD_SELLCS_SIMD_DISPATCH)

inline const bool kHaveSellcsAvx2 = __builtin_cpu_supports("avx2") != 0;
inline const bool kHaveSellcsAvx512 =
    __builtin_cpu_supports("avx512f") != 0;

/// AVX2: lane groups of 4; per step j a contiguous 4-float value load, a
/// contiguous 4-index load, and a gathered 4-double x read.  mul then add —
/// no FMA, same rounding as the scalar kernel.
__attribute__((target("avx2"))) inline void sellcs_chunk_avx2(
    const float* values, const std::uint32_t* col_idx, std::uint64_t base,
    std::uint32_t width, std::uint32_t chunk_height, const double* x,
    double* out) {
  for (std::uint32_t l = 0; l < chunk_height; l += 4) {
    __m256d acc = _mm256_setzero_pd();
    const float* vp = values + base + l;
    const std::uint32_t* cp = col_idx + base + l;
    for (std::uint32_t j = 0; j < width; ++j) {
      const __m128i ci =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(cp));
      const __m256d xv = _mm256_i32gather_pd(x, ci, 8);
      const __m256d vv = _mm256_cvtps_pd(_mm_loadu_ps(vp));
      acc = _mm256_add_pd(acc, _mm256_mul_pd(vv, xv));
      vp += chunk_height;
      cp += chunk_height;
    }
    _mm256_storeu_pd(out + l, acc);
  }
}

/// AVX-512: same shape with 8-lane groups.
__attribute__((target("avx512f"))) inline void sellcs_chunk_avx512(
    const float* values, const std::uint32_t* col_idx, std::uint64_t base,
    std::uint32_t width, std::uint32_t chunk_height, const double* x,
    double* out) {
  for (std::uint32_t l = 0; l < chunk_height; l += 8) {
    __m512d acc = _mm512_setzero_pd();
    const float* vp = values + base + l;
    const std::uint32_t* cp = col_idx + base + l;
    for (std::uint32_t j = 0; j < width; ++j) {
      const __m256i ci =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(cp));
      const __m512d xv = _mm512_i32gather_pd(ci, x, 8);
      const __m512d vv = _mm512_cvtps_pd(_mm256_loadu_ps(vp));
      acc = _mm512_add_pd(acc, _mm512_mul_pd(vv, xv));
      vp += chunk_height;
      cp += chunk_height;
    }
    _mm512_storeu_pd(out + l, acc);
  }
}

#endif  // PD_SELLCS_SIMD_DISPATCH

/// SIMD variant the float/u32 kernel will use for chunk height C on this
/// host (bench / CLI reporting; dispatch in the kernel matches this).
inline const char* sellcs_spmv_variant_name(std::uint32_t chunk_height) {
#if defined(PD_SELLCS_SIMD_DISPATCH)
  if (kHaveSellcsAvx512 && chunk_height % 8 == 0) {
    return "avx512";
  }
  if (kHaveSellcsAvx2 && chunk_height % 4 == 0) {
    return "avx2";
  }
#else
  (void)chunk_height;
#endif
  return "scalar";
}

/// Matrix bytes one product streams (all chunk arrays are read once).
template <typename V, typename I>
std::uint64_t sellcs_streamed_bytes(const sparse::SellCsMatrix<V, I>& m) {
  return m.bytes();
}

/// y = A·x over the SELL-C-σ container, threaded over a slot-balanced chunk
/// partition (chunks own disjoint output rows, so no scratch/merge is
/// needed).  `allow_simd` forces the scalar variant for differential tests.
template <typename V, typename I>
void sellcs_spmv(const sparse::SellCsMatrix<V, I>& m, std::span<const double> x,
                 std::span<double> y, NativeExecutor& exec,
                 bool allow_simd = true) {
  PD_CHECK_MSG(x.size() == m.num_cols, "sellcs_spmv: x size mismatch");
  PD_CHECK_MSG(y.size() == m.num_rows, "sellcs_spmv: y size mismatch");
  if (m.num_rows == 0) {
    return;
  }
  const std::uint64_t chunks = m.num_chunks();
  const std::uint32_t C = m.chunk_height;
  const V* values = m.values.data();
  const I* col_idx = m.col_idx.data();
  const std::uint32_t* row_perm = m.row_perm.data();
  const double* xp = x.data();
  double* yp = y.data();

#if defined(PD_SELLCS_SIMD_DISPATCH)
  constexpr bool kSimdTypes =
      std::is_same_v<V, float> && std::is_same_v<I, std::uint32_t>;
  const bool use_avx512 =
      allow_simd && kSimdTypes && kHaveSellcsAvx512 && C % 8 == 0;
  const bool use_avx2 =
      allow_simd && kSimdTypes && kHaveSellcsAvx2 && C % 4 == 0;
#else
  (void)allow_simd;
#endif

  std::vector<std::uint64_t> costs(chunks);
  for (std::uint64_t c = 0; c < chunks; ++c) {
    costs[c] = m.chunk_ptr[c + 1] - m.chunk_ptr[c];
  }
  const sparse::RowPartition part =
      sparse::balanced_cost_partition(costs, exec.parts_for(chunks));
  exec.run(part.parts(), [&](std::size_t p) {
    std::vector<double> lane_out(C);
    for (std::uint64_t c = part.boundaries[p]; c < part.boundaries[p + 1];
         ++c) {
      const std::uint64_t base = m.chunk_ptr[c];
      const std::uint32_t width = m.chunk_width[c];
#if defined(PD_SELLCS_SIMD_DISPATCH)
      if constexpr (kSimdTypes) {
        if (use_avx512) {
          sellcs_chunk_avx512(reinterpret_cast<const float*>(values),
                              reinterpret_cast<const std::uint32_t*>(col_idx),
                              base, width, C, xp, lane_out.data());
        } else if (use_avx2) {
          sellcs_chunk_avx2(reinterpret_cast<const float*>(values),
                            reinterpret_cast<const std::uint32_t*>(col_idx),
                            base, width, C, xp, lane_out.data());
        } else {
          sellcs_chunk_scalar(values, col_idx, base, width, C, xp,
                              lane_out.data());
        }
      } else {
        sellcs_chunk_scalar(values, col_idx, base, width, C, xp,
                            lane_out.data());
      }
#else
      sellcs_chunk_scalar(values, col_idx, base, width, C, xp,
                          lane_out.data());
#endif
      const std::uint64_t row0 = c * C;
      const std::uint32_t active = static_cast<std::uint32_t>(
          std::min<std::uint64_t>(C, m.num_rows - row0));
      for (std::uint32_t l = 0; l < active; ++l) {
        yp[row_perm[row0 + l]] = lane_out[l];
      }
    }
  });
}

// ---------------------------------------------------------------------------
// Quantized SELL-C-σ (fast tier v2) — SELL's SIMD-friendly chunk layout with
// rsformat's u16 value compression.  Every contribution is computed as
// (double(q) * scale) * w — the same two-multiply contract as the fused
// rsformat kernel (dequantize rounds once, weight multiply rounds once, no
// FMA), so the derived per-row bound of docs/fast_tier.md applies with the
// rsformat column error err_c = 1.02 * (scale_c / 2).  Here `w` is x[col]
// and per-row accumulation stays a private lane accumulator in ascending
// slot order, identical in the scalar and AVX2 variants and under any chunk
// partition: like the float SELL kernel (and unlike fused rsformat), the
// quantized kernel is bitwise invariant across thread counts and SIMD.
// Empty rows are compacted out of the container, so the kernel zero-fills y
// before scattering the stored lanes.
// ---------------------------------------------------------------------------

/// One chunk, scalar, quantized: out[l] = Σ_j (double(q) * scale_col) * x[col].
inline void sellcs_q_chunk_scalar(const std::uint16_t* qvalues,
                                  const std::uint16_t* col_idx,
                                  const float* col_scale, std::uint64_t base,
                                  std::uint32_t width,
                                  std::uint32_t chunk_height, const double* x,
                                  double* out) {
  for (std::uint32_t l = 0; l < chunk_height; ++l) {
    out[l] = 0.0;
  }
  for (std::uint32_t j = 0; j < width; ++j) {
    const std::uint64_t row_base = base + std::uint64_t{j} * chunk_height;
    for (std::uint32_t l = 0; l < chunk_height; ++l) {
      const std::uint64_t slot = row_base + l;
      const std::uint32_t col = col_idx[slot];
      out[l] += (static_cast<double>(qvalues[slot]) *
                 static_cast<double>(col_scale[col])) *
                x[col];
    }
  }
}

#if defined(PD_SELLCS_SIMD_DISPATCH)

/// AVX2, quantized: lane groups of 4; per step j a contiguous 4×u16 value
/// load and 4×u16 index load (widened in-register), a gathered 4-float scale
/// read and a gathered 4-double x read.  (q * scale) then * x — two rounded
/// multiplies, bitwise identical to the scalar variant.
__attribute__((target("avx2"))) inline void sellcs_q_chunk_avx2(
    const std::uint16_t* qvalues, const std::uint16_t* col_idx,
    const float* col_scale, std::uint64_t base, std::uint32_t width,
    std::uint32_t chunk_height, const double* x, double* out) {
  for (std::uint32_t l = 0; l < chunk_height; l += 4) {
    __m256d acc = _mm256_setzero_pd();
    const std::uint16_t* vp = qvalues + base + l;
    const std::uint16_t* cp = col_idx + base + l;
    for (std::uint32_t j = 0; j < width; ++j) {
      const __m128i ci = _mm_cvtepu16_epi32(
          _mm_loadl_epi64(reinterpret_cast<const __m128i*>(cp)));
      const __m256d xv = _mm256_i32gather_pd(x, ci, 8);
      const __m256d sv =
          _mm256_cvtps_pd(_mm_i32gather_ps(col_scale, ci, 4));
      const __m256d qv = _mm256_cvtepi32_pd(_mm_cvtepu16_epi32(
          _mm_loadl_epi64(reinterpret_cast<const __m128i*>(vp))));
      acc = _mm256_add_pd(acc, _mm256_mul_pd(_mm256_mul_pd(qv, sv), xv));
      vp += chunk_height;
      cp += chunk_height;
    }
    _mm256_storeu_pd(out + l, acc);
  }
}

#endif  // PD_SELLCS_SIMD_DISPATCH

/// SIMD variant the quantized kernel will use for chunk height C on this
/// host (no AVX-512 clone yet: the u16 gathers gain less than the float
/// container's 8-lane loads).
inline const char* sellcs_q_spmv_variant_name(std::uint32_t chunk_height) {
#if defined(PD_SELLCS_SIMD_DISPATCH)
  if (kHaveSellcsAvx2 && chunk_height % 4 == 0) {
    return "avx2";
  }
#else
  (void)chunk_height;
#endif
  return "scalar";
}

/// Matrix bytes one quantized product streams (all arrays read once).
inline std::uint64_t sellcs_q_streamed_bytes(const sparse::SellCsQMatrix& m) {
  return m.bytes();
}

/// y = A·x over the quantized SELL-C-σ container, threaded over a
/// slot-balanced chunk partition (chunks own disjoint output rows).  Rows
/// absent from storage (empty rows) are zero-filled up front.
inline void sellcs_q_spmv(const sparse::SellCsQMatrix& m,
                          std::span<const double> x, std::span<double> y,
                          NativeExecutor& exec, bool allow_simd = true) {
  PD_CHECK_MSG(x.size() == m.num_cols, "sellcs_q_spmv: x size mismatch");
  PD_CHECK_MSG(y.size() == m.num_rows, "sellcs_q_spmv: y size mismatch");
  std::fill(y.begin(), y.end(), 0.0);
  if (m.stored_rows == 0) {
    return;
  }
  const std::uint64_t chunks = m.num_chunks();
  const std::uint32_t C = m.chunk_height;
  const std::uint16_t* qvalues = m.qvalues.data();
  const std::uint16_t* col_idx = m.col_idx.data();
  const float* col_scale = m.col_scale.data();
  const std::uint32_t* row_perm = m.row_perm.data();
  const double* xp = x.data();
  double* yp = y.data();

#if defined(PD_SELLCS_SIMD_DISPATCH)
  const bool use_avx2 = allow_simd && kHaveSellcsAvx2 && C % 4 == 0;
#else
  (void)allow_simd;
#endif

  std::vector<std::uint64_t> costs(chunks);
  for (std::uint64_t c = 0; c < chunks; ++c) {
    costs[c] = m.chunk_ptr[c + 1] - m.chunk_ptr[c];
  }
  const sparse::RowPartition part =
      sparse::balanced_cost_partition(costs, exec.parts_for(chunks));
  exec.run(part.parts(), [&](std::size_t p) {
    std::vector<double> lane_out(C);
    for (std::uint64_t c = part.boundaries[p]; c < part.boundaries[p + 1];
         ++c) {
      const std::uint64_t base = m.chunk_ptr[c];
      const std::uint32_t width = m.chunk_width[c];
#if defined(PD_SELLCS_SIMD_DISPATCH)
      if (use_avx2) {
        sellcs_q_chunk_avx2(qvalues, col_idx, col_scale, base, width, C, xp,
                            lane_out.data());
      } else {
        sellcs_q_chunk_scalar(qvalues, col_idx, col_scale, base, width, C, xp,
                              lane_out.data());
      }
#else
      sellcs_q_chunk_scalar(qvalues, col_idx, col_scale, base, width, C, xp,
                            lane_out.data());
#endif
      const std::uint64_t row0 = c * C;
      const std::uint32_t active = static_cast<std::uint32_t>(
          std::min<std::uint64_t>(C, m.stored_rows - row0));
      for (std::uint32_t l = 0; l < active; ++l) {
        yp[row_perm[row0 + l]] = lane_out[l];
      }
    }
  });
}

}  // namespace pd::kernels
