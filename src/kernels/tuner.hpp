#pragma once
// Execution-configuration tuner (the paper's §V-A / Figure 4 experiment):
// sweep threads-per-block, measure each launch on the simulated device, and
// pick the configuration with the highest modeled GFLOP/s.

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "gpusim/perf.hpp"
#include "kernels/spmv_common.hpp"

namespace pd::kernels {

struct TunePoint {
  unsigned threads_per_block = 0;
  gpusim::PerfEstimate estimate;
};

struct TuneResult {
  std::vector<TunePoint> points;
  unsigned best_threads_per_block = 0;

  const TunePoint& best() const {
    for (const TunePoint& p : points) {
      if (p.threads_per_block == best_threads_per_block) {
        return p;
      }
    }
    throw pd::Error("TuneResult: empty sweep");
  }
};

/// The paper's sweep: 32..1024 threads per block.
inline std::vector<unsigned> default_block_sizes() {
  return {32, 64, 128, 256, 512, 1024};
}

/// Fast-tier format recommendation (docs/fast_tier.md).  Both fast kernels
/// are DRAM-bound like everything else in this codebase, so the tuner picks
/// whichever container streams fewer bytes per product; rsformat wins ties
/// (no padding, no permutation scatter).  Callers feed it
/// rsformat_streamed_bytes() / sellcs_streamed_bytes() from the built
/// containers — or estimates, before paying for the build.
struct FastFormatChoice {
  std::uint64_t rsformat_bytes = 0;
  std::uint64_t sellcs_bytes = 0;
  bool prefer_rsformat = true;

  double ratio_vs(std::uint64_t csr_bytes) const {
    const std::uint64_t chosen =
        prefer_rsformat ? rsformat_bytes : sellcs_bytes;
    return csr_bytes == 0
               ? 0.0
               : static_cast<double>(chosen) / static_cast<double>(csr_bytes);
  }
};

inline FastFormatChoice choose_fast_format(std::uint64_t rsformat_bytes,
                                           std::uint64_t sellcs_bytes) {
  FastFormatChoice c;
  c.rsformat_bytes = rsformat_bytes;
  c.sellcs_bytes = sellcs_bytes;
  c.prefer_rsformat = rsformat_bytes <= sellcs_bytes;
  return c;
}

/// Delta-vs-full breakeven (docs/delta_engine.md).  A bitwise delta update
/// streams roughly the affected fraction of the matrix; the fast delta
/// streams only the changed columns' sidecar entries — 8 B value + 4 B row
/// index + a 16 B dose read-modify-write per nnz, ~28 B.  Both are DRAM-bound
/// like every product here, so the tuner compares streamed bytes: delta wins
/// while changed_frac · cols · (nnz/cols) · 28 B < full CSR bytes.  Ties go
/// to the full recompute (one pass, no worklist bookkeeping).
struct DeltaThreshold {
  double breakeven_changed_frac = 1.0;  ///< delta wins strictly below this.
  std::uint64_t full_bytes = 0;         ///< CSR bytes one full product streams.
  double delta_bytes_per_col = 0.0;     ///< mean delta bytes per changed column.

  bool prefer_delta(double changed_frac) const {
    return changed_frac < breakeven_changed_frac;
  }
};

inline DeltaThreshold delta_threshold(std::uint64_t csr_bytes,
                                      std::uint64_t nnz, std::uint64_t cols) {
  DeltaThreshold t;
  t.full_bytes = csr_bytes;
  if (cols == 0 || nnz == 0) {
    return t;  // empty matrix: any "update" is free, keep breakeven at 1.
  }
  t.delta_bytes_per_col =
      static_cast<double>(nnz) / static_cast<double>(cols) * 28.0;
  const double all_cols_delta_bytes =
      t.delta_bytes_per_col * static_cast<double>(cols);
  t.breakeven_changed_frac =
      std::min(1.0, static_cast<double>(csr_bytes) / all_cols_delta_bytes);
  return t;
}

/// `run_at(tpb)` must launch the kernel with that block size and return the
/// SpmvRun; `mean_work_per_warp` feeds the perf model (see gpusim::PerfInput).
template <typename RunFn>
TuneResult tune_block_size(const gpusim::DeviceSpec& spec, RunFn&& run_at,
                           double mean_work_per_warp,
                           std::vector<unsigned> candidates = default_block_sizes()) {
  PD_CHECK_MSG(!candidates.empty(), "tune_block_size: no candidates");
  TuneResult result;
  double best_gflops = -1.0;
  for (const unsigned tpb : candidates) {
    const SpmvRun run = run_at(tpb);
    gpusim::PerfInput in;
    in.stats = run.stats;
    in.config = run.config;
    in.precision = run.precision;
    in.mean_work_per_warp = mean_work_per_warp;
    TunePoint point;
    point.threads_per_block = tpb;
    point.estimate = gpusim::estimate_performance(spec, in);
    if (point.estimate.gflops > best_gflops) {
      best_gflops = point.estimate.gflops;
      result.best_threads_per_block = tpb;
    }
    result.points.push_back(point);
  }
  return result;
}

}  // namespace pd::kernels
