#pragma once
// Execution-configuration tuner (the paper's §V-A / Figure 4 experiment):
// sweep threads-per-block, measure each launch on the simulated device, and
// pick the configuration with the highest modeled GFLOP/s.

#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "gpusim/perf.hpp"
#include "kernels/spmv_common.hpp"

namespace pd::kernels {

struct TunePoint {
  unsigned threads_per_block = 0;
  gpusim::PerfEstimate estimate;
};

struct TuneResult {
  std::vector<TunePoint> points;
  unsigned best_threads_per_block = 0;

  const TunePoint& best() const {
    for (const TunePoint& p : points) {
      if (p.threads_per_block == best_threads_per_block) {
        return p;
      }
    }
    throw pd::Error("TuneResult: empty sweep");
  }
};

/// The paper's sweep: 32..1024 threads per block.
inline std::vector<unsigned> default_block_sizes() {
  return {32, 64, 128, 256, 512, 1024};
}

/// `run_at(tpb)` must launch the kernel with that block size and return the
/// SpmvRun; `mean_work_per_warp` feeds the perf model (see gpusim::PerfInput).
template <typename RunFn>
TuneResult tune_block_size(const gpusim::DeviceSpec& spec, RunFn&& run_at,
                           double mean_work_per_warp,
                           std::vector<unsigned> candidates = default_block_sizes()) {
  PD_CHECK_MSG(!candidates.empty(), "tune_block_size: no candidates");
  TuneResult result;
  double best_gflops = -1.0;
  for (const unsigned tpb : candidates) {
    const SpmvRun run = run_at(tpb);
    gpusim::PerfInput in;
    in.stats = run.stats;
    in.config = run.config;
    in.precision = run.precision;
    in.mean_work_per_warp = mean_work_per_warp;
    TunePoint point;
    point.threads_per_block = tpb;
    point.estimate = gpusim::estimate_performance(spec, in);
    if (point.estimate.gflops > best_gflops) {
      best_gflops = point.estimate.gflops;
      result.best_threads_per_block = tpb;
    }
    result.points.push_back(point);
  }
  return result;
}

}  // namespace pd::kernels
