#pragma once
// Execution-configuration tuners.
//
// Two layers, both rooted in the paper's §V-A observation that the right
// execution configuration is an empirical question:
//  * tune_block_size — the paper's Figure 4 experiment: sweep
//    threads-per-block, measure each launch on the simulated device, pick
//    the highest modeled GFLOP/s.
//  * autotune_fast_tier — the fast tier's measurement-driven autotuner
//    (fast-tier v2): enumerate candidate compressed containers (rsformat,
//    float SELL-C-σ, quantized SELL-C-σ over C ∈ {8,16,32,64} ×
//    σ ∈ {256,1024,4096,rows}), rank them with a deterministic streamed-bytes
//    model, then micro-benchmark the finalists (plus native thread count and
//    batch width) on the actual matrix and return the winning TunedConfig.
//    With trials == 0 the measurement stage is skipped and the byte-model
//    winner is returned — fully deterministic, which is what the CI
//    tuner-determinism check pins (PROTONDOSE_TUNER_TRIALS=0).  Measured
//    runs keep a hysteresis margin: a candidate must beat a model-preferred
//    rival by >10% wall-clock to override the deterministic order, so quiet
//    machines reproduce the same config run to run.
//    The tuner only ever touches fast-tier state (engine tier/format/sell
//    geometry are restored on exit) — Tier::kBitwise results stay
//    byte-for-byte unchanged whether or not a config was tuned or applied.

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "gpusim/perf.hpp"
#include "kernels/dose_engine.hpp"
#include "kernels/spmv_common.hpp"

namespace pd::kernels {

struct TunePoint {
  unsigned threads_per_block = 0;
  gpusim::PerfEstimate estimate;
};

struct TuneResult {
  std::vector<TunePoint> points;
  unsigned best_threads_per_block = 0;

  const TunePoint& best() const {
    for (const TunePoint& p : points) {
      if (p.threads_per_block == best_threads_per_block) {
        return p;
      }
    }
    throw pd::Error("TuneResult: empty sweep");
  }
};

/// The paper's sweep: 32..1024 threads per block.
inline std::vector<unsigned> default_block_sizes() {
  return {32, 64, 128, 256, 512, 1024};
}

/// Fast-tier format recommendation (docs/fast_tier.md).  All fast kernels
/// are DRAM-bound like everything else in this codebase, so the chooser
/// picks whichever container streams fewer bytes per product.  Ties break
/// toward rsformat first (no padding, no permutation scatter), then the
/// quantized SELL-C-σ container before the float one (same layout, smaller
/// error surface won't flip but the u16 values halve the slot traffic, so a
/// tie means the float container wasted padding).  Callers feed it
/// *_streamed_bytes() from the built containers — or estimates, before
/// paying for the build; pass sellcsq_bytes == 0 when the quantized
/// container is unavailable (e.g. > 65536 columns).
struct FastFormatChoice {
  std::uint64_t rsformat_bytes = 0;
  std::uint64_t sellcs_bytes = 0;
  std::uint64_t sellcsq_bytes = 0;  ///< 0 = quantized container unavailable.
  DoseEngine::FastFormat format = DoseEngine::FastFormat::kRsFormat;

  bool prefer_rsformat() const {
    return format == DoseEngine::FastFormat::kRsFormat;
  }

  std::uint64_t chosen_bytes() const {
    switch (format) {
      case DoseEngine::FastFormat::kSellCs:
        return sellcs_bytes;
      case DoseEngine::FastFormat::kSellCsQ:
        return sellcsq_bytes;
      default:
        return rsformat_bytes;
    }
  }

  double ratio_vs(std::uint64_t csr_bytes) const {
    return csr_bytes == 0 ? 0.0
                          : static_cast<double>(chosen_bytes()) /
                                static_cast<double>(csr_bytes);
  }
};

inline FastFormatChoice choose_fast_format(std::uint64_t rsformat_bytes,
                                           std::uint64_t sellcs_bytes,
                                           std::uint64_t sellcsq_bytes = 0) {
  FastFormatChoice c;
  c.rsformat_bytes = rsformat_bytes;
  c.sellcs_bytes = sellcs_bytes;
  c.sellcsq_bytes = sellcsq_bytes;
  c.format = DoseEngine::FastFormat::kRsFormat;
  std::uint64_t best = rsformat_bytes;
  // Strict < keeps the tie order rsformat > quantized > float.
  if (sellcsq_bytes != 0 && sellcsq_bytes < best) {
    c.format = DoseEngine::FastFormat::kSellCsQ;
    best = sellcsq_bytes;
  }
  if (sellcs_bytes < best) {
    c.format = DoseEngine::FastFormat::kSellCs;
  }
  return c;
}

/// Delta-vs-full breakeven (docs/delta_engine.md).  A bitwise delta update
/// streams roughly the affected fraction of the matrix; the fast delta
/// streams only the changed columns' sidecar entries — 8 B value + 4 B row
/// index + a 16 B dose read-modify-write per nnz, ~28 B.  Both are DRAM-bound
/// like every product here, so the tuner compares streamed bytes: delta wins
/// while changed_frac · cols · (nnz/cols) · 28 B < full CSR bytes.  Ties go
/// to the full recompute (one pass, no worklist bookkeeping).
struct DeltaThreshold {
  double breakeven_changed_frac = 1.0;  ///< delta wins strictly below this.
  std::uint64_t full_bytes = 0;         ///< CSR bytes one full product streams.
  double delta_bytes_per_col = 0.0;     ///< mean delta bytes per changed column.

  bool prefer_delta(double changed_frac) const {
    return changed_frac < breakeven_changed_frac;
  }
};

inline DeltaThreshold delta_threshold(std::uint64_t csr_bytes,
                                      std::uint64_t nnz, std::uint64_t cols) {
  DeltaThreshold t;
  t.full_bytes = csr_bytes;
  if (cols == 0 || nnz == 0) {
    return t;  // empty matrix: any "update" is free, keep breakeven at 1.
  }
  t.delta_bytes_per_col =
      static_cast<double>(nnz) / static_cast<double>(cols) * 28.0;
  const double all_cols_delta_bytes =
      t.delta_bytes_per_col * static_cast<double>(cols);
  t.breakeven_changed_frac =
      std::min(1.0, static_cast<double>(csr_bytes) / all_cols_delta_bytes);
  return t;
}

/// `run_at(tpb)` must launch the kernel with that block size and return the
/// SpmvRun; `mean_work_per_warp` feeds the perf model (see gpusim::PerfInput).
template <typename RunFn>
TuneResult tune_block_size(const gpusim::DeviceSpec& spec, RunFn&& run_at,
                           double mean_work_per_warp,
                           std::vector<unsigned> candidates = default_block_sizes()) {
  PD_CHECK_MSG(!candidates.empty(), "tune_block_size: no candidates");
  TuneResult result;
  double best_gflops = -1.0;
  for (const unsigned tpb : candidates) {
    const SpmvRun run = run_at(tpb);
    gpusim::PerfInput in;
    in.stats = run.stats;
    in.config = run.config;
    in.precision = run.precision;
    in.mean_work_per_warp = mean_work_per_warp;
    TunePoint point;
    point.threads_per_block = tpb;
    point.estimate = gpusim::estimate_performance(spec, in);
    if (point.estimate.gflops > best_gflops) {
      best_gflops = point.estimate.gflops;
      result.best_threads_per_block = tpb;
    }
    result.points.push_back(point);
  }
  return result;
}

// ---------------------------------------------------------------------------
// Fast-tier autotuner (fast-tier v2).
// ---------------------------------------------------------------------------

/// One candidate the autotuner considered (emitted into bench JSON).
struct TuneCandidate {
  DoseEngine::FastFormat format = DoseEngine::FastFormat::kRsFormat;
  std::uint32_t sell_c = 0;       ///< 0 for rsformat.
  std::uint32_t sell_sigma = 0;   ///< resolved σ (rows rounded up); 0 for rsformat.
  std::uint64_t streamed_bytes = 0;  ///< byte-model estimate per product.
  double us_per_product = 0.0;    ///< measured wall-clock; 0 = model-only.
  bool measured = false;
};

/// The winning configuration.  Everything the engine needs to run the fast
/// tier at this matrix's best-known operating point; cached per plan in
/// EngineCache (service) so a hot plan is tuned exactly once.
struct TunedConfig {
  DoseEngine::FastFormat format = DoseEngine::FastFormat::kRsFormat;
  std::uint32_t sell_c = 32;       ///< SELL chunk height (sell formats).
  std::uint32_t sell_sigma = 1024; ///< SELL sort window (resolved, > 0).
  unsigned fast_threads = 1;       ///< native threads for fast-tier computes.
  std::size_t batch_width = 1;     ///< probed batch width (1 = unprobed/no win).
  double batched_speedup = 0.0;    ///< measured K-batch speedup (0 = unprobed).
  std::uint64_t streamed_bytes = 0;
  double us_per_product = 0.0;     ///< winner's measured time (0 = model-only).
  unsigned trials = 0;             ///< measurement reps used (0 = model-only).
  std::vector<TuneCandidate> candidates;  ///< full sweep, model-rank order.
};

/// Decision-field equality (timings excluded) — what the determinism check
/// compares across repeated tunes of the same matrix.
inline bool same_decision(const TunedConfig& a, const TunedConfig& b) {
  return a.format == b.format && a.sell_c == b.sell_c &&
         a.sell_sigma == b.sell_sigma && a.fast_threads == b.fast_threads &&
         a.batch_width == b.batch_width;
}

struct TuneOptions {
  /// SELL-C-σ geometry sweep; σ == 0 means "all rows" (resolved to the row
  /// count rounded up to a multiple of C).
  std::vector<std::uint32_t> chunk_heights = {8, 16, 32, 64};
  std::vector<std::uint32_t> sort_windows = {256, 1024, 4096, 0};
  /// Native thread counts to measure for the winning format (0 = all
  /// hardware threads).  The first entry is the deterministic default.
  std::vector<unsigned> thread_candidates = {1, 0};
  /// Wall-clock reps per measured candidate; 0 = byte-model only, fully
  /// deterministic (the mode the CI determinism check pins).
  unsigned trials = 3;
  /// How many model-ranked finalists get measured (trials > 0).
  std::size_t measure_finalists = 3;
  /// When > 1 and the winner is rsformat, probe compute_batch at this width
  /// against looped single products and record the speedup.
  std::size_t probe_batch = 1;
};

/// TuneOptions with `trials` overridden by the PROTONDOSE_TUNER_TRIALS
/// environment variable when set (the CI determinism pin).
TuneOptions tune_options_from_env();

/// Streamed bytes of a hypothetical SELL-C-σ container with the given
/// geometry, computed from row lengths alone (no build): replicates the
/// builder's σ-window descending sort + per-chunk padding.  `row_nnz` must
/// already be compacted for the quantized container (non-empty rows only).
std::uint64_t sellcs_model_bytes(const std::vector<std::uint32_t>& row_nnz,
                                 std::uint64_t num_cols, std::uint32_t C,
                                 std::uint32_t sigma, bool quantized);

/// Run the autotuner on the engine's stored matrix.  Builds fast containers
/// as needed (they stay cached on the engine), restores the engine's
/// tier/format/sell-geometry on exit, and never perturbs Tier::kBitwise
/// results.  Throws nothing beyond allocation/configuration errors.
TunedConfig autotune_fast_tier(DoseEngine& engine,
                               const TuneOptions& opts = {});

/// Apply a TunedConfig to an engine: sell geometry, fast-tier thread count,
/// and the format FastFormat::kAuto resolves to.  Does not switch tiers.
void apply_tuned(DoseEngine& engine, const TunedConfig& config);

}  // namespace pd::kernels
