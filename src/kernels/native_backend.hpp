#pragma once
// Threaded driver for the native host backend.
//
// NativeExecutor owns the thread pool (the PR 2 caller-participating
// gpusim::ThreadPool) and runs one task per partition part.  Work is split
// with the nnz-balanced contiguous partitioners from sparse/partition.hpp:
// rows for the vector/classical families, plan items for rowsplit, work
// items for the adaptive family.  Parts own disjoint output ranges and every
// row/item is computed by exactly one part with the kernels'
// per-row-deterministic arithmetic (native_spmv.hpp), so the dose bits are
// independent of the thread count and of which thread claims which part —
// the same argument that makes the simulated kernels schedule-independent.

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "gpusim/pool.hpp"
#include "kernels/classical_csr.hpp"
#include "kernels/native_spmv.hpp"
#include "sparse/csr.hpp"
#include "sparse/partition.hpp"

namespace pd::kernels {

/// Thread-count policy + lazily built pool for native SpMV execution.
/// 0 requested threads means "all hardware threads"
/// (gpusim::resolve_phase1_threads); the default of 1 keeps plain engine
/// construction free of thread spawning.
class NativeExecutor {
 public:
  void set_threads(unsigned requested) { requested_ = requested; }
  unsigned requested_threads() const { return requested_; }
  unsigned resolved_threads() const {
    return gpusim::resolve_phase1_threads(requested_);
  }

  /// Parts to split `items` units of work into: one per thread, never more
  /// than the work items (the partitioners refuse empty parts).
  std::size_t parts_for(std::size_t items) const {
    return std::max<std::size_t>(
        1, std::min<std::size_t>(resolved_threads(), items));
  }

  /// Run fn(part) for part in [0, parts).  Serial when one thread suffices;
  /// otherwise the pool's workers and the calling thread claim parts
  /// dynamically.  Exceptions propagate (first one wins, as in parallel_for).
  void run(std::size_t parts, const std::function<void(std::size_t)>& fn) {
    const unsigned threads = resolved_threads();
    if (threads <= 1 || parts <= 1) {
      for (std::size_t p = 0; p < parts; ++p) {
        fn(p);
      }
      return;
    }
    if (!pool_ || pool_->workers() != threads - 1) {
      pool_ = std::make_unique<gpusim::ThreadPool>(threads - 1);
    }
    pool_->parallel_for(parts, fn);
  }

 private:
  unsigned requested_ = 1;
  std::unique_ptr<gpusim::ThreadPool> pool_;
};

/// y = A·x with the vector family's arithmetic, threaded over the
/// nnz-balanced row partition.
template <typename MatV, typename Acc, typename IdxT>
void native_vector_spmv(const sparse::CsrMatrix<MatV, IdxT>& A,
                        std::span<const Acc> x, std::span<Acc> y,
                        NativeExecutor& exec) {
  PD_CHECK_MSG(x.size() == A.num_cols, "native vector: x size mismatch");
  PD_CHECK_MSG(y.size() == A.num_rows, "native vector: y size mismatch");
  if (A.num_rows == 0) {
    return;
  }
  const sparse::RowPartition part =
      sparse::balanced_row_partition(A, exec.parts_for(A.num_rows));
  const std::uint32_t* row_ptr = A.row_ptr.data();
  const IdxT* col_idx = A.col_idx.data();
  const MatV* values = A.values.data();
  const Acc* xp = x.data();
  Acc* yp = y.data();
  exec.run(part.parts(), [&](std::size_t p) {
    for (std::uint64_t r = part.boundaries[p]; r < part.boundaries[p + 1];
         ++r) {
      yp[r] = native_row_product(values, col_idx, xp, row_ptr[r],
                                 row_ptr[r + 1]);
    }
  });
}

/// Y[j] = A·X[j] for a batch of right-hand sides: the matrix row is walked
/// once per row for the whole batch (multivector_csr.hpp's scheme), each
/// column bitwise identical to native_vector_spmv.
template <typename MatV, typename Acc, typename IdxT>
void native_vector_spmv_batch(const sparse::CsrMatrix<MatV, IdxT>& A,
                              std::span<const Acc* const> xs,
                              std::span<Acc* const> ys, NativeExecutor& exec) {
  PD_CHECK_MSG(!xs.empty() && xs.size() == ys.size(),
               "native batch: need matching, non-empty batches");
  if (A.num_rows == 0) {
    return;
  }
  const std::size_t batch = xs.size();
  const sparse::RowPartition part =
      sparse::balanced_row_partition(A, exec.parts_for(A.num_rows));
  const std::uint32_t* row_ptr = A.row_ptr.data();
  const IdxT* col_idx = A.col_idx.data();
  const MatV* values = A.values.data();
  // Interleave the batch vectors column-major (x_int[c*batch + j]) so the
  // `batch` reads one non-zero triggers land on adjacent addresses instead
  // of `batch` scattered cache lines — at clinical sizes the separate
  // vectors exceed L1/L2 and the gathers dominate.  Values are untouched, so
  // the arithmetic (and its bits) is unchanged.
  std::vector<Acc> x_int(batch * A.num_cols);
  for (std::uint64_t c = 0; c < A.num_cols; ++c) {
    for (std::size_t j = 0; j < batch; ++j) {
      x_int[c * batch + j] = xs[j][c];
    }
  }
  exec.run(part.parts(), [&](std::size_t p) {
    std::vector<Acc> acc(gpusim::kWarpSize * batch);
    std::vector<Acc> out(batch);
    for (std::uint64_t r = part.boundaries[p]; r < part.boundaries[p + 1];
         ++r) {
      native_row_product_batch(values, col_idx, x_int.data(), batch,
                               row_ptr[r], row_ptr[r + 1], acc.data(),
                               out.data());
      for (std::size_t j = 0; j < batch; ++j) {
        ys[j][r] = out[j];
      }
    }
  });
}

/// y = A·x with the classical family's subwarp accumulation order.
template <typename MatV, typename Acc, typename IdxT>
void native_classical_spmv(const sparse::CsrMatrix<MatV, IdxT>& A,
                           std::span<const Acc> x, std::span<Acc> y,
                           NativeExecutor& exec) {
  PD_CHECK_MSG(x.size() == A.num_cols, "native classical: x size mismatch");
  PD_CHECK_MSG(y.size() == A.num_rows, "native classical: y size mismatch");
  if (A.num_rows == 0) {
    return;
  }
  const unsigned sub = classical_subwarp_size(A.nnz(), A.num_rows);
  const sparse::RowPartition part =
      sparse::balanced_row_partition(A, exec.parts_for(A.num_rows));
  const std::uint32_t* row_ptr = A.row_ptr.data();
  const IdxT* col_idx = A.col_idx.data();
  const MatV* values = A.values.data();
  const Acc* xp = x.data();
  Acc* yp = y.data();
  exec.run(part.parts(), [&](std::size_t p) {
    for (std::uint64_t r = part.boundaries[p]; r < part.boundaries[p + 1];
         ++r) {
      yp[r] = native_classical_row(values, col_idx, xp, row_ptr[r],
                                   row_ptr[r + 1], sub);
    }
  });
}

/// y = A·x with the adaptive family's binning; work items are partitioned by
/// their nnz so one long row cannot serialize a thread's whole share.
template <typename MatV, typename Acc, typename IdxT>
void native_adaptive_spmv(const sparse::CsrMatrix<MatV, IdxT>& A,
                          const std::vector<AdaptiveWorkItem>& worklist,
                          std::span<const Acc> x, std::span<Acc> y,
                          NativeExecutor& exec) {
  PD_CHECK_MSG(x.size() == A.num_cols, "native adaptive: x size mismatch");
  PD_CHECK_MSG(y.size() == A.num_rows, "native adaptive: y size mismatch");
  PD_CHECK_MSG(!worklist.empty(), "native adaptive: empty worklist");
  const std::uint32_t* row_ptr = A.row_ptr.data();
  std::vector<std::uint64_t> costs(worklist.size());
  for (std::size_t i = 0; i < worklist.size(); ++i) {
    costs[i] = row_ptr[worklist[i].row_end] - row_ptr[worklist[i].row_begin];
  }
  const sparse::RowPartition part =
      sparse::balanced_cost_partition(costs, exec.parts_for(worklist.size()));
  const IdxT* col_idx = A.col_idx.data();
  const MatV* values = A.values.data();
  const Acc* xp = x.data();
  Acc* yp = y.data();
  const AdaptiveWorkItem* items = worklist.data();
  exec.run(part.parts(), [&](std::size_t p) {
    for (std::uint64_t i = part.boundaries[p]; i < part.boundaries[p + 1];
         ++i) {
      native_adaptive_item(row_ptr, values, col_idx, xp, yp, items[i]);
    }
  });
}

/// y = A·x with the rowsplit family's two deterministic phases.  The barrier
/// between phases is NativeExecutor::run returning (all phase-1 partials
/// written) — the host analogue of the kernel's two launches.
template <typename MatV, typename Acc, typename IdxT>
void native_rowsplit_spmv(const sparse::CsrMatrix<MatV, IdxT>& A,
                          const RowSplitPlan& plan, std::span<const Acc> x,
                          std::span<Acc> y, NativeExecutor& exec) {
  PD_CHECK_MSG(x.size() == A.num_cols, "native rowsplit: x size mismatch");
  PD_CHECK_MSG(y.size() == A.num_rows, "native rowsplit: y size mismatch");
  PD_CHECK_MSG(!plan.items.empty(), "native rowsplit: empty plan");
  std::vector<Acc> partials(std::max<std::uint32_t>(plan.num_partials, 1),
                            Acc{});
  const IdxT* col_idx = A.col_idx.data();
  const MatV* values = A.values.data();
  const Acc* xp = x.data();
  Acc* yp = y.data();
  Acc* pp = partials.data();

  std::vector<std::uint64_t> costs(plan.items.size());
  for (std::size_t i = 0; i < plan.items.size(); ++i) {
    costs[i] = plan.items[i].end - plan.items[i].begin;
  }
  const sparse::RowPartition part1 =
      sparse::balanced_cost_partition(costs, exec.parts_for(plan.items.size()));
  const RowSplitPlan::WorkItem* items = plan.items.data();
  exec.run(part1.parts(), [&](std::size_t p) {
    for (std::uint64_t i = part1.boundaries[p]; i < part1.boundaries[p + 1];
         ++i) {
      native_rowsplit_item(values, col_idx, xp, yp, pp, items[i]);
    }
  });

  if (plan.split_rows.empty()) {
    return;
  }
  std::vector<std::uint64_t> fold_costs(plan.split_rows.size());
  for (std::size_t i = 0; i < plan.split_rows.size(); ++i) {
    fold_costs[i] = plan.split_rows[i].num_slots;
  }
  const sparse::RowPartition part2 = sparse::balanced_cost_partition(
      fold_costs, exec.parts_for(plan.split_rows.size()));
  const RowSplitPlan::SplitRow* splits = plan.split_rows.data();
  exec.run(part2.parts(), [&](std::size_t p) {
    for (std::uint64_t i = part2.boundaries[p]; i < part2.boundaries[p + 1];
         ++i) {
      yp[splits[i].row] = native_rowsplit_fold(pp, splits[i]);
    }
  });
}

}  // namespace pd::kernels
