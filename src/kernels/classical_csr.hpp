#pragma once
// Ginkgo-style "classical" CSR SpMV.
//
// Ginkgo's classical kernel assigns a *subwarp* (1..32 lanes, power of two,
// chosen from the mean row length) to each row; a full warp therefore covers
// 32/subwarp consecutive rows.  Lanes of a subwarp stride their row's
// non-zeros; each subwarp folds its partials in a fixed tree and its leader
// writes the row result.  Compared to the paper's kernel the differences the
// measurement shows are structural: two row-bound loads per *row* rather
// than per warp, mixed-row gathers that coalesce worse when subwarps are
// narrow, and warp iteration count governed by the longest row in the group
// (divergence on skewed matrices).
//
// Used for Figure 6 (single precision, like the paper's comparison); the
// generic MatV/Acc form backs DoseEngine's family selection, where the same
// accumulation order must also run in half/double and full double.

#include <algorithm>
#include <span>

#include "common/error.hpp"
#include "gpusim/launch.hpp"
#include "kernels/spmv_common.hpp"
#include "sparse/csr.hpp"

namespace pd::kernels {

/// Ginkgo's subwarp-size heuristic: smallest power of two covering the mean
/// non-zeros per row, clamped to [1, 32].
inline unsigned classical_subwarp_size(std::uint64_t nnz, std::uint64_t rows) {
  const double mean = rows == 0 ? 0.0
                                : static_cast<double>(nnz) /
                                      static_cast<double>(rows);
  unsigned s = 1;
  while (s < 32 && static_cast<double>(s) < mean) {
    s *= 2;
  }
  return s;
}

template <typename MatV, typename Acc, typename IdxT>
SpmvRun run_classical_csr(gpusim::Gpu& gpu,
                          const sparse::CsrMatrix<MatV, IdxT>& A,
                          std::span<const Acc> x, std::span<Acc> y,
                          unsigned threads_per_block = kDefaultVectorTpb,
                          std::uint64_t schedule_seed = 0) {
  PD_CHECK_MSG(x.size() == A.num_cols, "classical: x size mismatch");
  PD_CHECK_MSG(y.size() == A.num_rows, "classical: y size mismatch");

  using namespace pd::gpusim;
  const unsigned sub = classical_subwarp_size(A.nnz(), A.num_rows);
  const unsigned rows_per_warp = kWarpSize / sub;
  const std::uint64_t warps_needed =
      (A.num_rows + rows_per_warp - 1) / rows_per_warp;

  const std::uint32_t* row_ptr = A.row_ptr.data();
  const IdxT* col_idx = A.col_idx.data();
  const MatV* values = A.values.data();
  const Acc* xp = x.data();
  Acc* yp = y.data();
  const std::uint64_t num_rows = A.num_rows;

  const LaunchConfig cfg = LaunchConfig::warp_per_item(
      warps_needed, threads_per_block, kClassicalRegs);

  register_spmv_buffers(gpu, A, x, y);
  SpmvRun run;
  run.config = cfg;
  run.precision = sizeof(Acc) == 8 ? FlopPrecision::kFp64 : FlopPrecision::kFp32;
  run.stats = gpu.run(
      cfg,
      [&](WarpCtx& w) {
        const std::uint64_t first_row = w.global_warp_id() * rows_per_warp;
        if (first_row >= num_rows) {
          return;
        }
        // Row bounds per subwarp row.
        std::uint32_t starts[kWarpSize], ends[kWarpSize];
        std::uint64_t max_len = 0;
        for (unsigned j = 0; j < rows_per_warp; ++j) {
          const std::uint64_t r = first_row + j;
          if (r >= num_rows) {
            starts[j] = ends[j] = 0;
            continue;
          }
          starts[j] = w.load_uniform(row_ptr + r);
          ends[j] = w.load_uniform(row_ptr + r + 1);
          max_len = std::max<std::uint64_t>(max_len, ends[j] - starts[j]);
        }

        Lanes<Acc> acc{};
        // The warp iterates until its *longest* row is exhausted; shorter
        // rows' lanes idle (SIMT divergence on skewed matrices).
        for (std::uint64_t iter = 0; iter * sub < max_len; ++iter) {
          Lanes<std::uint64_t> k{};
          LaneMask m = 0;
          for (unsigned lane = 0; lane < kWarpSize; ++lane) {
            const unsigned j = lane / sub;
            const unsigned o = lane % sub;
            if (first_row + j >= num_rows) {
              continue;
            }
            const std::uint64_t pos = starts[j] + iter * sub + o;
            if (pos < ends[j]) {
              k[lane] = pos;
              m |= (LaneMask{1} << lane);
            }
          }
          if (m == 0) {
            continue;
          }
          const Lanes<IdxT> cols = w.gather(col_idx, k, m);
          const Lanes<MatV> vals = w.gather(values, k, m);
          Lanes<std::uint64_t> ci{};
          for (unsigned lane = 0; lane < kWarpSize; ++lane) {
            if (lane_active(m, lane)) {
              ci[lane] = cols[lane];
            }
          }
          const Lanes<Acc> xv = w.gather(xp, ci, m);
          for (unsigned lane = 0; lane < kWarpSize; ++lane) {
            if (lane_active(m, lane)) {
              acc[lane] = acc[lane] + convert_value<Acc>(vals[lane]) * xv[lane];
            }
          }
          w.count_flops(2, m);
        }

        // Per-subwarp tree reduction, then the subwarp leaders store the
        // (consecutive) row results.
        Lanes<Acc> results{};
        LaneMask store_mask = 0;
        for (unsigned j = 0; j < rows_per_warp; ++j) {
          if (first_row + j >= num_rows) {
            continue;
          }
          Acc partial[kWarpSize] = {};
          for (unsigned o = 0; o < sub; ++o) {
            partial[o] = acc[j * sub + o];
          }
          for (unsigned offset = sub / 2; offset > 0; offset /= 2) {
            for (unsigned i = 0; i < offset; ++i) {
              partial[i] += partial[i + offset];
            }
          }
          results[j] = partial[0];
          store_mask |= (LaneMask{1} << j);
        }
        w.count_instrs(5, store_mask);  // subwarp shfl reduction slots
        w.store_contiguous(yp, first_row, results, store_mask);
      },
      schedule_seed);
  return run;
}

/// Single-precision form used by the Figure 6 comparison; keeps the original
/// concrete signature so callers passing std::vector<float> still deduce.
template <typename IdxT>
SpmvRun run_classical_csr(gpusim::Gpu& gpu,
                          const sparse::CsrMatrix<float, IdxT>& A,
                          std::span<const float> x, std::span<float> y,
                          unsigned threads_per_block = kDefaultVectorTpb,
                          std::uint64_t schedule_seed = 0) {
  return run_classical_csr<float, float, IdxT>(gpu, A, x, y, threads_per_block,
                                               schedule_seed);
}

}  // namespace pd::kernels
