#pragma once
// Row-splitting vector CSR SpMV with *deterministic* two-phase reduction.
//
// The paper's warp-per-row kernel leaves one warp alone with each 16k-long
// liver row while thousands of short-row warps finish instantly.  The classic
// fix — splitting long rows across warps — normally costs reproducibility,
// because the partials are combined with atomics.  This kernel keeps the
// §II-D guarantee: phase 1 writes each chunk's partial sum to a *fixed slot*
// in a scratch array (no atomics), and phase 2 reduces each split row's
// slots in a fixed order.  The result is bitwise independent of the block
// schedule, like the paper's kernel, while bounding every warp's work.

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "gpusim/launch.hpp"
#include "kernels/spmv_common.hpp"
#include "sparse/csr.hpp"

namespace pd::kernels {

/// Host-side analysis: one work item per row chunk.
struct RowSplitPlan {
  struct WorkItem {
    std::uint32_t row = 0;
    std::uint32_t begin = 0;          ///< CSR value range [begin, end).
    std::uint32_t end = 0;
    std::int32_t partial_slot = -1;   ///< -1: direct store to y.
  };
  struct SplitRow {
    std::uint32_t row = 0;
    std::uint32_t first_slot = 0;
    std::uint32_t num_slots = 0;
  };
  std::vector<WorkItem> items;
  std::vector<SplitRow> split_rows;
  std::uint32_t num_partials = 0;
  std::uint32_t chunk_nnz = 0;
};

template <typename V, typename I>
RowSplitPlan build_row_split_plan(const sparse::CsrMatrix<V, I>& A,
                                  std::uint32_t chunk_nnz = 512) {
  PD_CHECK_MSG(chunk_nnz >= gpusim::kWarpSize,
               "row split: chunk must hold at least one warp-load");
  RowSplitPlan plan;
  plan.chunk_nnz = chunk_nnz;
  for (std::uint32_t r = 0; r < A.num_rows; ++r) {
    const std::uint32_t begin = A.row_ptr[r];
    const std::uint32_t end = A.row_ptr[r + 1];
    if (end - begin <= chunk_nnz) {
      plan.items.push_back({r, begin, end, -1});
      continue;
    }
    RowSplitPlan::SplitRow split{r, plan.num_partials, 0};
    for (std::uint32_t k = begin; k < end; k += chunk_nnz) {
      plan.items.push_back({r, k, std::min(end, k + chunk_nnz),
                            static_cast<std::int32_t>(plan.num_partials)});
      ++plan.num_partials;
      ++split.num_slots;
    }
    plan.split_rows.push_back(split);
  }
  return plan;
}

/// Two-phase launch: y = A·x with bounded per-warp work.  Returns the
/// combined counters of both phases.
template <typename MatV, typename Acc, typename IdxT>
SpmvRun run_rowsplit_csr(gpusim::Gpu& gpu, const sparse::CsrMatrix<MatV, IdxT>& A,
                         const RowSplitPlan& plan, std::span<const Acc> x,
                         std::span<Acc> y,
                         unsigned threads_per_block = kDefaultVectorTpb,
                         std::uint64_t schedule_seed = 0) {
  PD_CHECK_MSG(x.size() == A.num_cols, "rowsplit: x size mismatch");
  PD_CHECK_MSG(y.size() == A.num_rows, "rowsplit: y size mismatch");
  PD_CHECK_MSG(!plan.items.empty(), "rowsplit: empty plan");

  using namespace pd::gpusim;
  const IdxT* col_idx = A.col_idx.data();
  const MatV* values = A.values.data();
  const Acc* xp = x.data();
  Acc* yp = y.data();
  const RowSplitPlan::WorkItem* items = plan.items.data();
  const std::uint64_t num_items = plan.items.size();

  std::vector<Acc> partials(std::max<std::uint32_t>(plan.num_partials, 1),
                            Acc{});
  Acc* pp = partials.data();

  // Phase 1: one warp per chunk; partial sums go to fixed slots.
  const LaunchConfig cfg1 = LaunchConfig::warp_per_item(
      num_items, threads_per_block, kVectorCsrRegs);
  register_spmv_buffers(gpu, A, x, y);
  if (gpusim::CheckContext* chk = gpu.check()) {
    // Registered once for both phases (tracked buffers persist across
    // launches): phase 1 fills the partial slots, phase 2's reads then pass
    // initcheck against the same written-shadow.
    chk->track_global(items, num_items * sizeof(RowSplitPlan::WorkItem),
                      "rowsplit.items", /*initialized=*/true);
    chk->track_global(partials.data(), partials.size() * sizeof(Acc),
                      "rowsplit.partials", /*initialized=*/false);
    if (!plan.split_rows.empty()) {
      chk->track_global(plan.split_rows.data(),
                        plan.split_rows.size() * sizeof(RowSplitPlan::SplitRow),
                        "rowsplit.splits", /*initialized=*/true);
    }
  }
  SpmvRun run;
  run.config = cfg1;
  run.precision = sizeof(Acc) == 8 ? FlopPrecision::kFp64 : FlopPrecision::kFp32;
  run.stats = gpu.run(
      cfg1,
      [&](WarpCtx& w) {
        const std::uint64_t idx = w.global_warp_id();
        if (idx >= num_items) {
          return;
        }
        const RowSplitPlan::WorkItem item = w.load_uniform(items + idx);
        Lanes<Acc> acc{};
        for (std::uint64_t base = item.begin; base < item.end;
             base += kWarpSize) {
          const auto remaining = static_cast<unsigned>(
              std::min<std::uint64_t>(kWarpSize, item.end - base));
          const LaneMask m = first_lanes(remaining);
          const Lanes<IdxT> cols = w.load_contiguous(col_idx, base, m);
          const Lanes<MatV> vals = w.load_contiguous(values, base, m);
          const Lanes<Acc> xv = w.gather(xp, cols, m);
          for (unsigned lane = 0; lane < kWarpSize; ++lane) {
            if (lane_active(m, lane)) {
              acc[lane] = acc[lane] + convert_value<Acc>(vals[lane]) * xv[lane];
            }
          }
          w.count_flops(2, m);
        }
        const Acc total = w.reduce_add(acc);
        if (item.partial_slot < 0) {
          w.store_uniform(yp + item.row, total);
        } else {
          w.store_uniform(pp + item.partial_slot, total);
        }
      },
      schedule_seed);

  if (plan.split_rows.empty()) {
    return run;
  }

  // Phase 2: one warp per split row, fixed-order reduction of its slots
  // (strided lane accumulation + the same deterministic tree as phase 1).
  const RowSplitPlan::SplitRow* splits = plan.split_rows.data();
  const std::uint64_t num_splits = plan.split_rows.size();
  const LaunchConfig cfg2 = LaunchConfig::warp_per_item(
      num_splits, threads_per_block, kVectorCsrRegs);
  const KernelStats phase2 = gpu.run(
      cfg2,
      [&](WarpCtx& w) {
        const std::uint64_t idx = w.global_warp_id();
        if (idx >= num_splits) {
          return;
        }
        const RowSplitPlan::SplitRow split = w.load_uniform(splits + idx);
        Lanes<Acc> acc{};
        for (std::uint64_t base = split.first_slot;
             base < split.first_slot + split.num_slots; base += kWarpSize) {
          const auto remaining = static_cast<unsigned>(std::min<std::uint64_t>(
              kWarpSize, split.first_slot + split.num_slots - base));
          const LaneMask m = first_lanes(remaining);
          const Lanes<Acc> part = w.load_contiguous(pp, base, m);
          for (unsigned lane = 0; lane < kWarpSize; ++lane) {
            if (lane_active(m, lane)) {
              acc[lane] = acc[lane] + part[lane];
            }
          }
          w.count_flops(1, m);
        }
        w.store_uniform(yp + split.row, w.reduce_add(acc));
      },
      schedule_seed + 1);

  // Combine the two phases' counters.
  run.stats.traffic += phase2.traffic;
  run.stats.compute.flops += phase2.compute.flops;
  run.stats.compute.warp_arith_instrs += phase2.compute.warp_arith_instrs;
  run.stats.compute.active_lane_ops += phase2.compute.active_lane_ops;
  run.stats.compute.total_lane_ops += phase2.compute.total_lane_ops;
  run.stats.blocks_launched += phase2.blocks_launched;
  run.stats.warps_launched += phase2.warps_launched;
  return run;
}

}  // namespace pd::kernels
