#include "kernels/dose_engine.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "sparse/convert.hpp"
#include "kernels/vector_csr.hpp"

namespace pd::kernels {

DoseEngine::DoseEngine(sparse::CsrF64 matrix, gpusim::DeviceSpec device,
                       Mode mode, unsigned threads_per_block)
    : mode_(mode), threads_per_block_(threads_per_block) {
  matrix.validate();
  stats_ = sparse::compute_stats(matrix);
  switch (mode_) {
    case Mode::kHalfDouble:
      half_matrix_ = sparse::convert_values<pd::Half>(matrix);
      break;
    case Mode::kSingle:
      single_matrix_ = sparse::convert_values<float>(matrix);
      break;
    case Mode::kDouble:
      double_matrix_ = std::move(matrix);
      break;
  }
  gpu_ = std::make_unique<gpusim::Gpu>(std::move(device));
}

DoseEngine::~DoseEngine() = default;

void DoseEngine::set_engine_options(const gpusim::EngineOptions& opts) {
  gpu_->set_engine(opts);
}

const gpusim::EngineOptions& DoseEngine::engine_options() const {
  return gpu_->engine();
}

std::vector<double> DoseEngine::compute(std::span<const double> spot_weights,
                                        std::uint64_t schedule_seed) {
  PD_CHECK_MSG(spot_weights.size() == stats_.cols,
               "DoseEngine::compute: spot weight count mismatch");
  std::vector<double> dose(stats_.rows, 0.0);

  switch (mode_) {
    case Mode::kHalfDouble: {
      last_run_ = run_vector_csr<pd::Half, double>(
          *gpu_, half_matrix_, spot_weights, std::span<double>(dose),
          threads_per_block_, schedule_seed);
      break;
    }
    case Mode::kSingle: {
      std::vector<float> x32(spot_weights.size());
      std::transform(spot_weights.begin(), spot_weights.end(), x32.begin(),
                     [](double v) { return static_cast<float>(v); });
      std::vector<float> y32(stats_.rows, 0.0f);
      last_run_ = run_vector_csr<float, float>(
          *gpu_, single_matrix_, std::span<const float>(x32),
          std::span<float>(y32), threads_per_block_, schedule_seed);
      std::transform(y32.begin(), y32.end(), dose.begin(),
                     [](float v) { return static_cast<double>(v); });
      break;
    }
    case Mode::kDouble: {
      last_run_ = run_vector_csr<double, double>(
          *gpu_, double_matrix_, spot_weights, std::span<double>(dose),
          threads_per_block_, schedule_seed);
      break;
    }
  }
  has_run_ = true;
  return dose;
}

const SpmvRun& DoseEngine::last_run() const {
  PD_CHECK_MSG(has_run_, "DoseEngine: no compute() has run yet");
  return last_run_;
}

gpusim::PerfEstimate DoseEngine::last_estimate() const {
  PD_CHECK_MSG(has_run_, "DoseEngine: no compute() has run yet");
  gpusim::PerfInput in;
  in.stats = last_run_.stats;
  in.config = last_run_.config;
  in.precision = last_run_.precision;
  in.mean_work_per_warp = stats_.mean_nnz_per_nonempty_row;
  return gpusim::estimate_performance(gpu_->spec(), in);
}

}  // namespace pd::kernels
