#include "kernels/dose_engine.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"
#include "common/threadcheck.hpp"
#include "kernels/classical_csr.hpp"
#include "kernels/multivector_csr.hpp"
#include "kernels/rsformat_spmv.hpp"
#include "kernels/sellcs_spmv.hpp"
#include "kernels/vector_csr.hpp"
#include "sparse/convert.hpp"
#include "sparse/partition.hpp"

namespace pd::kernels {

DoseEngine::DoseEngine(sparse::CsrF64 matrix, gpusim::DeviceSpec device,
                       Mode mode, unsigned threads_per_block, Family family,
                       Backend backend)
    : mode_(mode),
      family_(family),
      backend_(backend),
      threads_per_block_(threads_per_block) {
  matrix.validate();
  stats_ = sparse::compute_stats(matrix);
  // Host-side analysis runs on the structure, which every precision mode
  // shares with the double input.
  switch (family_) {
    case Family::kRowSplit:
      rowsplit_plan_ = build_row_split_plan(matrix);
      break;
    case Family::kAdaptive:
      adaptive_worklist_ = build_adaptive_worklist(matrix);
      break;
    default:
      break;
  }
  switch (mode_) {
    case Mode::kHalfDouble:
      half_matrix_ = sparse::convert_values<pd::Half>(matrix);
      break;
    case Mode::kSingle:
      single_matrix_ = sparse::convert_values<float>(matrix);
      break;
    case Mode::kDouble:
      double_matrix_ = std::move(matrix);
      break;
  }
  gpu_ = std::make_unique<gpusim::Gpu>(std::move(device));
  if (gpusim::simcheck_env_enabled()) {
    gpu_->enable_check();
  }
}

DoseEngine::~DoseEngine() = default;

void DoseEngine::set_engine_options(const gpusim::EngineOptions& opts) {
  gpu_->set_engine(opts);
}

const gpusim::EngineOptions& DoseEngine::engine_options() const {
  return gpu_->engine();
}

void DoseEngine::enable_check(const gpusim::CheckConfig& cfg) {
  gpu_->enable_check(cfg);
}

void DoseEngine::disable_check() { gpu_->disable_check(); }

bool DoseEngine::check_enabled() const { return gpu_->check_enabled(); }

const gpusim::CheckReport& DoseEngine::check_report() const {
  return gpu_->check_report();
}

sparse::CsrF64 DoseEngine::stored_matrix_as_double() const {
  switch (mode_) {
    case Mode::kHalfDouble:
      return sparse::convert_values<double>(half_matrix_);
    case Mode::kSingle:
      return sparse::convert_values<double>(single_matrix_);
    case Mode::kDouble:
      break;
  }
  return double_matrix_;
}

void DoseEngine::ensure_fast_storage(FastFormat format) {
  // σ == 0 ("all rows") resolves against the row count so every SELL builder
  // receives a positive multiple of C.
  const auto resolved_sigma = [&]() -> std::uint32_t {
    if (fast_sell_sigma_ != 0) {
      return fast_sell_sigma_;
    }
    const std::uint64_t rows = std::max<std::uint64_t>(stats_.rows, 1);
    const std::uint64_t up =
        (rows + fast_sell_c_ - 1) / fast_sell_c_ * fast_sell_c_;
    return static_cast<std::uint32_t>(
        std::min<std::uint64_t>(up, std::numeric_limits<std::uint32_t>::max() /
                                        fast_sell_c_ * fast_sell_c_));
  };
  switch (format) {
    case FastFormat::kRsFormat:
      if (!rs_matrix_) {
        rs_matrix_ = std::make_unique<rsformat::RsMatrix>(
            rsformat::RsMatrix::from_csr(stored_matrix_as_double()));
      }
      return;
    case FastFormat::kSellCs:
      if (!sell_matrix_) {
        // Float values: exact for half-widened storage, 2^-24 relative error
        // otherwise — both inside the fast tier's tolerance bound.
        sell_matrix_ = std::make_unique<sparse::SellCsMatrix<float>>(
            sparse::csr_to_sellcs(
                sparse::convert_values<float>(stored_matrix_as_double()),
                fast_sell_c_, resolved_sigma()));
      }
      return;
    case FastFormat::kSellCsQ:
      if (!sellq_matrix_) {
        sellq_matrix_ = std::make_unique<sparse::SellCsQMatrix>(
            sparse::csr_to_sellcs_q(stored_matrix_as_double(), fast_sell_c_,
                                    resolved_sigma()));
      }
      return;
    case FastFormat::kAuto:
      break;
  }
  PD_CHECK_MSG(false, "DoseEngine: kAuto must be resolved before storage");
}

void DoseEngine::set_tier(Tier tier, FastFormat format) {
  if (format == FastFormat::kAuto) {
    format = auto_fast_format_;
  }
  if (tier == Tier::kFast) {
    ensure_fast_storage(format);
  }
  tier_ = tier;
  fast_format_ = format;
}

void DoseEngine::set_fast_sell_config(std::uint32_t chunk_height,
                                      std::uint32_t sigma) {
  PD_CHECK_MSG(chunk_height > 0,
               "DoseEngine: SELL chunk height must be positive");
  PD_CHECK_MSG(sigma % chunk_height == 0,
               "DoseEngine: SELL σ must be 0 (all rows) or a multiple of C");
  if (chunk_height == fast_sell_c_ && sigma == fast_sell_sigma_) {
    return;
  }
  fast_sell_c_ = chunk_height;
  fast_sell_sigma_ = sigma;
  // Drop the cached SELL containers; the next set_tier rebuilds them with
  // the new geometry.  rsformat has no geometry knob and stays cached.
  sell_matrix_.reset();
  sellq_matrix_.reset();
  if (tier_ == Tier::kFast && fast_format_ != FastFormat::kRsFormat) {
    ensure_fast_storage(fast_format_);
  }
}

void DoseEngine::set_fast_threads(unsigned threads) {
  fast_native_.set_threads(threads);
  fast_threads_set_ = true;
}

void DoseEngine::set_auto_fast_format(FastFormat format) {
  PD_CHECK_MSG(format != FastFormat::kAuto,
               "DoseEngine: kAuto must resolve to a concrete format");
  auto_fast_format_ = format;
}

const rsformat::RsMatrix& DoseEngine::fast_rs_matrix() const {
  PD_CHECK_MSG(rs_matrix_ != nullptr,
               "DoseEngine: rsformat fast storage not built "
               "(set_tier(Tier::kFast, FastFormat::kRsFormat) first)");
  return *rs_matrix_;
}

const sparse::SellCsMatrix<float>& DoseEngine::fast_sell_matrix() const {
  PD_CHECK_MSG(sell_matrix_ != nullptr,
               "DoseEngine: SELL-C-σ fast storage not built "
               "(set_tier(Tier::kFast, FastFormat::kSellCs) first)");
  return *sell_matrix_;
}

const sparse::SellCsQMatrix& DoseEngine::fast_sellq_matrix() const {
  PD_CHECK_MSG(sellq_matrix_ != nullptr,
               "DoseEngine: quantized SELL-C-σ fast storage not built "
               "(set_tier(Tier::kFast, FastFormat::kSellCsQ) first)");
  return *sellq_matrix_;
}

void DoseEngine::compute_fast(std::span<const double> x, std::span<double> y) {
  NativeExecutor& exec = fast_threads_set_ ? fast_native_ : native_;
  switch (fast_format_) {
    case FastFormat::kRsFormat:
      rsformat_spmv(*rs_matrix_, x, y, exec);
      return;
    case FastFormat::kSellCs:
      sellcs_spmv(*sell_matrix_, x, y, exec);
      return;
    case FastFormat::kSellCsQ:
      sellcs_q_spmv(*sellq_matrix_, x, y, exec);
      return;
    case FastFormat::kAuto:
      break;  // resolved by set_tier; unreachable.
  }
  PD_CHECK_MSG(false, "DoseEngine: unresolved fast format");
}

void DoseEngine::ensure_delta_context() {
  if (delta_) {
    return;
  }
  auto ctx = std::make_unique<DeltaContext>();
  ctx->csc = build_csc_sidecar(stored_matrix_as_double());
  switch (family_) {
    case Family::kAdaptive: {
      // Items partition the row space in order; invert to row → item.
      ctx->adaptive_row_item.resize(stats_.rows);
      for (std::size_t i = 0; i < adaptive_worklist_.size(); ++i) {
        const AdaptiveWorkItem& item = adaptive_worklist_[i];
        const std::uint32_t end =
            item.long_row != 0 ? item.row_begin + 1 : item.row_end;
        for (std::uint32_t r = item.row_begin; r < end; ++r) {
          ctx->adaptive_row_item[r] = static_cast<std::uint32_t>(i);
        }
      }
      break;
    }
    case Family::kRowSplit: {
      // The plan is built row by row, so each row's items are contiguous and
      // ascending; record the per-row item range and split-row index.
      ctx->rowsplit_item_begin.assign(stats_.rows + 1, 0);
      for (const RowSplitPlan::WorkItem& item : rowsplit_plan_.items) {
        ++ctx->rowsplit_item_begin[item.row + 1];
      }
      for (std::uint64_t r = 0; r < stats_.rows; ++r) {
        ctx->rowsplit_item_begin[r + 1] += ctx->rowsplit_item_begin[r];
      }
      ctx->rowsplit_split.assign(stats_.rows, -1);
      for (std::size_t s = 0; s < rowsplit_plan_.split_rows.size(); ++s) {
        ctx->rowsplit_split[rowsplit_plan_.split_rows[s].row] =
            static_cast<std::int32_t>(s);
      }
      // Stale-safe scratch: a replayed row folds only the slots its own
      // items just wrote, so the buffers are sized once and never cleared.
      ctx->partials64.resize(rowsplit_plan_.num_partials);
      ctx->partials32.resize(rowsplit_plan_.num_partials);
      break;
    }
    default:
      break;
  }
  delta_ = std::move(ctx);
}

const CscSidecar& DoseEngine::csc_sidecar() {
  ensure_delta_context();
  return delta_->csc;
}

template <typename MatV, typename Acc>
void DoseEngine::delta_recompute_rows(const sparse::CsrMatrix<MatV>& A,
                                      std::span<const Acc> x,
                                      std::span<const std::uint32_t> rows,
                                      std::span<double> dose) {
  if (rows.empty()) {
    return;
  }
  const std::uint32_t* row_ptr = A.row_ptr.data();
  const MatV* values = A.values.data();
  const auto* col_idx = A.col_idx.data();
  if (family_ == Family::kAdaptive) {
    // Short-row groups recompute as whole items (the segmented scan couples
    // the group); unaffected group-mates are rewritten with identical bits.
    // `rows` ascends and items partition the row space, so the item indices
    // come out nondecreasing — dedupe by skipping repeats.
    std::vector<std::uint32_t> items;
    items.reserve(rows.size());
    for (const std::uint32_t r : rows) {
      const std::uint32_t i = delta_->adaptive_row_item[r];
      if (items.empty() || items.back() != i) {
        items.push_back(i);
      }
    }
    std::vector<std::uint64_t> costs(items.size());
    for (std::size_t i = 0; i < items.size(); ++i) {
      const AdaptiveWorkItem& item = adaptive_worklist_[items[i]];
      const std::uint32_t end =
          item.long_row != 0 ? item.row_begin + 1 : item.row_end;
      costs[i] = row_ptr[end] - row_ptr[item.row_begin];
    }
    const sparse::RowPartition part =
        sparse::balanced_cost_partition(costs, native_.parts_for(items.size()));
    native_.run(part.parts(), [&](std::size_t p) {
      for (std::uint64_t i = part.boundaries[p]; i < part.boundaries[p + 1];
           ++i) {
        native_adaptive_item_widen(row_ptr, values, col_idx, x.data(),
                                   dose.data(), adaptive_worklist_[items[i]]);
      }
    });
    return;
  }
  std::vector<std::uint64_t> costs(rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    costs[i] = row_ptr[rows[i] + 1] - row_ptr[rows[i]];
  }
  const sparse::RowPartition part =
      sparse::balanced_cost_partition(costs, native_.parts_for(rows.size()));
  const unsigned sub = family_ == Family::kClassical
                           ? classical_subwarp_size(stats_.nnz, stats_.rows)
                           : 0;
  Acc* partials = nullptr;
  if (family_ == Family::kRowSplit) {
    if constexpr (std::is_same_v<Acc, float>) {
      partials = delta_->partials32.data();
    } else {
      partials = delta_->partials64.data();
    }
  }
  native_.run(part.parts(), [&](std::size_t p) {
    for (std::uint64_t i = part.boundaries[p]; i < part.boundaries[p + 1];
         ++i) {
      const std::uint32_t r = rows[i];
      switch (family_) {
        case Family::kVector:
          dose[r] = static_cast<double>(native_row_product(
              values, col_idx, x.data(), row_ptr[r], row_ptr[r + 1]));
          break;
        case Family::kClassical:
          dose[r] = static_cast<double>(native_classical_row(
              values, col_idx, x.data(), row_ptr[r], row_ptr[r + 1], sub));
          break;
        case Family::kRowSplit: {
          // Replay the row's phase-1 items (distinct partial slots per row,
          // so concurrent rows never collide), then its phase-2 fold.
          Acc direct{};
          for (std::uint32_t it = delta_->rowsplit_item_begin[r];
               it < delta_->rowsplit_item_begin[r + 1]; ++it) {
            const RowSplitPlan::WorkItem& item = rowsplit_plan_.items[it];
            const Acc total = native_row_product(values, col_idx, x.data(),
                                                 item.begin, item.end);
            if (item.partial_slot < 0) {
              direct = total;
            } else {
              partials[item.partial_slot] = total;
            }
          }
          const std::int32_t s = delta_->rowsplit_split[r];
          dose[r] = static_cast<double>(
              s < 0 ? direct
                    : native_rowsplit_fold(
                          static_cast<const Acc*>(partials),
                          rowsplit_plan_.split_rows[static_cast<std::size_t>(
                              s)]));
          break;
        }
        case Family::kAdaptive:
          break;  // handled above
      }
    }
  });
}

void DoseEngine::apply_delta(std::span<double> dose,
                             std::span<const double> base_weights,
                             std::span<const double> new_weights,
                             DeltaMode mode) {
  pd::threadcheck::note_compute("DoseEngine::apply_delta");
  PD_CHECK_MSG(dose.size() == stats_.rows,
               "DoseEngine::apply_delta: dose length mismatch");
  PD_CHECK_MSG(base_weights.size() == stats_.cols,
               "DoseEngine::apply_delta: base weight count mismatch");
  PD_CHECK_MSG(new_weights.size() == stats_.cols,
               "DoseEngine::apply_delta: new weight count mismatch");
  ensure_delta_context();
  const WeightDelta delta = diff_weights(base_weights, new_weights);
  last_delta_ = DeltaRun{};
  last_delta_.mode = mode;
  last_delta_.changed_cols = delta.cols.size();
  last_delta_.delta_nnz = csc_delta_nnz(delta_->csc, delta.cols);
  if (delta.cols.empty()) {
    return;
  }
  if (mode == DeltaMode::kFast) {
    // touched_rows stays 0: the axpy never builds a row worklist (that pass
    // would cost as much as the update itself).
    csc_delta_axpy(delta_->csc, delta.cols, delta.dw, dose);
    return;
  }
  const std::vector<std::uint32_t> rows =
      csc_affected_rows(delta_->csc, delta.cols, delta_->row_mark);
  last_delta_.touched_rows = rows.size();
  switch (mode_) {
    case Mode::kHalfDouble:
      delta_recompute_rows<pd::Half, double>(half_matrix_, new_weights, rows,
                                             dose);
      break;
    case Mode::kSingle: {
      // Full compute converts the whole weight vector to float; replaying a
      // row needs the same x32 (affected rows read unchanged columns too).
      std::vector<float> x32(new_weights.size());
      std::transform(new_weights.begin(), new_weights.end(), x32.begin(),
                     [](double v) { return static_cast<float>(v); });
      delta_recompute_rows<float, float>(single_matrix_,
                                         std::span<const float>(x32), rows,
                                         dose);
      break;
    }
    case Mode::kDouble:
      delta_recompute_rows<double, double>(double_matrix_, new_weights, rows,
                                           dose);
      break;
  }
}

std::vector<double> DoseEngine::compute_delta(
    std::span<const double> base_dose, std::span<const double> base_weights,
    std::span<const double> new_weights, DeltaMode mode) {
  pd::threadcheck::note_compute("DoseEngine::compute_delta");
  PD_CHECK_MSG(base_dose.size() == stats_.rows,
               "DoseEngine::compute_delta: base dose length mismatch");
  std::vector<double> dose(base_dose.begin(), base_dose.end());
  apply_delta(dose, base_weights, new_weights, mode);
  return dose;
}

template <typename MatV, typename Acc>
void DoseEngine::execute(const sparse::CsrMatrix<MatV>& A,
                         std::span<const Acc> x, std::span<Acc> y,
                         std::uint64_t schedule_seed) {
  if (backend_ == Backend::kNative) {
    switch (family_) {
      case Family::kVector:
        native_vector_spmv(A, x, y, native_);
        break;
      case Family::kClassical:
        native_classical_spmv(A, x, y, native_);
        break;
      case Family::kRowSplit:
        native_rowsplit_spmv(A, rowsplit_plan_, x, y, native_);
        break;
      case Family::kAdaptive:
        native_adaptive_spmv(A, adaptive_worklist_, x, y, native_);
        break;
    }
    return;
  }
  switch (family_) {
    case Family::kVector:
      last_run_ = run_vector_csr<MatV, Acc>(*gpu_, A, x, y, threads_per_block_,
                                            schedule_seed);
      break;
    case Family::kClassical:
      last_run_ = run_classical_csr<MatV, Acc, std::uint32_t>(
          *gpu_, A, x, y, threads_per_block_, schedule_seed);
      break;
    case Family::kRowSplit:
      last_run_ = run_rowsplit_csr<MatV, Acc>(*gpu_, A, rowsplit_plan_, x, y,
                                              threads_per_block_,
                                              schedule_seed);
      break;
    case Family::kAdaptive:
      last_run_ = run_adaptive_csr<MatV, Acc, std::uint32_t>(
          *gpu_, A, adaptive_worklist_, x, y, threads_per_block_,
          schedule_seed);
      break;
  }
  has_run_ = true;
}

template <typename MatV, typename Acc>
void DoseEngine::execute_batch(const sparse::CsrMatrix<MatV>& A,
                               std::span<const Acc* const> xs,
                               std::span<Acc* const> ys,
                               std::uint64_t schedule_seed) {
  const std::size_t batch = xs.size();
  if (family_ == Family::kVector && backend_ == Backend::kNative) {
    native_vector_spmv_batch(A, xs, ys, native_);
    return;
  }
  if (family_ == Family::kVector && backend_ == Backend::kGpusim) {
    // Chunk through the multi-vector kernel (register pressure caps the
    // simulated batch width); each chunk streams the matrix once.
    std::size_t done = 0;
    while (done < batch) {
      const std::size_t width = std::min(kMaxSpmvBatch, batch - done);
      std::vector<std::span<const Acc>> xspans;
      std::vector<std::span<Acc>> yspans;
      for (std::size_t j = 0; j < width; ++j) {
        xspans.emplace_back(xs[done + j], A.num_cols);
        yspans.emplace_back(ys[done + j], A.num_rows);
      }
      last_run_ = run_vector_csr_multi<MatV, Acc>(
          *gpu_, A, std::span<const std::span<const Acc>>(xspans),
          std::span<const std::span<Acc>>(yspans), threads_per_block_,
          schedule_seed);
      has_run_ = true;
      done += width;
    }
    return;
  }
  // Remaining families have no batched traversal; loop single products.
  for (std::size_t j = 0; j < batch; ++j) {
    execute<MatV, Acc>(A, std::span<const Acc>(xs[j], A.num_cols),
                       std::span<Acc>(ys[j], A.num_rows), schedule_seed);
  }
}

std::vector<double> DoseEngine::compute(std::span<const double> spot_weights,
                                        std::uint64_t schedule_seed) {
  // Latency lint anchor (docs/threadcheck.md): holding any pd::Mutex across
  // this call serializes the serving stack on a multi-ms kernel.
  pd::threadcheck::note_compute("DoseEngine::compute");
  PD_CHECK_MSG(spot_weights.size() == stats_.cols,
               "DoseEngine::compute: spot weight count mismatch");
  std::vector<double> dose(stats_.rows, 0.0);

  if (tier_ == Tier::kFast) {
    // Fast tier: host-native execution on the compressed container for
    // every mode (the storage was widened to double before compression, so
    // the precision mode only changed what got compressed).
    compute_fast(spot_weights, std::span<double>(dose));
    return dose;
  }

  switch (mode_) {
    case Mode::kHalfDouble:
      execute<pd::Half, double>(half_matrix_, spot_weights,
                                std::span<double>(dose), schedule_seed);
      break;
    case Mode::kSingle: {
      std::vector<float> x32(spot_weights.size());
      std::transform(spot_weights.begin(), spot_weights.end(), x32.begin(),
                     [](double v) { return static_cast<float>(v); });
      std::vector<float> y32(stats_.rows, 0.0f);
      execute<float, float>(single_matrix_, std::span<const float>(x32),
                            std::span<float>(y32), schedule_seed);
      std::transform(y32.begin(), y32.end(), dose.begin(),
                     [](float v) { return static_cast<double>(v); });
      break;
    }
    case Mode::kDouble:
      execute<double, double>(double_matrix_, spot_weights,
                              std::span<double>(dose), schedule_seed);
      break;
  }
  return dose;
}

std::vector<std::vector<double>> DoseEngine::compute_batch(
    std::span<const double> weights, std::size_t batch,
    std::uint64_t schedule_seed) {
  pd::threadcheck::note_compute("DoseEngine::compute_batch");
  PD_CHECK_MSG(batch > 0, "DoseEngine::compute_batch: empty batch");
  PD_CHECK_MSG(weights.size() == batch * stats_.cols,
               "DoseEngine::compute_batch: weights must hold batch x spots");
  if (batch == 1) {
    // A width-1 batch is exactly one product; the single-product kernels are
    // bitwise identical per column (the compute_batch contract) and skip the
    // batched accumulator's per-nonzero inner loop over j.
    std::vector<std::vector<double>> doses(1);
    doses[0] = compute(weights, schedule_seed);
    return doses;
  }
  if (tier_ == Tier::kFast) {
    if (fast_format_ == FastFormat::kRsFormat) {
      // Batched fused traversal: one decode pass of the compressed streams
      // feeds all K accumulators (kernels/rsformat_spmv.hpp).  At one thread
      // each column is bitwise identical to compute() of that column.
      std::vector<std::vector<double>> doses(
          batch, std::vector<double>(stats_.rows, 0.0));
      std::vector<const double*> xs(batch);
      std::vector<double*> ys(batch);
      for (std::size_t j = 0; j < batch; ++j) {
        xs[j] = weights.data() + j * stats_.cols;
        ys[j] = doses[j].data();
      }
      rsformat_spmv_batch(*rs_matrix_, xs, ys,
                          fast_threads_set_ ? fast_native_ : native_);
      return doses;
    }
    // The SELL kernels keep per-row private accumulators, so a batched
    // traversal would gain only the x gathers; loop single products (each
    // column trivially identical to compute() on that column).
    std::vector<std::vector<double>> doses(batch);
    for (std::size_t j = 0; j < batch; ++j) {
      doses[j] = compute(weights.subspan(j * stats_.cols, stats_.cols),
                         schedule_seed);
    }
    return doses;
  }
  std::vector<std::vector<double>> doses(batch,
                                         std::vector<double>(stats_.rows, 0.0));
  switch (mode_) {
    case Mode::kHalfDouble:
    case Mode::kDouble: {
      std::vector<const double*> xs(batch);
      std::vector<double*> ys(batch);
      for (std::size_t j = 0; j < batch; ++j) {
        xs[j] = weights.data() + j * stats_.cols;
        ys[j] = doses[j].data();
      }
      if (mode_ == Mode::kHalfDouble) {
        execute_batch<pd::Half, double>(half_matrix_, xs, ys, schedule_seed);
      } else {
        execute_batch<double, double>(double_matrix_, xs, ys, schedule_seed);
      }
      break;
    }
    case Mode::kSingle: {
      std::vector<std::vector<float>> x32(batch,
                                          std::vector<float>(stats_.cols));
      std::vector<std::vector<float>> y32(batch,
                                          std::vector<float>(stats_.rows, 0.0f));
      std::vector<const float*> xs(batch);
      std::vector<float*> ys(batch);
      for (std::size_t j = 0; j < batch; ++j) {
        const double* w = weights.data() + j * stats_.cols;
        std::transform(w, w + stats_.cols, x32[j].begin(),
                       [](double v) { return static_cast<float>(v); });
        xs[j] = x32[j].data();
        ys[j] = y32[j].data();
      }
      execute_batch<float, float>(single_matrix_, xs, ys, schedule_seed);
      for (std::size_t j = 0; j < batch; ++j) {
        std::transform(y32[j].begin(), y32[j].end(), doses[j].begin(),
                       [](float v) { return static_cast<double>(v); });
      }
      break;
    }
  }
  return doses;
}

const SpmvRun& DoseEngine::last_run() const {
  PD_CHECK_MSG(has_run_,
               "DoseEngine: no gpusim compute() has run yet (the native "
               "backend records no counters)");
  return last_run_;
}

gpusim::PerfEstimate DoseEngine::last_estimate() const {
  PD_CHECK_MSG(has_run_,
               "DoseEngine: no gpusim compute() has run yet (the native "
               "backend records no counters)");
  gpusim::PerfInput in;
  in.stats = last_run_.stats;
  in.config = last_run_.config;
  in.precision = last_run_.precision;
  in.mean_work_per_warp = stats_.mean_nnz_per_nonempty_row;
  return gpusim::estimate_performance(gpu_->spec(), in);
}

}  // namespace pd::kernels
