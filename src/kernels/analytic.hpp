#pragma once
// Analytic traffic model — the paper's own §V arithmetic, generalized.
//
// For the full-size Table I matrices (9 GB each) we cannot run the cache
// simulator on this machine, but the paper itself shows that SpMV traffic is
// predictable in closed form: the Half/Double upper bound is
// 6·nnz + 12·nr + 8·nc bytes, within a percent of the Nsight measurement.
// This module produces the same closed-form KernelStats for every kernel
// variant so benches can report model predictions at *paper scale* next to
// simulator measurements at *mini scale*.

#include "gpusim/perf.hpp"
#include "kernels/spmv_common.hpp"
#include "sparse/stats.hpp"

namespace pd::kernels {

enum class KernelKind {
  kHalfDouble,   ///< Paper's contribution: half values, double vectors.
  kSingle,       ///< All-binary32 variant.
  kDouble,       ///< All-binary64 variant.
  kColIdx16,     ///< Half/double with 16-bit column indices (Ablation A).
  kBaselineRs,   ///< GPU port of the RayStation algorithm (atomics).
  kCuSparseLike, ///< Adaptive CSR, single precision.
  kGinkgoLike,   ///< Classical CSR, single precision.
};

const char* to_string(KernelKind kind);

/// Workload description: either from measured MatrixStats or from the
/// paper's Table I numbers.
struct Workload {
  double rows = 0.0;
  double cols = 0.0;
  double nnz = 0.0;
  double empty_row_fraction = 0.0;

  static Workload from_stats(const sparse::MatrixStats& s);
  static Workload from_paper(const sparse::PaperMatrixInfo& info);

  double mean_nnz_per_nonempty_row() const {
    const double nonempty = rows * (1.0 - empty_row_fraction);
    return nonempty > 0.0 ? nnz / nonempty : 0.0;
  }
};

/// Closed-form DRAM bytes for a kernel variant (infinite-cache upper bound,
/// the paper's model: each array element read from DRAM exactly once, input
/// vector resident in L2).
double analytic_dram_bytes(KernelKind kind, const Workload& w);

/// The paper's operational-intensity upper bound (2·nnz FLOPs / bytes).
double analytic_operational_intensity(KernelKind kind, const Workload& w);

/// Full PerfInput for gpusim::estimate_performance, with launch geometry at
/// the kernel's default configuration.
gpusim::PerfInput analytic_perf_input(KernelKind kind, const Workload& w,
                                      unsigned threads_per_block = 0);

/// CPU workload for the RayStation CPU engine on the same matrix.
gpusim::CpuWorkload analytic_cpu_workload(const Workload& w);

}  // namespace pd::kernels
