#pragma once
// Fused decompress-SpMV directly on the rsformat compressed streams — the
// fast tier's first kernel family (docs/fast_tier.md).
//
// The paper's roofline argument (§V) makes dose SpMV DRAM-bound: time is
// streamed bytes over achieved bandwidth.  Inflating RsMatrix to CSR before
// computing streams 12 bytes per non-zero (8-byte value + 4-byte column
// index) plus row offsets; walking the compressed streams in place reads
// 4 bytes per stored slot (2-byte delta + 2-byte quantized value) plus a
// 16-byte header per column — roughly a third of the CSR-double traffic on
// the paper's cases.  The price is the fast tier's accuracy contract:
// dequantized values carry the format's scale/2 quantization error and the
// column-major accumulation order differs from the warp kernels, so results
// are verified against the bitwise tier with a derived per-row bound instead
// of bit equality (tests/test_fast_tier.cpp).
//
// Arithmetic contract kept deliberately simple so the bound is derivable:
// every contribution is computed as (double(q) * scale) * w — two ordinary
// double multiplies, no FMA (protondose_fp_strict) — which makes the
// single-threaded fused kernel bitwise identical to reference_spmv over
// RsMatrix::to_csr() (same products, same ascending-column per-row order).
// Multi-threaded runs partition *columns*, accumulate into per-part scratch
// vectors and merge in fixed part order: run-to-run deterministic for a
// fixed thread count, but not thread-count invariant (unlike the bitwise
// tier) — the tolerance tests therefore sweep thread counts explicitly.
//
// The AVX2 variant decodes 16 deltas per iteration: widen u16→u32, two
// in-register inclusive prefix sums with a cross-lane carry, add the running
// row cursor, then dequantize 16 values (u16→i32→f64) and scatter.  Blocks
// containing the kEscape code fall back to scalar decoding for those 16
// entries, as does the (< 16 entry) stream tail.

#include <cstdint>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "kernels/native_backend.hpp"
#include "rsformat/rsmatrix.hpp"
#include "sparse/partition.hpp"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#include <immintrin.h>
#define PD_RSFORMAT_SIMD_DISPATCH 1
#endif

namespace pd::kernels {

/// Decode one column's slots [begin, end) and accumulate
/// y[row] += (double(q) * scale) * w, starting the row cursor at first_row.
inline void rsformat_column_scalar(const std::uint16_t* deltas,
                                   const std::uint16_t* qvalues,
                                   std::uint64_t begin, std::uint64_t end,
                                   std::uint64_t first_row, double scale,
                                   double w, double* y) {
  std::uint64_t row = first_row;
  for (std::uint64_t k = begin; k < end; ++k) {
    const std::uint16_t delta = deltas[k];
    if (delta == rsformat::RsMatrix::kEscape) {
      row += rsformat::RsMatrix::kEscapeAdvance;
      continue;
    }
    row += delta;
    y[row] += (static_cast<double>(qvalues[k]) * scale) * w;
  }
}

#if defined(PD_RSFORMAT_SIMD_DISPATCH)

inline const bool kHaveRsformatAvx2 = __builtin_cpu_supports("avx2") != 0;

/// Inclusive prefix sum of 8 u32 across the full 256-bit register
/// (log-step shifts within each 128-bit lane, then carry the low lane's
/// total into the high lane).
__attribute__((target("avx2"))) inline __m256i rsformat_prefix_u32(__m256i v) {
  __m256i s = _mm256_add_epi32(v, _mm256_slli_si256(v, 4));
  s = _mm256_add_epi32(s, _mm256_slli_si256(s, 8));
  __m256i carry = _mm256_permute2x128_si256(s, s, 0x08);  // [0 | low lane]
  carry = _mm256_shuffle_epi32(carry, 0xFF);              // broadcast lane totals
  return _mm256_add_epi32(s, carry);
}

/// AVX2 column decode: 16 slots per iteration.  Caller guarantees
/// num_rows < 2^31 so 32-bit signed row arithmetic cannot overflow; columns
/// needing larger row indices take the scalar kernel.  Escape-bearing blocks
/// and the tail decode scalar — escapes are rare (only gaps >= 0xffff emit
/// one), so the vector path covers almost every slot.
__attribute__((target("avx2"))) inline void rsformat_column_avx2(
    const std::uint16_t* deltas, const std::uint16_t* qvalues,
    std::uint64_t begin, std::uint64_t end, std::uint64_t first_row,
    double scale, double w, double* y) {
  std::uint64_t k = begin;
  std::uint64_t row = first_row;
  const __m256i escape = _mm256_set1_epi16(static_cast<short>(0xffffu));
  const __m256d vscale = _mm256_set1_pd(scale);
  const __m256d vw = _mm256_set1_pd(w);
  alignas(32) std::uint32_t rows[16];
  alignas(32) double contrib[16];
  while (k + 16 <= end) {
    const __m256i d16 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(deltas + k));
    if (_mm256_movemask_epi8(_mm256_cmpeq_epi16(d16, escape)) != 0) {
      const std::uint64_t stop = k + 16;
      for (; k < stop; ++k) {
        const std::uint16_t delta = deltas[k];
        if (delta == rsformat::RsMatrix::kEscape) {
          row += rsformat::RsMatrix::kEscapeAdvance;
          continue;
        }
        row += delta;
        y[row] += (static_cast<double>(qvalues[k]) * scale) * w;
      }
      continue;
    }
    // Absolute rows: running cursor + inclusive prefix of the 16 deltas.
    __m256i lo = _mm256_cvtepu16_epi32(_mm256_castsi256_si128(d16));
    __m256i hi = _mm256_cvtepu16_epi32(_mm256_extracti128_si256(d16, 1));
    lo = rsformat_prefix_u32(lo);
    hi = rsformat_prefix_u32(hi);
    const std::uint32_t lo_total = static_cast<std::uint32_t>(
        _mm256_extract_epi32(lo, 7));
    lo = _mm256_add_epi32(lo, _mm256_set1_epi32(static_cast<int>(row)));
    hi = _mm256_add_epi32(
        hi, _mm256_set1_epi32(static_cast<int>(row + lo_total)));
    _mm256_store_si256(reinterpret_cast<__m256i*>(rows), lo);
    _mm256_store_si256(reinterpret_cast<__m256i*>(rows + 8), hi);
    row = rows[15];
    // Dequantize: u16 -> i32 -> f64, then (q * scale) * w as in the scalar
    // kernel (two rounded multiplies keep the fused kernel bitwise equal to
    // reference_spmv over to_csr()).
    const __m256i q16 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(qvalues + k));
    const __m256i qlo = _mm256_cvtepu16_epi32(_mm256_castsi256_si128(q16));
    const __m256i qhi = _mm256_cvtepu16_epi32(_mm256_extracti128_si256(q16, 1));
    _mm256_store_pd(
        contrib,
        _mm256_mul_pd(
            _mm256_mul_pd(_mm256_cvtepi32_pd(_mm256_castsi256_si128(qlo)),
                          vscale),
            vw));
    _mm256_store_pd(
        contrib + 4,
        _mm256_mul_pd(
            _mm256_mul_pd(_mm256_cvtepi32_pd(_mm256_extracti128_si256(qlo, 1)),
                          vscale),
            vw));
    _mm256_store_pd(
        contrib + 8,
        _mm256_mul_pd(
            _mm256_mul_pd(_mm256_cvtepi32_pd(_mm256_castsi256_si128(qhi)),
                          vscale),
            vw));
    _mm256_store_pd(
        contrib + 12,
        _mm256_mul_pd(
            _mm256_mul_pd(_mm256_cvtepi32_pd(_mm256_extracti128_si256(qhi, 1)),
                          vscale),
            vw));
    for (int i = 0; i < 16; ++i) {
      y[rows[i]] += contrib[i];
    }
    k += 16;
  }
  for (; k < end; ++k) {
    const std::uint16_t delta = deltas[k];
    if (delta == rsformat::RsMatrix::kEscape) {
      row += rsformat::RsMatrix::kEscapeAdvance;
      continue;
    }
    row += delta;
    y[row] += (static_cast<double>(qvalues[k]) * scale) * w;
  }
}

#endif  // PD_RSFORMAT_SIMD_DISPATCH

/// Whether the AVX2 fused decoder will run on this host (used for bench /
/// CLI reporting; the kernel itself always dispatches safely).
inline bool rsformat_spmv_has_avx2() {
#if defined(PD_RSFORMAT_SIMD_DISPATCH)
  return kHaveRsformatAvx2;
#else
  return false;
#endif
}

inline const char* rsformat_spmv_variant_name() {
  return rsformat_spmv_has_avx2() ? "avx2" : "scalar";
}

/// Matrix bytes one fused product streams (every compressed stream is read
/// exactly once).  Compare against CsrF64::bytes() for the fast tier's
/// headline streamed-bytes ratio.
inline std::uint64_t rsformat_streamed_bytes(const rsformat::RsMatrix& m) {
  return m.bytes();
}

/// y = A·x executed directly on the compressed streams.  `allow_simd`
/// disables the AVX2 path (used by tests to compare variants).  Threading
/// partitions columns by slot count; each part accumulates into private
/// scratch merged in fixed part order after the barrier.
inline void rsformat_spmv(const rsformat::RsMatrix& m,
                          std::span<const double> x, std::span<double> y,
                          NativeExecutor& exec, bool allow_simd = true) {
  PD_CHECK_MSG(x.size() == m.num_cols(), "rsformat_spmv: x size mismatch");
  PD_CHECK_MSG(y.size() == m.num_rows(), "rsformat_spmv: y size mismatch");
  std::fill(y.begin(), y.end(), 0.0);
  const std::uint64_t num_cols = m.num_cols();
  if (num_cols == 0 || m.col_ptr().back() == 0) {
    return;
  }
  const std::uint64_t* col_ptr = m.col_ptr().data();
  const std::uint32_t* col_first_row = m.col_first_row().data();
  const float* col_scale = m.col_scale().data();
  const std::uint16_t* deltas = m.deltas().data();
  const std::uint16_t* qvalues = m.qvalues().data();
  const double* xp = x.data();

#if defined(PD_RSFORMAT_SIMD_DISPATCH)
  const bool use_avx2 = allow_simd && kHaveRsformatAvx2 &&
                        m.num_rows() < (std::uint64_t{1} << 31);
#else
  const bool use_avx2 = false;
  (void)allow_simd;
#endif

  const auto run_columns = [&](std::uint64_t c_begin, std::uint64_t c_end,
                               double* out) {
    for (std::uint64_t c = c_begin; c < c_end; ++c) {
      const double w = xp[c];
      if (w == 0.0 || col_ptr[c] == col_ptr[c + 1]) {
        continue;  // zero weight or empty spot: no contribution.
      }
      const double scale = static_cast<double>(col_scale[c]);
#if defined(PD_RSFORMAT_SIMD_DISPATCH)
      if (use_avx2) {
        rsformat_column_avx2(deltas, qvalues, col_ptr[c], col_ptr[c + 1],
                             col_first_row[c], scale, w, out);
        continue;
      }
#endif
      rsformat_column_scalar(deltas, qvalues, col_ptr[c], col_ptr[c + 1],
                             col_first_row[c], scale, w, out);
    }
  };

  const std::size_t parts = exec.parts_for(num_cols);
  if (parts <= 1) {
    run_columns(0, num_cols, y.data());
    return;
  }
  // Columns scatter into overlapping row ranges, so parts get private
  // scratch accumulators; the fixed-order merge keeps a given thread count
  // run-to-run deterministic.
  std::vector<std::uint64_t> costs(num_cols);
  for (std::uint64_t c = 0; c < num_cols; ++c) {
    costs[c] = col_ptr[c + 1] - col_ptr[c];
  }
  const sparse::RowPartition part =
      sparse::balanced_cost_partition(costs, parts);
  std::vector<std::vector<double>> scratch(
      part.parts(), std::vector<double>(m.num_rows(), 0.0));
  exec.run(part.parts(), [&](std::size_t p) {
    run_columns(part.boundaries[p], part.boundaries[p + 1],
                scratch[p].data());
  });
  double* yp = y.data();
  for (std::size_t p = 0; p < part.parts(); ++p) {
    const double* sp = scratch[p].data();
    for (std::uint64_t r = 0; r < m.num_rows(); ++r) {
      yp[r] += sp[r];
    }
  }
}

// ---------------------------------------------------------------------------
// Batched fused rsformat (fast tier v2): one decode pass of the u16 delta
// stream feeds K column-major-interleaved accumulators, so a K-scenario
// batch pays the prefix-sum decode (and the 4-byte/slot stream traffic)
// once instead of K times.  Arithmetic per lane j is exactly the single-RHS
// kernel's: dq = double(q) * scale rounds once, then acc += dq * w_j rounds
// a multiply and an add — so at one thread every output column is bitwise
// identical to a looped rsformat_spmv over the same weight column.  Lanes
// whose weight is zero contribute (dq * 0.0) = +0.0, and accumulators can
// never hold -0.0 (they start at +0.0 and (+0.0) + (-0.0) = +0.0), so the
// extra identity adds keep the bit equality even though the single-RHS
// kernel skips zero-weight columns outright.
// ---------------------------------------------------------------------------

/// Decode one column's slots and accumulate K lanes:
/// acc[row*K + j] += (double(q) * scale) * wk[j].
inline void rsformat_column_scalar_batch(
    const std::uint16_t* deltas, const std::uint16_t* qvalues,
    std::uint64_t begin, std::uint64_t end, std::uint64_t first_row,
    double scale, const double* wk, std::size_t batch, double* acc) {
  std::uint64_t row = first_row;
  for (std::uint64_t k = begin; k < end; ++k) {
    const std::uint16_t delta = deltas[k];
    if (delta == rsformat::RsMatrix::kEscape) {
      row += rsformat::RsMatrix::kEscapeAdvance;
      continue;
    }
    row += delta;
    const double dq = static_cast<double>(qvalues[k]) * scale;
    double* a = acc + row * batch;
    for (std::size_t j = 0; j < batch; ++j) {
      a[j] += dq * wk[j];
    }
  }
}

#if defined(PD_RSFORMAT_SIMD_DISPATCH)

/// K-lane scatter of one dequantized slot: acc[r*K + j] += d * wk[j]
/// (4-wide vector body + scalar tail; mul then add, the scalar rounding).
__attribute__((target("avx2"))) inline void rsformat_batch_scatter_avx2(
    double* acc, std::uint64_t r, double d, const double* wk,
    std::size_t batch) {
  double* a = acc + r * batch;
  std::size_t j = 0;
  const __m256d d4 = _mm256_set1_pd(d);
  for (; j + 4 <= batch; j += 4) {
    const __m256d av = _mm256_loadu_pd(a + j);
    _mm256_storeu_pd(
        a + j, _mm256_add_pd(av, _mm256_mul_pd(d4, _mm256_loadu_pd(wk + j))));
  }
  for (; j < batch; ++j) {
    a[j] += d * wk[j];
  }
}

/// AVX2 batched decode: the same 16-delta prefix-sum machinery as the
/// single-RHS kernel, but the dequantized block is (q * scale) only — the
/// per-lane weight multiply happens in the K-wide scatter loop (mul then
/// add, matching the scalar batch kernel's rounding exactly).
__attribute__((target("avx2"))) inline void rsformat_column_avx2_batch(
    const std::uint16_t* deltas, const std::uint16_t* qvalues,
    std::uint64_t begin, std::uint64_t end, std::uint64_t first_row,
    double scale, const double* wk, std::size_t batch, double* acc) {
  std::uint64_t k = begin;
  std::uint64_t row = first_row;
  const __m256i escape = _mm256_set1_epi16(static_cast<short>(0xffffu));
  const __m256d vscale = _mm256_set1_pd(scale);
  alignas(32) std::uint32_t rows[16];
  alignas(32) double dq[16];
  const auto scatter = [&](std::uint64_t r, double d) {
    rsformat_batch_scatter_avx2(acc, r, d, wk, batch);
  };
  while (k + 16 <= end) {
    const __m256i d16 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(deltas + k));
    if (_mm256_movemask_epi8(_mm256_cmpeq_epi16(d16, escape)) != 0) {
      const std::uint64_t stop = k + 16;
      for (; k < stop; ++k) {
        const std::uint16_t delta = deltas[k];
        if (delta == rsformat::RsMatrix::kEscape) {
          row += rsformat::RsMatrix::kEscapeAdvance;
          continue;
        }
        row += delta;
        scatter(row, static_cast<double>(qvalues[k]) * scale);
      }
      continue;
    }
    __m256i lo = _mm256_cvtepu16_epi32(_mm256_castsi256_si128(d16));
    __m256i hi = _mm256_cvtepu16_epi32(_mm256_extracti128_si256(d16, 1));
    lo = rsformat_prefix_u32(lo);
    hi = rsformat_prefix_u32(hi);
    const std::uint32_t lo_total = static_cast<std::uint32_t>(
        _mm256_extract_epi32(lo, 7));
    lo = _mm256_add_epi32(lo, _mm256_set1_epi32(static_cast<int>(row)));
    hi = _mm256_add_epi32(
        hi, _mm256_set1_epi32(static_cast<int>(row + lo_total)));
    _mm256_store_si256(reinterpret_cast<__m256i*>(rows), lo);
    _mm256_store_si256(reinterpret_cast<__m256i*>(rows + 8), hi);
    row = rows[15];
    const __m256i q16 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(qvalues + k));
    const __m256i qlo = _mm256_cvtepu16_epi32(_mm256_castsi256_si128(q16));
    const __m256i qhi = _mm256_cvtepu16_epi32(_mm256_extracti128_si256(q16, 1));
    _mm256_store_pd(
        dq, _mm256_mul_pd(_mm256_cvtepi32_pd(_mm256_castsi256_si128(qlo)),
                          vscale));
    _mm256_store_pd(
        dq + 4,
        _mm256_mul_pd(_mm256_cvtepi32_pd(_mm256_extracti128_si256(qlo, 1)),
                      vscale));
    _mm256_store_pd(
        dq + 8, _mm256_mul_pd(_mm256_cvtepi32_pd(_mm256_castsi256_si128(qhi)),
                              vscale));
    _mm256_store_pd(
        dq + 12,
        _mm256_mul_pd(_mm256_cvtepi32_pd(_mm256_extracti128_si256(qhi, 1)),
                      vscale));
    for (int i = 0; i < 16; ++i) {
      scatter(rows[i], dq[i]);
    }
    k += 16;
  }
  for (; k < end; ++k) {
    const std::uint16_t delta = deltas[k];
    if (delta == rsformat::RsMatrix::kEscape) {
      row += rsformat::RsMatrix::kEscapeAdvance;
      continue;
    }
    row += delta;
    scatter(row, static_cast<double>(qvalues[k]) * scale);
  }
}

#endif  // PD_RSFORMAT_SIMD_DISPATCH

/// K doses from K weight vectors in one traversal of the compressed streams.
/// `xs[j]` is weight vector j (num_cols doubles), `ys[j]` the dose output
/// (num_rows doubles).  At one thread each ys[j] is bitwise identical to
/// rsformat_spmv(m, xs[j], ...); threaded runs use the same column partition
/// + private scratch + fixed-order merge as the single-RHS kernel and are
/// run-to-run deterministic per thread count.
inline void rsformat_spmv_batch(const rsformat::RsMatrix& m,
                                std::span<const double* const> xs,
                                std::span<double* const> ys,
                                NativeExecutor& exec, bool allow_simd = true) {
  const std::size_t batch = xs.size();
  PD_CHECK_MSG(batch > 0, "rsformat_spmv_batch: empty batch");
  PD_CHECK_MSG(ys.size() == batch, "rsformat_spmv_batch: xs/ys size mismatch");
  const std::uint64_t num_rows = m.num_rows();
  const std::uint64_t num_cols = m.num_cols();
  for (std::size_t j = 0; j < batch; ++j) {
    std::fill(ys[j], ys[j] + num_rows, 0.0);
  }
  if (num_cols == 0 || m.col_ptr().back() == 0) {
    return;
  }
  const std::uint64_t* col_ptr = m.col_ptr().data();
  const std::uint32_t* col_first_row = m.col_first_row().data();
  const float* col_scale = m.col_scale().data();
  const std::uint16_t* deltas = m.deltas().data();
  const std::uint16_t* qvalues = m.qvalues().data();

  // Column-major-interleaved batch weights: the K weights of column c sit
  // contiguously at xw[c*K], so the per-slot inner loop streams them.
  std::vector<double> xw(num_cols * batch);
  for (std::uint64_t c = 0; c < num_cols; ++c) {
    for (std::size_t j = 0; j < batch; ++j) {
      xw[c * batch + j] = xs[j][c];
    }
  }

#if defined(PD_RSFORMAT_SIMD_DISPATCH)
  const bool use_avx2 = allow_simd && kHaveRsformatAvx2 &&
                        num_rows < (std::uint64_t{1} << 31);
#else
  const bool use_avx2 = false;
  (void)allow_simd;
#endif

  const auto run_columns = [&](std::uint64_t c_begin, std::uint64_t c_end,
                               double* acc) {
    for (std::uint64_t c = c_begin; c < c_end; ++c) {
      if (col_ptr[c] == col_ptr[c + 1]) {
        continue;  // empty spot: no contribution to any lane.
      }
      const double* wk = xw.data() + c * batch;
      bool any = false;
      for (std::size_t j = 0; j < batch; ++j) {
        any = any || wk[j] != 0.0;
      }
      if (!any) {
        continue;  // all-zero weights: every lane's kernel would skip.
      }
      const double scale = static_cast<double>(col_scale[c]);
#if defined(PD_RSFORMAT_SIMD_DISPATCH)
      if (use_avx2) {
        rsformat_column_avx2_batch(deltas, qvalues, col_ptr[c], col_ptr[c + 1],
                                   col_first_row[c], scale, wk, batch, acc);
        continue;
      }
#endif
      rsformat_column_scalar_batch(deltas, qvalues, col_ptr[c], col_ptr[c + 1],
                                   col_first_row[c], scale, wk, batch, acc);
    }
  };

  // Interleaved accumulator: lane j of row r at acc[r*K + j] (the layout
  // native_vector_spmv_batch uses), deinterleaved into ys at the end.
  const std::size_t parts = exec.parts_for(num_cols);
  std::vector<double> acc(num_rows * batch, 0.0);
  if (parts <= 1) {
    run_columns(0, num_cols, acc.data());
  } else {
    std::vector<std::uint64_t> costs(num_cols);
    for (std::uint64_t c = 0; c < num_cols; ++c) {
      costs[c] = col_ptr[c + 1] - col_ptr[c];
    }
    const sparse::RowPartition part =
        sparse::balanced_cost_partition(costs, parts);
    std::vector<std::vector<double>> scratch(
        part.parts(), std::vector<double>(num_rows * batch, 0.0));
    exec.run(part.parts(), [&](std::size_t p) {
      run_columns(part.boundaries[p], part.boundaries[p + 1],
                  scratch[p].data());
    });
    for (std::size_t p = 0; p < part.parts(); ++p) {
      const double* sp = scratch[p].data();
      double* ap = acc.data();
      for (std::uint64_t i = 0; i < num_rows * batch; ++i) {
        ap[i] += sp[i];
      }
    }
  }
  for (std::uint64_t r = 0; r < num_rows; ++r) {
    const double* a = acc.data() + r * batch;
    for (std::size_t j = 0; j < batch; ++j) {
      ys[j][r] = a[j];
    }
  }
}

}  // namespace pd::kernels
