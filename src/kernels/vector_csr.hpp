#pragma once
// The paper's contribution: warp-per-row ("vector") CSR SpMV with CUDA
// cooperative groups, in mixed precision.
//
// One 32-lane warp processes one matrix row (Listing 1 of the paper): lanes
// stride the row's non-zeros so that consecutive lanes touch consecutive
// elements of the value/column arrays (coalesced), gather the input vector,
// and fold their partials with a cooperative-groups warp reduction in a
// fixed tree order — which is what makes the result bitwise reproducible
// run-to-run, satisfying RayStation's §II-D requirement.
//
// Template parameters give all the precision variants of the paper:
//  * MatV = pd::Half, Acc = double  -> "Half/Double" (the contribution),
//  * MatV = float,    Acc = float   -> "Single",
//  * MatV = double,   Acc = double  -> full double reference,
// and IdxT = uint16_t gives the paper's proposed 16-bit column-index
// optimization (Ablation A).

#include <algorithm>
#include <span>

#include "common/error.hpp"
#include "gpusim/launch.hpp"
#include "kernels/spmv_common.hpp"
#include "sparse/csr.hpp"

namespace pd::kernels {

/// Launch the vector CSR kernel on the simulated device: y = A·x.
/// `threads_per_block` defaults to the paper's tuned 512; `schedule_seed`
/// permutes block execution order (the result must not depend on it).
template <typename MatV, typename Acc, typename IdxT>
SpmvRun run_vector_csr(gpusim::Gpu& gpu, const sparse::CsrMatrix<MatV, IdxT>& A,
                       std::span<const Acc> x, std::span<Acc> y,
                       unsigned threads_per_block = kDefaultVectorTpb,
                       std::uint64_t schedule_seed = 0) {
  PD_CHECK_MSG(x.size() == A.num_cols, "vector_csr: x size mismatch");
  PD_CHECK_MSG(y.size() == A.num_rows, "vector_csr: y size mismatch");

  using namespace pd::gpusim;
  const std::uint32_t* row_ptr = A.row_ptr.data();
  const IdxT* col_idx = A.col_idx.data();
  const MatV* values = A.values.data();
  const Acc* xp = x.data();
  Acc* yp = y.data();
  const std::uint64_t num_rows = A.num_rows;

  const LaunchConfig cfg = LaunchConfig::warp_per_item(
      num_rows, threads_per_block, kVectorCsrRegs);

  register_spmv_buffers(gpu, A, x, y);
  SpmvRun run;
  run.config = cfg;
  run.precision = sizeof(Acc) == 8 ? FlopPrecision::kFp64 : FlopPrecision::kFp32;
  run.stats = gpu.run(
      cfg,
      [&](WarpCtx& w) {
        const std::uint64_t row = w.global_warp_id();
        if (row >= num_rows) {
          return;  // grid padding past the last row
        }
        // Row bounds: broadcast loads, as in Listing 1 lines 21-22.
        const std::uint32_t start = w.load_uniform(row_ptr + row);
        const std::uint32_t end = w.load_uniform(row_ptr + row + 1);

        Lanes<Acc> acc{};
        for (std::uint64_t base = start; base < end; base += kWarpSize) {
          const auto remaining = static_cast<unsigned>(
              std::min<std::uint64_t>(kWarpSize, end - base));
          const LaneMask m = first_lanes(remaining);
          const Lanes<IdxT> cols = w.load_contiguous(col_idx, base, m);
          const Lanes<MatV> vals = w.load_contiguous(values, base, m);
          const Lanes<Acc> xv = w.gather(xp, cols, m);
          for (unsigned lane = 0; lane < kWarpSize; ++lane) {
            if (lane_active(m, lane)) {
              acc[lane] = acc[lane] + convert_value<Acc>(vals[lane]) * xv[lane];
            }
          }
          w.count_flops(2, m);  // one FMA per active lane
        }
        // Cooperative-groups warp reduction; lane 0 stores the row result.
        const Acc total = w.reduce_add(acc);
        w.store_uniform(yp + row, total);
      },
      schedule_seed);
  return run;
}

}  // namespace pd::kernels
