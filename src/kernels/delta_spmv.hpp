#pragma once
// Incremental delta-dose kernels (docs/delta_engine.md).
//
// Optimizer iterations and interactive replanning change a handful of spot
// weights per step, yet dose = D·w is recomputed from scratch — every product
// streams the whole matrix even when 99% of the columns contribute exactly
// what they contributed last time.  The delta engine keeps a column-major
// (CSC) sidecar of the engine's stored matrix and *updates* an existing dose
// vector, touching only what the weight change reaches:
//
//  * DeltaMode::kBitwise — recompute exactly the rows reachable from the
//    changed columns (a column→row worklist over the sidecar), replaying the
//    bitwise tier's per-row reduction order (native_spmv.hpp).  A row's
//    result depends only on its own entries and the full weight vector, so
//    the updated dose is bitwise identical to a full compute of the new
//    weights; cost ∝ nnz of the affected rows.
//  * DeltaMode::kFast — scatter-add D[:,j]·Δw_j down the changed columns in
//    ascending column order (scalar or AVX2 axpy).  Cost ∝ nnz of the
//    changed columns — the true |Δw| bound — verified by a derived per-row
//    tolerance in the fast-tier style (tests/test_delta_engine.cpp).
//
// Everything here is stateless over its arguments; DoseEngine owns the
// sidecar and scratch (DeltaContext below), built lazily once per engine so
// EngineCache rebuilds reproduce it deterministically after eviction.

#include <algorithm>
#include <bit>
#include <cstdint>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "kernels/native_spmv.hpp"
#include "sparse/csr.hpp"

namespace pd::kernels {

/// Column-major mirror of the engine's stored matrix, values widened to
/// double exactly (like the fast-tier containers).  Column c's entries live
/// at [col_ptr[c], col_ptr[c+1]) with row indices ascending.
struct CscSidecar {
  std::uint64_t num_rows = 0;
  std::uint64_t num_cols = 0;
  std::vector<std::uint32_t> col_ptr;  ///< num_cols + 1 offsets.
  std::vector<std::uint32_t> row_idx;  ///< ascending within each column.
  std::vector<double> values;

  std::uint64_t nnz() const { return row_idx.size(); }
  std::uint64_t col_nnz(std::uint64_t c) const {
    return col_ptr[c + 1] - col_ptr[c];
  }
  std::uint64_t bytes() const {
    return values.size() * sizeof(double) +
           (row_idx.size() + col_ptr.size()) * sizeof(std::uint32_t);
  }
};

/// Counting-sort transpose: histogram the columns, prefix-sum, then scatter
/// the CSR entries in row order.  CSR rows ascend, so each column's rows come
/// out ascending — the deterministic traversal order both delta modes use.
inline CscSidecar build_csc_sidecar(const sparse::CsrF64& wide) {
  CscSidecar csc;
  csc.num_rows = wide.num_rows;
  csc.num_cols = wide.num_cols;
  const std::uint64_t nnz = wide.nnz();
  csc.col_ptr.assign(wide.num_cols + 1, 0);
  csc.row_idx.resize(nnz);
  csc.values.resize(nnz);
  for (std::uint64_t k = 0; k < nnz; ++k) {
    ++csc.col_ptr[wide.col_idx[k] + 1];
  }
  for (std::uint64_t c = 0; c < wide.num_cols; ++c) {
    csc.col_ptr[c + 1] += csc.col_ptr[c];
  }
  std::vector<std::uint32_t> cursor(csc.col_ptr.begin(), csc.col_ptr.end() - 1);
  for (std::uint32_t r = 0; r < wide.num_rows; ++r) {
    for (std::uint32_t k = wide.row_ptr[r]; k < wide.row_ptr[r + 1]; ++k) {
      const std::uint32_t c = wide.col_idx[k];
      const std::uint32_t slot = cursor[c]++;
      csc.row_idx[slot] = r;
      csc.values[slot] = wide.values[k];
    }
  }
  return csc;
}

/// The bitwise-changed columns between two weight vectors and their
/// new-minus-base difference.  Comparison is on the *bits* (std::bit_cast),
/// not operator==: value-equal but bit-different weights (-0.0 vs +0.0) can
/// change product bits, and the bitwise mode's contract is exact — while
/// bit-equal entries provably contribute the same products and can be
/// skipped.
struct WeightDelta {
  std::vector<std::uint32_t> cols;  ///< ascending changed-column indices.
  std::vector<double> dw;           ///< new - base, per changed column.
};

inline WeightDelta diff_weights(std::span<const double> base,
                                std::span<const double> next) {
  PD_CHECK_MSG(base.size() == next.size(),
               "diff_weights: weight vector lengths differ");
  WeightDelta delta;
  for (std::size_t c = 0; c < base.size(); ++c) {
    if (std::bit_cast<std::uint64_t>(base[c]) !=
        std::bit_cast<std::uint64_t>(next[c])) {
      delta.cols.push_back(static_cast<std::uint32_t>(c));
      delta.dw.push_back(next[c] - base[c]);
    }
  }
  return delta;
}

/// nnz of the changed columns — the |Δw| work bound both modes report.
inline std::uint64_t csc_delta_nnz(const CscSidecar& csc,
                                   std::span<const std::uint32_t> cols) {
  std::uint64_t nnz = 0;
  for (const std::uint32_t c : cols) {
    nnz += csc.col_nnz(c);
  }
  return nnz;
}

/// Rows reachable from the changed columns, deduplicated and ascending.
/// `mark` is caller-owned scratch of num_rows bytes; it is all-zero on entry
/// and restored to all-zero before returning (only touched entries reset).
inline std::vector<std::uint32_t> csc_affected_rows(
    const CscSidecar& csc, std::span<const std::uint32_t> cols,
    std::vector<std::uint8_t>& mark) {
  if (mark.size() != csc.num_rows) {
    mark.assign(csc.num_rows, 0);
  }
  std::vector<std::uint32_t> rows;
  for (const std::uint32_t c : cols) {
    for (std::uint32_t k = csc.col_ptr[c]; k < csc.col_ptr[c + 1]; ++k) {
      const std::uint32_t r = csc.row_idx[k];
      if (mark[r] == 0) {
        mark[r] = 1;
        rows.push_back(r);
      }
    }
  }
  std::sort(rows.begin(), rows.end());
  for (const std::uint32_t r : rows) {
    mark[r] = 0;
  }
  return rows;
}

#if defined(PD_NATIVE_F16C_DISPATCH)
/// AVX2 column axpy: four products v_k·Δw at a time (vector multiply, then
/// scalar scatter-adds — x86 has no scatter store below AVX-512, and the
/// read-modify-write must stay a single rounded add per entry anyway).  Each
/// dose entry sees exactly the scalar loop's mul-then-add (never an FMA:
/// -ffp-contract=off holds under the target attribute), so the fast mode's
/// result is independent of which variant dispatched.
__attribute__((target("avx2"))) inline void csc_col_axpy_avx2(
    const double* __restrict values, const std::uint32_t* __restrict rows,
    std::uint64_t n, double dw, double* __restrict dose) {
  const __m256d vdw = _mm256_set1_pd(dw);
  alignas(32) double prod[4];
  std::uint64_t k = 0;
  for (; k + 4 <= n; k += 4) {
    _mm256_store_pd(prod, _mm256_mul_pd(_mm256_loadu_pd(values + k), vdw));
    dose[rows[k]] += prod[0];
    dose[rows[k + 1]] += prod[1];
    dose[rows[k + 2]] += prod[2];
    dose[rows[k + 3]] += prod[3];
  }
  for (; k < n; ++k) {
    dose[rows[k]] += values[k] * dw;
  }
}
#endif

inline void csc_col_axpy_scalar(const double* __restrict values,
                                const std::uint32_t* __restrict rows,
                                std::uint64_t n, double dw,
                                double* __restrict dose) {
  for (std::uint64_t k = 0; k < n; ++k) {
    dose[rows[k]] += values[k] * dw;
  }
}

/// Which fast-mode axpy body csc_delta_axpy dispatches on this host.
inline const char* delta_spmv_variant_name() {
#if defined(PD_NATIVE_F16C_DISPATCH)
  if (kHaveAvx2) {
    return "avx2-axpy";
  }
#endif
  return "scalar-axpy";
}

/// DeltaMode::kFast core: dose += Σ_j D[:,j]·Δw_j over the changed columns,
/// ascending column order, ascending rows within a column.  Single-threaded
/// by design: the traversal order (and therefore the result) is fixed
/// regardless of the engine's native thread count.
inline void csc_delta_axpy(const CscSidecar& csc,
                           std::span<const std::uint32_t> cols,
                           std::span<const double> dw,
                           std::span<double> dose) {
  PD_CHECK_MSG(cols.size() == dw.size(), "csc_delta_axpy: cols/dw mismatch");
  PD_CHECK_MSG(dose.size() == csc.num_rows, "csc_delta_axpy: dose mismatch");
  for (std::size_t j = 0; j < cols.size(); ++j) {
    const std::uint32_t c = cols[j];
    const std::uint32_t start = csc.col_ptr[c];
    const std::uint64_t n = csc.col_ptr[c + 1] - start;
#if defined(PD_NATIVE_F16C_DISPATCH)
    if (kHaveAvx2) {
      csc_col_axpy_avx2(csc.values.data() + start, csc.row_idx.data() + start,
                        n, dw[j], dose.data());
      continue;
    }
#endif
    csc_col_axpy_scalar(csc.values.data() + start, csc.row_idx.data() + start,
                        n, dw[j], dose.data());
  }
}

/// native_adaptive_item with the final stores widened to double: the bitwise
/// delta replay writes directly into the double dose vector, and for
/// Mode::kSingle an adaptive group recomputes float values for *all* rows in
/// the item (the segmented scan couples them), so unaffected group-mates are
/// rewritten with the same bits the full compute produced.  For Acc = double
/// the widening cast is the identity.
template <typename Acc, typename MatV, typename IdxT>
inline void native_adaptive_item_widen(const std::uint32_t* row_ptr,
                                       const MatV* values, const IdxT* col_idx,
                                       const Acc* x, double* dose,
                                       const AdaptiveWorkItem& item) {
  if (item.long_row != 0) {
    const std::uint32_t row = item.row_begin;
    dose[row] = static_cast<double>(native_row_product(
        values, col_idx, x, row_ptr[row], row_ptr[row + 1]));
    return;
  }
  const std::uint32_t start = row_ptr[item.row_begin];
  const std::uint32_t end = row_ptr[item.row_end];
  const unsigned count = end - start;

  Acc incl[gpusim::kWarpSize];  // lanes >= count stay unread
  for (unsigned lane = 0; lane < count; ++lane) {
    const std::uint32_t k = start + lane;
    incl[lane] = convert_value<Acc>(values[k]) * x[col_idx[k]];
  }
  gpusim::LaneMask heads = 0;
  for (std::uint32_t r = item.row_begin; r < item.row_end; ++r) {
    const std::uint32_t rs = row_ptr[r];
    if (rs < end && rs >= start && row_ptr[r + 1] > rs) {
      heads |= (gpusim::LaneMask{1} << (rs - start));
    }
  }
  native_segmented_inclusive_sum(incl, heads, count);
  for (std::uint32_t r = item.row_begin; r < item.row_end; ++r) {
    const std::uint32_t rs = row_ptr[r];
    const std::uint32_t re = row_ptr[r + 1];
    dose[r] = static_cast<double>((re > rs) ? incl[re - 1 - start] : Acc{});
  }
}

/// Engine-owned lazy state for compute_delta: the CSC sidecar, the
/// row→work-item maps the grouped families' bitwise replay needs, and
/// reusable scratch.  DoseEngine builds it once (ensure_delta_context);
/// EngineCache's deterministic MatrixSource contract makes the rebuilt
/// sidecar bit-identical after eviction.
struct DeltaContext {
  CscSidecar csc;
  std::vector<std::uint8_t> row_mark;  ///< csc_affected_rows scratch.
  /// kAdaptive: row → index of the worklist item containing it.
  std::vector<std::uint32_t> adaptive_row_item;
  /// kRowSplit: row r's plan items are [rowsplit_item_begin[r],
  /// rowsplit_item_begin[r+1]); rowsplit_split[r] indexes plan.split_rows
  /// (-1 for unsplit rows).
  std::vector<std::uint32_t> rowsplit_item_begin;
  std::vector<std::int32_t> rowsplit_split;
  /// Partial-slot scratch for split-row replay.  Stale contents are fine:
  /// a fold only reads slots the same call's items just wrote.
  std::vector<double> partials64;
  std::vector<float> partials32;
};

}  // namespace pd::kernels
