#pragma once
// cuSPARSE-style adaptive CSR SpMV.
//
// cuSPARSE's implementation is closed; this stand-in follows the published
// CSR-Adaptive scheme (Greathouse & Daga, SC'14) that its behaviour matches:
// an analysis pass bins rows into (a) long rows, each processed warp-per-row
// like the vector kernel, and (b) groups of consecutive short rows whose
// combined non-zeros fit one warp-load, processed with a warp segmented
// reduction.  The per-warp work descriptors are real memory the kernel must
// read, so the scheme pays metadata traffic and a host-side analysis cost —
// the "higher fixed overhead" that makes it relatively weaker on the small
// prostate matrices while its load balancing helps on the skewed liver rows.

#include <algorithm>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "gpusim/launch.hpp"
#include "kernels/spmv_common.hpp"
#include "sparse/csr.hpp"

namespace pd::kernels {

/// One warp's work assignment.
struct AdaptiveWorkItem {
  std::uint32_t row_begin = 0;
  std::uint32_t row_end = 0;  ///< exclusive; row_end == row_begin+1 and long_row
                              ///< set means vector processing of one row.
  std::uint32_t long_row = 0;
};

/// Analysis phase: bin rows into long rows and short-row groups.
template <typename V, typename IdxT>
std::vector<AdaptiveWorkItem> build_adaptive_worklist(
    const sparse::CsrMatrix<V, IdxT>& A) {
  std::vector<AdaptiveWorkItem> items;
  std::uint32_t r = 0;
  const auto rows = static_cast<std::uint32_t>(A.num_rows);
  while (r < rows) {
    const std::uint64_t len = A.row_nnz(r);
    if (len >= gpusim::kWarpSize) {
      items.push_back(AdaptiveWorkItem{r, r + 1, 1});
      ++r;
      continue;
    }
    // Greedily pack consecutive short rows: combined nnz and row count both
    // capped at the warp size.
    std::uint32_t begin = r;
    std::uint64_t total = 0;
    while (r < rows && r - begin < gpusim::kWarpSize) {
      const std::uint64_t next = A.row_nnz(r);
      if (next >= gpusim::kWarpSize || total + next > gpusim::kWarpSize) {
        break;
      }
      total += next;
      ++r;
    }
    if (r == begin) {  // defensive: should not happen
      items.push_back(AdaptiveWorkItem{r, r + 1, 1});
      ++r;
      continue;
    }
    items.push_back(AdaptiveWorkItem{begin, r, 0});
  }
  return items;
}

template <typename MatV, typename Acc, typename IdxT>
SpmvRun run_adaptive_csr(gpusim::Gpu& gpu,
                         const sparse::CsrMatrix<MatV, IdxT>& A,
                         const std::vector<AdaptiveWorkItem>& worklist,
                         std::span<const Acc> x, std::span<Acc> y,
                         unsigned threads_per_block = kDefaultVectorTpb,
                         std::uint64_t schedule_seed = 0) {
  PD_CHECK_MSG(x.size() == A.num_cols, "adaptive: x size mismatch");
  PD_CHECK_MSG(y.size() == A.num_rows, "adaptive: y size mismatch");
  PD_CHECK_MSG(!worklist.empty(), "adaptive: empty worklist");

  using namespace pd::gpusim;
  const std::uint32_t* row_ptr = A.row_ptr.data();
  const IdxT* col_idx = A.col_idx.data();
  const MatV* values = A.values.data();
  const Acc* xp = x.data();
  Acc* yp = y.data();
  const AdaptiveWorkItem* items = worklist.data();
  const std::uint64_t num_items = worklist.size();

  const LaunchConfig cfg = LaunchConfig::warp_per_item(
      num_items, threads_per_block, kAdaptiveRegs);

  register_spmv_buffers(gpu, A, x, y);
  if (gpusim::CheckContext* chk = gpu.check()) {
    chk->track_global(items, num_items * sizeof(AdaptiveWorkItem),
                      "adaptive.worklist", /*initialized=*/true);
  }
  SpmvRun run;
  run.config = cfg;
  run.precision = sizeof(Acc) == 8 ? FlopPrecision::kFp64 : FlopPrecision::kFp32;
  run.stats = gpu.run(
      cfg,
      [&](WarpCtx& w) {
        const std::uint64_t item_idx = w.global_warp_id();
        if (item_idx >= num_items) {
          return;
        }
        const AdaptiveWorkItem item = w.load_uniform(items + item_idx);

        if (item.long_row != 0) {
          // Vector path, identical in structure to the paper's kernel.
          const std::uint32_t row = item.row_begin;
          const std::uint32_t start = w.load_uniform(row_ptr + row);
          const std::uint32_t end = w.load_uniform(row_ptr + row + 1);
          Lanes<Acc> acc{};
          for (std::uint64_t base = start; base < end; base += kWarpSize) {
            const auto remaining = static_cast<unsigned>(
                std::min<std::uint64_t>(kWarpSize, end - base));
            const LaneMask m = first_lanes(remaining);
            const Lanes<IdxT> cols = w.load_contiguous(col_idx, base, m);
            const Lanes<MatV> vals = w.load_contiguous(values, base, m);
            Lanes<std::uint64_t> ci{};
            for (unsigned lane = 0; lane < kWarpSize; ++lane) {
              if (lane_active(m, lane)) ci[lane] = cols[lane];
            }
            const Lanes<Acc> xv = w.gather(xp, ci, m);
            for (unsigned lane = 0; lane < kWarpSize; ++lane) {
              if (lane_active(m, lane)) {
                acc[lane] = acc[lane] + convert_value<Acc>(vals[lane]) * xv[lane];
              }
            }
            w.count_flops(2, m);
          }
          const Acc total = w.reduce_add(acc);
          w.store_uniform(yp + row, total);
          return;
        }

        // Stream path: all the group's non-zeros fit one warp-load.
        const std::uint32_t start = w.load_uniform(row_ptr + item.row_begin);
        const std::uint32_t end = w.load_uniform(row_ptr + item.row_end);
        const unsigned count = end - start;
        const LaneMask m = first_lanes(count);

        Lanes<Acc> prod{};
        if (count > 0) {
          const Lanes<IdxT> cols = w.load_contiguous(col_idx, start, m);
          const Lanes<MatV> vals = w.load_contiguous(values, start, m);
          Lanes<std::uint64_t> ci{};
          for (unsigned lane = 0; lane < kWarpSize; ++lane) {
            if (lane_active(m, lane)) ci[lane] = cols[lane];
          }
          const Lanes<Acc> xv = w.gather(xp, ci, m);
          for (unsigned lane = 0; lane < kWarpSize; ++lane) {
            if (lane_active(m, lane)) {
              prod[lane] = convert_value<Acc>(vals[lane]) * xv[lane];
            }
          }
          // Multiply + its add inside the upcoming segmented reduction: the
          // same 2 useful FLOPs per non-zero as every other kernel.
          w.count_flops(2, m);
        }

        // Load the group's row bounds (one coalesced request, as the real
        // kernel stages them through shared memory), then build head flags:
        // the first element of each non-empty row starts a segment.
        const unsigned num_rows_here = item.row_end - item.row_begin;
        w.load_contiguous(row_ptr, item.row_begin,
                          first_lanes(std::min(num_rows_here + 1, 32u)));
        LaneMask heads = 0;
        for (std::uint32_t r = item.row_begin; r < item.row_end; ++r) {
          const std::uint32_t rs = row_ptr[r];
          if (rs < end && rs >= start && row_ptr[r + 1] > rs) {
            heads |= (LaneMask{1} << (rs - start));
          }
        }
        const Lanes<Acc> incl = warp_segmented_inclusive_sum(prod, heads, m);
        w.count_instrs(5, m);  // segmented-scan butterfly overhead

        // Each row's total sits at its last element's lane; empty rows get 0.
        Lanes<Acc> results{};
        const LaneMask store_mask = first_lanes(num_rows_here);
        for (std::uint32_t r = item.row_begin; r < item.row_end; ++r) {
          const std::uint32_t rs = row_ptr[r];
          const std::uint32_t re = row_ptr[r + 1];
          const unsigned j = r - item.row_begin;
          results[j] = (re > rs) ? incl[re - 1 - start] : Acc{};
        }
        w.store_contiguous(yp, item.row_begin, results, store_mask);
      },
      schedule_seed);
  return run;
}

/// Single-precision form used by the Figure 6 comparison; keeps the original
/// concrete signature so callers passing std::vector<float> still deduce.
template <typename IdxT>
SpmvRun run_adaptive_csr(gpusim::Gpu& gpu,
                         const sparse::CsrMatrix<float, IdxT>& A,
                         const std::vector<AdaptiveWorkItem>& worklist,
                         std::span<const float> x, std::span<float> y,
                         unsigned threads_per_block = kDefaultVectorTpb,
                         std::uint64_t schedule_seed = 0) {
  return run_adaptive_csr<float, float, IdxT>(gpu, A, worklist, x, y,
                                              threads_per_block, schedule_seed);
}

}  // namespace pd::kernels
