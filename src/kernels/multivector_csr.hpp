#pragma once
// Batched (multi-vector) CSR SpMV: Y[j] = A · X[j] with the matrix streamed
// from DRAM ONCE for the whole batch.
//
// The paper's §V analysis shows the traffic is dominated by the 6·nnz bytes
// of matrix data.  But a planning run keeps multiplying the SAME matrix with
// different spot-weight vectors — line-search candidates, perturbed plans,
// multiple objectives — so batching k products raises the per-product
// operational intensity toward 2·nnz / (6·nnz/k + vectors): nearly k-fold
// for small k.  The cost is register pressure (one accumulator per batch
// lane), which the occupancy model charges for — the honest trade-off the
// ablation bench shows.  Per-row accumulation order matches the vector
// kernel exactly, so each batch column is bitwise identical to a
// single-vector launch.

#include <algorithm>
#include <array>
#include <span>

#include "common/error.hpp"
#include "gpusim/launch.hpp"
#include "kernels/spmv_common.hpp"
#include "sparse/csr.hpp"

namespace pd::kernels {

/// Maximum batch width: beyond this, accumulators would spill on a real GPU.
inline constexpr std::size_t kMaxSpmvBatch = 8;

/// Extra registers each batched accumulator/pointer pair costs per thread.
inline constexpr unsigned kRegsPerBatchLane = 6;

template <typename MatV, typename Acc, typename IdxT>
SpmvRun run_vector_csr_multi(gpusim::Gpu& gpu,
                             const sparse::CsrMatrix<MatV, IdxT>& A,
                             std::span<const std::span<const Acc>> xs,
                             std::span<const std::span<Acc>> ys,
                             unsigned threads_per_block = kDefaultVectorTpb,
                             std::uint64_t schedule_seed = 0) {
  PD_CHECK_MSG(!xs.empty() && xs.size() == ys.size(),
               "multi spmv: need matching, non-empty batches");
  PD_CHECK_MSG(xs.size() <= kMaxSpmvBatch, "multi spmv: batch too wide");
  for (std::size_t j = 0; j < xs.size(); ++j) {
    PD_CHECK_MSG(xs[j].size() == A.num_cols, "multi spmv: x size mismatch");
    PD_CHECK_MSG(ys[j].size() == A.num_rows, "multi spmv: y size mismatch");
  }

  using namespace pd::gpusim;
  const std::uint32_t* row_ptr = A.row_ptr.data();
  const IdxT* col_idx = A.col_idx.data();
  const MatV* values = A.values.data();
  const std::uint64_t num_rows = A.num_rows;
  const std::size_t batch = xs.size();

  const unsigned regs =
      kVectorCsrRegs + kRegsPerBatchLane * static_cast<unsigned>(batch - 1);
  const LaunchConfig cfg =
      LaunchConfig::warp_per_item(num_rows, threads_per_block, regs);

  register_spmv_buffers(gpu, A, xs[0], ys[0]);
  if (gpusim::CheckContext* chk = gpu.check()) {
    for (std::size_t j = 1; j < batch; ++j) {
      chk->track_global(xs[j].data(), xs[j].size_bytes(), "x[batch]",
                        /*initialized=*/true);
      chk->track_global(ys[j].data(), ys[j].size_bytes(), "y[batch]",
                        /*initialized=*/false);
    }
  }
  SpmvRun run;
  run.config = cfg;
  run.precision = sizeof(Acc) == 8 ? FlopPrecision::kFp64 : FlopPrecision::kFp32;
  run.stats = gpu.run(
      cfg,
      [&](WarpCtx& w) {
        const std::uint64_t row = w.global_warp_id();
        if (row >= num_rows) {
          return;
        }
        const std::uint32_t start = w.load_uniform(row_ptr + row);
        const std::uint32_t end = w.load_uniform(row_ptr + row + 1);

        std::array<Lanes<Acc>, kMaxSpmvBatch> acc{};
        for (std::uint64_t base = start; base < end; base += kWarpSize) {
          const auto remaining = static_cast<unsigned>(
              std::min<std::uint64_t>(kWarpSize, end - base));
          const LaneMask m = first_lanes(remaining);
          // The matrix chunk is loaded once and reused across the batch.
          const Lanes<IdxT> cols = w.load_contiguous(col_idx, base, m);
          const Lanes<MatV> vals = w.load_contiguous(values, base, m);
          for (std::size_t j = 0; j < batch; ++j) {
            const Lanes<Acc> xv = w.gather(xs[j].data(), cols, m);
            for (unsigned lane = 0; lane < kWarpSize; ++lane) {
              if (lane_active(m, lane)) {
                acc[j][lane] =
                    acc[j][lane] + convert_value<Acc>(vals[lane]) * xv[lane];
              }
            }
            w.count_flops(2, m);
          }
        }
        for (std::size_t j = 0; j < batch; ++j) {
          w.store_uniform(ys[j].data() + row, w.reduce_add(acc[j]));
        }
      },
      schedule_seed);
  return run;
}

}  // namespace pd::kernels
