#pragma once
// "GPU Baseline": the RayStation CPU algorithm ported to the GPU (paper §IV).
//
// The CPU engine walks the compressed matrix column by column, scattering
// into per-thread scratch dose arrays.  Per-thread scratch arrays are
// infeasible for tens of thousands of GPU threads, so — exactly as the paper
// describes — the port replaces them with atomicAdd into the shared output
// vector.  One warp decodes one compressed column: lanes load 32 packed
// (delta, qvalue) entries, a warp prefix-sum turns the deltas into absolute
// row indices, and each lane atomically accumulates its contribution.
//
// Consequences faithfully reproduced here:
//  * heavy L2 atomic traffic (the perf model's t_atomic dominates),
//  * results are NOT bitwise reproducible across block schedules — run the
//    kernel with two different schedule_seeds and the doses differ in the
//    last ulps (tests/bench demonstrate this).

#include <algorithm>
#include <span>

#include "common/error.hpp"
#include "gpusim/launch.hpp"
#include "kernels/spmv_common.hpp"
#include "rsformat/rsmatrix.hpp"

namespace pd::kernels {

/// Launch the baseline port: y += D·x must start from a zeroed y (the kernel
/// accumulates atomically).  Returns measured counters.
inline SpmvRun run_baseline_gpu(gpusim::Gpu& gpu, const rsformat::RsMatrix& D,
                                std::span<const double> x, std::span<double> y,
                                unsigned threads_per_block = kDefaultBaselineTpb,
                                std::uint64_t schedule_seed = 0) {
  PD_CHECK_MSG(x.size() == D.num_cols(), "baseline: x size mismatch");
  PD_CHECK_MSG(y.size() == D.num_rows(), "baseline: y size mismatch");
  std::fill(y.begin(), y.end(), 0.0);

  using namespace pd::gpusim;
  const std::uint64_t* col_ptr = D.col_ptr().data();
  const std::uint32_t* first_row = D.col_first_row().data();
  const float* scales = D.col_scale().data();
  const std::uint16_t* deltas = D.deltas().data();
  const std::uint16_t* qvalues = D.qvalues().data();
  const double* xp = x.data();
  double* yp = y.data();
  const std::uint64_t num_cols = D.num_cols();

  const LaunchConfig cfg = LaunchConfig::warp_per_item(
      num_cols, threads_per_block, kBaselineRegs);

  if (gpusim::CheckContext* chk = gpu.check()) {
    chk->clear_tracking();
    chk->track_global(col_ptr, D.col_ptr().size() * sizeof(std::uint64_t),
                      "rs.col_ptr", /*initialized=*/true);
    chk->track_global(first_row, D.col_first_row().size() * sizeof(std::uint32_t),
                      "rs.first_row", /*initialized=*/true);
    chk->track_global(scales, D.col_scale().size() * sizeof(float), "rs.scale",
                      /*initialized=*/true);
    chk->track_global(deltas, D.deltas().size() * sizeof(std::uint16_t),
                      "rs.deltas", /*initialized=*/true);
    chk->track_global(qvalues, D.qvalues().size() * sizeof(std::uint16_t),
                      "rs.qvalues", /*initialized=*/true);
    chk->track_global(xp, x.size_bytes(), "x", /*initialized=*/true);
    // The host zero-fills y above; the kernel only accumulates into it.
    chk->track_global(yp, y.size_bytes(), "y", /*initialized=*/true);
  }
  SpmvRun run;
  run.config = cfg;
  run.precision = FlopPrecision::kFp64;
  run.stats = gpu.run(
      cfg,
      [&](WarpCtx& w) {
        const std::uint64_t col = w.global_warp_id();
        if (col >= num_cols) {
          return;
        }
        const std::uint64_t begin = w.load_uniform(col_ptr + col);
        const std::uint64_t end = w.load_uniform(col_ptr + col + 1);
        const double scale = w.load_uniform(scales + col);
        const double weight = w.load_uniform(xp + col);
        std::uint64_t row_base = w.load_uniform(first_row + col);

        for (std::uint64_t base = begin; base < end; base += kWarpSize) {
          const auto remaining = static_cast<unsigned>(
              std::min<std::uint64_t>(kWarpSize, end - base));
          const LaneMask m = first_lanes(remaining);
          const Lanes<std::uint16_t> d = w.load_contiguous(deltas, base, m);
          const Lanes<std::uint16_t> q = w.load_contiguous(qvalues, base, m);

          // Warp prefix sum of the row advances (escape = big skip, no
          // entry) to obtain absolute row indices.
          Lanes<std::uint64_t> advance{};
          LaneMask entry_mask = 0;
          for (unsigned lane = 0; lane < kWarpSize; ++lane) {
            if (!lane_active(m, lane)) {
              continue;
            }
            if (d[lane] == rsformat::RsMatrix::kEscape) {
              advance[lane] = rsformat::RsMatrix::kEscapeAdvance;
            } else {
              advance[lane] = d[lane];
              entry_mask |= (LaneMask{1} << lane);
            }
          }
          const Lanes<std::uint64_t> incl =
              warp_segmented_inclusive_sum(advance, /*head_flags=*/1u, m);
          w.count_instrs(5, m);  // integer prefix-sum butterfly issue slots

          Lanes<std::uint64_t> rows{};
          Lanes<double> contrib{};
          for (unsigned lane = 0; lane < kWarpSize; ++lane) {
            if (lane_active(entry_mask, lane)) {
              rows[lane] = row_base + incl[lane];
              contrib[lane] = static_cast<double>(q[lane]) * scale * weight;
            }
          }
          w.count_flops(2, entry_mask);
          if (weight != 0.0) {
            w.atomic_add_scatter(yp, rows, contrib, entry_mask);
          }
          // Advance the running row cursor by the chunk's total.
          std::uint64_t chunk_total = 0;
          for (unsigned lane = 0; lane < kWarpSize; ++lane) {
            if (lane_active(m, lane)) {
              chunk_total = incl[lane];
            }
          }
          row_base += chunk_total;
        }
      },
      schedule_seed);
  return run;
}

}  // namespace pd::kernels
