#include "cases/cases.hpp"

#include <cmath>
#include <cstdlib>

#include "common/error.hpp"

namespace pd::cases {

namespace {
/// Linear size factor for a voxel-count scale.
double linear_factor(double scale) {
  PD_CHECK_MSG(scale > 0.0, "case scale must be positive");
  return std::cbrt(scale);
}

std::int64_t scaled_dim(double base, double f) {
  return std::max<std::int64_t>(8, static_cast<std::int64_t>(std::llround(base * f)));
}
}  // namespace

CaseDefinition liver_case(double scale) {
  const double f = linear_factor(scale);
  CaseDefinition def;
  def.name = "liver";
  def.nx = scaled_dim(44, f);
  def.ny = scaled_dim(44, f);
  def.nz = scaled_dim(24, f);
  def.spacing_mm = 5.0;
  def.gantry_angles_deg = {0.0, 45.0, 135.0, 225.0};
  def.beam_config.spot_spacing_mm = 3.4 / f;
  def.beam_config.layer_spacing_mm = 5.0 / f;
  def.beam_config.lateral_margin_mm = 8.0;
  def.transport.step_mm = 2.5;
  def.transport.lateral_sigma0_mm = 4.0;
  def.transport.lateral_growth_mm_per_cm = 0.6;
  def.transport.lateral_cutoff_sigmas = 2.0;
  def.seed = 0x11BE2021ULL;
  return def;
}

CaseDefinition prostate_case(double scale) {
  const double f = linear_factor(scale);
  CaseDefinition def;
  def.name = "prostate";
  def.nx = scaled_dim(28, f);
  def.ny = scaled_dim(28, f);
  def.nz = scaled_dim(20, f);
  def.spacing_mm = 6.0;
  def.gantry_angles_deg = {90.0, 270.0};  // parallel opposed
  def.beam_config.spot_spacing_mm = 5.5 / f;
  def.beam_config.layer_spacing_mm = 5.0 / f;
  def.beam_config.lateral_margin_mm = 7.0;
  def.transport.step_mm = 2.5;
  def.transport.lateral_sigma0_mm = 5.0;
  def.transport.lateral_growth_mm_per_cm = 0.6;
  def.transport.lateral_cutoff_sigmas = 2.2;
  def.seed = 0x9205A7EULL;
  return def;
}

phantom::Phantom build_phantom(const CaseDefinition& def) {
  if (def.name == "liver") {
    return phantom::make_liver_phantom(def.nx, def.ny, def.nz, def.spacing_mm);
  }
  if (def.name == "prostate") {
    return phantom::make_prostate_phantom(def.nx, def.ny, def.nz, def.spacing_mm);
  }
  throw pd::Error("unknown case: " + def.name);
}

mc::GeneratedBeam generate_beam(const CaseDefinition& def,
                                const phantom::Phantom& phantom,
                                std::size_t beam_index) {
  PD_CHECK_MSG(beam_index < def.num_beams(), "beam index out of range");
  return mc::generate_dose_matrix(phantom, def.gantry_angles_deg[beam_index],
                                  def.beam_config, def.transport, def.bragg,
                                  def.seed + beam_index);
}

std::vector<sparse::CsrF64> generate_setup_scenarios(
    const CaseDefinition& def, const phantom::Phantom& phantom,
    std::size_t beam_index, const std::vector<phantom::Vec3>& shifts_mm) {
  PD_CHECK_MSG(beam_index < def.num_beams(), "beam index out of range");
  std::vector<sparse::CsrF64> scenarios;
  scenarios.reserve(shifts_mm.size() + 1);
  // Scenario 0: nominal delivery.
  scenarios.push_back(generate_beam(def, phantom, beam_index).matrix);
  for (const phantom::Vec3& shift : shifts_mm) {
    scenarios.push_back(
        mc::generate_dose_matrix(phantom, def.gantry_angles_deg[beam_index],
                                 def.beam_config, def.transport, def.bragg,
                                 def.seed + beam_index, shift)
            .matrix);
  }
  return scenarios;
}

std::vector<BeamDataset> generate_case_beams(const CaseDefinition& def) {
  const phantom::Phantom phantom = build_phantom(def);
  std::vector<BeamDataset> out;
  for (std::size_t b = 0; b < def.num_beams(); ++b) {
    BeamDataset ds;
    ds.label = def.name + " " + std::to_string(b + 1);
    ds.beam = generate_beam(def, phantom, b);
    ds.stats = sparse::compute_stats(ds.beam.matrix);
    out.push_back(std::move(ds));
  }
  return out;
}

std::vector<BeamDataset> generate_all_beams(double scale) {
  std::vector<BeamDataset> all;
  const auto& paper = sparse::paper_table1();
  for (const CaseDefinition& def : {liver_case(scale), prostate_case(scale)}) {
    for (BeamDataset& ds : generate_case_beams(def)) {
      all.push_back(std::move(ds));
    }
  }
  PD_CHECK_MSG(all.size() == paper.size(),
               "case catalog out of sync with Table I");
  for (std::size_t i = 0; i < all.size(); ++i) {
    all[i].label = paper[i].name;
    all[i].paper = paper[i];
  }
  return all;
}

double scale_from_env() {
  if (const char* v = std::getenv("PROTONDOSE_SCALE"); v != nullptr && *v != '\0') {
    const double s = std::atof(v);
    PD_CHECK_MSG(s > 0.0, "PROTONDOSE_SCALE must be positive");
    return s;
  }
  return 1.0;
}

}  // namespace pd::cases
