#pragma once
// The paper's evaluation cases: a liver patient with four beams and a
// prostate patient with two parallel-opposed beams (Table I), generated
// synthetically at a configurable scale.
//
// Scale semantics: scale = 1.0 is the repository default "mini" size
// (~1/64 of the paper's voxel count per case, ~1/1000 of the nnz), chosen so
// the cache-simulator benches run in seconds on one CPU core.  The generator
// preserves the structural properties the kernels are sensitive to —
// rows ≫ cols, 0.6–2% density, ~70% empty rows, heavy-tailed row lengths —
// which tests assert.  Raise PROTONDOSE_SCALE / --scale for larger matrices.

#include <cstdint>
#include <string>
#include <vector>

#include "mc/generator.hpp"
#include "phantom/phantom.hpp"
#include "sparse/stats.hpp"

namespace pd::cases {

struct CaseDefinition {
  std::string name;                    ///< "liver" / "prostate".
  std::int64_t nx = 0, ny = 0, nz = 0; ///< Dose-grid dimensions.
  double spacing_mm = 0.0;
  std::vector<double> gantry_angles_deg;
  phantom::BeamConfig beam_config;
  mc::TransportConfig transport;
  mc::BraggModel bragg;
  std::uint64_t seed = 0;

  std::size_t num_beams() const { return gantry_angles_deg.size(); }
};

/// Four-beam liver case (Table I rows "Liver 1..4").
CaseDefinition liver_case(double scale = 1.0);

/// Two parallel-opposed-beam prostate case (Table I rows "Prostate 1..2").
CaseDefinition prostate_case(double scale = 1.0);

/// Build the case's phantom.
phantom::Phantom build_phantom(const CaseDefinition& def);

/// Generate the dose deposition matrix of one beam (0-based index).
mc::GeneratedBeam generate_beam(const CaseDefinition& def,
                                const phantom::Phantom& phantom,
                                std::size_t beam_index);

/// Generate setup-error scenario matrices for one beam: the nominal matrix
/// followed by one matrix per shift (patient displaced by ±`shift_mm` along
/// the beam frame's lateral axes).  All scenarios share the spot plan, as
/// robust optimization requires (paper §II).
std::vector<sparse::CsrF64> generate_setup_scenarios(
    const CaseDefinition& def, const phantom::Phantom& phantom,
    std::size_t beam_index, const std::vector<phantom::Vec3>& shifts_mm);

/// A generated beam paired with its Table I counterpart.
struct BeamDataset {
  std::string label;                 ///< e.g. "Liver 1".
  mc::GeneratedBeam beam;
  sparse::MatrixStats stats;
  sparse::PaperMatrixInfo paper;     ///< Full-scale reference numbers.
};

/// Generate every beam of both cases, in Table I order.  This is the shared
/// workload loader all benches use.
std::vector<BeamDataset> generate_all_beams(double scale = 1.0);

/// Generate the beams of a single case, in order.
std::vector<BeamDataset> generate_case_beams(const CaseDefinition& def);

/// Read the scale from PROTONDOSE_SCALE (default 1.0).
double scale_from_env();

}  // namespace pd::cases
