#pragma once
// Adaptive request-coalescing queue for DoseService.
//
// BatchQueue groups submitted requests by plan and decides when a plan's
// pending run should be launched as one DoseEngine::compute_batch: when the
// plan has a full batch (batch_cap), when its oldest request has waited
// flush_age_ticks (so a lone request is never parked indefinitely behind an
// adaptive batch that will not fill), or when the caller drains.  Per plan
// the order is strict FIFO — a batch is always a prefix of the plan's
// submission order, and compute_batch preserves per-column bits — so
// batching can never reorder or alter any request's dose (docs/service.md).
//
// The queue is deliberately *passive and deterministic*: no threads, no
// clocks — time is an opaque monotone tick supplied by the caller, and all
// methods are called under the service lock.  That makes the scheduling
// logic exhaustively testable single-threaded (tests/test_batch_queue.cpp
// drives seeded random interleavings of submit / flush / deadline ticks and
// checks the FIFO, cap, and bound invariants).

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace pd::service {

struct BatchQueueConfig {
  std::size_t batch_cap = 8;    ///< Max requests coalesced into one launch.
  std::size_t queue_bound = 256;  ///< Max queued requests (backpressure).
  std::uint64_t flush_age_ticks = 2000;  ///< Age at which a head flushes.
};

/// A bulk-priority head older than this many flush ages counts as
/// interactive in pop_ready's plan selection, so sustained interactive
/// traffic delays the optimizer fleet by a bounded amount instead of
/// starving it.  (With flush_age_ticks == 0 the escalation is immediate and
/// priorities degenerate to pure oldest-head order.)
constexpr std::uint64_t kBulkEscalationAges = 4;

/// One queued request.  `deadline_tick` == 0 means no deadline.
/// `exec_key` tags the execution configuration the request asked for
/// (DoseService encodes the accuracy tier/format in it); a launched batch is
/// always uniform in exec_key so the engine can be configured once per
/// launch, under the plan's busy mark.  `priority` orders plan selection in
/// pop_ready (0 = interactive, higher = later); within a plan FIFO order is
/// never reordered by priority — per-plan bits and ordering stay fixed.
struct QueuedRequest {
  std::uint64_t id = 0;
  std::string plan;
  std::uint64_t enqueue_tick = 0;
  std::uint64_t deadline_tick = 0;
  std::uint32_t exec_key = 0;
  std::uint8_t priority = 0;
};

class BatchQueue {
 public:
  explicit BatchQueue(const BatchQueueConfig& config);

  const BatchQueueConfig& config() const { return config_; }

  /// Requests queued right now (across all plans).
  std::size_t depth() const { return depth_; }

  /// Enqueue; returns false when the queue bound is reached (the caller
  /// rejects the request — the queue never grows past queue_bound).
  bool submit(QueuedRequest request);

  /// Pop the next launchable batch and mark its plan busy.  A plan is
  /// launchable when it is not busy (one in-flight batch per plan keeps its
  /// engine single-writer and its ordering FIFO) and (pending >= batch_cap,
  /// or its head aged >= flush_age_ticks, or `drain`).  Among launchable
  /// plans the winner is the lowest (effective head priority, head enqueue
  /// tick) pair: interactive heads beat bulk heads, oldest head breaks ties,
  /// and a bulk head past kBulkEscalationAges flush ages counts as
  /// interactive so it cannot starve (see QueuedRequest::priority).
  /// The batch is the longest prefix of the plan's FIFO sharing the head's
  /// exec_key (capped at batch_cap), so mixed-tier traffic splits into
  /// uniform launches without ever reordering a plan's requests.
  /// Empty result = nothing launchable at `now`.
  std::vector<QueuedRequest> pop_ready(std::uint64_t now, bool drain);

  /// Clear a plan's busy mark once its in-flight batch completed.
  void mark_idle(const std::string& plan);

  /// Remove and return every queued request whose deadline has passed.
  /// Busy plans are included: their *queued* requests (not the in-flight
  /// batch) can still expire.
  std::vector<QueuedRequest> expire(std::uint64_t now);

  /// Remove a queued request by id.  False when unknown — already popped
  /// into a batch (too late to cancel), expired, or never queued.
  bool cancel(std::uint64_t id);

  /// Earliest tick at which anything becomes actionable (a head reaches
  /// flush age or a deadline passes); nullopt when nothing is pending.
  /// A full non-busy plan is actionable *now*; it reports its head's
  /// enqueue tick (always <= now), NOT a literal 0.  Single-queue consumers
  /// only compare the result against now, so the two are equivalent there —
  /// but multi-queue consumers (one BatchQueue per shard) compare tick
  /// values *across* queues to pick the next shard to serve, and a constant
  /// 0 made every full queue look infinitely old, starving shards whose
  /// heads were genuinely older.  Reporting the real head tick keeps
  /// cross-queue comparisons oldest-head-fair.
  std::optional<std::uint64_t> next_event_tick() const;

  /// Oldest head enqueue tick among plans launchable at `now` (same launch
  /// condition as pop_ready, priority-blind); nullopt when nothing is
  /// launchable.  This is the cross-queue fairness key: a multi-shard
  /// consumer that always serves the queue with the smallest value gets
  /// global oldest-head order, not just per-queue order.
  std::optional<std::uint64_t> oldest_ready_head_tick(std::uint64_t now,
                                                      bool drain) const;

 private:
  struct PlanQueue {
    std::deque<QueuedRequest> pending;
    bool busy = false;
  };

  /// Plan-selection priority of a head at `now` (bulk escalates to
  /// interactive past kBulkEscalationAges flush ages).
  std::uint8_t effective_priority(const QueuedRequest& head,
                                  std::uint64_t now) const;

  BatchQueueConfig config_;
  std::map<std::string, PlanQueue> plans_;
  std::size_t depth_ = 0;
};

}  // namespace pd::service
