#pragma once
// Observable state of a running DoseService (docs/service.md).
//
// ServiceStats is a consistent snapshot taken under the service lock: request
// outcome counters, the adaptive batcher's launch-width histogram, engine
// cache hit/miss/eviction counts, and completion-latency percentiles over a
// sliding window.  Everything here is diagnostic — none of it feeds back into
// scheduling, so reading stats never perturbs dose bits or ordering.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pd::service {

/// Engine-cache counters (a sub-snapshot of ServiceStats, also available
/// directly from EngineCache for cache-only tests).
struct EngineCacheStats {
  std::uint64_t hits = 0;        ///< acquire() served from the cache.
  std::uint64_t misses = 0;      ///< acquire() had to build an engine.
  std::uint64_t evictions = 0;   ///< LRU entries dropped over capacity.
  std::size_t resident = 0;      ///< Engines currently in the cache.
  std::size_t pinned = 0;        ///< Resident engines held by in-flight work.
  std::uint64_t tunes = 0;       ///< Autotuner runs (once per registered plan;
                                 ///< rebuilds re-apply the cached config).
  std::size_t tuned_plans = 0;   ///< Plans with a cached TunedConfig.
};

/// Snapshot of the service's request/batch/latency counters.
struct ServiceStats {
  // Request outcomes (monotonic counters).
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;  ///< Resolved kOk.
  std::uint64_t rejected = 0;   ///< Backpressure (kRejected).
  std::uint64_t cancelled = 0;  ///< Cancelled while queued (kCancelled).
  std::uint64_t expired = 0;    ///< Deadline passed in queue (kDeadlineExpired).
  std::uint64_t failed = 0;     ///< Engine build / weight validation (kFailed).

  // Adaptive batching.
  std::uint64_t batches = 0;       ///< compute_batch launches issued.
  std::uint64_t fast_batches = 0;  ///< …of which ran the fast tier.
  std::uint64_t delta_batches = 0;  ///< …of which were submit_delta launches.
  /// batch_size_counts[k-1] = number of launches of width exactly k
  /// (k in [1, batch_cap]).
  std::vector<std::uint64_t> batch_size_counts;

  // Queue.
  std::size_t queue_depth = 0;      ///< Requests queued right now.
  std::size_t max_queue_depth = 0;  ///< High-water mark.

  // Engine cache.
  EngineCacheStats cache;

  // Completion latency (submit -> future resolved kOk), over a sliding
  // window of the most recent completions.
  double p50_latency_ms = 0.0;
  double p99_latency_ms = 0.0;

  double mean_batch_size() const {
    std::uint64_t requests = 0;
    for (std::size_t k = 0; k < batch_size_counts.size(); ++k) {
      requests += batch_size_counts[k] * (k + 1);
    }
    return batches == 0 ? 0.0
                        : static_cast<double>(requests) /
                              static_cast<double>(batches);
  }
};

}  // namespace pd::service
