#include "service/sharded_service.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "common/error.hpp"
#include "sparse/partition.hpp"

namespace pd::service {
namespace {

// Worst-status-wins precedence for merging slice results: a merged request
// is kOk only when every slice is, and a transient refusal (kRejected) never
// masks a terminal failure.
int severity(RequestStatus status) {
  switch (status) {
    case RequestStatus::kOk:
      return 0;
    case RequestStatus::kRejected:
      return 1;
    case RequestStatus::kCancelled:
      return 2;
    case RequestStatus::kDeadlineExpired:
      return 3;
    case RequestStatus::kFailed:
      return 4;
  }
  return 4;
}

}  // namespace

ShardedDoseService::ShardedDoseService(ShardedServiceConfig config)
    : config_(std::move(config)),
      router_(ShardRouterConfig{.shards = config_.shards,
                                .replication = config_.replication,
                                .vnodes = config_.vnodes}) {
  // The router already validated shards/vnodes; mirror its replication clamp
  // so config() reports what routing actually does.
  config_.replication =
      std::clamp<std::size_t>(config_.replication, 1, config_.shards);
  shards_.reserve(config_.shards);
  for (std::size_t s = 0; s < config_.shards; ++s) {
    shards_.push_back(std::make_unique<DoseService>(config_.shard));
  }
  routed_per_shard_.assign(config_.shards, 0);
}

void ShardedDoseService::register_plan(const std::string& plan,
                                       MatrixSource source) {
  std::lock_guard<pd::Mutex> lock(mu_);
  PD_CHECK_MSG(sliced_.find(plan) == sliced_.end(),
               "register_plan: plan is already registered in sliced mode");
  plans_.insert(plan);
  for (const auto& shard : shards_) {
    shard->register_plan(plan, source);
  }
}

void ShardedDoseService::register_plan_sliced(const std::string& plan,
                                              MatrixSource source,
                                              std::size_t slices) {
  PD_CHECK_MSG(slices >= 1, "register_plan_sliced: need at least one slice");
  PD_CHECK_MSG(config_.shard.engine.family == kernels::SpmvFamily::kVector,
               "register_plan_sliced: row-block slicing is bitwise-safe only "
               "for the warp-per-row (vector) kernel family");
  // Partition outside the lock: the source may be expensive and mu_ is never
  // held across matrix generation.
  const sparse::CsrF64 matrix = source();
  const sparse::RowPartition partition =
      sparse::balanced_row_partition(matrix, slices);
  SlicedPlan entry;
  entry.boundaries = partition.boundaries;
  entry.sub_plans.reserve(slices);
  for (std::size_t i = 0; i < slices; ++i) {
    entry.sub_plans.push_back(plan + "#slice" + std::to_string(i) + "/" +
                              std::to_string(slices));
  }
  std::lock_guard<pd::Mutex> lock(mu_);
  PD_CHECK_MSG(plans_.find(plan) == plans_.end(),
               "register_plan_sliced: plan is already registered whole");
  for (std::size_t i = 0; i < slices; ++i) {
    const std::uint64_t begin = partition.boundaries[i];
    const std::uint64_t end = partition.boundaries[i + 1];
    // Deterministic source => deterministic block: an evicted slice engine
    // rebuilds bit-identical, same as any whole-plan source.
    MatrixSource sub = [source, begin, end]() {
      return sparse::extract_row_block(source(), begin, end);
    };
    for (const auto& shard : shards_) {
      shard->register_plan(entry.sub_plans[i], sub);
    }
  }
  sliced_[plan] = std::move(entry);
}

std::uint64_t ShardedDoseService::encode_id(std::size_t shard,
                                            std::uint64_t inner_id) {
  return ((static_cast<std::uint64_t>(shard) + 1) << 48) |
         (inner_id & ((std::uint64_t{1} << 48) - 1));
}

Ticket ShardedDoseService::resolved_ticket(std::uint64_t id,
                                           DoseResult result) {
  std::promise<DoseResult> promise;
  Ticket ticket;
  ticket.id = id;
  ticket.accepted = false;
  ticket.result = promise.get_future();
  promise.set_value(std::move(result));
  return ticket;
}

template <typename SubmitFn>
ShardedDoseService::Routed ShardedDoseService::route_submit_locked(
    const std::string& plan, RequestPriority priority, SubmitFn&& fn) {
  Routed out;
  std::vector<std::size_t> candidates = router_.route(plan);
  if (candidates.empty()) {
    out.immediate.status = RequestStatus::kFailed;
    out.immediate.error = "sharded service: no active shard";
    ++failed_immediate_;
    return out;
  }
  // Least-loaded first; stable sort keeps ring order as the tie-break so
  // equal-depth routing stays deterministic.  Depths are snapshotted before
  // sorting: workers pop concurrently, and a comparator reading live depths
  // can answer inconsistently mid-sort, which is undefined behavior.
  std::vector<std::pair<std::size_t, std::size_t>> by_depth;
  by_depth.reserve(candidates.size());
  for (const std::size_t shard : candidates) {
    by_depth.emplace_back(shards_[shard]->queue_depth(), shard);
  }
  std::stable_sort(by_depth.begin(), by_depth.end(),
                   [](const std::pair<std::size_t, std::size_t>& a,
                      const std::pair<std::size_t, std::size_t>& b) {
                     return a.first < b.first;
                   });
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    candidates[i] = by_depth[i].second;
  }
  if (priority == RequestPriority::kBulk) {
    const double depth = static_cast<double>(by_depth.front().first);
    const double threshold = config_.bulk_admit_fraction *
                             static_cast<double>(config_.shard.queue_bound);
    if (depth >= threshold) {
      out.immediate.status = RequestStatus::kRejected;
      out.immediate.retry_after_ms =
          shards_[candidates.front()]->retry_after_estimate();
      ++rejected_;
      ++admission_rejected_;
      return out;
    }
  }
  const std::vector<std::size_t> replicas = router_.placement(plan);
  double min_retry = 0.0;
  bool have_retry = false;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const std::size_t shard = candidates[i];
    Ticket ticket = fn(shard);
    if (ticket.accepted) {
      ++accepted_;
      ++routed_per_shard_[shard];
      if (i != 0) {
        ++replica_spills_;
      }
      if (std::find(replicas.begin(), replicas.end(), shard) ==
          replicas.end()) {
        ++rerouted_;
      }
      out.accepted = true;
      out.shard = shard;
      out.ticket = std::move(ticket);
      return out;
    }
    // Refused tickets are resolved synchronously inside submit; get() here
    // never blocks.
    DoseResult refused = ticket.result.get();
    if (refused.status == RequestStatus::kRejected) {
      // Backpressure is per shard: spill to the next replica, remembering
      // the friendliest retry hint in case every one is saturated.
      if (!have_retry || refused.retry_after_ms < min_retry) {
        min_retry = refused.retry_after_ms;
        have_retry = true;
      }
      continue;
    }
    // kFailed (unknown plan, null base...) is plan-level, not shard-level —
    // every shard has the same registrations, so retrying elsewhere would
    // only repeat it.
    out.immediate = std::move(refused);
    ++failed_immediate_;
    return out;
  }
  out.immediate.status = RequestStatus::kRejected;
  out.immediate.retry_after_ms = have_retry ? min_retry : 0.0;
  ++rejected_;
  return out;
}

Ticket ShardedDoseService::submit_sliced_locked(
    const SlicedPlan& sliced, const std::vector<double>& weights,
    const SubmitOptions& options) {
  const std::size_t slices = sliced.sub_plans.size();
  std::vector<SliceTicket> tickets;
  std::vector<std::future<DoseResult>> futures;
  tickets.reserve(slices);
  futures.reserve(slices);
  for (std::size_t i = 0; i < slices; ++i) {
    Routed routed = route_submit_locked(
        sliced.sub_plans[i], options.priority, [&](std::size_t shard) {
          return shards_[shard]->submit(sliced.sub_plans[i], weights, options);
        });
    if (!routed.accepted) {
      // All-or-nothing: cancel the slices already queued and surface the
      // refusal for the whole request — a sliced result is never partial.
      for (const SliceTicket& st : tickets) {
        shards_[st.shard]->cancel(st.inner_id);
      }
      DoseResult refused = std::move(routed.immediate);
      refused.error = "slice " + std::to_string(i) + "/" +
                      std::to_string(slices) + " refused" +
                      (refused.error.empty() ? "" : ": " + refused.error);
      return resolved_ticket(0, std::move(refused));
    }
    tickets.push_back(SliceTicket{routed.shard, routed.ticket.id});
    futures.push_back(std::move(routed.ticket.result));
  }
  const std::uint64_t id = (std::uint64_t{1} << 63) | next_slice_seq_++;
  slice_tickets_[id] = tickets;
  slice_ticket_order_.push_back(id);
  while (slice_ticket_order_.size() > config_.slice_window) {
    slice_tickets_.erase(slice_ticket_order_.front());
    slice_ticket_order_.pop_front();
  }
  // Deferred merge: the gather runs on the caller's get(), on the caller's
  // thread — the router stays threadless and no lock is held while waiting.
  Ticket out;
  out.id = id;
  out.accepted = true;
  out.result = std::async(
      std::launch::deferred,
      [parts = std::move(futures), slices]() mutable {
        std::vector<DoseResult> results;
        results.reserve(parts.size());
        for (auto& part : parts) {
          results.push_back(part.get());
        }
        DoseResult merged;
        merged.status = RequestStatus::kOk;
        std::size_t worst = 0;
        for (std::size_t i = 0; i < results.size(); ++i) {
          if (severity(results[i].status) > severity(merged.status)) {
            merged.status = results[i].status;
            worst = i;
          }
          merged.latency_ms = std::max(merged.latency_ms, results[i].latency_ms);
          merged.batch_size = std::max(merged.batch_size, results[i].batch_size);
          merged.retry_after_ms =
              std::max(merged.retry_after_ms, results[i].retry_after_ms);
        }
        if (merged.status != RequestStatus::kOk) {
          merged.error =
              "slice " + std::to_string(worst) + "/" + std::to_string(slices) +
              ": " + to_string(results[worst].status) +
              (results[worst].error.empty() ? ""
                                            : " (" + results[worst].error + ")");
          return merged;
        }
        // Ordered concatenation over the row partition — bitwise identical
        // to the full-matrix product (sparse/partition.hpp).
        std::size_t rows = 0;
        for (const DoseResult& r : results) {
          rows += r.dose.size();
        }
        merged.dose.reserve(rows);
        for (const DoseResult& r : results) {
          merged.dose.insert(merged.dose.end(), r.dose.begin(), r.dose.end());
        }
        return merged;
      });
  return out;
}

Ticket ShardedDoseService::submit(const std::string& plan,
                                  std::vector<double> weights,
                                  const SubmitOptions& options) {
  std::lock_guard<pd::Mutex> lock(mu_);
  ++submitted_;
  if (const auto it = sliced_.find(plan); it != sliced_.end()) {
    ++sliced_submits_;
    return submit_sliced_locked(it->second, weights, options);
  }
  // The lambda copies the weights per attempt: DoseService::submit consumes
  // its argument even when it refuses, and a spill needs them again.
  Routed routed = route_submit_locked(
      plan, options.priority, [&](std::size_t shard) {
        return shards_[shard]->submit(plan, weights, options);
      });
  if (!routed.accepted) {
    return resolved_ticket(0, std::move(routed.immediate));
  }
  Ticket out;
  out.id = encode_id(routed.shard, routed.ticket.id);
  out.accepted = true;
  out.result = std::move(routed.ticket.result);
  return out;
}

Ticket ShardedDoseService::submit_delta(const std::string& plan,
                                        std::shared_ptr<const DeltaBase> base,
                                        std::vector<double> new_weights,
                                        const DeltaOptions& options) {
  std::lock_guard<pd::Mutex> lock(mu_);
  ++submitted_;
  if (sliced_.find(plan) != sliced_.end()) {
    DoseResult result;
    result.status = RequestStatus::kFailed;
    result.error =
        "sliced plans do not support delta requests (a delta base holds a "
        "full dose, which no single slice shard can update)";
    ++failed_immediate_;
    return resolved_ticket(0, std::move(result));
  }
  Routed routed = route_submit_locked(
      plan, options.priority, [&](std::size_t shard) {
        return shards_[shard]->submit_delta(plan, base, new_weights, options);
      });
  if (!routed.accepted) {
    return resolved_ticket(0, std::move(routed.immediate));
  }
  Ticket out;
  out.id = encode_id(routed.shard, routed.ticket.id);
  out.accepted = true;
  out.result = std::move(routed.ticket.result);
  return out;
}

bool ShardedDoseService::cancel(std::uint64_t id) {
  std::lock_guard<pd::Mutex> lock(mu_);
  ++cancels_routed_;
  if ((id >> 63) != 0) {
    const auto it = slice_tickets_.find(id);
    if (it == slice_tickets_.end()) {
      return false;  // Unknown or past the bookkeeping window.
    }
    bool any = false;
    for (const SliceTicket& st : it->second) {
      any = shards_[st.shard]->cancel(st.inner_id) || any;
    }
    slice_tickets_.erase(it);
    return any;
  }
  const std::uint64_t shard_plus_one = id >> 48;
  if (shard_plus_one == 0 || shard_plus_one > shards_.size()) {
    return false;
  }
  return shards_[shard_plus_one - 1]->cancel(id &
                                             ((std::uint64_t{1} << 48) - 1));
}

void ShardedDoseService::drain() {
  // No mu_: drain blocks on in-flight compute, and routing keeps working
  // while a drain waits.
  for (const auto& shard : shards_) {
    shard->drain();
  }
}

void ShardedDoseService::drain_shard(std::size_t shard) {
  PD_CHECK_MSG(shard < shards_.size(), "drain_shard: shard out of range");
  {
    std::lock_guard<pd::Mutex> lock(mu_);
    router_.set_health(shard, ShardHealth::kDraining);
  }
  // New submits reroute from here on; wait out the queue without holding
  // mu_ (drain blocks on compute, and other shards keep serving).
  shards_[shard]->drain();
  {
    std::lock_guard<pd::Mutex> lock(mu_);
    // resume_shard may have raced the drain; only a still-draining shard
    // parks in kStopped.
    if (router_.health(shard) == ShardHealth::kDraining) {
      router_.set_health(shard, ShardHealth::kStopped);
    }
  }
}

void ShardedDoseService::resume_shard(std::size_t shard) {
  PD_CHECK_MSG(shard < shards_.size(), "resume_shard: shard out of range");
  std::lock_guard<pd::Mutex> lock(mu_);
  router_.set_health(shard, ShardHealth::kActive);
}

ShardHealth ShardedDoseService::shard_health(std::size_t shard) const {
  PD_CHECK_MSG(shard < shards_.size(), "shard_health: shard out of range");
  std::lock_guard<pd::Mutex> lock(mu_);
  return router_.health(shard);
}

ShardedServiceStats ShardedDoseService::stats() const {
  std::lock_guard<pd::Mutex> lock(mu_);
  ShardedServiceStats out;
  out.submitted = submitted_;
  out.accepted = accepted_;
  out.rejected = rejected_;
  out.admission_rejected = admission_rejected_;
  out.failed_immediate = failed_immediate_;
  out.rerouted = rerouted_;
  out.replica_spills = replica_spills_;
  out.sliced_submits = sliced_submits_;
  out.cancels_routed = cancels_routed_;
  out.routed_per_shard = routed_per_shard_;
  out.health.reserve(shards_.size());
  out.oldest_head_age_us.reserve(shards_.size());
  out.shards.reserve(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    out.health.push_back(router_.health(s));
    out.shards.push_back(shards_[s]->stats());
    const std::optional<std::uint64_t> age =
        shards_[s]->oldest_ready_head_age_us();
    out.oldest_head_age_us.push_back(age ? static_cast<double>(*age) : -1.0);
  }
  return out;
}

}  // namespace pd::service
