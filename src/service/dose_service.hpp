#pragma once
// DoseService — concurrent dose serving with adaptive request batching.
//
// The paper's kernel exists to sit inside optimizer loops that fire thousands
// of independent `dose = D · w` requests (§II).  DoseService turns that into
// a many-client service: callers submit(plan, weights) and get a
// future<DoseResult>; a BatchQueue coalesces requests that target the same
// plan into one DoseEngine::compute_batch launch (flush on batch-size target,
// flush deadline, or drain); a fixed worker pool executes launches over a
// bounded LRU EngineCache; per-request deadlines, cancellation, and
// queue-depth backpressure keep the queue bounded under overload.
//
// Reproducibility contract (§II-D): every request's dose is bitwise
// identical to a sequential DoseEngine::compute of its weights on the same
// matrix — independent of batching width, scheduling order, worker count,
// backend, and cache eviction.  This follows from three enforced properties:
// compute_batch column j is bitwise compute(w_j) (tests/test_native_backend);
// one plan never has two in-flight batches (BatchQueue busy mark), so
// per-plan execution is serial; and rebuilt engines are bit-identical to
// evicted ones (EngineCache header).  tests/test_service.cpp hammers the
// whole stack against fresh sequential engines to pin the contract.
//
// Requests may opt into the engine's fast tier (docs/fast_tier.md) via
// SubmitOptions::tier: those doses are tolerance-grade, not bitwise, and
// ride in tier-uniform batches (BatchQueue::exec_key) so the shared engine
// is reconfigured only under the plan's busy mark — default-tier traffic
// keeps the bitwise contract above untouched.

#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "common/threadcheck.hpp"
#include "kernels/dose_engine.hpp"
#include "service/batch_queue.hpp"
#include "service/engine_cache.hpp"
#include "service/stats.hpp"

namespace pd::service {

enum class RequestStatus {
  kOk,               ///< dose holds the result.
  kRejected,         ///< Queue at bound — retry after retry_after_ms.
  kCancelled,        ///< cancel(id) removed it before launch.
  kDeadlineExpired,  ///< Deadline passed while queued.
  kFailed,           ///< Unknown plan, bad weights, engine build failure.
};

const char* to_string(RequestStatus status);

/// Scheduling class of a request (docs/sharding.md): interactive replans
/// outrank the bulk optimizer fleet in BatchQueue plan selection and in the
/// sharded tier's admission control.  Per-plan FIFO order and dose bits are
/// priority-independent — priority only reorders *which plan* launches next.
enum class RequestPriority : std::uint8_t {
  kInteractive = 0,
  kBulk = 1,
};

const char* to_string(RequestPriority priority);

struct DoseResult {
  RequestStatus status = RequestStatus::kFailed;
  std::vector<double> dose;     ///< kOk only.
  std::string error;            ///< kFailed detail.
  double latency_ms = 0.0;      ///< submit -> resolution.
  std::size_t batch_size = 0;   ///< Launch width the request rode in (kOk).
  double retry_after_ms = 0.0;  ///< kRejected hint.
};

struct ServiceConfig {
  unsigned workers = 2;         ///< Worker threads (>= 1).
  std::size_t batch_cap = 8;    ///< Max requests per compute_batch launch.
  std::size_t queue_bound = 256;  ///< Backpressure threshold.
  double flush_deadline_ms = 2.0;   ///< Max age of a queued head before a
                                    ///< partial batch launches anyway.
  double default_deadline_ms = 0.0;  ///< Per-request default; 0 = none.
  std::size_t engine_cache_capacity = 4;
  EngineParams engine;          ///< How cached engines are constructed.
};

/// Handle returned by submit: the future plus the id cancel() takes.
/// `accepted` is true iff the request was queued; when false the future is
/// already resolved (kRejected / kFailed) — the sharded router reads this to
/// retry a rejected submit on a replica shard without blocking on the future.
struct Ticket {
  std::uint64_t id = 0;
  bool accepted = false;
  std::future<DoseResult> result;
};

/// Shared base state for incremental (submit_delta) requests
/// (docs/delta_engine.md): a dose vector previously computed for `weights`
/// on the plan, plus a small caller-chosen key identifying the base.
/// Requests sharing a key coalesce into one launch (BatchQueue exec_key);
/// each request still updates against its own base copy, so the key is a
/// batching hint, not a correctness requirement.
struct DeltaBase {
  std::uint32_t key = 0;  ///< Caller's base identity, 30 bits used.
  std::vector<double> weights;  ///< Weights the base dose was computed for.
  std::vector<double> dose;     ///< Bitwise-tier dose for those weights.
};

struct DeltaOptions {
  /// Queue-wait deadline in ms; same semantics as SubmitOptions::deadline_ms.
  double deadline_ms = -1.0;
  /// Accuracy contract for the update (docs/delta_engine.md).  kBitwise
  /// keeps the service's reproducibility contract: the result is bitwise
  /// identical to a full submit of the new weights.
  kernels::DoseEngine::DeltaMode mode =
      kernels::DoseEngine::DeltaMode::kBitwise;
  /// Scheduling class (see RequestPriority); bits and per-plan order are
  /// unaffected.
  RequestPriority priority = RequestPriority::kInteractive;
};

struct SubmitOptions {
  /// Queue-wait deadline in ms; < 0 uses ServiceConfig::default_deadline_ms,
  /// 0 disables.  Applies while queued — once a request enters a launch it
  /// always completes.
  double deadline_ms = -1.0;
  /// Accuracy tier for this request (docs/fast_tier.md).  The default keeps
  /// the bitwise reproducibility contract; Tier::kFast trades it for
  /// tolerance-grade dose computed on compressed storage.
  kernels::DoseEngine::Tier tier = kernels::DoseEngine::Tier::kBitwise;
  /// Compressed container for Tier::kFast requests (ignored when bitwise).
  kernels::DoseEngine::FastFormat fast_format =
      kernels::DoseEngine::FastFormat::kRsFormat;
  /// Scheduling class (see RequestPriority); bits and per-plan order are
  /// unaffected.
  RequestPriority priority = RequestPriority::kInteractive;
};

class DoseService {
 public:
  explicit DoseService(ServiceConfig config);
  DoseService(const DoseService&) = delete;
  DoseService& operator=(const DoseService&) = delete;
  /// Drains (flushes partial batches, completes every accepted request),
  /// then joins the workers.
  ~DoseService();

  /// Register a plan before submitting against it.  The source must be
  /// deterministic (see EngineCache) and is re-invoked after cache eviction.
  void register_plan(const std::string& plan, MatrixSource source);

  /// Enqueue one dose request.  Never blocks on compute: over-bound queues
  /// reject immediately (status kRejected + retry_after_ms), unknown plans
  /// fail immediately.  Weight-length validation happens at launch (it needs
  /// the engine) and resolves kFailed without disturbing batch-mates.
  Ticket submit(const std::string& plan, std::vector<double> weights,
                const SubmitOptions& options = {});

  /// Enqueue one incremental dose request: the result is `base->dose`
  /// updated from `base->weights` to `new_weights` (docs/delta_engine.md),
  /// touching only what the weight change reaches.  Requests sharing a
  /// base key coalesce into one launch (a dedicated BatchQueue exec key per
  /// (key, mode), so delta launches never mix with full computes);
  /// deadlines, cancel, backpressure, and drain behave exactly as submit.
  /// A null `base` fails immediately; base/weight length mismatches resolve
  /// kFailed at launch without disturbing batch-mates.
  Ticket submit_delta(const std::string& plan,
                      std::shared_ptr<const DeltaBase> base,
                      std::vector<double> new_weights,
                      const DeltaOptions& options = {});

  /// Remove a *queued* request.  False once it entered a launch (the result
  /// will still arrive), expired, or was never accepted.
  bool cancel(std::uint64_t id);

  /// Flush partial batches and block until every accepted request resolved.
  void drain();

  ServiceStats stats() const;

  /// Requests queued right now — the sharded router's load signal for
  /// least-loaded replica choice and bulk admission (cheap: one lock, no
  /// compute).
  std::size_t queue_depth() const;

  /// The current retry-after backoff hint (the launch-cost EWMA the rejected
  /// path reports), exposed so the sharded tier's admission control can
  /// propagate the saturated shard's own estimate.
  double retry_after_estimate() const;

  /// Age (µs) of the oldest launchable head in this service's queue, or
  /// nullopt when nothing is launchable.  Ages — unlike raw ticks — are
  /// comparable across services with different construction times, which is
  /// what makes this the cross-shard fairness observable
  /// (BatchQueue::oldest_ready_head_tick).
  std::optional<std::uint64_t> oldest_ready_head_age_us() const;

  /// The plan's cached fast-tier TunedConfig (EngineParams::autotune), or
  /// null when the plan was never tuned.  See EngineCache::tuned_config.
  std::shared_ptr<const kernels::TunedConfig> tuned_config(
      const std::string& plan) const {
    return cache_.tuned_config(plan);
  }

  const ServiceConfig& config() const { return config_; }

 private:
  struct Pending {
    std::promise<DoseResult> promise;
    std::vector<double> weights;
    std::chrono::steady_clock::time_point submitted;
    kernels::DoseEngine::Tier tier = kernels::DoseEngine::Tier::kBitwise;
    kernels::DoseEngine::FastFormat fast_format =
        kernels::DoseEngine::FastFormat::kRsFormat;
    /// Non-null marks a submit_delta request (exec_key-uniform batches keep
    /// delta and full launches apart, so one flag speaks for a whole batch).
    std::shared_ptr<const DeltaBase> delta_base;
    kernels::DoseEngine::DeltaMode delta_mode =
        kernels::DoseEngine::DeltaMode::kBitwise;
  };

  std::uint64_t tick_now() const;
  double elapsed_ms(std::chrono::steady_clock::time_point since) const;
  void worker_loop();
  /// Pop-side of one launch; called with `lock` held, unlocks around the
  /// engine acquire + compute, relocks to publish stats and the busy mark.
  void execute_batch(std::unique_lock<pd::Mutex>& lock,
                     std::vector<QueuedRequest> batch);
  void resolve_expired(std::uint64_t now);
  double retry_after_hint() const;

  ServiceConfig config_;
  EngineCache cache_;
  std::chrono::steady_clock::time_point start_;

  // Instrumented primitives (common/threadcheck.hpp): under
  // PROTONDOSE_THREADCHECK=1 every lock/unlock/wait/notify is recorded for
  // the race / lock-order / condvar / latency passes; disabled they are the
  // std types plus one null test.  Both condvars declare Waiters::kOptional:
  // a degenerate service lifetime (construct, reject, destruct) can finish
  // before any worker reaches its first wait or anyone calls drain(), and
  // notifying then is correct — the lint would misread it as a lost wakeup.
  mutable pd::Mutex mu_{"DoseService.mu"};
  /// Workers: new work / busy cleared.
  pd::CondVar work_cv_{"DoseService.work_cv",
                       pd::CondVar::Waiters::kOptional};
  /// drain(): queue + in-flight empty.
  pd::CondVar drain_cv_{"DoseService.drain_cv",
                        pd::CondVar::Waiters::kOptional};
  BatchQueue queue_;
  std::map<std::uint64_t, Pending> pending_;
  std::uint64_t next_id_ = 1;
  unsigned in_flight_ = 0;
  bool accepting_ = true;
  bool draining_ = false;
  bool stop_ = false;

  // Counters (under mu_).  Latencies of recent kOk completions feed the
  // p50/p99 snapshot; bounded ring so a long-lived service cannot grow it.
  std::uint64_t submitted_ = 0, completed_ = 0, rejected_ = 0, cancelled_ = 0,
                expired_ = 0, failed_ = 0, batches_ = 0, fast_batches_ = 0,
                delta_batches_ = 0;
  std::vector<std::uint64_t> batch_size_counts_;
  std::size_t max_queue_depth_ = 0;
  std::vector<double> latencies_ms_;
  std::size_t latency_next_ = 0;
  double mean_launch_ms_ = 0.0;  ///< EWMA, feeds the retry-after hint.

  std::vector<std::thread> workers_;
};

}  // namespace pd::service
