#include "service/dose_service.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace pd::service {
namespace {

// Recent-latency window for the p50/p99 snapshot.  Power of two, bounded so
// a long-lived service never grows it.
constexpr std::size_t kLatencyWindow = 1u << 15;

// BatchQueue exec_key encoding: batches are uniform in tier *and* fast
// format, so one engine reconfiguration covers the whole launch.
std::uint32_t exec_key_for(const SubmitOptions& options) {
  if (options.tier == kernels::DoseEngine::Tier::kBitwise) {
    return 0;
  }
  switch (options.fast_format) {
    case kernels::DoseEngine::FastFormat::kRsFormat:
      return 1;
    case kernels::DoseEngine::FastFormat::kSellCs:
      return 2;
    case kernels::DoseEngine::FastFormat::kSellCsQ:
      return 3;
    case kernels::DoseEngine::FastFormat::kAuto:
      // All kAuto requests on one plan resolve to the same tuned format, so
      // batching them together is still uniform after resolution.
      return 4;
  }
  return 2;
}

// Delta requests get their own key space (top bit) so they never coalesce
// with full computes, split by mode (bit 30) and by the caller's base key —
// requests updating the same base dose batch together.
std::uint32_t delta_exec_key_for(std::uint32_t base_key,
                                 kernels::DoseEngine::DeltaMode mode) {
  const std::uint32_t fast_bit =
      mode == kernels::DoseEngine::DeltaMode::kFast ? 0x40000000u : 0u;
  return 0x80000000u | fast_bit | (base_key & 0x3FFFFFFFu);
}

}  // namespace

const char* to_string(RequestPriority priority) {
  switch (priority) {
    case RequestPriority::kInteractive:
      return "interactive";
    case RequestPriority::kBulk:
      return "bulk";
  }
  return "unknown";
}

const char* to_string(RequestStatus status) {
  switch (status) {
    case RequestStatus::kOk:
      return "ok";
    case RequestStatus::kRejected:
      return "rejected";
    case RequestStatus::kCancelled:
      return "cancelled";
    case RequestStatus::kDeadlineExpired:
      return "deadline_expired";
    case RequestStatus::kFailed:
      return "failed";
  }
  return "unknown";
}

DoseService::DoseService(ServiceConfig config)
    : config_(config),
      cache_(config.engine_cache_capacity, config.engine),
      start_(std::chrono::steady_clock::now()),
      queue_(BatchQueueConfig{
          config.batch_cap, config.queue_bound,
          static_cast<std::uint64_t>(
              std::max(0.0, config.flush_deadline_ms) * 1000.0)}) {
  PD_CHECK_MSG(config_.workers >= 1, "DoseService: workers must be >= 1");
  batch_size_counts_.assign(config_.batch_cap, 0);
  workers_.reserve(config_.workers);
  for (unsigned i = 0; i < config_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

DoseService::~DoseService() {
  {
    std::lock_guard<pd::Mutex> lock(mu_);
    accepting_ = false;
    draining_ = true;
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
  // Workers exit only once the queue is empty and no batch is in flight, so
  // every accepted request has been resolved; nothing to clean up.
}

void DoseService::register_plan(const std::string& plan, MatrixSource source) {
  cache_.register_plan(plan, std::move(source));
}

std::uint64_t DoseService::tick_now() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start_)
          .count());
}

double DoseService::elapsed_ms(
    std::chrono::steady_clock::time_point since) const {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - since)
      .count();
}

double DoseService::retry_after_hint() const {
  // Rough time for the backlog to clear: launches needed to drain the queue
  // times the recent launch cost, floored at one flush deadline.  A hint for
  // clients, not a guarantee.
  const double launches =
      static_cast<double>(queue_.depth() + config_.batch_cap - 1) /
      static_cast<double>(config_.batch_cap);
  const double est = launches * mean_launch_ms_ /
                     static_cast<double>(config_.workers);
  return std::max(config_.flush_deadline_ms, est);
}

Ticket DoseService::submit(const std::string& plan,
                           std::vector<double> weights,
                           const SubmitOptions& options) {
  std::promise<DoseResult> promise;
  Ticket ticket;
  ticket.result = promise.get_future();

  const auto submitted = std::chrono::steady_clock::now();
  const bool known_plan = cache_.has_plan(plan);

  std::unique_lock<pd::Mutex> lock(mu_);
  ticket.id = next_id_++;
  ++submitted_;

  DoseResult immediate;
  bool resolve_now = false;
  if (!accepting_) {
    immediate.status = RequestStatus::kFailed;
    immediate.error = "service is shutting down";
    ++failed_;
    resolve_now = true;
  } else if (!known_plan) {
    immediate.status = RequestStatus::kFailed;
    immediate.error = "unknown plan '" + plan + "'";
    ++failed_;
    resolve_now = true;
  } else {
    const std::uint64_t now = tick_now();
    const double deadline_ms = options.deadline_ms < 0.0
                                   ? config_.default_deadline_ms
                                   : options.deadline_ms;
    QueuedRequest request;
    request.id = ticket.id;
    request.plan = plan;
    request.enqueue_tick = now;
    request.deadline_tick =
        deadline_ms <= 0.0
            ? 0
            : now + static_cast<std::uint64_t>(deadline_ms * 1000.0) + 1;
    request.exec_key = exec_key_for(options);
    request.priority = static_cast<std::uint8_t>(options.priority);
    if (queue_.submit(std::move(request))) {
      pending_.emplace(
          ticket.id, Pending{std::move(promise), std::move(weights), submitted,
                             options.tier, options.fast_format});
      max_queue_depth_ = std::max(max_queue_depth_, queue_.depth());
      ticket.accepted = true;
      lock.unlock();
      work_cv_.notify_one();
      return ticket;
    }
    immediate.status = RequestStatus::kRejected;
    immediate.retry_after_ms = retry_after_hint();
    ++rejected_;
    resolve_now = true;
  }

  lock.unlock();
  if (resolve_now) {
    immediate.latency_ms = elapsed_ms(submitted);
    promise.set_value(std::move(immediate));
  }
  return ticket;
}

Ticket DoseService::submit_delta(const std::string& plan,
                                 std::shared_ptr<const DeltaBase> base,
                                 std::vector<double> new_weights,
                                 const DeltaOptions& options) {
  std::promise<DoseResult> promise;
  Ticket ticket;
  ticket.result = promise.get_future();

  const auto submitted = std::chrono::steady_clock::now();
  const bool known_plan = cache_.has_plan(plan);

  std::unique_lock<pd::Mutex> lock(mu_);
  ticket.id = next_id_++;
  ++submitted_;

  DoseResult immediate;
  bool resolve_now = false;
  if (!accepting_) {
    immediate.status = RequestStatus::kFailed;
    immediate.error = "service is shutting down";
    ++failed_;
    resolve_now = true;
  } else if (base == nullptr) {
    immediate.status = RequestStatus::kFailed;
    immediate.error = "submit_delta: null base";
    ++failed_;
    resolve_now = true;
  } else if (!known_plan) {
    immediate.status = RequestStatus::kFailed;
    immediate.error = "unknown plan '" + plan + "'";
    ++failed_;
    resolve_now = true;
  } else {
    const std::uint64_t now = tick_now();
    const double deadline_ms = options.deadline_ms < 0.0
                                   ? config_.default_deadline_ms
                                   : options.deadline_ms;
    QueuedRequest request;
    request.id = ticket.id;
    request.plan = plan;
    request.enqueue_tick = now;
    request.deadline_tick =
        deadline_ms <= 0.0
            ? 0
            : now + static_cast<std::uint64_t>(deadline_ms * 1000.0) + 1;
    request.exec_key = delta_exec_key_for(base->key, options.mode);
    request.priority = static_cast<std::uint8_t>(options.priority);
    if (queue_.submit(std::move(request))) {
      Pending entry{std::move(promise), std::move(new_weights), submitted};
      entry.delta_base = std::move(base);
      entry.delta_mode = options.mode;
      pending_.emplace(ticket.id, std::move(entry));
      max_queue_depth_ = std::max(max_queue_depth_, queue_.depth());
      ticket.accepted = true;
      lock.unlock();
      work_cv_.notify_one();
      return ticket;
    }
    immediate.status = RequestStatus::kRejected;
    immediate.retry_after_ms = retry_after_hint();
    ++rejected_;
    resolve_now = true;
  }

  lock.unlock();
  if (resolve_now) {
    immediate.latency_ms = elapsed_ms(submitted);
    promise.set_value(std::move(immediate));
  }
  return ticket;
}

bool DoseService::cancel(std::uint64_t id) {
  std::unique_lock<pd::Mutex> lock(mu_);
  if (!queue_.cancel(id)) {
    return false;
  }
  const auto it = pending_.find(id);
  PD_CHECK_MSG(it != pending_.end(),
               "DoseService: queued request missing pending state");
  Pending entry = std::move(it->second);
  pending_.erase(it);
  ++cancelled_;
  drain_cv_.notify_all();
  lock.unlock();

  DoseResult result;
  result.status = RequestStatus::kCancelled;
  result.latency_ms = elapsed_ms(entry.submitted);
  entry.promise.set_value(std::move(result));
  return true;
}

void DoseService::resolve_expired(std::uint64_t now) {
  // Caller holds mu_.
  std::vector<QueuedRequest> dead = queue_.expire(now);
  for (QueuedRequest& request : dead) {
    const auto it = pending_.find(request.id);
    PD_CHECK_MSG(it != pending_.end(),
                 "DoseService: expired request missing pending state");
    Pending entry = std::move(it->second);
    pending_.erase(it);
    ++expired_;
    DoseResult result;
    result.status = RequestStatus::kDeadlineExpired;
    result.latency_ms = elapsed_ms(entry.submitted);
    entry.promise.set_value(std::move(result));
  }
  if (!dead.empty()) {
    drain_cv_.notify_all();
  }
}

void DoseService::drain() {
  std::unique_lock<pd::Mutex> lock(mu_);
  draining_ = true;
  work_cv_.notify_all();
  drain_cv_.wait(lock, [this] {
    return queue_.depth() == 0 && in_flight_ == 0;
  });
  if (!stop_) {
    draining_ = false;
  }
}

void DoseService::worker_loop() {
  std::unique_lock<pd::Mutex> lock(mu_);
  for (;;) {
    const std::uint64_t now = tick_now();
    resolve_expired(now);

    std::vector<QueuedRequest> batch = queue_.pop_ready(now, draining_);
    if (!batch.empty()) {
      ++in_flight_;
      execute_batch(lock, std::move(batch));
      --in_flight_;
      work_cv_.notify_all();
      drain_cv_.notify_all();
      continue;
    }

    if (queue_.depth() == 0 && in_flight_ == 0) {
      drain_cv_.notify_all();
      if (stop_) {
        return;
      }
    } else if (stop_ && queue_.depth() == 0) {
      // Another worker owns the last in-flight batch; nothing left to pop.
      return;
    }

    // Attested unpredicated waits: the enclosing for(;;) re-evaluates the
    // full scheduling state (expiry, pop_ready, stop/drain) on every wake,
    // which is the predicate — it just lives a few lines up.
    const std::optional<std::uint64_t> next = queue_.next_event_tick();
    if (!next) {
      work_cv_.wait_unpredicated(lock);
    } else if (*next > now) {
      work_cv_.wait_until(lock,
                          start_ + std::chrono::microseconds(*next));
    } else {
      // Actionable now but not popped (e.g. the plan is busy): wait for the
      // busy mark to clear.
      work_cv_.wait_unpredicated(lock);
    }
  }
}

void DoseService::execute_batch(std::unique_lock<pd::Mutex>& lock,
                                std::vector<QueuedRequest> batch) {
  const std::string plan = batch.front().plan;

  struct Item {
    std::uint64_t id;
    Pending entry;
  };
  std::vector<Item> items;
  items.reserve(batch.size());
  for (QueuedRequest& request : batch) {
    const auto it = pending_.find(request.id);
    PD_CHECK_MSG(it != pending_.end(),
                 "DoseService: popped request missing pending state");
    items.push_back(Item{request.id, std::move(it->second)});
    pending_.erase(it);
  }
  lock.unlock();

  const auto launch_start = std::chrono::steady_clock::now();

  // Acquire (and if evicted, rebuild) the plan's engine.  Holding the
  // shared_ptr across the launch pins the cache entry against eviction.
  std::shared_ptr<kernels::DoseEngine> engine;
  std::string acquire_error;
  try {
    engine = cache_.acquire(plan);
  } catch (const std::exception& e) {
    acquire_error = e.what();
  }

  std::size_t launch_width = 0;
  std::uint64_t ok_count = 0;
  std::uint64_t fail_count = 0;
  std::uint64_t fast_ok = 0;
  std::uint64_t delta_ok = 0;
  std::vector<double> ok_latencies;

  if (!engine) {
    for (Item& item : items) {
      DoseResult result;
      result.status = RequestStatus::kFailed;
      result.error = "engine build failed: " + acquire_error;
      result.latency_ms = elapsed_ms(item.entry.submitted);
      item.entry.promise.set_value(std::move(result));
      ++fail_count;
    }
  } else {
    const std::size_t spots = engine->num_spots();

    // Weight-length validation needs the engine, so it happens here; a bad
    // request fails alone and its batch-mates still launch together.
    std::vector<std::size_t> valid;
    valid.reserve(items.size());
    for (std::size_t i = 0; i < items.size(); ++i) {
      if (items[i].entry.weights.size() == spots) {
        valid.push_back(i);
      } else {
        DoseResult result;
        result.status = RequestStatus::kFailed;
        result.error = "weight vector has " +
                       std::to_string(items[i].entry.weights.size()) +
                       " entries, plan expects " + std::to_string(spots);
        result.latency_ms = elapsed_ms(items[i].entry.submitted);
        items[i].entry.promise.set_value(std::move(result));
        ++fail_count;
      }
    }

    const bool delta_launch =
        !valid.empty() &&
        items[valid.front()].entry.delta_base != nullptr;
    if (delta_launch) {
      // Delta keys are exec_key-disjoint from full computes, so every valid
      // item carries a base.  Each request updates against its own base
      // copy; a bad base (wrong dose/weight length — compute_delta's checks
      // throw) fails alone and its batch-mates still resolve.
      launch_width = valid.size();
      ok_latencies.reserve(launch_width);
      for (const std::size_t i : valid) {
        Item& item = items[i];
        const DeltaBase& base = *item.entry.delta_base;
        DoseResult result;
        try {
          result.dose = engine->compute_delta(base.dose, base.weights,
                                              item.entry.weights,
                                              item.entry.delta_mode);
          result.status = RequestStatus::kOk;
          result.batch_size = launch_width;
          result.latency_ms = elapsed_ms(item.entry.submitted);
          ok_latencies.push_back(result.latency_ms);
          ++ok_count;
        } catch (const std::exception& e) {
          result = DoseResult{};
          result.status = RequestStatus::kFailed;
          result.error = std::string("compute_delta failed: ") + e.what();
          result.latency_ms = elapsed_ms(item.entry.submitted);
          ++fail_count;
        }
        item.entry.promise.set_value(std::move(result));
      }
      delta_ok = 1;
    } else if (!valid.empty()) {
      launch_width = valid.size();
      std::vector<double> weights(spots * launch_width);
      for (std::size_t j = 0; j < launch_width; ++j) {
        const std::vector<double>& w = items[valid[j]].entry.weights;
        std::copy(w.begin(), w.end(), weights.begin() + j * spots);
      }
      // Batches are exec_key-uniform (BatchQueue), so the first valid item's
      // tier speaks for the launch.  Reconfiguring the shared engine is safe
      // here: the plan's busy mark makes this launch its only writer.
      const Pending& head = items[valid.front()].entry;
      const bool fast_launch =
          head.tier == kernels::DoseEngine::Tier::kFast;
      try {
        if (fast_launch) {
          engine->set_tier(kernels::DoseEngine::Tier::kFast,
                           head.fast_format);
        }
        std::vector<std::vector<double>> doses =
            engine->compute_batch(weights, launch_width);
        ok_latencies.reserve(launch_width);
        for (std::size_t j = 0; j < launch_width; ++j) {
          Item& item = items[valid[j]];
          DoseResult result;
          result.status = RequestStatus::kOk;
          result.dose = std::move(doses[j]);
          result.batch_size = launch_width;
          result.latency_ms = elapsed_ms(item.entry.submitted);
          ok_latencies.push_back(result.latency_ms);
          item.entry.promise.set_value(std::move(result));
          ++ok_count;
        }
      } catch (const std::exception& e) {
        for (const std::size_t i : valid) {
          DoseResult result;
          result.status = RequestStatus::kFailed;
          result.error = std::string("compute_batch failed: ") + e.what();
          result.latency_ms = elapsed_ms(items[i].entry.submitted);
          items[i].entry.promise.set_value(std::move(result));
          ++fail_count;
        }
        launch_width = 0;
      }
      // Later launches of this plan (and rebuilt cache entries' peers)
      // expect the default tier; hand the engine back bitwise even when the
      // fast launch threw.  set_tier(kBitwise) cannot throw — it builds
      // nothing.
      if (fast_launch) {
        engine->set_tier(kernels::DoseEngine::Tier::kBitwise);
        if (launch_width > 0) {
          ++fast_ok;
        }
      }
    }
  }

  const double launch_ms = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - launch_start)
                               .count();
  engine.reset();  // unpin before taking the lock back

  lock.lock();
  queue_.mark_idle(plan);
  completed_ += ok_count;
  failed_ += fail_count;
  if (launch_width > 0) {
    ++batches_;
    fast_batches_ += fast_ok;
    delta_batches_ += delta_ok;
    batch_size_counts_[launch_width - 1] += 1;
    mean_launch_ms_ = mean_launch_ms_ == 0.0
                          ? launch_ms
                          : 0.9 * mean_launch_ms_ + 0.1 * launch_ms;
  }
  for (const double latency : ok_latencies) {
    if (latencies_ms_.size() < kLatencyWindow) {
      latencies_ms_.push_back(latency);
    } else {
      latencies_ms_[latency_next_ % kLatencyWindow] = latency;
    }
    ++latency_next_;
  }
}

std::size_t DoseService::queue_depth() const {
  std::lock_guard<pd::Mutex> lock(mu_);
  return queue_.depth();
}

double DoseService::retry_after_estimate() const {
  std::lock_guard<pd::Mutex> lock(mu_);
  return retry_after_hint();
}

std::optional<std::uint64_t> DoseService::oldest_ready_head_age_us() const {
  std::lock_guard<pd::Mutex> lock(mu_);
  const std::uint64_t now = tick_now();
  const std::optional<std::uint64_t> tick =
      queue_.oldest_ready_head_tick(now, draining_);
  if (!tick) {
    return std::nullopt;
  }
  return now - std::min(*tick, now);
}

ServiceStats DoseService::stats() const {
  ServiceStats s;
  {
    std::lock_guard<pd::Mutex> lock(mu_);
    s.submitted = submitted_;
    s.completed = completed_;
    s.rejected = rejected_;
    s.cancelled = cancelled_;
    s.expired = expired_;
    s.failed = failed_;
    s.batches = batches_;
    s.fast_batches = fast_batches_;
    s.delta_batches = delta_batches_;
    s.batch_size_counts = batch_size_counts_;
    s.queue_depth = queue_.depth();
    s.max_queue_depth = max_queue_depth_;
    if (!latencies_ms_.empty()) {
      s.p50_latency_ms = pd::percentile(latencies_ms_, 50.0);
      s.p99_latency_ms = pd::percentile(latencies_ms_, 99.0);
    }
  }
  s.cache = cache_.stats();
  return s;
}

}  // namespace pd::service
