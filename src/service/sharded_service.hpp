#pragma once
// ShardedDoseService — a consistent-hash router above N DoseService shards
// (docs/sharding.md).
//
// One DoseService serves from one engine pool; the sharded tier multiplies
// that by N while keeping the submit/future API and, critically, the §II-D
// contract: every kOk dose — whole-plan or column-slice — is bitwise
// identical to a sequential DoseEngine::compute of the same weights on the
// full plan matrix.  Whole-plan requests inherit the contract from whichever
// shard serves them; sliced requests inherit it from the row-block partition
// (sparse/partition.hpp): y = D·x splits by dose-grid rows with no
// inter-shard reduction, so the merge is an ordered concatenation of slice
// doses — there is nothing to reassociate (same argument as
// bench/ablation_multigpu.cpp, after Tian et al.'s multi-GPU column split).
//
// Scheduling: plans place onto shards by consistent hashing with
// `replication` replicas (ShardRouter); among active replicas the
// least-loaded accepts, a rejected submit spills to the next replica, and a
// drained/stopped shard degrades to rerouting along the ring walk instead of
// failing requests.  Request priorities (interactive replan > bulk
// optimizer fleet) ride through to each shard's BatchQueue plan selection,
// and bulk submits face admission control: once the least-loaded candidate's
// queue passes bulk_admit_fraction of its bound, bulk is rejected with the
// shard's own retry-after EWMA so interactive headroom survives overload.
//
// The router spawns no threads of its own — all concurrency lives inside
// the shards, slice gathers run deferred on the caller's get(), and the
// router's single pd::Mutex (common/threadcheck.hpp) brackets only routing
// state, never compute.  Lock order is strictly router -> shard; shards
// never call back into the router.

#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/threadcheck.hpp"
#include "service/dose_service.hpp"
#include "service/shard_router.hpp"

namespace pd::service {

struct ShardedServiceConfig {
  std::size_t shards = 2;
  /// Replica-set size per plan (ShardRouterConfig::replication).
  std::size_t replication = 1;
  /// Ring points per shard (ShardRouterConfig::vnodes).
  std::size_t vnodes = 64;
  /// Bulk admission control: reject RequestPriority::kBulk submits when the
  /// least-loaded candidate shard's queue depth has reached this fraction of
  /// its queue_bound, reserving the headroom for interactive traffic.
  double bulk_admit_fraction = 0.75;
  /// Sliced-request bookkeeping window: cancel() mappings retained for the
  /// most recent N sliced submits (older sliced requests are almost surely
  /// resolved; cancelling one past the window returns false — "too late").
  std::size_t slice_window = 4096;
  /// Per-shard DoseService configuration (workers, caps, engine params...).
  ServiceConfig shard;
};

/// Router-level counters plus per-shard snapshots.  Like ServiceStats this
/// is diagnostic only — nothing feeds back into routing decisions.
struct ShardedServiceStats {
  std::uint64_t submitted = 0;        ///< submit + submit_delta calls.
  std::uint64_t accepted = 0;         ///< Queued on some shard.
  std::uint64_t rejected = 0;         ///< Resolved kRejected at the router.
  std::uint64_t admission_rejected = 0;  ///< ...of which bulk admission.
  std::uint64_t failed_immediate = 0;  ///< Resolved kFailed at submit time.
  std::uint64_t rerouted = 0;         ///< Served outside the replica set.
  std::uint64_t replica_spills = 0;   ///< Not the first-choice candidate.
  std::uint64_t sliced_submits = 0;   ///< Sliced-plan submits attempted.
  std::uint64_t cancels_routed = 0;   ///< cancel() calls forwarded.
  std::vector<std::uint64_t> routed_per_shard;  ///< Accepted, by shard.
  std::vector<ShardHealth> health;
  /// Age (µs) of each shard's oldest launchable head (-1 = none): the
  /// cross-shard fairness observable — under steady load the spread stays
  /// near one flush deadline because every consumer is oldest-head-fair
  /// (BatchQueue::oldest_ready_head_tick).
  std::vector<double> oldest_head_age_us;
  std::vector<ServiceStats> shards;
};

class ShardedDoseService {
 public:
  explicit ShardedDoseService(ShardedServiceConfig config);
  ShardedDoseService(const ShardedDoseService&) = delete;
  ShardedDoseService& operator=(const ShardedDoseService&) = delete;
  /// Shard destructors drain: every accepted request resolves first.
  ~ShardedDoseService() = default;

  /// Register a whole plan.  The source registers on *every* shard so
  /// health-driven rerouting never meets an unknown plan; only the replica
  /// set actually builds engines under normal routing, so the cost of the
  /// extra registrations is a closure copy, not a matrix.
  void register_plan(const std::string& plan, MatrixSource source);

  /// Register a plan in column-slice mode: the matrix is split into
  /// `slices` contiguous nnz-balanced row blocks (sparse/partition.hpp, the
  /// ablation_multigpu partition) and slice i registers as its own sub-plan
  /// "<plan>#slice<i>/<slices>" routed like any other plan.  A submit
  /// against `plan` then fans out one request per slice and merges the
  /// partial doses in fixed slice order — bitwise identical to single-engine
  /// compute of the full matrix.  Calls source() once, at registration, to
  /// compute the partition.  Requires the vector kernel family (per-row
  /// reduction independence is what makes row blocks bitwise-safe).
  void register_plan_sliced(const std::string& plan, MatrixSource source,
                            std::size_t slices);

  /// Route one dose request (docs/service.md semantics).  Sliced plans fan
  /// out per slice; if any slice is refused the whole request resolves with
  /// that refusal and the accepted slices are cancelled — a sliced result is
  /// never a partial dose.
  Ticket submit(const std::string& plan, std::vector<double> weights,
                const SubmitOptions& options = {});

  /// Route one incremental request (docs/delta_engine.md).  Whole plans
  /// only: sliced plans fail immediately (a delta base holds a full dose,
  /// which no single slice shard can update).
  Ticket submit_delta(const std::string& plan,
                      std::shared_ptr<const DeltaBase> base,
                      std::vector<double> new_weights,
                      const DeltaOptions& options = {});

  /// Remove a queued request.  Whole-plan ids forward to the owning shard.
  /// For a sliced request, every still-queued slice is cancelled; true when
  /// at least one was (the merged result then resolves kCancelled).
  bool cancel(std::uint64_t id);

  /// Drain every shard: flush partial batches, resolve every accepted
  /// request.  Health states are unchanged.
  void drain();

  /// Quiesce one shard: mark it kDraining (new submits reroute immediately),
  /// drain its queue and in-flight batches, then mark it kStopped.  Blocks
  /// until the shard is idle; no accepted request is lost.
  void drain_shard(std::size_t shard);

  /// Return a drained/stopped shard to routing.
  void resume_shard(std::size_t shard);

  ShardHealth shard_health(std::size_t shard) const;

  std::size_t shards() const { return shards_.size(); }
  const ShardedServiceConfig& config() const { return config_; }

  /// The live router (placement inspection for tests and tooling).  Health
  /// mutates under the service lock; treat concurrent reads as advisory.
  const ShardRouter& router() const { return router_; }

  ShardedServiceStats stats() const;

 private:
  struct SlicedPlan {
    std::vector<std::string> sub_plans;      ///< Slice order = merge order.
    std::vector<std::uint64_t> boundaries;   ///< Row partition (diagnostic).
  };
  struct SliceTicket {
    std::size_t shard = 0;
    std::uint64_t inner_id = 0;
  };
  /// Outcome of one routed shard submit attempt.
  struct Routed {
    bool accepted = false;
    std::size_t shard = 0;
    Ticket ticket;          ///< accepted: live inner ticket.
    DoseResult immediate;   ///< !accepted: the already-resolved result.
  };

  template <typename SubmitFn>
  Routed route_submit_locked(const std::string& plan, RequestPriority priority,
                             SubmitFn&& fn);
  Ticket submit_sliced_locked(const SlicedPlan& sliced,
                              const std::vector<double>& weights,
                              const SubmitOptions& options);
  static Ticket resolved_ticket(std::uint64_t id, DoseResult result);
  static std::uint64_t encode_id(std::size_t shard, std::uint64_t inner_id);

  ShardedServiceConfig config_;
  std::vector<std::unique_ptr<DoseService>> shards_;

  // Routing state.  mu_ brackets the router, the sliced-plan table, and the
  // counters; shard calls made under it (submit, cancel, queue_depth) are
  // queue operations, never compute — the lock order is router -> shard with
  // no reverse edge, and drain_shard waits on a shard only after releasing
  // mu_.
  mutable pd::Mutex mu_{"ShardedDoseService.mu"};
  ShardRouter router_;
  std::map<std::string, SlicedPlan> sliced_;
  std::set<std::string> plans_;
  std::map<std::uint64_t, std::vector<SliceTicket>> slice_tickets_;
  std::deque<std::uint64_t> slice_ticket_order_;
  std::uint64_t next_slice_seq_ = 1;

  // Counters (under mu_).
  std::uint64_t submitted_ = 0, accepted_ = 0, rejected_ = 0,
                admission_rejected_ = 0, failed_immediate_ = 0, rerouted_ = 0,
                replica_spills_ = 0, sliced_submits_ = 0, cancels_routed_ = 0;
  std::vector<std::uint64_t> routed_per_shard_;
};

}  // namespace pd::service
