#include "service/shard_router.hpp"

#include <algorithm>
#include <string>

#include "common/error.hpp"

namespace pd::service {
namespace {

// splitmix64 finalizer: FNV-1a alone clusters on short common-prefix names
// ("plan0".."plan9"); the finalizer spreads them over the full ring.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

const char* to_string(ShardHealth health) {
  switch (health) {
    case ShardHealth::kActive:
      return "active";
    case ShardHealth::kDraining:
      return "draining";
    case ShardHealth::kStopped:
      return "stopped";
  }
  return "unknown";
}

ShardRouter::ShardRouter(ShardRouterConfig config) : config_(config) {
  PD_CHECK_MSG(config_.shards >= 1, "ShardRouter: need at least one shard");
  PD_CHECK_MSG(config_.vnodes >= 1, "ShardRouter: need at least one vnode");
  config_.replication =
      std::clamp<std::size_t>(config_.replication, 1, config_.shards);
  health_.assign(config_.shards, ShardHealth::kActive);
  ring_.reserve(config_.shards * config_.vnodes);
  for (std::size_t s = 0; s < config_.shards; ++s) {
    for (std::size_t v = 0; v < config_.vnodes; ++v) {
      const std::string point =
          "shard-" + std::to_string(s) + "#" + std::to_string(v);
      ring_.emplace_back(hash_key(point), static_cast<std::uint32_t>(s));
    }
  }
  std::sort(ring_.begin(), ring_.end());
}

std::uint64_t ShardRouter::hash_key(std::string_view key) {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a 64
  for (const char c : key) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return mix64(h);
}

std::vector<std::size_t> ShardRouter::ring_walk(std::string_view plan) const {
  const std::uint64_t h = hash_key(plan);
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), h,
      [](const std::pair<std::uint64_t, std::uint32_t>& entry,
         std::uint64_t value) { return entry.first < value; });
  std::vector<std::size_t> walk;
  walk.reserve(config_.shards);
  std::vector<bool> seen(config_.shards, false);
  for (std::size_t step = 0;
       step < ring_.size() && walk.size() < config_.shards; ++step) {
    if (it == ring_.end()) {
      it = ring_.begin();
    }
    const std::size_t shard = it->second;
    if (!seen[shard]) {
      seen[shard] = true;
      walk.push_back(shard);
    }
    ++it;
  }
  return walk;
}

std::vector<std::size_t> ShardRouter::placement(std::string_view plan) const {
  std::vector<std::size_t> walk = ring_walk(plan);
  walk.resize(std::min(walk.size(), config_.replication));
  return walk;
}

std::vector<std::size_t> ShardRouter::route(std::string_view plan) const {
  const std::vector<std::size_t> walk = ring_walk(plan);
  std::vector<std::size_t> active_replicas;
  for (std::size_t i = 0; i < config_.replication; ++i) {
    if (health_[walk[i]] == ShardHealth::kActive) {
      active_replicas.push_back(walk[i]);
    }
  }
  if (!active_replicas.empty()) {
    return active_replicas;
  }
  // Whole replica set unhealthy: degrade to any active shard, preferring
  // ring proximity so a recovered shard reclaims the plan deterministically.
  std::vector<std::size_t> fallback;
  for (const std::size_t shard : walk) {
    if (health_[shard] == ShardHealth::kActive) {
      fallback.push_back(shard);
    }
  }
  return fallback;
}

void ShardRouter::set_health(std::size_t shard, ShardHealth health) {
  PD_CHECK_MSG(shard < config_.shards, "ShardRouter: shard out of range");
  health_[shard] = health;
}

ShardHealth ShardRouter::health(std::size_t shard) const {
  PD_CHECK_MSG(shard < config_.shards, "ShardRouter: shard out of range");
  return health_[shard];
}

std::size_t ShardRouter::active_shards() const {
  std::size_t n = 0;
  for (const ShardHealth h : health_) {
    n += h == ShardHealth::kActive ? 1 : 0;
  }
  return n;
}

}  // namespace pd::service
