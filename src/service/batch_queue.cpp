#include "service/batch_queue.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace pd::service {

BatchQueue::BatchQueue(const BatchQueueConfig& config) : config_(config) {
  PD_CHECK_MSG(config_.batch_cap > 0, "BatchQueue: batch_cap must be >= 1");
  PD_CHECK_MSG(config_.queue_bound > 0, "BatchQueue: queue_bound must be >= 1");
}

bool BatchQueue::submit(QueuedRequest request) {
  if (depth_ >= config_.queue_bound) {
    return false;
  }
  plans_[request.plan].pending.push_back(std::move(request));
  ++depth_;
  return true;
}

std::uint8_t BatchQueue::effective_priority(const QueuedRequest& head,
                                            std::uint64_t now) const {
  if (head.priority == 0) {
    return 0;
  }
  // A bulk head that has waited kBulkEscalationAges flush ages is promoted
  // to interactive for selection, bounding how long interactive pressure can
  // defer the optimizer fleet.
  const std::uint64_t boost = kBulkEscalationAges * config_.flush_age_ticks;
  return now >= head.enqueue_tick + boost ? std::uint8_t{0} : head.priority;
}

std::vector<QueuedRequest> BatchQueue::pop_ready(std::uint64_t now,
                                                 bool drain) {
  // Among launchable plans pick the lowest (effective priority, head
  // enqueue tick): interactive beats bulk, then the head that waited
  // longest, so a busy service stays fair across plans instead of
  // ping-ponging on one.
  auto best = plans_.end();
  std::pair<std::uint8_t, std::uint64_t> best_key{0, 0};
  for (auto it = plans_.begin(); it != plans_.end(); ++it) {
    PlanQueue& pq = it->second;
    if (pq.busy || pq.pending.empty()) {
      continue;
    }
    const QueuedRequest& head = pq.pending.front();
    const bool full = pq.pending.size() >= config_.batch_cap;
    const bool aged = now >= head.enqueue_tick + config_.flush_age_ticks;
    if (!full && !aged && !drain) {
      continue;
    }
    const std::pair<std::uint8_t, std::uint64_t> key{
        effective_priority(head, now), head.enqueue_tick};
    if (best == plans_.end() || key < best_key) {
      best = it;
      best_key = key;
    }
  }
  std::vector<QueuedRequest> batch;
  if (best == plans_.end()) {
    return batch;
  }
  PlanQueue& pq = best->second;
  std::size_t width = std::min(config_.batch_cap, pq.pending.size());
  // Never mix execution configurations in one launch: shrink to the FIFO
  // prefix sharing the head's exec_key.  The suffix stays queued and
  // launches (in order) once this batch's mark_idle frees the plan.
  const std::uint32_t key = pq.pending.front().exec_key;
  std::size_t uniform = 1;
  while (uniform < width && pq.pending[uniform].exec_key == key) {
    ++uniform;
  }
  width = uniform;
  batch.reserve(width);
  for (std::size_t i = 0; i < width; ++i) {
    batch.push_back(std::move(pq.pending.front()));
    pq.pending.pop_front();
  }
  depth_ -= width;
  pq.busy = true;
  return batch;
}

void BatchQueue::mark_idle(const std::string& plan) {
  const auto it = plans_.find(plan);
  if (it == plans_.end()) {
    return;
  }
  it->second.busy = false;
  if (it->second.pending.empty()) {
    plans_.erase(it);
  }
}

std::vector<QueuedRequest> BatchQueue::expire(std::uint64_t now) {
  std::vector<QueuedRequest> dead;
  for (auto it = plans_.begin(); it != plans_.end();) {
    std::deque<QueuedRequest>& pending = it->second.pending;
    for (auto req = pending.begin(); req != pending.end();) {
      if (req->deadline_tick != 0 && req->deadline_tick <= now) {
        dead.push_back(std::move(*req));
        req = pending.erase(req);
        --depth_;
      } else {
        ++req;
      }
    }
    if (pending.empty() && !it->second.busy) {
      it = plans_.erase(it);
    } else {
      ++it;
    }
  }
  return dead;
}

bool BatchQueue::cancel(std::uint64_t id) {
  for (auto it = plans_.begin(); it != plans_.end(); ++it) {
    std::deque<QueuedRequest>& pending = it->second.pending;
    for (auto req = pending.begin(); req != pending.end(); ++req) {
      if (req->id == id) {
        pending.erase(req);
        --depth_;
        if (pending.empty() && !it->second.busy) {
          plans_.erase(it);
        }
        return true;
      }
    }
  }
  return false;
}

std::optional<std::uint64_t> BatchQueue::next_event_tick() const {
  std::optional<std::uint64_t> next;
  const auto consider = [&next](std::uint64_t tick) {
    if (!next || tick < *next) {
      next = tick;
    }
  };
  for (const auto& [plan, pq] : plans_) {
    (void)plan;
    if (pq.pending.empty()) {
      continue;
    }
    if (!pq.busy) {
      // Full batches are launchable immediately; their reported tick is the
      // head's enqueue tick (<= now), not 0, so consumers comparing ticks
      // across several queues rank full queues by how long their heads
      // actually waited (see the header note on multi-queue fairness).
      // Otherwise the head's flush age is the next scheduling event.
      if (pq.pending.size() >= config_.batch_cap) {
        consider(pq.pending.front().enqueue_tick);
      } else {
        consider(pq.pending.front().enqueue_tick + config_.flush_age_ticks);
      }
    }
    for (const QueuedRequest& req : pq.pending) {
      if (req.deadline_tick != 0) {
        consider(req.deadline_tick);
      }
    }
  }
  return next;
}

std::optional<std::uint64_t> BatchQueue::oldest_ready_head_tick(
    std::uint64_t now, bool drain) const {
  std::optional<std::uint64_t> oldest;
  for (const auto& [plan, pq] : plans_) {
    (void)plan;
    if (pq.busy || pq.pending.empty()) {
      continue;
    }
    const QueuedRequest& head = pq.pending.front();
    const bool full = pq.pending.size() >= config_.batch_cap;
    const bool aged = now >= head.enqueue_tick + config_.flush_age_ticks;
    if (!full && !aged && !drain) {
      continue;
    }
    if (!oldest || head.enqueue_tick < *oldest) {
      oldest = head.enqueue_tick;
    }
  }
  return oldest;
}

}  // namespace pd::service
