#pragma once
// Consistent-hash plan placement for the sharded dose service
// (docs/sharding.md).
//
// ShardRouter maps plan names to shard indices with a classic virtual-node
// hash ring: each shard contributes `vnodes` points, a plan hashes to a
// point, and walking the ring clockwise from there yields a deterministic
// preference order over every shard.  The first `replication` distinct
// shards are the plan's replica set (hot plans register on more than one
// shard's working set); the rest of the walk is the rerouting fallback order
// when the replica set is unhealthy.  Ring placement moves only ~1/N of
// plans when a shard is added — the property that makes shard-count changes
// cheap for the engine caches.
//
// Like BatchQueue, the router is deliberately *passive and deterministic*:
// no threads, no locks, no clocks — every method is called under the
// ShardedDoseService lock, and placement is a pure function of
// (config, plan name, health states).  That makes it exhaustively testable
// single-threaded: tests/test_shard_router.cpp replays a seeded random walk
// of placements and health flips against an independent shadow model.

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <utility>
#include <vector>

namespace pd::service {

/// Routing state of one shard.  Only kActive shards receive new requests;
/// kDraining marks a shard that is finishing its queue (drain_shard), and
/// kStopped keeps it out of routing until resume_shard.  Health never fails
/// a request by itself — routing degrades to the ring-walk fallback as long
/// as any shard is active.
enum class ShardHealth : std::uint8_t {
  kActive,
  kDraining,
  kStopped,
};

const char* to_string(ShardHealth health);

struct ShardRouterConfig {
  std::size_t shards = 1;
  /// Replica-set size per plan (clamped to `shards`).  Replicated plans may
  /// be served by any replica — the sharded service picks the least-loaded —
  /// so a hot plan's traffic spreads without losing cache locality.
  std::size_t replication = 1;
  /// Ring points per shard.  More points flatten the placement distribution;
  /// 64 keeps the largest/smallest shard share within a few percent for the
  /// plan-name populations the tests draw.
  std::size_t vnodes = 64;
};

class ShardRouter {
 public:
  explicit ShardRouter(ShardRouterConfig config);

  std::size_t shards() const { return config_.shards; }
  std::size_t replication() const { return config_.replication; }
  const ShardRouterConfig& config() const { return config_; }

  /// The ring hash (FNV-1a folded through splitmix64).  Exposed so the
  /// shadow-model test can rebuild the ring independently.
  static std::uint64_t hash_key(std::string_view key);

  /// Health-blind preference order: every shard exactly once, in ring order
  /// clockwise from hash_key(plan).
  std::vector<std::size_t> ring_walk(std::string_view plan) const;

  /// The plan's replica set: the first `replication` entries of ring_walk.
  std::vector<std::size_t> placement(std::string_view plan) const;

  /// Routable candidates honoring health: the kActive members of the
  /// replica set in ring order, or — when the whole replica set is
  /// unhealthy — every kActive shard in ring-walk order (the rerouting
  /// fallback).  Empty only when no shard is active at all.
  std::vector<std::size_t> route(std::string_view plan) const;

  void set_health(std::size_t shard, ShardHealth health);
  ShardHealth health(std::size_t shard) const;
  std::size_t active_shards() const;

 private:
  ShardRouterConfig config_;
  /// (ring point, shard), sorted by point.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> ring_;
  std::vector<ShardHealth> health_;
};

}  // namespace pd::service
