#pragma once
// Bounded per-plan DoseEngine cache for DoseService.
//
// Engines are expensive (precision conversion, rowsplit/adaptive analysis,
// simulated-device setup), so the service keeps at most `capacity` of them,
// keyed by plan id, and reconstructs evicted ones from the plan's registered
// MatrixSource on the next miss.  Eviction is LRU with *pinning*: entries
// whose engine is referenced outside the cache (an in-flight batch holds the
// shared_ptr) are never destroyed under the worker — the cache may
// transiently exceed capacity instead, and the next acquire (hit or miss)
// after the pin is released retires the excess entry.
//
// Reproducibility contract: a MatrixSource must be deterministic (same
// matrix bits every call).  DoseEngine's host-side analysis and storage
// conversion are deterministic functions of the matrix, so an engine rebuilt
// after eviction produces bitwise the dose of the evicted one — cache
// churn can never change a result (asserted by the eviction-race test in
// tests/test_service.cpp).

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>

#include "common/threadcheck.hpp"
#include "gpusim/device.hpp"
#include "gpusim/launch.hpp"
#include "kernels/dose_engine.hpp"
#include "kernels/tuner.hpp"
#include "service/stats.hpp"
#include "sparse/csr.hpp"

namespace pd::service {

/// Produces a plan's dose deposition matrix on a cache miss.  Must be
/// deterministic and thread-safe (it runs outside the cache lock).
using MatrixSource = std::function<sparse::CsrF64()>;

/// How the cache constructs engines — one policy for every plan, so any two
/// engines for the same plan are interchangeable bit-for-bit.
struct EngineParams {
  gpusim::DeviceSpec device;
  kernels::DoseEngine::Mode mode = kernels::DoseEngine::Mode::kHalfDouble;
  unsigned threads_per_block = kernels::kDefaultVectorTpb;
  kernels::SpmvFamily family = kernels::SpmvFamily::kVector;
  kernels::DoseEngine::Backend backend = kernels::DoseEngine::Backend::kNative;
  unsigned native_threads = 1;
  /// Applied to gpusim-backend engines (functional-only by default: a
  /// serving layer wants dose bits and wall-clock, not traffic counters).
  gpusim::EngineOptions engine_options{gpusim::TraceMode::kFunctionalOnly, 0};
  /// Run the fast-tier autotuner (kernels/tuner.hpp) when a plan's engine is
  /// first built, apply the winning TunedConfig, and cache the config next
  /// to the engine.  The config outlives LRU eviction: rebuilt engines get
  /// the cached config re-applied without re-tuning (a hot plan is tuned
  /// exactly once per register_plan).  Tuning touches only fast-tier state —
  /// Tier::kBitwise doses stay byte-for-byte unchanged.
  bool autotune = false;
  kernels::TuneOptions tune_options{};
};

class EngineCache {
 public:
  EngineCache(std::size_t capacity, EngineParams params);

  /// Register (or replace) a plan's matrix source.  Replacing drops any
  /// cached engine for the plan.
  void register_plan(const std::string& plan, MatrixSource source);

  bool has_plan(const std::string& plan) const;

  /// Get the plan's engine, building it from the MatrixSource on a miss.
  /// Concurrent acquires of the same missing plan build once: later callers
  /// wait for the builder and count as hits.  Throws pd::Error for an
  /// unregistered plan; a throwing MatrixSource propagates to every waiter.
  std::shared_ptr<kernels::DoseEngine> acquire(const std::string& plan);

  /// The plan's cached TunedConfig (EngineParams::autotune), or null when
  /// the plan was never tuned.  Persists across engine eviction; dropped
  /// only by register_plan replacing the plan's source.
  std::shared_ptr<const kernels::TunedConfig> tuned_config(
      const std::string& plan) const;

  EngineCacheStats stats() const;

 private:
  struct Entry {
    std::shared_ptr<kernels::DoseEngine> engine;
    std::uint64_t last_use = 0;
  };

  /// Drop LRU unpinned entries until within capacity (caller holds mu_).
  void evict_over_capacity();

  const std::size_t capacity_;
  const EngineParams params_;
  // Instrumented primitives (common/threadcheck.hpp).  build_cv_ declares
  // Waiters::kOptional: it only ever has waiters when two workers race to
  // build the same plan's engine, so most runs legitimately notify it
  // without anyone waiting.
  mutable pd::Mutex mu_{"EngineCache.mu"};
  pd::CondVar build_cv_{"EngineCache.build_cv",
                        pd::CondVar::Waiters::kOptional};
  std::map<std::string, MatrixSource> sources_;
  std::map<std::string, Entry> entries_;
  /// Tuned configs live beside, not inside, entries_: eviction drops the
  /// engine but keeps the config, so the rebuild is apply-only.
  std::map<std::string, std::shared_ptr<const kernels::TunedConfig>> tuned_;
  std::set<std::string> building_;
  std::uint64_t use_tick_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t tunes_ = 0;
};

}  // namespace pd::service
