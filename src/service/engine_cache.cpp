#include "service/engine_cache.hpp"

#include <utility>

#include "common/error.hpp"

namespace pd::service {

EngineCache::EngineCache(std::size_t capacity, EngineParams params)
    : capacity_(capacity), params_(std::move(params)) {
  PD_CHECK_MSG(capacity_ > 0, "EngineCache: capacity must be >= 1");
}

void EngineCache::register_plan(const std::string& plan, MatrixSource source) {
  PD_CHECK_MSG(static_cast<bool>(source),
               "EngineCache: empty MatrixSource for plan '" + plan + "'");
  std::lock_guard<std::mutex> lock(mu_);
  sources_[plan] = std::move(source);
  entries_.erase(plan);
}

bool EngineCache::has_plan(const std::string& plan) const {
  std::lock_guard<std::mutex> lock(mu_);
  return sources_.count(plan) != 0;
}

std::shared_ptr<kernels::DoseEngine> EngineCache::acquire(
    const std::string& plan) {
  MatrixSource source;
  {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      const auto entry = entries_.find(plan);
      if (entry != entries_.end()) {
        ++hits_;
        entry->second.last_use = ++use_tick_;
        // The local copy pins the requested engine before the retry below,
        // so a hit can never evict the entry it is about to return.
        std::shared_ptr<kernels::DoseEngine> engine = entry->second.engine;
        // Retry eviction on hits too: an insert that found every candidate
        // pinned leaves the cache over capacity, and without this the
        // overshoot would persist for as long as traffic keeps hitting.
        evict_over_capacity();
        return engine;
      }
      if (building_.count(plan) == 0) {
        break;
      }
      // Another worker is building this plan's engine; share its result
      // instead of generating the matrix twice.
      build_cv_.wait(lock);
    }
    const auto src = sources_.find(plan);
    PD_CHECK_MSG(src != sources_.end(),
                 "EngineCache: unknown plan '" + plan + "'");
    source = src->second;
    ++misses_;
    building_.insert(plan);
  }

  // Build outside the lock: matrix generation and engine analysis are the
  // expensive parts and must not serialize unrelated plans.
  std::shared_ptr<kernels::DoseEngine> engine;
  try {
    engine = std::make_shared<kernels::DoseEngine>(
        source(), params_.device, params_.mode, params_.threads_per_block,
        params_.family, params_.backend);
    if (params_.backend == kernels::DoseEngine::Backend::kNative) {
      engine->set_native_threads(params_.native_threads);
    } else {
      engine->set_engine_options(params_.engine_options);
    }
  } catch (...) {
    std::lock_guard<std::mutex> lock(mu_);
    building_.erase(plan);
    build_cv_.notify_all();
    throw;
  }

  std::lock_guard<std::mutex> lock(mu_);
  building_.erase(plan);
  entries_[plan] = Entry{engine, ++use_tick_};
  evict_over_capacity();
  build_cv_.notify_all();
  return engine;
}

void EngineCache::evict_over_capacity() {
  while (entries_.size() > capacity_) {
    auto victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->second.engine.use_count() > 1) {
        continue;  // pinned by an in-flight batch — never destroy under it
      }
      if (victim == entries_.end() ||
          it->second.last_use < victim->second.last_use) {
        victim = it;
      }
    }
    if (victim == entries_.end()) {
      return;  // everything pinned; transient overshoot, retried on every
                // subsequent acquire (hit or miss)
    }
    entries_.erase(victim);
    ++evictions_;
  }
}

EngineCacheStats EngineCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  EngineCacheStats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.resident = entries_.size();
  for (const auto& [plan, entry] : entries_) {
    (void)plan;
    if (entry.engine.use_count() > 1) {
      ++s.pinned;
    }
  }
  return s;
}

}  // namespace pd::service
